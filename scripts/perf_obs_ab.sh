#!/usr/bin/env bash
# A/B overhead check for ingest-path observability: BenchmarkIngestObs runs
# the same chunk ingest with stage timing disabled (off) and at the default
# every-32nd-block sampling (sampled_32). The budget is 3%; exceeding it
# prints a warning but never fails the build — perf smoke on shared CI
# runners is advisory, the authoritative run is a quiet local machine.
# Knobs: PERF_AB_COUNT (repetitions, default 5), PERF_AB_BENCHTIME
# (per-measurement benchtime, default 20x).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${PERF_AB_COUNT:-5}"
BENCHTIME="${PERF_AB_BENCHTIME:-20x}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

go test -run '^$' -bench 'BenchmarkIngestObs' -benchtime "$BENCHTIME" \
  -count "$COUNT" ./internal/server | tee "$OUT/bench.txt"

# Best-of-N ns/op per variant: min is the least noise-sensitive estimator.
best() {
  grep "BenchmarkIngestObs/$1" "$OUT/bench.txt" | awk '{print $3}' | sort -n | head -1
}
OFF="$(best off)"
ON="$(best sampled_32)"
[ -n "$OFF" ] && [ -n "$ON" ] || { echo "benchmark produced no measurements" >&2; exit 1; }

awk -v off="$OFF" -v on="$ON" 'BEGIN {
  pct = (on - off) * 100 / off
  printf "ingest observability overhead: %+.2f%% (off=%.0f ns/op, sampled_32=%.0f ns/op)\n", pct, off, on
  if (pct > 3) printf "WARNING: overhead %.2f%% exceeds the 3%% budget\n", pct
}'
exit 0
