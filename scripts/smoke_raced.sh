#!/usr/bin/env bash
# Smoke test for the raced daemon: build it, start it, stream a generated
# trace in with examples/client, assert a deduplicated race report exists,
# and verify a clean SIGTERM drain. Used by CI; runnable locally too.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${RACED_ADDR:-127.0.0.1:7497}"
OUT="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$OUT"' EXIT

go build -o "$OUT/raced" ./cmd/raced
"$OUT/raced" -addr "$ADDR" -engines wcp,hb &
PID=$!

# Wait for the daemon to come up.
for i in $(seq 1 100); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 100 ]; then echo "raced never became healthy" >&2; exit 1; fi
  sleep 0.1
done

# Stream a generated trace in; the default seed produces races.
go run ./examples/client -addr "http://$ADDR" -events 20000 | tee "$OUT/client.log"
grep -q "session finished" "$OUT/client.log"
grep -q "race:" "$OUT/client.log"

# The dedup store holds at least one fingerprinted class.
curl -fsS "http://$ADDR/reports" | tee "$OUT/reports.json" | grep -q '"engine"'
# One-shot analysis over the same wire.
go run ./cmd/tracegen -bench raytracer -scale 0.25 -format binary -o "$OUT/raytracer.bin"
curl -fsS --data-binary @"$OUT/raytracer.bin" "http://$ADDR/analyze?engines=wcp" | grep -q '"racy_events"'
# Metrics moved.
curl -fsS "http://$ADDR/metrics" | grep "raced_events_ingested_total" | grep -qv " 0$"

# Clean drain on SIGTERM.
kill -TERM "$PID"
wait "$PID"
echo "raced smoke test passed"
