#!/usr/bin/env bash
# Smoke test for the raced daemon: build it, start it, stream a generated
# trace in with examples/client, assert a deduplicated race report exists,
# SIGKILL the daemon mid-session and verify a restarted daemon resumes the
# session from its checkpoint with an identical report, and finally verify
# a clean SIGTERM drain. Used by CI; runnable locally too.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${RACED_ADDR:-127.0.0.1:7497}"
OUT="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true; rm -rf "$OUT"' EXIT

start_raced() {
  "$OUT/raced" -addr "$ADDR" -engines wcp,hb \
    -checkpoint-dir "$OUT/ckpt" -checkpoint-every -1s &
  PID=$!
  for i in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then return; fi
    if [ "$i" = 100 ]; then echo "raced never became healthy" >&2; exit 1; fi
    sleep 0.1
  done
}

go build -o "$OUT/raced" ./cmd/raced
start_raced

# Stream a generated trace in; the default seed produces races.
go run ./examples/client -addr "http://$ADDR" -events 20000 | tee "$OUT/client.log"
grep -q "session finished" "$OUT/client.log"
grep -q "race:" "$OUT/client.log"

# The dedup store holds at least one fingerprinted class.
curl -fsS "http://$ADDR/reports" > "$OUT/reports.json"
grep -q '"engine"' "$OUT/reports.json"
# One-shot analysis over the same wire.
go run ./cmd/tracegen -bench raytracer -scale 0.25 -format binary -o "$OUT/raytracer.bin"
curl -fsS --data-binary @"$OUT/raytracer.bin" "http://$ADDR/analyze?engines=wcp" > "$OUT/analyze.json"
grep -q '"racy_events"' "$OUT/analyze.json"
# Metrics moved.
curl -fsS "http://$ADDR/metrics" > "$OUT/metrics.txt"
grep "raced_events_ingested_total" "$OUT/metrics.txt" | grep -qv " 0$"

# --- crash recovery: SIGKILL mid-session, restart, resume, same report ---

# Stream the same trace but stop partway through, leaving the session open.
go run ./examples/client -addr "http://$ADDR" -events 20000 -stop-after 12000 \
  | tee "$OUT/partial.log"
SID="$(grep -o 'session [0-9a-f]* opened' "$OUT/partial.log" | awk '{print $2}')"
[ -n "$SID" ] || { echo "no session id in partial client log" >&2; exit 1; }

# Force a checkpoint, then kill the daemon the hard way: no drain, no
# shutdown hook, exactly what a crash leaves behind.
curl -fsS -X POST "http://$ADDR/checkpoint" > "$OUT/ckpt.json"
grep -q '"sessions"' "$OUT/ckpt.json"
kill -KILL "$PID"
wait "$PID" 2>/dev/null || true

start_raced

# The dedup store survived the crash.
curl -fsS "http://$ADDR/reports" > "$OUT/reports-recovered.json"
grep -q '"engine"' "$OUT/reports-recovered.json"

# Resume the interrupted session from the daemon-acknowledged offset and
# finish it; the trace regenerates deterministically from the same seed.
go run ./examples/client -addr "http://$ADDR" -events 20000 -resume "$SID" \
  | tee "$OUT/resume.log"
grep -q "resumed at event" "$OUT/resume.log"
grep -q "session finished" "$OUT/resume.log"
grep -q "race:" "$OUT/resume.log"

# The recovered run's per-engine race counts match the uninterrupted run.
diff <(grep 'distinct races:' "$OUT/client.log") \
     <(grep 'distinct races:' "$OUT/resume.log")

# Clean drain on SIGTERM.
kill -TERM "$PID"
wait "$PID"

# --- chaos: rerun the whole stream through a fault-injecting daemon ---

# Every connection draws drops, stalls, bit flips and latency from a seeded
# schedule; the resilient client retries, resumes from the acknowledged
# offset, and must land the exact same per-engine race counts as the clean
# run above.
# Stalls are near-certain (0.9) so the schedule reliably fires on the
# client's long-lived connection; drops and flips ride along at lower odds.
"$OUT/raced" -addr "$ADDR" -engines wcp,hb \
  -chaos 'drop=0.3,stall=0.9,flip=0.2,latency=1ms,maxoff=16384,seed=7' &
PID=$!
for i in $(seq 1 100); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 100 ]; then echo "chaos raced never became healthy" >&2; exit 1; fi
  sleep 0.1
done

# Up to three client runs: each must finish with race counts identical to
# the clean run, and by the end the injector must have fired at least once
# (a faultless schedule would mean the chaos path tested nothing).
FIRED=""
for attempt in 1 2 3; do
  go run ./examples/client -addr "http://$ADDR" -events 20000 | tee "$OUT/chaos.log"
  grep -q "session finished" "$OUT/chaos.log"
  diff <(grep 'distinct races:' "$OUT/client.log") \
       <(grep 'distinct races:' "$OUT/chaos.log")
  for i in $(seq 1 20); do
    if curl -fsS "http://$ADDR/metrics" > "$OUT/chaos-metrics.txt" 2>/dev/null; then break; fi
    sleep 0.2
  done
  if grep "raced_faults_injected_total" "$OUT/chaos-metrics.txt" | grep -qv " 0$"; then
    FIRED=1
    break
  fi
done
[ -n "$FIRED" ] || { echo "chaos schedule never injected a fault" >&2; exit 1; }

kill -TERM "$PID"
wait "$PID"
echo "raced smoke test passed"
