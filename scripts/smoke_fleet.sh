#!/usr/bin/env bash
# Smoke test for fleet mode: a coordinator fronting three raced workers.
# First a single uninterrupted daemon produces the baseline report, then the
# same trace is streamed through the coordinator while the worker owning the
# session is SIGKILLed mid-stream — the client must finish with zero errors
# and a byte-identical 'distinct races' report. A second stream survives a
# graceful SIGTERM drain (the worker hands its sessions off before exiting),
# and the coordinator's merged /reports view must hold the fleet's race
# classes. Used by CI; runnable locally too.
set -euo pipefail
cd "$(dirname "$0")/.."

CO_ADDR="${FLEET_CO_ADDR:-127.0.0.1:7470}"
W_PORTS=(7471 7472 7473)
W_NAMES=(w1 w2 w3)
W_PIDS=()
OUT="$(mktemp -d)"
cleanup() {
  for pid in "${W_PIDS[@]:-}" "${CO_PID:-}" "${PID:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$OUT"
}
trap cleanup EXIT

go build -o "$OUT/raced" ./cmd/raced

wait_healthy() { # url [expected-healthy]
  local url="$1" want="${2:-}"
  for i in $(seq 1 100); do
    if body="$(curl -fsS "$url" 2>/dev/null)"; then
      if [ -z "$want" ] || grep -q "\"healthy\": $want" <<<"$body"; then return; fi
    fi
    sleep 0.1
  done
  echo "never healthy: $url (want healthy=$want)" >&2
  exit 1
}

# --- baseline: one uninterrupted single-node run of the same trace ---
"$OUT/raced" -addr "$CO_ADDR" -engines wcp,hb &
PID=$!
wait_healthy "http://$CO_ADDR/healthz"
go run ./examples/client -addr "http://$CO_ADDR" -events 20000 | tee "$OUT/baseline.log"
grep -q "session finished" "$OUT/baseline.log"
kill -TERM "$PID"; wait "$PID"; PID=

# --- bring up the fleet: coordinator + 3 workers ---
# The journal dir makes the coordinator crash-safe; the two cases at the
# bottom SIGKILL it and prove both recovery paths.
"$OUT/raced" -coordinator -addr "$CO_ADDR" -journal-dir "$OUT/journal" \
  -heartbeat-timeout 1s -pull-every 250ms &
CO_PID=$!
wait_healthy "http://$CO_ADDR/fleet" # up, even with zero workers yet
for i in 0 1 2; do
  "$OUT/raced" -addr "127.0.0.1:${W_PORTS[$i]}" -engines wcp,hb \
    -join "http://$CO_ADDR" -worker-name "${W_NAMES[$i]}" &
  W_PIDS+=($!)
done
wait_healthy "http://$CO_ADDR/fleet" 3

owner_pid_of() { # session-id -> echoes the owning worker's pid
  local sid="$1" name
  name="$(curl -fsS "http://$CO_ADDR/fleet" | grep -o "\"$sid\": \"[^\"]*\"" | sed 's/.*: "//; s/"//')"
  for i in 0 1 2; do
    if [ "${W_NAMES[$i]}" = "$name" ]; then echo "${W_PIDS[$i]}"; return; fi
  done
  echo "session $sid owned by unknown worker '$name'" >&2
  return 1
}

session_id_from() { # logfile -> echoes the session id once it appears
  local log="$1"
  for i in $(seq 1 100); do
    if sid="$(grep -o 'session [0-9a-f]* opened' "$log" | awk '{print $2}')" && [ -n "$sid" ]; then
      echo "$sid"; return
    fi
    sleep 0.1
  done
  echo "no session id appeared in $log" >&2
  return 1
}

# --- kill case: SIGKILL the owning worker mid-stream ---
go run ./examples/client -coordinator "http://$CO_ADDR" -events 20000 \
  -trickle 300ms > "$OUT/fleet-kill.log" 2>&1 &
CLIENT=$!
SID="$(session_id_from "$OUT/fleet-kill.log")"
VICTIM="$(owner_pid_of "$SID")"
sleep 0.5 # let chunks be in flight
kill -KILL "$VICTIM"
wait "$CLIENT" # zero client-visible errors: the stream must just take longer
cat "$OUT/fleet-kill.log"
grep -q "session finished" "$OUT/fleet-kill.log"
diff <(grep 'distinct races:' "$OUT/baseline.log") \
     <(grep 'distinct races:' "$OUT/fleet-kill.log")

# --- drain case: SIGTERM the owning worker; it hands its sessions off ---
go run ./examples/client -coordinator "http://$CO_ADDR" -events 20000 \
  -trickle 300ms > "$OUT/fleet-drain.log" 2>&1 &
CLIENT=$!
SID="$(session_id_from "$OUT/fleet-drain.log")"
LEAVER="$(owner_pid_of "$SID")"
sleep 0.5
kill -TERM "$LEAVER"
wait "$LEAVER" # graceful exit after the handoff
wait "$CLIENT"
cat "$OUT/fleet-drain.log"
grep -q "session finished" "$OUT/fleet-drain.log"
diff <(grep 'distinct races:' "$OUT/baseline.log") \
     <(grep 'distinct races:' "$OUT/fleet-drain.log")

# --- merged reports + failover accounting ---
curl -fsS "http://$CO_ADDR/reports" > "$OUT/merged.json"
grep -q '"engine"' "$OUT/merged.json"
grep -q '"workers"' "$OUT/merged.json"
curl -fsS "http://$CO_ADDR/metrics" > "$OUT/metrics.txt"
grep "fleet_worker_failovers_total" "$OUT/metrics.txt" | grep -qv " 0$"
grep "fleet_sessions_lost_total 0" "$OUT/metrics.txt"

# --- merged observability: worker-labeled series and the fleet-wide trace ---
# The coordinator scrapes each worker's registry and injects worker="name"
# into every scraped series; its merged exposition must carry worker-labeled
# histogram buckets alongside the coordinator's own (unlabeled) fleet_*
# families, one TYPE line per family.
grep 'raced_chunk_ingest_seconds_bucket{' "$OUT/metrics.txt" | grep -q 'worker="' ||
  { echo "merged /metrics has no worker-labeled ingest histogram" >&2; exit 1; }
grep 'raced_engine_process_seconds_bucket{' "$OUT/metrics.txt" | grep -q 'engine="wcp"' ||
  { echo "merged /metrics has no per-engine histogram series" >&2; exit 1; }
[ "$(grep -c '^# TYPE raced_chunk_ingest_seconds ' "$OUT/metrics.txt")" = 1 ] ||
  { echo "merged /metrics repeats the raced_chunk_ingest_seconds TYPE line" >&2; exit 1; }

# The kill-case client minted a trace id and printed it at open; the
# coordinator's merged /debug/trace view must hold that request's timeline.
# Only the coordinator's own spans are durable here — a worker's ring dies
# with it, and by this point the kill case and the drain case have each
# taken a worker down — so assert the proxy record, not worker-side spans
# (TestFleetTracePropagation pins those deterministically).
TID="$(grep -o 'trace=[0-9a-f]*' "$OUT/fleet-kill.log" | head -1 | cut -d= -f2)"
[ -n "$TID" ] || { echo "client printed no trace id in fleet-kill.log" >&2; exit 1; }
curl -fsS "http://$CO_ADDR/debug/trace/$TID" > "$OUT/trace.json"
grep -q "\"trace\": \"$TID\"" "$OUT/trace.json" ||
  { echo "/debug/trace/$TID did not echo the trace id" >&2; cat "$OUT/trace.json" >&2; exit 1; }
grep -q '"proxy_create"' "$OUT/trace.json" ||
  { echo "merged trace $TID lacks the coordinator's proxy_create span" >&2; cat "$OUT/trace.json" >&2; exit 1; }

# --- coordinator kill case: SIGKILL the coordinator mid-stream, restart it,
# --- and let the journal replay resume the placement. The client only sees
# --- retries; the report must still match the baseline byte for byte.
go run ./examples/client -coordinator "http://$CO_ADDR" -events 20000 \
  -trickle 300ms > "$OUT/co-kill.log" 2>&1 &
CLIENT=$!
session_id_from "$OUT/co-kill.log" >/dev/null # placement is journaled by now
sleep 0.5
kill -KILL "$CO_PID"
"$OUT/raced" -coordinator -addr "$CO_ADDR" -journal-dir "$OUT/journal" \
  -heartbeat-timeout 1s -pull-every 250ms &
CO_PID=$!
wait "$CLIENT"
cat "$OUT/co-kill.log"
grep -q "session finished" "$OUT/co-kill.log"
diff <(grep 'distinct races:' "$OUT/baseline.log") \
     <(grep 'distinct races:' "$OUT/co-kill.log")
curl -fsS "http://$CO_ADDR/metrics" | grep "fleet_journal_replay_records_total" | grep -qv " 0$" ||
  { echo "restarted coordinator replayed no journal records" >&2; exit 1; }

# --- coordinator disk-loss case: SIGKILL the coordinator AND delete its
# --- journal; the restarted coordinator must rebuild the placement from the
# --- workers' re-register session reports inside the recovery grace window.
go run ./examples/client -coordinator "http://$CO_ADDR" -events 20000 \
  -trickle 300ms > "$OUT/co-loss.log" 2>&1 &
CLIENT=$!
session_id_from "$OUT/co-loss.log" >/dev/null
sleep 0.5
kill -KILL "$CO_PID"
rm -rf "$OUT/journal"
"$OUT/raced" -coordinator -addr "$CO_ADDR" -journal-dir "$OUT/journal" \
  -heartbeat-timeout 1s -pull-every 250ms &
CO_PID=$!
wait "$CLIENT"
cat "$OUT/co-loss.log"
grep -q "session finished" "$OUT/co-loss.log"
diff <(grep 'distinct races:' "$OUT/baseline.log") \
     <(grep 'distinct races:' "$OUT/co-loss.log")
curl -fsS "http://$CO_ADDR/metrics" | grep "fleet_sessions_adopted_total" | grep -qv " 0$" ||
  { echo "restarted coordinator adopted no worker-reported sessions" >&2; exit 1; }

echo "fleet smoke test passed"
