package repro

import (
	"bytes"
	"strings"
	"testing"
)

func figure2bTrace() *Trace {
	b := NewTraceBuilder()
	b.At("a").Write("t1", "y")
	b.Acquire("t1", "l")
	b.Write("t1", "x")
	b.Release("t1", "l")
	b.Acquire("t2", "l")
	b.At("b").Read("t2", "y")
	b.Read("t2", "x")
	b.Release("t2", "l")
	return b.Build()
}

func TestFacadeDetectors(t *testing.T) {
	tr := figure2bTrace()
	if err := ValidateTrace(tr); err != nil {
		t.Fatal(err)
	}
	if s := TraceStats(tr); s.Events != 8 {
		t.Errorf("stats = %+v", s)
	}
	if got := DetectWCP(tr).Report.Distinct(); got != 1 {
		t.Errorf("WCP pairs = %d, want 1", got)
	}
	if got := DetectHB(tr).Report.Distinct(); got != 0 {
		t.Errorf("HB pairs = %d, want 0", got)
	}
	if got := DetectHBEpoch(tr).RacyEvents; got != 0 {
		t.Errorf("epoch HB racy = %d, want 0", got)
	}
	if got := DetectCP(tr, 0).Report.Distinct(); got != 0 {
		t.Errorf("CP pairs = %d, want 0 (Figure 2b is CP-invisible)", got)
	}
	pres := DetectPredictive(tr, PredictOptions{})
	if got := pres.Report.Distinct(); got != 1 {
		t.Errorf("predictive pairs = %d, want 1", got)
	}
	if DetectLockset(tr).Warnings != 0 {
		t.Error("consistently locked x plus rare y access should not warn (y is write-then-read exclusive)")
	}
}

func TestFacadeWitness(t *testing.T) {
	tr := figure2bTrace()
	wit, ok := FindRaceWitness(tr, 0, 5, SearchBudget{})
	if !ok {
		t.Fatal("witness not found")
	}
	if err := CheckReordering(tr, wit.Reordering); err != nil {
		t.Fatal(err)
	}
	if _, ok := FindDeadlock(tr, SearchBudget{Nodes: 100000}); ok {
		t.Error("single-lock trace cannot deadlock")
	}
}

func TestFacadeStreamingMatchesBatch(t *testing.T) {
	b, _ := BenchmarkByName("raytracer")
	tr := b.Generate(0.5)
	batch := DetectWCP(tr)
	det := NewWCPDetector(tr.NumThreads(), tr.NumLocks(), tr.NumVars(), WCPOptions{TrackPairs: true})
	for _, e := range tr.Events {
		det.Process(e)
	}
	stream := det.Result()
	if batch.Report.Distinct() != stream.Report.Distinct() {
		t.Errorf("batch %d pairs, stream %d", batch.Report.Distinct(), stream.Report.Distinct())
	}
	if batch.RacyEvents != stream.RacyEvents || batch.QueueMaxTotal != stream.QueueMaxTotal {
		t.Errorf("batch/stream mismatch: %+v vs %+v", batch, stream)
	}
}

func TestFacadeIO(t *testing.T) {
	tr := figure2bTrace()
	var text, bin bytes.Buffer
	if err := WriteTraceText(&text, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	// ReadTrace auto-detects both formats.
	fromText, err := ReadTrace(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadTrace(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range []*Trace{fromText, fromBin} {
		if got.Len() != tr.Len() {
			t.Fatalf("round trip lost events: %d vs %d", got.Len(), tr.Len())
		}
		if DetectWCP(got).Report.Distinct() != 1 {
			t.Error("race lost in round trip")
		}
	}
	sc := NewTraceScanner(bytes.NewReader(text.Bytes()))
	n := 0
	for sc.Scan() {
		n++
	}
	if sc.Err() != nil || n != tr.Len() {
		t.Errorf("scanner: n=%d err=%v", n, sc.Err())
	}
}

func TestFacadeGenerators(t *testing.T) {
	if len(Benchmarks()) != 18 {
		t.Errorf("benchmarks = %d, want 18 (Table 1)", len(Benchmarks()))
	}
	if _, ok := BenchmarkByName("eclipse"); !ok {
		t.Error("eclipse missing")
	}
	if _, ok := BenchmarkByName("nonesuch"); ok {
		t.Error("nonexistent benchmark found")
	}
	tr := RandomTrace(RandomTraceConfig{Threads: 3, Locks: 2, Vars: 2, Events: 50, Seed: 9})
	if err := ValidateTrace(tr); err != nil {
		t.Error(err)
	}
	lb := LowerBoundTrace([]bool{true, false}, []bool{true, false})
	if err := ValidateTrace(lb); err != nil {
		t.Error(err)
	}
}

// TestRunTable1Small runs the experiment harness end to end on the small
// benchmarks and checks the race columns match the paper exactly.
func TestRunTable1Small(t *testing.T) {
	rows := RunTable1(Table1Options{
		Benchmarks: []string{"account", "airline", "array", "critical", "pingpong", "mergesort"},
	})
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WCPRaces != r.WantWCP {
			t.Errorf("%s: WCP = %d, want %d", r.Name, r.WCPRaces, r.WantWCP)
		}
		if r.HBRaces != r.WantHB {
			t.Errorf("%s: HB = %d, want %d", r.Name, r.HBRaces, r.WantHB)
		}
		if r.PredictMax > r.WCPRaces {
			t.Errorf("%s: predictive found %d > WCP %d — impossible for sound engines on these traces",
				r.Name, r.PredictMax, r.WCPRaces)
		}
	}
	out := FormatTable1(rows)
	for _, want := range []string{"account", "airline", "Program"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

// TestRunFigure7Small runs a single-benchmark sweep and sanity-checks the
// grid shape.
func TestRunFigure7Small(t *testing.T) {
	pts := RunFigure7([]string{"mergesort"}, 1.0)
	if len(pts) != len(Figure7Windows)*len(Figure7Budgets) {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Races < 0 || p.Races > 3 {
			t.Errorf("point %+v out of range", p)
		}
	}
	if out := FormatFigure7(pts); !strings.Contains(out, "mergesort") {
		t.Error("formatted figure missing benchmark name")
	}
}
