// Command tracegen generates the synthetic benchmark traces (and random or
// lower-bound traces) to files in the text or binary trace format, for use
// with cmd/rapid or any external consumer.
//
// Usage:
//
//	tracegen -bench eclipse -scale 0.5 -o eclipse.log
//	tracegen -bench all -format binary -dir traces/
//	tracegen -random -threads 4 -locks 2 -vars 3 -events 10000 -o random.log
//	tracegen -lowerbound 0110,0111 -o lb.log
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro"
)

var (
	benchName = flag.String("bench", "", "benchmark name from Table 1, or 'all'")
	scale     = flag.Float64("scale", 1.0, "benchmark scale factor")
	random    = flag.Bool("random", false, "generate a random well-formed trace")
	threads   = flag.Int("threads", 4, "random: thread count")
	locks     = flag.Int("locks", 2, "random: lock pool size")
	vars      = flag.Int("vars", 3, "random: variable pool size")
	events    = flag.Int("events", 10000, "random: approximate event count")
	seed      = flag.Int64("seed", 1, "random: seed")
	lower     = flag.String("lowerbound", "", "Figure-8 trace: two comma-separated bit strings u,v")
	format    = flag.String("format", "text", "output format: text or binary")
	out       = flag.String("o", "", "output file (default stdout)")
	dir       = flag.String("dir", ".", "output directory for -bench all")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	switch {
	case *benchName == "all":
		for _, b := range repro.Benchmarks() {
			ext := ".log"
			if *format == "binary" {
				ext = ".bin"
			}
			path := filepath.Join(*dir, b.Name+ext)
			if err := writeTo(path, b.Generate(*scale)); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		return nil
	case *benchName != "":
		b, ok := repro.BenchmarkByName(*benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (see Table 1 names)", *benchName)
		}
		return writeTo(*out, b.Generate(*scale))
	case *random:
		tr := repro.RandomTrace(repro.RandomTraceConfig{
			Threads: *threads, Locks: *locks, Vars: *vars,
			Events: *events, Seed: *seed, ForkJoin: true,
		})
		return writeTo(*out, tr)
	case *lower != "":
		parts := strings.Split(*lower, ",")
		if len(parts) != 2 || len(parts[0]) != len(parts[1]) {
			return fmt.Errorf("-lowerbound wants u,v with equal lengths, got %q", *lower)
		}
		u, err := parseBits(parts[0])
		if err != nil {
			return err
		}
		v, err := parseBits(parts[1])
		if err != nil {
			return err
		}
		return writeTo(*out, repro.LowerBoundTrace(u, v))
	default:
		return fmt.Errorf("one of -bench, -random, -lowerbound is required")
	}
}

func parseBits(s string) ([]bool, error) {
	bits := make([]bool, len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			bits[i] = true
		default:
			return nil, fmt.Errorf("bit string %q contains %q", s, c)
		}
	}
	return bits, nil
}

func writeTo(path string, tr *repro.Trace) error {
	var w io.Writer = os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *format == "binary" {
		return repro.WriteTraceBinary(w, tr)
	}
	return repro.WriteTraceText(w, tr)
}
