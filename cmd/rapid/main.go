// Command rapid is the trace-analysis CLI, the counterpart of the paper's
// RAPID tool: it reads logged traces (text or binary format) and runs the
// selected race-detection engines over them.
//
// Usage:
//
//	rapid -engine=wcp trace.log
//	rapid -engine=hb -quiet trace.bin
//	rapid -engine=predict -window 1000 -budget 30000 trace.log
//	rapid -engine=all -parallel trace.log       # all engines concurrently
//	rapid -engine=wcp -jobs 8 traces/*.log      # batch: pool of 8 workers
//	rapid -engine=wcp -stream huge.bin          # block-by-block, O(1) memory
//	rapid -gen pools -threads 256               # built-in generator, no file
//	rapid -gen bench:montecarlo -engine=all     # Table-1 synthetic workload
//
// Engines: wcp (default; the paper's Algorithm 1), hb, hb-epoch, cp,
// predict, lockset, all.
//
// With -gen, no trace file is read: the built-in generator produces the
// workload in memory and the selected engines analyze it. Generators:
// pools, forkjoin, hotlock (the thread-scaling scenario shapes; -threads,
// -events and -races parameterize them), random (the property-test
// generator; -threads, -events), and bench:NAME (a Table-1 synthetic).
//
// With one trace file, -parallel fans the trace out to all selected
// engines concurrently (the trace is shared read-only). With several
// trace files, the files are fanned out across a -jobs-wide worker pool
// (whole machine by default) and per-file reports stream out as each
// file's analysis completes. With -stream, binary traces are decoded
// block by block straight into the detectors, so memory stays constant
// no matter how long the trace is (engines that cannot stream, and text
// traces, fall back to loading).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro"
)

var (
	engineFlag = flag.String("engine", "wcp", "detector: wcp, wcp-epoch, hb, hb-epoch, cp, predict, lockset, all")
	window     = flag.Int("window", 1000, "window size for windowed engines (cp, predict); 0 = whole trace")
	budget     = flag.Int("budget", 30000, "per-window exploration budget for predict")
	quiet      = flag.Bool("quiet", false, "print summary only, not individual race pairs")
	validate   = flag.Bool("validate", true, "validate trace well-formedness before analysis")
	vindicate  = flag.Int("vindicate", 0, "wcp only: certify up to N reported race pairs with witness schedules")
	parallel   = flag.Bool("parallel", false, "run the selected engines concurrently over each trace")
	jobs       = flag.Int("jobs", 0, "worker-pool width for multi-file batches; 0 = GOMAXPROCS")
	stream     = flag.Bool("stream", false, "analyze block by block without materializing traces (binary traces with streaming engines: wcp, wcp-epoch, hb, hb-epoch; others fall back to loading); skips -validate; engines run serially per trace, so -parallel has no effect")
	genFlag    = flag.String("gen", "", "analyze a built-in generated workload instead of a file: pools, forkjoin, hotlock, random, or bench:NAME")
	genThreads = flag.Int("threads", 64, "generator thread count (with -gen)")
	genEvents  = flag.Int("events", 100_000, "generator approximate event count (with -gen)")
	genRaces   = flag.Int("races", 4, "generator seeded race-pair count (with -gen pools/forkjoin/hotlock)")
)

func main() {
	flag.Parse()
	if *genFlag != "" {
		if err := runGenerated(); err != nil {
			fmt.Fprintln(os.Stderr, "rapid:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: rapid [flags] <trace file> [<trace file>...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "rapid:", err)
		os.Exit(1)
	}
}

// runGenerated analyzes a built-in generated workload (-gen).
func runGenerated() error {
	engines, err := selectEngines()
	if err != nil {
		return err
	}
	var tr *repro.Trace
	switch {
	case *genFlag == "random":
		tr = repro.RandomTrace(repro.RandomTraceConfig{
			Threads: *genThreads, Locks: *genThreads / 2, Vars: *genThreads,
			Events: *genEvents, Seed: 1, ForkJoin: true,
		})
	case strings.HasPrefix(*genFlag, "bench:"):
		b, ok := repro.BenchmarkByName(strings.TrimPrefix(*genFlag, "bench:"))
		if !ok {
			return fmt.Errorf("unknown benchmark %q (see Table 1 names)", *genFlag)
		}
		tr = b.Generate(1.0)
	default:
		ok := false
		for _, s := range repro.ThreadScalingShapes() {
			ok = ok || s == *genFlag
		}
		if !ok {
			return fmt.Errorf("unknown generator %q (want pools, forkjoin, hotlock, random, or bench:NAME)", *genFlag)
		}
		tr = repro.ThreadScalingTrace(repro.ThreadScalingConfig{
			Threads: *genThreads, Events: *genEvents, Shape: *genFlag, Races: *genRaces,
		})
	}
	fmt.Printf("generated %s (threads=%d): %s\n", *genFlag, tr.NumThreads(), repro.TraceStats(tr))
	var results []*repro.EngineResult
	if *parallel {
		results = repro.RunEngines(context.Background(), tr, engines)
	} else {
		for _, e := range engines {
			results = append(results, e.Analyze(tr))
		}
	}
	for _, res := range results {
		printResult(tr.Symbols, res)
	}
	if *vindicate > 0 {
		runVindicate(tr, *vindicate)
	}
	return nil
}

// selectEngines resolves the -engine/-window/-budget flags.
func selectEngines() ([]repro.Engine, error) {
	cfg := repro.EngineConfig{Window: *window, Budget: *budget}
	if *window == 0 {
		// The flag's 0 means "whole trace"; EngineConfig's 0 means "default
		// window", so map it to the explicit whole-trace value.
		cfg.Window = -1
	}
	if *engineFlag == "all" {
		return repro.AllEngines(cfg), nil
	}
	e, err := repro.NewEngine(*engineFlag, cfg)
	if err != nil {
		return nil, err
	}
	return []repro.Engine{e}, nil
}

func run(paths []string) error {
	engines, err := selectEngines()
	if err != nil {
		return err
	}
	if *stream {
		if *vindicate > 0 {
			return fmt.Errorf("-vindicate needs the materialized trace; drop -stream")
		}
		return runBatch(paths, engines)
	}
	if len(paths) == 1 {
		return runOne(paths[0], engines)
	}
	if *vindicate > 0 {
		return fmt.Errorf("-vindicate requires a single trace file (got %d)", len(paths))
	}
	return runBatch(paths, engines)
}

// runOne analyzes a single trace file, optionally fanning it out to the
// selected engines concurrently.
func runOne(path string, engines []repro.Engine) error {
	tr, err := loadTrace(path)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %s\n", repro.TraceStats(tr))
	var results []*repro.EngineResult
	if *parallel {
		results = repro.RunEngines(context.Background(), tr, engines)
	} else {
		for _, e := range engines {
			results = append(results, e.Analyze(tr))
		}
	}
	for _, res := range results {
		printResult(tr.Symbols, res)
	}
	if *vindicate > 0 {
		runVindicate(tr, *vindicate)
	}
	return nil
}

// runBatch fans the trace files out across the worker pool and prints each
// file's block as its analysis completes.
func runBatch(paths []string, engines []repro.Engine) error {
	corpus := make([]repro.TraceSource, len(paths))
	for i, p := range paths {
		p := p
		if *stream {
			// Streamable source: engines that support it analyze the file
			// block by block, never materializing the trace (no whole-trace
			// validation in that mode).
			corpus[i] = repro.NewFileTraceSource(p)
		} else {
			corpus[i] = repro.TraceSource{Name: p, Load: func() (*repro.Trace, error) { return loadTrace(p) }}
		}
	}
	start := time.Now()
	failed := 0
	for res := range repro.AnalyzeTraceCorpus(context.Background(), corpus, engines, *jobs) {
		if res.Err != nil {
			failed++
			fmt.Printf("=== %s: error: %v\n", res.Name, res.Err)
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "=== %s (%v)\n", res.Name, res.Duration.Round(time.Millisecond))
		fmt.Fprintf(&b, "trace: %+v\n", res.Stats)
		fmt.Print(b.String())
		for _, er := range res.Results {
			printResult(res.Symbols, er)
		}
	}
	fmt.Printf("batch: %d file(s), %d failed, %v total (%d worker(s))\n",
		len(paths), failed, time.Since(start).Round(time.Millisecond), jobsWidth(len(paths)))
	if failed > 0 {
		return fmt.Errorf("%d of %d file(s) failed", failed, len(paths))
	}
	return nil
}

func jobsWidth(files int) int {
	n := *jobs
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > files {
		n = files
	}
	return n
}

// loadTrace reads and (by default) validates one trace file.
func loadTrace(path string) (*repro.Trace, error) {
	tr, err := repro.ReadTraceFile(path)
	if err != nil {
		return nil, err
	}
	if *validate {
		if err := repro.ValidateTrace(tr); err != nil {
			return nil, fmt.Errorf("invalid trace: %w", err)
		}
	}
	return tr, nil
}

// printResult renders one engine result; syms supplies symbol names for
// the race-pair listing.
func printResult(syms *repro.Symbols, res *repro.EngineResult) {
	if res.Err != nil {
		fmt.Printf("%-9s error: %v\n", res.Engine+":", res.Err)
		return
	}
	fmt.Printf("%-9s %d distinct race pair(s) in %v; %s\n",
		res.Engine+":", res.Distinct(), res.Duration.Round(time.Millisecond), res.Summary)
	if syms != nil && res.Report != nil && !*quiet && res.Distinct() > 0 {
		fmt.Println(res.Report.Format(syms))
	}
}

// runVindicate certifies reported WCP race pairs with witness schedules
// (Theorem 1 made actionable).
func runVindicate(tr *repro.Trace, maxPairs int) {
	start := time.Now()
	vs := repro.VindicateWCPRaces(tr, maxPairs, repro.SearchBudget{Nodes: 500_000})
	fmt.Printf("vindicate: %d event pair(s) certified in %v\n", len(vs), time.Since(start).Round(time.Millisecond))
	for _, v := range vs {
		fmt.Printf("  (%s, %s): %s\n",
			tr.Symbols.Describe(tr.Events[v.Pair.First]),
			tr.Symbols.Describe(tr.Events[v.Pair.Second]),
			v.Verdict)
		if !*quiet && v.Witness != nil {
			fmt.Printf("    witness: %d-event schedule ending ", len(v.Witness))
			if v.Verdict == repro.VerdictRace {
				fmt.Printf("with the racing accesses back to back\n")
			} else {
				fmt.Printf("in a deadlock\n")
			}
		}
	}
}
