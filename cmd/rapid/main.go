// Command rapid is the trace-analysis CLI, the counterpart of the paper's
// RAPID tool: it reads a logged trace (text or binary format) and runs the
// selected race-detection engine over it.
//
// Usage:
//
//	rapid -engine=wcp trace.log
//	rapid -engine=hb -quiet trace.bin
//	rapid -engine=predict -window 1000 -budget 30000 trace.log
//	rapid -engine=all trace.log
//
// Engines: wcp (default; the paper's Algorithm 1), hb, hb-epoch, cp,
// predict, lockset, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

var (
	engine    = flag.String("engine", "wcp", "detector: wcp, wcp-epoch, hb, hb-epoch, cp, predict, lockset, all")
	window    = flag.Int("window", 1000, "window size for windowed engines (cp, predict); 0 = whole trace")
	budget    = flag.Int("budget", 30000, "per-window exploration budget for predict")
	quiet     = flag.Bool("quiet", false, "print summary only, not individual race pairs")
	validate  = flag.Bool("validate", true, "validate trace well-formedness before analysis")
	vindicate = flag.Int("vindicate", 0, "wcp only: certify up to N reported race pairs with witness schedules")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rapid [flags] <trace file>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "rapid:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	tr, err := repro.ReadTraceFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %s\n", repro.TraceStats(tr))
	if *validate {
		if err := repro.ValidateTrace(tr); err != nil {
			return fmt.Errorf("invalid trace: %w", err)
		}
	}
	engines := []string{*engine}
	if *engine == "all" {
		engines = []string{"wcp", "wcp-epoch", "hb", "hb-epoch", "cp", "predict", "lockset"}
	}
	for _, eng := range engines {
		if err := runEngine(eng, tr); err != nil {
			return err
		}
	}
	if *vindicate > 0 {
		runVindicate(tr, *vindicate)
	}
	return nil
}

// runVindicate certifies reported WCP race pairs with witness schedules
// (Theorem 1 made actionable).
func runVindicate(tr *repro.Trace, maxPairs int) {
	start := time.Now()
	vs := repro.VindicateWCPRaces(tr, maxPairs, repro.SearchBudget{Nodes: 500_000})
	fmt.Printf("vindicate: %d event pair(s) certified in %v\n", len(vs), time.Since(start).Round(time.Millisecond))
	for _, v := range vs {
		fmt.Printf("  (%s, %s): %s\n",
			tr.Symbols.Describe(tr.Events[v.Pair.First]),
			tr.Symbols.Describe(tr.Events[v.Pair.Second]),
			v.Verdict)
		if !*quiet && v.Witness != nil {
			fmt.Printf("    witness: %d-event schedule ending ", len(v.Witness))
			if v.Verdict == repro.VerdictRace {
				fmt.Printf("with the racing accesses back to back\n")
			} else {
				fmt.Printf("in a deadlock\n")
			}
		}
	}
}

func runEngine(engine string, tr *repro.Trace) error {
	start := time.Now()
	var (
		report  *repro.Report
		summary string
	)
	switch engine {
	case "wcp":
		res := repro.DetectWCP(tr)
		report = res.Report
		summary = fmt.Sprintf("racy events=%d queue max=%d (%.2f%% of events)",
			res.RacyEvents, res.QueueMaxTotal, 100*res.QueueMaxFraction())
	case "wcp-epoch":
		res := repro.DetectWCPEpoch(tr)
		summary = fmt.Sprintf("racy events=%d first=%d (epoch mode reports no pairs)",
			res.RacyEvents, res.FirstRace)
	case "hb":
		res := repro.DetectHB(tr)
		report = res.Report
		summary = fmt.Sprintf("racy events=%d", res.RacyEvents)
	case "hb-epoch":
		res := repro.DetectHBEpoch(tr)
		summary = fmt.Sprintf("racy events=%d first=%d (epoch mode reports no pairs)",
			res.RacyEvents, res.FirstRace)
	case "cp":
		res := repro.DetectCP(tr, *window)
		report = res.Report
		summary = fmt.Sprintf("windows=%d racy event pairs=%d", res.Windows, res.RacyEventPairs)
	case "predict":
		res := repro.DetectPredictive(tr, repro.PredictOptions{
			WindowSize:   *window,
			WindowBudget: *budget,
		})
		report = res.Report
		summary = fmt.Sprintf("windows=%d searches=%d budget-exhausted=%d",
			res.Windows, res.Searches, res.ExhaustedSearches)
	case "lockset":
		res := repro.DetectLockset(tr)
		report = res.Report
		summary = fmt.Sprintf("warnings=%d (lockset is unsound: warnings may be spurious)", res.Warnings)
	default:
		return fmt.Errorf("unknown engine %q", engine)
	}
	elapsed := time.Since(start)
	distinct := 0
	if report != nil {
		distinct = report.Distinct()
	}
	fmt.Printf("%-9s %d distinct race pair(s) in %v; %s\n", engine+":", distinct, elapsed.Round(time.Millisecond), summary)
	if report != nil && !*quiet && distinct > 0 {
		fmt.Println(report.Format(tr.Symbols))
	}
	return nil
}
