// Command benchjson runs the scaling and batch-analysis benchmarks with
// memory accounting and writes the results as machine-readable JSON, so the
// performance trajectory (ns/op, B/op, allocs/op, events/s per trace size)
// is comparable across PRs without scraping `go test -bench` output.
//
// Usage:
//
//	benchjson                          # writes BENCH_wcp.json
//	benchjson -out results.json -scales 0.25,1,2
//	benchjson -baseline old.json       # embed a previous run for before/after
//	benchjson -label "PR 3"            # tag the run in the trajectory
//	benchjson -check BENCH_wcp.json    # perf smoke: warn on regressions, exit 0
//	benchjson -check BENCH_wcp.json -out BENCH_wcp.json  # measure once: compare, then rewrite
//
// Every write preserves a trajectory: when the output file already exists,
// its run is folded into the new document's trajectory (a dated events/s
// summary per benchmark), so the file carries the performance history of
// the repository across PRs, not just the latest pair of runs.
//
// -check mode runs the benchmarks and compares events/s against a committed
// baseline file instead of writing: benchmarks slower by more than
// -check-threshold percent print a GitHub-annotation-style warning. The
// exit code stays 0 — the check is a tripwire, not a gate — unless -strict
// is set.
//
// The benchmarks mirror BenchmarkScalingWCP, BenchmarkScalingHB and
// BenchmarkBatchAnalysis in bench_test.go: WCP and HB whole-trace analysis
// over the montecarlo workload at several sizes (Theorem 3's linearity
// check), and the serial-vs-parallel corpus runner comparison.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/hb"
	"repro/internal/trace"
)

var (
	out       = flag.String("out", "BENCH_wcp.json", "output file")
	scales    = flag.String("scales", "0.25,0.5,1,2", "comma-separated montecarlo scales for the scaling benchmarks")
	baseline  = flag.String("baseline", "", "previous benchjson output to embed as the before side of a before/after record")
	label     = flag.String("label", "", "optional label recorded with this run in the trajectory")
	check     = flag.String("check", "", "perf-smoke mode: compare against this baseline file instead of writing")
	threshold = flag.Float64("check-threshold", 20, "events/s regression percentage that triggers a -check warning")
	strict    = flag.Bool("strict", false, "exit non-zero when -check finds regressions")
)

// Entry is one benchmark measurement.
type Entry struct {
	Name         string  `json:"name"`
	Events       int     `json:"events"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
}

// Snapshot is one past run folded into the trajectory: the date, optional
// label, and each benchmark's events/s.
type Snapshot struct {
	Date         string             `json:"date"`
	Label        string             `json:"label,omitempty"`
	EventsPerSec map[string]float64 `json:"events_per_sec"`
}

// maxTrajectory bounds the number of retained past runs.
const maxTrajectory = 50

// Doc is the file layout: environment, current results, optionally the
// embedded previous run for before/after comparisons, and the trajectory of
// earlier runs (newest last).
type Doc struct {
	Date       string     `json:"date"`
	Label      string     `json:"label,omitempty"`
	GOOS       string     `json:"goos"`
	GOARCH     string     `json:"goarch"`
	CPUs       int        `json:"cpus"`
	Results    []Entry    `json:"results"`
	Baseline   *Doc       `json:"baseline,omitempty"`
	Trajectory []Snapshot `json:"trajectory,omitempty"`
}

// snapshot summarizes a document for the trajectory.
func (d *Doc) snapshot() Snapshot {
	s := Snapshot{Date: d.Date, Label: d.Label, EventsPerSec: map[string]float64{}}
	for _, e := range d.Results {
		s.EventsPerSec[e.Name] = e.EventsPerSec
	}
	return s
}

// loadDoc reads a benchjson document from path.
func loadDoc(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &d, nil
}

func measure(name string, events int, bench func(b *testing.B)) Entry {
	res := testing.Benchmark(bench)
	nsOp := float64(res.T.Nanoseconds()) / float64(res.N)
	e := Entry{
		Name:        name,
		Events:      events,
		Iterations:  res.N,
		NsPerOp:     nsOp,
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if events > 0 && nsOp > 0 {
		e.EventsPerSec = float64(events) / (nsOp / 1e9)
	}
	fmt.Printf("%-40s %10d ns/op %14.0f events/s %10d B/op %8d allocs/op\n",
		name, int64(e.NsPerOp), e.EventsPerSec, e.BytesPerOp, e.AllocsPerOp)
	return e
}

func parseScales(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad scale %q: %w", part, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func run() error {
	scaleList, err := parseScales(*scales)
	if err != nil {
		return err
	}
	bench, ok := gen.ByName("montecarlo")
	if !ok {
		return fmt.Errorf("montecarlo benchmark missing")
	}

	traces := make([]*trace.Trace, len(scaleList))
	for i, scale := range scaleList {
		traces[i] = bench.Generate(scale)
	}
	var results []Entry
	for _, tr := range traces {
		tr := tr
		results = append(results, measure(
			fmt.Sprintf("ScalingWCP/events_%d", tr.Len()), tr.Len(),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.DetectOpts(tr, core.Options{})
				}
			}))
	}
	for _, tr := range traces {
		tr := tr
		results = append(results, measure(
			fmt.Sprintf("ScalingHB/events_%d", tr.Len()), tr.Len(),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					hb.DetectOpts(tr, hb.Options{})
				}
			}))
	}

	// Batch analysis: serial vs parallel corpus runner, as in
	// BenchmarkBatchAnalysis (smaller corpus; same shape).
	files := 2 * runtime.GOMAXPROCS(0)
	corpus := make([]engine.Source, files)
	events := 0
	for i := range corpus {
		tr := gen.Random(gen.RandomConfig{Seed: int64(i + 1), Events: 30_000, Threads: 6, Locks: 8, Vars: 24})
		events += tr.Len()
		corpus[i] = engine.TraceSource(fmt.Sprintf("trace-%d", i), tr)
	}
	engines := []engine.Engine{engine.MustNew("wcp", engine.Config{}), engine.MustNew("hb", engine.Config{})}
	drain := func(jobs int) {
		for res := range engine.AnalyzeCorpus(context.Background(), corpus, engines, jobs) {
			if res.Err != nil {
				panic(res.Err)
			}
		}
	}
	total := events * len(engines)
	results = append(results, measure("BatchAnalysis/serial", total, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			drain(1)
		}
	}))
	results = append(results, measure(fmt.Sprintf("BatchAnalysis/parallel_j%d", runtime.GOMAXPROCS(0)), total, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			drain(0)
		}
	}))

	if *check != "" {
		// One measurement serves both: compare against the baseline, and —
		// when -out was explicitly given too — fall through to write the
		// fresh document from the same run (CI measures once that way).
		err := runCheck(results, *check)
		outSet := false
		flag.Visit(func(f *flag.Flag) { outSet = outSet || f.Name == "out" })
		if err != nil || !outSet {
			return err
		}
	}

	doc := Doc{
		Date:    time.Now().UTC().Format(time.RFC3339),
		Label:   *label,
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.GOMAXPROCS(0),
		Results: results,
	}
	// Fold the previous contents of the output file into the trajectory so
	// the file accumulates the performance history across runs.
	if prev, err := loadDoc(*out); err == nil {
		doc.Trajectory = append(prev.Trajectory, prev.snapshot())
		if n := len(doc.Trajectory); n > maxTrajectory {
			doc.Trajectory = doc.Trajectory[n-maxTrajectory:]
		}
	}
	if *baseline != "" {
		base, err := loadDoc(*baseline)
		if err != nil {
			return fmt.Errorf("reading baseline: %w", err)
		}
		base.Baseline = nil // keep one level of history
		base.Trajectory = nil
		doc.Baseline = base
	}
	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks, %d past runs in trajectory)\n", *out, len(results), len(doc.Trajectory))
	return nil
}

// runCheck compares the fresh results against the committed baseline file,
// warning (GitHub annotation format) about benchmarks whose events/s
// regressed by more than the threshold. Non-blocking unless -strict.
func runCheck(results []Entry, path string) error {
	base, err := loadDoc(path)
	if err != nil {
		return fmt.Errorf("reading check baseline: %w", err)
	}
	baseBy := make(map[string]Entry, len(base.Results))
	for _, e := range base.Results {
		baseBy[e.Name] = e
	}
	regressions := 0
	measured := make(map[string]bool, len(results))
	for _, e := range results {
		measured[e.Name] = true
		b, ok := baseBy[e.Name]
		if !ok || b.EventsPerSec <= 0 || e.EventsPerSec <= 0 {
			continue
		}
		delta := 100 * (e.EventsPerSec - b.EventsPerSec) / b.EventsPerSec
		status := "ok"
		if delta < -*threshold {
			regressions++
			status = "REGRESSION"
			fmt.Printf("::warning title=benchjson perf smoke::%s events/s %.0f -> %.0f (%.1f%%), beyond the %.0f%% threshold\n",
				e.Name, b.EventsPerSec, e.EventsPerSec, delta, *threshold)
		}
		fmt.Printf("check %-40s %14.0f -> %14.0f events/s (%+.1f%%) %s\n",
			e.Name, b.EventsPerSec, e.EventsPerSec, delta, status)
	}
	// Baseline benchmarks this run did not measure (e.g. reduced -scales or
	// a different core count) are reported, not silently skipped: the smoke
	// check's coverage gap should be visible in the log.
	for _, e := range base.Results {
		if !measured[e.Name] {
			fmt.Printf("check %-40s not measured in this run (baseline %.0f events/s unguarded)\n",
				e.Name, e.EventsPerSec)
		}
	}
	if regressions > 0 {
		fmt.Printf("benchjson: %d benchmark(s) regressed beyond %.0f%% vs %s (non-blocking)\n", regressions, *threshold, path)
		if *strict {
			return fmt.Errorf("%d perf regression(s)", regressions)
		}
	} else {
		fmt.Printf("benchjson: no regressions beyond %.0f%% vs %s\n", *threshold, path)
	}
	return nil
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
