// Command benchjson runs the scaling and batch-analysis benchmarks with
// memory accounting and writes the results as machine-readable JSON, so the
// performance trajectory (ns/op, B/op, allocs/op, events/s per trace size)
// is comparable across PRs without scraping `go test -bench` output.
//
// Usage:
//
//	benchjson                          # writes BENCH_wcp.json
//	benchjson -out results.json -scales 0.25,1,2
//	benchjson -baseline old.json       # embed a previous run for before/after
//
// The benchmarks mirror BenchmarkScalingWCP, BenchmarkScalingHB and
// BenchmarkBatchAnalysis in bench_test.go: WCP and HB whole-trace analysis
// over the montecarlo workload at several sizes (Theorem 3's linearity
// check), and the serial-vs-parallel corpus runner comparison.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/hb"
	"repro/internal/trace"
)

var (
	out      = flag.String("out", "BENCH_wcp.json", "output file")
	scales   = flag.String("scales", "0.25,0.5,1,2", "comma-separated montecarlo scales for the scaling benchmarks")
	baseline = flag.String("baseline", "", "previous benchjson output to embed as the before side of a before/after record")
)

// Entry is one benchmark measurement.
type Entry struct {
	Name         string  `json:"name"`
	Events       int     `json:"events"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
}

// Doc is the file layout: environment, current results, and optionally the
// embedded previous run for before/after comparisons.
type Doc struct {
	Date     string  `json:"date"`
	GOOS     string  `json:"goos"`
	GOARCH   string  `json:"goarch"`
	CPUs     int     `json:"cpus"`
	Results  []Entry `json:"results"`
	Baseline *Doc    `json:"baseline,omitempty"`
}

func measure(name string, events int, bench func(b *testing.B)) Entry {
	res := testing.Benchmark(bench)
	nsOp := float64(res.T.Nanoseconds()) / float64(res.N)
	e := Entry{
		Name:        name,
		Events:      events,
		Iterations:  res.N,
		NsPerOp:     nsOp,
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if events > 0 && nsOp > 0 {
		e.EventsPerSec = float64(events) / (nsOp / 1e9)
	}
	fmt.Printf("%-40s %10d ns/op %14.0f events/s %10d B/op %8d allocs/op\n",
		name, int64(e.NsPerOp), e.EventsPerSec, e.BytesPerOp, e.AllocsPerOp)
	return e
}

func parseScales(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad scale %q: %w", part, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func run() error {
	scaleList, err := parseScales(*scales)
	if err != nil {
		return err
	}
	bench, ok := gen.ByName("montecarlo")
	if !ok {
		return fmt.Errorf("montecarlo benchmark missing")
	}

	traces := make([]*trace.Trace, len(scaleList))
	for i, scale := range scaleList {
		traces[i] = bench.Generate(scale)
	}
	var results []Entry
	for _, tr := range traces {
		tr := tr
		results = append(results, measure(
			fmt.Sprintf("ScalingWCP/events_%d", tr.Len()), tr.Len(),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.DetectOpts(tr, core.Options{})
				}
			}))
	}
	for _, tr := range traces {
		tr := tr
		results = append(results, measure(
			fmt.Sprintf("ScalingHB/events_%d", tr.Len()), tr.Len(),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					hb.DetectOpts(tr, hb.Options{})
				}
			}))
	}

	// Batch analysis: serial vs parallel corpus runner, as in
	// BenchmarkBatchAnalysis (smaller corpus; same shape).
	files := 2 * runtime.GOMAXPROCS(0)
	corpus := make([]engine.Source, files)
	events := 0
	for i := range corpus {
		tr := gen.Random(gen.RandomConfig{Seed: int64(i + 1), Events: 30_000, Threads: 6, Locks: 8, Vars: 24})
		events += tr.Len()
		corpus[i] = engine.TraceSource(fmt.Sprintf("trace-%d", i), tr)
	}
	engines := []engine.Engine{engine.MustNew("wcp", engine.Config{}), engine.MustNew("hb", engine.Config{})}
	drain := func(jobs int) {
		for res := range engine.AnalyzeCorpus(context.Background(), corpus, engines, jobs) {
			if res.Err != nil {
				panic(res.Err)
			}
		}
	}
	total := events * len(engines)
	results = append(results, measure("BatchAnalysis/serial", total, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			drain(1)
		}
	}))
	results = append(results, measure(fmt.Sprintf("BatchAnalysis/parallel_j%d", runtime.GOMAXPROCS(0)), total, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			drain(0)
		}
	}))

	doc := Doc{
		Date:    time.Now().UTC().Format(time.RFC3339),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.GOMAXPROCS(0),
		Results: results,
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			return fmt.Errorf("reading baseline: %w", err)
		}
		var base Doc
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("parsing baseline: %w", err)
		}
		base.Baseline = nil // keep one level of history
		doc.Baseline = &base
	}
	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(results))
	return nil
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
