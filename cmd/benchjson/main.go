// Command benchjson runs the scaling and batch-analysis benchmarks with
// memory accounting and writes the results as machine-readable JSON, so the
// performance trajectory (ns/op, B/op, allocs/op, events/s per trace size)
// is comparable across PRs without scraping `go test -bench` output.
//
// Usage:
//
//	benchjson                          # writes BENCH_wcp.json
//	benchjson -out results.json -scales 0.25,1,2
//	benchjson -baseline old.json       # embed a previous run for before/after
//	benchjson -label "PR 3"            # tag the run in the trajectory
//	benchjson -check BENCH_wcp.json    # perf smoke: warn on regressions, exit 0
//	benchjson -check BENCH_wcp.json -out BENCH_wcp.json  # measure once: compare, then rewrite
//
// Every write preserves a trajectory: when the output file already exists,
// its run is folded into the new document's trajectory (a dated events/s
// summary per benchmark), so the file carries the performance history of
// the repository across PRs, not just the latest pair of runs.
//
// -check mode runs the benchmarks and compares events/s against a committed
// baseline file instead of writing: benchmarks slower by more than
// -check-threshold percent print a GitHub-annotation-style warning. The
// exit code stays 0 — the check is a tripwire, not a gate — unless -strict
// is set.
//
// The benchmarks mirror BenchmarkScalingWCP, BenchmarkScalingHB,
// BenchmarkThreadScaling* and BenchmarkBatchAnalysis in bench_test.go: WCP
// and HB whole-trace analysis over the montecarlo workload at several sizes
// (Theorem 3's linearity check), the thread-scaling matrix (T swept at a
// fixed event count, windowed clocks vs the forced-dense baseline, on the
// disjoint-pool shape), and the serial-vs-parallel corpus runner
// comparison. Entries record their thread count and GOMAXPROCS; -check
// compares like-for-like series only. -benchtime bounds per-benchmark
// wall-clock (CI uses 0.3s); -threadscale selects the swept thread counts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/hb"
	"repro/internal/trace"
	"repro/internal/vc"
)

var (
	out         = flag.String("out", "BENCH_wcp.json", "output file")
	scales      = flag.String("scales", "0.25,0.5,1,2", "comma-separated montecarlo scales for the scaling benchmarks")
	threadScale = flag.String("threadscale", "8,64,256,1024", "comma-separated thread counts for the thread-scaling benchmarks; empty disables the series")
	benchtime   = flag.String("benchtime", "", "per-benchmark measuring time (testing's -test.benchtime; e.g. 0.3s for CI smoke)")
	baseline    = flag.String("baseline", "", "previous benchjson output to embed as the before side of a before/after record")
	label       = flag.String("label", "", "optional label recorded with this run in the trajectory")
	check       = flag.String("check", "", "perf-smoke mode: compare against this baseline file instead of writing")
	threshold   = flag.Float64("check-threshold", 20, "events/s regression percentage that triggers a -check warning")
	strict      = flag.Bool("strict", false, "exit non-zero when -check finds regressions")
)

// Entry is one benchmark measurement. Threads and GOMAXPROCS pin the series
// dimensions so -check compares like for like: entries whose dimensions
// differ (e.g. a baseline recorded on a different core count) are reported
// as skipped, not as regressions. Zero values (older files) match anything.
type Entry struct {
	Name         string  `json:"name"`
	Events       int     `json:"events"`
	Threads      int     `json:"threads,omitempty"`
	GOMAXPROCS   int     `json:"gomaxprocs,omitempty"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
}

// Snapshot is one past run folded into the trajectory: the date, optional
// label, and each benchmark's events/s.
type Snapshot struct {
	Date         string             `json:"date"`
	Label        string             `json:"label,omitempty"`
	EventsPerSec map[string]float64 `json:"events_per_sec"`
}

// maxTrajectory bounds the number of retained past runs.
const maxTrajectory = 50

// Doc is the file layout: environment, current results, optionally the
// embedded previous run for before/after comparisons, and the trajectory of
// earlier runs (newest last).
type Doc struct {
	Date       string     `json:"date"`
	Label      string     `json:"label,omitempty"`
	GOOS       string     `json:"goos"`
	GOARCH     string     `json:"goarch"`
	CPUs       int        `json:"cpus"`
	Results    []Entry    `json:"results"`
	Baseline   *Doc       `json:"baseline,omitempty"`
	Trajectory []Snapshot `json:"trajectory,omitempty"`
}

// snapshot summarizes a document for the trajectory.
func (d *Doc) snapshot() Snapshot {
	s := Snapshot{Date: d.Date, Label: d.Label, EventsPerSec: map[string]float64{}}
	for _, e := range d.Results {
		s.EventsPerSec[e.Name] = e.EventsPerSec
	}
	return s
}

// loadDoc reads a benchjson document from path.
func loadDoc(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &d, nil
}

// measure runs one benchmark. The detector benchmarks are single-threaded,
// so GOMAXPROCS is recorded only on the entries whose results depend on it
// (the batch runner) — a zero matches any baseline in -check.
func measure(name string, events, threads int, bench func(b *testing.B)) Entry {
	res := testing.Benchmark(bench)
	nsOp := float64(res.T.Nanoseconds()) / float64(res.N)
	e := Entry{
		Name:        name,
		Events:      events,
		Threads:     threads,
		Iterations:  res.N,
		NsPerOp:     nsOp,
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if events > 0 && nsOp > 0 {
		e.EventsPerSec = float64(events) / (nsOp / 1e9)
	}
	fmt.Printf("%-44s %10d ns/op %14.0f events/s %10d B/op %8d allocs/op\n",
		name, int64(e.NsPerOp), e.EventsPerSec, e.BytesPerOp, e.AllocsPerOp)
	return e
}

func parseScales(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad scale %q: %w", part, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad thread count %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func run() error {
	scaleList, err := parseScales(*scales)
	if err != nil {
		return err
	}
	bench, ok := gen.ByName("montecarlo")
	if !ok {
		return fmt.Errorf("montecarlo benchmark missing")
	}

	traces := make([]*trace.Trace, len(scaleList))
	for i, scale := range scaleList {
		traces[i] = bench.Generate(scale)
	}
	var results []Entry
	for _, tr := range traces {
		tr := tr
		results = append(results, measure(
			fmt.Sprintf("ScalingWCP/events_%d", tr.Len()), tr.Len(), tr.NumThreads(),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.DetectOpts(tr, core.Options{})
				}
			}))
	}
	for _, tr := range traces {
		tr := tr
		results = append(results, measure(
			fmt.Sprintf("ScalingHB/events_%d", tr.Len()), tr.Len(), tr.NumThreads(),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					hb.DetectOpts(tr, hb.Options{})
				}
			}))
	}

	// Thread-scaling series: events fixed, T swept, on the disjoint-pool
	// shape (the daemon-realistic workload; the full shape matrix lives in
	// BenchmarkThreadScaling*). Each T is measured twice — windowed clocks
	// (the default) and the dense-clock baseline (vc.ForceDense) — so the
	// committed file records the representation's before/after at every T.
	tsList, err := parseInts(*threadScale)
	if err != nil {
		return err
	}
	for _, T := range tsList {
		tr := gen.ThreadScaling(gen.ThreadScalingConfig{
			Threads: T, Events: 60_000, Shape: "pools", Races: 4,
		})
		for _, dense := range []bool{false, true} {
			suffix := ""
			if dense {
				suffix = "/dense"
			}
			vc.ForceDense(dense)
			results = append(results, measure(
				fmt.Sprintf("ThreadScalingWCP/pools/T%d%s", T, suffix), tr.Len(), T,
				func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						core.DetectOpts(tr, core.Options{})
					}
				}))
			results = append(results, measure(
				fmt.Sprintf("ThreadScalingHB/pools/T%d%s", T, suffix), tr.Len(), T,
				func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						hb.DetectOpts(tr, hb.Options{})
					}
				}))
			vc.ForceDense(false)
		}
	}

	// Batch analysis: serial vs parallel corpus runner, as in
	// BenchmarkBatchAnalysis (smaller corpus; same shape).
	files := 2 * runtime.GOMAXPROCS(0)
	corpus := make([]engine.Source, files)
	events := 0
	for i := range corpus {
		tr := gen.Random(gen.RandomConfig{Seed: int64(i + 1), Events: 30_000, Threads: 6, Locks: 8, Vars: 24})
		events += tr.Len()
		corpus[i] = engine.TraceSource(fmt.Sprintf("trace-%d", i), tr)
	}
	engines := []engine.Engine{engine.MustNew("wcp", engine.Config{}), engine.MustNew("hb", engine.Config{})}
	drain := func(jobs int) {
		for res := range engine.AnalyzeCorpus(context.Background(), corpus, engines, jobs) {
			if res.Err != nil {
				panic(res.Err)
			}
		}
	}
	total := events * len(engines)
	batch := measure("BatchAnalysis/serial", total, 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			drain(1)
		}
	})
	batch.GOMAXPROCS = runtime.GOMAXPROCS(0)
	results = append(results, batch)
	batch = measure(fmt.Sprintf("BatchAnalysis/parallel_j%d", runtime.GOMAXPROCS(0)), total, 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			drain(0)
		}
	})
	batch.GOMAXPROCS = runtime.GOMAXPROCS(0)
	results = append(results, batch)

	if *check != "" {
		// One measurement serves both: compare against the baseline, and —
		// when -out was explicitly given too — fall through to write the
		// fresh document from the same run (CI measures once that way).
		err := runCheck(results, *check)
		outSet := false
		flag.Visit(func(f *flag.Flag) { outSet = outSet || f.Name == "out" })
		if err != nil || !outSet {
			return err
		}
	}

	doc := Doc{
		Date:    time.Now().UTC().Format(time.RFC3339),
		Label:   *label,
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.GOMAXPROCS(0),
		Results: results,
	}
	// Fold the previous contents of the output file into the trajectory so
	// the file accumulates the performance history across runs.
	if prev, err := loadDoc(*out); err == nil {
		doc.Trajectory = append(prev.Trajectory, prev.snapshot())
		if n := len(doc.Trajectory); n > maxTrajectory {
			doc.Trajectory = doc.Trajectory[n-maxTrajectory:]
		}
	}
	if *baseline != "" {
		base, err := loadDoc(*baseline)
		if err != nil {
			return fmt.Errorf("reading baseline: %w", err)
		}
		base.Baseline = nil // keep one level of history
		base.Trajectory = nil
		doc.Baseline = base
	}
	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks, %d past runs in trajectory)\n", *out, len(results), len(doc.Trajectory))
	return nil
}

// runCheck compares the fresh results against the committed baseline file,
// warning (GitHub annotation format) about benchmarks whose events/s
// regressed by more than the threshold. Non-blocking unless -strict.
func runCheck(results []Entry, path string) error {
	base, err := loadDoc(path)
	if err != nil {
		return fmt.Errorf("reading check baseline: %w", err)
	}
	baseBy := make(map[string]Entry, len(base.Results))
	for _, e := range base.Results {
		baseBy[e.Name] = e
	}
	regressions := 0
	measured := make(map[string]bool, len(results))
	for _, e := range results {
		measured[e.Name] = true
		b, ok := baseBy[e.Name]
		if !ok || b.EventsPerSec <= 0 || e.EventsPerSec <= 0 {
			continue
		}
		// Like-for-like only: a baseline recorded with different series
		// dimensions (thread count, GOMAXPROCS) is not comparable. Zero
		// baseline dimensions (older file formats) match anything.
		if (b.Threads != 0 && b.Threads != e.Threads) ||
			(b.GOMAXPROCS != 0 && b.GOMAXPROCS != e.GOMAXPROCS) {
			fmt.Printf("check %-44s skipped: baseline dims (T=%d, procs=%d) != run dims (T=%d, procs=%d)\n",
				e.Name, b.Threads, b.GOMAXPROCS, e.Threads, e.GOMAXPROCS)
			continue
		}
		delta := 100 * (e.EventsPerSec - b.EventsPerSec) / b.EventsPerSec
		status := "ok"
		if delta < -*threshold {
			regressions++
			status = "REGRESSION"
			fmt.Printf("::warning title=benchjson perf smoke::%s events/s %.0f -> %.0f (%.1f%%), beyond the %.0f%% threshold\n",
				e.Name, b.EventsPerSec, e.EventsPerSec, delta, *threshold)
		}
		fmt.Printf("check %-44s %14.0f -> %14.0f events/s (%+.1f%%) %s\n",
			e.Name, b.EventsPerSec, e.EventsPerSec, delta, status)
	}
	// Baseline benchmarks this run did not measure (e.g. reduced -scales or
	// a different core count) are reported, not silently skipped: the smoke
	// check's coverage gap should be visible in the log.
	for _, e := range base.Results {
		if !measured[e.Name] {
			fmt.Printf("check %-44s not measured in this run (baseline %.0f events/s unguarded)\n",
				e.Name, e.EventsPerSec)
		}
	}
	if regressions > 0 {
		fmt.Printf("benchjson: %d benchmark(s) regressed beyond %.0f%% vs %s (non-blocking)\n", regressions, *threshold, path)
		if *strict {
			return fmt.Errorf("%d perf regression(s)", regressions)
		}
	} else {
		fmt.Printf("benchjson: no regressions beyond %.0f%% vs %s\n", *threshold, path)
	}
	return nil
}

func main() {
	// Register testing's flags before parsing ours so -benchtime can be
	// forwarded to testing.Benchmark.
	testing.Init()
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -benchtime:", err)
			os.Exit(1)
		}
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
