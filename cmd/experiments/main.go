// Command experiments regenerates the paper's evaluation artifacts on the
// synthetic workloads:
//
//	experiments -table1                # Table 1 (all 18 benchmarks)
//	experiments -table1 -bench derby   # a single row
//	experiments -table1 -skip-predict  # fast: omit the RVPredict columns
//	experiments -figure7               # Figure 7 (eclipse, ftpserver, derby)
//	experiments -csv out.csv -table1   # machine-readable output too
//
// See EXPERIMENTS.md for recorded paper-vs-measured comparisons.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro"
)

var (
	table1      = flag.Bool("table1", false, "regenerate Table 1")
	figure7     = flag.Bool("figure7", false, "regenerate Figure 7's sweep")
	bench       = flag.String("bench", "", "restrict to one benchmark")
	scale       = flag.Float64("scale", 1.0, "workload scale factor")
	skipPredict = flag.Bool("skip-predict", false, "omit the predictive (RVPredict) columns")
	fullGrid    = flag.Bool("full-grid", false, "compute the Max column over the full window×budget grid")
	csvPath     = flag.String("csv", "", "also write results as CSV")
	jobs        = flag.Int("jobs", 0, "worker-pool width for the benchmark fan-out; 0 = GOMAXPROCS, 1 = serial (steadiest timings)")
)

func main() {
	flag.Parse()
	if !*table1 && !*figure7 {
		fmt.Fprintln(os.Stderr, "experiments: pass -table1 and/or -figure7")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *table1 {
		runTable1()
	}
	if *figure7 {
		runFigure7()
	}
}

func runTable1() {
	opts := repro.Table1Options{Scale: *scale, SkipPredict: *skipPredict, FullGrid: *fullGrid, Jobs: *jobs}
	if *bench != "" {
		opts.Benchmarks = []string{*bench}
	}
	start := time.Now()
	rows := repro.RunTable1(opts)
	fmt.Println("=== Table 1 (synthetic workloads; see EXPERIMENTS.md for the paper comparison) ===")
	fmt.Print(repro.FormatTable1(rows))
	fmt.Printf("expected race counts: ")
	ok := true
	for _, r := range rows {
		if r.WCPRaces != r.WantWCP || r.HBRaces != r.WantHB {
			ok = false
			fmt.Printf("\n  %s: got WCP=%d HB=%d, paper says WCP=%d HB=%d", r.Name, r.WCPRaces, r.HBRaces, r.WantWCP, r.WantHB)
		}
	}
	if ok {
		fmt.Printf("all match Table 1 columns 6-7\n")
	} else {
		fmt.Println()
	}
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	if *csvPath != "" {
		writeTable1CSV(rows)
	}
}

func runFigure7() {
	names := []string{"eclipse", "ftpserver", "derby"}
	if *bench != "" {
		names = []string{*bench}
	}
	start := time.Now()
	points := repro.RunFigure7Opts(repro.Figure7Options{Benchmarks: names, Scale: *scale, Jobs: *jobs})
	fmt.Println("=== Figure 7: predictive races vs (window size × solver budget) ===")
	fmt.Print(repro.FormatFigure7(points))
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
}

func writeTable1CSV(rows []repro.Table1Row) {
	f, err := os.Create(*csvPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	w.Write([]string{"bench", "events", "threads", "locks", "wcp", "hb",
		"predict1k", "predict10k", "predictmax", "queue_frac",
		"wcp_ms", "hb_ms", "predict1k_ms", "predict10k_ms"})
	for _, r := range rows {
		w.Write([]string{
			r.Name,
			strconv.Itoa(r.Events), strconv.Itoa(r.Threads), strconv.Itoa(r.Locks),
			strconv.Itoa(r.WCPRaces), strconv.Itoa(r.HBRaces),
			strconv.Itoa(r.Predict1K), strconv.Itoa(r.Predict10K), strconv.Itoa(r.PredictMax),
			fmt.Sprintf("%.4f", r.QueueFraction),
			fmt.Sprintf("%.2f", float64(r.WCPTime.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(r.HBTime.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(r.Predict1KTime.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(r.Predict10KTime.Microseconds())/1000),
		})
	}
}
