// Command raced is the always-on race-analysis daemon: the paper's
// linear-time streaming property turned into a service. Clients open
// sessions, stream binary trace chunks, and get per-engine race reports
// back; races are deduplicated by fingerprint across all sessions and
// queryable over /reports.
//
// Usage:
//
//	raced -addr :7477 -engines wcp,hb -workers 8 -queue 64
//
// Endpoints:
//
//	POST   /sessions?engines=...   open a session (body: binary trace header)
//	POST   /sessions/{id}/chunks   stream event-body chunks
//	POST   /sessions/{id}/finish   seal the session, get the reports
//	DELETE /sessions/{id}          abort without reporting
//	GET    /sessions[/{id}]        session status
//	POST   /analyze?engines=...    one-shot whole-trace analysis (any format)
//	POST   /checkpoint             checkpoint all sessions + reports now
//	GET    /sessions/{id}/snapshot serialized session state (migration handoff)
//	POST   /sessions/restore       accept a serialized session (body: snapshot)
//	GET    /reports?engine=&var=&loc=&min_count=&limit=   dedup race classes
//	GET    /healthz                liveness + drain state
//	GET    /metrics                counters (Prometheus text format)
//
// SIGINT/SIGTERM drain gracefully: in-flight chunks finish, open sessions
// are finalized into the report store, then the process exits. With
// -checkpoint-dir set, open sessions are checkpointed instead and a
// restarted daemon resumes them where the stream left off — the same path
// that recovers from a crash (kill -9, OOM, power loss).
//
// Fleet mode (see internal/fleet) shards the service across processes:
//
//	raced -coordinator -addr :7470
//	raced -addr :7471 -join http://localhost:7470
//	raced -addr :7472 -join http://localhost:7470
//
// The coordinator serves the same session API, placing each session on a
// worker via consistent hashing and failing sessions over to survivors
// when a worker dies; GET /fleet shows membership and placements, and
// /reports merges every worker's race classes. A worker's SIGTERM leaves
// the fleet gracefully — its sessions are handed off before the drain.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the debug mux below
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/server"
)

// deriveAdvertise turns a listen address into a dialable base URL: a bare
// ":7477" advertises the loopback address, anything with a host is used
// as-is.
func deriveAdvertise(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

var (
	addr         = flag.String("addr", ":7477", "listen address")
	engines      = flag.String("engines", "wcp", "default engines for sessions and /analyze (comma-separated)")
	workers      = flag.Int("workers", 0, "concurrent analysis tasks (0 = GOMAXPROCS)")
	queue        = flag.Int("queue", 0, "pending-task queue capacity (0 = 4x workers)")
	maxBody      = flag.Int64("max-body", 32<<20, "max request body bytes")
	maxSessions  = flag.Int("max-sessions", 1024, "max concurrently-open sessions")
	idle         = flag.Duration("idle", 5*time.Minute, "evict sessions idle this long (<0 disables)")
	window       = flag.Int("window", 0, "window size for the cp/predict engines on /analyze")
	budget       = flag.Int("budget", 0, "per-window search budget for the predict engine")
	drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight work at shutdown")

	checkpointDir   = flag.String("checkpoint-dir", "", "directory for session/report checkpoints; enables crash recovery and graceful restarts")
	checkpointEvery = flag.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval (<0 disables the timer; POST /checkpoint still works)")
	compactEvery    = flag.Int("compact-every", 1<<20, "compact session detector state every N events (0 disables)")
	compactBudget   = flag.Int("compact-budget", 0, "only compact sessions whose state estimate exceeds this many bytes (0 = always)")

	stateBudget   = flag.Int64("state-budget", 0, "global detector-state budget in bytes: over it, sessions are force-compacted then parked coldest-first (0 disables)")
	ingestTimeout = flag.Duration("ingest-timeout", time.Minute, "per-request body read deadline (<0 disables)")
	chaos         = flag.String("chaos", "", "inject connection faults for resilience testing, e.g. 'drop=0.2,trunc=0.1,stall=0.1,flip=0.05,latency=2ms,seed=7' (see internal/faultinject)")

	debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this side address (empty disables); CPU profiles carry session= and engine= labels")
	obsSample = flag.Int("obs-sample", 0, "sample per-block stage timing every Nth decoded block (0 = default 32, <0 disables)")
	logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")

	// Fleet mode (see internal/fleet). -coordinator turns this process into
	// the fleet front door; -join turns it into a worker of one.
	coordinator      = flag.Bool("coordinator", false, "run as a fleet coordinator instead of an analysis worker")
	heartbeatTimeout = flag.Duration("heartbeat-timeout", 3*time.Second, "coordinator: declare a worker failed after this long without a heartbeat")
	pullEvery        = flag.Duration("pull-every", 10*time.Second, "coordinator: session checkpoint pull interval (<0 disables; failover then replays whole streams)")
	proxyTimeout     = flag.Duration("proxy-timeout", 2*time.Minute, "coordinator: per proxied request timeout")
	noRebalance      = flag.Bool("no-rebalance", false, "coordinator: don't migrate sessions onto newly joined workers")
	journalDir       = flag.String("journal-dir", "", "coordinator: directory for the durable placement journal; a restarted coordinator replays it and resumes in-flight sessions")
	standbyOf        = flag.String("standby-of", "", "coordinator: run as a warm standby of this primary coordinator URL, taking over when its lease lapses")
	leaseTimeout     = flag.Duration("lease-timeout", 0, "standby: declare the primary dead after this long without a successful journal poll (default 3x heartbeat-timeout)")
	recoveryGrace    = flag.Duration("recovery-grace", 0, "coordinator: after a restart or takeover, adopt worker-reported sessions for this long before rebalancing (default 2x heartbeat-timeout)")
	join             = flag.String("join", "", "worker: coordinator base URL(s) to register with, comma-separated primary,standby (e.g. http://localhost:7470)")
	advertise        = flag.String("advertise", "", "worker: base URL the coordinator should dial for this worker (default derived from -addr)")
	workerName       = flag.String("worker-name", "", "worker: stable fleet identity (default: the advertise URL)")
)

// newLogger builds the process logger every component shares. Structured
// fields (session=, trace=, worker=) make the logs greppable and let a log
// pipeline join them with /debug/trace output on the trace id.
func newLogger() *slog.Logger {
	if *logJSON {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

// startDebugServer serves net/http/pprof on its own listener so profiling
// is never exposed on the public service address. The blank pprof import
// registers its handlers on http.DefaultServeMux.
func startDebugServer(logger *slog.Logger) {
	if *debugAddr == "" {
		return
	}
	go func() {
		logger.Info("debug server listening", "addr", *debugAddr, "endpoints", "/debug/pprof/")
		if err := http.ListenAndServe(*debugAddr, http.DefaultServeMux); err != nil {
			logger.Error("debug server failed", "err", err)
		}
	}()
}

func main() {
	flag.Parse()
	logger := newLogger()
	startDebugServer(logger)
	var err error
	if *coordinator {
		err = runCoordinator(logger)
	} else {
		err = run(logger)
	}
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
}

// runCoordinator serves the fleet front door: the full session API proxied
// onto registered workers, plus /fleet membership endpoints and a merged
// /reports view.
func runCoordinator(logger *slog.Logger) error {
	co := fleet.NewCoordinator(fleet.CoordinatorConfig{
		HeartbeatTimeout: *heartbeatTimeout,
		PullEvery:        *pullEvery,
		ProxyTimeout:     *proxyTimeout,
		MaxBodyBytes:     *maxBody,
		NoRebalance:      *noRebalance,
		JournalDir:       *journalDir,
		StandbyOf:        *standbyOf,
		LeaseTimeout:     *leaseTimeout,
		RecoveryGrace:    *recoveryGrace,
		Logger:           logger,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: co.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Info("coordinator listening", "addr", *addr, "heartbeat_timeout", *heartbeatTimeout)
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Info("coordinator shutting down", "timeout", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		logger.Error("http shutdown", "err", err)
	}
	return co.Close(dctx)
}

func run(logger *slog.Logger) error {
	names := strings.Split(*engines, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
		if _, err := engine.New(names[i], engine.Config{}); err != nil {
			return err
		}
	}

	// The chaos injector wraps the listener so every accepted connection
	// draws a fault plan — drops, stalls, bit flips, truncations — before
	// the HTTP layer sees a byte. Its counters ride along on /metrics.
	var inj *faultinject.Injector
	if *chaos != "" {
		opts, err := faultinject.ParseSpec(*chaos)
		if err != nil {
			return err
		}
		inj = faultinject.New(opts)
	}

	cfg := server.Config{
		DefaultEngines: names,
		Engine:         engine.Config{Window: *window, Budget: *budget},
		Workers:        *workers,
		QueueCap:       *queue,
		MaxBodyBytes:   *maxBody,
		MaxSessions:    *maxSessions,
		IdleTimeout:    *idle,
		Logger:         logger,
		Name:           *workerName,
		ObsSampleEvery: *obsSample,

		CheckpointDir:      *checkpointDir,
		CheckpointEvery:    *checkpointEvery,
		CompactEveryEvents: *compactEvery,
		CompactBudgetBytes: *compactBudget,

		StateBudgetBytes: *stateBudget,
		IngestTimeout:    *ingestTimeout,
	}
	if inj != nil {
		cfg.ExtraMetrics = inj.Counters.WriteMetrics
	}
	srv := server.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if inj != nil {
		logger.Warn("CHAOS MODE: injecting faults on every connection", "spec", *chaos)
		ln = inj.WrapListener(ln)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "engines", names)
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	// Fleet worker mode: register with the coordinator and heartbeat until
	// shutdown, which then leaves gracefully — the coordinator migrates this
	// worker's sessions to survivors before the drain starts.
	var agent *fleet.Agent
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = deriveAdvertise(*addr)
		}
		agent = fleet.StartAgent(fleet.AgentConfig{
			Coordinator: *join,
			Advertise:   adv,
			Name:        *workerName,
			Load: func() fleet.WorkerLoad {
				st := srv.Stats()
				return fleet.WorkerLoad{Sessions: st.Sessions, StateBytes: st.StateBytes, QueueDepth: st.QueueDepth}
			},
			Sessions:  srv.SessionIDs,
			Abort:     srv.AbortSession,
			Epoch:     srv.CoordinatorEpoch,
			NoteEpoch: srv.NoteCoordinatorEpoch,
			Logger:    logger,
		})
		logger.Info("joining fleet", "coordinator", *join, "advertise", adv)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	logger.Info("shutdown signal received, draining", "timeout", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if agent != nil {
		if err := agent.Leave(dctx); err != nil {
			logger.Error("fleet leave", "err", err)
		} else {
			logger.Info("left the fleet; sessions handed off")
		}
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		logger.Error("http shutdown", "err", err)
	}
	if err := srv.Close(dctx); err != nil {
		logger.Error("drain", "err", err)
	}
	st := srv.Store()
	logger.Info("drained", "race_classes", st.Len(), "observations", st.Observations())
	return nil
}
