// Package repro is the public API of this reproduction of "Dynamic Race
// Prediction in Linear Time" (Kini, Mathur, Viswanathan; PLDI 2017).
//
// The paper's contribution is the Weak-Causally-Precedes (WCP) relation: a
// sound weakening of Causally-Precedes (CP) that detects strictly more
// predictable data races than happens-before (HB) while still admitting a
// linear-time, single-pass vector-clock detection algorithm. This package
// exposes:
//
//   - trace construction (NewTraceBuilder), parsing (ReadTrace*, text and
//     binary formats) and validation;
//   - the streaming WCP detector (DetectWCP, NewWCPDetector) — the paper's
//     Algorithm 1 — plus the HB, CP, lockset and windowed-predictive
//     baselines it is evaluated against;
//   - witness search over correct reorderings (FindRaceWitness,
//     FindDeadlock) and the correct-reordering checker, used to certify
//     race reports;
//   - the engine orchestration layer (NewEngine, RunEngines,
//     AnalyzeTraceFiles): every detector behind one interface, a
//     concurrent fan-out of one trace to many engines, and a worker pool
//     streaming batch analysis of trace corpora;
//   - the synthetic workload generators for the paper's 18 benchmarks and
//     the experiment harness that regenerates Table 1 and Figure 7 (see
//     experiments.go).
//
// Everything is implemented from scratch on the Go standard library; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results.
package repro

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/gen"
	"repro/internal/hb"
	"repro/internal/lockset"
	"repro/internal/predict"
	"repro/internal/race"
	"repro/internal/trace"
	"repro/internal/traceio"
)

// Trace is a sequence of events with its symbol tables (§2.1 of the paper).
type Trace = trace.Trace

// Symbols names a trace's threads, locks, variables and program locations.
type Symbols = event.Symbols

// TraceEvent is a single trace operation (§2.1's acquire/release,
// read/write, fork/join), the unit streaming block readers decode into.
type TraceEvent = event.Event

// Builder constructs traces programmatically.
type Builder = trace.Builder

// Reordering is a candidate alternative schedule of a trace's events.
type Reordering = trace.Reordering

// Report collects distinct race pairs of program locations.
type Report = race.Report

// RacePair is an unordered pair of racing program locations.
type RacePair = race.Pair

// WCPResult is the outcome of the WCP detector (Algorithm 1).
type WCPResult = core.Result

// WCPOptions configures the WCP detector.
type WCPOptions = core.Options

// WCPDetector is the streaming WCP detector; feed events with Process.
type WCPDetector = core.Detector

// HBResult is the outcome of the happens-before detectors.
type HBResult = hb.Result

// CPResult is the outcome of the windowed CP baseline.
type CPResult = cp.Result

// PredictOptions configures the windowed predictive (RVPredict-style)
// detector.
type PredictOptions = predict.Options

// PredictResult is the outcome of the predictive detector.
type PredictResult = predict.Result

// LocksetResult is the outcome of the Eraser lockset baseline.
type LocksetResult = lockset.Result

// Witness is a correct reordering revealing a race or deadlock.
type Witness = predict.Witness

// SearchBudget bounds a witness search (the paper's SMT-timeout analog).
type SearchBudget = predict.Budget

// Benchmark describes a synthetic Table-1 workload.
type Benchmark = gen.Benchmark

// RandomTraceConfig parameterizes random well-formed trace generation.
type RandomTraceConfig = gen.RandomConfig

// NewTraceBuilder returns an empty trace builder.
func NewTraceBuilder() *Builder { return trace.NewBuilder() }

// NewReport returns an empty race report, for merging detector outputs.
func NewReport() *Report { return race.NewReport() }

// ValidateTrace checks lock semantics, well-nestedness and fork/join sanity.
func ValidateTrace(tr *Trace) error { return trace.Validate(tr) }

// TraceStats summarizes a trace's event mix.
func TraceStats(tr *Trace) trace.Stats { return trace.ComputeStats(tr) }

// DetectWCP runs the linear-time WCP race detector (Algorithm 1) over the
// trace with distinct race-pair tracking.
func DetectWCP(tr *Trace) *WCPResult { return core.Detect(tr) }

// DetectWCPOpts runs the WCP detector with explicit options.
func DetectWCPOpts(tr *Trace, opts WCPOptions) *WCPResult { return core.DetectOpts(tr, opts) }

// NewWCPDetector returns a streaming WCP detector for online analysis; the
// thread/lock/variable counts must be known up front (binary trace headers
// carry them).
func NewWCPDetector(threads, locks, vars int, opts WCPOptions) *WCPDetector {
	return core.NewDetector(threads, locks, vars, opts)
}

// RaceEventPair is a concrete pair of racing events (trace indices).
type RaceEventPair = core.EventPair

// RaceVerdict classifies a vindicated race pair.
type RaceVerdict = core.Verdict

// Verdict values for vindicated race pairs.
const (
	VerdictRace        = core.VerdictRace
	VerdictDeadlock    = core.VerdictDeadlock
	VerdictUnconfirmed = core.VerdictUnconfirmed
)

// Vindication is a certified race pair with its witness schedule.
type Vindication = core.Vindication

// FindWCPRacePairs runs the §3.2 two-pass analysis returning the concrete
// event-level race pairs (the single-pass Report only knows the second
// event of each pair).
func FindWCPRacePairs(tr *Trace) []RaceEventPair { return core.FindRacePairs(tr) }

// VindicateWCPRaces extracts the event-level WCP race pairs and certifies
// each with the witness engine: a correct reordering revealing the race, a
// predictable deadlock (the Theorem 1 alternative), or unconfirmed if the
// budget ran out. maxPairs caps the work (0 = all pairs).
func VindicateWCPRaces(tr *Trace, maxPairs int, b SearchBudget) []Vindication {
	return core.Vindicate(tr, maxPairs, b)
}

// DetectWCPEpoch runs the WCP detector with the epoch-optimized race check
// (§6 future work): same clock machinery, per-variable state reduced to
// epochs. Reports race existence and first race, no pair report.
func DetectWCPEpoch(tr *Trace) *WCPResult { return core.DetectEpoch(tr) }

// DetectHB runs the full-vector-clock happens-before detector.
func DetectHB(tr *Trace) *HBResult { return hb.Detect(tr) }

// DetectHBEpoch runs the FastTrack-style epoch-optimized HB detector
// (cheaper; reports race existence and first race, no pair report).
func DetectHBEpoch(tr *Trace) *HBResult { return hb.DetectEpoch(tr) }

// DetectCP runs the Causally-Precedes baseline with the given window size
// (CP has no known linear-time algorithm, so it is analyzed per fragment;
// windowSize <= 0 analyzes the whole trace, feasible only for small ones).
func DetectCP(tr *Trace, windowSize int) *CPResult {
	return cp.Detect(tr, cp.Options{WindowSize: windowSize})
}

// DetectPredictive runs the windowed RVPredict-style reordering-search
// detector.
func DetectPredictive(tr *Trace, opts PredictOptions) *PredictResult {
	return predict.Detect(tr, opts)
}

// DetectLockset runs the Eraser lockset baseline (unsound: may report
// spurious races).
func DetectLockset(tr *Trace) *LocksetResult { return lockset.Detect(tr) }

// FindRaceWitness searches for a correct reordering scheduling the
// conflicting events e1 and e2 adjacently.
func FindRaceWitness(tr *Trace, e1, e2 int, b SearchBudget) (Witness, bool) {
	return predict.FindRaceWitness(tr, e1, e2, b)
}

// FindDeadlock searches for a correct reordering ending in a deadlock.
func FindDeadlock(tr *Trace, b SearchBudget) (Witness, bool) {
	return predict.FindDeadlock(tr, b)
}

// CheckReordering verifies the §2.1 correct-reordering conditions.
func CheckReordering(tr *Trace, ro Reordering) error { return trace.CheckReordering(tr, ro) }

// Benchmarks returns the synthetic equivalents of the paper's 18 Table-1
// benchmarks, in table order.
func Benchmarks() []Benchmark { return gen.Benchmarks }

// BenchmarkByName looks up one benchmark.
func BenchmarkByName(name string) (Benchmark, bool) { return gen.ByName(name) }

// RandomTrace generates a well-formed random trace.
func RandomTrace(cfg RandomTraceConfig) *Trace { return gen.Random(cfg) }

// ThreadScalingConfig parameterizes high-thread-count scenario generation.
type ThreadScalingConfig = gen.ThreadScalingConfig

// ThreadScalingShapes lists the supported thread-scaling scenario shapes.
func ThreadScalingShapes() []string { return gen.ThreadScalingShapes }

// ThreadScalingTrace generates a high-thread-count scenario trace (thread
// pools with disjoint lock neighborhoods, fork/join waves, or one hot
// global lock).
func ThreadScalingTrace(cfg ThreadScalingConfig) *Trace { return gen.ThreadScaling(cfg) }

// LowerBoundTrace builds the Figure-8 space-lower-bound trace for bit
// strings u and v (equal length): the two w(z) events race iff u ≠ v.
func LowerBoundTrace(u, v []bool) *Trace { return gen.LowerBound(u, v) }

// ReadTrace parses a trace, auto-detecting the binary format by its magic
// and falling back to the text format.
func ReadTrace(r io.Reader) (*Trace, error) { return traceio.ReadAuto(r) }

// ReadTraceFile parses a trace file, auto-detecting the format.
func ReadTraceFile(path string) (*Trace, error) { return traceio.ReadFile(path) }

// WriteTraceText writes the line-oriented text format.
func WriteTraceText(w io.Writer, tr *Trace) error { return traceio.WriteText(w, tr) }

// WriteTraceBinary writes the compact binary format.
func WriteTraceBinary(w io.Writer, tr *Trace) error { return traceio.WriteBinary(w, tr) }

// NewTraceScanner streams text-format events for online analysis.
func NewTraceScanner(r io.Reader) *traceio.Scanner { return traceio.NewScanner(r) }

// TraceStream decodes a trace incrementally, block by block, without ever
// materializing the whole event sequence (binary headers carry the
// dimensions up front; see OpenTraceStream).
type TraceStream = traceio.Stream

// TraceDims are the trace dimensions a streaming detector needs up front.
type TraceDims = traceio.Dims

// BinaryTraceWriter emits a binary-format trace incrementally: header up
// front, then events in blocks, never materializing the trace.
type BinaryTraceWriter = traceio.BinaryWriter

// DefaultStreamBlockSize is the event-buffer size streaming consumers use
// when they have no better number.
const DefaultStreamBlockSize = traceio.DefaultBlockSize

// OpenTraceStream starts decoding a trace from r, auto-detecting the format.
func OpenTraceStream(r io.Reader) (*TraceStream, error) { return traceio.OpenStream(r) }

// StreamTraceFile starts decoding a trace file, auto-detecting the format.
// The stream owns the file handle; Close releases it.
func StreamTraceFile(path string) (*TraceStream, error) { return traceio.StreamFile(path) }

// NewBinaryTraceWriter writes the binary header for a trace of exactly
// nevents events naming syms and returns a writer for the event body.
func NewBinaryTraceWriter(w io.Writer, syms *Symbols, nevents int) (*BinaryTraceWriter, error) {
	return traceio.NewBinaryWriter(w, syms, nevents)
}

// Engine is a race-detection analysis runnable over a trace; all engines
// are safe for concurrent use and share traces read-only.
type Engine = engine.Engine

// EngineResult is the uniform outcome of one engine over one trace.
type EngineResult = engine.Result

// EngineConfig carries the window/budget knobs of the windowed engines.
type EngineConfig = engine.Config

// TraceSource is one entry of an analysis corpus (a named trace loader).
type TraceSource = engine.Source

// CorpusResult is the streamed analysis of one corpus entry.
type CorpusResult = engine.CorpusResult

// StreamEngine is an Engine whose detector consumes a trace block by block,
// never materializing it ("wcp", "wcp-epoch", "hb", "hb-epoch").
type StreamEngine = engine.StreamAnalyzer

// EnginesCanStream reports whether every engine supports streaming analysis.
func EnginesCanStream(engines []Engine) bool { return engine.CanStream(engines) }

// NewFileTraceSource returns a corpus entry for a trace file. The source is
// streamable: corpus runs whose engines all support streaming analyze the
// file block by block without materializing it.
func NewFileTraceSource(path string) TraceSource { return engine.FileSource(path) }

// NewEngine returns the named detector ("wcp", "wcp-epoch", "hb",
// "hb-epoch", "cp", "predict", "lockset") behind the uniform Engine
// interface.
func NewEngine(name string, cfg EngineConfig) (Engine, error) { return engine.New(name, cfg) }

// AllEngines returns every detector, in canonical reporting order.
func AllEngines(cfg EngineConfig) []Engine { return engine.All(cfg) }

// EngineNames returns the valid engine names, sorted.
func EngineNames() []string { return engine.Names() }

// RunEngines fans tr out to all engines concurrently (each engine walks the
// shared trace with its own cursor) and returns results in engine order.
func RunEngines(ctx context.Context, tr *Trace, engines []Engine) []*EngineResult {
	return engine.RunAll(ctx, tr, engines)
}

// AnalyzeTraceFiles fans the trace files out across a pool of jobs workers
// (GOMAXPROCS when jobs <= 0), running every engine over every trace, and
// streams per-file results over the returned channel as files complete.
func AnalyzeTraceFiles(ctx context.Context, paths []string, engines []Engine, jobs int) <-chan CorpusResult {
	return engine.AnalyzeFiles(ctx, paths, engines, jobs)
}

// AnalyzeTraceCorpus is AnalyzeTraceFiles over arbitrary trace sources
// (e.g. in-memory traces via NewTraceSource).
func AnalyzeTraceCorpus(ctx context.Context, corpus []TraceSource, engines []Engine, jobs int) <-chan CorpusResult {
	return engine.AnalyzeCorpus(ctx, corpus, engines, jobs)
}

// NewTraceSource wraps an in-memory trace as a corpus entry.
func NewTraceSource(name string, tr *Trace) TraceSource { return engine.TraceSource(name, tr) }
