package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/gen"
	"repro/internal/hb"
	"repro/internal/predict"
	"repro/internal/trace"
	"repro/internal/traceio"
	"repro/internal/window"
)

// This file regenerates the paper's evaluation artifacts as Go benchmarks:
//
//   - BenchmarkTable1: columns 6–7 and 12–13 of Table 1 — WCP and HB
//     analysis over each benchmark's whole trace (races are asserted, time
//     and memory are the measurements; events/s is reported as a metric).
//   - BenchmarkTable1Predict: columns 8–9 and 14–15 — the RVPredict
//     substitute at the two reported window/budget points.
//   - BenchmarkFigure7: the window×budget sweep for eclipse/ftpserver/derby.
//   - BenchmarkScalingWCP/HB: Theorem 3 — linear time in trace length
//     (compare events/s across sizes).
//   - BenchmarkLowerBoundSpace: Theorems 4–5 — queue growth on the Figure-8
//     family (queue entries reported as a metric).
//   - BenchmarkAblation*: design-choice ablations called out in DESIGN.md
//     (windowed vs whole-trace WCP; epoch vs vector-clock HB).
//
// Absolute numbers differ from the paper's (scaled synthetic workloads on
// different hardware); EXPERIMENTS.md records the shape comparison.

// table1Scale keeps the per-iteration cost of the full table benchmarks
// moderate; cmd/experiments runs the full-scale version.
const table1Scale = 0.25

var traceCache = map[string]*trace.Trace{}

func benchTrace(b *testing.B, name string, scale float64) *trace.Trace {
	b.Helper()
	key := fmt.Sprintf("%s@%g", name, scale)
	if tr, ok := traceCache[key]; ok {
		return tr
	}
	bench, ok := gen.ByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %s", name)
	}
	tr := bench.Generate(scale)
	traceCache[key] = tr
	return tr
}

func reportEventsPerSec(b *testing.B, events int) {
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkTable1 measures whole-trace WCP and HB analysis per benchmark
// (Table 1 columns 6–7, 12–13) and asserts the distinct-race-pair counts.
func BenchmarkTable1(b *testing.B) {
	for _, bench := range gen.Benchmarks {
		bench := bench
		tr := benchTrace(b, bench.Name, table1Scale)
		b.Run(bench.Name+"/WCP", func(b *testing.B) {
			var races int
			for i := 0; i < b.N; i++ {
				races = core.Detect(tr).Report.Distinct()
			}
			if races != bench.WCPRaces() {
				b.Fatalf("WCP races = %d, want %d", races, bench.WCPRaces())
			}
			reportEventsPerSec(b, tr.Len())
		})
		b.Run(bench.Name+"/HB", func(b *testing.B) {
			var races int
			for i := 0; i < b.N; i++ {
				races = hb.Detect(tr).Report.Distinct()
			}
			if races != bench.HBRaces {
				b.Fatalf("HB races = %d, want %d", races, bench.HBRaces)
			}
			reportEventsPerSec(b, tr.Len())
		})
	}
}

// BenchmarkTable1Predict measures the windowed predictive engine at the
// paper's two reported parameter points (Table 1 columns 8–9, 14–15), on
// the three benchmarks Figure 7 highlights.
func BenchmarkTable1Predict(b *testing.B) {
	points := []struct {
		window, budget int
		label          string
	}{
		{1000, 60 * NodesPerSolverSecond, "w1K_b60"},
		{10000, 240 * NodesPerSolverSecond, "w10K_b240"},
	}
	for _, name := range []string{"derby", "ftpserver", "eclipse"} {
		tr := benchTrace(b, name, 0.1)
		for _, pt := range points {
			pt := pt
			b.Run(name+"/"+pt.label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					predict.Detect(tr, predict.Options{WindowSize: pt.window, WindowBudget: pt.budget})
				}
				reportEventsPerSec(b, tr.Len())
			})
		}
	}
}

// BenchmarkFigure7 sweeps the predictive engine over the full window×budget
// grid for one benchmark, reporting races found per configuration as a
// metric (the bars of Figure 7).
func BenchmarkFigure7(b *testing.B) {
	tr := benchTrace(b, "ftpserver", 0.2)
	for _, w := range Figure7Windows {
		for _, s := range Figure7Budgets {
			w, s := w, s
			b.Run(fmt.Sprintf("w%d/s%d", w, s), func(b *testing.B) {
				races := 0
				for i := 0; i < b.N; i++ {
					res := predict.Detect(tr, predict.Options{WindowSize: w, WindowBudget: s * NodesPerSolverSecond})
					races = res.Report.Distinct()
				}
				b.ReportMetric(float64(races), "races")
			})
		}
	}
}

// BenchmarkScalingWCP demonstrates Theorem 3: WCP analysis time is linear
// in the number of events (events/s should be roughly flat across sizes).
func BenchmarkScalingWCP(b *testing.B) {
	for _, scale := range []float64{0.25, 0.5, 1.0, 2.0} {
		tr := benchTrace(b, "montecarlo", scale)
		b.Run(fmt.Sprintf("events_%d", tr.Len()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.DetectOpts(tr, core.Options{})
			}
			reportEventsPerSec(b, tr.Len())
		})
	}
}

// BenchmarkScalingHB is the HB counterpart of BenchmarkScalingWCP, the
// paper's scalability baseline.
func BenchmarkScalingHB(b *testing.B) {
	for _, scale := range []float64{0.25, 0.5, 1.0, 2.0} {
		tr := benchTrace(b, "montecarlo", scale)
		b.Run(fmt.Sprintf("events_%d", tr.Len()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hb.DetectOpts(tr, hb.Options{})
			}
			reportEventsPerSec(b, tr.Len())
		})
	}
}

// threadScalingT is the thread-count dimension of the thread-scaling
// matrix; threadScalingEvents holds the event count fixed so the only
// variable is T.
var threadScalingT = []int{8, 64, 256, 1024}

const threadScalingEvents = 60_000

var threadScalingCache = map[string]*trace.Trace{}

func threadScalingTrace(b *testing.B, shape string, threads int) *trace.Trace {
	b.Helper()
	key := fmt.Sprintf("%s@%d", shape, threads)
	if tr, ok := threadScalingCache[key]; ok {
		return tr
	}
	tr := gen.ThreadScaling(gen.ThreadScalingConfig{
		Threads: threads, Events: threadScalingEvents, Shape: shape, Races: 4,
	})
	threadScalingCache[key] = tr
	return tr
}

// BenchmarkThreadScalingWCP sweeps the thread count T ∈ {8,64,256,1024} at
// a fixed event count across the three scenario shapes (disjoint-pool
// thread pools, fork/join waves, one hot global lock): the regime where
// dense vector clocks pay O(T) per operation and the windowed clocks (see
// internal/vc) must not. events/s across T is the metric; GOMAXPROCS is
// irrelevant (the detector is single-threaded).
func BenchmarkThreadScalingWCP(b *testing.B) {
	for _, shape := range gen.ThreadScalingShapes {
		for _, threads := range threadScalingT {
			tr := threadScalingTrace(b, shape, threads)
			b.Run(fmt.Sprintf("%s/T%d", shape, threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.DetectOpts(tr, core.Options{})
				}
				reportEventsPerSec(b, tr.Len())
			})
		}
	}
}

// BenchmarkThreadScalingHB is the HB counterpart of
// BenchmarkThreadScalingWCP.
func BenchmarkThreadScalingHB(b *testing.B) {
	for _, shape := range gen.ThreadScalingShapes {
		for _, threads := range threadScalingT {
			tr := threadScalingTrace(b, shape, threads)
			b.Run(fmt.Sprintf("%s/T%d", shape, threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					hb.DetectOpts(tr, hb.Options{})
				}
				reportEventsPerSec(b, tr.Len())
			})
		}
	}
}

// BenchmarkLowerBoundSpace measures Algorithm 1 on the Figure-8 family
// (Theorems 4–5): the queue high-water mark, reported as a metric, grows
// linearly with n while throughput stays linear.
func BenchmarkLowerBoundSpace(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		n := n
		u := gen.BitsFromUint(0, n)
		tr := gen.LowerBound(u, u)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var q int
			for i := 0; i < b.N; i++ {
				q = core.DetectOpts(tr, core.Options{}).QueueMaxTotal
			}
			b.ReportMetric(float64(q), "queue-entries")
			b.ReportMetric(float64(q)/float64(tr.Len()), "queue-frac")
		})
	}
}

// BenchmarkAblationWindowedWCP quantifies what the paper's core argument —
// no windowing needed — buys: WCP run per window finds fewer races than
// WCP run whole-trace on the same workload.
func BenchmarkAblationWindowedWCP(b *testing.B) {
	tr := benchTrace(b, "derby", table1Scale)
	b.Run("whole", func(b *testing.B) {
		races := 0
		for i := 0; i < b.N; i++ {
			races = core.Detect(tr).Report.Distinct()
		}
		b.ReportMetric(float64(races), "races")
	})
	b.Run("w1K", func(b *testing.B) {
		races := 0
		for i := 0; i < b.N; i++ {
			total := NewReport()
			for _, w := range window.Split(tr, 1000) {
				total.Merge(core.Detect(w).Report)
			}
			races = total.Distinct()
		}
		b.ReportMetric(float64(races), "races")
	})
}

// BenchmarkAblationEpochHB compares the epoch-optimized HB detector with
// the full-vector-clock one (the §6 future-work optimization, applied to
// the baseline).
func BenchmarkAblationEpochHB(b *testing.B) {
	tr := benchTrace(b, "lusearch", table1Scale)
	b.Run("vector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hb.DetectOpts(tr, hb.Options{})
		}
		reportEventsPerSec(b, tr.Len())
	})
	b.Run("epoch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hb.DetectEpoch(tr)
		}
		reportEventsPerSec(b, tr.Len())
	})
}

// BenchmarkAblationEpochWCP compares the epoch-optimized WCP race check
// (§6 future work) with the vector-clock one on the same clock machinery;
// -benchmem shows the per-variable memory reduction.
func BenchmarkAblationEpochWCP(b *testing.B) {
	tr := benchTrace(b, "lusearch", table1Scale)
	b.Run("vector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.DetectOpts(tr, core.Options{})
		}
		reportEventsPerSec(b, tr.Len())
	})
	b.Run("epoch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.DetectEpoch(tr)
		}
		reportEventsPerSec(b, tr.Len())
	})
}

// batchCorpus builds an in-memory corpus of medium generated traces for
// the batch-analysis benchmarks.
func batchCorpus(b *testing.B, files int) ([]engine.Source, int) {
	b.Helper()
	corpus := make([]engine.Source, files)
	events := 0
	for i := range corpus {
		tr := gen.Random(gen.RandomConfig{Seed: int64(i + 1), Events: 30_000, Threads: 6, Locks: 8, Vars: 24})
		events += tr.Len()
		corpus[i] = engine.TraceSource(fmt.Sprintf("trace-%d", i), tr)
	}
	return corpus, events
}

// BenchmarkBatchAnalysis compares the serial corpus loop against the
// worker-pool runner on the same corpus and engines: the parallel variant
// should win by roughly the core count on multi-core hardware (events/s is
// the comparable metric).
func BenchmarkBatchAnalysis(b *testing.B) {
	corpus, events := batchCorpus(b, 2*runtime.GOMAXPROCS(0))
	engines := []engine.Engine{engine.MustNew("wcp", engine.Config{}), engine.MustNew("hb", engine.Config{})}
	drain := func(b *testing.B, jobs int) {
		for res := range engine.AnalyzeCorpus(context.Background(), corpus, engines, jobs) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			drain(b, 1)
		}
		reportEventsPerSec(b, events*len(engines))
	})
	b.Run(fmt.Sprintf("parallel_j%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			drain(b, 0)
		}
		reportEventsPerSec(b, events*len(engines))
	})
}

// BenchmarkEngineFanout compares running all engines over one trace
// serially against the concurrent fan-out (each engine walks the shared
// trace with its own cursor).
func BenchmarkEngineFanout(b *testing.B) {
	tr := benchTrace(b, "montecarlo", 0.5)
	engines := engine.All(engine.Config{})
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, e := range engines {
				e.Analyze(tr)
			}
		}
		reportEventsPerSec(b, tr.Len()*len(engines))
	})
	b.Run("fanout", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine.RunAll(context.Background(), tr, engines)
		}
		reportEventsPerSec(b, tr.Len()*len(engines))
	})
}

// BenchmarkStreamingWCP measures the per-event cost of the streaming
// detector without whole-trace materialization overheads.
func BenchmarkStreamingWCP(b *testing.B) {
	tr := benchTrace(b, "xalan", table1Scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := core.NewDetector(tr.NumThreads(), tr.NumLocks(), tr.NumVars(), core.Options{})
		for _, e := range tr.Events {
			d.Process(e)
		}
	}
	reportEventsPerSec(b, tr.Len())
}

// BenchmarkStreamingIngestWCP measures the full streaming-ingestion path:
// binary blocks decoded straight into the WCP detector through one reused
// buffer, the trace never materialized. With -benchmem, allocs/op here is
// dominated by the one-time header decode — the synthetic workload's
// builder assigns a distinct default location to every unlocated event, so
// its symbol table is pathologically large relative to its length — while
// the per-event decode+step loop allocates nothing
// (TestStreamingBoundsMaterialization pins that side).
func BenchmarkStreamingIngestWCP(b *testing.B) {
	tr := benchTrace(b, "montecarlo", 1.0)
	var data bytes.Buffer
	if err := traceio.WriteBinary(&data, tr); err != nil {
		b.Fatal(err)
	}
	raw := data.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := traceio.OpenStream(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		dims, known := st.Dims()
		if !known {
			b.Fatal("binary stream must declare dims")
		}
		d := core.NewDetector(dims.Threads, dims.Locks, dims.Vars, core.Options{})
		buf := make([]event.Event, traceio.DefaultBlockSize)
		for {
			n, err := st.NextBlock(buf)
			for _, e := range buf[:n] {
				d.Process(e)
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	reportEventsPerSec(b, tr.Len())
}
