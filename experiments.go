package repro

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/hb"
	"repro/internal/predict"
)

// NodesPerSolverSecond converts the paper's SMT solver timeouts (60s, 120s,
// 240s) into exploration budgets for the predictive engine: one "solver
// second" buys this many DFS nodes. The constant is calibrated so the
// engine's success/failure mix on the scaled-down workloads resembles
// RVPredict's on the originals (see DESIGN.md §8, Substitutions).
const NodesPerSolverSecond = 500

// Table1Row is one row of the paper's Table 1, reproduced on the synthetic
// workloads.
type Table1Row struct {
	Name    string
	Events  int
	Threads int
	Locks   int
	// WCPRaces and HBRaces are distinct race pairs (columns 6–7).
	WCPRaces int
	HBRaces  int
	// Predict1K and Predict10K are the RVPredict-substitute's distinct
	// pairs at window 1K/solver 60s and window 10K/solver 240s
	// (columns 8–9); PredictMax is the max over the full parameter grid
	// (column 10).
	Predict1K  int
	Predict10K int
	PredictMax int
	// QueueFraction is Algorithm 1's queue high-water mark as a fraction
	// of events (column 11).
	QueueFraction float64
	// WCPTime, HBTime, Predict1KTime, Predict10KTime are analysis times
	// (columns 12–15).
	WCPTime        time.Duration
	HBTime         time.Duration
	Predict1KTime  time.Duration
	Predict10KTime time.Duration
	// Expected race counts from the paper, for the report.
	WantWCP int
	WantHB  int
}

// Table1Options configures RunTable1.
type Table1Options struct {
	// Scale multiplies every benchmark's default event count (1.0 if 0).
	Scale float64
	// Benchmarks restricts the run to the named benchmarks (all if empty).
	Benchmarks []string
	// SkipPredict skips the predictive columns (they dominate run time).
	SkipPredict bool
	// FullGrid sweeps the whole window×budget grid for the PredictMax
	// column; otherwise the max is taken over the two reported configs.
	FullGrid bool
	// Jobs is the worker-pool width for fanning benchmarks out across
	// cores; <= 0 uses GOMAXPROCS, 1 recovers the serial loop (most
	// faithful per-engine timings).
	Jobs int
}

// RunTable1 regenerates Table 1: for each benchmark it generates the
// synthetic trace, runs WCP and HB over the whole trace, and the windowed
// predictive engine at the paper's two reported parameter points. The
// benchmarks are fanned out across an Options.Jobs-wide worker pool
// (whole-machine by default); rows come back in Table 1 order regardless
// of completion order.
func RunTable1(opts Table1Options) []Table1Row {
	scale := opts.Scale
	if scale == 0 {
		scale = 1.0
	}
	want := func(name string) bool {
		if len(opts.Benchmarks) == 0 {
			return true
		}
		for _, n := range opts.Benchmarks {
			if n == name {
				return true
			}
		}
		return false
	}
	var selected []gen.Benchmark
	for _, b := range gen.Benchmarks {
		if want(b.Name) {
			selected = append(selected, b)
		}
	}
	rows, _ := engine.Map(context.Background(), opts.Jobs, selected,
		func(_ context.Context, _ int, b gen.Benchmark) (Table1Row, error) {
			return table1Row(b, scale, opts), nil
		})
	return rows
}

// table1Row computes one Table 1 row; the workload generator and the four
// detector runs all happen inside the calling pool worker.
func table1Row(b gen.Benchmark, scale float64, opts Table1Options) Table1Row {
	tr := b.Generate(scale)
	row := Table1Row{
		Name:    b.Name,
		Events:  tr.Len(),
		Threads: tr.NumThreads(),
		Locks:   tr.NumLocks(),
		WantWCP: b.WCPRaces(),
		WantHB:  b.HBRaces,
	}

	start := time.Now()
	wcpRes := core.Detect(tr)
	row.WCPTime = time.Since(start)
	row.WCPRaces = wcpRes.Report.Distinct()
	row.QueueFraction = wcpRes.QueueMaxFraction()

	start = time.Now()
	hbRes := hb.Detect(tr)
	row.HBTime = time.Since(start)
	row.HBRaces = hbRes.Report.Distinct()

	if !opts.SkipPredict {
		start = time.Now()
		p1 := predict.Detect(tr, predict.Options{WindowSize: 1000, WindowBudget: 60 * NodesPerSolverSecond})
		row.Predict1KTime = time.Since(start)
		row.Predict1K = p1.Report.Distinct()

		start = time.Now()
		p10 := predict.Detect(tr, predict.Options{WindowSize: 10000, WindowBudget: 240 * NodesPerSolverSecond})
		row.Predict10KTime = time.Since(start)
		row.Predict10K = p10.Report.Distinct()

		row.PredictMax = row.Predict1K
		if row.Predict10K > row.PredictMax {
			row.PredictMax = row.Predict10K
		}
		if opts.FullGrid {
			// Nested sweep: serial (Jobs=1) because the benchmark rows
			// already saturate the pool.
			for _, pt := range RunFigure7Opts(Figure7Options{Benchmarks: []string{b.Name}, Scale: scale, Jobs: 1}) {
				if pt.Races > row.PredictMax {
					row.PredictMax = pt.Races
				}
			}
		}
	}
	return row
}

// FormatTable1 renders rows in the layout of the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %9s %4s %6s | %4s %4s %6s %7s %4s | %6s | %9s %9s %9s %9s\n",
		"Program", "#Events", "Thr", "Locks",
		"WCP", "HB", "RV(1K)", "RV(10K)", "Max",
		"Q(%)", "WCP-t", "HB-t", "RV1K-t", "RV10K-t")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 132))
	for _, r := range rows {
		mark := " "
		if r.WCPRaces > r.HBRaces {
			mark = "*" // the paper boldfaces WCP > HB rows
		}
		fmt.Fprintf(&b, "%-14s %9d %4d %6d | %3d%s %4d %6d %7d %4d | %6.2f | %9s %9s %9s %9s\n",
			r.Name, r.Events, r.Threads, r.Locks,
			r.WCPRaces, mark, r.HBRaces, r.Predict1K, r.Predict10K, r.PredictMax,
			100*r.QueueFraction,
			round(r.WCPTime), round(r.HBTime), round(r.Predict1KTime), round(r.Predict10KTime))
	}
	fmt.Fprintf(&b, "%s\n* = WCP detects more races than HB (paper boldface)\n", strings.Repeat("-", 132))
	return b.String()
}

func round(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(time.Millisecond).String()
	default:
		return d.Round(10 * time.Millisecond).String()
	}
}

// Figure7Point is one bar of Figure 7: races detected by the windowed
// predictive engine at one (window size, solver budget) combination.
type Figure7Point struct {
	Bench   string
	Window  int
	Seconds int // nominal solver seconds (budget = Seconds × NodesPerSolverSecond)
	Races   int
}

// Figure7Windows and Figure7Budgets are the paper's parameter grids.
var (
	Figure7Windows = []int{1000, 2000, 5000, 10000}
	Figure7Budgets = []int{60, 120, 240}
)

// Figure7Options configures RunFigure7Opts.
type Figure7Options struct {
	// Benchmarks names the workloads to sweep (the paper uses eclipse,
	// ftpserver and derby).
	Benchmarks []string
	// Scale multiplies each benchmark's default event count (1.0 if 0).
	Scale float64
	// Jobs is the worker-pool width for the (benchmark, window, budget)
	// grid; <= 0 uses GOMAXPROCS, 1 recovers the serial sweep.
	Jobs int
}

// RunFigure7 sweeps the predictive engine over the paper's window-size ×
// solver-timeout grid for the named benchmarks, fanning the whole grid out
// across the worker pool.
func RunFigure7(names []string, scale float64) []Figure7Point {
	return RunFigure7Opts(Figure7Options{Benchmarks: names, Scale: scale})
}

// RunFigure7Opts is RunFigure7 with explicit pool options. Every
// (benchmark, window, budget) grid cell is an independent pool task; the
// cells of one benchmark share a lazily-generated, read-only trace
// (trace1of), so concurrent tasks must not mutate it. Points come back in
// grid order regardless of completion order.
func RunFigure7Opts(opts Figure7Options) []Figure7Point {
	scale := opts.Scale
	if scale == 0 {
		scale = 1.0
	}
	type cell struct {
		bench      gen.Benchmark
		window     int
		seconds    int
		traceShare *trace1of // generated once per benchmark, shared by its cells
	}
	var cells []cell
	for _, name := range opts.Benchmarks {
		b, ok := gen.ByName(name)
		if !ok {
			continue
		}
		share := &trace1of{gen: func() *Trace { return b.Generate(scale) }}
		for _, w := range Figure7Windows {
			for _, s := range Figure7Budgets {
				cells = append(cells, cell{bench: b, window: w, seconds: s, traceShare: share})
			}
		}
	}
	points, _ := engine.Map(context.Background(), opts.Jobs, cells,
		func(_ context.Context, _ int, c cell) (Figure7Point, error) {
			res := predict.Detect(c.traceShare.get(), predict.Options{
				WindowSize:   c.window,
				WindowBudget: c.seconds * NodesPerSolverSecond,
			})
			return Figure7Point{Bench: c.bench.Name, Window: c.window, Seconds: c.seconds, Races: res.Report.Distinct()}, nil
		})
	return points
}

// trace1of generates a trace once on first use and shares it read-only
// across the pool tasks of one benchmark's grid cells.
type trace1of struct {
	once sync.Once
	gen  func() *Trace
	tr   *Trace
}

func (s *trace1of) get() *Trace {
	s.once.Do(func() { s.tr = s.gen(); s.gen = nil })
	return s.tr
}

// FormatFigure7 renders the sweep as the grid underlying Figure 7.
func FormatFigure7(points []Figure7Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "bench")
	for _, w := range Figure7Windows {
		for _, s := range Figure7Budgets {
			fmt.Fprintf(&b, " %4dK/%3ds", w/1000, s)
		}
	}
	b.WriteByte('\n')
	byBench := map[string][]Figure7Point{}
	var order []string
	for _, p := range points {
		if _, ok := byBench[p.Bench]; !ok {
			order = append(order, p.Bench)
		}
		byBench[p.Bench] = append(byBench[p.Bench], p)
	}
	for _, name := range order {
		fmt.Fprintf(&b, "%-12s", name)
		for _, w := range Figure7Windows {
			for _, s := range Figure7Budgets {
				for _, p := range byBench[name] {
					if p.Window == w && p.Seconds == s {
						fmt.Fprintf(&b, " %9d", p.Races)
					}
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
