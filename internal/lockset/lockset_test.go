package lockset_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/hb"
	"repro/internal/lockset"
	"repro/internal/trace"
)

func TestUnprotectedFlagged(t *testing.T) {
	b := trace.NewBuilder()
	b.Write("t1", "x")
	b.Write("t2", "x")
	res := lockset.Detect(b.MustBuild())
	if res.Warnings != 1 || res.FirstWarning != 1 {
		t.Errorf("warnings=%d first=%d", res.Warnings, res.FirstWarning)
	}
}

func TestConsistentLockingSilent(t *testing.T) {
	b := trace.NewBuilder()
	for i := 0; i < 3; i++ {
		b.CriticalSection("t1", "l", func(b *trace.Builder) {
			b.Read("t1", "x")
			b.Write("t1", "x")
		})
		b.CriticalSection("t2", "l", func(b *trace.Builder) {
			b.Read("t2", "x")
			b.Write("t2", "x")
		})
	}
	res := lockset.Detect(b.MustBuild())
	if res.Warnings != 0 {
		t.Errorf("consistently locked variable warned %d times", res.Warnings)
	}
}

func TestThreadLocalAndReadSharedSilent(t *testing.T) {
	b := trace.NewBuilder()
	// Thread-local writes: stays Exclusive.
	b.Write("t1", "mine")
	b.Write("t1", "mine")
	// Write-then-read-shared without locks: Shared but never
	// Shared-Modified.
	b.Write("t1", "ro")
	b.Read("t2", "ro")
	b.Read("t3", "ro")
	res := lockset.Detect(b.MustBuild())
	if res.Warnings != 0 {
		t.Errorf("warnings = %d", res.Warnings)
	}
}

// TestFalseAlarm demonstrates the unsoundness the paper contrasts against:
// a variable protected by different locks at different phases, with the
// phases actually ordered by a common lock handoff, is race free (HB finds
// nothing) yet Eraser warns.
func TestFalseAlarm(t *testing.T) {
	b := trace.NewBuilder()
	b.CriticalSection("t1", "a", func(b *trace.Builder) { b.Write("t1", "x") })
	// Ordering handoff: t1 releases lock h, t2 acquires it.
	b.CriticalSection("t1", "h", func(b *trace.Builder) { b.Write("t1", "flag") })
	b.CriticalSection("t2", "h", func(b *trace.Builder) { b.Read("t2", "flag") })
	b.CriticalSection("t2", "b", func(b *trace.Builder) { b.Write("t2", "x") })
	// Hand off back to t1, which touches x under its own lock again: the
	// candidate set {b} ∩ {a} empties while HB keeps everything ordered.
	b.CriticalSection("t2", "h", func(b *trace.Builder) { b.Write("t2", "flag") })
	b.CriticalSection("t1", "h", func(b *trace.Builder) { b.Read("t1", "flag") })
	b.CriticalSection("t1", "a", func(b *trace.Builder) { b.Write("t1", "x") })
	tr := b.MustBuild()
	if hbRes := hb.Detect(tr); hbRes.RacyEvents != 0 {
		t.Fatalf("trace should be HB race free, got %d", hbRes.RacyEvents)
	}
	res := lockset.Detect(tr)
	if res.Warnings == 0 {
		t.Error("expected an Eraser false alarm on x")
	}
}

func TestWarnsOncePerVariable(t *testing.T) {
	b := trace.NewBuilder()
	b.Write("t1", "x")
	b.Write("t2", "x")
	b.Write("t1", "x")
	b.Write("t2", "x")
	res := lockset.Detect(b.MustBuild())
	if res.Warnings != 1 {
		t.Errorf("warnings = %d, want 1 (Eraser warns once per variable)", res.Warnings)
	}
}

func TestBenchmarksProduceWarnings(t *testing.T) {
	bench, _ := gen.ByName("account")
	res := lockset.Detect(bench.Generate(1.0))
	if res.Warnings == 0 {
		t.Error("benchmark with races should trigger lockset warnings")
	}
}
