// Package lockset implements an Eraser-style lockset race detector
// (Savage et al., SOSP 1997), the classic *unsound* baseline the paper's
// introduction contrasts with partial-order methods: fast, low overhead,
// but it reports potential races that no execution can exhibit.
//
// It exists here to make that contrast measurable: the examples and benches
// run lockset next to HB/WCP and count its false alarms on traces whose
// ground truth the closure reference settles.
package lockset

import (
	"repro/internal/event"
	"repro/internal/race"
	"repro/internal/trace"
)

// state is the per-variable Eraser state machine.
type state uint8

const (
	virgin state = iota
	exclusive
	shared
	sharedModified
)

// Result is the outcome of a lockset analysis.
type Result struct {
	// Report holds the reported (potential) race pairs: each warning pairs
	// the current access location with the variable's previous access
	// location.
	Report *race.Report
	// Warnings counts accesses at which the candidate set became empty in
	// the shared-modified state.
	Warnings int
	// FirstWarning is the trace index of the first warning, or -1.
	FirstWarning int
}

type varState struct {
	st        state
	owner     event.TID
	candidate map[event.LID]struct{} // C(x); nil means "all locks" (⊤)
	lastLoc   event.Loc
	reported  bool
}

// Detect runs the Eraser lockset algorithm over tr.
func Detect(tr *trace.Trace) *Result {
	res := &Result{Report: race.NewReport(), FirstWarning: -1}
	vars := make([]varState, tr.NumVars())
	held := make(map[event.TID][]event.LID)

	intersect := func(vs *varState, locks []event.LID) {
		if vs.candidate == nil {
			vs.candidate = make(map[event.LID]struct{}, len(locks))
			for _, l := range locks {
				vs.candidate[l] = struct{}{}
			}
			return
		}
		heldSet := make(map[event.LID]struct{}, len(locks))
		for _, l := range locks {
			heldSet[l] = struct{}{}
		}
		for l := range vs.candidate {
			if _, ok := heldSet[l]; !ok {
				delete(vs.candidate, l)
			}
		}
	}

	// Walk the SoA view: the Eraser pass needs only the kind/thread/object
	// streams for lock events, touching the location stream at accesses.
	soa := tr.SoA()
	kinds, threads, objs, locs := soa.Kinds, soa.Threads, soa.Objs, soa.Locs
	for i, k := range kinds {
		thread := event.TID(threads[i])
		switch event.Kind(k) {
		case event.Acquire:
			held[thread] = append(held[thread], event.LID(objs[i]))
		case event.Release:
			s := held[thread]
			// Pop the innermost matching lock (well-nested traces pop the
			// top; tolerate others).
			for k := len(s) - 1; k >= 0; k-- {
				if s[k] == event.LID(objs[i]) {
					held[thread] = append(s[:k:k], s[k+1:]...)
					break
				}
			}
		case event.Read, event.Write:
			isWrite := event.Kind(k) == event.Write
			loc := event.Loc(locs[i])
			vs := &vars[objs[i]]
			switch vs.st {
			case virgin:
				vs.st = exclusive
				vs.owner = thread
			case exclusive:
				if thread != vs.owner {
					if !isWrite {
						vs.st = shared
					} else {
						vs.st = sharedModified
					}
					intersect(vs, held[thread])
				}
			case shared:
				intersect(vs, held[thread])
				if isWrite {
					vs.st = sharedModified
				}
			case sharedModified:
				intersect(vs, held[thread])
			}
			if vs.st == sharedModified && len(vs.candidate) == 0 && !vs.reported {
				vs.reported = true // Eraser warns once per variable
				res.Warnings++
				if res.FirstWarning < 0 {
					res.FirstWarning = i
				}
				res.Report.Record(vs.lastLoc, loc, i, 0)
			}
			vs.lastLoc = loc
		}
	}
	return res
}
