package server

import (
	"fmt"
	"io"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/traceio"
)

// session is one client's streaming analysis: a trace header fixed at
// creation plus one resumable engine.Session per requested engine, fed
// chunk by chunk. Chunk bodies are decoded with traceio.NewEventStream
// straight into the session's reusable SoA block and from there into every
// engine's detector — per-chunk work allocates nothing beyond what the
// detectors grow.
//
// The scheduler serializes all tasks of one session (key = session id), so
// ingest, finish and evict never run concurrently; mu additionally guards
// the fields the HTTP status handlers read outside scheduler tasks.
type session struct {
	id      string
	header  traceio.Header
	names   []string // engine names, in request order
	created time.Time

	// Observability, attached by Server.instrument on every path that makes
	// the session live (create, restore, unpark). obs may be nil for
	// sessions materialized outside a server (tests, shutdown finalize);
	// ingest then skips instrumentation.
	obs    *serverObs
	engObs []engineObs // per-engine histogram + pprof label ctx
	engNS  []int64     // scratch: sampled per-engine nanoseconds this chunk

	mu         sync.Mutex
	engines    []engine.Session
	block      *trace.Block
	skipBuf    []event.Event // scratch for replay-skip decoding, grown on demand
	events     uint64
	chunks     int
	blocks     uint64 // decoded blocks, drives stage-timing sampling
	traceID    string // adopted from the first request that carries one
	lastActive time.Time
	closed     bool
	failed     error // latched fatal ingest error; chunks are rejected after
	state      int64 // last measured detector StateBytes sum (see measureState)
}

func newSession(id string, h traceio.Header, names []string, engines []engine.Session, now time.Time) *session {
	return &session{
		id:         id,
		header:     h,
		names:      names,
		engines:    engines,
		block:      trace.NewBlock(traceio.DefaultBlockSize),
		created:    now,
		lastActive: now,
	}
}

// gapError rejects a chunk whose declared offset is ahead of the events the
// session has acknowledged: accepting it would silently skip trace events.
// The acknowledged offset rides along so the client can rewind to it.
type gapError struct {
	offset uint64 // chunk's declared first-event index
	acked  uint64 // events the session has actually analyzed
}

func (e *gapError) Error() string {
	return fmt.Sprintf("chunk offset %d is ahead of the session's %d acknowledged events", e.offset, e.acked)
}

// trace resolves the effective trace id for a request: the id the request
// itself carried wins, else the one the session adopted earlier.
func (s *session) trace(reqID string) string {
	if reqID != "" {
		return reqID
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traceID
}

// ingest decodes one chunk body into every engine session. It returns the
// number of events the chunk added; a decode error is latched — the
// session's analysis is no longer trustworthy past the corruption — and
// further chunks are rejected.
//
// When the chunk declares its absolute offset (hasOffset), ingestion is
// idempotent: events the session has already acknowledged are decoded and
// discarded instead of re-analyzed, so a client that retries a chunk after
// a lost response — or resends a chunk the server half-ingested before a
// dropped connection — converges on exactly-once analysis. replayed counts
// the skipped events. An offset beyond the acknowledged count is a gap
// (*gapError): the client must rewind, never the server guess.
func (s *session) ingest(body io.Reader, offset uint64, hasOffset bool, traceID string, now time.Time) (added, replayed uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastActive = now
	// Stamp activity again at completion: a chunk that takes longer than
	// the idle timeout to analyze must not make the session look idle, or
	// the janitor's eviction re-check would still fire between chunks.
	defer func() { s.lastActive = time.Now() }()
	if s.closed {
		return 0, 0, errSessionClosed
	}
	if s.failed != nil {
		return 0, 0, s.failed
	}
	// Adopt the request's trace id: a session restored after a failover has
	// no id of its own until the client's next chunk re-introduces it.
	if traceID != "" && s.traceID == "" {
		s.traceID = traceID
	}
	// Stage timing is sampled (every Nth decoded block) so the hot loop
	// stays free of clock reads between samples; spans are recorded once
	// per chunk, amortized over thousands of events.
	o := s.obs
	var chunkBlocks, sampledBlocks uint64
	var decNS int64
	if o != nil {
		for i := range s.engNS {
			s.engNS[i] = 0
		}
		defer func() {
			tr := traceID
			if tr == "" {
				tr = s.traceID
			}
			dur := time.Since(now).Seconds()
			o.chunkIngest.Observe(dur)
			sp := obs.Span{Trace: tr, Session: s.id, Name: "chunk",
				Start: now, Duration: dur, Events: added}
			if err != nil {
				sp.Err = err.Error()
			}
			o.span(sp)
			if sampledBlocks > 0 {
				detail := fmt.Sprintf("sampled %d/%d blocks", sampledBlocks, chunkBlocks)
				o.span(obs.Span{Trace: tr, Session: s.id, Name: "decode",
					Start: now, Duration: float64(decNS) / 1e9, Detail: detail})
				for i := range s.engObs {
					o.span(obs.Span{Trace: tr, Session: s.id, Name: "process",
						Engine: s.names[i], Start: now,
						Duration: float64(s.engNS[i]) / 1e9, Detail: detail})
				}
			}
		}()
	}
	if !hasOffset {
		offset = s.events // legacy append-mode chunk: starts at the ack
	}
	if offset > s.events {
		return 0, 0, &gapError{offset: offset, acked: s.events}
	}
	st := traceio.NewEventStream(body, s.header, offset)
	// Replay skip: decode (and validate) the already-analyzed prefix
	// without feeding the detectors.
	for skip := s.events - offset; skip > 0; {
		if s.skipBuf == nil {
			s.skipBuf = make([]event.Event, 512)
		}
		buf := s.skipBuf
		if uint64(len(buf)) > skip {
			buf = buf[:skip]
		}
		n, err := st.NextBlock(buf)
		skip -= uint64(n)
		replayed += uint64(n)
		if err == io.EOF {
			s.chunks++
			return 0, replayed, nil // chunk lies entirely behind the ack
		}
		if err != nil {
			s.failed = err
			return 0, replayed, err
		}
	}
	if s.engObs != nil {
		// CPU profiles attribute engine work to session and engine via
		// goroutine labels; drop them when this worker goroutine moves on.
		defer pprof.SetGoroutineLabels(unlabeledCtx)
	}
	for {
		s.blocks++
		chunkBlocks++
		sampled := o != nil && o.sampleNs != 0 && s.blocks%o.sampleNs == 0
		var t0 time.Time
		if sampled {
			t0 = time.Now()
		}
		n, derr := st.NextBlockSoA(s.block)
		if sampled {
			d := time.Since(t0)
			o.decode.Observe(d.Seconds())
			decNS += d.Nanoseconds()
			sampledBlocks++
		}
		if n > 0 {
			for i, es := range s.engines {
				if s.engObs != nil {
					pprof.SetGoroutineLabels(s.engObs[i].ctx)
				}
				if sampled {
					te := time.Now()
					es.ProcessBlock(s.block)
					de := time.Since(te)
					s.engObs[i].hist.Observe(de.Seconds())
					s.engNS[i] += de.Nanoseconds()
				} else {
					es.ProcessBlock(s.block)
				}
			}
			s.events += uint64(n)
			added += uint64(n)
		}
		if derr == io.EOF {
			s.chunks++
			return added, replayed, nil
		}
		if derr != nil {
			s.failed = derr
			return added, replayed, derr
		}
	}
}

// finalize seals every engine session, folds the per-engine race reports
// into the store (source-tagged with the session id), and returns the
// results. It is idempotent; only the first call does the work.
func (s *session) finalize(store *report.Store, now time.Time) []*engine.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	results := make([]*engine.Result, len(s.engines))
	for i, es := range s.engines {
		results[i] = es.Finish()
		store.AddReport(results[i].Engine, "session:"+s.id, results[i].Report, s.header.Syms, now)
	}
	return results
}

// abort seals the session without reporting anything. The engines are still
// finished so they release pooled detector state (arena clock refs) instead
// of pinning it until the session struct is collected.
func (s *session) abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, es := range s.engines {
		es.Finish()
	}
}

// status is the JSON shape of GET /sessions/{id}.
type sessionStatus struct {
	ID         string    `json:"id"`
	Engines    []string  `json:"engines"`
	Events     uint64    `json:"events"`
	Chunks     int       `json:"chunks"`
	Created    time.Time `json:"created"`
	LastActive time.Time `json:"last_active"`
	Trace      string    `json:"trace,omitempty"`
	Failed     string    `json:"failed,omitempty"`
}

func (s *session) status() sessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := sessionStatus{
		ID:         s.id,
		Engines:    s.names,
		Events:     s.events,
		Chunks:     s.chunks,
		Created:    s.created,
		LastActive: s.lastActive,
		Trace:      s.traceID,
	}
	if s.failed != nil {
		st.Failed = s.failed.Error()
	}
	return st
}

func (s *session) idleSince() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastActive
}

// remeasureState re-sums the engines' StateBytes estimates, caches the
// total, and returns the change against the previous measurement — the
// delta the server folds into its global memory accounting. Computing the
// delta under the session mutex makes concurrent remeasures add up exactly.
// A closed session measures zero, so sealing a session returns its state to
// the budget. Engines without a StateBytes estimate contribute nothing.
func (s *session) remeasureState() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	if !s.closed {
		for _, es := range s.engines {
			if cs, ok := es.(engine.CompactableSession); ok {
				total += int64(cs.StateBytes())
			}
		}
	}
	delta := total - s.state
	s.state = total
	return delta
}

func (s *session) cachedState() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// compactNow forces immediate state compaction on every engine that
// supports it — the first escalation step of the server's global memory
// budget. Must run under the session's scheduler key.
func (s *session) compactNow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for _, es := range s.engines {
		if cs, ok := es.(engine.CompactableSession); ok {
			cs.Compact()
		}
	}
}

var errSessionClosed = fmt.Errorf("session is closed")
