package server

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/traceio"
)

// session is one client's streaming analysis: a trace header fixed at
// creation plus one resumable engine.Session per requested engine, fed
// chunk by chunk. Chunk bodies are decoded with traceio.NewEventStream
// straight into the session's reusable SoA block and from there into every
// engine's detector — per-chunk work allocates nothing beyond what the
// detectors grow.
//
// The scheduler serializes all tasks of one session (key = session id), so
// ingest, finish and evict never run concurrently; mu additionally guards
// the fields the HTTP status handlers read outside scheduler tasks.
type session struct {
	id      string
	header  traceio.Header
	names   []string // engine names, in request order
	created time.Time

	mu         sync.Mutex
	engines    []engine.Session
	block      *trace.Block
	events     uint64
	chunks     int
	lastActive time.Time
	closed     bool
	failed     error // latched fatal ingest error; chunks are rejected after
}

func newSession(id string, h traceio.Header, names []string, engines []engine.Session, now time.Time) *session {
	return &session{
		id:         id,
		header:     h,
		names:      names,
		engines:    engines,
		block:      trace.NewBlock(traceio.DefaultBlockSize),
		created:    now,
		lastActive: now,
	}
}

// ingest decodes one chunk body into every engine session. It returns the
// number of events the chunk added; a decode error is latched — the
// session's analysis is no longer trustworthy past the corruption — and
// further chunks are rejected.
func (s *session) ingest(body io.Reader, now time.Time) (added uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastActive = now
	if s.closed {
		return 0, errSessionClosed
	}
	if s.failed != nil {
		return 0, s.failed
	}
	st := traceio.NewEventStream(body, s.header, s.events)
	for {
		n, err := st.NextBlockSoA(s.block)
		if n > 0 {
			for _, es := range s.engines {
				es.ProcessBlock(s.block)
			}
			s.events += uint64(n)
			added += uint64(n)
		}
		if err == io.EOF {
			s.chunks++
			return added, nil
		}
		if err != nil {
			s.failed = err
			return added, err
		}
	}
}

// finalize seals every engine session, folds the per-engine race reports
// into the store (source-tagged with the session id), and returns the
// results. It is idempotent; only the first call does the work.
func (s *session) finalize(store *report.Store, now time.Time) []*engine.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	results := make([]*engine.Result, len(s.engines))
	for i, es := range s.engines {
		results[i] = es.Finish()
		store.AddReport(results[i].Engine, "session:"+s.id, results[i].Report, s.header.Syms, now)
	}
	return results
}

// abort seals the session without reporting anything. The engines are still
// finished so they release pooled detector state (arena clock refs) instead
// of pinning it until the session struct is collected.
func (s *session) abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, es := range s.engines {
		es.Finish()
	}
}

// status is the JSON shape of GET /sessions/{id}.
type sessionStatus struct {
	ID         string    `json:"id"`
	Engines    []string  `json:"engines"`
	Events     uint64    `json:"events"`
	Chunks     int       `json:"chunks"`
	Created    time.Time `json:"created"`
	LastActive time.Time `json:"last_active"`
	Failed     string    `json:"failed,omitempty"`
}

func (s *session) status() sessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := sessionStatus{
		ID:         s.id,
		Engines:    s.names,
		Events:     s.events,
		Chunks:     s.chunks,
		Created:    s.created,
		LastActive: s.lastActive,
	}
	if s.failed != nil {
		st.Failed = s.failed.Error()
	}
	return st
}

func (s *session) idleSince() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastActive
}

var errSessionClosed = fmt.Errorf("session is closed")
