package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/trace"
	"repro/internal/traceio"
)

// durableConfig is a server config with checkpointing on and every timer
// disabled — tests drive checkpoints explicitly via POST /checkpoint.
func durableConfig(dir string) Config {
	return Config{
		Workers:         2,
		QueueCap:        64,
		IdleTimeout:     -1, // no janitor: "crashed" servers leak no goroutine
		CheckpointDir:   dir,
		CheckpointEvery: -1, // no periodic loop either
	}
}

// crashableServer is a server whose process death is simulated by closing
// the HTTP listener WITHOUT calling Server.Close — no drain, no shutdown
// checkpoint, exactly what SIGKILL leaves behind.
func crashableServer(t *testing.T, cfg Config) (*Server, *testClient, func()) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	return s, &testClient{t: t, base: ts.URL, c: ts.Client()}, ts.Close
}

func (tc *testClient) sessionEvents(id string) uint64 {
	tc.t.Helper()
	resp, raw := tc.do("GET", "/sessions/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		tc.t.Fatalf("status: %d %s", resp.StatusCode, raw)
	}
	var st sessionStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		tc.t.Fatal(err)
	}
	return st.Events
}

// streamRange sends tr.Events[from:to] as one chunk.
func (tc *testClient) streamRange(id string, tr *trace.Trace, from, to int) {
	tc.t.Helper()
	var body bytes.Buffer
	if err := traceio.EncodeEvents(&body, tr.Events[from:to]); err != nil {
		tc.t.Fatal(err)
	}
	resp, raw := tc.do("POST", "/sessions/"+id+"/chunks", &body)
	if resp.StatusCode != http.StatusOK {
		tc.t.Fatalf("chunk [%d:%d]: %d %s", from, to, resp.StatusCode, raw)
	}
}

// TestCrashRecoveryResumesSession is the crash-recovery acceptance test: a
// session is checkpointed mid-stream, the server dies without any shutdown
// path, a new process on the same checkpoint directory re-opens the
// session, the client resumes from the acknowledged offset, and the final
// per-engine results — formatted race reports included — match an
// uninterrupted run of the same trace.
func TestCrashRecoveryResumesSession(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Seed: 42, Events: 20000, Threads: 4, Locks: 3, Vars: 5})
	dir := t.TempDir()

	// The uninterrupted baseline, on a server with no checkpointing at all.
	_, base := newTestServer(t, Config{Workers: 2, QueueCap: 64})
	baseID := base.createSession(tr, "wcp,hb")
	base.stream(baseID, tr, 5)
	want := base.finish(baseID)

	// First incarnation: stream 60%, checkpoint, stream 20% more (these
	// events are acknowledged but post-checkpoint — the crash loses them),
	// then die.
	_, tc, kill := crashableServer(t, durableConfig(dir))
	id := tc.createSession(tr, "wcp,hb")
	cut := len(tr.Events) * 6 / 10
	tc.streamRange(id, tr, 0, cut)
	resp, raw := tc.do("POST", "/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, raw)
	}
	tc.streamRange(id, tr, cut, len(tr.Events)*8/10)
	kill()

	// Second incarnation on the same directory.
	s2, tc2, kill2 := crashableServer(t, durableConfig(dir))
	defer kill2()
	defer s2.Close(context.Background())
	got := tc2.sessionEvents(id)
	if got != uint64(cut) {
		t.Fatalf("restored session resumed at %d events, want checkpoint offset %d", got, cut)
	}
	// The client resumes from the server-acknowledged offset.
	tc2.streamRange(id, tr, int(got), len(tr.Events))
	res := tc2.finish(id)

	if res.Events != want.Events {
		t.Fatalf("recovered run saw %d events, uninterrupted saw %d", res.Events, want.Events)
	}
	if len(res.Results) != len(want.Results) {
		t.Fatalf("engine count diverged: %d vs %d", len(res.Results), len(want.Results))
	}
	for i := range res.Results {
		g, w := res.Results[i], want.Results[i]
		if g.Engine != w.Engine || g.RacyEvents != w.RacyEvents || g.FirstRace != w.FirstRace ||
			g.Distinct != w.Distinct || g.QueueMaxTotal != w.QueueMaxTotal || g.Report != w.Report {
			t.Fatalf("engine %s diverged after recovery:\n got %+v\nwant %+v", g.Engine, g, w)
		}
	}
}

// TestReportsSurviveRestart pins that finished sessions' deduplicated race
// classes are durable: finish on one incarnation, crash, and the next
// incarnation still serves them over /reports.
func TestReportsSurviveRestart(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Seed: 7, Events: 15000, Threads: 4, Locks: 2, Vars: 4})
	dir := t.TempDir()

	s1, tc, kill := crashableServer(t, durableConfig(dir))
	id := tc.createSession(tr, "wcp")
	tc.stream(id, tr, 3)
	fin := tc.finish(id)
	if fin.Results[0].Distinct == 0 {
		t.Fatalf("trace produced no races; the test needs a racy trace")
	}
	wantClasses := s1.store.Len()
	wantObs := s1.store.Observations()
	kill()

	s2, tc2, kill2 := crashableServer(t, durableConfig(dir))
	defer kill2()
	defer s2.Close(context.Background())
	if got := s2.store.Len(); got != wantClasses {
		t.Fatalf("restarted server has %d race classes, want %d", got, wantClasses)
	}
	if got := s2.store.Observations(); got != wantObs {
		t.Fatalf("restarted server has %d observations, want %d", got, wantObs)
	}
	resp, raw := tc2.do("GET", "/reports", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/reports: %d %s", resp.StatusCode, raw)
	}
	var rep struct {
		Total int `json:"total"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Total != wantClasses {
		t.Fatalf("/reports total %d after restart, want %d", rep.Total, wantClasses)
	}
}

// TestGracefulRestartViaClose pins the tentpole claim that graceful
// restarts ride the crash-recovery path: Close on a checkpointing server
// persists open sessions instead of finalizing them.
func TestGracefulRestartViaClose(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Seed: 13, Events: 12000, Threads: 4, Locks: 3, Vars: 5})
	dir := t.TempDir()

	s1, tc, kill := crashableServer(t, durableConfig(dir))
	id := tc.createSession(tr, "wcp-epoch,hb-epoch")
	cut := len(tr.Events) / 2
	tc.streamRange(id, tr, 0, cut)
	if err := s1.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	kill()

	s2, tc2, kill2 := crashableServer(t, durableConfig(dir))
	defer kill2()
	defer s2.Close(context.Background())
	if got := tc2.sessionEvents(id); got != uint64(cut) {
		t.Fatalf("session resumed at %d events, want %d", got, cut)
	}
	tc2.streamRange(id, tr, cut, len(tr.Events))
	res := tc2.finish(id)
	if res.Events != uint64(len(tr.Events)) {
		t.Fatalf("resumed session saw %d events, want %d", res.Events, len(tr.Events))
	}
}

// TestSnapshotMigration moves a live session between two processes through
// the snapshot API: GET /sessions/{id}/snapshot on the source, POST
// /sessions/restore on the target, and the stream continues there.
func TestSnapshotMigration(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Seed: 99, Events: 16000, Threads: 5, Locks: 3, Vars: 6})

	_, base := newTestServer(t, Config{Workers: 2, QueueCap: 64})
	baseID := base.createSession(tr, "wcp,hb")
	base.stream(baseID, tr, 4)
	want := base.finish(baseID)

	_, src := newTestServer(t, Config{Workers: 2, QueueCap: 64})
	_, dst := newTestServer(t, Config{Workers: 2, QueueCap: 64})
	id := src.createSession(tr, "wcp,hb")
	cut := len(tr.Events) / 3
	src.streamRange(id, tr, 0, cut)

	resp, snapBytes := src.do("GET", "/sessions/"+id+"/snapshot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d %s", resp.StatusCode, snapBytes)
	}
	resp, raw := dst.do("POST", "/sessions/restore", bytes.NewReader(snapBytes))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore: %d %s", resp.StatusCode, raw)
	}
	if got := dst.sessionEvents(id); got != uint64(cut) {
		t.Fatalf("migrated session at %d events, want %d", got, cut)
	}
	// Restoring the same snapshot twice collides on the session id.
	resp, _ = dst.do("POST", "/sessions/restore", bytes.NewReader(snapBytes))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate restore: status %d, want %d", resp.StatusCode, http.StatusConflict)
	}

	dst.streamRange(id, tr, cut, len(tr.Events))
	res := dst.finish(id)
	for i := range res.Results {
		g, w := res.Results[i], want.Results[i]
		if g.Engine != w.Engine || g.RacyEvents != w.RacyEvents || g.Distinct != w.Distinct || g.Report != w.Report {
			t.Fatalf("engine %s diverged after migration:\n got %+v\nwant %+v", g.Engine, g, w)
		}
	}
}

// TestCorruptCheckpointsAreSkipped ensures a torn or garbage checkpoint
// cannot keep the server from starting: the bad file is ignored (and
// healthy ones around it still restore).
func TestCorruptCheckpointsAreSkipped(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Seed: 3, Events: 8000, Threads: 3, Locks: 2, Vars: 4})
	dir := t.TempDir()

	_, tc, kill := crashableServer(t, durableConfig(dir))
	id := tc.createSession(tr, "wcp")
	tc.stream(id, tr, 2)
	if resp, raw := tc.do("POST", "/checkpoint", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, raw)
	}
	kill()

	// Corrupt a copy of the session checkpoint under another id, and drop in
	// pure garbage too.
	good, err := os.ReadFile(filepath.Join(dir, id+".ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	torn := good[:len(good)/2]
	if err := os.WriteFile(filepath.Join(dir, "torn0000.ckpt"), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk0000.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, tc2, kill2 := crashableServer(t, durableConfig(dir))
	defer kill2()
	defer s2.Close(context.Background())
	s2.mu.Lock()
	n := len(s2.sessions)
	s2.mu.Unlock()
	if n != 1 {
		t.Fatalf("restored %d sessions, want only the healthy one", n)
	}
	if got := tc2.sessionEvents(id); got != uint64(len(tr.Events)) {
		t.Fatalf("healthy session restored at %d events, want %d", got, len(tr.Events))
	}
}

// TestEvictionSealsEngines is the stale-session leak regression at the
// server layer: an idle-evicted session must have its engines finished —
// the path that returns pooled detector state (arena clock refs) to the
// freelists — not just dropped from the table.
func TestEvictionSealsEngines(t *testing.T) {
	cfg := Config{
		Workers:       2,
		QueueCap:      64,
		IdleTimeout:   50 * time.Millisecond,
		JanitorPeriod: 10 * time.Millisecond,
	}
	s, tc := newTestServer(t, cfg)
	tr := gen.Random(gen.RandomConfig{Seed: 21, Events: 6000, Threads: 4, Locks: 2, Vars: 4})
	id := tc.createSession(tr, "hb-epoch")
	tc.stream(id, tr, 2)
	sess := s.getSession(id)
	if sess == nil {
		t.Fatalf("session not found before eviction")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.getSession(id) != nil {
		if time.Now().After(deadline) {
			t.Fatalf("session was never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	sess.mu.Lock()
	closed := sess.closed
	sess.mu.Unlock()
	if !closed {
		t.Fatalf("evicted session was not finalized; its engines still pin detector state")
	}
	// DELETE on a live session must seal engines too (abort path).
	id2 := tc.createSession(tr, "hb-epoch")
	sess2 := s.getSession(id2)
	tc.stream(id2, tr, 1)
	if resp, raw := tc.do("DELETE", "/sessions/"+id2, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("abort: %d %s", resp.StatusCode, raw)
	}
	sess2.mu.Lock()
	closed = sess2.closed
	sess2.mu.Unlock()
	if !closed {
		t.Fatalf("aborted session was not sealed")
	}
}
