package server

import (
	"bytes"
	"context"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// Memory-pressure management: Config.StateBudgetBytes caps the summed
// detector state across all open sessions. When ingestion pushes the total
// past the budget the server degrades in two escalating steps instead of
// growing without bound:
//
//  1. Forced compaction, fattest sessions first — engine.CompactableSession
//     state shrinks to its live epoch frontier.
//  2. Parking, coldest sessions first — the session is serialized (the same
//     frames checkpoints use), evicted from memory, and transparently
//     restored when a request next names it. A parked session is paused,
//     never lost: the client just sees its next chunk take one restore
//     longer.
//
// Relief runs on a dedicated goroutine kicked from the ingest path, so a
// chunk that crosses the budget never waits for other sessions' compaction
// behind its own response.

// parkedSession is a pressure-evicted session serialized in memory — the
// parking spot when no CheckpointDir is configured (with one, the
// checkpoint file on disk is the parking spot and this map stays empty).
type parkedSession struct {
	blob []byte
	at   time.Time
}

// noteSessionState refreshes one session's contribution to the global
// detector-state total and kicks the pressure loop if the budget is blown.
// Call after anything that grows or seals the session's engines.
func (s *Server) noteSessionState(sess *session) {
	if d := sess.remeasureState(); d != 0 {
		s.stateTotal.Add(d)
	}
	s.maybePressureKick()
}

func (s *Server) maybePressureKick() {
	if s.cfg.StateBudgetBytes <= 0 || s.stateTotal.Load() <= s.cfg.StateBudgetBytes {
		return
	}
	select {
	case s.pressureKick <- struct{}{}:
	default: // a relief round is already pending
	}
}

func (s *Server) pressureLoop() {
	defer close(s.pressureDone)
	for {
		select {
		case <-s.pressureStop:
			return
		case <-s.pressureKick:
			s.relievePressure()
		}
	}
}

func (s *Server) openSessions() []*session {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		list = append(list, sess)
	}
	return list
}

// relievePressure walks the escalation ladder until the state total is back
// under budget or nothing is left to shed. Each per-session step runs under
// that session's scheduler key, serialized with its chunk ingestion.
func (s *Server) relievePressure() {
	budget := s.cfg.StateBudgetBytes
	if s.stateTotal.Load() <= budget {
		return
	}
	// Step 1: force-compact, fattest first — the cheapest state to win back.
	open := s.openSessions()
	sort.Slice(open, func(i, j int) bool { return open[i].cachedState() > open[j].cachedState() })
	for _, sess := range open {
		if s.stateTotal.Load() <= budget {
			return
		}
		sess := sess
		err := s.sched.Do(context.Background(), sess.id, func() {
			sess.compactNow()
			if d := sess.remeasureState(); d != 0 {
				s.stateTotal.Add(d)
			}
		})
		if err != nil {
			return // draining or saturated: yield, the next kick retries
		}
	}
	if s.stateTotal.Load() <= budget {
		return
	}
	// Step 2: park the coldest sessions. The most recently active session is
	// never parked — whatever client is pushing hardest keeps making
	// progress even when one session alone exceeds the budget.
	open = s.openSessions()
	sort.Slice(open, func(i, j int) bool { return open[i].idleSince().Before(open[j].idleSince()) })
	freed := 0
	for i, sess := range open {
		if s.stateTotal.Load() <= budget || i == len(open)-1 {
			break
		}
		if s.parkSession(sess) {
			freed++
		}
	}
	if freed > 0 {
		s.cfg.Logger.Warn("memory pressure parked sessions",
			"parked", freed, "state_bytes", s.stateTotal.Load(), "budget_bytes", budget)
	}
}

// parkSession serializes one session, evicts it from memory, and records
// the parking spot. Runs under the session's scheduler key so it lands on a
// chunk boundary. Reports whether the session was actually parked.
func (s *Server) parkSession(sess *session) bool {
	parked := false
	err := s.sched.Do(context.Background(), sess.id, func() {
		var buf bytes.Buffer
		if serr := sess.snapshotTo(&buf); serr != nil {
			// Closed, failed, or unsnapshottable: not parkable. Failed
			// sessions keep their latched error visible until idle eviction.
			return
		}
		if s.cfg.CheckpointDir != "" {
			werr := writeFileAtomic(s.ckptPath(sess.id), func(w io.Writer) error {
				_, err := w.Write(buf.Bytes())
				return err
			})
			if werr != nil {
				s.cfg.Logger.Error("parking session failed", "session", sess.id, "err", werr)
				return
			}
		} else {
			s.parkedMu.Lock()
			s.parked[sess.id] = parkedSession{blob: buf.Bytes(), at: time.Now()}
			s.parkedMu.Unlock()
		}
		s.removeSession(sess.id)
		sess.abort() // release detector state (arena refs) now, not at GC time
		if d := sess.remeasureState(); d != 0 {
			s.stateTotal.Add(d)
		}
		s.sessionsParked.Add(1)
		parked = true
	})
	return err == nil && parked
}

// liveSession resolves id to an open session, transparently restoring
// ("unparking") a pressure-parked one. Handlers that act on a session use
// this instead of getSession, so parking is invisible to clients.
func (s *Server) liveSession(id string) *session {
	if sess := s.getSession(id); sess != nil {
		return sess
	}
	return s.unpark(id)
}

func (s *Server) unpark(id string) *session {
	// The id names a checkpoint file in dir mode: refuse path metacharacters
	// before they reach the filesystem. Real ids are hex.
	if id == "" || strings.ContainsAny(id, "/\\.") {
		return nil
	}
	var blob []byte
	s.parkedMu.Lock()
	if rec, ok := s.parked[id]; ok {
		blob = rec.blob
		delete(s.parked, id)
	}
	s.parkedMu.Unlock()

	var sess *session
	switch {
	case blob != nil:
		var err error
		if sess, err = restoreSession(bytes.NewReader(blob), time.Now()); err != nil {
			s.cfg.Logger.Error("parked session unrestorable", "session", id, "err", err)
			return nil
		}
	case s.cfg.CheckpointDir != "":
		f, err := os.Open(s.ckptPath(id))
		if err != nil {
			return nil // not parked, plain unknown session
		}
		sess, err = restoreSession(f, time.Now())
		f.Close()
		if err != nil || sess.id != id {
			s.cfg.Logger.Error("checkpoint for session unrestorable", "session", id, "err", err)
			return nil
		}
	default:
		return nil
	}

	s.instrument(sess)
	s.applyCompactPolicy(sess)
	s.mu.Lock()
	if cur, ok := s.sessions[id]; ok {
		s.mu.Unlock()
		sess.abort() // lost an unpark race; drop the duplicate's state
		return cur
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.sessionsUnparked.Add(1)
	s.noteSessionState(sess)
	s.cfg.Logger.Info("unparked session", "session", id, "events", sess.events)
	return sess
}

// dropParked discards a parked session's record (in-memory blob or
// checkpoint file) and reports whether one existed — the abort path for
// sessions that are parked rather than live.
func (s *Server) dropParked(id string) bool {
	s.parkedMu.Lock()
	_, ok := s.parked[id]
	delete(s.parked, id)
	s.parkedMu.Unlock()
	if ok {
		s.dropSessionCheckpoint(id)
		return true
	}
	if s.cfg.CheckpointDir == "" || id == "" || strings.ContainsAny(id, "/\\.") {
		return false
	}
	return os.Remove(s.ckptPath(id)) == nil
}

// pruneParked finalizes in-memory parked sessions that have been idle past
// the cutoff, so their races reach the report store like any idle-evicted
// session's. Dir-mode parking needs no pruning: checkpoint files are
// durable and survive to the next restore.
func (s *Server) pruneParked(cutoff time.Time) {
	s.parkedMu.Lock()
	var stale []parkedSession
	for id, rec := range s.parked {
		if rec.at.Before(cutoff) {
			stale = append(stale, rec)
			delete(s.parked, id)
		}
	}
	s.parkedMu.Unlock()
	for _, rec := range stale {
		sess, err := restoreSession(bytes.NewReader(rec.blob), time.Now())
		if err != nil {
			continue
		}
		sess.finalize(s.store, time.Now())
		s.sessionsEvicted.Add(1)
		s.cfg.Logger.Info("evicted stale parked session", "session", sess.id, "events", sess.events)
	}
	if len(stale) > 0 {
		s.checkpointStore()
	}
}
