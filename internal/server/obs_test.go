package server

// Observability tests: the /metrics exposition must be well-formed and
// duplicate-free (the coordinator re-parses it with internal/obs to merge
// fleets), the /debug/trace and /debug/sessions endpoints must return the
// spans a traced request left behind, and the instrumented ingest path must
// stay allocation-free per event at the default sampling rate.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/traceio"
)

// goldenFamilies are the raced_* metric families scraped by smoke scripts
// and dashboards. Renaming or dropping one is a breaking change to every
// consumer of /metrics — this list is the contract.
var goldenFamilies = []string{
	"raced_events_ingested_total",
	"raced_chunks_total",
	"raced_sessions_created_total",
	"raced_sessions_finished_total",
	"raced_sessions_evicted_total",
	"raced_shed_total",
	"raced_chunks_replayed_total",
	"raced_events_replayed_total",
	"raced_chunk_integrity_rejects_total",
	"raced_chunk_gap_rejects_total",
	"raced_chunk_ingest_seconds",
	"raced_queue_wait_seconds",
	"raced_decode_seconds",
	"raced_engine_process_seconds",
	"raced_checkpoint_seconds",
	"raced_sessions_active",
	"raced_sessions_parked",
	"raced_queue_depth",
	"raced_queue_cap",
	"raced_tasks_running",
	"raced_sched_workers",
	"raced_state_bytes",
	"raced_arena_leaked_refs",
	"raced_uptime_seconds",
	"raced_report_classes",
	"raced_report_observations_total",
	"raced_coordinator_epoch",
	"raced_epoch_rejects_total",
}

// TestMetricsExposition re-parses /metrics with the same parser the fleet
// coordinator scrapes workers with: every family typed and documented, no
// series rendered twice, and the golden family names all present.
func TestMetricsExposition(t *testing.T) {
	_, tc := newTestServer(t, Config{Workers: 2})
	tr := gen.Random(gen.RandomConfig{Seed: 7, Events: 4000, Threads: 3, Locks: 2, Vars: 4})
	id := tc.createSession(tr, "wcp,hb")
	tc.stream(id, tr, 3)
	tc.finish(id)

	resp, raw := tc.do("GET", "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	fams, err := obs.ParseExposition(raw)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, raw)
	}
	byName := make(map[string]*obs.ParsedFamily)
	series := make(map[string]bool)
	for _, f := range fams {
		if byName[f.Name] != nil {
			t.Errorf("family %s appears twice (split HELP/TYPE blocks)", f.Name)
		}
		byName[f.Name] = f
		if f.Type == "" || f.Type == "untyped" {
			t.Errorf("family %s has no TYPE", f.Name)
		}
		if f.Help == "" {
			t.Errorf("family %s has no HELP", f.Name)
		}
		for _, l := range f.Lines {
			if series[l.Series()] {
				t.Errorf("series %s rendered twice", l.Series())
			}
			series[l.Series()] = true
		}
	}
	for _, name := range goldenFamilies {
		f := byName[name]
		if f == nil {
			t.Errorf("golden family %s missing from /metrics", name)
			continue
		}
		if len(f.Lines) == 0 {
			t.Errorf("golden family %s has no samples", name)
		}
	}
	// The per-engine histogram must carry one labeled series per engine the
	// session ran.
	for _, eng := range []string{"wcp", "hb"} {
		want := fmt.Sprintf(`engine=%q`, eng)
		found := false
		for _, l := range byName["raced_engine_process_seconds"].Lines {
			if strings.Contains(l.Labels, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("raced_engine_process_seconds has no series labeled %s", want)
		}
	}
}

// doTraced issues a request carrying an X-Raced-Trace header.
func (tc *testClient) doTraced(method, path, traceID string, body *bytes.Buffer) (*http.Response, []byte) {
	tc.t.Helper()
	var rd io.Reader
	if body != nil {
		rd = body
	}
	req, err := http.NewRequest(method, tc.base+path, rd)
	if err != nil {
		tc.t.Fatal(err)
	}
	req.Header.Set(obs.HeaderTrace, traceID)
	resp, err := tc.c.Do(req)
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tc.t.Fatal(err)
	}
	return resp, raw
}

// TestDebugTraceEndpoints: a traced session leaves create/chunk/finish
// spans retrievable both by trace id and by session id.
func TestDebugTraceEndpoints(t *testing.T) {
	_, tc := newTestServer(t, Config{Workers: 2, Name: "w-test"})
	tr := gen.Random(gen.RandomConfig{Seed: 9, Events: 3000, Threads: 3, Locks: 2, Vars: 4})
	traceID := obs.NewTraceID()

	var hdr bytes.Buffer
	if err := traceio.WriteHeader(&hdr, tr.Symbols, 0); err != nil {
		t.Fatal(err)
	}
	resp, raw := tc.doTraced("POST", "/sessions?engines=wcp", traceID, &hdr)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, raw)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &created); err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := traceio.EncodeEvents(&body, tr.Events); err != nil {
		t.Fatal(err)
	}
	if resp, raw := tc.doTraced("POST", "/sessions/"+created.ID+"/chunks", traceID, &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk: %d %s", resp.StatusCode, raw)
	}
	if resp, raw := tc.doTraced("POST", "/sessions/"+created.ID+"/finish", traceID, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("finish: %d %s", resp.StatusCode, raw)
	}

	for _, q := range []struct{ path, id string }{
		{"/debug/trace/" + traceID, traceID},
		{"/debug/sessions/" + created.ID, created.ID},
	} {
		resp, raw := tc.do("GET", q.path, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", q.path, resp.StatusCode, raw)
		}
		var out struct {
			Spans []obs.Span `json:"spans"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("%s: %v", q.path, err)
		}
		names := make(map[string]bool)
		for _, sp := range out.Spans {
			names[sp.Name] = true
			if sp.Trace != traceID {
				t.Errorf("%s: span %q carries trace %q, want %q", q.path, sp.Name, sp.Trace, traceID)
			}
			if sp.Session != created.ID {
				t.Errorf("%s: span %q carries session %q, want %q", q.path, sp.Name, sp.Session, created.ID)
			}
			if sp.Worker != "w-test" {
				t.Errorf("%s: span %q carries worker %q, want w-test", q.path, sp.Name, sp.Worker)
			}
		}
		for _, want := range []string{"create", "chunk", "finish"} {
			if !names[want] {
				t.Errorf("%s: no %q span in %v", q.path, want, out.Spans)
			}
		}
	}

	// Malformed ids are rejected, unknown-but-valid ids return empty spans.
	if resp, _ := tc.do("GET", "/debug/trace/nope!", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad trace id: %d, want 400", resp.StatusCode)
	}
	resp, raw = tc.do("GET", "/debug/trace/"+obs.NewTraceID(), nil)
	var unknown struct {
		Spans []obs.Span `json:"spans"`
	}
	if err := json.Unmarshal(raw, &unknown); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || unknown.Spans == nil || len(unknown.Spans) != 0 {
		t.Errorf("unknown trace: %d %s, want 200 with empty (not null) span list", resp.StatusCode, raw)
	}
}

// TestIngestAllocs pins the observability overhead of the hot path: with
// stage timing at its default sampling rate, ingest must stay amortized
// allocation-free per event — spans and sampled timings are per chunk or
// per Nth block, never per event.
func TestIngestAllocs(t *testing.T) {
	s, tc := newTestServer(t, Config{Workers: 1})
	// ForkJoin off so re-appending the same event body to one session stays
	// a valid trace (forking an already-forked thread is not).
	tr := gen.Random(gen.RandomConfig{Seed: 11, Events: 20000, Threads: 4, Locks: 3, Vars: 5})
	id := tc.createSession(tr, "wcp")
	sess := s.getSession(id)
	if sess == nil {
		t.Fatalf("session %s not found", id)
	}
	if sess.obs == nil || sess.obs.sampleNs != 32 {
		t.Fatalf("session not instrumented at the default sampling rate: %+v", sess.obs)
	}
	var body bytes.Buffer
	if err := traceio.EncodeEvents(&body, tr.Events); err != nil {
		t.Fatal(err)
	}
	raw := body.Bytes()
	ingest := func() {
		if _, _, err := sess.ingest(bytes.NewReader(raw), 0, false, "", time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	ingest() // warm up: detector growth, scratch buffers
	avg := testing.AllocsPerRun(10, ingest)
	perEvent := avg / float64(len(tr.Events))
	if perEvent > 0.01 {
		t.Errorf("instrumented ingest allocates %.4f/event (%.0f per %d-event chunk), want amortized 0",
			perEvent, avg, len(tr.Events))
	}
}

// benchIngestSession opens one session against s without a network listener.
func benchIngestSession(b *testing.B, s *Server, tr *trace.Trace) *session {
	b.Helper()
	var hdr bytes.Buffer
	if err := traceio.WriteHeader(&hdr, tr.Symbols, 0); err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/sessions?engines=wcp", &hdr)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusCreated {
		b.Fatalf("create: %d %s", w.Code, w.Body)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		b.Fatal(err)
	}
	sess := s.getSession(out.ID)
	if sess == nil {
		b.Fatalf("session %s not found", out.ID)
	}
	return sess
}

// BenchmarkIngestObs is the A/B overhead check for ingest-path
// observability: the same chunk ingested with stage timing disabled versus
// the default every-32nd-block sampling. scripts/perf_obs_ab.sh compares
// the two and warns above 3%.
func BenchmarkIngestObs(b *testing.B) {
	tr := gen.Random(gen.RandomConfig{Seed: 13, Events: 50000, Threads: 4, Locks: 3, Vars: 5})
	var body bytes.Buffer
	if err := traceio.EncodeEvents(&body, tr.Events); err != nil {
		b.Fatal(err)
	}
	raw := body.Bytes()
	for _, bc := range []struct {
		name   string
		sample int
	}{
		{"off", -1},
		{"sampled_32", 0}, // Config default
	} {
		b.Run(bc.name, func(b *testing.B) {
			s := New(Config{Workers: 1, QueueCap: 64, IdleTimeout: -1, ObsSampleEvery: bc.sample})
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := s.Close(ctx); err != nil {
					b.Error(err)
				}
			}()
			sess := benchIngestSession(b, s, tr)
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sess.ingest(bytes.NewReader(raw), 0, false, "", time.Now()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(tr.Events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
