package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/gen"
	"repro/internal/trace"
	"repro/internal/traceio"
)

// chunkCRC computes the checksum the resilient protocol expects: over
// "<offset>:<body>" when the offset header rides along, over the bare body
// otherwise. Mirrors internal/client.
func chunkCRC(offset uint64, hasOffset bool, body []byte) string {
	h := crc32.NewIEEE()
	if hasOffset {
		h.Write([]byte(strconv.FormatUint(offset, 10)))
		h.Write([]byte{':'})
	}
	h.Write(body)
	return strconv.FormatUint(uint64(h.Sum32()), 10)
}

func encodeEvents(t *testing.T, events []event.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := traceio.EncodeEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sendChunkAt posts events with the given absolute offset plus a matching
// checksum — the full resilient-protocol request shape.
func (tc *testClient) sendChunkAt(id string, offset uint64, body []byte) (*http.Response, []byte) {
	tc.t.Helper()
	req, err := http.NewRequest("POST", tc.base+"/sessions/"+id+"/chunks", bytes.NewReader(body))
	if err != nil {
		tc.t.Fatal(err)
	}
	req.Header.Set(HeaderChunkOffset, strconv.FormatUint(offset, 10))
	req.Header.Set(HeaderChunkCRC, chunkCRC(offset, true, body))
	resp, err := tc.c.Do(req)
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		tc.t.Fatal(err)
	}
	return resp, raw.Bytes()
}

type chunkResp struct {
	ID       string `json:"id"`
	Events   uint64 `json:"events"`
	Chunks   int    `json:"chunks"`
	Replayed uint64 `json:"replayed"`
}

func decodeChunkResp(t *testing.T, raw []byte) chunkResp {
	t.Helper()
	var cr chunkResp
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatalf("chunk response %q: %v", raw, err)
	}
	return cr
}

// TestChunkReplayIsNoOp: a double-submitted chunk (exact resend) and a
// half-overlapping resend are both deduplicated server-side — the already
// acknowledged prefix is skipped, only genuinely new events reach the
// detectors, and the final report is byte-identical to a clean run.
func TestChunkReplayIsNoOp(t *testing.T) {
	s, tc := newTestServer(t, Config{Workers: 2, QueueCap: 64})
	tr := gen.Random(gen.RandomConfig{Seed: 11, Events: 2000, Threads: 3, Locks: 2, Vars: 4})
	id := tc.createSession(tr, "wcp")

	first := encodeEvents(t, tr.Events[:1000])
	resp, raw := tc.sendChunkAt(id, 0, first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first chunk: %d %s", resp.StatusCode, raw)
	}
	if cr := decodeChunkResp(t, raw); cr.Events != 1000 || cr.Replayed != 0 {
		t.Fatalf("first chunk acked events=%d replayed=%d, want 1000/0", cr.Events, cr.Replayed)
	}

	// Exact resend: every event is behind the ack, nothing is re-analyzed.
	resp, raw = tc.sendChunkAt(id, 0, first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resent chunk: %d %s", resp.StatusCode, raw)
	}
	if cr := decodeChunkResp(t, raw); cr.Events != 1000 || cr.Replayed != 1000 {
		t.Fatalf("resend acked events=%d replayed=%d, want 1000/1000", cr.Events, cr.Replayed)
	}

	// Half-overlap: [500, 1500) against an ack of 1000 — 500 replayed, 500 new.
	resp, raw = tc.sendChunkAt(id, 500, encodeEvents(t, tr.Events[500:1500]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("overlap chunk: %d %s", resp.StatusCode, raw)
	}
	if cr := decodeChunkResp(t, raw); cr.Events != 1500 || cr.Replayed != 500 {
		t.Fatalf("overlap acked events=%d replayed=%d, want 1500/500", cr.Events, cr.Replayed)
	}
	if got := s.chunksReplayed.Value(); got != 2 {
		t.Errorf("chunksReplayed = %d, want 2", got)
	}
	if got := s.eventsReplayed.Value(); got != 1500 {
		t.Errorf("eventsReplayed = %d, want 1500", got)
	}

	resp, raw = tc.sendChunkAt(id, 1500, encodeEvents(t, tr.Events[1500:]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tail chunk: %d %s", resp.StatusCode, raw)
	}
	got := tc.finish(id)
	want := engine.MustNew("wcp", engine.Config{}).Analyze(tr)
	if got.Results[0].Report != want.Report.Format(tr.Symbols) {
		t.Errorf("report after replayed chunks differs from batch analysis:\n%s\n--- want ---\n%s",
			got.Results[0].Report, want.Report.Format(tr.Symbols))
	}
}

// TestChunkGapRejected: a chunk whose offset is ahead of the acknowledged
// count is refused with 409 + gap:true + the authoritative ack, and the
// session remains usable once the client rewinds.
func TestChunkGapRejected(t *testing.T) {
	s, tc := newTestServer(t, Config{})
	tr := gen.Random(gen.RandomConfig{Seed: 12, Events: 500, Threads: 3, Locks: 2, Vars: 4})
	id := tc.createSession(tr, "wcp")

	resp, raw := tc.sendChunkAt(id, 100, encodeEvents(t, tr.Events[100:200]))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("gap chunk: %d %s, want 409", resp.StatusCode, raw)
	}
	var gap struct {
		Error  string `json:"error"`
		Events uint64 `json:"events"`
		Gap    bool   `json:"gap"`
	}
	if err := json.Unmarshal(raw, &gap); err != nil {
		t.Fatal(err)
	}
	if !gap.Gap || gap.Events != 0 {
		t.Fatalf("gap response %s: want gap=true events=0", raw)
	}
	if got := s.gapRejects.Value(); got != 1 {
		t.Errorf("gapRejects = %d, want 1", got)
	}

	// Rewind to the authoritative ack and the session carries on.
	resp, raw = tc.sendChunkAt(id, gap.Events, encodeEvents(t, tr.Events))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk after rewind: %d %s", resp.StatusCode, raw)
	}
	if got := tc.finish(id); got.Events != uint64(len(tr.Events)) {
		t.Errorf("session saw %d events, want %d", got.Events, len(tr.Events))
	}
}

// TestChunkCRCMismatch: a corrupted body, and a checksum that disagrees
// with the offset header it rode in with, are both 422s that leave the
// session untouched; the clean resend then lands.
func TestChunkCRCMismatch(t *testing.T) {
	s, tc := newTestServer(t, Config{})
	tr := gen.Random(gen.RandomConfig{Seed: 13, Events: 500, Threads: 3, Locks: 2, Vars: 4})
	id := tc.createSession(tr, "wcp")
	body := encodeEvents(t, tr.Events)

	// Flipped body bit, checksum from the uncorrupted body.
	bad := append([]byte(nil), body...)
	bad[len(bad)/2] ^= 0x10
	req, _ := http.NewRequest("POST", tc.base+"/sessions/"+id+"/chunks", bytes.NewReader(bad))
	req.Header.Set(HeaderChunkOffset, "0")
	req.Header.Set(HeaderChunkCRC, chunkCRC(0, true, body))
	resp, err := tc.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt body: %d, want 422", resp.StatusCode)
	}

	// Clean body, but the offset header doesn't match the one the checksum
	// was computed over — a flipped offset digit must not misalign the
	// replay-skip, so the binding check rejects it.
	req, _ = http.NewRequest("POST", tc.base+"/sessions/"+id+"/chunks", bytes.NewReader(body))
	req.Header.Set(HeaderChunkOffset, "0")
	req.Header.Set(HeaderChunkCRC, chunkCRC(10, true, body))
	resp, err = tc.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("offset/CRC disagreement: %d, want 422", resp.StatusCode)
	}
	if got := s.integrityRejects.Value(); got != 2 {
		t.Errorf("integrityRejects = %d, want 2", got)
	}
	if got := tc.sessionEvents(id); got != 0 {
		t.Fatalf("rejected chunks advanced the session to %d events, want 0", got)
	}

	resp2, raw := tc.sendChunkAt(id, 0, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("clean resend: %d %s", resp2.StatusCode, raw)
	}
	if got := tc.finish(id); got.Events != uint64(len(tr.Events)) {
		t.Errorf("session saw %d events, want %d", got.Events, len(tr.Events))
	}
}

// TestCreateSessionCRCMismatch: the optional header-body checksum on
// session create catches corruption that would otherwise decode cleanly
// into skewed symbol names.
func TestCreateSessionCRCMismatch(t *testing.T) {
	_, tc := newTestServer(t, Config{})
	tr := gen.Random(gen.RandomConfig{Seed: 14, Events: 100, Threads: 3, Locks: 2, Vars: 4})
	var hdr bytes.Buffer
	if err := traceio.WriteHeader(&hdr, tr.Symbols, 0); err != nil {
		t.Fatal(err)
	}
	good := hdr.Bytes()
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0x01

	req, _ := http.NewRequest("POST", tc.base+"/sessions?engines=wcp", bytes.NewReader(bad))
	req.Header.Set(HeaderChunkCRC, chunkCRC(0, false, good))
	resp, err := tc.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt header: %d, want 422", resp.StatusCode)
	}

	req, _ = http.NewRequest("POST", tc.base+"/sessions?engines=wcp", bytes.NewReader(good))
	req.Header.Set(HeaderChunkCRC, chunkCRC(0, false, good))
	resp, err = tc.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("clean header with CRC: %d, want 201", resp.StatusCode)
	}
}

// TestDroppedConnMidChunk: a connection that dies halfway through a chunk
// body must cost nothing — the session stays at its last acknowledged
// offset, and resuming from there yields a report identical to an
// uninterrupted run.
func TestDroppedConnMidChunk(t *testing.T) {
	_, tc := newTestServer(t, Config{Workers: 2, QueueCap: 64})
	tr := gen.Random(gen.RandomConfig{Seed: 15, Events: 4000, Threads: 4, Locks: 3, Vars: 5})
	id := tc.createSession(tr, "wcp,hb")

	cut := len(tr.Events) / 2
	tc.streamRange(id, tr, 0, cut)

	// Hand-roll a chunk request that advertises more body than it sends,
	// then slam the connection — what a killed client or a dropped link
	// leaves behind.
	partial := encodeEvents(t, tr.Events[cut:])
	host := strings.TrimPrefix(tc.base, "http://")
	conn, err := net.Dial("tcp", host)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "POST /sessions/%s/chunks HTTP/1.1\r\nHost: %s\r\nContent-Length: %d\r\n\r\n",
		id, host, len(partial))
	if _, err := conn.Write(partial[:len(partial)/2]); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The half-sent chunk must not have advanced (or poisoned) the session.
	deadline := time.Now().Add(5 * time.Second)
	for tc.sessionEvents(id) != uint64(cut) {
		if time.Now().After(deadline) {
			t.Fatalf("session at %d events after dropped conn, want %d", tc.sessionEvents(id), cut)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Resume from the acknowledged offset; the report matches batch analysis.
	resp, raw := tc.sendChunkAt(id, uint64(cut), partial)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resumed chunk: %d %s", resp.StatusCode, raw)
	}
	got := tc.finish(id)
	if got.Events != uint64(len(tr.Events)) {
		t.Fatalf("session saw %d events, want %d", got.Events, len(tr.Events))
	}
	for i, name := range []string{"wcp", "hb"} {
		want := engine.MustNew(name, engine.Config{}).Analyze(tr)
		if got.Results[i].Report != want.Report.Format(tr.Symbols) {
			t.Errorf("%s report after dropped conn differs from batch analysis", name)
		}
	}
}

// TestFinishIdempotent: a retried finish (the reply to the first was lost)
// replays the cached response byte-for-byte instead of 404ing.
func TestFinishIdempotent(t *testing.T) {
	_, tc := newTestServer(t, Config{})
	tr := gen.Random(gen.RandomConfig{Seed: 16, Events: 1000, Threads: 3, Locks: 2, Vars: 4})
	id := tc.createSession(tr, "wcp")
	tc.stream(id, tr, 3)

	resp1, raw1 := tc.do("POST", "/sessions/"+id+"/finish", nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("finish: %d %s", resp1.StatusCode, raw1)
	}
	resp2, raw2 := tc.do("POST", "/sessions/"+id+"/finish", nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retried finish: %d %s", resp2.StatusCode, raw2)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Errorf("retried finish differs from original:\n%s\n--- first ---\n%s", raw2, raw1)
	}
}

// TestRetryAfterDerivedFromQueueDepth: the 429 Retry-After hint scales
// with the actual backlog — floor + one second per full round of queued
// work per worker — instead of a constant.
func TestRetryAfterDerivedFromQueueDepth(t *testing.T) {
	s, tc := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	tr := gen.Random(gen.RandomConfig{Seed: 17, Events: 200, Threads: 3, Locks: 2, Vars: 4})
	id := tc.createSession(tr, "wcp")

	gate := make(chan struct{})
	var pinned sync.WaitGroup
	pinned.Add(1)
	if err := s.sched.Submit("pin", func() { defer pinned.Done(); <-gate }); err != nil {
		t.Fatal(err)
	}
	for i := 0; s.sched.Running() != 1; i++ {
		if i > 1000 {
			t.Fatal("pin task never started")
		}
		time.Sleep(time.Millisecond)
	}
	fills := make(chan struct{})
	for i := 0; i < 2; i++ {
		if err := s.sched.Submit(fmt.Sprintf("fill-%d", i), func() { <-fills }); err != nil {
			t.Fatal(err)
		}
	}

	body := encodeEvents(t, tr.Events)
	resp, raw := tc.do("POST", "/sessions/"+id+"/chunks", bytes.NewReader(body))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("chunk under saturation: %d %s, want 429", resp.StatusCode, raw)
	}
	// Floor 1 + queue depth 2 / 1 worker = 3 seconds.
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\" (floor 1 + depth 2 / 1 worker)", got)
	}

	close(fills)
	close(gate)
	pinned.Wait()
	tc.sendChunkBytes(id, body)
	tc.finish(id)
}

// TestPressureParksAndUnparksTransparently: with an impossible state
// budget the pressure loop checkpoints-and-evicts the coldest session;
// touching the parked session restores it transparently and the final
// report is identical to a run that was never parked.
func TestPressureParksAndUnparksTransparently(t *testing.T) {
	s, tc := newTestServer(t, Config{
		Workers: 2, QueueCap: 64,
		IdleTimeout:      -1,
		StateBudgetBytes: 1, // everything is over budget
	})
	trA := gen.Random(gen.RandomConfig{Seed: 18, Events: 3000, Threads: 4, Locks: 3, Vars: 5})
	trB := gen.Random(gen.RandomConfig{Seed: 19, Events: 3000, Threads: 4, Locks: 3, Vars: 5})

	cutA := len(trA.Events) / 2
	idA := tc.createSession(trA, "wcp")
	tc.streamRange(idA, trA, 0, cutA)
	idB := tc.createSession(trB, "wcp")
	tc.streamRange(idB, trB, 0, len(trB.Events)/2)

	// The pressure loop can never get under a 1-byte budget, so it parks
	// every session except the most recently active one (B).
	deadline := time.Now().Add(10 * time.Second)
	for s.sessionsParked.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pressure loop never parked a session (state=%d)", s.stateTotal.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.getSession(idA) != nil && s.sessionsParked.Value() > 0 && s.getSession(idB) == nil {
		t.Fatal("pressure parked the most recently active session instead of the coldest")
	}

	// Touching the parked session restores it where it left off.
	if got := tc.sessionEvents(idA); got != uint64(cutA) {
		t.Fatalf("unparked session at %d events, want %d", got, cutA)
	}
	if s.sessionsUnparked.Value() == 0 {
		t.Error("status on a parked session did not bump sessionsUnparked")
	}

	for id, tr := range map[string]*trace.Trace{idA: trA, idB: trB} {
		resp, raw := tc.sendChunkAt(id, uint64(len(tr.Events))/2, encodeEvents(t, tr.Events[len(tr.Events)/2:]))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk after park/unpark: %d %s", resp.StatusCode, raw)
		}
		got := tc.finish(id)
		want := engine.MustNew("wcp", engine.Config{}).Analyze(tr)
		if got.Results[0].Report != want.Report.Format(tr.Symbols) {
			t.Errorf("report after park/unpark differs from batch analysis:\n%s\n--- want ---\n%s",
				got.Results[0].Report, want.Report.Format(tr.Symbols))
		}
	}
}
