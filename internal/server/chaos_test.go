package server

import (
	"context"
	"net"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/gen"
)

// startChaosServer runs a Server on a real TCP listener, optionally wrapped
// by a fault injector — the same wiring cmd/raced uses for -chaos, so the
// tests exercise the exact production fault surface. Returns the base URL
// and a stop func that tears down HTTP first, then drains the server.
func startChaosServer(t *testing.T, cfg Config, inj *faultinject.Injector) (*Server, string, func()) {
	t.Helper()
	s := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := net.Listener(ln)
	if inj != nil {
		wrapped = inj.WrapListener(ln)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(wrapped)
	var once sync.Once
	stop := func() {
		once.Do(func() {
			hs.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Close(ctx); err != nil {
				t.Errorf("Close: %v", err)
			}
		})
	}
	return s, "http://" + ln.Addr().String(), stop
}

// chaosClientConfig is tuned for hostile transports: small chunks so faults
// land mid-stream, a deep retry budget, fast backoff so tests stay quick,
// and a short per-request deadline so black-holed responses (truncate
// faults) cost little. Keep-alives are off so every request dials a fresh
// connection and draws a fresh fault plan — with pooling, three clients
// would share three long-lived conns and most of the fault schedule would
// never roll.
func chaosClientConfig(base string) client.Config {
	return client.Config{
		BaseURL:        base,
		Engines:        []string{"wcp", "hb"},
		HTTPClient:     &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		ChunkEvents:    400,
		RetryBudget:    100,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
	}
}

// chaosDifferential drives nclients concurrent resilient clients through a
// fault-injected server and requires every final report to be
// byte-identical to an uninterrupted batch analysis of the same trace —
// the acceptance bar for the whole fault-tolerance stack. It also checks
// the hb arena for leaked vector allocations after every finish.
func chaosDifferential(t *testing.T, cfg Config, inj *faultinject.Injector, nclients int) {
	t.Helper()
	srv, base, stop := startChaosServer(t, cfg, inj)
	defer stop()

	var wg sync.WaitGroup
	for c := 0; c < nclients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tr := gen.Random(gen.RandomConfig{
				Seed: int64(300 + c), Events: 3000 + 500*c, Threads: 3 + c%3, Locks: 2, Vars: 4,
			})
			ctx := context.Background()
			ccfg := chaosClientConfig(base)
			sess, err := client.Open(ctx, ccfg, tr.Symbols)
			if err != nil {
				t.Errorf("client %d: open: %v", c, err)
				return
			}
			if err := sess.Stream(ctx, tr.Events, 0); err != nil {
				t.Errorf("client %d: stream: %v", c, err)
				return
			}
			srvSess := srv.getSession(sess.ID()) // may be parked (nil) under pressure
			fin, err := sess.Finish(ctx)
			if err != nil {
				t.Errorf("client %d: finish: %v", c, err)
				return
			}
			if fin.Events != uint64(len(tr.Events)) {
				t.Errorf("client %d: session saw %d events, want %d", c, fin.Events, len(tr.Events))
				return
			}
			for i, name := range ccfg.Engines {
				want := engine.MustNew(name, engine.Config{}).Analyze(tr)
				got := fin.Results[i]
				if got.Distinct != want.Distinct() || got.RacyEvents != want.RacyEvents {
					t.Errorf("client %d %s: distinct=%d racy=%d, want distinct=%d racy=%d",
						c, name, got.Distinct, got.RacyEvents, want.Distinct(), want.RacyEvents)
				}
				if wantReport := want.Report.Format(tr.Symbols); got.Report != wantReport {
					t.Errorf("client %d %s: report under faults differs from batch analysis:\n%s\n--- want ---\n%s",
						c, name, got.Report, wantReport)
				}
			}
			if srvSess != nil {
				srvSess.mu.Lock()
				for i, es := range srvSess.engines {
					if allocs, free, ok := engine.ArenaStats(es); ok && free != allocs {
						t.Errorf("client %d %s: arena leak after finish: allocs=%d free=%d",
							c, srvSess.names[i], allocs, free)
					}
				}
				srvSess.mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
}

func baseChaosConfig() Config {
	return Config{Workers: 4, QueueCap: 256, IdleTimeout: -1}
}

func TestChaosDrops(t *testing.T) {
	inj := faultinject.New(faultinject.Options{DropProb: 0.4, MaxOffset: 4 << 10, Seed: 1})
	chaosDifferential(t, baseChaosConfig(), inj, 3)
	if inj.Counters.Drops.Load() == 0 {
		t.Error("drop fault never fired; the test exercised nothing")
	}
}

func TestChaosBitFlips(t *testing.T) {
	inj := faultinject.New(faultinject.Options{FlipProb: 0.4, MaxOffset: 8 << 10, Seed: 2})
	chaosDifferential(t, baseChaosConfig(), inj, 3)
	if inj.Counters.BitFlips.Load() == 0 {
		t.Error("bit-flip fault never fired; the test exercised nothing")
	}
}

func TestChaosTruncates(t *testing.T) {
	inj := faultinject.New(faultinject.Options{TruncProb: 0.4, MaxOffset: 4 << 10, Seed: 3})
	chaosDifferential(t, baseChaosConfig(), inj, 3)
	if inj.Counters.Truncates.Load() == 0 {
		t.Error("truncate fault never fired; the test exercised nothing")
	}
}

func TestChaosStalls(t *testing.T) {
	inj := faultinject.New(faultinject.Options{
		StallProb: 0.5, StallFor: 5 * time.Millisecond, MaxOffset: 8 << 10, Seed: 4,
	})
	chaosDifferential(t, baseChaosConfig(), inj, 3)
	if inj.Counters.Stalls.Load() == 0 {
		t.Error("stall fault never fired; the test exercised nothing")
	}
}

// TestChaosMixed is the everything-at-once run: drops, truncations,
// stalls, bit flips and per-read latency on every connection, plus a
// goroutine-leak check once the server is fully stopped.
func TestChaosMixed(t *testing.T) {
	before := runtime.NumGoroutine()
	inj := faultinject.New(faultinject.Options{
		DropProb: 0.15, TruncProb: 0.1, StallProb: 0.2, FlipProb: 0.15,
		StallFor: 5 * time.Millisecond, Latency: 100 * time.Microsecond,
		MaxOffset: 16 << 10, Seed: 5,
	})
	srv, base, stop := startChaosServer(t, baseChaosConfig(), inj)
	_ = srv
	func() {
		defer stop()
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				tr := gen.Random(gen.RandomConfig{
					Seed: int64(400 + c), Events: 2500, Threads: 4, Locks: 3, Vars: 5,
				})
				ctx := context.Background()
				ccfg := chaosClientConfig(base)
				sess, err := client.Open(ctx, ccfg, tr.Symbols)
				if err != nil {
					t.Errorf("client %d: open: %v", c, err)
					return
				}
				if err := sess.Stream(ctx, tr.Events, 0); err != nil {
					t.Errorf("client %d: stream: %v", c, err)
					return
				}
				fin, err := sess.Finish(ctx)
				if err != nil {
					t.Errorf("client %d: finish: %v", c, err)
					return
				}
				for i, name := range ccfg.Engines {
					want := engine.MustNew(name, engine.Config{}).Analyze(tr)
					if wantReport := want.Report.Format(tr.Symbols); fin.Results[i].Report != wantReport {
						t.Errorf("client %d %s: report under mixed faults differs from batch analysis", c, name)
					}
				}
			}(c)
		}
		wg.Wait()
	}()
	if inj.Counters.Total() == 0 {
		t.Error("no fault ever fired under the mixed plan")
	}
	// Every connection goroutine, scheduler worker and pressure loop must
	// be gone; stalled conns may take a beat to unwind.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosUnderMemoryPressure layers the mixed fault plan on top of a
// tiny global state budget, so sessions are force-compacted and parked to
// disk mid-stream while their clients are actively retrying — and every
// report must still match the batch run.
func TestChaosUnderMemoryPressure(t *testing.T) {
	inj := faultinject.New(faultinject.Options{
		DropProb: 0.15, StallProb: 0.15, FlipProb: 0.1,
		StallFor: 5 * time.Millisecond, MaxOffset: 16 << 10, Seed: 6,
	})
	cfg := baseChaosConfig()
	cfg.StateBudgetBytes = 1 // park everything the loop can reach
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = -1
	chaosDifferential(t, cfg, inj, 3)
}

// TestChaosServerCrashRestart is the end-to-end kill -9 differential: the
// client streams through a fault-free server that dies without any
// shutdown path, a new process on the same checkpoint directory takes over
// the same address, and the SAME client session object converges via the
// gap-rewind protocol (its local ack is ahead of the restored server's) to
// a report identical to an uninterrupted run.
func TestChaosServerCrashRestart(t *testing.T) {
	dir := t.TempDir()
	tr := gen.Random(gen.RandomConfig{Seed: 55, Events: 10000, Threads: 4, Locks: 3, Vars: 5})

	s1 := New(durableConfig(dir))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs1 := &http.Server{Handler: s1.Handler()}
	go hs1.Serve(ln)
	defer func() {
		// s1 was "killed", not closed; drain it at the very end so its
		// goroutines don't trip other tests' leak checks.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s1.Close(ctx)
	}()

	ctx := context.Background()
	ccfg := chaosClientConfig("http://" + addr)
	sess, err := client.Open(ctx, ccfg, tr.Symbols)
	if err != nil {
		t.Fatal(err)
	}
	// Stream 60%, checkpoint, stream 20% more. The post-checkpoint events
	// are acknowledged to the client but die with the process.
	cut := len(tr.Events) * 6 / 10
	if err := sess.Stream(ctx, tr.Events[:cut], 0); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ccfg.BaseURL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d", resp.StatusCode)
	}
	if err := sess.Stream(ctx, tr.Events[:len(tr.Events)*8/10], 0); err != nil {
		t.Fatal(err)
	}

	// kill -9: all conns and the listener die, no drain, no checkpoint.
	hs1.Close()

	// A new process takes over the same address and checkpoint directory.
	var ln2 net.Listener
	for i := 0; ; i++ {
		if ln2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	s2 := New(durableConfig(dir))
	hs2 := &http.Server{Handler: s2.Handler()}
	go hs2.Serve(ln2)
	defer func() {
		hs2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s2.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	// The client never learned about the crash: its ack (80%) is ahead of
	// the restored server's (60%). Its next chunk is refused as a gap with
	// the authoritative ack, it rewinds, and the stream converges.
	if err := sess.Stream(ctx, tr.Events, 0); err != nil {
		t.Fatal(err)
	}
	fin, err := sess.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Events != uint64(len(tr.Events)) {
		t.Fatalf("recovered session saw %d events, want %d", fin.Events, len(tr.Events))
	}
	for i, name := range ccfg.Engines {
		want := engine.MustNew(name, engine.Config{}).Analyze(tr)
		if wantReport := want.Report.Format(tr.Symbols); fin.Results[i].Report != wantReport {
			t.Errorf("%s report after crash+restart differs from batch analysis:\n%s\n--- want ---\n%s",
				name, fin.Results[i].Report, wantReport)
		}
	}
}
