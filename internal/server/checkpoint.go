package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/snap"
	"repro/internal/traceio"
)

// Checkpointing turns crash recovery and graceful restarts into the same
// code path: the server periodically serializes every open session (and the
// dedup report store) to CheckpointDir, and a restarting server re-opens
// whatever it finds there. A session checkpoint is a meta frame (id, engine
// names, trace header, ingest counters) followed by one engine.Snapshot
// frame per engine — all snap frames, so every byte is CRC-guarded and a
// torn write from a crash mid-checkpoint is detected and skipped, never
// silently half-restored.
//
// The same frames serve live migration: GET /sessions/{id}/snapshot hands
// the serialized session to the client, POST /sessions/restore accepts it
// into another process.

const (
	ckptSuffix       = ".ckpt"
	storeCkptName    = "reports" + ckptSuffix
	maxCkptID        = 128
	maxCkptEngines   = 16
	maxCkptHeaderLen = 64 << 20
)

// snapshotTo serializes the session: meta frame then engine frames. Caller
// must hold the session's scheduler key; s.mu is taken here.
func (s *session) snapshotTo(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errSessionClosed
	}
	if s.failed != nil {
		return fmt.Errorf("session %s failed ingest: %w", s.id, s.failed)
	}
	var hdr bytes.Buffer
	if err := traceio.WriteHeader(&hdr, s.header.Syms, s.header.Events); err != nil {
		return err
	}
	sw := snap.NewWriter(w)
	sw.String(s.id)
	sw.Uvarint(uint64(len(s.names)))
	for _, n := range s.names {
		sw.String(n)
	}
	sw.Bytes(hdr.Bytes())
	sw.Uvarint(s.events)
	sw.Uvarint(uint64(s.chunks))
	sw.Varint(s.created.UnixNano())
	if err := sw.Close(); err != nil {
		return err
	}
	for i, es := range s.engines {
		ss, ok := es.(engine.SnapshotSession)
		if !ok {
			return fmt.Errorf("engine %s does not support snapshots", s.names[i])
		}
		if err := ss.Snapshot(w); err != nil {
			return err
		}
	}
	return nil
}

// restoreSession reconstructs a session from a checkpoint stream. The
// restored session resumes exactly at the serialized event count; a client
// recovering from a crash re-sends its trace from that offset (GET
// /sessions/{id} reports it).
func restoreSession(r io.Reader, now time.Time) (*session, error) {
	rd, err := snap.NewReader(r)
	if err != nil {
		return nil, err
	}
	id, err := rd.String(maxCkptID)
	if err != nil {
		return nil, err
	}
	if id == "" || strings.ContainsAny(id, "/\\.") {
		return nil, &snap.DecodeError{Reason: "bad session id"}
	}
	nEngines, err := rd.Count(maxCkptEngines)
	if err != nil {
		return nil, err
	}
	if nEngines == 0 {
		return nil, &snap.DecodeError{Reason: "session has no engines"}
	}
	names := make([]string, nEngines)
	for i := range names {
		if names[i], err = rd.String(maxCkptID); err != nil {
			return nil, err
		}
	}
	hdrBytes, err := rd.Bytes(maxCkptHeaderLen)
	if err != nil {
		return nil, err
	}
	header, err := traceio.ReadHeader(bytes.NewReader(hdrBytes))
	if err != nil {
		return nil, fmt.Errorf("checkpoint header: %w", err)
	}
	events, err := rd.Uvarint()
	if err != nil {
		return nil, err
	}
	chunks, err := rd.Count(1 << 40)
	if err != nil {
		return nil, err
	}
	createdNS, err := rd.Varint()
	if err != nil {
		return nil, err
	}
	if err := rd.Close(); err != nil {
		return nil, err
	}
	engines := make([]engine.Session, nEngines)
	for i := range engines {
		es, name, err := engine.RestoreSession(r)
		if err != nil {
			return nil, fmt.Errorf("engine %s: %w", names[i], err)
		}
		if name != names[i] {
			return nil, &snap.DecodeError{Reason: fmt.Sprintf(
				"engine frame %d is %q, meta says %q", i, name, names[i])}
		}
		engines[i] = es
	}
	sess := newSession(id, header, names, engines, now)
	sess.events = events
	sess.chunks = chunks
	sess.created = time.Unix(0, createdNS)
	return sess, nil
}

// --- server-side checkpoint plumbing ---

func (s *Server) ckptPath(id string) string {
	return filepath.Join(s.cfg.CheckpointDir, id+ckptSuffix)
}

// writeFileAtomic writes via a temp file and rename, so a crash mid-write
// leaves either the old checkpoint or none — never a torn file under the
// final name.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// checkpointStore persists the dedup report store. Called whenever entries
// may have been folded in (finish, evict, shutdown) and on the periodic
// checkpoint tick.
func (s *Server) checkpointStore() {
	if s.cfg.CheckpointDir == "" {
		return
	}
	err := writeFileAtomic(filepath.Join(s.cfg.CheckpointDir, storeCkptName), s.store.Snapshot)
	if err != nil {
		s.cfg.Logger.Error("report store checkpoint failed", "err", err)
	}
}

// checkpointSession persists one session. Must run under the session's
// scheduler key so it serializes with chunk ingestion.
func (s *Server) checkpointSession(sess *session) error {
	t0 := time.Now()
	err := writeFileAtomic(s.ckptPath(sess.id), sess.snapshotTo)
	s.obs.checkpoint.ObserveSince(t0)
	sp := obs.Span{Trace: sess.trace(""), Session: sess.id, Name: "checkpoint",
		Start: t0, Duration: time.Since(t0).Seconds()}
	if err != nil {
		sp.Err = err.Error()
	}
	s.obs.span(sp)
	return err
}

// dropSessionCheckpoint removes a finished/evicted/aborted session's file.
// The store checkpoint is written first by callers, so a crash between the
// two at worst re-counts the session's races as one extra trace — it never
// loses them.
func (s *Server) dropSessionCheckpoint(id string) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	if err := os.Remove(s.ckptPath(id)); err != nil && !os.IsNotExist(err) {
		s.cfg.Logger.Warn("removing session checkpoint failed", "session", id, "err", err)
	}
}

// checkpointAll snapshots the report store and every healthy open session.
// Each session snapshot is scheduled under the session's key; saturated
// submissions are skipped (the next tick retries).
func (s *Server) checkpointAll(wait bool) (done int) {
	if s.cfg.CheckpointDir == "" {
		return 0
	}
	s.checkpointStore()
	s.mu.Lock()
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()
	var wg sync.WaitGroup
	var ok atomic.Int64
	for _, sess := range open {
		sess := sess
		wg.Add(1)
		err := s.sched.Submit(sess.id, func() {
			defer wg.Done()
			if err := s.checkpointSession(sess); err != nil {
				s.cfg.Logger.Error("session checkpoint failed", "session", sess.id, "err", err)
				return
			}
			ok.Add(1)
		})
		if err != nil {
			wg.Done()
			s.cfg.Logger.Warn("session checkpoint not scheduled", "session", sess.id, "err", err)
		}
	}
	if wait {
		wg.Wait()
	}
	return int(ok.Load())
}

// checkpointLoop periodically checkpoints everything until stopped.
func (s *Server) checkpointLoop() {
	defer close(s.ckptDone)
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-s.ckptStop:
			return
		case <-t.C:
			s.checkpointAll(false)
		}
	}
}

// restoreCheckpoints loads the report store and every session checkpoint in
// CheckpointDir. Corrupt or over-limit checkpoints are skipped with a log
// line — a torn file from a crash must not stop the server from coming up.
func (s *Server) restoreCheckpoints() {
	dir := s.cfg.CheckpointDir
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.cfg.Logger.Error("checkpoint dir unusable", "dir", dir, "err", err)
		return
	}
	if f, err := os.Open(filepath.Join(dir, storeCkptName)); err == nil {
		store, rerr := report.RestoreStore(f)
		f.Close()
		if rerr != nil {
			s.cfg.Logger.Warn("report store checkpoint unreadable, starting empty", "err", rerr)
		} else {
			s.store = store
			s.cfg.Logger.Info("restored report store",
				"classes", store.Len(), "observations", store.Observations())
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		s.cfg.Logger.Error("reading checkpoint dir failed", "dir", dir, "err", err)
		return
	}
	now := time.Now()
	for _, de := range entries {
		name := de.Name()
		if name == storeCkptName || !strings.HasSuffix(name, ckptSuffix) || de.IsDir() {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			s.cfg.Logger.Warn("opening checkpoint failed", "checkpoint", name, "err", err)
			continue
		}
		sess, rerr := restoreSession(f, now)
		f.Close()
		if rerr != nil {
			s.cfg.Logger.Warn("checkpoint unreadable, skipping", "checkpoint", name, "err", rerr)
			continue
		}
		if sess.id+ckptSuffix != name {
			s.cfg.Logger.Warn("checkpoint names a different session, skipping",
				"checkpoint", name, "session", sess.id)
			continue
		}
		d := sess.header.Dims()
		if d.Threads > s.cfg.MaxThreads || max(d.Locks, d.Vars, d.Locs) > s.cfg.MaxSymbols {
			s.cfg.Logger.Warn("checkpoint exceeds configured limits, skipping", "checkpoint", name)
			continue
		}
		s.instrument(sess)
		s.applyCompactPolicy(sess)
		s.mu.Lock()
		full := len(s.sessions) >= s.cfg.MaxSessions
		if !full {
			s.sessions[sess.id] = sess
		}
		s.mu.Unlock()
		if full {
			s.cfg.Logger.Warn("session limit reached, checkpoint not restored", "checkpoint", name)
			continue
		}
		s.noteSessionState(sess)
		s.cfg.Logger.Info("restored session from checkpoint",
			"session", sess.id, "events", sess.events, "engines", sess.names)
	}
}

// applyCompactPolicy installs the configured compaction policy on every
// engine of the session that supports it.
func (s *Server) applyCompactPolicy(sess *session) {
	p := engine.CompactPolicy{
		EveryEvents: s.cfg.CompactEveryEvents,
		BudgetBytes: s.cfg.CompactBudgetBytes,
	}
	if p == (engine.CompactPolicy{}) {
		return
	}
	for _, es := range sess.engines {
		if cs, ok := es.(engine.CompactableSession); ok {
			cs.SetCompactPolicy(p)
		}
	}
}

// --- HTTP handlers ---

// handleCheckpoint (POST /checkpoint) forces a full checkpoint and blocks
// until every session snapshot completed.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	if s.cfg.CheckpointDir == "" {
		writeError(w, http.StatusConflict, "server has no checkpoint directory configured")
		return
	}
	n := s.checkpointAll(true)
	writeJSON(w, http.StatusOK, map[string]any{"sessions": n})
}

// handleSessionSnapshot (GET /sessions/{id}/snapshot) streams the session's
// serialized state: the migration handoff. The snapshot runs under the
// session's scheduler key, so it captures a chunk boundary.
func (s *Server) handleSessionSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.liveSession(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	var buf bytes.Buffer
	var snapErr error
	if err := s.sched.Do(r.Context(), id, func() {
		snapErr = sess.snapshotTo(&buf)
	}); err != nil {
		s.shedOrFail(w, err)
		return
	}
	if snapErr != nil {
		writeError(w, http.StatusConflict, "%v", snapErr)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(buf.Bytes())
}

// handleSessionRestore (POST /sessions/restore) accepts a serialized
// session (from a checkpoint file or GET .../snapshot on another process)
// and opens it here under its original id.
func (s *Server) handleSessionRestore(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	if s.refuseFenced(w, r) {
		return
	}
	tStart := time.Now()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	sess, err := restoreSession(body, time.Now())
	if err != nil {
		writeError(w, http.StatusBadRequest, "restore: %v", err)
		return
	}
	d := sess.header.Dims()
	if d.Threads > s.cfg.MaxThreads || max(d.Locks, d.Vars, d.Locs) > s.cfg.MaxSymbols {
		writeError(w, http.StatusBadRequest, "snapshot exceeds configured limits")
		return
	}
	// A failover restore re-attaches the session's original request trace:
	// the coordinator forwards the id it recorded at create time, so one
	// trace id spans the session's life across worker deaths.
	sess.traceID = traceIDFrom(r)
	s.instrument(sess)
	s.applyCompactPolicy(sess)
	s.mu.Lock()
	_, exists := s.sessions[sess.id]
	full := len(s.sessions) >= s.cfg.MaxSessions
	if !exists && !full {
		s.sessions[sess.id] = sess
	}
	s.mu.Unlock()
	if exists {
		writeError(w, http.StatusConflict, "session %s already open", sess.id)
		return
	}
	if full {
		s.shed429(w, 5, "session limit (%d) reached", s.cfg.MaxSessions)
		return
	}
	s.sessionsCreated.Add(1)
	s.noteSessionState(sess)
	s.obs.span(obs.Span{
		Trace: sess.traceID, Session: sess.id, Name: "restore",
		Start: tStart, Duration: time.Since(tStart).Seconds(), Events: sess.events,
	})
	s.cfg.Logger.Info("session restored via API",
		"session", sess.id, "trace", sess.traceID, "events", sess.events)
	st := sess.status()
	writeJSON(w, http.StatusOK, map[string]any{"id": sess.id, "events": st.Events, "chunks": st.Chunks})
}
