package server

// Fleet-facing introspection: the hooks a fleet.Agent uses to report this
// worker's load, enumerate its open sessions for coordinator adoption, and
// drop sessions the coordinator failed over elsewhere.

import (
	"repro/internal/engine"
)

// Stats is a point-in-time load snapshot of the server.
type Stats struct {
	// Sessions is the number of open (in-memory) sessions; parked sessions
	// count too — they are paused, not gone.
	Sessions int
	// StateBytes is the summed detector-state estimate across open sessions.
	StateBytes int64
	// QueueDepth is the scheduler's current backlog.
	QueueDepth int
	// Draining reports whether Close has begun.
	Draining bool
	// ArenaLeakedRefs is the cumulative count of pooled clock allocations
	// sealed sessions failed to return; nonzero means a detector leak.
	ArenaLeakedRefs int64
}

// Stats returns the server's current load snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	open := len(s.sessions)
	s.mu.Unlock()
	s.parkedMu.Lock()
	open += len(s.parked)
	s.parkedMu.Unlock()
	return Stats{
		Sessions:        open,
		StateBytes:      s.stateTotal.Load(),
		QueueDepth:      s.sched.QueueDepth(),
		Draining:        s.draining.Load(),
		ArenaLeakedRefs: s.arenaLeakedRefs.Load(),
	}
}

// SessionIDs lists every open session id, parked ones included — the list a
// worker sends on fleet registration so the coordinator can adopt
// placements after a restart.
func (s *Server) SessionIDs() []string {
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	s.parkedMu.Lock()
	for id := range s.parked {
		ids = append(ids, id)
	}
	s.parkedMu.Unlock()
	return ids
}

// AbortSession discards one session without reporting, the same as
// DELETE /sessions/{id}: the fleet agent calls it to drop a stale copy the
// coordinator failed over elsewhere while this worker was partitioned —
// finalizing it here would double-count its races in the merged view.
// Returns false when the session isn't open.
func (s *Server) AbortSession(id string) bool {
	sess := s.removeSession(id)
	if sess == nil {
		return s.dropParked(id)
	}
	sess.abort()
	s.noteSessionState(sess)
	s.noteArenaAfterSeal(sess)
	s.dropSessionCheckpoint(id)
	return true
}

// noteArenaAfterSeal audits a just-sealed session's engine arenas and
// accumulates any allocation that was not returned to the freelist. In a
// single process the chaos tests reach into the session struct for this;
// across the fleet's process boundary the counter (surfaced in Stats and
// /metrics) is the observable.
func (s *Server) noteArenaAfterSeal(sess *session) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	for _, es := range sess.engines {
		if allocs, free, ok := engine.ArenaStats(es); ok && allocs != free {
			s.arenaLeakedRefs.Add(int64(allocs - free))
		}
	}
}
