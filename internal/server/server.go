// Package server is raced's HTTP layer: an always-on race-analysis service
// over the repository's engines. Clients open a session by POSTing a binary
// trace header (the symbol universe sizes the detectors up front), then
// stream the event body in arbitrarily-sized chunks; each chunk is decoded
// block by block straight into per-session resumable detector sessions, so
// analysis is incremental and memory stays O(detector state) per session no
// matter how long the trace runs. Finishing a session folds its race
// reports into a global deduplicating fingerprint store queryable over
// /reports.
//
// Admission goes through a bounded scheduler (internal/server/sched): one
// session's chunks are analyzed serially in arrival order, concurrent
// sessions share a fixed worker pool, and a full queue sheds load with
// 429/Retry-After instead of queueing without bound.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/server/sched"
	"repro/internal/traceio"
)

// Config parameterizes a Server. The zero value picks usable defaults.
type Config struct {
	// DefaultEngines are the engines a session runs when the request names
	// none. Defaults to ["wcp"].
	DefaultEngines []string
	// Engine carries the windowed-engine knobs for POST /analyze.
	Engine engine.Config
	// Workers and QueueCap size the admission scheduler (see sched.Config).
	Workers  int
	QueueCap int
	// MaxBodyBytes caps a single request body. Defaults to 32 MiB.
	MaxBodyBytes int64
	// MaxSessions caps concurrently-open sessions. Defaults to 1024.
	MaxSessions int
	// MaxThreads caps the thread count a session header may declare.
	// Detector state is O(threads²) clock words per engine, so this is the
	// real memory guard — a crafted header must not be able to demand
	// terabytes. Defaults to 4096.
	MaxThreads int
	// MaxSymbols caps each remaining symbol table (locks, vars, locations)
	// a header may declare. Defaults to 1<<20.
	MaxSymbols int
	// IdleTimeout evicts sessions with no chunk activity for this long
	// (their partial results still reach the report store). Defaults to
	// 5 minutes; <0 disables eviction.
	IdleTimeout time.Duration
	// JanitorPeriod is how often idle sessions are collected. Defaults to
	// IdleTimeout/4.
	JanitorPeriod time.Duration
	// CheckpointDir, when non-empty, enables session durability: open
	// sessions and the report store are checkpointed there, restored on
	// startup, and a graceful Close checkpoints instead of finalizing.
	CheckpointDir string
	// CheckpointEvery is the periodic checkpoint interval. Defaults to
	// 30 seconds when CheckpointDir is set; <0 disables the periodic loop
	// (checkpoints then happen only via POST /checkpoint and Close).
	CheckpointEvery time.Duration
	// CompactEveryEvents and CompactBudgetBytes form the compaction policy
	// installed on every session engine (see engine.CompactPolicy). Both
	// zero disables compaction.
	CompactEveryEvents int
	CompactBudgetBytes int
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if len(c.DefaultEngines) == 0 {
		c.DefaultEngines = []string{"wcp"}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 4096
	}
	if c.MaxSymbols <= 0 {
		c.MaxSymbols = 1 << 20
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 30 * time.Second
	}
	if c.JanitorPeriod <= 0 {
		c.JanitorPeriod = c.IdleTimeout / 4
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Server is the raced service state: sessions, scheduler, report store.
// Create with New, serve via Handler, stop with Close.
type Server struct {
	cfg   Config
	sched *sched.Scheduler
	store *report.Store
	mux   *http.ServeMux
	start time.Time

	mu       sync.Mutex
	sessions map[string]*session

	draining    atomic.Bool
	janitorStop chan struct{}
	janitorDone chan struct{}
	ckptStop    chan struct{}
	ckptDone    chan struct{}

	// counters (atomics; gauges are read live)
	eventsIngested   atomic.Uint64
	chunksIngested   atomic.Uint64
	sessionsCreated  atomic.Uint64
	sessionsFinished atomic.Uint64
	sessionsEvicted  atomic.Uint64
	analyses         atomic.Uint64
	shed             atomic.Uint64
}

// New builds a Server and starts its scheduler and idle-session janitor.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:         cfg,
		sched:       sched.New(sched.Config{Workers: cfg.Workers, QueueCap: cfg.QueueCap}),
		store:       report.NewStore(),
		sessions:    make(map[string]*session),
		start:       time.Now(),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
		ckptStop:    make(chan struct{}),
		ckptDone:    make(chan struct{}),
	}
	// Crash recovery: re-open whatever the previous process checkpointed
	// before accepting any traffic.
	s.restoreCheckpoints()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /sessions", s.handleCreateSession)
	s.mux.HandleFunc("GET /sessions", s.handleListSessions)
	s.mux.HandleFunc("GET /sessions/{id}", s.handleSessionStatus)
	s.mux.HandleFunc("POST /sessions/{id}/chunks", s.handleChunk)
	s.mux.HandleFunc("POST /sessions/{id}/finish", s.handleFinish)
	s.mux.HandleFunc("DELETE /sessions/{id}", s.handleAbort)
	s.mux.HandleFunc("POST /analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /sessions/{id}/snapshot", s.handleSessionSnapshot)
	s.mux.HandleFunc("POST /sessions/restore", s.handleSessionRestore)
	s.mux.HandleFunc("GET /reports", s.handleReports)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.IdleTimeout > 0 {
		go s.janitor()
	} else {
		close(s.janitorDone)
	}
	if cfg.CheckpointDir != "" && cfg.CheckpointEvery > 0 {
		go s.checkpointLoop()
	} else {
		close(s.ckptDone)
	}
	return s
}

// Handler returns the HTTP handler serving the raced API.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the deduplicating report store (for embedding servers).
func (s *Server) Store() *report.Store { return s.store }

// Close drains the server: new requests are refused (503), the scheduler
// finishes every accepted chunk, and still-open sessions are finalized so
// their races reach the report store. With a CheckpointDir configured,
// open sessions are checkpointed instead of finalized — a graceful restart
// and crash recovery share the restore path. Safe to call once.
func (s *Server) Close(ctx context.Context) error {
	s.draining.Store(true)
	close(s.janitorStop)
	<-s.janitorDone
	close(s.ckptStop)
	<-s.ckptDone
	err := s.sched.Drain(ctx)

	s.mu.Lock()
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.sessions = make(map[string]*session)
	s.mu.Unlock()
	if s.cfg.CheckpointDir != "" {
		kept := 0
		for _, sess := range open {
			// The scheduler is drained, so writing directly is serialized.
			if cerr := s.checkpointSession(sess); cerr != nil {
				s.cfg.Logf("raced: shutdown checkpoint of session %s failed, finalizing: %v", sess.id, cerr)
				sess.finalize(s.store, time.Now())
				s.dropSessionCheckpoint(sess.id)
				continue
			}
			kept++
		}
		s.checkpointStore()
		if len(open) > 0 {
			s.cfg.Logf("raced: checkpointed %d open session(s) at shutdown", kept)
		}
		return err
	}
	for _, sess := range open {
		sess.finalize(s.store, time.Now())
	}
	if len(open) > 0 {
		s.cfg.Logf("raced: finalized %d open session(s) at shutdown", len(open))
	}
	return err
}

// janitor evicts idle sessions on a timer. Eviction goes through the
// scheduler under the session's key, so it serializes behind any chunk
// still queued for that session.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	t := time.NewTicker(s.cfg.JanitorPeriod)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-s.cfg.IdleTimeout)
		s.mu.Lock()
		var stale []*session
		for _, sess := range s.sessions {
			if sess.idleSince().Before(cutoff) {
				stale = append(stale, sess)
			}
		}
		s.mu.Unlock()
		for _, sess := range stale {
			sess := sess
			err := s.sched.Submit(sess.id, func() {
				// Chunks queued behind this task may have touched the
				// session since the tick collected it: re-check idleness at
				// execution time before evicting.
				if sess.idleSince().After(time.Now().Add(-s.cfg.IdleTimeout)) {
					return
				}
				s.removeSession(sess.id)
				sess.finalize(s.store, time.Now())
				s.checkpointStore()
				s.dropSessionCheckpoint(sess.id)
				s.sessionsEvicted.Add(1)
				s.cfg.Logf("raced: evicted idle session %s (%d events)", sess.id, sess.status().Events)
			})
			if err != nil {
				// Saturated or draining: retry at the next tick.
				continue
			}
		}
	}
}

func (s *Server) removeSession(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	delete(s.sessions, id)
	return sess
}

func (s *Server) getSession(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// --- helpers ---

type apiError struct {
	Error  string `json:"error"`
	Offset int64  `json:"offset,omitempty"`
	Event  int64  `json:"event,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeDecodeError maps a chunk/trace decode failure to 400 with the
// offset/event context the traceio layer captured.
func writeDecodeError(w http.ResponseWriter, err error) {
	var de *traceio.DecodeError
	if errors.As(err, &de) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: de.Error(), Offset: de.Offset, Event: de.Event})
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

// shedOrFail maps scheduler admission errors: saturation is 429 with a
// Retry-After hint, draining is 503.
func (s *Server) shedOrFail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, sched.ErrSaturated):
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "analysis queue saturated, retry later")
	case errors.Is(err, sched.ErrDraining), s.draining.Load():
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) refuseDraining(w http.ResponseWriter) bool {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return true
	}
	return false
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// engineNames parses the ?engines=a,b,c parameter, defaulting to the
// configured list.
func (s *Server) engineNames(r *http.Request) []string {
	raw := r.URL.Query().Get("engines")
	if raw == "" {
		return s.cfg.DefaultEngines
	}
	parts := strings.Split(raw, ",")
	names := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			names = append(names, p)
		}
	}
	return names
}

// engineResult is the JSON shape of one engine's outcome.
type engineResult struct {
	Engine        string  `json:"engine"`
	Events        int     `json:"events"`
	RacyEvents    int     `json:"racy_events"`
	FirstRace     int     `json:"first_race"`
	Distinct      int     `json:"distinct"`
	QueueMaxTotal int     `json:"queue_max_total,omitempty"`
	Summary       string  `json:"summary"`
	Report        string  `json:"report,omitempty"`
	DurationMS    float64 `json:"duration_ms"`
	Error         string  `json:"error,omitempty"`
}

func renderResult(res *engine.Result, events int, h traceio.Header) engineResult {
	er := engineResult{
		Engine:        res.Engine,
		Events:        events,
		RacyEvents:    res.RacyEvents,
		FirstRace:     res.FirstRace,
		Distinct:      res.Distinct(),
		QueueMaxTotal: res.QueueMaxTotal,
		Summary:       res.Summary,
		DurationMS:    float64(res.Duration.Microseconds()) / 1e3,
	}
	if res.Report != nil {
		er.Report = res.Report.Format(h.Syms)
	}
	if res.Err != nil {
		er.Error = res.Err.Error()
	}
	return er
}

// --- session lifecycle handlers ---

type sessionCreated struct {
	ID      string   `json:"id"`
	Engines []string `json:"engines"`
	Dims    struct {
		Threads int `json:"threads"`
		Locks   int `json:"locks"`
		Vars    int `json:"vars"`
		Locs    int `json:"locs"`
	} `json:"dims"`
}

// handleCreateSession opens a session: the body is a binary trace header
// (traceio.WriteHeader) declaring the symbol universe, which sizes every
// requested engine's detector up front.
func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	names := s.engineNames(r)
	makers := make([]engine.SessionEngine, len(names))
	for i, name := range names {
		e, err := engine.New(name, s.cfg.Engine)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		se, ok := e.(engine.SessionEngine)
		if !ok {
			writeError(w, http.StatusBadRequest,
				"engine %q cannot run as a streaming session (streaming engines: wcp, wcp-epoch, hb, hb-epoch)", name)
			return
		}
		makers[i] = se
	}

	h, err := traceio.ReadHeader(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	d := h.Dims()
	if d.Threads == 0 {
		writeError(w, http.StatusBadRequest, "header declares no threads")
		return
	}
	if d.Threads > s.cfg.MaxThreads {
		writeError(w, http.StatusBadRequest,
			"header declares %d threads, limit is %d (detector state is O(threads²))", d.Threads, s.cfg.MaxThreads)
		return
	}
	if max(d.Locks, d.Vars, d.Locs) > s.cfg.MaxSymbols {
		writeError(w, http.StatusBadRequest,
			"header declares %d locks / %d vars / %d locations, per-table limit is %d",
			d.Locks, d.Vars, d.Locs, s.cfg.MaxSymbols)
		return
	}

	atCapacity := func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.sessions) >= s.cfg.MaxSessions
	}
	if atCapacity() {
		s.shed.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, "session limit (%d) reached", s.cfg.MaxSessions)
		return
	}
	// Detector allocation (the expensive part) happens outside the sessions
	// mutex; the limit is re-checked at insertion, so it stays strict.
	id := newID()
	engines := make([]engine.Session, len(makers))
	for i, se := range makers {
		engines[i] = se.NewSession(d.Threads, d.Locks, d.Vars)
	}
	sess := newSession(id, h, names, engines, time.Now())
	s.applyCompactPolicy(sess)
	s.mu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.shed.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, "session limit (%d) reached", s.cfg.MaxSessions)
		return
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.sessionsCreated.Add(1)
	s.cfg.Logf("raced: session %s opened (engines=%v threads=%d locks=%d vars=%d)",
		id, names, d.Threads, d.Locks, d.Vars)

	resp := sessionCreated{ID: id, Engines: names}
	resp.Dims.Threads, resp.Dims.Locks, resp.Dims.Vars, resp.Dims.Locs = d.Threads, d.Locks, d.Vars, d.Locs
	writeJSON(w, http.StatusCreated, resp)
}

// handleChunk ingests one chunk of the session's event body. The request
// holds a scheduler slot while the chunk is decoded and analyzed, so a
// saturated service pushes back here with 429.
func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	id := r.PathValue("id")
	sess := s.getSession(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var added uint64
	var ingestErr error
	err := s.sched.Do(r.Context(), id, func() {
		added, ingestErr = sess.ingest(body, time.Now())
	})
	if err != nil {
		s.shedOrFail(w, err)
		return
	}
	s.eventsIngested.Add(added)
	if ingestErr != nil {
		if errors.Is(ingestErr, errSessionClosed) {
			writeError(w, http.StatusConflict, "session %s is closed", id)
			return
		}
		writeDecodeError(w, ingestErr)
		return
	}
	s.chunksIngested.Add(1)
	st := sess.status()
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "events": st.Events, "chunks": st.Chunks})
}

type sessionFinished struct {
	ID      string         `json:"id"`
	Events  uint64         `json:"events"`
	Results []engineResult `json:"results"`
}

// handleFinish seals a session: every engine's detector is finalized, the
// race reports are folded into the dedup store, and the per-engine results
// are returned. The finish task runs under the session's scheduler key, so
// it executes after every already-accepted chunk.
func (s *Server) handleFinish(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	id := r.PathValue("id")
	sess := s.getSession(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	var results []*engine.Result
	err := s.sched.Do(r.Context(), id, func() {
		s.removeSession(id)
		results = sess.finalize(s.store, time.Now())
		// Store checkpoint before the session checkpoint disappears: a crash
		// between the two re-counts this session's races, never loses them.
		s.checkpointStore()
		s.dropSessionCheckpoint(id)
	})
	if err != nil {
		s.shedOrFail(w, err)
		return
	}
	if results == nil {
		writeError(w, http.StatusConflict, "session %s is already closed", id)
		return
	}
	s.sessionsFinished.Add(1)
	st := sess.status()
	resp := sessionFinished{ID: id, Events: st.Events, Results: make([]engineResult, len(results))}
	for i, res := range results {
		resp.Results[i] = renderResult(res, int(st.Events), sess.header)
	}
	s.cfg.Logf("raced: session %s finished (%d events, %d engines)", id, st.Events, len(results))
	writeJSON(w, http.StatusOK, resp)
}

// handleAbort discards a session without reporting.
func (s *Server) handleAbort(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.removeSession(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	sess.abort()
	s.dropSessionCheckpoint(id)
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "aborted": true})
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.getSession(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, sess.status())
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		list = append(list, sess)
	}
	s.mu.Unlock()
	out := make([]sessionStatus, len(list))
	for i, sess := range list {
		out[i] = sess.status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Created.Before(out[j].Created) })
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

// --- one-shot analysis ---

// handleAnalyze runs engines over a complete trace body (text or binary,
// auto-detected) in one request. The trace is materialized — unlike
// sessions this path supports the windowed/lockset engines too — and the
// reports are folded into the dedup store like a one-chunk session.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	names := s.engineNames(r)
	engines := make([]engine.Engine, len(names))
	for i, name := range names {
		e, err := engine.New(name, s.cfg.Engine)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		engines[i] = e
	}
	tr, err := traceio.ReadAuto(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	id := "analyze-" + newID()
	var results []*engine.Result
	if err := s.sched.Do(r.Context(), id, func() {
		results = make([]*engine.Result, len(engines))
		now := time.Now()
		for i, e := range engines {
			results[i] = e.Analyze(tr)
			s.store.AddReport(results[i].Engine, id, results[i].Report, tr.Symbols, now)
		}
	}); err != nil {
		s.shedOrFail(w, err)
		return
	}
	s.analyses.Add(1)
	s.eventsIngested.Add(uint64(len(tr.Events)))
	resp := sessionFinished{ID: id, Events: uint64(len(tr.Events)), Results: make([]engineResult, len(results))}
	h := traceio.Header{Syms: tr.Symbols}
	for i, res := range results {
		resp.Results[i] = renderResult(res, len(tr.Events), h)
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- reports, health, metrics ---

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := report.Filter{
		Engine: q.Get("engine"),
		Loc:    q.Get("loc"),
		Var:    q.Get("var"),
	}
	if v := q.Get("min_count"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad min_count %q", v)
			return
		}
		f.MinCount = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		f.Limit = n
	}
	entries := s.store.List(f)
	if entries == nil {
		entries = []report.Entry{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":   s.store.Len(),
		"matched": len(entries),
		"reports": entries,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.mu.Lock()
	active := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, code, map[string]any{
		"status":         status,
		"sessions":       active,
		"queue_depth":    s.sched.QueueDepth(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	active := len(s.sessions)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "raced_events_ingested_total %d\n", s.eventsIngested.Load())
	fmt.Fprintf(w, "raced_chunks_total %d\n", s.chunksIngested.Load())
	fmt.Fprintf(w, "raced_analyses_total %d\n", s.analyses.Load())
	fmt.Fprintf(w, "raced_sessions_active %d\n", active)
	fmt.Fprintf(w, "raced_sessions_created_total %d\n", s.sessionsCreated.Load())
	fmt.Fprintf(w, "raced_sessions_finished_total %d\n", s.sessionsFinished.Load())
	fmt.Fprintf(w, "raced_sessions_evicted_total %d\n", s.sessionsEvicted.Load())
	fmt.Fprintf(w, "raced_queue_depth %d\n", s.sched.QueueDepth())
	fmt.Fprintf(w, "raced_tasks_running %d\n", s.sched.Running())
	fmt.Fprintf(w, "raced_shed_total %d\n", s.shed.Load())
	fmt.Fprintf(w, "raced_report_classes %d\n", s.store.Len())
	fmt.Fprintf(w, "raced_report_observations_total %d\n", s.store.Observations())
}
