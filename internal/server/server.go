// Package server is raced's HTTP layer: an always-on race-analysis service
// over the repository's engines. Clients open a session by POSTing a binary
// trace header (the symbol universe sizes the detectors up front), then
// stream the event body in arbitrarily-sized chunks; each chunk is decoded
// block by block straight into per-session resumable detector sessions, so
// analysis is incremental and memory stays O(detector state) per session no
// matter how long the trace runs. Finishing a session folds its race
// reports into a global deduplicating fingerprint store queryable over
// /reports.
//
// Admission goes through a bounded scheduler (internal/server/sched): one
// session's chunks are analyzed serially in arrival order, concurrent
// sessions share a fixed worker pool, and a full queue sheds load with
// 429/Retry-After instead of queueing without bound.
package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/server/sched"
	"repro/internal/traceio"
)

// Resilient-chunk protocol headers. A client that declares its chunk's
// absolute event offset gets idempotent, exactly-once analysis (replays of
// acknowledged events are skipped); a client that declares a CRC32 gets
// end-to-end integrity — a request corrupted in transit is rejected with
// 422 before it can touch detector state, and the client simply resends
// it. Clients using neither header get the legacy
// append-exactly-once-or-bust behavior.
const (
	// HeaderChunkOffset carries the absolute index of the chunk's first
	// event within the session's trace.
	HeaderChunkOffset = "X-Raced-Offset"
	// HeaderChunkCRC carries a decimal CRC32 (IEEE). It covers
	// "<offset>:<body>" when HeaderChunkOffset is present and the bare body
	// otherwise — binding the offset into the checksum means a corrupted
	// offset header can never misalign the replay-skip logic: the server
	// recomputes with the offset it parsed, and any disagreement is a 422.
	HeaderChunkCRC = "X-Raced-Crc32"
	// HeaderSessionID, on POST /sessions, names the session to create
	// instead of letting the server mint an id. A fleet coordinator uses it
	// so consistent-hash placement can be decided from the id before any
	// worker is contacted, and so a failed-over session can be re-created
	// elsewhere under its original identity.
	HeaderSessionID = "X-Raced-Session-Id"
	// HeaderEpoch carries the coordinator's fencing epoch on proxied
	// mutating requests. The server keeps the maximum epoch it has ever
	// seen (heartbeat acks raise it too, via NoteCoordinatorEpoch) and
	// answers anything lower with 412: a superseded coordinator — a
	// "zombie" primary whose standby already took over — can never place,
	// feed, or finish a session here. Requests without the header (direct
	// single-node clients) are never fenced.
	HeaderEpoch = "X-Raced-Epoch"
)

// validSessionID accepts the ids the server itself mints plus anything a
// coordinator might reasonably assign: short, URL- and filename-safe.
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// checkCRC verifies the declared checksum, when present, against the
// request's effective offset and body. A non-nil error is the 422 message.
func checkCRC(r *http.Request, body []byte, offset uint64, hasOffset bool) error {
	v := r.Header.Get(HeaderChunkCRC)
	if v == "" {
		return nil
	}
	want, err := strconv.ParseUint(v, 10, 32)
	if err != nil {
		return fmt.Errorf("bad %s header %q", HeaderChunkCRC, v)
	}
	h := crc32.NewIEEE()
	if hasOffset {
		io.WriteString(h, strconv.FormatUint(offset, 10))
		io.WriteString(h, ":")
	}
	h.Write(body)
	if got := h.Sum32(); got != uint32(want) {
		return fmt.Errorf("integrity check failed: computed crc32 %d, header declares %d — resend the request", got, want)
	}
	return nil
}

// Config parameterizes a Server. The zero value picks usable defaults.
type Config struct {
	// DefaultEngines are the engines a session runs when the request names
	// none. Defaults to ["wcp"].
	DefaultEngines []string
	// Engine carries the windowed-engine knobs for POST /analyze.
	Engine engine.Config
	// Workers and QueueCap size the admission scheduler (see sched.Config).
	Workers  int
	QueueCap int
	// MaxBodyBytes caps a single request body. Defaults to 32 MiB.
	MaxBodyBytes int64
	// MaxSessions caps concurrently-open sessions. Defaults to 1024.
	MaxSessions int
	// MaxThreads caps the thread count a session header may declare.
	// Detector state is O(threads²) clock words per engine, so this is the
	// real memory guard — a crafted header must not be able to demand
	// terabytes. Defaults to 4096.
	MaxThreads int
	// MaxSymbols caps each remaining symbol table (locks, vars, locations)
	// a header may declare. Defaults to 1<<20.
	MaxSymbols int
	// IdleTimeout evicts sessions with no chunk activity for this long
	// (their partial results still reach the report store). Defaults to
	// 5 minutes; <0 disables eviction.
	IdleTimeout time.Duration
	// JanitorPeriod is how often idle sessions are collected. Defaults to
	// IdleTimeout/4.
	JanitorPeriod time.Duration
	// CheckpointDir, when non-empty, enables session durability: open
	// sessions and the report store are checkpointed there, restored on
	// startup, and a graceful Close checkpoints instead of finalizing.
	CheckpointDir string
	// CheckpointEvery is the periodic checkpoint interval. Defaults to
	// 30 seconds when CheckpointDir is set; <0 disables the periodic loop
	// (checkpoints then happen only via POST /checkpoint and Close).
	CheckpointEvery time.Duration
	// CompactEveryEvents and CompactBudgetBytes form the compaction policy
	// installed on every session engine (see engine.CompactPolicy). Both
	// zero disables compaction.
	CompactEveryEvents int
	CompactBudgetBytes int
	// StateBudgetBytes caps the summed detector state across all open
	// sessions. When the total exceeds it the server degrades gracefully
	// instead of OOMing: first forced compaction (largest sessions first),
	// then the coldest sessions are checkpointed and evicted — parked, not
	// lost: a chunk, status, finish or snapshot request for a parked
	// session transparently restores it. 0 disables the budget.
	StateBudgetBytes int64
	// IngestTimeout bounds reading one request body (header or chunk), so
	// a stalled peer cannot hold a connection forever. Defaults to 1
	// minute; <0 disables the deadline.
	IngestTimeout time.Duration
	// ExtraMetrics, when non-nil, is appended to the /metrics output —
	// the daemon uses it to export fault-injection counters in -chaos
	// soak runs.
	ExtraMetrics func(io.Writer)
	// Logger receives structured operational logs; nil discards them.
	Logger *slog.Logger
	// Name identifies this instance (the fleet worker name) in trace spans.
	// Empty for a single-node daemon.
	Name string
	// ObsSampleEvery samples per-stage timing (block decode, per-engine
	// process) on every Nth decoded block, keeping the ingest hot loop free
	// of time syscalls and allocations between samples. Defaults to 32;
	// <0 disables stage timing entirely. Per-chunk instruments are always
	// on.
	ObsSampleEvery int
	// TraceSpanCap bounds the in-memory span ring serving /debug/trace and
	// /debug/sessions. Defaults to obs.DefaultSpanCap.
	TraceSpanCap int
}

func (c *Config) fill() {
	if len(c.DefaultEngines) == 0 {
		c.DefaultEngines = []string{"wcp"}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 4096
	}
	if c.MaxSymbols <= 0 {
		c.MaxSymbols = 1 << 20
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 30 * time.Second
	}
	if c.JanitorPeriod <= 0 {
		c.JanitorPeriod = c.IdleTimeout / 4
	}
	if c.IngestTimeout == 0 {
		c.IngestTimeout = time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.ObsSampleEvery == 0 {
		c.ObsSampleEvery = 32
	}
	if c.ObsSampleEvery < 0 {
		c.ObsSampleEvery = 0 // 0 means "never sample" internally
	}
}

// Server is the raced service state: sessions, scheduler, report store.
// Create with New, serve via Handler, stop with Close.
type Server struct {
	cfg   Config
	sched *sched.Scheduler
	store *report.Store
	mux   *http.ServeMux
	start time.Time
	obs   *serverObs

	mu       sync.Mutex
	sessions map[string]*session

	// finished caches the response of a sealed session so a client that
	// lost the finish reply can replay the request idempotently.
	finMu    sync.Mutex
	finished map[string]sessionFinished
	finOrder []string

	// parked holds pressure-evicted sessions in serialized form when no
	// CheckpointDir is configured (with one, the checkpoint file is the
	// parking spot). stateTotal is the live sum of cached per-session
	// detector StateBytes, the quantity StateBudgetBytes bounds.
	parkedMu   sync.Mutex
	parked     map[string]parkedSession
	stateTotal atomic.Int64

	draining atomic.Bool
	// coordEpoch is the highest coordinator fencing epoch seen (header or
	// heartbeat ack); mutating requests stamped with a lower one get 412.
	coordEpoch atomic.Uint64

	janitorStop  chan struct{}
	janitorDone  chan struct{}
	ckptStop     chan struct{}
	ckptDone     chan struct{}
	pressureKick chan struct{}
	pressureStop chan struct{}
	pressureDone chan struct{}

	// counters live in the obs registry (registerMetrics wires them), so
	// /metrics is a straight registry exposition; gauges are read live at
	// scrape time via GaugeFuncs.
	eventsIngested   *obs.Counter
	chunksIngested   *obs.Counter
	sessionsCreated  *obs.Counter
	sessionsFinished *obs.Counter
	sessionsEvicted  *obs.Counter
	analyses         *obs.Counter
	shed             *obs.Counter
	chunksReplayed   *obs.Counter
	eventsReplayed   *obs.Counter
	integrityRejects *obs.Counter
	gapRejects       *obs.Counter
	sessionsParked   *obs.Counter
	sessionsUnparked *obs.Counter
	epochRejects     *obs.Counter
	// arenaLeakedRefs accumulates pooled clock allocations a sealed session
	// failed to return to its engine arena — always zero unless a detector
	// leaks; exported so fleet/chaos tests can assert it from outside the
	// package. See noteArenaAfterSeal.
	arenaLeakedRefs atomic.Int64
}

// New builds a Server and starts its scheduler and idle-session janitor.
func New(cfg Config) *Server {
	cfg.fill()
	o := newServerObs(&cfg)
	s := &Server{
		cfg: cfg,
		obs: o,
		sched: sched.New(sched.Config{
			Workers:  cfg.Workers,
			QueueCap: cfg.QueueCap,
			WaitObserve: func(d time.Duration) {
				o.queueWait.Observe(d.Seconds())
			},
		}),
		store:        report.NewStore(),
		sessions:     make(map[string]*session),
		finished:     make(map[string]sessionFinished),
		parked:       make(map[string]parkedSession),
		start:        time.Now(),
		janitorStop:  make(chan struct{}),
		janitorDone:  make(chan struct{}),
		ckptStop:     make(chan struct{}),
		ckptDone:     make(chan struct{}),
		pressureKick: make(chan struct{}, 1),
		pressureStop: make(chan struct{}),
		pressureDone: make(chan struct{}),
	}
	s.registerMetrics()
	// Crash recovery: re-open whatever the previous process checkpointed
	// before accepting any traffic.
	s.restoreCheckpoints()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /sessions", s.handleCreateSession)
	s.mux.HandleFunc("GET /sessions", s.handleListSessions)
	s.mux.HandleFunc("GET /sessions/{id}", s.handleSessionStatus)
	s.mux.HandleFunc("POST /sessions/{id}/chunks", s.handleChunk)
	s.mux.HandleFunc("POST /sessions/{id}/finish", s.handleFinish)
	s.mux.HandleFunc("DELETE /sessions/{id}", s.handleAbort)
	s.mux.HandleFunc("POST /analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /sessions/{id}/snapshot", s.handleSessionSnapshot)
	s.mux.HandleFunc("POST /sessions/restore", s.handleSessionRestore)
	s.mux.HandleFunc("GET /reports", s.handleReports)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/trace/{id}", s.handleDebugTrace)
	s.mux.HandleFunc("GET /debug/sessions/{id}", s.handleDebugSession)
	if cfg.IdleTimeout > 0 {
		go s.janitor()
	} else {
		close(s.janitorDone)
	}
	if cfg.CheckpointDir != "" && cfg.CheckpointEvery > 0 {
		go s.checkpointLoop()
	} else {
		close(s.ckptDone)
	}
	if cfg.StateBudgetBytes > 0 {
		go s.pressureLoop()
	} else {
		close(s.pressureDone)
	}
	return s
}

// Handler returns the HTTP handler serving the raced API.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the deduplicating report store (for embedding servers).
func (s *Server) Store() *report.Store { return s.store }

// Close drains the server: new requests are refused (503), the scheduler
// finishes every accepted chunk, and still-open sessions are finalized so
// their races reach the report store. With a CheckpointDir configured,
// open sessions are checkpointed instead of finalized — a graceful restart
// and crash recovery share the restore path. Safe to call once.
func (s *Server) Close(ctx context.Context) error {
	s.draining.Store(true)
	close(s.janitorStop)
	<-s.janitorDone
	close(s.ckptStop)
	<-s.ckptDone
	close(s.pressureStop)
	<-s.pressureDone
	err := s.sched.Drain(ctx)

	// In-memory parked sessions are resumable only while this process
	// lives: finalize them so their races reach the report store.
	s.parkedMu.Lock()
	parked := s.parked
	s.parked = make(map[string]parkedSession)
	s.parkedMu.Unlock()
	for id, rec := range parked {
		sess, rerr := restoreSession(bytes.NewReader(rec.blob), time.Now())
		if rerr != nil {
			s.cfg.Logger.Error("parked session unrestorable at shutdown", "session", id, "err", rerr)
			continue
		}
		sess.finalize(s.store, time.Now())
	}

	s.mu.Lock()
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.sessions = make(map[string]*session)
	s.mu.Unlock()
	if s.cfg.CheckpointDir != "" {
		kept := 0
		for _, sess := range open {
			// The scheduler is drained, so writing directly is serialized.
			if cerr := s.checkpointSession(sess); cerr != nil {
				s.cfg.Logger.Error("shutdown checkpoint failed, finalizing", "session", sess.id, "err", cerr)
				sess.finalize(s.store, time.Now())
				s.dropSessionCheckpoint(sess.id)
				continue
			}
			kept++
		}
		s.checkpointStore()
		if len(open) > 0 {
			s.cfg.Logger.Info("checkpointed open sessions at shutdown", "sessions", kept)
		}
		return err
	}
	for _, sess := range open {
		sess.finalize(s.store, time.Now())
	}
	if len(open) > 0 {
		s.cfg.Logger.Info("finalized open sessions at shutdown", "sessions", len(open))
	}
	return err
}

// janitor evicts idle sessions on a timer. Eviction goes through the
// scheduler under the session's key, so it serializes behind any chunk
// still queued for that session.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	t := time.NewTicker(s.cfg.JanitorPeriod)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-s.cfg.IdleTimeout)
		s.mu.Lock()
		var stale []*session
		for _, sess := range s.sessions {
			if sess.idleSince().Before(cutoff) {
				stale = append(stale, sess)
			}
		}
		s.mu.Unlock()
		for _, sess := range stale {
			sess := sess
			err := s.sched.Submit(sess.id, func() {
				// Chunks queued behind this task may have touched the
				// session since the tick collected it: re-check idleness at
				// execution time before evicting.
				if sess.idleSince().After(time.Now().Add(-s.cfg.IdleTimeout)) {
					return
				}
				s.removeSession(sess.id)
				sess.finalize(s.store, time.Now())
				s.noteSessionState(sess)
				s.checkpointStore()
				s.dropSessionCheckpoint(sess.id)
				s.sessionsEvicted.Add(1)
				s.cfg.Logger.Info("evicted idle session", "session", sess.id, "events", sess.status().Events)
			})
			if err != nil {
				// Saturated or draining: retry at the next tick.
				continue
			}
		}
		s.pruneParked(cutoff)
	}
}

func (s *Server) removeSession(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	delete(s.sessions, id)
	return sess
}

func (s *Server) getSession(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// --- helpers ---

type apiError struct {
	Error  string `json:"error"`
	Offset int64  `json:"offset,omitempty"`
	Event  int64  `json:"event,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeDecodeError maps a chunk/trace decode failure to 400 with the
// offset/event context the traceio layer captured.
func writeDecodeError(w http.ResponseWriter, err error) {
	var de *traceio.DecodeError
	if errors.As(err, &de) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: de.Error(), Offset: de.Offset, Event: de.Event})
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

// retryAfterSecs derives the Retry-After hint from live scheduler pressure
// instead of a constant: floor seconds plus one second per full round of
// queued work the pool has ahead of the caller, clamped at a minute. A
// draining scheduler pins the hint to the floor — the backlog is finishing,
// the client should retry against the restarted process soon.
func (s *Server) retryAfterSecs(floor int) int {
	if s.sched.Draining() {
		return floor
	}
	secs := floor + s.sched.QueueDepth()/max(s.sched.Workers(), 1)
	return min(secs, 60)
}

// shed429 sheds one request: 429 with a queue-depth-derived Retry-After.
func (s *Server) shed429(w http.ResponseWriter, floor int, format string, args ...any) {
	s.shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs(floor)))
	writeError(w, http.StatusTooManyRequests, format, args...)
}

// shedOrFail maps scheduler admission errors: saturation is 429 with a
// Retry-After hint, draining is 503.
func (s *Server) shedOrFail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, sched.ErrSaturated):
		s.shed429(w, 1, "analysis queue saturated, retry later")
	case errors.Is(err, sched.ErrDraining), s.draining.Load():
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs(1)))
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// setIngestDeadline bounds how long a request body read may take, so a
// stalled peer degrades to a timed-out request instead of a pinned
// connection. Best effort: not every ResponseWriter supports deadlines.
func (s *Server) setIngestDeadline(w http.ResponseWriter) {
	if s.cfg.IngestTimeout <= 0 {
		return
	}
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Now().Add(s.cfg.IngestTimeout))
}

// --- finish idempotency cache ---

// finishedCacheCap bounds the replayable-finish cache; oldest entries fall
// out first. 4096 sealed sessions of headroom is far past any retry window.
const finishedCacheCap = 4096

// rememberFinished caches a sealed session's finish response so a client
// whose finish reply was lost in transit can replay the request and get the
// identical report instead of a 404.
func (s *Server) rememberFinished(id string, resp sessionFinished) {
	s.finMu.Lock()
	defer s.finMu.Unlock()
	if _, ok := s.finished[id]; !ok {
		s.finOrder = append(s.finOrder, id)
	}
	s.finished[id] = resp
	for len(s.finOrder) > finishedCacheCap {
		delete(s.finished, s.finOrder[0])
		s.finOrder = s.finOrder[1:]
	}
}

func (s *Server) recallFinished(id string) (sessionFinished, bool) {
	s.finMu.Lock()
	defer s.finMu.Unlock()
	resp, ok := s.finished[id]
	return resp, ok
}

func (s *Server) refuseDraining(w http.ResponseWriter) bool {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return true
	}
	return false
}

// NoteCoordinatorEpoch raises the worker's coordinator-epoch fence to e.
// The fence is monotonic: it never lowers, so once a standby's takeover
// epoch reaches this worker (heartbeat ack or proxied request), the
// superseded primary's writes are refused forever.
func (s *Server) NoteCoordinatorEpoch(e uint64) {
	for {
		cur := s.coordEpoch.Load()
		if e <= cur || s.coordEpoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// CoordinatorEpoch reports the highest coordinator epoch seen.
func (s *Server) CoordinatorEpoch() uint64 { return s.coordEpoch.Load() }

// refuseFenced rejects a mutating request stamped (via HeaderEpoch) with a
// coordinator epoch below the fence. 412 is deliberate: the fleet client
// treats it as retryable, so a client talking through a zombie coordinator
// rotates to the live one instead of giving up; the zombie itself fences
// on seeing it. The current fence rides back in the response header. An
// absent or malformed header passes — direct clients are never fenced —
// and a higher epoch advances the fence right here.
func (s *Server) refuseFenced(w http.ResponseWriter, r *http.Request) bool {
	v := r.Header.Get(HeaderEpoch)
	if v == "" {
		return false
	}
	e, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return false
	}
	if cur := s.coordEpoch.Load(); e < cur {
		s.epochRejects.Add(1)
		w.Header().Set(HeaderEpoch, strconv.FormatUint(cur, 10))
		writeError(w, http.StatusPreconditionFailed,
			"coordinator epoch %d is fenced (worker has seen %d)", e, cur)
		return true
	}
	s.NoteCoordinatorEpoch(e)
	return false
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// engineNames parses the ?engines=a,b,c parameter, defaulting to the
// configured list.
func (s *Server) engineNames(r *http.Request) []string {
	raw := r.URL.Query().Get("engines")
	if raw == "" {
		return s.cfg.DefaultEngines
	}
	parts := strings.Split(raw, ",")
	names := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			names = append(names, p)
		}
	}
	return names
}

// engineResult is the JSON shape of one engine's outcome.
type engineResult struct {
	Engine        string  `json:"engine"`
	Events        int     `json:"events"`
	RacyEvents    int     `json:"racy_events"`
	FirstRace     int     `json:"first_race"`
	Distinct      int     `json:"distinct"`
	QueueMaxTotal int     `json:"queue_max_total,omitempty"`
	Summary       string  `json:"summary"`
	Report        string  `json:"report,omitempty"`
	DurationMS    float64 `json:"duration_ms"`
	Error         string  `json:"error,omitempty"`
}

func renderResult(res *engine.Result, events int, h traceio.Header) engineResult {
	er := engineResult{
		Engine:        res.Engine,
		Events:        events,
		RacyEvents:    res.RacyEvents,
		FirstRace:     res.FirstRace,
		Distinct:      res.Distinct(),
		QueueMaxTotal: res.QueueMaxTotal,
		Summary:       res.Summary,
		DurationMS:    float64(res.Duration.Microseconds()) / 1e3,
	}
	if res.Report != nil {
		er.Report = res.Report.Format(h.Syms)
	}
	if res.Err != nil {
		er.Error = res.Err.Error()
	}
	return er
}

// --- session lifecycle handlers ---

type sessionCreated struct {
	ID      string   `json:"id"`
	Engines []string `json:"engines"`
	Dims    struct {
		Threads int `json:"threads"`
		Locks   int `json:"locks"`
		Vars    int `json:"vars"`
		Locs    int `json:"locs"`
	} `json:"dims"`
}

// handleCreateSession opens a session: the body is a binary trace header
// (traceio.WriteHeader) declaring the symbol universe, which sizes every
// requested engine's detector up front.
func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	if s.refuseFenced(w, r) {
		return
	}
	tStart := time.Now()
	traceID := traceIDFrom(r)
	names := s.engineNames(r)
	makers := make([]engine.SessionEngine, len(names))
	for i, name := range names {
		e, err := engine.New(name, s.cfg.Engine)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		se, ok := e.(engine.SessionEngine)
		if !ok {
			writeError(w, http.StatusBadRequest,
				"engine %q cannot run as a streaming session (streaming engines: wcp, wcp-epoch, hb, hb-epoch)", name)
			return
		}
		makers[i] = se
	}

	// Buffer the header body so an optional HeaderChunkCRC can vouch for it
	// before it shapes detector allocation: a bit flipped inside a symbol
	// name would otherwise decode cleanly and silently skew every report.
	s.setIngestDeadline(w)
	hdrBody, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading session header: %v", err)
		return
	}
	if cerr := checkCRC(r, hdrBody, 0, false); cerr != nil {
		s.integrityRejects.Add(1)
		writeError(w, http.StatusUnprocessableEntity, "session header %v", cerr)
		return
	}
	h, err := traceio.ReadHeader(bytes.NewReader(hdrBody))
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	d := h.Dims()
	if d.Threads == 0 {
		writeError(w, http.StatusBadRequest, "header declares no threads")
		return
	}
	if d.Threads > s.cfg.MaxThreads {
		writeError(w, http.StatusBadRequest,
			"header declares %d threads, limit is %d (detector state is O(threads²))", d.Threads, s.cfg.MaxThreads)
		return
	}
	if max(d.Locks, d.Vars, d.Locs) > s.cfg.MaxSymbols {
		writeError(w, http.StatusBadRequest,
			"header declares %d locks / %d vars / %d locations, per-table limit is %d",
			d.Locks, d.Vars, d.Locs, s.cfg.MaxSymbols)
		return
	}

	atCapacity := func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.sessions) >= s.cfg.MaxSessions
	}
	if atCapacity() {
		s.shed429(w, 5, "session limit (%d) reached", s.cfg.MaxSessions)
		return
	}
	// Detector allocation (the expensive part) happens outside the sessions
	// mutex; the limit is re-checked at insertion, so it stays strict.
	id := r.Header.Get(HeaderSessionID)
	if id != "" {
		if !validSessionID(id) {
			writeError(w, http.StatusBadRequest,
				"bad %s %q: 1-64 characters of [a-zA-Z0-9_-]", HeaderSessionID, id)
			return
		}
	} else {
		id = newID()
	}
	engines := make([]engine.Session, len(makers))
	for i, se := range makers {
		engines[i] = se.NewSession(d.Threads, d.Locks, d.Vars)
	}
	sess := newSession(id, h, names, engines, time.Now())
	sess.traceID = traceID
	s.instrument(sess)
	s.applyCompactPolicy(sess)
	s.parkedMu.Lock()
	_, isParked := s.parked[id]
	s.parkedMu.Unlock()
	s.mu.Lock()
	_, exists := s.sessions[id]
	if exists || isParked {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "session %s already open", id)
		return
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.shed429(w, 5, "session limit (%d) reached", s.cfg.MaxSessions)
		return
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.sessionsCreated.Add(1)
	s.noteSessionState(sess)
	s.obs.span(obs.Span{
		Trace: traceID, Session: id, Name: "create",
		Start: tStart, Duration: time.Since(tStart).Seconds(),
	})
	s.cfg.Logger.Info("session opened", "session", id, "trace", traceID,
		"engines", names, "threads", d.Threads, "locks", d.Locks, "vars", d.Vars)

	resp := sessionCreated{ID: id, Engines: names}
	resp.Dims.Threads, resp.Dims.Locks, resp.Dims.Vars, resp.Dims.Locs = d.Threads, d.Locks, d.Vars, d.Locs
	writeJSON(w, http.StatusCreated, resp)
}

// handleChunk ingests one chunk of the session's event body. The request
// holds a scheduler slot while the chunk is decoded and analyzed, so a
// saturated service pushes back here with 429.
//
// The whole body is buffered before any detector sees it: a connection
// dropped mid-chunk costs nothing — the session stays at its last
// acknowledged event and the client's resend (with HeaderChunkOffset)
// replays the prefix idempotently. A HeaderChunkCRC mismatch rejects the
// chunk with 422 before ingestion, so a body corrupted in transit can never
// poison detector state; the client just resends.
func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	if s.refuseFenced(w, r) {
		return
	}
	id := r.PathValue("id")
	sess := s.liveSession(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}

	var offset uint64
	var hasOffset bool
	if v := r.Header.Get(HeaderChunkOffset); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad %s header %q", HeaderChunkOffset, v)
			return
		}
		offset, hasOffset = n, true
	}

	s.setIngestDeadline(w)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading chunk body: %v", err)
		return
	}
	if cerr := checkCRC(r, body, offset, hasOffset); cerr != nil {
		s.integrityRejects.Add(1)
		writeError(w, http.StatusUnprocessableEntity, "chunk %v", cerr)
		return
	}

	traceID := traceIDFrom(r)
	var added, replayed uint64
	var ingestErr error
	ingest := func(target *session) error {
		tSub := time.Now()
		var wait time.Duration
		err := s.sched.Do(r.Context(), id, func() {
			wait = time.Since(tSub)
			added, replayed, ingestErr = target.ingest(bytes.NewReader(body), offset, hasOffset, traceID, time.Now())
			s.noteSessionState(target)
		})
		if err == nil {
			s.obs.span(obs.Span{
				Trace: target.trace(traceID), Session: id, Name: "queue_wait",
				Start: tSub, Duration: wait.Seconds(),
			})
		}
		return err
	}
	if err := ingest(sess); err != nil {
		s.shedOrFail(w, err)
		return
	}
	if errors.Is(ingestErr, errSessionClosed) {
		// The session may have been pressure-parked between resolution and
		// task execution; unpark and retry once on the fresh instance.
		if fresh := s.liveSession(id); fresh != nil && fresh != sess {
			sess = fresh
			if err := ingest(sess); err != nil {
				s.shedOrFail(w, err)
				return
			}
		}
	}
	s.eventsIngested.Add(added)
	if replayed > 0 {
		s.chunksReplayed.Add(1)
		s.eventsReplayed.Add(replayed)
	}
	if ingestErr != nil {
		var gap *gapError
		switch {
		case errors.Is(ingestErr, errSessionClosed):
			writeError(w, http.StatusConflict, "session %s is closed", id)
		case errors.As(ingestErr, &gap):
			// The client is ahead of the ack (a lost chunk, or a resume
			// against older server state): hand back the acknowledged offset
			// so it can rewind precisely instead of guessing.
			s.gapRejects.Add(1)
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":  gap.Error(),
				"events": gap.acked,
				"gap":    true,
			})
		default:
			writeDecodeError(w, ingestErr)
		}
		return
	}
	s.chunksIngested.Add(1)
	st := sess.status()
	writeJSON(w, http.StatusOK, map[string]any{
		"id": id, "events": st.Events, "chunks": st.Chunks, "replayed": replayed,
	})
}

type sessionFinished struct {
	ID      string         `json:"id"`
	Events  uint64         `json:"events"`
	Results []engineResult `json:"results"`
}

// handleFinish seals a session: every engine's detector is finalized, the
// race reports are folded into the dedup store, and the per-engine results
// are returned. The finish task runs under the session's scheduler key, so
// it executes after every already-accepted chunk.
//
// Finish is idempotent: the response is built inside the scheduler task and
// cached, so a client that lost the reply (dropped connection after the
// server sealed the session) replays the request and receives the identical
// report instead of a 404/409.
func (s *Server) handleFinish(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	if s.refuseFenced(w, r) {
		return
	}
	id := r.PathValue("id")
	// An optional offset header makes finish a commit barrier: when the
	// client's acknowledged count disagrees with the session's — a failover
	// or restart restored an older checkpoint after the client's last chunk
	// landed — the finish is refused with the same gap shape as a chunk
	// rejection, so the client replays the lost tail instead of silently
	// sealing a truncated session.
	wantOffset := int64(-1)
	if v := r.Header.Get("X-Raced-Offset"); v != "" {
		n, perr := strconv.ParseUint(v, 10, 63)
		if perr != nil {
			writeError(w, http.StatusBadRequest, "bad X-Raced-Offset %q", v)
			return
		}
		wantOffset = int64(n)
	}
	traceID := traceIDFrom(r)
	sess := s.liveSession(id)
	if sess == nil {
		if resp, ok := s.recallFinished(id); ok {
			writeJSON(w, http.StatusOK, resp)
			return
		}
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	// Two attempts: the session can be pressure-parked between resolution
	// and task execution, in which case the retry runs on the unparked copy.
	for attempt := 0; attempt < 2; attempt++ {
		tStart := time.Now()
		var resp sessionFinished
		var done, gapped bool
		var gapEvents uint64
		err := s.sched.Do(r.Context(), id, func() {
			if cached, ok := s.recallFinished(id); ok {
				resp, done = cached, true
				return
			}
			if have := sess.status().Events; wantOffset >= 0 && have != uint64(wantOffset) {
				gapped, gapEvents = true, have
				return
			}
			s.removeSession(id)
			results := sess.finalize(s.store, time.Now())
			s.noteSessionState(sess)
			if results == nil {
				return // sealed elsewhere (parked or aborted) — retry resolves it
			}
			s.noteArenaAfterSeal(sess)
			// Store checkpoint before the session checkpoint disappears: a
			// crash between the two re-counts this session's races, never
			// loses them.
			s.checkpointStore()
			s.dropSessionCheckpoint(id)
			st := sess.status()
			resp = sessionFinished{ID: id, Events: st.Events, Results: make([]engineResult, len(results))}
			for i, res := range results {
				resp.Results[i] = renderResult(res, int(st.Events), sess.header)
			}
			s.rememberFinished(id, resp)
			s.sessionsFinished.Add(1)
			s.obs.span(obs.Span{
				Trace: sess.trace(traceID), Session: id, Name: "finish",
				Start: tStart, Duration: time.Since(tStart).Seconds(), Events: st.Events,
			})
			s.cfg.Logger.Info("session finished", "session", id, "trace", sess.trace(traceID),
				"events", st.Events, "engines", len(results))
			done = true
		})
		if err != nil {
			s.shedOrFail(w, err)
			return
		}
		if gapped {
			s.gapRejects.Add(1)
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":  fmt.Sprintf("session %s has %d acknowledged events, finish expected %d", id, gapEvents, wantOffset),
				"events": gapEvents,
				"gap":    true,
			})
			return
		}
		if done {
			writeJSON(w, http.StatusOK, resp)
			return
		}
		fresh := s.liveSession(id)
		if fresh == nil || fresh == sess {
			break
		}
		sess = fresh
	}
	writeError(w, http.StatusConflict, "session %s is already closed", id)
}

// handleAbort discards a session without reporting. A parked session is
// aborted by discarding its parking record — no need to restore it first.
func (s *Server) handleAbort(w http.ResponseWriter, r *http.Request) {
	if s.refuseFenced(w, r) {
		return
	}
	id := r.PathValue("id")
	sess := s.removeSession(id)
	if sess == nil {
		if !s.dropParked(id) {
			writeError(w, http.StatusNotFound, "unknown session %q", id)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "aborted": true})
		return
	}
	sess.abort()
	s.noteSessionState(sess)
	s.noteArenaAfterSeal(sess)
	s.dropSessionCheckpoint(id)
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "aborted": true})
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// liveSession, not getSession: a client resyncing its send offset after
	// a fault must see a parked session's acknowledged event count.
	sess := s.liveSession(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, sess.status())
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		list = append(list, sess)
	}
	s.mu.Unlock()
	out := make([]sessionStatus, len(list))
	for i, sess := range list {
		out[i] = sess.status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Created.Before(out[j].Created) })
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

// --- one-shot analysis ---

// handleAnalyze runs engines over a complete trace body (text or binary,
// auto-detected) in one request. The trace is materialized — unlike
// sessions this path supports the windowed/lockset engines too — and the
// reports are folded into the dedup store like a one-chunk session.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	names := s.engineNames(r)
	engines := make([]engine.Engine, len(names))
	for i, name := range names {
		e, err := engine.New(name, s.cfg.Engine)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		engines[i] = e
	}
	tr, err := traceio.ReadAuto(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	id := "analyze-" + newID()
	var results []*engine.Result
	if err := s.sched.Do(r.Context(), id, func() {
		results = make([]*engine.Result, len(engines))
		now := time.Now()
		for i, e := range engines {
			results[i] = e.Analyze(tr)
			s.store.AddReport(results[i].Engine, id, results[i].Report, tr.Symbols, now)
		}
	}); err != nil {
		s.shedOrFail(w, err)
		return
	}
	s.analyses.Add(1)
	s.eventsIngested.Add(uint64(len(tr.Events)))
	resp := sessionFinished{ID: id, Events: uint64(len(tr.Events)), Results: make([]engineResult, len(results))}
	h := traceio.Header{Syms: tr.Symbols}
	for i, res := range results {
		resp.Results[i] = renderResult(res, len(tr.Events), h)
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- reports, health, metrics ---

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := report.Filter{
		Engine: q.Get("engine"),
		Loc:    q.Get("loc"),
		Var:    q.Get("var"),
	}
	if v := q.Get("min_count"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad min_count %q", v)
			return
		}
		f.MinCount = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		f.Limit = n
	}
	entries := s.store.List(f)
	if entries == nil {
		entries = []report.Entry{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":   s.store.Len(),
		"matched": len(entries),
		"reports": entries,
	})
}

// handleHealthz reports the same load picture the fleet registry sees:
// parked sessions count (they are paused, not gone), detector state bytes
// and scheduler saturation are all part of "how loaded is this worker", so
// humans and machines read identical numbers.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.mu.Lock()
	open := len(s.sessions)
	s.mu.Unlock()
	s.parkedMu.Lock()
	parked := len(s.parked)
	s.parkedMu.Unlock()
	writeJSON(w, code, map[string]any{
		"status":          status,
		"sessions":        open + parked, // what Stats reports to the fleet
		"sessions_open":   open,
		"sessions_parked": parked,
		"state_bytes":     s.stateTotal.Load(),
		"queue_depth":     s.sched.QueueDepth(),
		"queue_cap":       s.sched.QueueCap(),
		"tasks_running":   s.sched.Running(),
		"workers":         s.sched.Workers(),
		"draining":        s.draining.Load(),
		"uptime_seconds":  time.Since(s.start).Seconds(),
	})
}

// handleMetrics serves the registry in Prometheus text exposition format.
// ExtraMetrics (fault-injection counters) is appended after the registry
// families; its family names are disjoint, so the combined output is a
// valid exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.obs.reg.WritePrometheus(w)
	if s.cfg.ExtraMetrics != nil {
		s.cfg.ExtraMetrics(w)
	}
}
