package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/trace"
	"repro/internal/traceio"
)

// testClient drives the raced HTTP API the way examples/client does.
type testClient struct {
	t    *testing.T
	base string
	c    *http.Client
}

func (tc *testClient) do(method, path string, body io.Reader) (*http.Response, []byte) {
	tc.t.Helper()
	req, err := http.NewRequest(method, tc.base+path, body)
	if err != nil {
		tc.t.Fatal(err)
	}
	resp, err := tc.c.Do(req)
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tc.t.Fatal(err)
	}
	return resp, raw
}

func (tc *testClient) createSession(tr *trace.Trace, engines string) string {
	tc.t.Helper()
	var hdr bytes.Buffer
	if err := traceio.WriteHeader(&hdr, tr.Symbols, 0); err != nil {
		tc.t.Fatal(err)
	}
	resp, raw := tc.do("POST", "/sessions?engines="+engines, &hdr)
	if resp.StatusCode != http.StatusCreated {
		tc.t.Fatalf("create session: %d %s", resp.StatusCode, raw)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		tc.t.Fatal(err)
	}
	return out.ID
}

// stream sends tr's events to session id in nchunks roughly-equal chunks.
func (tc *testClient) stream(id string, tr *trace.Trace, nchunks int) {
	tc.t.Helper()
	n := len(tr.Events)
	per := (n + nchunks - 1) / nchunks
	for i := 0; i < n; i += per {
		end := i + per
		if end > n {
			end = n
		}
		var body bytes.Buffer
		if err := traceio.EncodeEvents(&body, tr.Events[i:end]); err != nil {
			tc.t.Fatal(err)
		}
		resp, raw := tc.do("POST", "/sessions/"+id+"/chunks", &body)
		if resp.StatusCode != http.StatusOK {
			tc.t.Fatalf("chunk [%d:%d]: %d %s", i, end, resp.StatusCode, raw)
		}
	}
}

func (tc *testClient) finish(id string) sessionFinished {
	tc.t.Helper()
	resp, raw := tc.do("POST", "/sessions/"+id+"/finish", nil)
	if resp.StatusCode != http.StatusOK {
		tc.t.Fatalf("finish: %d %s", resp.StatusCode, raw)
	}
	var out sessionFinished
	if err := json.Unmarshal(raw, &out); err != nil {
		tc.t.Fatal(err)
	}
	return out
}

func newTestServer(t *testing.T, cfg Config) (*Server, *testClient) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, &testClient{t: t, base: ts.URL, c: ts.Client()}
}

// TestEndToEndConcurrentClients is the acceptance scenario: 8 concurrent
// clients stream distinct traces (chunked, pipelined sessions) plus one
// shared trace each; every per-session report must be byte-identical to
// the batch engine.Analyze on the same trace, and the shared trace's races
// must collapse to single dedup entries counted across all 8 sessions.
func TestEndToEndConcurrentClients(t *testing.T) {
	const clients = 8
	s, tc := newTestServer(t, Config{Workers: 4, QueueCap: 256})
	shared := gen.Random(gen.RandomConfig{Seed: 42, Events: 20000, Threads: 4, Locks: 3, Vars: 5})
	wantEngines := []string{"wcp", "hb"}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			own := gen.Random(gen.RandomConfig{
				Seed: int64(100 + c), Events: 10000 + 1000*c, Threads: 3 + c%3, Locks: 2, Vars: 4,
			})
			for _, tr := range []*trace.Trace{own, shared} {
				id := tc.createSession(tr, strings.Join(wantEngines, ","))
				tc.stream(id, tr, 4+c)
				got := tc.finish(id)
				if got.Events != uint64(len(tr.Events)) {
					t.Errorf("client %d: session saw %d events, want %d", c, got.Events, len(tr.Events))
					return
				}
				for i, name := range wantEngines {
					want := engine.MustNew(name, engine.Config{}).Analyze(tr)
					res := got.Results[i]
					if res.Engine != name {
						t.Errorf("client %d: result %d is %q, want %q", c, i, res.Engine, name)
					}
					if res.RacyEvents != want.RacyEvents || res.Distinct != want.Distinct() || res.FirstRace != want.FirstRace {
						t.Errorf("client %d %s: racy=%d distinct=%d first=%d, want racy=%d distinct=%d first=%d",
							c, name, res.RacyEvents, res.Distinct, res.FirstRace,
							want.RacyEvents, want.Distinct(), want.FirstRace)
					}
					if wantReport := want.Report.Format(tr.Symbols); res.Report != wantReport {
						t.Errorf("client %d %s: session report differs from batch:\n%s\n--- want ---\n%s",
							c, name, res.Report, wantReport)
					}
				}
			}
		}(c)
	}
	wg.Wait()

	// Dedup: the shared trace was ingested by all 8 clients; its race
	// classes must appear once each, with Traces >= 8.
	wantShared := engine.MustNew("wcp", engine.Config{}).Analyze(shared)
	if wantShared.Distinct() == 0 {
		t.Fatal("shared trace should contain races (pick another seed)")
	}
	resp, raw := tc.do("GET", "/reports?engine=wcp", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reports: %d %s", resp.StatusCode, raw)
	}
	var rep struct {
		Reports []struct {
			LocA   string `json:"loc_a"`
			LocB   string `json:"loc_b"`
			Traces int64  `json:"traces"`
		} `json:"reports"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	sharedClasses := 0
	for _, e := range rep.Reports {
		if e.Traces >= clients {
			sharedClasses++
		}
	}
	if sharedClasses < wantShared.Distinct() {
		t.Errorf("dedup store has %d classes with >= %d traces, want >= %d (the shared trace's races, collapsed)",
			sharedClasses, clients, wantShared.Distinct())
	}
	if s.store.Len() == 0 {
		t.Error("report store is empty after e2e run")
	}
}

// TestSaturationSheds: with the lone worker pinned and the queue at
// capacity, chunk submissions are rejected with 429 + Retry-After instead
// of queueing, and the queue depth never exceeds its cap.
func TestSaturationSheds(t *testing.T) {
	s, tc := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	tr := gen.Random(gen.RandomConfig{Seed: 7, Events: 1000, Threads: 3, Locks: 2, Vars: 4})
	id := tc.createSession(tr, "wcp")

	// Pin the worker with a gate task under another key, then fill the
	// queue to capacity.
	gate := make(chan struct{})
	var pinned sync.WaitGroup
	pinned.Add(1)
	if err := s.sched.Submit("pin", func() { defer pinned.Done(); <-gate }); err != nil {
		t.Fatal(err)
	}
	for i := 0; s.sched.Running() != 1; i++ {
		if i > 1000 {
			t.Fatal("pin task never started")
		}
		time.Sleep(time.Millisecond)
	}
	fills := make(chan struct{})
	for i := 0; i < 2; i++ {
		if err := s.sched.Submit(fmt.Sprintf("fill-%d", i), func() { <-fills }); err != nil {
			t.Fatal(err)
		}
	}

	var body bytes.Buffer
	if err := traceio.EncodeEvents(&body, tr.Events); err != nil {
		t.Fatal(err)
	}
	resp, raw := tc.do("POST", "/sessions/"+id+"/chunks", bytes.NewReader(body.Bytes()))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("chunk under saturation: %d %s, want 429", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if depth := s.sched.QueueDepth(); depth > 2 {
		t.Errorf("queue depth grew to %d under saturation, cap is 2", depth)
	}

	// Release: the same chunk is accepted and the session completes.
	close(fills)
	close(gate)
	pinned.Wait()
	tc.sendChunkBytes(id, body.Bytes())
	got := tc.finish(id)
	if got.Events != uint64(len(tr.Events)) {
		t.Errorf("after recovery session saw %d events, want %d", got.Events, len(tr.Events))
	}
}

func (tc *testClient) sendChunkBytes(id string, raw []byte) {
	tc.t.Helper()
	resp, body := tc.do("POST", "/sessions/"+id+"/chunks", bytes.NewReader(raw))
	if resp.StatusCode != http.StatusOK {
		tc.t.Fatalf("chunk: %d %s", resp.StatusCode, body)
	}
}

// TestChunkDecodeError: a chunk cut mid-event is a 400 whose JSON carries
// the offset and absolute event index, and the session refuses further
// chunks (its analysis is poisoned).
func TestChunkDecodeError(t *testing.T) {
	_, tc := newTestServer(t, Config{})
	tr := gen.Random(gen.RandomConfig{Seed: 9, Events: 500, Threads: 3, Locks: 2, Vars: 4})
	id := tc.createSession(tr, "wcp")

	var ok bytes.Buffer
	if err := traceio.EncodeEvents(&ok, tr.Events[:100]); err != nil {
		t.Fatal(err)
	}
	tc.sendChunkBytes(id, ok.Bytes())

	var bad bytes.Buffer
	if err := traceio.EncodeEvents(&bad, tr.Events[100:200]); err != nil {
		t.Fatal(err)
	}
	resp, raw := tc.do("POST", "/sessions/"+id+"/chunks", bytes.NewReader(bad.Bytes()[:bad.Len()-1]))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated chunk: %d %s, want 400", resp.StatusCode, raw)
	}
	var e apiError
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	if e.Offset <= 0 {
		t.Errorf("decode error carries offset %d, want > 0", e.Offset)
	}
	if e.Event < 100 || e.Event >= 200 {
		t.Errorf("decode error names event %d, want an absolute index in [100, 200)", e.Event)
	}
	// The session is poisoned: further chunks are rejected.
	resp, raw = tc.do("POST", "/sessions/"+id+"/chunks", bytes.NewReader(ok.Bytes()))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("chunk after poison: %d %s, want 400", resp.StatusCode, raw)
	}
}

// TestAnalyzeOneShot: POST /analyze runs any engine (streaming or not)
// over a whole trace body and matches the batch path.
func TestAnalyzeOneShot(t *testing.T) {
	_, tc := newTestServer(t, Config{})
	tr := gen.Random(gen.RandomConfig{Seed: 13, Events: 5000, Threads: 4, Locks: 2, Vars: 4})
	var body bytes.Buffer
	if err := traceio.WriteBinary(&body, tr); err != nil {
		t.Fatal(err)
	}
	resp, raw := tc.do("POST", "/analyze?engines=wcp,lockset", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, raw)
	}
	var out sessionFinished
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	want := engine.MustNew("wcp", engine.Config{}).Analyze(tr)
	if out.Results[0].RacyEvents != want.RacyEvents || out.Results[0].Report != want.Report.Format(tr.Symbols) {
		t.Errorf("analyze wcp result differs from batch")
	}
	if out.Results[1].Engine != "lockset" {
		t.Errorf("second result = %q, want lockset", out.Results[1].Engine)
	}

	// Text format works too.
	var text bytes.Buffer
	if err := traceio.WriteText(&text, tr); err != nil {
		t.Fatal(err)
	}
	resp, raw = tc.do("POST", "/analyze", &text)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text analyze: %d %s", resp.StatusCode, raw)
	}
}

// TestIdleSessionEviction: sessions with no activity are evicted by the
// janitor; their partial results still reach the report store.
func TestIdleSessionEviction(t *testing.T) {
	s, tc := newTestServer(t, Config{
		IdleTimeout:   50 * time.Millisecond,
		JanitorPeriod: 10 * time.Millisecond,
	})
	tr := gen.Random(gen.RandomConfig{Seed: 42, Events: 20000, Threads: 4, Locks: 3, Vars: 5})
	id := tc.createSession(tr, "wcp")
	tc.stream(id, tr, 2)

	deadline := time.Now().Add(5 * time.Second)
	for tc.sessionExists(id) {
		if time.Now().After(deadline) {
			t.Fatal("idle session was never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.sessionsEvicted.Value(); got != 1 {
		t.Errorf("sessionsEvicted = %d, want 1", got)
	}
	// The races the session had already found reached the store.
	if s.store.Len() == 0 {
		t.Error("evicted session's races did not reach the report store")
	}
	// Finishing the evicted session is a conflict, not a hang.
	resp, _ := tc.do("POST", "/sessions/"+id+"/finish", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("finish after eviction: %d, want 404", resp.StatusCode)
	}
}

func (tc *testClient) sessionExists(id string) bool {
	tc.t.Helper()
	resp, _ := tc.do("GET", "/sessions/"+id, nil)
	return resp.StatusCode == http.StatusOK
}

// TestGracefulShutdown: Close drains queued chunks, finalizes open
// sessions into the store, and subsequent requests see 503.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{Workers: 2, QueueCap: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	tc := &testClient{t: t, base: ts.URL, c: ts.Client()}

	tr := gen.Random(gen.RandomConfig{Seed: 42, Events: 20000, Threads: 4, Locks: 3, Vars: 5})
	id := tc.createSession(tr, "wcp")
	tc.stream(id, tr, 3)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The open session was finalized into the store at shutdown.
	if s.store.Len() == 0 {
		t.Error("open session's races were not finalized into the store at shutdown")
	}
	resp, _ := tc.do("GET", "/healthz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after close: %d, want 503", resp.StatusCode)
	}
	resp, _ = tc.do("POST", "/sessions", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("create after close: %d, want 503", resp.StatusCode)
	}
}

// TestMetricsAndHealth: counters move and render.
func TestMetricsAndHealth(t *testing.T) {
	_, tc := newTestServer(t, Config{})
	tr := gen.Random(gen.RandomConfig{Seed: 3, Events: 2000, Threads: 3, Locks: 2, Vars: 4})
	id := tc.createSession(tr, "wcp")
	tc.stream(id, tr, 2)
	tc.finish(id)

	resp, raw := tc.do("GET", "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(raw)
	for _, line := range []string{
		fmt.Sprintf("raced_events_ingested_total %d", len(tr.Events)),
		"raced_sessions_created_total 1",
		"raced_sessions_finished_total 1",
		"raced_chunks_total 2",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("metrics missing %q in:\n%s", line, text)
		}
	}
	resp, raw = tc.do("GET", "/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, raw)
	}
}
