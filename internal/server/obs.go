package server

import (
	"context"
	"net/http"
	"runtime/pprof"
	"time"

	"repro/internal/obs"
)

// serverObs bundles the server's observability state: the metrics registry
// backing /metrics, the span ring backing /debug/trace and /debug/sessions,
// and the stage-timing instruments the ingest path samples.
//
// Sampling discipline: the ingest hot loop runs at tens of millions of
// events per second, so per-block stage timing (decode, per-engine process)
// fires only on every Nth block (Config.ObsSampleEvery). Per-chunk
// instruments (chunk latency, queue wait, counters) are unconditional —
// a chunk is thousands of events, so their cost is amortized to nothing.
type serverObs struct {
	reg      *obs.Registry
	trace    *obs.TraceLog
	name     string // worker name stamped into spans ("" single-node)
	sampleNs uint64 // sample stage timing every Nth block; 0 disables

	chunkIngest *obs.Histogram // whole-chunk ingest latency
	queueWait   *obs.Histogram // scheduler queue wait (sched.WaitObserve)
	decode      *obs.Histogram // sampled per-block decode latency
	checkpoint  *obs.Histogram // per-session checkpoint write latency
}

func newServerObs(cfg *Config) *serverObs {
	reg := obs.NewRegistry()
	o := &serverObs{
		reg:      reg,
		trace:    obs.NewTraceLog(cfg.TraceSpanCap),
		name:     cfg.Name,
		sampleNs: uint64(cfg.ObsSampleEvery),
		chunkIngest: reg.Histogram("raced_chunk_ingest_seconds",
			"Latency of one chunk's decode+analysis, measured inside the scheduler task.", nil),
		queueWait: reg.Histogram("raced_queue_wait_seconds",
			"Time a scheduler task waited between submission and dispatch.", nil),
		decode: reg.Histogram("raced_decode_seconds",
			"Sampled per-block decode latency (every Nth block, see -obs-sample).", nil),
		checkpoint: reg.Histogram("raced_checkpoint_seconds",
			"Latency of writing one session checkpoint.", nil),
	}
	return o
}

// engineHist returns the sampled per-block process-latency histogram for
// one engine. Called at session instrumentation time, never per block.
func (o *serverObs) engineHist(engine string) *obs.Histogram {
	return o.reg.Histogram("raced_engine_process_seconds",
		"Sampled per-block engine processing latency (every Nth block).",
		nil, obs.Label{Key: "engine", Value: engine})
}

// span records sp in the ring with this instance's worker name stamped in.
func (o *serverObs) span(sp obs.Span) {
	sp.Worker = o.name
	o.trace.Add(sp)
}

// engineObs is one engine's per-session instrumentation: its process
// histogram and a precomputed pprof label context (session=..., engine=...)
// so CPU profiles attribute hot loops to the session and engine burning
// them. Built once at session instrumentation; per-block application is a
// single runtime label store.
type engineObs struct {
	hist *obs.Histogram
	ctx  context.Context
}

// unlabeledCtx resets goroutine pprof labels after ingest returns the
// worker goroutine to the pool.
var unlabeledCtx = context.Background()

// instrument attaches the server's observability to a session. Called on
// every path that makes a session live: create, restore, unpark.
func (s *Server) instrument(sess *session) {
	sess.obs = s.obs
	sess.engObs = make([]engineObs, len(sess.names))
	sess.engNS = make([]int64, len(sess.names))
	for i, name := range sess.names {
		sess.engObs[i] = engineObs{
			hist: s.obs.engineHist(name),
			ctx: pprof.WithLabels(unlabeledCtx,
				pprof.Labels("session", sess.id, "engine", name)),
		}
	}
}

// traceIDFrom extracts a well-formed trace id from the request, or "".
// Invalid ids are dropped rather than rejected: tracing is best-effort and
// must never fail a request.
func traceIDFrom(r *http.Request) string {
	id := r.Header.Get(obs.HeaderTrace)
	if id == "" || !obs.ValidID(id) {
		return ""
	}
	return id
}

// registerMetrics wires every server-level series into the registry. The
// raced_* names predate the registry and are scraped by smoke scripts and
// dashboards — they are load-bearing, do not rename them.
func (s *Server) registerMetrics() {
	reg := s.obs.reg
	s.eventsIngested = reg.Counter("raced_events_ingested_total", "Events decoded and analyzed across all sessions.")
	s.chunksIngested = reg.Counter("raced_chunks_total", "Chunks accepted and analyzed.")
	s.analyses = reg.Counter("raced_analyses_total", "One-shot /analyze requests served.")
	s.sessionsCreated = reg.Counter("raced_sessions_created_total", "Sessions opened (including restores).")
	s.sessionsFinished = reg.Counter("raced_sessions_finished_total", "Sessions sealed via finish.")
	s.sessionsEvicted = reg.Counter("raced_sessions_evicted_total", "Idle sessions evicted by the janitor.")
	s.shed = reg.Counter("raced_shed_total", "Requests shed with 429 (queue or session-limit pressure).")
	s.chunksReplayed = reg.Counter("raced_chunks_replayed_total", "Chunks that replayed at least one acknowledged event.")
	s.eventsReplayed = reg.Counter("raced_events_replayed_total", "Events decoded but skipped as already acknowledged.")
	s.integrityRejects = reg.Counter("raced_chunk_integrity_rejects_total", "Requests rejected by CRC mismatch (422).")
	s.gapRejects = reg.Counter("raced_chunk_gap_rejects_total", "Chunks or finishes rejected because the client is ahead of the ack.")
	s.sessionsParked = reg.Counter("raced_sessions_pressure_parked_total", "Sessions parked by the memory-pressure ladder.")
	s.sessionsUnparked = reg.Counter("raced_sessions_unparked_total", "Parked sessions transparently restored on touch.")
	s.epochRejects = reg.Counter("raced_epoch_rejects_total", "Mutating requests rejected with 412 for carrying a stale coordinator epoch.")

	reg.GaugeFunc("raced_sessions_active", "Open in-memory sessions.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.sessions))
	})
	reg.GaugeFunc("raced_sessions_parked", "Sessions parked in memory under pressure.", func() float64 {
		s.parkedMu.Lock()
		defer s.parkedMu.Unlock()
		return float64(len(s.parked))
	})
	reg.GaugeFunc("raced_queue_depth", "Scheduler tasks pending (not yet running).", func() float64 {
		return float64(s.sched.QueueDepth())
	})
	reg.GaugeFunc("raced_queue_cap", "Scheduler pending-task capacity.", func() float64 {
		return float64(s.sched.QueueCap())
	})
	reg.GaugeFunc("raced_tasks_running", "Scheduler tasks currently executing.", func() float64 {
		return float64(s.sched.Running())
	})
	reg.GaugeFunc("raced_sched_workers", "Scheduler worker-pool size.", func() float64 {
		return float64(s.sched.Workers())
	})
	reg.GaugeFunc("raced_state_bytes", "Summed detector-state estimate across open sessions.", func() float64 {
		return float64(s.stateTotal.Load())
	})
	reg.GaugeFunc("raced_arena_leaked_refs", "Pooled clock allocations sealed sessions failed to return (0 unless a detector leaks).", func() float64 {
		return float64(s.arenaLeakedRefs.Load())
	})
	reg.GaugeFunc("raced_uptime_seconds", "Seconds since this process started serving.", func() float64 {
		return time.Since(s.start).Seconds()
	})
	reg.GaugeFunc("raced_coordinator_epoch", "Highest coordinator fencing epoch this worker has seen (0 when single-node).", func() float64 {
		return float64(s.coordEpoch.Load())
	})
	reg.GaugeFunc("raced_report_classes", "Distinct race classes in the dedup store.", func() float64 {
		return float64(s.store.Len())
	})
	reg.CounterFunc("raced_report_observations_total", "Race observations folded into the dedup store.", func() uint64 {
		return uint64(s.store.Observations())
	})
}

// --- debug endpoints ---

// handleDebugTrace (GET /debug/trace/{id}) returns every retained span of
// one request trace, ordered by start time.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !obs.ValidID(id) {
		writeError(w, http.StatusBadRequest, "bad trace id %q", id)
		return
	}
	spans := s.obs.trace.ByTrace(id)
	if spans == nil {
		spans = []obs.Span{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"trace": id, "spans": spans})
}

// handleDebugSession (GET /debug/sessions/{id}) returns one session's
// lifecycle timeline: every retained span attributed to it, across all the
// traces that touched it.
func (s *Server) handleDebugSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validSessionID(id) {
		writeError(w, http.StatusBadRequest, "bad session id %q", id)
		return
	}
	spans := s.obs.trace.BySession(id)
	if spans == nil {
		spans = []obs.Span{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "spans": spans})
}
