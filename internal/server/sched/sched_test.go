package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPerKeyOrdering: tasks of one key run strictly in submission order,
// even with many workers free and many keys interleaved.
func TestPerKeyOrdering(t *testing.T) {
	s := New(Config{Workers: 8, QueueCap: 10000})
	const keys, perKey = 10, 200
	got := make([][]int, keys)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		for i := 0; i < perKey; i++ {
			k, i := k, i
			wg.Add(1)
			if err := s.Submit(fmt.Sprintf("key-%d", k), func() {
				defer wg.Done()
				mu.Lock()
				got[k] = append(got[k], i)
				mu.Unlock()
			}); err != nil {
				t.Fatalf("Submit(key-%d, %d) = %v", k, i, err)
			}
		}
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if len(got[k]) != perKey {
			t.Fatalf("key %d ran %d tasks, want %d", k, len(got[k]), perKey)
		}
		for i, v := range got[k] {
			if v != i {
				t.Fatalf("key %d task order %v: position %d holds %d", k, got[k][:i+1], i, v)
			}
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPerKeySerialization: two tasks of the same key never overlap in time;
// tasks of different keys do run concurrently.
func TestPerKeySerialization(t *testing.T) {
	s := New(Config{Workers: 4, QueueCap: 100})
	defer s.Drain(context.Background())

	var inKey atomic.Int32 // concurrent tasks within the serialized key
	var maxKey atomic.Int32
	var inAll atomic.Int32 // concurrent tasks overall
	var maxAll atomic.Int32
	bump := func(in, max *atomic.Int32) {
		n := in.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
	}
	var wg sync.WaitGroup
	task := func(key bool) func() {
		return func() {
			defer wg.Done()
			if key {
				bump(&inKey, &maxKey)
				defer inKey.Add(-1)
			}
			bump(&inAll, &maxAll)
			defer inAll.Add(-1)
			time.Sleep(2 * time.Millisecond)
		}
	}
	for i := 0; i < 20; i++ {
		wg.Add(1)
		if err := s.Submit("serial", task(true)); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		if err := s.Submit(fmt.Sprintf("other-%d", i), task(false)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if maxKey.Load() != 1 {
		t.Errorf("max concurrency within one key = %d, want 1", maxKey.Load())
	}
	if maxAll.Load() < 2 {
		t.Errorf("max overall concurrency = %d, want >= 2 (different keys in parallel)", maxAll.Load())
	}
	if maxAll.Load() > 4 {
		t.Errorf("max overall concurrency = %d exceeds the %d-worker cap", maxAll.Load(), 4)
	}
}

// TestSaturation: with the single worker blocked, submissions beyond
// QueueCap fail fast with ErrSaturated, and the queue recovers once the
// worker is released.
func TestSaturation(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 3})
	gate := make(chan struct{})
	var done sync.WaitGroup
	done.Add(1)
	if err := s.Submit("blocker", func() { defer done.Done(); <-gate }); err != nil {
		t.Fatal(err)
	}
	// Wait until the blocker occupies the worker (pending drops to 0).
	for i := 0; s.QueueDepth() != 0 || s.Running() != 1; i++ {
		if i > 1000 {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Fill the queue exactly to capacity…
	for i := 0; i < 3; i++ {
		done.Add(1)
		if err := s.Submit(fmt.Sprintf("k%d", i), func() { done.Done() }); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	// …then every further submission is shed, on any key.
	for _, key := range []string{"k0", "fresh"} {
		if err := s.Submit(key, func() {}); !errors.Is(err, ErrSaturated) {
			t.Errorf("Submit(%q) over capacity = %v, want ErrSaturated", key, err)
		}
	}
	if got := s.QueueDepth(); got != 3 {
		t.Errorf("QueueDepth = %d, want 3", got)
	}
	close(gate)
	done.Wait()
	// Capacity is available again.
	if err := s.Do(context.Background(), "after", func() {}); err != nil {
		t.Errorf("Submit after recovery = %v", err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDrainCompletesBacklog: Drain rejects new work but every task accepted
// before the drain runs to completion.
func TestDrainCompletesBacklog(t *testing.T) {
	s := New(Config{Workers: 2, QueueCap: 1000})
	var ran atomic.Int32
	const n = 500
	for i := 0; i < n; i++ {
		if err := s.Submit(fmt.Sprintf("k%d", i%7), func() {
			time.Sleep(50 * time.Microsecond)
			ran.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != n {
		t.Errorf("drain completed with %d/%d tasks run", got, n)
	}
	if err := s.Submit("late", func() {}); !errors.Is(err, ErrDraining) {
		t.Errorf("Submit after Drain = %v, want ErrDraining", err)
	}
	// Idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second Drain = %v", err)
	}
}

// TestDrainTimeout: a context that expires while tasks are still running
// surfaces as ctx.Err() without wedging the scheduler.
func TestDrainTimeout(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 10})
	gate := make(chan struct{})
	if err := s.Submit("slow", func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Drain = %v, want DeadlineExceeded", err)
	}
	close(gate)
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("follow-up Drain = %v", err)
	}
}

// TestDoWaits: Do returns only after the task ran; a context canceled
// while the task is still queued withdraws it — the task NEVER runs (the
// caller's resources, like an HTTP body, are released on return).
func TestDoWaits(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 10})
	defer s.Drain(context.Background())
	ran := false
	if err := s.Do(context.Background(), "k", func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("Do returned before the task ran")
	}

	gate := make(chan struct{})
	released := make(chan struct{})
	if err := s.Submit("k", func() { <-gate; close(released) }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var withdrawn atomic.Bool
	if err := s.Do(ctx, "k", func() { withdrawn.Store(true) }); !errors.Is(err, context.Canceled) {
		t.Errorf("Do with canceled ctx = %v, want context.Canceled", err)
	}
	// Release the worker and let the queue fully drain: the withdrawn task
	// must not have run.
	close(gate)
	<-released
	if err := s.Do(context.Background(), "k", func() {}); err != nil {
		t.Fatal(err)
	}
	if withdrawn.Load() {
		t.Error("task withdrawn by cancellation still ran")
	}
}
