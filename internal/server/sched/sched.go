// Package sched is the raced server's admission layer: a bounded worker
// scheduler with per-key serialization. Tasks submitted under the same key
// (a session id) run one at a time, in submission order, so a session's
// trace chunks are analyzed sequentially even when clients pipeline
// requests; tasks under different keys share a fixed pool of workers.
// The queue of not-yet-running tasks is bounded — a full queue rejects with
// ErrSaturated, which the HTTP layer turns into 429/Retry-After — so load
// shedding happens at admission instead of by unbounded queue growth.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

var (
	// ErrSaturated is returned by Submit when the pending-task queue is at
	// capacity; the caller should shed the work (HTTP 429) and retry later.
	ErrSaturated = errors.New("sched: queue saturated")
	// ErrDraining is returned by Submit after Drain has begun.
	ErrDraining = errors.New("sched: scheduler is draining")
)

// Config sizes a Scheduler. The zero value picks usable defaults.
type Config struct {
	// Workers caps concurrently-running tasks; defaults to GOMAXPROCS.
	Workers int
	// QueueCap caps pending (submitted, not yet running) tasks across all
	// keys; defaults to 4× Workers.
	QueueCap int
	// WaitObserve, when non-nil, receives every task's queue wait — the
	// time between submission and dispatch. Queue *depth* alone cannot
	// distinguish a deep-but-fast queue from a shallow-but-stuck one; the
	// wait distribution can. Called on a worker goroutine just before the
	// task runs; must be cheap and non-blocking.
	WaitObserve func(time.Duration)
}

// task is one pending unit of work plus its submission time, so dispatch
// can report how long it sat in the queue.
type task struct {
	fn  func()
	enq time.Time
}

// keyQueue is the FIFO of pending tasks of one key. A key with a running
// task keeps its queue registered (running=true) so later submissions stay
// serialized behind it; the queue is deleted once it is empty and idle.
type keyQueue struct {
	key     string
	tasks   []task
	running bool
	ready   bool // queued in Scheduler.ready
}

// Scheduler dispatches per-key serial FIFO tasks onto a bounded worker
// pool. Create with New; Submit from any goroutine.
type Scheduler struct {
	workers     int
	queueCap    int
	waitObserve func(time.Duration)

	mu       sync.Mutex
	cond     *sync.Cond
	keys     map[string]*keyQueue
	ready    []*keyQueue // keys with pending tasks, none running
	pending  int         // total pending tasks across keys
	running  int         // tasks currently executing
	draining bool
	wg       sync.WaitGroup
}

// New starts a scheduler with cfg's worker pool.
func New(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4 * cfg.Workers
	}
	s := &Scheduler{
		workers:     cfg.Workers,
		queueCap:    cfg.QueueCap,
		waitObserve: cfg.WaitObserve,
		keys:        make(map[string]*keyQueue),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(s.workers)
	for i := 0; i < s.workers; i++ {
		go s.worker()
	}
	return s
}

// Submit enqueues fn under key. Tasks of one key run serially in submission
// order; tasks of different keys run concurrently up to the worker cap. It
// fails fast with ErrSaturated when the pending queue is full and
// ErrDraining after Drain has begun — it never blocks on a full queue.
func (s *Scheduler) Submit(key string, fn func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if s.pending >= s.queueCap {
		return ErrSaturated
	}
	q := s.keys[key]
	if q == nil {
		q = &keyQueue{key: key}
		s.keys[key] = q
	}
	q.tasks = append(q.tasks, task{fn: fn, enq: time.Now()})
	s.pending++
	s.makeReady(q)
	return nil
}

// Do submits fn under key and waits for it to finish — the synchronous form
// HTTP handlers use so resources owned by the request (its body) outlive
// the task. The contract on cancellation preserves that ownership: a
// context canceled while the task is still queued withdraws it (fn never
// runs, Do returns ctx.Err()); once fn has started, Do waits for it to
// finish regardless of the context, so fn never outlives Do.
func (s *Scheduler) Do(ctx context.Context, key string, fn func()) error {
	done := make(chan struct{})
	var started atomic.Bool
	err := s.Submit(key, func() {
		if !started.CompareAndSwap(false, true) {
			return // withdrawn by cancellation before it was popped
		}
		defer close(done)
		fn()
	})
	if err != nil {
		return err
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		if started.CompareAndSwap(false, true) {
			return ctx.Err() // withdrew the queued task; fn will not run
		}
		<-done // fn is mid-flight: its resources are still in use, wait
		return nil
	}
}

// makeReady queues q for dispatch if it has work and no running task.
// Callers hold s.mu.
func (s *Scheduler) makeReady(q *keyQueue) {
	if q.ready || q.running || len(q.tasks) == 0 {
		return
	}
	q.ready = true
	s.ready = append(s.ready, q)
	s.cond.Signal()
}

// worker is the dispatch loop: pop a ready key, run its head task, requeue
// or retire the key.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for len(s.ready) == 0 {
			if s.draining && s.pending == 0 {
				s.mu.Unlock()
				s.cond.Broadcast() // wake siblings so they exit too
				return
			}
			s.cond.Wait()
		}
		q := s.ready[0]
		s.ready = s.ready[1:]
		q.ready = false
		tk := q.tasks[0]
		q.tasks[0] = task{} // allow collection while the task runs
		q.tasks = q.tasks[1:]
		q.running = true
		s.pending--
		s.running++
		s.mu.Unlock()

		if s.waitObserve != nil {
			s.waitObserve(time.Since(tk.enq))
		}
		tk.fn()

		s.mu.Lock()
		s.running--
		q.running = false
		if len(q.tasks) > 0 {
			s.makeReady(q)
		} else {
			delete(s.keys, q.key)
		}
	}
}

// QueueDepth returns the number of pending (not yet running) tasks.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// Workers returns the size of the worker pool.
func (s *Scheduler) Workers() int { return s.workers }

// QueueCap returns the pending-task queue capacity.
func (s *Scheduler) QueueCap() int { return s.queueCap }

// Draining reports whether Drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Running returns the number of tasks currently executing.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Drain stops admission (Submit fails with ErrDraining) and waits until
// every already-accepted task has finished. It returns ctx.Err() if the
// context expires first; the workers keep finishing the backlog in the
// background in that case. Drain is idempotent.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cond.Broadcast()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
