package report

import (
	"io"
	"time"

	"repro/internal/snap"
)

// Snapshot codec for the deduplicated report store. Unlike the detector
// snapshots this is not a delta: the store is small (one entry per distinct
// race class), so a checkpoint serializes every entry exactly — counts,
// observation bracket, first-seen order — and restore reconstructs the
// entries directly rather than replaying Add calls.

const (
	maxStoreEntries = 1 << 24
	maxStoreString  = 1 << 16
)

// Snapshot writes the store as one snap frame.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sw := snap.NewWriter(w)
	sw.Varint(s.obs)
	sw.Uvarint(uint64(len(s.order)))
	for _, fp := range s.order {
		e := s.m[fp]
		sw.String(e.Engine)
		sw.String(e.LocA)
		sw.String(e.LocB)
		sw.String(e.Var)
		sw.String(e.Locks)
		sw.Varint(e.Count)
		sw.Varint(e.Traces)
		sw.Int(e.MaxDistance)
		sw.Varint(e.FirstSeen.UnixNano())
		sw.Varint(e.LastSeen.UnixNano())
		sw.String(e.FirstSource)
	}
	return sw.Close()
}

// RestoreStore reads one store frame written by Snapshot. Malformed input
// fails with a *snap.DecodeError.
func RestoreStore(r io.Reader) (*Store, error) {
	rd, err := snap.NewReader(r)
	if err != nil {
		return nil, err
	}
	s := NewStore()
	if s.obs, err = rd.Varint(); err != nil {
		return nil, err
	}
	n, err := rd.Count(maxStoreEntries)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		e := &Entry{}
		if e.Engine, err = rd.String(maxStoreString); err != nil {
			return nil, err
		}
		if e.LocA, err = rd.String(maxStoreString); err != nil {
			return nil, err
		}
		if e.LocB, err = rd.String(maxStoreString); err != nil {
			return nil, err
		}
		if e.Var, err = rd.String(maxStoreString); err != nil {
			return nil, err
		}
		if e.Locks, err = rd.String(maxStoreString); err != nil {
			return nil, err
		}
		if e.Count, err = rd.Varint(); err != nil {
			return nil, err
		}
		if e.Traces, err = rd.Varint(); err != nil {
			return nil, err
		}
		if e.MaxDistance, err = rd.Int(); err != nil {
			return nil, err
		}
		first, err := rd.Varint()
		if err != nil {
			return nil, err
		}
		last, err := rd.Varint()
		if err != nil {
			return nil, err
		}
		e.FirstSeen = time.Unix(0, first).UTC()
		e.LastSeen = time.Unix(0, last).UTC()
		if e.FirstSource, err = rd.String(maxStoreString); err != nil {
			return nil, err
		}
		if _, dup := s.m[e.Fingerprint]; dup {
			return nil, &snap.DecodeError{Reason: "duplicate store entry"}
		}
		s.m[e.Fingerprint] = e
		s.order = append(s.order, e.Fingerprint)
	}
	if err := rd.Close(); err != nil {
		return nil, err
	}
	return s, nil
}
