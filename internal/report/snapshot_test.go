package report

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

func TestStoreSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	base := time.Unix(1700000000, 123).UTC()
	fps := []Fingerprint{
		{Engine: "wcp", LocA: "a.go:1", LocB: "b.go:2", Var: "x", Locks: "l0,l1"},
		{Engine: "hb", LocA: "a.go:1", LocB: "c.go:9"},
		{Engine: "wcp", LocA: "d.go:4", LocB: "d.go:4", Var: "y"},
	}
	s.Add(fps[0], 5, 17, "trace-1", base)
	s.Add(fps[1], 1, 2, "trace-1", base.Add(time.Second))
	s.Add(fps[0], 3, 40, "trace-2", base.Add(2*time.Second))
	s.Add(fps[2], 2, 8, "trace-2", base.Add(3*time.Second))

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	got, err := RestoreStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got.Observations() != s.Observations() {
		t.Fatalf("observations %d, want %d", got.Observations(), s.Observations())
	}
	want, have := s.List(Filter{}), got.List(Filter{})
	if !reflect.DeepEqual(want, have) {
		t.Fatalf("entries diverge:\nwant %+v\n got %+v", want, have)
	}

	// The codec is canonical: re-snapshotting the restored store reproduces
	// the original bytes, so checkpoints are stable across restarts.
	var again bytes.Buffer
	if err := got.Snapshot(&again); err != nil {
		t.Fatalf("resnap: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("resnap differs: %d vs %d bytes", buf.Len(), again.Len())
	}

	// The restored store keeps accumulating correctly.
	if created := got.Add(fps[1], 1, 2, "trace-3", base.Add(4*time.Second)); created {
		t.Fatalf("existing class reported as new after restore")
	}
	if created := got.Add(Fingerprint{Engine: "wcp", LocA: "z.go:1", LocB: "z.go:2"}, 1, 0, "trace-3", base); !created {
		t.Fatalf("new class not detected after restore")
	}
}

func TestStoreSnapshotEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewStore().Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	s, err := RestoreStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if s.Len() != 0 || s.Observations() != 0 {
		t.Fatalf("restored empty store has %d entries, %d observations", s.Len(), s.Observations())
	}
}

func TestStoreSnapshotRejectsCorruption(t *testing.T) {
	s := NewStore()
	s.Add(Fingerprint{Engine: "wcp", LocA: "a", LocB: "b"}, 1, 0, "t", time.Unix(1, 0).UTC())
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	b := buf.Bytes()
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x10
		if _, err := RestoreStore(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at byte %d decoded cleanly", i)
		}
	}
	for n := 0; n < len(b); n++ {
		if _, err := RestoreStore(bytes.NewReader(b[:n])); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
}
