// Package report turns per-trace race reports into deduplicated,
// fingerprinted race classes. A Fingerprint identifies "the same race"
// across sessions, traces and restarts by stable symbolic inputs — the
// reporting engine, the two program locations, the racy variable, and the
// lock context at first observation — so an always-on analysis service
// (cmd/raced) can collapse millions of observations of one bug into a
// single counted entry. The Store is safe for concurrent use by many
// ingestion sessions.
package report

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/race"
)

// Fingerprint identifies a deduplicated race class. All fields are
// symbolized names, not dense indices, so fingerprints are stable across
// traces that intern their symbols in different orders.
type Fingerprint struct {
	// Engine is the engine that predicted the race ("wcp", "hb", ...).
	Engine string `json:"engine"`
	// LocA and LocB are the racing program locations, sorted (LocA <= LocB)
	// so the fingerprint is order-independent.
	LocA string `json:"loc_a"`
	LocB string `json:"loc_b"`
	// Var is the variable both accesses touch, "" when the recording
	// detector didn't supply one.
	Var string `json:"var,omitempty"`
	// Locks is the sorted ","-joined lock context of the first observation,
	// "" when none.
	Locks string `json:"locks,omitempty"`
}

// Entry is one race class with its accumulated observations.
type Entry struct {
	Fingerprint
	// Count is the total number of racy event pairs folded into this class.
	Count int64 `json:"count"`
	// Traces is the number of distinct ingestions (sessions or one-shot
	// analyses) that reported the class.
	Traces int64 `json:"traces"`
	// MaxDistance is the largest race distance observed (§4.3).
	MaxDistance int `json:"max_distance"`
	// FirstSeen and LastSeen bracket the class's observations.
	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
	// FirstSource names the ingestion that first reported the class.
	FirstSource string `json:"first_source,omitempty"`
}

// NewFingerprint builds the fingerprint of one race pair using the symbol
// table that named it.
func NewFingerprint(engine string, p race.Pair, info *race.Info, syms *event.Symbols) Fingerprint {
	f := Fingerprint{
		Engine: engine,
		LocA:   syms.LocationName(p.A),
		LocB:   syms.LocationName(p.B),
	}
	if f.LocB < f.LocA {
		f.LocA, f.LocB = f.LocB, f.LocA
	}
	if info != nil {
		if info.Var >= 0 {
			f.Var = syms.VarName(info.Var)
		}
		if len(info.Locks) > 0 {
			names := make([]string, len(info.Locks))
			for i, l := range info.Locks {
				names[i] = syms.LockName(l)
			}
			sort.Strings(names)
			f.Locks = strings.Join(names, ",")
		}
	}
	return f
}

// Store is a concurrent deduplicating set of race classes.
type Store struct {
	mu    sync.RWMutex
	m     map[Fingerprint]*Entry
	order []Fingerprint // first-seen order
	obs   int64         // total observations folded in
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{m: make(map[Fingerprint]*Entry)}
}

// Add folds one race pair into the store and reports whether it created a
// new class.
func (s *Store) Add(f Fingerprint, count int64, maxDistance int, source string, at time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs += count
	e, ok := s.m[f]
	if !ok {
		s.m[f] = &Entry{
			Fingerprint: f,
			Count:       count,
			Traces:      1,
			MaxDistance: maxDistance,
			FirstSeen:   at,
			LastSeen:    at,
			FirstSource: source,
		}
		s.order = append(s.order, f)
		return true
	}
	e.Count += count
	e.Traces++
	if maxDistance > e.MaxDistance {
		e.MaxDistance = maxDistance
	}
	e.LastSeen = at
	return false
}

// AddReport folds every distinct pair of one engine's per-trace report into
// the store, returning how many new classes it created. A nil or empty
// report is a no-op.
func (s *Store) AddReport(engine, source string, rep *race.Report, syms *event.Symbols, at time.Time) (created int) {
	if rep == nil {
		return 0
	}
	for _, p := range rep.Pairs() {
		info := rep.Info(p)
		f := NewFingerprint(engine, p, info, syms)
		if s.Add(f, int64(info.Count), info.MaxDistance, source, at) {
			created++
		}
	}
	return created
}

// Len returns the number of distinct race classes.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Observations returns the total number of racy event pairs folded in.
func (s *Store) Observations() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.obs
}

// Filter selects race classes in List. The zero value selects everything.
type Filter struct {
	// Engine, when non-empty, matches Entry.Engine exactly.
	Engine string
	// Loc, when non-empty, matches entries where either location contains
	// the substring.
	Loc string
	// Var, when non-empty, matches Entry.Var exactly.
	Var string
	// MinCount drops classes observed fewer than MinCount times.
	MinCount int64
	// Limit caps the number of returned entries; <= 0 is unlimited.
	Limit int
}

func (f Filter) match(e *Entry) bool {
	if f.Engine != "" && e.Engine != f.Engine {
		return false
	}
	if f.Var != "" && e.Var != f.Var {
		return false
	}
	if f.Loc != "" && !strings.Contains(e.LocA, f.Loc) && !strings.Contains(e.LocB, f.Loc) {
		return false
	}
	return e.Count >= f.MinCount
}

// List returns snapshot copies of the matching entries in first-seen order.
func (s *Store) List(f Filter) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Entry
	for _, fp := range s.order {
		e := s.m[fp]
		if !f.match(e) {
			continue
		}
		out = append(out, *e)
		if f.Limit > 0 && len(out) == f.Limit {
			break
		}
	}
	return out
}
