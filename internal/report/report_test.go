package report

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/race"
	"repro/internal/trace"
)

// twoThreadRacyTrace builds a trace with an unprotected write-write race on
// x (two locations) and a lock-protected non-race on y.
func twoThreadRacyTrace() *trace.Trace {
	b := trace.NewBuilder()
	b.At("L1").Write("t1", "x")
	b.At("L4").Acquire("t1", "m")
	b.At("L5").Write("t1", "y")
	b.At("L6").Release("t1", "m")
	b.At("L2").Write("t2", "x")
	b.At("L4").Acquire("t2", "m")
	b.At("L5").Write("t2", "y")
	b.At("L6").Release("t2", "m")
	return b.Build()
}

func TestFingerprintStableAcrossInterningOrder(t *testing.T) {
	// Two symbol tables interning the same names in different orders must
	// fingerprint identically.
	s1, s2 := &event.Symbols{}, &event.Symbols{}
	a1, b1 := s1.Location("f.go:10"), s1.Location("g.go:20")
	v1 := s1.Var("x")
	// Reverse interning order.
	b2, a2 := s2.Location("g.go:20"), s2.Location("f.go:10")
	v2 := s2.Var("x")

	i1 := &race.Info{Var: v1}
	i2 := &race.Info{Var: v2}
	f1 := NewFingerprint("wcp", race.MakePair(a1, b1), i1, s1)
	f2 := NewFingerprint("wcp", race.MakePair(b2, a2), i2, s2)
	if f1 != f2 {
		t.Errorf("fingerprints differ across interning orders:\n%+v\n%+v", f1, f2)
	}
}

func TestFingerprintFromDetector(t *testing.T) {
	tr := twoThreadRacyTrace()
	res := core.Detect(tr)
	if res.Report.Distinct() == 0 {
		t.Fatal("expected a race")
	}
	s := NewStore()
	if created := s.AddReport("wcp", "test", res.Report, tr.Symbols, time.Unix(0, 0)); created != res.Report.Distinct() {
		t.Fatalf("created %d classes, want %d", created, res.Report.Distinct())
	}
	entries := s.List(Filter{})
	for _, e := range entries {
		if e.Var != "x" {
			t.Errorf("entry %+v: Var = %q, want \"x\" (the racy variable)", e.Fingerprint, e.Var)
		}
	}
}

func TestStoreDedupAcrossSources(t *testing.T) {
	tr := twoThreadRacyTrace()
	rep := core.Detect(tr).Report
	s := NewStore()
	at := time.Unix(100, 0)
	for i := 0; i < 5; i++ {
		s.AddReport("wcp", fmt.Sprintf("session-%d", i), rep, tr.Symbols, at.Add(time.Duration(i)*time.Second))
	}
	if s.Len() != rep.Distinct() {
		t.Fatalf("store holds %d classes after 5 identical reports, want %d", s.Len(), rep.Distinct())
	}
	for _, e := range s.List(Filter{}) {
		if e.Traces != 5 {
			t.Errorf("%+v: Traces = %d, want 5", e.Fingerprint, e.Traces)
		}
		if e.FirstSource != "session-0" {
			t.Errorf("%+v: FirstSource = %q, want session-0", e.Fingerprint, e.FirstSource)
		}
		if !e.LastSeen.After(e.FirstSeen) {
			t.Errorf("%+v: LastSeen %v not after FirstSeen %v", e.Fingerprint, e.LastSeen, e.FirstSeen)
		}
	}
	// A different engine for the same pair is a distinct class.
	s.AddReport("hb", "session-x", rep, tr.Symbols, at)
	if s.Len() != 2*rep.Distinct() {
		t.Errorf("store holds %d classes after a second engine, want %d", s.Len(), 2*rep.Distinct())
	}
}

func TestStoreFilters(t *testing.T) {
	s := NewStore()
	at := time.Unix(0, 0)
	add := func(engine, locA, locB, v string, n int64) {
		s.Add(Fingerprint{Engine: engine, LocA: locA, LocB: locB, Var: v}, n, 0, "src", at)
	}
	add("wcp", "a.go:1", "b.go:2", "x", 10)
	add("hb", "a.go:1", "b.go:2", "x", 3)
	add("wcp", "c.go:3", "d.go:4", "y", 1)

	if got := s.List(Filter{Engine: "wcp"}); len(got) != 2 {
		t.Errorf("Engine filter: %d entries, want 2", len(got))
	}
	if got := s.List(Filter{Var: "y"}); len(got) != 1 || got[0].LocA != "c.go:3" {
		t.Errorf("Var filter: %+v", got)
	}
	if got := s.List(Filter{Loc: "b.go"}); len(got) != 2 {
		t.Errorf("Loc filter: %d entries, want 2", len(got))
	}
	if got := s.List(Filter{MinCount: 5}); len(got) != 1 || got[0].Count != 10 {
		t.Errorf("MinCount filter: %+v", got)
	}
	if got := s.List(Filter{Limit: 1}); len(got) != 1 {
		t.Errorf("Limit: %d entries, want 1", len(got))
	}
	if got, want := s.Observations(), int64(14); got != want {
		t.Errorf("Observations = %d, want %d", got, want)
	}
}

// TestStoreConcurrent hammers the store from many goroutines; run under
// -race this is the concurrency contract.
func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f := Fingerprint{Engine: "wcp", LocA: fmt.Sprintf("L%d", i%17), LocB: "R"}
				s.Add(f, 1, i, fmt.Sprintf("g%d", g), time.Unix(int64(i), 0))
				s.List(Filter{Engine: "wcp", Limit: 5})
				s.Len()
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 17 {
		t.Errorf("Len = %d, want 17", s.Len())
	}
	if s.Observations() != 8*200 {
		t.Errorf("Observations = %d, want %d", s.Observations(), 8*200)
	}
}
