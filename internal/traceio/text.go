// Package traceio reads and writes traces in two formats:
//
//   - a line-oriented text format modeled on the RAPID/RVPredict "std"
//     logs the paper's tool consumes: one event per line,
//     "thread|op(operand)|location", e.g. "t1|acq(l)|Main.java:17";
//   - a compact length-prefixed binary format for large generated traces.
//
// Both formats round-trip exactly (symbol names and order included), and a
// streaming Scanner supports the online analysis mode the paper emphasizes
// (§3.2, "Our algorithm works in a streaming fashion").
package traceio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/event"
	"repro/internal/trace"
)

// ParseError reports a malformed line in the text format.
type ParseError struct {
	Line int    // 1-based line number
	Text string // offending line
	Err  error  // underlying reason
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("traceio: line %d %q: %v", e.Line, e.Text, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

var kindByName = map[string]event.Kind{
	"acq":     event.Acquire,
	"acquire": event.Acquire,
	"rel":     event.Release,
	"release": event.Release,
	"r":       event.Read,
	"read":    event.Read,
	"w":       event.Write,
	"write":   event.Write,
	"fork":    event.Fork,
	"join":    event.Join,
}

// parseLine parses "thread|op(operand)|loc". The location field is optional.
func parseLine(line string, syms *event.Symbols) (event.Event, error) {
	parts := strings.Split(line, "|")
	if len(parts) != 2 && len(parts) != 3 {
		return event.Event{}, fmt.Errorf("want 2 or 3 '|'-separated fields, got %d", len(parts))
	}
	threadName := strings.TrimSpace(parts[0])
	if threadName == "" {
		return event.Event{}, fmt.Errorf("empty thread name")
	}
	op := strings.TrimSpace(parts[1])
	open := strings.IndexByte(op, '(')
	if open < 0 || !strings.HasSuffix(op, ")") {
		return event.Event{}, fmt.Errorf("operation %q is not of the form op(operand)", op)
	}
	opName := op[:open]
	operand := op[open+1 : len(op)-1]
	kind, ok := kindByName[opName]
	if !ok {
		return event.Event{}, fmt.Errorf("unknown operation %q", opName)
	}
	if operand == "" {
		return event.Event{}, fmt.Errorf("empty operand in %q", op)
	}
	loc := event.NoLoc
	if len(parts) == 3 {
		if l := strings.TrimSpace(parts[2]); l != "" {
			loc = syms.Location(l)
		}
	}
	e := event.Event{Kind: kind, Thread: syms.Thread(threadName), Loc: loc}
	switch kind {
	case event.Acquire, event.Release:
		e.Obj = int32(syms.Lock(operand))
	case event.Read, event.Write:
		e.Obj = int32(syms.Var(operand))
	case event.Fork, event.Join:
		e.Obj = int32(syms.Thread(operand))
	}
	return e, nil
}

// parseEventsHeader recognizes the "# events N" header comment, which lets
// ReadText pre-size the event slice (the binary format's header always
// carries the count) and streaming consumers size buffers up front.
func parseEventsHeader(line string) (int, bool) {
	rest, ok := strings.CutPrefix(line, "#")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutPrefix(strings.TrimSpace(rest), "events")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(rest))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// parseSymbolsHeader recognizes the "# symbols T L V P" header comment
// carrying the trace's symbol-universe sizes (threads, locks, variables,
// locations), which lets readers pre-size the intern tables so decoding
// never rehashes them mid-stream.
func parseSymbolsHeader(line string) (counts [4]int, ok bool) {
	rest, found := strings.CutPrefix(line, "#")
	if !found {
		return counts, false
	}
	rest, found = strings.CutPrefix(strings.TrimSpace(rest), "symbols")
	if !found {
		return counts, false
	}
	fields := strings.Fields(rest)
	if len(fields) != len(counts) {
		return counts, false
	}
	for i, f := range fields {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			return counts, false
		}
		counts[i] = n
	}
	return counts, true
}

// ReadText parses a whole text-format trace from r. A "# events N" header
// comment, when present before the first event, pre-sizes the event slice;
// a "# symbols T L V P" comment pre-sizes the intern tables.
func ReadText(r io.Reader) (*trace.Trace, error) {
	syms := &event.Symbols{}
	tr := &trace.Trace{Symbols: syms}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			if tr.Events == nil {
				if n, ok := parseEventsHeader(line); ok {
					tr.Events = make([]event.Event, 0, n)
				}
				if c, ok := parseSymbolsHeader(line); ok {
					syms.Preallocate(c[0], c[1], c[2], c[3])
				}
			}
			continue
		}
		e, err := parseLine(line, syms)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Err: err}
		}
		tr.Events = append(tr.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	return tr, nil
}

// WriteText writes tr to w in the text format, one event per line, preceded
// by "# events N" and "# symbols T L V P" header comments so readers can
// pre-size their event buffers and intern tables.
func WriteText(w io.Writer, tr *trace.Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# events %d\n", len(tr.Events)); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	if _, err := fmt.Fprintf(bw, "# symbols %d %d %d %d\n",
		tr.Symbols.NumThreads(), tr.Symbols.NumLocks(), tr.Symbols.NumVars(), tr.Symbols.NumLocations()); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	for _, e := range tr.Events {
		var operand string
		switch e.Kind {
		case event.Acquire, event.Release:
			operand = tr.Symbols.LockName(e.Lock())
		case event.Read, event.Write:
			operand = tr.Symbols.VarName(e.Var())
		case event.Fork, event.Join:
			operand = tr.Symbols.ThreadName(e.Target())
		}
		if _, err := fmt.Fprintf(bw, "%s|%s(%s)", tr.Symbols.ThreadName(e.Thread), e.Kind, operand); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
		if e.Loc != event.NoLoc {
			if _, err := fmt.Fprintf(bw, "|%s", tr.Symbols.LocationName(e.Loc)); err != nil {
				return fmt.Errorf("traceio: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	return nil
}

// Scanner streams events from a text-format trace without materializing the
// whole trace, for online analysis. Symbol interning is shared across the
// scan via Symbols.
type Scanner struct {
	sc     *bufio.Scanner
	syms   *event.Symbols
	ev     event.Event
	err    error
	lineNo int
}

// NewScanner returns a Scanner reading text-format events from r.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &Scanner{sc: sc, syms: &event.Symbols{}}
}

// Symbols returns the symbol table populated by the scan so far.
func (s *Scanner) Symbols() *event.Symbols { return s.syms }

// Scan advances to the next event, reporting false at end of input or on
// error (check Err).
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := parseLine(line, s.syms)
		if err != nil {
			s.err = &ParseError{Line: s.lineNo, Text: line, Err: err}
			return false
		}
		s.ev = ev
		return true
	}
	s.err = s.sc.Err()
	return false
}

// Event returns the event produced by the last successful Scan.
func (s *Scanner) Event() event.Event { return s.ev }

// Err returns the first error encountered, or nil at clean end of input.
func (s *Scanner) Err() error { return s.err }
