package traceio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/event"
	"repro/internal/trace"
)

// DefaultBlockSize is the event-buffer size streaming consumers use when
// they have no better number: large enough to amortize per-block overhead,
// small enough that a block is a rounding error next to detector state.
const DefaultBlockSize = 8192

// Dims are the trace dimensions a streaming consumer needs to size detector
// state up front. Events is -1 when the input does not declare its length
// (a text trace without a "# events N" header).
type Dims struct {
	Threads, Locks, Vars, Locs int
	Events                     int
}

// BlockReader yields successive blocks of trace events into a caller-owned
// buffer, the streaming-ingestion contract of this package: the caller
// reuses one buffer for the whole scan, so decoding a trace of any length
// allocates O(block), not O(trace).
type BlockReader interface {
	// NextBlock fills buf with the next events of the trace, returning how
	// many were decoded. It returns n > 0 with a nil error until the trace
	// is exhausted, then 0 with io.EOF. Any other error is a decode error;
	// buf contents beyond n are unspecified.
	NextBlock(buf []event.Event) (n int, err error)
}

// Stream decodes a trace incrementally, block by block, without ever
// materializing the whole event sequence. Binary streams carry their full
// symbol universe and event count in the header, so Dims reports complete
// dimensions before the first block; text streams intern symbols as lines
// are scanned, so Dims only learns the universe as the scan progresses
// (Events is known up front when a "# events N" header comment is present).
//
// Stream also tallies the event mix as it decodes: Stats is the streaming
// replacement for trace.ComputeStats over a materialized trace.
type Stream struct {
	syms   *event.Symbols
	binary bool
	dims   Dims   // binary only; text dims come from syms as the scan runs
	path   string // source file, when known, for decode-error context

	// binary state
	bin       *binaryReader
	counts    [4]uint64
	decoded   uint64
	remaining uint64
	// unbounded marks a headerless event-body stream (NewEventStream): the
	// body ends cleanly at the first event boundary where input runs out,
	// instead of after a declared count.
	unbounded bool

	// text state
	sc     *bufio.Scanner
	lineNo int
	tally  trace.Stats

	closer io.Closer
	err    error
}

// OpenStream starts decoding a trace from r, auto-detecting the format: a
// stream beginning with the binary magic is decoded as binary, anything
// else as the line-oriented text format.
func OpenStream(r io.Reader) (*Stream, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(binaryMagic))
	if err == nil && string(magic) == binaryMagic {
		bin := &binaryReader{br: br}
		syms, counts, nev, err := readBinaryHeader(bin)
		if err != nil {
			return nil, err
		}
		return &Stream{
			syms:   syms,
			binary: true,
			dims: Dims{
				Threads: int(counts[0]),
				Locks:   int(counts[1]),
				Vars:    int(counts[2]),
				Locs:    int(counts[3]),
				Events:  int(nev),
			},
			bin:       bin,
			counts:    counts,
			remaining: nev,
		}, nil
	}
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &Stream{
		syms: &event.Symbols{},
		dims: Dims{Events: -1},
		sc:   sc,
	}, nil
}

// StreamFile starts decoding a trace file, auto-detecting the format. The
// returned stream owns the file handle; Close releases it. Decode errors —
// at open and from the block readers — carry the file path, so corpus and
// server logs say where a trace is corrupt.
func StreamFile(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := OpenStream(f)
	if err != nil {
		f.Close()
		return nil, notePath(err, path)
	}
	s.path = path
	s.closer = f
	return s, nil
}

// NewEventStream decodes a headerless binary event body from r: the events
// of a trace whose header (symbol universe) arrived separately, the
// chunked-ingestion path of the raced server. The stream is open-ended —
// it ends cleanly (io.EOF) at the first event boundary where r is
// exhausted; input that runs out mid-event is a *DecodeError whose Offset
// is relative to the start of r's body. base is the index of the body's
// first event in the overall trace (events decoded so far in the session),
// so decode errors report absolute event indices.
func NewEventStream(r io.Reader, h Header, base uint64) *Stream {
	return &Stream{
		syms:      h.Syms,
		binary:    true,
		dims:      h.Dims(),
		bin:       &binaryReader{br: bufio.NewReader(r)},
		counts:    h.counts(),
		decoded:   base,
		unbounded: true,
	}
}

// notePath attaches path to a *DecodeError that does not carry one yet.
func notePath(err error, path string) error {
	if de, ok := err.(*DecodeError); ok && de.Path == "" {
		de.Path = path
	}
	return err
}

// Symbols returns the symbol table: complete up front for binary streams,
// growing with the scan for text streams.
func (s *Stream) Symbols() *event.Symbols { return s.syms }

// Dims returns the trace dimensions and whether they were known up front
// (from a binary header). When known is false, only Dims.Events is
// meaningful (-1, or the "# events N" text header), and the symbol counts
// must be read from Symbols after the scan.
func (s *Stream) Dims() (d Dims, known bool) {
	if s.binary {
		return s.dims, true
	}
	return s.dims, false
}

// Stats returns the event mix tallied so far; after the stream is exhausted
// it matches trace.ComputeStats over the materialized trace.
func (s *Stream) Stats() trace.Stats {
	st := s.tally
	st.Threads = s.syms.NumThreads()
	st.Locks = s.syms.NumLocks()
	st.Vars = s.syms.NumVars()
	return st
}

// NextBlock implements BlockReader.
func (s *Stream) NextBlock(buf []event.Event) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	if len(buf) == 0 {
		// Not latched into s.err: an empty buffer is a caller bug, not a
		// stream state, and must not read as end-of-trace.
		return 0, fmt.Errorf("traceio: NextBlock requires a non-empty buffer")
	}
	var n int
	if s.binary {
		limit := len(buf)
		if !s.unbounded && uint64(limit) > s.remaining {
			limit = int(s.remaining)
		}
		for n < limit {
			if s.unbounded && s.atBodyEnd() {
				break
			}
			e, err := decodeEvent(s.bin, s.counts, s.decoded)
			if err != nil {
				s.err = notePath(err, s.path)
				return n, s.err
			}
			buf[n] = e
			n++
			s.decoded++
			s.tallyEvent(e)
		}
		if !s.unbounded {
			s.remaining -= uint64(n)
		}
		if n == 0 {
			s.err = io.EOF
			return 0, io.EOF
		}
		return n, nil
	}
	for n < len(buf) {
		e, ok := s.scanTextEvent()
		if !ok {
			break
		}
		buf[n] = e
		n++
	}
	if s.err != nil {
		return n, s.err // decode error: the partial block plus the error
	}
	if n == 0 {
		s.err = s.endOfText()
		return 0, s.err
	}
	return n, nil
}

// scanTextEvent decodes the next event of a text stream, skipping blank and
// comment lines (consuming the pre-sizing header comments). It reports
// ok=false at end of input or on error; a parse error is latched into s.err,
// clean end of input leaves s.err untouched for the caller to classify.
func (s *Stream) scanTextEvent() (event.Event, bool) {
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			if s.tally.Events == 0 {
				if s.dims.Events < 0 {
					if ev, ok := parseEventsHeader(line); ok {
						s.dims.Events = ev
					}
				}
				if c, ok := parseSymbolsHeader(line); ok {
					s.syms.Preallocate(c[0], c[1], c[2], c[3])
				}
			}
			continue
		}
		e, err := parseLine(line, s.syms)
		if err != nil {
			s.err = &ParseError{Line: s.lineNo, Text: line, Err: err}
			return event.Event{}, false
		}
		s.tallyEvent(e)
		return e, true
	}
	return event.Event{}, false
}

// endOfText classifies a scanner stop: an underlying read error, or io.EOF.
func (s *Stream) endOfText() error {
	if err := s.sc.Err(); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	return io.EOF
}

// NextBlockSoA fills b — reset first, then appended up to its capacity —
// with the next events of the trace in structure-of-arrays form, the layout
// the detectors' block loops consume directly. Binary bodies decode straight
// into the block's field slices with no intermediate event slice. The
// return contract matches NextBlock: n > 0 with a nil error until the trace
// is exhausted, then 0 with io.EOF.
func (s *Stream) NextBlockSoA(b *trace.Block) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	if b.Cap() == 0 {
		// Not latched into s.err: a zero-capacity block is a caller bug, not
		// a stream state, and must not read as end-of-trace.
		return 0, fmt.Errorf("traceio: NextBlockSoA requires a block with capacity")
	}
	b.Reset()
	if s.binary {
		limit := b.Cap()
		if !s.unbounded && uint64(limit) > s.remaining {
			limit = int(s.remaining)
		}
		for b.Len() < limit {
			if s.unbounded && s.atBodyEnd() {
				break
			}
			e, err := decodeEvent(s.bin, s.counts, s.decoded)
			if err != nil {
				s.err = notePath(err, s.path)
				return b.Len(), s.err
			}
			b.AppendFields(e.Kind, e.Thread, e.Obj, e.Loc)
			s.decoded++
			s.tallyEvent(e)
		}
		n := b.Len()
		if !s.unbounded {
			s.remaining -= uint64(n)
		}
		if n == 0 {
			s.err = io.EOF
			return 0, io.EOF
		}
		return n, nil
	}
	for b.Len() < b.Cap() {
		e, ok := s.scanTextEvent()
		if !ok {
			break
		}
		b.AppendFields(e.Kind, e.Thread, e.Obj, e.Loc)
	}
	if s.err != nil {
		return b.Len(), s.err // decode error: the partial block plus the error
	}
	if b.Len() == 0 {
		s.err = s.endOfText()
		return 0, s.err
	}
	return b.Len(), nil
}

// atBodyEnd reports whether an open-ended event body is cleanly exhausted:
// no more input at an event boundary. Read errors other than io.EOF are
// left for decodeEvent to surface with offset context.
func (s *Stream) atBodyEnd() bool {
	_, err := s.bin.br.Peek(1)
	return err == io.EOF
}

func (s *Stream) tallyEvent(e event.Event) {
	s.tally.Events++
	switch e.Kind {
	case event.Read:
		s.tally.Reads++
	case event.Write:
		s.tally.Writes++
	case event.Acquire:
		s.tally.Acquires++
	case event.Release:
		s.tally.Releases++
	case event.Fork:
		s.tally.Forks++
	case event.Join:
		s.tally.Joins++
	}
}

// Close releases the underlying file handle when the stream owns one
// (StreamFile); it is a no-op for reader-backed streams.
func (s *Stream) Close() error {
	if s.closer == nil {
		return nil
	}
	c := s.closer
	s.closer = nil
	return c.Close()
}
