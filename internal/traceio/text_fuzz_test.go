package traceio

import (
	"bufio"
	"bytes"
	"errors"
	"testing"
)

// FuzzTextDecode throws arbitrary bytes at both text-format readers and
// checks the ingestion-robustness contract: no input may panic, every
// failure is a typed *ParseError (or the scanner's too-long-line error),
// the streaming Scanner agrees with the batch reader on where the input
// goes bad and stays inert — no panic, stable error — when driven past the
// malformed line, and anything that parses cleanly round-trips exactly.
func FuzzTextDecode(f *testing.F) {
	f.Add([]byte("# events 2\n# symbols 2 1 1 1\nt1|acq(l0)|Main.java:17\nt1|rel(l0)\n"))
	f.Add([]byte("t1|fork(t2)\nt2|w(x)|a.go:1\nt2|join(t1)\n"))
	f.Add([]byte("t1|read(x)\n\n# comment\nt1|write(x)\n"))
	f.Add([]byte("t1|boom(l)\n"))
	f.Add([]byte("t1|acq()\n"))
	f.Add([]byte("|||\n"))
	f.Add([]byte("# events -1\nt1|acq(l)\n"))
	f.Add([]byte("garbage"))
	f.Add(bytes.Repeat([]byte("x"), 2<<20)) // one line past the scanner's max token

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadText(bytes.NewReader(data))
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) && !errors.Is(err, bufio.ErrTooLong) {
				t.Fatalf("ReadText error is not a *ParseError or too-long-line: %T %v", err, err)
			}
		}

		sc := NewScanner(bytes.NewReader(data))
		scanned := 0
		for sc.Scan() {
			scanned++
			if scanned > len(data)+1 {
				t.Fatal("Scanner yields more events than input lines")
			}
		}
		scanErr := sc.Err()
		if scanErr != nil {
			var pe *ParseError
			if !errors.As(scanErr, &pe) && !errors.Is(scanErr, bufio.ErrTooLong) {
				t.Fatalf("Scanner error is not a *ParseError or too-long-line: %T %v", scanErr, scanErr)
			}
		}
		// Driving the scanner past the failure is safe and changes nothing.
		for i := 0; i < 3; i++ {
			if sc.Scan() {
				t.Fatal("Scan returned true after reporting end/error")
			}
		}
		if !errors.Is(sc.Err(), scanErr) && (sc.Err() == nil) != (scanErr == nil) {
			t.Fatalf("Scanner error changed after extra Scans: %v -> %v", scanErr, sc.Err())
		}

		// Batch and streaming readers must agree on whether the input is
		// well-formed, and on the event count when it is.
		if (err == nil) != (scanErr == nil) {
			t.Fatalf("ReadText err=%v but Scanner err=%v", err, scanErr)
		}
		if err != nil {
			return
		}
		if scanned != len(tr.Events) {
			t.Fatalf("Scanner produced %d events, ReadText %d", scanned, len(tr.Events))
		}

		// Well-formed input round-trips exactly.
		var out bytes.Buffer
		if werr := WriteText(&out, tr); werr != nil {
			t.Fatalf("WriteText on parsed trace: %v", werr)
		}
		tr2, rerr := ReadText(bytes.NewReader(out.Bytes()))
		if rerr != nil {
			t.Fatalf("re-reading written trace: %v", rerr)
		}
		if len(tr2.Events) != len(tr.Events) {
			t.Fatalf("round-trip changed event count: %d -> %d", len(tr.Events), len(tr2.Events))
		}
		for i := range tr.Events {
			if tr.Events[i] != tr2.Events[i] {
				t.Fatalf("round-trip changed event %d: %+v -> %+v", i, tr.Events[i], tr2.Events[i])
			}
		}
	})
}
