package traceio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/gen"
	"repro/internal/trace"
)

const sampleText = `
# a comment
t1|acq(l)|Main.java:10
t1|w(x)|Main.java:11
t1|rel(l)|Main.java:12

t0|fork(t2)
t2|r(x)|Worker.java:5
t0|join(t2)
`

func TestReadText(t *testing.T) {
	tr, err := ReadText(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 6 {
		t.Fatalf("events = %d, want 6 (comments/blanks skipped)", tr.Len())
	}
	if tr.NumThreads() != 3 {
		t.Errorf("threads = %d", tr.NumThreads())
	}
	e := tr.Events[0]
	if e.Kind != event.Acquire || tr.Symbols.LockName(e.Lock()) != "l" {
		t.Errorf("event 0 = %v", e)
	}
	if tr.Symbols.LocationName(e.Loc) != "Main.java:10" {
		t.Errorf("loc = %q", tr.Symbols.LocationName(e.Loc))
	}
	if tr.Events[3].Kind != event.Fork || tr.Events[3].Loc != event.NoLoc {
		t.Errorf("fork event = %v", tr.Events[3])
	}
	if tr.Events[5].Kind != event.Join {
		t.Errorf("join event = %v", tr.Events[5])
	}
}

func TestReadTextAliases(t *testing.T) {
	in := "t1|acquire(l)\nt1|read(x)\nt1|write(x)\nt1|release(l)\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []event.Kind{event.Acquire, event.Read, event.Write, event.Release}
	for i, k := range want {
		if tr.Events[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, tr.Events[i].Kind, k)
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		name, in, reason string
	}{
		{"missing fields", "t1\n", "fields"},
		{"bad op form", "t1|acq l|pc\n", "not of the form"},
		{"unknown op", "t1|frobnicate(l)|pc\n", "unknown operation"},
		{"empty operand", "t1|acq()|pc\n", "empty operand"},
		{"empty thread", "|acq(l)|pc\n", "empty thread"},
		{"too many fields", "t1|acq(l)|pc|extra\n", "fields"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadText(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("expected parse error")
			}
			var perr *ParseError
			if !errors.As(err, &perr) {
				t.Fatalf("error type %T, want *ParseError", err)
			}
			if perr.Line != 1 {
				t.Errorf("line = %d, want 1", perr.Line)
			}
			if !strings.Contains(err.Error(), tc.reason) {
				t.Errorf("error %q does not mention %q", err, tc.reason)
			}
		})
	}
}

func TestTextRoundTrip(t *testing.T) {
	orig, err := ReadText(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, orig, back)
}

func TestBinaryRoundTrip(t *testing.T) {
	b, _ := gen.ByName("account")
	orig := b.Generate(1.0)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, orig, back)
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOPE1234")},
		{"bad version", []byte("WCPT\x7f")},
		{"truncated", []byte("WCPT\x01\x02")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadBinary(bytes.NewReader(tc.data)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestBinaryRejectsOutOfRangeIndices(t *testing.T) {
	b := trace.NewBuilder()
	b.Acquire("t1", "l")
	tr := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the final event's operand varint (last-but-one byte is the
	// lock index 0; bump it out of range).
	data[len(data)-2] = 0x7f
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("expected out-of-range operand error")
	}
}

func TestScanner(t *testing.T) {
	sc := NewScanner(strings.NewReader(sampleText))
	var kinds []event.Kind
	for sc.Scan() {
		kinds = append(kinds, sc.Event().Kind)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 6 {
		t.Fatalf("scanned %d events", len(kinds))
	}
	if sc.Symbols().NumThreads() != 3 {
		t.Errorf("scanner threads = %d", sc.Symbols().NumThreads())
	}
	// Errors surface through Err and stop the scan.
	sc2 := NewScanner(strings.NewReader("t1|bogus(x)\n"))
	if sc2.Scan() {
		t.Error("scan of bad input should fail")
	}
	if sc2.Err() == nil {
		t.Error("Err should be set")
	}
	if sc2.Scan() {
		t.Error("scan after error should keep failing")
	}
}

func assertTracesEqual(t *testing.T, a, b *trace.Trace) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	if a.Symbols.NumThreads() != b.Symbols.NumThreads() ||
		a.Symbols.NumLocks() != b.Symbols.NumLocks() ||
		a.Symbols.NumVars() != b.Symbols.NumVars() ||
		a.Symbols.NumLocations() != b.Symbols.NumLocations() {
		t.Fatal("symbol table sizes differ")
	}
	for i, name := range a.Symbols.ThreadNames() {
		if b.Symbols.ThreadNames()[i] != name {
			t.Fatalf("thread %d name differs", i)
		}
	}
	for i, name := range a.Symbols.LocationNames() {
		if b.Symbols.LocationNames()[i] != name {
			t.Fatalf("location %d name differs", i)
		}
	}
}

func TestParseErrorUnwrap(t *testing.T) {
	_, err := ReadText(strings.NewReader("t1|bogus(x)\n"))
	var perr *ParseError
	if !errors.As(err, &perr) {
		t.Fatalf("error type %T", err)
	}
	if perr.Unwrap() == nil {
		t.Error("Unwrap should expose the underlying reason")
	}
	if !strings.Contains(perr.Error(), "line 1") {
		t.Errorf("error = %q", perr.Error())
	}
}

func TestWriteTextNoLoc(t *testing.T) {
	// Events without locations round-trip as two-field lines, behind the
	// pre-sizing headers WriteText always emits.
	in := "t1|acq(l)\nt1|rel(l)\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "# events 2\n# symbols 1 1 0 0\n"+in; got != want {
		t.Errorf("round trip = %q, want %q", got, want)
	}
}
