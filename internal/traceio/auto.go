package traceio

import (
	"bufio"
	"io"
	"os"

	"repro/internal/trace"
)

// ReadAuto parses a trace from r, auto-detecting the format: a stream
// beginning with the binary magic is parsed as binary, anything else as the
// line-oriented text format.
func ReadAuto(r io.Reader) (*trace.Trace, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(binaryMagic))
	if err == nil && string(magic) == binaryMagic {
		return ReadBinary(br)
	}
	return ReadText(br)
}

// ReadFile parses a trace file, auto-detecting the format.
func ReadFile(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAuto(f)
}
