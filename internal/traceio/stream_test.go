package traceio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/gen"
	"repro/internal/trace"
)

// collect drains a stream through NextBlock with a small buffer, exercising
// block boundaries.
func collect(t *testing.T, s *Stream, blockSize int) []event.Event {
	t.Helper()
	var all []event.Event
	buf := make([]event.Event, blockSize)
	for {
		n, err := s.NextBlock(buf)
		all = append(all, buf[:n]...)
		if err == io.EOF {
			return all
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func streamRoundTrip(t *testing.T, encode func(io.Writer, *trace.Trace) error) {
	t.Helper()
	tr := gen.Random(gen.RandomConfig{Seed: 7, Events: 1000, Threads: 4, Locks: 3, Vars: 8})
	var buf bytes.Buffer
	if err := encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, s, 64)
	if len(got) != len(tr.Events) {
		t.Fatalf("streamed %d events, want %d", len(got), len(tr.Events))
	}
	for i, e := range got {
		if e != tr.Events[i] {
			t.Fatalf("event %d = %v, want %v", i, e, tr.Events[i])
		}
	}
	if got, want := s.Stats(), trace.ComputeStats(tr); got != want {
		t.Errorf("Stats = %+v, want %+v", got, want)
	}
	if s.Symbols().NumThreads() != tr.NumThreads() || s.Symbols().NumVars() != tr.NumVars() {
		t.Errorf("symbols: %d threads %d vars, want %d/%d",
			s.Symbols().NumThreads(), s.Symbols().NumVars(), tr.NumThreads(), tr.NumVars())
	}
	// A drained stream keeps reporting EOF.
	if n, err := s.NextBlock(make([]event.Event, 4)); n != 0 || err != io.EOF {
		t.Errorf("NextBlock after EOF = %d, %v", n, err)
	}
}

func TestStreamBinary(t *testing.T) { streamRoundTrip(t, WriteBinary) }
func TestStreamText(t *testing.T)   { streamRoundTrip(t, WriteText) }

func TestStreamBinaryDims(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Seed: 3, Events: 500, Threads: 3, Locks: 2, Vars: 5})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dims, known := s.Dims()
	if !known {
		t.Fatal("binary stream dims not known up front")
	}
	if dims.Threads != tr.NumThreads() || dims.Locks != tr.NumLocks() ||
		dims.Vars != tr.NumVars() || dims.Events != tr.Len() {
		t.Fatalf("dims = %+v, want threads=%d locks=%d vars=%d events=%d",
			dims, tr.NumThreads(), tr.NumLocks(), tr.NumVars(), tr.Len())
	}
}

func TestStreamTextEventsHeader(t *testing.T) {
	in := "# events 2\nt1|w(x)\nt2|w(x)\n"
	s, err := OpenStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if dims, known := s.Dims(); known || dims.Events != -1 {
		t.Fatalf("pre-scan dims = %+v known=%v, want events=-1 known=false", dims, known)
	}
	got := collect(t, s, 16)
	if len(got) != 2 {
		t.Fatalf("streamed %d events, want 2", len(got))
	}
	if dims, _ := s.Dims(); dims.Events != 2 {
		t.Errorf("post-scan dims.Events = %d, want 2 (from header)", dims.Events)
	}
}

func TestStreamTextParseError(t *testing.T) {
	s, err := OpenStream(strings.NewReader("t1|w(x)\nbogus line\n"))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]event.Event, 8)
	n, err := s.NextBlock(buf)
	var perr *ParseError
	if n != 1 || err == nil {
		t.Fatalf("NextBlock = %d, %v; want 1 good event and an error", n, err)
	}
	if ok := errors.As(err, &perr); !ok || perr.Line != 2 {
		t.Fatalf("error = %v, want ParseError at line 2", err)
	}
	// The error is sticky.
	if _, err2 := s.NextBlock(buf); err2 != err {
		t.Errorf("second NextBlock error = %v, want the same sticky error", err2)
	}
}

// TestNextBlockEmptyBuffer pins that a zero-length buffer is rejected
// without latching end-of-stream: the remaining events stay readable.
func TestNextBlockEmptyBuffer(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Seed: 2, Events: 50, Threads: 2, Locks: 1, Vars: 3})
	for _, encode := range []func(io.Writer, *trace.Trace) error{WriteBinary, WriteText} {
		var buf bytes.Buffer
		if err := encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		s, err := OpenStream(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := s.NextBlock(nil); n != 0 || err == nil || err == io.EOF {
			t.Fatalf("NextBlock(nil) = %d, %v; want 0 and a non-EOF error", n, err)
		}
		if got := collect(t, s, 16); len(got) != tr.Len() {
			t.Fatalf("after empty-buffer call, streamed %d events, want %d", len(got), tr.Len())
		}
	}
}

func TestReadTextPreSizesFromHeader(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# events 100\n")
	for i := 0; i < 100; i++ {
		sb.WriteString("t1|w(x)\n")
	}
	tr, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 100 {
		t.Fatalf("len = %d, want 100", len(tr.Events))
	}
	if cap(tr.Events) != 100 {
		t.Errorf("cap = %d, want exactly 100 (pre-sized from header, no regrowth)", cap(tr.Events))
	}
}

func TestWriteTextReadTextHeaderRoundTrip(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Seed: 11, Events: 400, Threads: 3, Locks: 2, Vars: 4})
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# events ") {
		t.Fatalf("WriteText output missing events header: %q", buf.String()[:40])
	}
	back, err := ReadText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != tr.Len() {
		t.Fatalf("round trip lost events: %d vs %d", len(back.Events), tr.Len())
	}
	if cap(back.Events) != tr.Len() {
		t.Errorf("cap = %d, want exactly %d (pre-sized from the emitted header)", cap(back.Events), tr.Len())
	}
	for i := range back.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs after round trip", i)
		}
	}
}

func TestParseEventsHeader(t *testing.T) {
	cases := []struct {
		line string
		n    int
		ok   bool
	}{
		{"# events 42", 42, true},
		{"#events 7", 7, true},
		{"#  events   0", 0, true},
		{"# events", 0, false},
		{"# events x", 0, false},
		{"# events -3", 0, false},
		{"# eventful 3", 0, false},
		{"events 3", 0, false},
	}
	for _, tc := range cases {
		n, ok := parseEventsHeader(tc.line)
		if n != tc.n || ok != tc.ok {
			t.Errorf("parseEventsHeader(%q) = %d, %v; want %d, %v", tc.line, n, ok, tc.n, tc.ok)
		}
	}
}

func TestBinaryWriterCountMismatch(t *testing.T) {
	syms := &event.Symbols{}
	syms.Thread("t1")
	syms.Var("x")
	ev := event.Event{Kind: event.Write, Thread: 0, Obj: 0, Loc: event.NoLoc}

	var buf bytes.Buffer
	w, err := NewBinaryWriter(&buf, syms, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvents([]event.Event{ev, ev}); err == nil {
		t.Error("overflowing the declared count did not error")
	}

	buf.Reset()
	w, err = NewBinaryWriter(&buf, syms, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvents([]event.Event{ev}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err == nil {
		t.Error("short trace did not error at Flush")
	}
}

func TestBinaryWriterStreamsBlocks(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Seed: 5, Events: 777, Threads: 3, Locks: 2, Vars: 6})
	var buf bytes.Buffer
	w, err := NewBinaryWriter(&buf, tr.Symbols, tr.Len())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Len(); i += 100 {
		end := i + 100
		if end > tr.Len() {
			end = tr.Len()
		}
		if err := w.WriteEvents(tr.Events[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != tr.Len() {
		t.Fatalf("read back %d events, want %d", len(back.Events), tr.Len())
	}
	for i := range back.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}
