package traceio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/event"
	"repro/internal/trace"
)

// Binary format layout (all integers are unsigned varints unless noted):
//
//	magic   "WCPT"          4 bytes
//	version                 1 byte (currently 1)
//	nthreads, nlocks, nvars, nlocs
//	nthreads × string       length-prefixed thread names
//	nlocks   × string       lock names
//	nvars    × string       variable names
//	nlocs    × string       location names
//	nevents
//	nevents  × event        kind (1 byte), thread, obj, loc+1 (0 = NoLoc)
//
// The header carries the full symbol universe and the event count before the
// first event, so a streaming consumer can size detector state and buffers
// up front and decode the body block by block (see stream.go).
const (
	binaryMagic   = "WCPT"
	binaryVersion = 1
)

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

// writeBinaryHeader writes the magic, version, symbol tables and event count.
func writeBinaryHeader(bw *bufio.Writer, syms *event.Symbols, nevents int) error {
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	tables := [][]string{
		syms.ThreadNames(),
		syms.LockNames(),
		syms.VarNames(),
		syms.LocationNames(),
	}
	for _, names := range tables {
		if err := writeUvarint(bw, uint64(len(names))); err != nil {
			return err
		}
	}
	for _, names := range tables {
		for _, name := range names {
			if err := writeString(bw, name); err != nil {
				return err
			}
		}
	}
	return writeUvarint(bw, uint64(nevents))
}

func writeEvent(bw *bufio.Writer, e event.Event) error {
	if err := bw.WriteByte(byte(e.Kind)); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(e.Thread)); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(e.Obj)); err != nil {
		return err
	}
	return writeUvarint(bw, uint64(e.Loc+1))
}

// BinaryWriter emits a binary-format trace incrementally: the header (symbol
// tables and declared event count) up front, then events in caller-sized
// blocks, never materializing the trace. The symbol table must be complete
// and the event count known before the header is written — generators that
// stream events procedurally intern their universe first.
type BinaryWriter struct {
	bw        *bufio.Writer
	remaining uint64
}

// NewBinaryWriter writes the header for a trace of exactly nevents events
// naming syms, and returns a writer for the event body.
func NewBinaryWriter(w io.Writer, syms *event.Symbols, nevents int) (*BinaryWriter, error) {
	bw := bufio.NewWriter(w)
	if err := writeBinaryHeader(bw, syms, nevents); err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	return &BinaryWriter{bw: bw, remaining: uint64(nevents)}, nil
}

// WriteEvents appends a block of events to the trace body. Writing more
// events than the header declared is an error.
func (w *BinaryWriter) WriteEvents(events []event.Event) error {
	if uint64(len(events)) > w.remaining {
		return fmt.Errorf("traceio: writing %d events exceeds the %d remaining of the declared count", len(events), w.remaining)
	}
	for _, e := range events {
		if err := writeEvent(w.bw, e); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
		// Debited per event so remaining tracks what was actually encoded
		// even on a partial-write error.
		w.remaining--
	}
	return nil
}

// Flush flushes buffered output and verifies the declared event count was
// met exactly. Call it once after the last WriteEvents.
func (w *BinaryWriter) Flush() error {
	if w.remaining != 0 {
		return fmt.Errorf("traceio: trace short by %d events of the declared count", w.remaining)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	return nil
}

// WriteBinary writes tr to w in the binary format.
func WriteBinary(w io.Writer, tr *trace.Trace) error {
	bw, err := NewBinaryWriter(w, tr.Symbols, len(tr.Events))
	if err != nil {
		return err
	}
	if err := bw.WriteEvents(tr.Events); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeError reports a corrupt binary trace together with where decoding
// stopped: the byte offset into the input (relative to the start of the
// stream, or of the chunk body for NewEventStream), the index of the event
// being decoded (-1 while still in the header), and the file path when the
// stream was opened from one. Corpus runners and the raced server surface
// it so logs say exactly where a trace is corrupt.
type DecodeError struct {
	Path   string // file path, "" for reader-backed streams
	Offset int64  // byte offset where decoding stopped
	Event  int64  // index of the event being decoded, -1 in the header
	Err    error  // underlying reason
}

func (e *DecodeError) Error() string {
	where := "header"
	if e.Event >= 0 {
		where = fmt.Sprintf("event %d", e.Event)
	}
	if e.Path != "" {
		return fmt.Sprintf("traceio: %s: %s at byte offset %d: %v", e.Path, where, e.Offset, e.Err)
	}
	return fmt.Sprintf("traceio: %s at byte offset %d: %v", where, e.Offset, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// headerError wraps a header-decode failure with the current byte offset.
func headerError(br *binaryReader, err error) *DecodeError {
	return &DecodeError{Offset: br.off, Event: -1, Err: err}
}

type binaryReader struct {
	br  *bufio.Reader
	off int64 // bytes consumed so far
}

// ReadByte implements io.ByteReader, counting consumed bytes so decode
// errors can carry the offset where the input went bad.
func (r *binaryReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.off++
	}
	return b, err
}

func (r *binaryReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(r)
}

func (r *binaryReader) full(buf []byte) error {
	n, err := io.ReadFull(r.br, buf)
	r.off += int64(n)
	return err
}

func (r *binaryReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	const maxName = 1 << 20
	if n > maxName {
		return "", fmt.Errorf("symbol name length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if err := r.full(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// readBinaryHeader consumes the magic, version, symbol tables and event
// count, returning the interned symbols, the raw table sizes (for operand
// range checks) and the declared event count.
func readBinaryHeader(br *binaryReader) (*event.Symbols, [4]uint64, uint64, error) {
	var counts [4]uint64
	magic := make([]byte, len(binaryMagic))
	if err := br.full(magic); err != nil {
		return nil, counts, 0, headerError(br, fmt.Errorf("reading magic: %w", noEOF(err)))
	}
	if string(magic) != binaryMagic {
		return nil, counts, 0, headerError(br, fmt.Errorf("bad magic %q, want %q", magic, binaryMagic))
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, counts, 0, headerError(br, fmt.Errorf("reading version: %w", noEOF(err)))
	}
	if ver != binaryVersion {
		return nil, counts, 0, headerError(br, fmt.Errorf("unsupported version %d", ver))
	}
	for i := range counts {
		if counts[i], err = br.uvarint(); err != nil {
			return nil, counts, 0, headerError(br, fmt.Errorf("reading symbol counts: %w", noEOF(err)))
		}
	}
	syms := &event.Symbols{}
	const maxPrealloc = 1 << 24 // don't let a corrupt header allocate wildly
	if counts[0] < maxPrealloc && counts[1] < maxPrealloc && counts[2] < maxPrealloc && counts[3] < maxPrealloc {
		syms.Preallocate(int(counts[0]), int(counts[1]), int(counts[2]), int(counts[3]))
	}
	interners := [4]func(string){
		func(s string) { syms.Thread(s) },
		func(s string) { syms.Lock(s) },
		func(s string) { syms.Var(s) },
		func(s string) { syms.Location(s) },
	}
	for i, add := range interners {
		for j := uint64(0); j < counts[i]; j++ {
			name, err := br.str()
			if err != nil {
				return nil, counts, 0, headerError(br, fmt.Errorf("reading symbols: %w", noEOF(err)))
			}
			add(name)
		}
	}
	nev, err := br.uvarint()
	if err != nil {
		return nil, counts, 0, headerError(br, fmt.Errorf("reading event count: %w", noEOF(err)))
	}
	return syms, counts, nev, nil
}

// noEOF converts a bare io.EOF — input that simply ran out partway through a
// structure — into io.ErrUnexpectedEOF, so truncation reads as corruption
// rather than clean end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// decodeEvent decodes one event of the body, validating operand ranges
// against the header's table sizes. i is the event index; decode failures
// come back as a *DecodeError carrying i and the byte offset of the event.
func decodeEvent(br *binaryReader, counts [4]uint64, i uint64) (event.Event, error) {
	start := br.off
	fail := func(err error) (event.Event, error) {
		return event.Event{}, &DecodeError{Offset: start, Event: int64(i), Err: err}
	}
	kindB, err := br.ReadByte()
	if err != nil {
		return fail(noEOF(err))
	}
	kind := event.Kind(kindB)
	if !kind.Valid() {
		return fail(fmt.Errorf("invalid kind %d", kindB))
	}
	thread, err := br.uvarint()
	if err != nil {
		return fail(noEOF(err))
	}
	obj, err := br.uvarint()
	if err != nil {
		return fail(noEOF(err))
	}
	locP1, err := br.uvarint()
	if err != nil {
		return fail(noEOF(err))
	}
	if thread >= counts[0] {
		return fail(fmt.Errorf("thread index %d out of range", thread))
	}
	if locP1 > counts[3] {
		return fail(fmt.Errorf("location index %d out of range", locP1))
	}
	var objLimit uint64
	switch kind {
	case event.Acquire, event.Release:
		objLimit = counts[1]
	case event.Read, event.Write:
		objLimit = counts[2]
	case event.Fork, event.Join:
		objLimit = counts[0]
	}
	if obj >= objLimit {
		return fail(fmt.Errorf("operand index %d out of range", obj))
	}
	return event.Event{
		Kind:   kind,
		Thread: event.TID(thread),
		Obj:    int32(obj),
		Loc:    event.Loc(locP1) - 1,
	}, nil
}

// Header is the binary format's preamble — the symbol universe plus the
// declared event count — decoupled from the event body, so a producer can
// ship the header in one piece (a raced session-create request) and the
// events separately in arbitrarily-chunked bodies (see NewEventStream).
type Header struct {
	// Syms is the complete symbol universe of the trace.
	Syms *event.Symbols
	// Events is the declared event count; <= 0 means open-ended (the body
	// length is not known up front, as in a live session).
	Events int
}

// counts returns the operand-validation limits implied by the universe.
func (h Header) counts() [4]uint64 {
	return [4]uint64{
		uint64(h.Syms.NumThreads()),
		uint64(h.Syms.NumLocks()),
		uint64(h.Syms.NumVars()),
		uint64(h.Syms.NumLocations()),
	}
}

// Dims returns the trace dimensions the header declares (Events is -1 when
// open-ended).
func (h Header) Dims() Dims {
	d := Dims{
		Threads: h.Syms.NumThreads(),
		Locks:   h.Syms.NumLocks(),
		Vars:    h.Syms.NumVars(),
		Locs:    h.Syms.NumLocations(),
		Events:  h.Events,
	}
	if h.Events <= 0 {
		d.Events = -1
	}
	return d
}

// WriteHeader writes a standalone binary trace header: the symbol universe
// and the declared event count (use 0 for an open-ended body). The written
// bytes are exactly the preamble a full binary trace would start with.
func WriteHeader(w io.Writer, syms *event.Symbols, nevents int) error {
	bw := bufio.NewWriter(w)
	if err := writeBinaryHeader(bw, syms, nevents); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	return nil
}

// ReadHeader decodes a standalone binary trace header from r. It may read
// past the header's last byte (buffering), so r should contain only a
// header; to decode header and body from one stream use OpenStream.
func ReadHeader(r io.Reader) (Header, error) {
	br := &binaryReader{br: bufio.NewReader(r)}
	syms, _, nev, err := readBinaryHeader(br)
	if err != nil {
		return Header{}, err
	}
	return Header{Syms: syms, Events: int(nev)}, nil
}

// EncodeEvents writes events in the binary body encoding, with no header:
// the chunk format of a raced session. Every event is written whole, so
// concatenated EncodeEvents outputs always split on event boundaries.
func EncodeEvents(w io.Writer, events []event.Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if err := writeEvent(bw, e); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	return nil
}

// ReadBinary parses a binary-format trace from r.
func ReadBinary(r io.Reader) (*trace.Trace, error) {
	br := &binaryReader{br: bufio.NewReader(r)}
	syms, counts, nev, err := readBinaryHeader(br)
	if err != nil {
		return nil, err
	}
	tr := &trace.Trace{Symbols: syms, Events: make([]event.Event, 0, nev)}
	for i := uint64(0); i < nev; i++ {
		e, err := decodeEvent(br, counts, i)
		if err != nil {
			return nil, err
		}
		tr.Events = append(tr.Events, e)
	}
	return tr, nil
}
