package traceio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/event"
	"repro/internal/trace"
)

// Binary format layout (all integers are unsigned varints unless noted):
//
//	magic   "WCPT"          4 bytes
//	version                 1 byte (currently 1)
//	nthreads, nlocks, nvars, nlocs
//	nthreads × string       length-prefixed thread names
//	nlocks   × string       lock names
//	nvars    × string       variable names
//	nlocs    × string       location names
//	nevents
//	nevents  × event        kind (1 byte), thread, obj, loc+1 (0 = NoLoc)
const (
	binaryMagic   = "WCPT"
	binaryVersion = 1
)

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

// WriteBinary writes tr to w in the binary format.
func WriteBinary(w io.Writer, tr *trace.Trace) (err error) {
	bw := bufio.NewWriter(w)
	defer func() {
		if ferr := bw.Flush(); err == nil && ferr != nil {
			err = fmt.Errorf("traceio: %w", ferr)
		}
	}()
	if _, err = bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	if err = bw.WriteByte(binaryVersion); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	tables := [][]string{
		tr.Symbols.ThreadNames(),
		tr.Symbols.LockNames(),
		tr.Symbols.VarNames(),
		tr.Symbols.LocationNames(),
	}
	for _, names := range tables {
		if err = writeUvarint(bw, uint64(len(names))); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
	}
	for _, names := range tables {
		for _, name := range names {
			if err = writeString(bw, name); err != nil {
				return fmt.Errorf("traceio: %w", err)
			}
		}
	}
	if err = writeUvarint(bw, uint64(len(tr.Events))); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	for _, e := range tr.Events {
		if err = bw.WriteByte(byte(e.Kind)); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
		if err = writeUvarint(bw, uint64(e.Thread)); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
		if err = writeUvarint(bw, uint64(e.Obj)); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
		if err = writeUvarint(bw, uint64(e.Loc+1)); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
	}
	return nil
}

type binaryReader struct {
	br *bufio.Reader
}

func (r *binaryReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(r.br)
}

func (r *binaryReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	const maxName = 1 << 20
	if n > maxName {
		return "", fmt.Errorf("symbol name length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// ReadBinary parses a binary-format trace from r.
func ReadBinary(r io.Reader) (*trace.Trace, error) {
	br := &binaryReader{br: bufio.NewReader(r)}
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br.br, magic); err != nil {
		return nil, fmt.Errorf("traceio: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("traceio: bad magic %q, want %q", magic, binaryMagic)
	}
	ver, err := br.br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("traceio: unsupported version %d", ver)
	}
	var counts [4]uint64
	for i := range counts {
		if counts[i], err = br.uvarint(); err != nil {
			return nil, fmt.Errorf("traceio: reading symbol counts: %w", err)
		}
	}
	syms := &event.Symbols{}
	interners := [4]func(string){
		func(s string) { syms.Thread(s) },
		func(s string) { syms.Lock(s) },
		func(s string) { syms.Var(s) },
		func(s string) { syms.Location(s) },
	}
	for i, add := range interners {
		for j := uint64(0); j < counts[i]; j++ {
			name, err := br.str()
			if err != nil {
				return nil, fmt.Errorf("traceio: reading symbols: %w", err)
			}
			add(name)
		}
	}
	nev, err := br.uvarint()
	if err != nil {
		return nil, fmt.Errorf("traceio: reading event count: %w", err)
	}
	tr := &trace.Trace{Symbols: syms, Events: make([]event.Event, 0, nev)}
	for i := uint64(0); i < nev; i++ {
		kindB, err := br.br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("traceio: event %d: %w", i, err)
		}
		kind := event.Kind(kindB)
		if !kind.Valid() {
			return nil, fmt.Errorf("traceio: event %d: invalid kind %d", i, kindB)
		}
		thread, err := br.uvarint()
		if err != nil {
			return nil, fmt.Errorf("traceio: event %d: %w", i, err)
		}
		obj, err := br.uvarint()
		if err != nil {
			return nil, fmt.Errorf("traceio: event %d: %w", i, err)
		}
		locP1, err := br.uvarint()
		if err != nil {
			return nil, fmt.Errorf("traceio: event %d: %w", i, err)
		}
		if thread >= counts[0] {
			return nil, fmt.Errorf("traceio: event %d: thread index %d out of range", i, thread)
		}
		if locP1 > counts[3] {
			return nil, fmt.Errorf("traceio: event %d: location index %d out of range", i, locP1)
		}
		var objLimit uint64
		switch kind {
		case event.Acquire, event.Release:
			objLimit = counts[1]
		case event.Read, event.Write:
			objLimit = counts[2]
		case event.Fork, event.Join:
			objLimit = counts[0]
		}
		if obj >= objLimit {
			return nil, fmt.Errorf("traceio: event %d: operand index %d out of range", i, obj)
		}
		tr.Events = append(tr.Events, event.Event{
			Kind:   kind,
			Thread: event.TID(thread),
			Obj:    int32(obj),
			Loc:    event.Loc(locP1) - 1,
		})
	}
	return tr, nil
}
