package traceio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/event"
	"repro/internal/trace"
)

// Binary format layout (all integers are unsigned varints unless noted):
//
//	magic   "WCPT"          4 bytes
//	version                 1 byte (currently 1)
//	nthreads, nlocks, nvars, nlocs
//	nthreads × string       length-prefixed thread names
//	nlocks   × string       lock names
//	nvars    × string       variable names
//	nlocs    × string       location names
//	nevents
//	nevents  × event        kind (1 byte), thread, obj, loc+1 (0 = NoLoc)
//
// The header carries the full symbol universe and the event count before the
// first event, so a streaming consumer can size detector state and buffers
// up front and decode the body block by block (see stream.go).
const (
	binaryMagic   = "WCPT"
	binaryVersion = 1
)

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

// writeBinaryHeader writes the magic, version, symbol tables and event count.
func writeBinaryHeader(bw *bufio.Writer, syms *event.Symbols, nevents int) error {
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	tables := [][]string{
		syms.ThreadNames(),
		syms.LockNames(),
		syms.VarNames(),
		syms.LocationNames(),
	}
	for _, names := range tables {
		if err := writeUvarint(bw, uint64(len(names))); err != nil {
			return err
		}
	}
	for _, names := range tables {
		for _, name := range names {
			if err := writeString(bw, name); err != nil {
				return err
			}
		}
	}
	return writeUvarint(bw, uint64(nevents))
}

func writeEvent(bw *bufio.Writer, e event.Event) error {
	if err := bw.WriteByte(byte(e.Kind)); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(e.Thread)); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(e.Obj)); err != nil {
		return err
	}
	return writeUvarint(bw, uint64(e.Loc+1))
}

// BinaryWriter emits a binary-format trace incrementally: the header (symbol
// tables and declared event count) up front, then events in caller-sized
// blocks, never materializing the trace. The symbol table must be complete
// and the event count known before the header is written — generators that
// stream events procedurally intern their universe first.
type BinaryWriter struct {
	bw        *bufio.Writer
	remaining uint64
}

// NewBinaryWriter writes the header for a trace of exactly nevents events
// naming syms, and returns a writer for the event body.
func NewBinaryWriter(w io.Writer, syms *event.Symbols, nevents int) (*BinaryWriter, error) {
	bw := bufio.NewWriter(w)
	if err := writeBinaryHeader(bw, syms, nevents); err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	return &BinaryWriter{bw: bw, remaining: uint64(nevents)}, nil
}

// WriteEvents appends a block of events to the trace body. Writing more
// events than the header declared is an error.
func (w *BinaryWriter) WriteEvents(events []event.Event) error {
	if uint64(len(events)) > w.remaining {
		return fmt.Errorf("traceio: writing %d events exceeds the %d remaining of the declared count", len(events), w.remaining)
	}
	for _, e := range events {
		if err := writeEvent(w.bw, e); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
		// Debited per event so remaining tracks what was actually encoded
		// even on a partial-write error.
		w.remaining--
	}
	return nil
}

// Flush flushes buffered output and verifies the declared event count was
// met exactly. Call it once after the last WriteEvents.
func (w *BinaryWriter) Flush() error {
	if w.remaining != 0 {
		return fmt.Errorf("traceio: trace short by %d events of the declared count", w.remaining)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	return nil
}

// WriteBinary writes tr to w in the binary format.
func WriteBinary(w io.Writer, tr *trace.Trace) error {
	bw, err := NewBinaryWriter(w, tr.Symbols, len(tr.Events))
	if err != nil {
		return err
	}
	if err := bw.WriteEvents(tr.Events); err != nil {
		return err
	}
	return bw.Flush()
}

type binaryReader struct {
	br *bufio.Reader
}

func (r *binaryReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(r.br)
}

func (r *binaryReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	const maxName = 1 << 20
	if n > maxName {
		return "", fmt.Errorf("symbol name length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// readBinaryHeader consumes the magic, version, symbol tables and event
// count, returning the interned symbols, the raw table sizes (for operand
// range checks) and the declared event count.
func readBinaryHeader(br *binaryReader) (*event.Symbols, [4]uint64, uint64, error) {
	var counts [4]uint64
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br.br, magic); err != nil {
		return nil, counts, 0, fmt.Errorf("traceio: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, counts, 0, fmt.Errorf("traceio: bad magic %q, want %q", magic, binaryMagic)
	}
	ver, err := br.br.ReadByte()
	if err != nil {
		return nil, counts, 0, fmt.Errorf("traceio: %w", err)
	}
	if ver != binaryVersion {
		return nil, counts, 0, fmt.Errorf("traceio: unsupported version %d", ver)
	}
	for i := range counts {
		if counts[i], err = br.uvarint(); err != nil {
			return nil, counts, 0, fmt.Errorf("traceio: reading symbol counts: %w", err)
		}
	}
	syms := &event.Symbols{}
	const maxPrealloc = 1 << 24 // don't let a corrupt header allocate wildly
	if counts[0] < maxPrealloc && counts[1] < maxPrealloc && counts[2] < maxPrealloc && counts[3] < maxPrealloc {
		syms.Preallocate(int(counts[0]), int(counts[1]), int(counts[2]), int(counts[3]))
	}
	interners := [4]func(string){
		func(s string) { syms.Thread(s) },
		func(s string) { syms.Lock(s) },
		func(s string) { syms.Var(s) },
		func(s string) { syms.Location(s) },
	}
	for i, add := range interners {
		for j := uint64(0); j < counts[i]; j++ {
			name, err := br.str()
			if err != nil {
				return nil, counts, 0, fmt.Errorf("traceio: reading symbols: %w", err)
			}
			add(name)
		}
	}
	nev, err := br.uvarint()
	if err != nil {
		return nil, counts, 0, fmt.Errorf("traceio: reading event count: %w", err)
	}
	return syms, counts, nev, nil
}

// decodeEvent decodes one event of the body, validating operand ranges
// against the header's table sizes. i is the event index, for errors.
func decodeEvent(br *binaryReader, counts [4]uint64, i uint64) (event.Event, error) {
	kindB, err := br.br.ReadByte()
	if err != nil {
		return event.Event{}, fmt.Errorf("traceio: event %d: %w", i, err)
	}
	kind := event.Kind(kindB)
	if !kind.Valid() {
		return event.Event{}, fmt.Errorf("traceio: event %d: invalid kind %d", i, kindB)
	}
	thread, err := br.uvarint()
	if err != nil {
		return event.Event{}, fmt.Errorf("traceio: event %d: %w", i, err)
	}
	obj, err := br.uvarint()
	if err != nil {
		return event.Event{}, fmt.Errorf("traceio: event %d: %w", i, err)
	}
	locP1, err := br.uvarint()
	if err != nil {
		return event.Event{}, fmt.Errorf("traceio: event %d: %w", i, err)
	}
	if thread >= counts[0] {
		return event.Event{}, fmt.Errorf("traceio: event %d: thread index %d out of range", i, thread)
	}
	if locP1 > counts[3] {
		return event.Event{}, fmt.Errorf("traceio: event %d: location index %d out of range", i, locP1)
	}
	var objLimit uint64
	switch kind {
	case event.Acquire, event.Release:
		objLimit = counts[1]
	case event.Read, event.Write:
		objLimit = counts[2]
	case event.Fork, event.Join:
		objLimit = counts[0]
	}
	if obj >= objLimit {
		return event.Event{}, fmt.Errorf("traceio: event %d: operand index %d out of range", i, obj)
	}
	return event.Event{
		Kind:   kind,
		Thread: event.TID(thread),
		Obj:    int32(obj),
		Loc:    event.Loc(locP1) - 1,
	}, nil
}

// ReadBinary parses a binary-format trace from r.
func ReadBinary(r io.Reader) (*trace.Trace, error) {
	br := &binaryReader{br: bufio.NewReader(r)}
	syms, counts, nev, err := readBinaryHeader(br)
	if err != nil {
		return nil, err
	}
	tr := &trace.Trace{Symbols: syms, Events: make([]event.Event, 0, nev)}
	for i := uint64(0); i < nev; i++ {
		e, err := decodeEvent(br, counts, i)
		if err != nil {
			return nil, err
		}
		tr.Events = append(tr.Events, e)
	}
	return tr, nil
}
