package traceio

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/gen"
	"repro/internal/trace"
)

// drainSoA decodes a whole stream through NextBlockSoA into one reused
// block, returning the materialized event sequence.
func drainSoA(t *testing.T, st *Stream, blockSize int) *trace.Block {
	t.Helper()
	all := trace.NewBlock(0)
	buf := trace.NewBlock(blockSize)
	for {
		n, err := st.NextBlockSoA(buf)
		for i := 0; i < n; i++ {
			all.Append(buf.At(i))
		}
		if err == io.EOF {
			return all
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestNextBlockSoAMatchesNextBlock checks the SoA block decoder yields the
// exact event sequence of the event-slice decoder, for both formats and for
// block sizes that do and do not divide the trace length.
func TestNextBlockSoAMatchesNextBlock(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Threads: 4, Locks: 3, Vars: 5, Events: 700, Seed: 3})
	for _, write := range []struct {
		name string
		fn   func(*bytes.Buffer) error
	}{
		{"binary", func(b *bytes.Buffer) error { return WriteBinary(b, tr) }},
		{"text", func(b *bytes.Buffer) error { return WriteText(b, tr) }},
	} {
		t.Run(write.name, func(t *testing.T) {
			var raw bytes.Buffer
			if err := write.fn(&raw); err != nil {
				t.Fatal(err)
			}
			for _, blockSize := range []int{1, 7, 256, 4096} {
				st, err := OpenStream(bytes.NewReader(raw.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				got := drainSoA(t, st, blockSize)
				if got.Len() != tr.Len() {
					t.Fatalf("block %d: decoded %d events, want %d", blockSize, got.Len(), tr.Len())
				}
				for i := range tr.Events {
					if got.At(i) != tr.Events[i] {
						t.Fatalf("block %d: event %d = %v, want %v", blockSize, i, got.At(i), tr.Events[i])
					}
				}
				if st.Stats().Events != tr.Len() {
					t.Fatalf("block %d: stats tally %d events", blockSize, st.Stats().Events)
				}
			}
		})
	}
}

// TestNextBlockSoAZeroCapacity checks a zero-capacity block is rejected
// without latching the stream into an error state.
func TestNextBlockSoAZeroCapacity(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Threads: 2, Vars: 2, Events: 10, Seed: 4})
	var raw bytes.Buffer
	if err := WriteBinary(&raw, tr); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStream(bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.NextBlockSoA(trace.NewBlock(0)); err == nil || err == io.EOF {
		t.Fatalf("zero-capacity block: err = %v, want a real error", err)
	}
	if got := drainSoA(t, st, 16); got.Len() != tr.Len() {
		t.Fatalf("stream unusable after zero-capacity call: decoded %d of %d", got.Len(), tr.Len())
	}
}

// TestSymbolsPreallocateFromHeaders checks both formats' headers pre-size
// the intern tables so decoding interns every symbol without growing them.
func TestSymbolsPreallocateFromHeaders(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Threads: 5, Locks: 4, Vars: 9, Events: 300, Seed: 5})
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&txt, tr); err != nil {
		t.Fatal(err)
	}
	for name, raw := range map[string][]byte{"binary": bin.Bytes(), "text": txt.Bytes()} {
		st, err := OpenStream(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if name == "text" {
			// The header comments precede the first event: one block pull
			// interns through the pre-sized tables.
			if _, err := st.NextBlockSoA(trace.NewBlock(1)); err != nil {
				t.Fatal(err)
			}
		}
		drainSoA(t, st, 64)
		s := st.Symbols()
		if s.NumThreads() != tr.NumThreads() || s.NumLocks() != tr.NumLocks() || s.NumVars() != tr.NumVars() {
			t.Fatalf("%s: symbol universe %d/%d/%d, want %d/%d/%d", name,
				s.NumThreads(), s.NumLocks(), s.NumVars(), tr.NumThreads(), tr.NumLocks(), tr.NumVars())
		}
	}
}
