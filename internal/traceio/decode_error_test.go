package traceio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/gen"
	"repro/internal/trace"
)

// binaryBytes encodes tr in the binary format and returns the raw bytes
// plus the length of the header (everything before the first event).
func binaryBytes(t *testing.T, tr *trace.Trace) (full []byte, headerLen int) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var hdr bytes.Buffer
	if err := WriteHeader(&hdr, tr.Symbols, len(tr.Events)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), hdr.Len()
}

func smallTrace(t *testing.T) *trace.Trace {
	t.Helper()
	return gen.Random(gen.RandomConfig{Seed: 3, Events: 200, Threads: 3, Locks: 2, Vars: 4})
}

func TestTruncatedBinaryHeader(t *testing.T) {
	full, headerLen := binaryBytes(t, smallTrace(t))
	// Cut the stream at every prefix of the header: each must fail with a
	// DecodeError that says it died in the header, at an offset no further
	// than the cut. (Prefixes shorter than the magic fall back to the text
	// format by design, so start at the full magic.)
	for cut := len(binaryMagic); cut < headerLen; cut += 7 {
		_, err := OpenStream(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut=%d: truncated header decoded without error", cut)
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("cut=%d: error %v (%T) is not a *DecodeError", cut, err, err)
		}
		if de.Event != -1 {
			t.Errorf("cut=%d: Event = %d, want -1 (header)", cut, de.Event)
		}
		if de.Offset < 0 || de.Offset > int64(cut) {
			t.Errorf("cut=%d: Offset = %d, want within [0, %d]", cut, de.Offset, cut)
		}
		if !strings.Contains(err.Error(), "byte offset") {
			t.Errorf("cut=%d: error %q does not name the byte offset", cut, err)
		}
	}
}

func TestTruncatedBinaryBlock(t *testing.T) {
	tr := smallTrace(t)
	full, headerLen := binaryBytes(t, tr)
	// Cut midway through the event body: the stream opens fine, yields the
	// decodable prefix, then reports a DecodeError locating the bad event.
	cut := headerLen + (len(full)-headerLen)/2
	s, err := OpenStream(bytes.NewReader(full[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]event.Event, 64)
	decoded := 0
	var de *DecodeError
	for {
		n, err := s.NextBlock(buf)
		decoded += n
		if err == nil {
			continue
		}
		if err == io.EOF {
			t.Fatalf("truncated body reached clean EOF after %d events", decoded)
		}
		if !errors.As(err, &de) {
			t.Fatalf("error %v (%T) is not a *DecodeError", err, err)
		}
		break
	}
	if de.Event != int64(decoded) {
		t.Errorf("DecodeError.Event = %d, want %d (first undecodable event)", de.Event, decoded)
	}
	if de.Offset < int64(headerLen) || de.Offset > int64(cut) {
		t.Errorf("DecodeError.Offset = %d, want within body [%d, %d]", de.Offset, headerLen, cut)
	}
	if !errors.Is(de, io.ErrUnexpectedEOF) {
		t.Errorf("truncation error = %v, want to wrap io.ErrUnexpectedEOF", de.Err)
	}
	if decoded >= len(tr.Events) {
		t.Errorf("decoded %d events from a truncated body of %d", decoded, len(tr.Events))
	}
	// The error is latched.
	if _, err := s.NextBlock(buf); !errors.As(err, new(*DecodeError)) {
		t.Errorf("latched error = %v, want the DecodeError again", err)
	}
}

func TestDecodeErrorCarriesFilePath(t *testing.T) {
	full, headerLen := binaryBytes(t, smallTrace(t))
	dir := t.TempDir()

	// Corrupt body: path surfaces through the block reader.
	bodyPath := filepath.Join(dir, "corrupt-body.bin")
	cut := headerLen + (len(full)-headerLen)/2
	if err := os.WriteFile(bodyPath, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := StreamFile(bodyPath)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]event.Event, 64)
	for {
		_, err := s.NextBlock(buf)
		if err == nil {
			continue
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("error %v (%T) is not a *DecodeError", err, err)
		}
		if de.Path != bodyPath {
			t.Errorf("DecodeError.Path = %q, want %q", de.Path, bodyPath)
		}
		if !strings.Contains(err.Error(), bodyPath) {
			t.Errorf("error %q does not name the file", err)
		}
		break
	}

	// Corrupt header: path surfaces at open.
	hdrPath := filepath.Join(dir, "corrupt-header.bin")
	if err := os.WriteFile(hdrPath, full[:headerLen/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := StreamFile(hdrPath); err == nil || !strings.Contains(err.Error(), hdrPath) {
		t.Errorf("StreamFile on truncated header = %v, want error naming %q", err, hdrPath)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	tr := smallTrace(t)
	var buf bytes.Buffer
	if err := WriteHeader(&buf, tr.Symbols, len(tr.Events)); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Events != len(tr.Events) {
		t.Errorf("Events = %d, want %d", h.Events, len(tr.Events))
	}
	d := h.Dims()
	if d.Threads != tr.NumThreads() || d.Vars != tr.NumVars() {
		t.Errorf("Dims = %+v, want %d threads %d vars", d, tr.NumThreads(), tr.NumVars())
	}
	for i, want := range tr.Symbols.ThreadNames() {
		if got := h.Syms.ThreadName(event.TID(i)); got != want {
			t.Fatalf("thread %d = %q, want %q", i, got, want)
		}
	}
}

// TestEventStreamChunks is the session-ingestion contract: a header decoded
// once, then the event body split into arbitrary per-event chunks, each
// decoded with NewEventStream into shared SoA blocks — the concatenation
// must reproduce the trace exactly.
func TestEventStreamChunks(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Seed: 11, Events: 5000, Threads: 4, Locks: 3, Vars: 6})
	var hdr bytes.Buffer
	if err := WriteHeader(&hdr, tr.Symbols, 0); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(&hdr)
	if err != nil {
		t.Fatal(err)
	}
	if h.Dims().Events != -1 {
		t.Fatalf("open-ended header Dims().Events = %d, want -1", h.Dims().Events)
	}

	// Uneven chunk sizes exercise block-boundary handling.
	sizes := []int{1, 7, 1000, 0, 313, 2000}
	var got []event.Event
	base := uint64(0)
	block := trace.NewBlock(256)
	i := 0
	for _, sz := range sizes {
		end := min(i+sz, len(tr.Events))
		var body bytes.Buffer
		if err := EncodeEvents(&body, tr.Events[i:end]); err != nil {
			t.Fatal(err)
		}
		st := NewEventStream(&body, h, base)
		if _, known := st.Dims(); !known {
			t.Fatal("event stream must report known dims")
		}
		for {
			n, err := st.NextBlockSoA(block)
			for j := 0; j < n; j++ {
				got = append(got, block.At(j))
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		base += uint64(end - i)
		i = end
	}
	// The tail beyond the chunk sizes, in one final chunk.
	var body bytes.Buffer
	if err := EncodeEvents(&body, tr.Events[i:]); err != nil {
		t.Fatal(err)
	}
	st := NewEventStream(&body, h, base)
	for {
		n, err := st.NextBlockSoA(block)
		for j := 0; j < n; j++ {
			got = append(got, block.At(j))
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	if len(got) != len(tr.Events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(tr.Events))
	}
	for j, e := range got {
		if e != tr.Events[j] {
			t.Fatalf("event %d = %v, want %v", j, e, tr.Events[j])
		}
	}
}

// TestEventStreamTruncatedChunk: a chunk cut mid-event is a DecodeError
// whose Event index is absolute (offset by base), so server logs locate the
// corruption in the whole session, not just the chunk.
func TestEventStreamTruncatedChunk(t *testing.T) {
	tr := smallTrace(t)
	var hdr bytes.Buffer
	if err := WriteHeader(&hdr, tr.Symbols, 0); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(&hdr)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := EncodeEvents(&body, tr.Events); err != nil {
		t.Fatal(err)
	}
	raw := body.Bytes()
	const base = 1_000_000
	st := NewEventStream(bytes.NewReader(raw[:len(raw)-1]), h, base)
	block := trace.NewBlock(64)
	decoded := 0
	for {
		n, err := st.NextBlockSoA(block)
		decoded += n
		if err == nil {
			continue
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("error %v (%T) is not a *DecodeError", err, err)
		}
		if de.Event != int64(base+decoded) {
			t.Errorf("DecodeError.Event = %d, want %d (base-adjusted)", de.Event, base+decoded)
		}
		if de.Offset <= 0 || de.Offset > int64(len(raw)) {
			t.Errorf("DecodeError.Offset = %d, want within the chunk body", de.Offset)
		}
		return
	}
}
