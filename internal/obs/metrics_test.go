package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "Things.")
	c.Add(3)
	c.Inc()
	g := r.Gauge("x_gauge", "A level.")
	g.Set(2.5)
	r.GaugeFunc("x_fn", "Computed.", func() float64 { return 7 })

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	want := `# HELP x_fn Computed.
# TYPE x_fn gauge
x_fn 7
# HELP x_gauge A level.
# TYPE x_gauge gauge
x_gauge 2.5
# HELP x_total Things.
# TYPE x_total counter
x_total 4
`
	if buf.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help", Label{"engine", "wcp"})
	b := r.Counter("c_total", "help", Label{"engine", "wcp"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("c_total", "help", Label{"engine", "hb"})
	if a == other {
		t.Fatal("different labels must be a different series")
	}
	a.Inc()
	other.Add(2)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{`c_total{engine="wcp"} 1`, `c_total{engine="hb"} 2`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE c_total counter") != 1 {
		t.Errorf("family must have exactly one TYPE line:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 56.05`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("z_seconds", "", nil)
	c := r.Counter("z_total", "")
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(3e-5)
		c.Add(17)
	})
	if allocs != 0 {
		t.Fatalf("Observe+Add allocated %v times per run, want 0", allocs)
	}
}

func TestObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "", nil)
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	if h.Count() != 1 || h.Sum() < 0.009 {
		t.Fatalf("ObserveSince recorded count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "", Label{"k", "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	want := `e_total{k="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("escaping: got %q, want substring %q", buf.String(), want)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m_total", "")
	r.Gauge("m_total", "")
}
