package obs

import (
	"testing"
	"time"
)

func TestTraceLogRingEviction(t *testing.T) {
	l := NewTraceLog(4)
	base := time.Unix(0, 0)
	for i := 0; i < 6; i++ {
		l.Add(Span{Trace: "t", Name: "chunk", Start: base.Add(time.Duration(i) * time.Second)})
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (ring capacity)", l.Len())
	}
	got := l.ByTrace("t")
	if len(got) != 4 {
		t.Fatalf("ByTrace returned %d spans, want 4", len(got))
	}
	// The two oldest spans (0s, 1s) were evicted; order is by start time.
	for i, sp := range got {
		want := base.Add(time.Duration(i+2) * time.Second)
		if !sp.Start.Equal(want) {
			t.Errorf("span %d starts at %v, want %v", i, sp.Start, want)
		}
	}
}

func TestTraceLogFilters(t *testing.T) {
	l := NewTraceLog(16)
	l.Add(Span{Trace: "a", Session: "s1", Name: "create"})
	l.Add(Span{Trace: "a", Session: "s1", Name: "chunk"})
	l.Add(Span{Trace: "b", Session: "s2", Name: "create"})
	l.Add(Span{Session: "s1", Name: "checkpoint"}) // background work: no trace
	if got := l.ByTrace("a"); len(got) != 2 {
		t.Errorf("ByTrace(a) = %d spans, want 2", len(got))
	}
	if got := l.BySession("s1"); len(got) != 3 {
		t.Errorf("BySession(s1) = %d spans, want 3", len(got))
	}
	if got := l.ByTrace("nope"); len(got) != 0 {
		t.Errorf("ByTrace(nope) = %d spans, want 0", len(got))
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || !ValidID(a) {
		t.Errorf("bad trace id %q", a)
	}
	if a == b {
		t.Error("trace ids must be unique")
	}
}

func TestValidID(t *testing.T) {
	for id, want := range map[string]bool{
		"abc123":                 true,
		"A-Z_09":                 true,
		"":                       false,
		"has space":              false,
		"dot.dot":                false,
		"slash/y":                false,
		string(make([]byte, 65)): false,
	} {
		if got := ValidID(id); got != want {
			t.Errorf("ValidID(%q) = %v, want %v", id, got, want)
		}
	}
}
