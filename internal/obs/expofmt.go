package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file parses and re-renders the Prometheus text exposition format.
// The fleet coordinator uses it to scrape each worker's /metrics, inject a
// worker="name" label into every series, and merge the results into one
// exposition — the format requires all samples of a family to sit under a
// single # TYPE line, so naive concatenation of worker outputs is invalid.

// SampleLine is one sample as parsed from an exposition: the (possibly
// suffixed) sample name, the raw rendered label set, and the raw value
// text. Values are kept as text so aggregation never reformats floats.
type SampleLine struct {
	Name   string // e.g. raced_decode_seconds_bucket
	Labels string // rendered `{k="v",...}` or ""
	Value  string
}

// Series returns the full series identity (name + labels) of the line.
func (l SampleLine) Series() string { return l.Name + l.Labels }

// ParsedFamily is one metric family from a parsed exposition.
type ParsedFamily struct {
	Name  string // family name (without _bucket/_sum/_count suffixes)
	Help  string
	Type  string // counter | gauge | histogram | untyped
	Lines []SampleLine
}

// sampleBelongs reports whether a sample name belongs to family fam given
// its type (histograms own the _bucket/_sum/_count suffixed samples).
func sampleBelongs(fam *ParsedFamily, name string) bool {
	if name == fam.Name {
		return true
	}
	if fam.Type == TypeHistogram {
		rest, ok := strings.CutPrefix(name, fam.Name)
		if ok && (rest == "_bucket" || rest == "_sum" || rest == "_count") {
			return true
		}
	}
	return false
}

// ParseExposition parses a text exposition into families, preserving
// sample order. Unknown or malformed lines yield an error — the parser is
// for our own output and for scraped workers running the same code, so
// leniency would only hide bugs.
func ParseExposition(data []byte) ([]*ParsedFamily, error) {
	var fams []*ParsedFamily
	byName := make(map[string]*ParsedFamily)
	var cur *ParsedFamily
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, rest, ok := strings.Cut(strings.TrimSpace(line[1:]), " ")
			if !ok {
				continue
			}
			name, text, _ := strings.Cut(rest, " ")
			switch kind {
			case "HELP":
				cur = getFamily(byName, &fams, name)
				if cur.Help == "" {
					cur.Help = text
				}
			case "TYPE":
				cur = getFamily(byName, &fams, name)
				if cur.Type == "" || cur.Type == "untyped" {
					cur.Type = text
				}
			}
			continue
		}
		name, labels, value, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if cur == nil || !sampleBelongs(cur, name) {
			cur = getFamily(byName, &fams, name)
			if cur.Type == "" {
				cur.Type = "untyped"
			}
		}
		cur.Lines = append(cur.Lines, SampleLine{Name: name, Labels: labels, Value: value})
	}
	return fams, nil
}

func getFamily(byName map[string]*ParsedFamily, fams *[]*ParsedFamily, name string) *ParsedFamily {
	if f, ok := byName[name]; ok {
		return f
	}
	f := &ParsedFamily{Name: name}
	byName[name] = f
	*fams = append(*fams, f)
	return f
}

// splitSample splits `name{labels} value` or `name value`.
func splitSample(line string) (name, labels, value string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", "", fmt.Errorf("malformed labels in %q", line)
		}
		name = line[:i]
		labels = line[i : j+1]
		value = strings.TrimSpace(line[j+1:])
	} else {
		var ok bool
		name, value, ok = strings.Cut(line, " ")
		if !ok {
			return "", "", "", fmt.Errorf("no value in %q", line)
		}
		value = strings.TrimSpace(value)
	}
	if name == "" || value == "" {
		return "", "", "", fmt.Errorf("malformed sample %q", line)
	}
	return name, labels, value, nil
}

// Inject adds key="value" to every sample line of the family. Existing
// labels are preserved; the new label is appended inside the braces.
func (f *ParsedFamily) Inject(key, value string) {
	for i := range f.Lines {
		f.Lines[i].Labels = addLabel(f.Lines[i].Labels, key, value)
	}
}

// MergeFamilies groups same-named families from several expositions into
// one list (sorted by family name), concatenating their sample lines. Help
// and type come from the first group that has them.
func MergeFamilies(groups ...[]*ParsedFamily) []*ParsedFamily {
	byName := make(map[string]*ParsedFamily)
	var out []*ParsedFamily
	for _, g := range groups {
		for _, f := range g {
			m, ok := byName[f.Name]
			if !ok {
				m = &ParsedFamily{Name: f.Name, Help: f.Help, Type: f.Type}
				byName[f.Name] = m
				out = append(out, m)
			}
			if m.Help == "" {
				m.Help = f.Help
			}
			if m.Type == "" || m.Type == "untyped" {
				m.Type = f.Type
			}
			m.Lines = append(m.Lines, f.Lines...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteFamilies renders parsed families back to the exposition format.
func WriteFamilies(w io.Writer, fams []*ParsedFamily) {
	for _, f := range fams {
		if f.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help)
		}
		typ := f.Type
		if typ == "" {
			typ = "untyped"
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, typ)
		for _, l := range f.Lines {
			fmt.Fprintf(w, "%s%s %s\n", l.Name, l.Labels, l.Value)
		}
	}
}
