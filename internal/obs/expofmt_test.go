package obs

import (
	"bytes"
	"strings"
	"testing"
)

func registryExposition(t *testing.T) []byte {
	t.Helper()
	r := NewRegistry()
	r.Counter("a_total", "A counter.").Add(5)
	r.Counter("lbl_total", "Labeled.", Label{"engine", "wcp"}).Inc()
	r.Counter("lbl_total", "Labeled.", Label{"engine", "hb"}).Add(2)
	r.Gauge("g", "A gauge.").Set(1.5)
	h := r.Histogram("h_seconds", "A histogram.", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	return buf.Bytes()
}

func TestParseRoundTrip(t *testing.T) {
	data := registryExposition(t)
	fams, err := ParseExposition(data)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*ParsedFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["a_total"]; f == nil || f.Type != "counter" || f.Help != "A counter." {
		t.Errorf("a_total parsed wrong: %+v", f)
	}
	if f := byName["lbl_total"]; f == nil || len(f.Lines) != 2 {
		t.Errorf("lbl_total must have 2 series: %+v", f)
	}
	f := byName["h_seconds"]
	if f == nil || f.Type != "histogram" {
		t.Fatalf("h_seconds parsed wrong: %+v", f)
	}
	// 2 bounds + +Inf + sum + count = 5 sample lines in one family.
	if len(f.Lines) != 5 {
		t.Errorf("h_seconds has %d lines, want 5: %+v", len(f.Lines), f.Lines)
	}
	var out bytes.Buffer
	WriteFamilies(&out, fams)
	reparsed, err := ParseExposition(out.Bytes())
	if err != nil {
		t.Fatalf("re-rendered exposition does not parse: %v", err)
	}
	if len(reparsed) != len(fams) {
		t.Errorf("round trip changed family count: %d -> %d", len(fams), len(reparsed))
	}
}

func TestInjectAndMerge(t *testing.T) {
	w1, err := ParseExposition(registryExposition(t))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ParseExposition(registryExposition(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range w1 {
		f.Inject("worker", "w1")
	}
	for _, f := range w2 {
		f.Inject("worker", "w2")
	}
	merged := MergeFamilies(w1, w2)
	var buf bytes.Buffer
	WriteFamilies(&buf, merged)
	out := buf.String()

	for _, want := range []string{
		`a_total{worker="w1"} 5`,
		`a_total{worker="w2"} 5`,
		`lbl_total{engine="wcp",worker="w1"} 1`,
		`h_seconds_bucket{le="+Inf",worker="w2"} 2`,
		`h_seconds_count{worker="w1"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("merged exposition missing %q:\n%s", want, out)
		}
	}
	// Each family must appear under exactly one TYPE line, with no
	// duplicate series.
	if n := strings.Count(out, "# TYPE a_total "); n != 1 {
		t.Errorf("a_total has %d TYPE lines, want 1", n)
	}
	seen := map[string]bool{}
	for _, f := range merged {
		for _, l := range f.Lines {
			if seen[l.Series()] {
				t.Errorf("duplicate series %s", l.Series())
			}
			seen[l.Series()] = true
		}
	}
	// Merged output must itself parse.
	if _, err := ParseExposition(buf.Bytes()); err != nil {
		t.Fatalf("merged exposition does not parse: %v", err)
	}
}

func TestParseUntypedLines(t *testing.T) {
	fams, err := ParseExposition([]byte("plain_total 3\nother{a=\"b\"} 1.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2", len(fams))
	}
	if fams[0].Type != "untyped" || fams[0].Lines[0].Value != "3" {
		t.Errorf("plain_total parsed wrong: %+v", fams[0])
	}
	if fams[1].Lines[0].Labels != `{a="b"}` {
		t.Errorf("labels parsed wrong: %+v", fams[1].Lines[0])
	}
}

func TestParseMalformed(t *testing.T) {
	for _, bad := range []string{"novalue\n", "x{unclosed 3\n"} {
		if _, err := ParseExposition([]byte(bad)); err == nil {
			t.Errorf("ParseExposition(%q) must fail", bad)
		}
	}
}
