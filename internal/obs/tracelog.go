package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// HeaderTrace carries the request trace id end-to-end: minted by the
// client, forwarded verbatim by the coordinator, recorded by workers, and
// re-attached on failover restores so one id follows a session across
// worker deaths.
const HeaderTrace = "X-Raced-Trace"

// Span is one timed operation attributed to a trace and/or session. Spans
// live in a bounded ring (TraceLog) and are served by the /debug/trace and
// /debug/sessions endpoints; the coordinator merges rings fleet-wide.
type Span struct {
	Trace    string    `json:"trace,omitempty"`
	Session  string    `json:"session,omitempty"`
	Name     string    `json:"name"`
	Worker   string    `json:"worker,omitempty"`
	Engine   string    `json:"engine,omitempty"`
	Start    time.Time `json:"start"`
	Duration float64   `json:"seconds"`
	Events   uint64    `json:"events,omitempty"`
	Detail   string    `json:"detail,omitempty"`
	Err      string    `json:"error,omitempty"`
}

// DefaultSpanCap bounds the in-memory span ring: enough for the recent
// history of a busy worker without ever growing.
const DefaultSpanCap = 8192

// TraceLog is a fixed-capacity ring of spans. Add overwrites the oldest
// span once full; queries scan linearly (debug endpoints, not hot paths).
type TraceLog struct {
	mu   sync.Mutex
	buf  []Span
	next int
	full bool
}

// NewTraceLog returns a ring holding up to capacity spans
// (DefaultSpanCap if capacity <= 0).
func NewTraceLog(capacity int) *TraceLog {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &TraceLog{buf: make([]Span, capacity)}
}

// Add records a span, evicting the oldest if the ring is full.
func (l *TraceLog) Add(sp Span) {
	l.mu.Lock()
	l.buf[l.next] = sp
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// ByTrace returns all retained spans with the given trace id, ordered by
// start time.
func (l *TraceLog) ByTrace(id string) []Span {
	return l.filter(func(sp *Span) bool { return sp.Trace == id })
}

// BySession returns all retained spans for the given session id, ordered
// by start time: the session's lifecycle timeline.
func (l *TraceLog) BySession(id string) []Span {
	return l.filter(func(sp *Span) bool { return sp.Session == id })
}

// Len returns the number of retained spans.
func (l *TraceLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.buf)
	}
	return l.next
}

func (l *TraceLog) filter(keep func(*Span) bool) []Span {
	l.mu.Lock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	var out []Span
	for i := 0; i < n; i++ {
		if keep(&l.buf[i]) {
			out = append(out, l.buf[i])
		}
	}
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// NewTraceID mints a 16-hex-char random trace id.
func NewTraceID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// ValidID reports whether s is a well-formed trace id for header
// propagation: 1-64 chars of [a-zA-Z0-9_-]. Same alphabet as session ids,
// so ids are safe in URLs, logs, and file names.
func ValidID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
