// Package obs is the shared observability layer for raced: a typed metrics
// registry with Prometheus text exposition, a bounded in-memory span ring
// for request tracing, and a parser for the exposition format so the fleet
// coordinator can aggregate worker registries under per-worker labels.
//
// The design constraint is the ingest hot loop: raced decodes and analyzes
// tens of millions of events per second, so every instrument that can sit
// on that path (Counter.Add, Histogram.Observe) is a handful of atomic ops
// with zero allocations. Allocation happens only at registration time.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// Metric family types, matching the Prometheus text format TYPE values.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Counter is a monotonically increasing uint64. Add/Inc are single atomic
// ops, safe on hot paths.
type Counter struct {
	v atomic.Uint64
}

func (c *Counter) Inc()              { c.v.Add(1) }
func (c *Counter) Add(n uint64)      { c.v.Add(n) }
func (c *Counter) Value() uint64     { return c.v.Load() }
func (c *Counter) write(w io.Writer) { fmt.Fprintf(w, "%d", c.v.Load()) }

// Gauge is a settable float64 (stored as float bits). A gauge registered
// via GaugeFunc computes its value at scrape time instead.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64
}

func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}
func (g *Gauge) write(w io.Writer) { io.WriteString(w, formatFloat(g.Value())) }

// counterFunc is a counter whose value is computed at scrape time — for
// monotonic totals owned by another subsystem (e.g. the report store).
type counterFunc struct {
	fn func() uint64
}

// Histogram is a fixed-bucket histogram. Observe is a linear scan over the
// (small, fixed) bound slice plus three atomic ops — no allocation, no lock.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; implicit +Inf last
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DurationBuckets are the default bounds (seconds) for latency histograms:
// 1µs to ~4s in powers of four, covering a sampled block decode (~µs) up to
// a stalled checkpoint.
var DurationBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6,
	1e-3, 4e-3, 16e-3, 64e-3, 256e-3,
	1, 4,
}

// Observe records one value. Zero-alloc and lock-free.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0, in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// series is one labeled instance within a family.
type series struct {
	labels string // rendered `{k="v",...}` or ""
	metric any    // *Counter, *Gauge, or *Histogram
}

type family struct {
	name   string
	help   string
	typ    string
	series []*series // insertion order; small N, linear lookup
}

func (f *family) find(labels string) *series {
	for _, s := range f.series {
		if s.labels == labels {
			return s
		}
	}
	return nil
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Lookups are get-or-create: registering the same
// name+labels twice returns the same instrument, so duplicate series are
// impossible by construction.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string) *family {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, typ, f.typ))
	}
	return f
}

// Counter returns the counter for name+labels, creating it if needed.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, TypeCounter)
	ls := renderLabels(labels)
	if s := f.find(ls); s != nil {
		return s.metric.(*Counter)
	}
	c := &Counter{}
	f.series = append(f.series, &series{labels: ls, metric: c})
	return c
}

// Gauge returns the settable gauge for name+labels, creating it if needed.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, TypeGauge)
	ls := renderLabels(labels)
	if s := f.find(ls); s != nil {
		return s.metric.(*Gauge)
	}
	g := &Gauge{}
	f.series = append(f.series, &series{labels: ls, metric: g})
	return g
}

// CounterFunc registers a counter whose value is read at scrape time from
// fn — for monotonic totals maintained elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, TypeCounter)
	ls := renderLabels(labels)
	if s := f.find(ls); s != nil {
		s.metric = &counterFunc{fn: fn}
		return
	}
	f.series = append(f.series, &series{labels: ls, metric: &counterFunc{fn: fn}})
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, TypeGauge)
	ls := renderLabels(labels)
	if s := f.find(ls); s != nil {
		s.metric.(*Gauge).fn = fn
		return
	}
	f.series = append(f.series, &series{labels: ls, metric: &Gauge{fn: fn}})
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket upper bounds (DurationBuckets if nil).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, TypeHistogram)
	ls := renderLabels(labels)
	if s := f.find(ls); s != nil {
		return s.metric.(*Histogram)
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	f.series = append(f.series, &series{labels: ls, metric: h})
	return h
}

// WritePrometheus renders every family in the text exposition format:
// families sorted by name, one # HELP and # TYPE line each, series in
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch m := s.metric.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s ", f.name, s.labels)
				m.write(w)
				io.WriteString(w, "\n")
			case *counterFunc:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, m.fn())
			case *Gauge:
				fmt.Fprintf(w, "%s%s ", f.name, s.labels)
				m.write(w)
				io.WriteString(w, "\n")
			case *Histogram:
				writeHistogram(w, f.name, s.labels, m)
			}
		}
	}
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, addLabel(labels, "le", formatFloat(b)), cum)
	}
	count := h.count.Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, addLabel(labels, "le", "+Inf"), count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
}

// renderLabels renders a label set as `{k="v",...}`, sorted by key, with
// value escaping per the exposition format. Empty set renders as "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// addLabel appends one more label to an already-rendered label string.
func addLabel(rendered, key, value string) string {
	pair := key + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
