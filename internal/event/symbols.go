package event

import "fmt"

// Symbols interns thread, lock, variable and location names to dense
// indices. The zero value is ready to use. Symbols is not safe for
// concurrent mutation; detectors only read it.
type Symbols struct {
	threads intern
	locks   intern
	vars    intern
	locs    intern
}

type intern struct {
	byName map[string]int32
	names  []string
}

// grow pre-sizes the table for n total symbols so subsequent interning
// neither rehashes the name index nor regrows the name slice.
func (in *intern) grow(n int) {
	if n <= len(in.names) {
		return
	}
	m := make(map[string]int32, n)
	for name, id := range in.byName {
		m[name] = id
	}
	in.byName = m
	if cap(in.names) < n {
		names := make([]string, len(in.names), n)
		copy(names, in.names)
		in.names = names
	}
}

func (in *intern) id(name string) int32 {
	if id, ok := in.byName[name]; ok {
		return id
	}
	if in.byName == nil {
		in.byName = make(map[string]int32)
	}
	id := int32(len(in.names))
	in.byName[name] = id
	in.names = append(in.names, name)
	return id
}

func (in *intern) name(id int32, prefix string) string {
	if id >= 0 && int(id) < len(in.names) {
		return in.names[id]
	}
	return fmt.Sprintf("%s%d?", prefix, id)
}

// Preallocate pre-sizes the four intern tables for the given total symbol
// counts, so a decoder that knows its symbol universe up front (a traceio
// stream header) interns every name without a single mid-decode rehash or
// slice regrowth. Counts at or below the current table sizes are no-ops;
// zero and negative counts are ignored.
func (s *Symbols) Preallocate(threads, locks, vars, locs int) {
	s.threads.grow(threads)
	s.locks.grow(locks)
	s.vars.grow(vars)
	s.locs.grow(locs)
}

// Thread interns a thread name and returns its dense index.
func (s *Symbols) Thread(name string) TID { return TID(s.threads.id(name)) }

// Lock interns a lock name and returns its dense index.
func (s *Symbols) Lock(name string) LID { return LID(s.locks.id(name)) }

// Var interns a variable name and returns its dense index.
func (s *Symbols) Var(name string) VID { return VID(s.vars.id(name)) }

// Location interns a program-location name and returns its dense index.
func (s *Symbols) Location(name string) Loc { return Loc(s.locs.id(name)) }

// ThreadName returns the name of thread t.
func (s *Symbols) ThreadName(t TID) string { return s.threads.name(int32(t), "T") }

// LockName returns the name of lock l.
func (s *Symbols) LockName(l LID) string { return s.locks.name(int32(l), "L") }

// VarName returns the name of variable v.
func (s *Symbols) VarName(v VID) string { return s.vars.name(int32(v), "V") }

// LocationName returns the name of location p, or "?" for NoLoc.
func (s *Symbols) LocationName(p Loc) string {
	if p == NoLoc {
		return "?"
	}
	return s.locs.name(int32(p), "pc")
}

// NumThreads returns the number of interned threads.
func (s *Symbols) NumThreads() int { return len(s.threads.names) }

// NumLocks returns the number of interned locks.
func (s *Symbols) NumLocks() int { return len(s.locks.names) }

// NumVars returns the number of interned variables.
func (s *Symbols) NumVars() int { return len(s.vars.names) }

// NumLocations returns the number of interned locations.
func (s *Symbols) NumLocations() int { return len(s.locs.names) }

// ThreadNames returns the interned thread names in index order.
// The returned slice must not be modified.
func (s *Symbols) ThreadNames() []string { return s.threads.names }

// LockNames returns the interned lock names in index order.
// The returned slice must not be modified.
func (s *Symbols) LockNames() []string { return s.locks.names }

// VarNames returns the interned variable names in index order.
// The returned slice must not be modified.
func (s *Symbols) VarNames() []string { return s.vars.names }

// LocationNames returns the interned location names in index order.
// The returned slice must not be modified.
func (s *Symbols) LocationNames() []string { return s.locs.names }

// Describe renders an event with symbolic names, e.g. "main:acq(lock1)@pc3".
func (s *Symbols) Describe(e Event) string {
	t := s.ThreadName(e.Thread)
	var obj string
	switch e.Kind {
	case Acquire, Release:
		obj = s.LockName(e.Lock())
	case Read, Write:
		obj = s.VarName(e.Var())
	case Fork, Join:
		obj = s.ThreadName(e.Target())
	default:
		obj = fmt.Sprint(e.Obj)
	}
	if e.Loc == NoLoc {
		return fmt.Sprintf("%s:%s(%s)", t, e.Kind, obj)
	}
	return fmt.Sprintf("%s:%s(%s)@%s", t, e.Kind, obj, s.LocationName(e.Loc))
}
