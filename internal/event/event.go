// Package event defines the event model shared by every analysis in this
// repository: lock acquire/release, variable read/write, and thread
// fork/join events, together with interned symbol tables for thread, lock,
// variable and program-location names.
//
// Events are deliberately small value types: a detector processing hundreds
// of millions of events must not allocate per event. All names are interned
// to dense int32 indices by a Symbols table; detectors index arrays by these
// indices directly.
package event

import "fmt"

// Kind identifies the operation an event performs.
type Kind uint8

// The event kinds understood by every detector. The paper's core model
// (§2.1) has acquire/release/read/write; Fork and Join are the additional
// events RAPID consumes (§4) and are treated as HB edges.
const (
	Acquire Kind = iota // acq(l): Obj is a lock
	Release             // rel(l): Obj is a lock
	Read                // r(x): Obj is a variable
	Write               // w(x): Obj is a variable
	Fork                // fork(u): Obj is the forked thread
	Join                // join(u): Obj is the joined thread
	numKinds
)

var kindNames = [numKinds]string{
	Acquire: "acq",
	Release: "rel",
	Read:    "r",
	Write:   "w",
	Fork:    "fork",
	Join:    "join",
}

// String returns the short mnemonic used by the text trace format.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k < numKinds }

// IsAccess reports whether k is a variable access (read or write).
func (k Kind) IsAccess() bool { return k == Read || k == Write }

// IsSync reports whether k is a lock operation.
func (k Kind) IsSync() bool { return k == Acquire || k == Release }

// TID is a dense thread index assigned by a Symbols table.
type TID int32

// LID is a dense lock index assigned by a Symbols table.
type LID int32

// VID is a dense variable index assigned by a Symbols table.
type VID int32

// Loc is a dense program-location index assigned by a Symbols table.
// Location pairs are what Table 1 counts as "distinct race pairs".
type Loc int32

// NoLoc marks an event with no recorded source location.
const NoLoc Loc = -1

// Event is a single operation in a trace. Exactly one of the typed accessors
// (Lock, Var, Target) is meaningful, selected by Kind.
type Event struct {
	// Kind is the operation performed.
	Kind Kind
	// Thread is the thread performing the event (t(e) in the paper).
	Thread TID
	// Obj is the operand: lock index for Acquire/Release, variable index
	// for Read/Write, target thread index for Fork/Join.
	Obj int32
	// Loc is the program location that issued the event, or NoLoc.
	Loc Loc
}

// Lock returns the lock operated on by an Acquire or Release event.
func (e Event) Lock() LID { return LID(e.Obj) }

// Var returns the variable accessed by a Read or Write event.
func (e Event) Var() VID { return VID(e.Obj) }

// Target returns the thread forked or joined by a Fork or Join event.
func (e Event) Target() TID { return TID(e.Obj) }

// Conflicts reports whether e and f are conflicting accesses: same variable,
// different threads, at least one write (e1 ≍ e2 in the paper).
func (e Event) Conflicts(f Event) bool {
	if !e.Kind.IsAccess() || !f.Kind.IsAccess() {
		return false
	}
	if e.Kind == Read && f.Kind == Read {
		return false
	}
	return e.Obj == f.Obj && e.Thread != f.Thread
}

// String renders the event in the text trace mnemonic form, using raw
// indices (the Symbols table renders names).
func (e Event) String() string {
	switch e.Kind {
	case Acquire, Release:
		return fmt.Sprintf("T%d:%s(L%d)", e.Thread, e.Kind, e.Obj)
	case Read, Write:
		return fmt.Sprintf("T%d:%s(V%d)", e.Thread, e.Kind, e.Obj)
	case Fork, Join:
		return fmt.Sprintf("T%d:%s(T%d)", e.Thread, e.Kind, e.Obj)
	}
	return fmt.Sprintf("T%d:%s(%d)", e.Thread, e.Kind, e.Obj)
}
