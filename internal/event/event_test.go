package event

import (
	"strings"
	"testing"
)

func TestKindStringAndValid(t *testing.T) {
	cases := []struct {
		k    Kind
		name string
	}{
		{Acquire, "acq"}, {Release, "rel"}, {Read, "r"}, {Write, "w"},
		{Fork, "fork"}, {Join, "join"},
	}
	for _, c := range cases {
		if c.k.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", uint8(c.k), c.k.String(), c.name)
		}
		if !c.k.Valid() {
			t.Errorf("%q should be valid", c.name)
		}
	}
	if Kind(99).Valid() {
		t.Error("Kind(99) should be invalid")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Errorf("invalid kind string: %q", Kind(99).String())
	}
}

func TestKindPredicates(t *testing.T) {
	if !Read.IsAccess() || !Write.IsAccess() {
		t.Error("read/write should be accesses")
	}
	if Acquire.IsAccess() || Fork.IsAccess() {
		t.Error("acquire/fork are not accesses")
	}
	if !Acquire.IsSync() || !Release.IsSync() {
		t.Error("acquire/release should be sync")
	}
	if Read.IsSync() {
		t.Error("read is not sync")
	}
}

func TestConflicts(t *testing.T) {
	w0 := Event{Kind: Write, Thread: 0, Obj: 1}
	w1 := Event{Kind: Write, Thread: 1, Obj: 1}
	r1 := Event{Kind: Read, Thread: 1, Obj: 1}
	r2 := Event{Kind: Read, Thread: 2, Obj: 1}
	otherVar := Event{Kind: Write, Thread: 1, Obj: 2}
	acq := Event{Kind: Acquire, Thread: 1, Obj: 1}

	if !w0.Conflicts(w1) || !w1.Conflicts(w0) {
		t.Error("write-write different threads should conflict")
	}
	if !w0.Conflicts(r1) || !r1.Conflicts(w0) {
		t.Error("read-write different threads should conflict")
	}
	if r1.Conflicts(r2) {
		t.Error("read-read never conflicts")
	}
	if w0.Conflicts(otherVar) {
		t.Error("different variables never conflict")
	}
	sameThread := Event{Kind: Read, Thread: 0, Obj: 1}
	if w0.Conflicts(sameThread) {
		t.Error("same thread never conflicts")
	}
	if w0.Conflicts(acq) || acq.Conflicts(w0) {
		t.Error("lock events never conflict")
	}
}

func TestAccessors(t *testing.T) {
	e := Event{Kind: Acquire, Thread: 2, Obj: 5}
	if e.Lock() != 5 {
		t.Errorf("Lock() = %d", e.Lock())
	}
	e = Event{Kind: Read, Thread: 2, Obj: 7}
	if e.Var() != 7 {
		t.Errorf("Var() = %d", e.Var())
	}
	e = Event{Kind: Fork, Thread: 2, Obj: 3}
	if e.Target() != 3 {
		t.Errorf("Target() = %d", e.Target())
	}
}

func TestSymbolsInterning(t *testing.T) {
	var s Symbols
	t0 := s.Thread("main")
	t1 := s.Thread("worker")
	if t0 == t1 {
		t.Error("distinct names should get distinct ids")
	}
	if s.Thread("main") != t0 {
		t.Error("interning not stable")
	}
	if s.NumThreads() != 2 {
		t.Errorf("NumThreads = %d", s.NumThreads())
	}
	if s.ThreadName(t0) != "main" {
		t.Errorf("ThreadName = %q", s.ThreadName(t0))
	}
	l := s.Lock("mu")
	v := s.Var("count")
	p := s.Location("main.go:10")
	if s.LockName(l) != "mu" || s.VarName(v) != "count" || s.LocationName(p) != "main.go:10" {
		t.Error("name round-trips failed")
	}
	if s.LocationName(NoLoc) != "?" {
		t.Errorf("NoLoc name = %q", s.LocationName(NoLoc))
	}
	// Out-of-range names degrade gracefully.
	if !strings.Contains(s.ThreadName(TID(42)), "42") {
		t.Errorf("unknown thread name: %q", s.ThreadName(TID(42)))
	}
}

func TestSymbolsDescribe(t *testing.T) {
	var s Symbols
	tid := s.Thread("t1")
	lid := s.Lock("l")
	vid := s.Var("x")
	loc := s.Location("pc1")
	e := Event{Kind: Acquire, Thread: tid, Obj: int32(lid), Loc: loc}
	if got := s.Describe(e); got != "t1:acq(l)@pc1" {
		t.Errorf("Describe acquire = %q", got)
	}
	e = Event{Kind: Write, Thread: tid, Obj: int32(vid), Loc: NoLoc}
	if got := s.Describe(e); got != "t1:w(x)" {
		t.Errorf("Describe write = %q", got)
	}
	u := s.Thread("t2")
	e = Event{Kind: Fork, Thread: tid, Obj: int32(u), Loc: NoLoc}
	if got := s.Describe(e); got != "t1:fork(t2)" {
		t.Errorf("Describe fork = %q", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: Write, Thread: 1, Obj: 2}
	if got := e.String(); got != "T1:w(V2)" {
		t.Errorf("String = %q", got)
	}
	e = Event{Kind: Release, Thread: 0, Obj: 3}
	if got := e.String(); got != "T0:rel(L3)" {
		t.Errorf("String = %q", got)
	}
	e = Event{Kind: Join, Thread: 0, Obj: 1}
	if got := e.String(); got != "T0:join(T1)" {
		t.Errorf("String = %q", got)
	}
}

func TestSymbolsTableAccessors(t *testing.T) {
	var s Symbols
	s.Thread("a")
	s.Thread("b")
	s.Lock("l")
	s.Var("x")
	s.Var("y")
	s.Location("p")
	if s.NumLocks() != 1 || s.NumVars() != 2 || s.NumLocations() != 1 {
		t.Errorf("counts: locks=%d vars=%d locs=%d", s.NumLocks(), s.NumVars(), s.NumLocations())
	}
	if got := s.ThreadNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("ThreadNames = %v", got)
	}
	if got := s.LockNames(); len(got) != 1 || got[0] != "l" {
		t.Errorf("LockNames = %v", got)
	}
	if got := s.VarNames(); len(got) != 2 || got[1] != "y" {
		t.Errorf("VarNames = %v", got)
	}
	if got := s.LocationNames(); len(got) != 1 || got[0] != "p" {
		t.Errorf("LocationNames = %v", got)
	}
}
