package hb

import (
	"repro/internal/event"
	"repro/internal/trace"
	"repro/internal/vc"
)

// DetectEpoch runs the FastTrack-style epoch-optimized HB detector. Instead
// of a full vector clock per variable it keeps a single epoch (clock@thread)
// for the last write and for reads while they remain totally ordered,
// inflating reads to a vector clock only under read sharing.
//
// The paper names epoch optimizations as future work for WCP (§6); we apply
// them to the HB baseline, where FastTrack established them, and benchmark
// the gap (ablation bench in bench_test.go).
//
// Relative to the full-VC detector, DetectEpoch flags a subset of racy
// events (the same-epoch fast path suppresses re-checks within an epoch) but
// agrees on whether any race exists and on the first racy event; the
// property tests in this package assert exactly that.
func DetectEpoch(tr *trace.Trace) *Result {
	n := tr.NumThreads()
	res := &Result{FirstRace: -1}

	ct := make([]vc.VC, n)
	for t := range ct {
		ct[t] = vc.New(n)
		ct[t].Set(t, 1)
	}
	locks := make([]vc.VC, tr.NumLocks())

	type ftVar struct {
		w      vc.Epoch // epoch of last write
		r      vc.Epoch // epoch of last read when unshared
		shared vc.VC    // read vector clock when sharing, nil otherwise
	}
	vars := make([]ftVar, tr.NumVars())

	flag := func(i int) {
		res.RacyEvents++
		if res.FirstRace < 0 {
			res.FirstRace = i
		}
	}
	epochOf := func(t int) vc.Epoch { return vc.MakeEpoch(t, ct[t].Get(t)) }

	for i, e := range tr.Events {
		t := int(e.Thread)
		switch e.Kind {
		case event.Acquire:
			if lv := locks[e.Lock()]; lv != nil {
				ct[t].Join(lv)
			}
		case event.Release:
			l := e.Lock()
			if locks[l] == nil {
				locks[l] = vc.New(n)
			}
			locks[l].Copy(ct[t])
			ct[t].Set(t, ct[t].Get(t)+1)
		case event.Fork:
			u := int(e.Target())
			ct[u].Join(ct[t])
			ct[t].Set(t, ct[t].Get(t)+1)
		case event.Join:
			ct[t].Join(ct[int(e.Target())])
		case event.Read:
			vs := &vars[e.Var()]
			now := ct[t]
			if vs.shared == nil && vs.r == epochOf(t) {
				continue // same-epoch fast path
			}
			if !vs.w.LeqVC(now) {
				flag(i)
			}
			if vs.shared != nil {
				vs.shared.Set(t, now.Get(t))
			} else if vs.r.LeqVC(now) {
				vs.r = epochOf(t) // exclusive read
			} else {
				// Inflate to a read vector: concurrent readers.
				vs.shared = vc.New(n)
				vs.shared.Set(vs.r.TID(), vs.r.Clock())
				vs.shared.Set(t, now.Get(t))
			}
		case event.Write:
			vs := &vars[e.Var()]
			now := ct[t]
			if vs.shared == nil && vs.w == epochOf(t) {
				continue // same-epoch fast path
			}
			racy := !vs.w.LeqVC(now)
			if vs.shared != nil {
				if !vs.shared.Leq(now) {
					racy = true
				}
				vs.shared = nil // write resets read sharing
			} else if !vs.r.LeqVC(now) {
				racy = true
			}
			if racy {
				flag(i)
			}
			vs.w = epochOf(t)
			vs.r = vc.NoEpoch
		}
	}
	return res
}
