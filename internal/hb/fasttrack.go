package hb

import (
	"repro/internal/event"
	"repro/internal/trace"
	"repro/internal/vc"
)

// This file implements the FastTrack-style epoch mode of the HB detector.
// Instead of a full vector clock per variable it keeps a single epoch
// (clock@thread) for the last write and for reads while they remain totally
// ordered, inflating reads to a vector clock only under read sharing.
//
// The paper names epoch optimizations as future work for WCP (§6); we apply
// them to the HB baseline, where FastTrack established them, and benchmark
// the gap (ablation bench in bench_test.go).
//
// Inflated read vectors are recycled through the detector's arena: a write
// resets read sharing and returns the vector to the freelist, so workloads
// that repeatedly inflate and collapse (read-shared then written) allocate
// nothing in steady state.
//
// Relative to the full-VC detector, epoch mode flags a subset of racy
// events (the same-epoch fast path suppresses re-checks within an epoch) but
// agrees on whether any race exists and on the first racy event; the
// property tests in this package assert exactly that.

// ftVar is the epoch-mode per-variable state.
type ftVar struct {
	w      vc.Epoch // epoch of last write
	r      vc.Epoch // epoch of last read when unshared
	shared *vc.Ref  // read vector clock when sharing, nil otherwise
}

func (d *Detector) epochOf(t int) vc.Epoch {
	return vc.MakeEpoch(t, d.ct[t].Get(t))
}

func (d *Detector) readEpoch(i, t int, x event.VID) {
	vs := &d.evars[x]
	now := d.ct[t].VC()
	if vs.shared == nil && vs.r == d.epochOf(t) {
		return // same-epoch fast path
	}
	if !vs.w.LeqVC(now) {
		d.flag(i)
	}
	switch {
	case vs.shared != nil:
		vs.shared.VC().Set(t, now.Get(t))
	case vs.r.LeqVC(now):
		vs.r = d.epochOf(t) // exclusive read
	default:
		// Inflate to a read vector: concurrent readers.
		vs.shared = d.arena.Get()
		vs.shared.VC().Set(vs.r.TID(), vs.r.Clock())
		vs.shared.VC().Set(t, now.Get(t))
	}
}

func (d *Detector) writeEpoch(i, t int, x event.VID) {
	vs := &d.evars[x]
	now := d.ct[t].VC()
	if vs.shared == nil && vs.w == d.epochOf(t) {
		return // same-epoch fast path
	}
	racy := !vs.w.LeqVC(now)
	if vs.shared != nil {
		if !vs.shared.VC().Leq(now) {
			racy = true
		}
		// A write resets read sharing; the vector goes back to the arena.
		d.arena.Release(vs.shared)
		vs.shared = nil
	} else if !vs.r.LeqVC(now) {
		racy = true
	}
	if racy {
		d.flag(i)
	}
	vs.w = d.epochOf(t)
	vs.r = vc.NoEpoch
}

// DetectEpoch runs the FastTrack-style epoch-optimized HB detector over a
// whole trace.
func DetectEpoch(tr *trace.Trace) *Result {
	return DetectOpts(tr, Options{Epoch: true})
}
