package hb_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/hb"
	"repro/internal/trace"
)

// TestHBSteadyStateAllocsHighThreads extends the steady-state pin of
// TestHBSteadyStateAllocs to a T=256 thread-pool workload: windowed
// clocks, the per-lock join caches and the per-variable access caches
// must keep the streaming step loop allocation-free at high thread
// counts.
func TestHBSteadyStateAllocsHighThreads(t *testing.T) {
	tr := gen.ThreadScaling(gen.ThreadScalingConfig{Threads: 256, Events: 60_000, Shape: "pools", Races: 4})
	const limit = 0.005
	for _, tc := range []struct {
		name string
		opts hb.Options
	}{
		{"vector", hb.Options{}},
		{"epoch", hb.Options{Epoch: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := hb.NewDetector(tr.NumThreads(), tr.NumLocks(), tr.NumVars(), tc.opts)
			feed := func() { d.ProcessBlock(tr.SoA()) }
			feed() // warm-up beyond AllocsPerRun's own
			perEvent := testing.AllocsPerRun(3, feed) / float64(tr.Len())
			if perEvent > limit {
				t.Errorf("steady-state HB T=256 (%s) allocates %.4f allocs/event, want < %v", tc.name, perEvent, limit)
			}
			t.Logf("%s: %.5f allocs/event over %d events", tc.name, perEvent, tr.Len())
		})
	}
}

// TestHBSteadyStateAllocs pins the allocation discipline shared with the
// WCP detector: after warm-up, the HB step loop (vector and epoch modes)
// performs essentially zero heap allocations per event.
func TestHBSteadyStateAllocs(t *testing.T) {
	bench, ok := gen.ByName("montecarlo")
	if !ok {
		t.Fatal("montecarlo benchmark missing")
	}
	tr := bench.Generate(0.25)
	const limit = 0.005
	for _, tc := range []struct {
		name string
		opts hb.Options
	}{
		{"vector", hb.Options{}},
		{"epoch", hb.Options{Epoch: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := hb.NewDetector(tr.NumThreads(), tr.NumLocks(), tr.NumVars(), tc.opts)
			feed := func(tr *trace.Trace) {
				for _, e := range tr.Events {
					d.Process(e)
				}
			}
			feed(tr) // warm-up beyond AllocsPerRun's own
			perEvent := testing.AllocsPerRun(3, func() { feed(tr) }) / float64(tr.Len())
			if perEvent > limit {
				t.Errorf("steady-state HB (%s) allocates %.4f allocs/event, want < %v", tc.name, perEvent, limit)
			}
			t.Logf("%s: %.5f allocs/event over %d events", tc.name, perEvent, tr.Len())
		})
	}
}
