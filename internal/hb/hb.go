// Package hb implements happens-before race detection (Definition 1): the
// classical linear-time vector-clock algorithm (Djit+ style), which the
// paper uses as its scalability baseline (§4, "HB is the simplest sound
// technique, and admits a fast linear time algorithm"), plus a
// FastTrack-style epoch-optimized variant.
//
// Like the paper's RAPID implementation, the HB analysis here is NOT
// windowed: it sees the whole trace and therefore catches the far-apart
// event pairs that windowed tools miss (§4.3).
//
// The detector is streaming, mirroring the WCP detector in internal/core:
// create it with NewDetector (dimensions known up front, e.g. from a binary
// trace header), feed events in trace order with Process, then read the
// Result. It shares the WCP detector's allocation discipline: per-thread
// clocks live in one contiguous bank, and the epoch path recycles inflated
// read vectors through a vc.Arena, so steady-state processing performs
// near-zero heap allocations per event.
//
// It also shares the WCP detector's windowed-clock discipline (vc.WC):
// thread, lock and per-variable clocks carry dirty windows, so joins and
// race-check comparisons touch only the components that can differ from
// zero — work proportional to how many threads actually communicated, not
// to the thread count. Two generation-based caches sit on top:
//
//   - a per-lock join cache (release generation + per-thread last-joined
//     generation) skips the acquire-side join when the thread has already
//     absorbed the lock clock's current value;
//   - a per-variable access cache keyed by (thread, thread-clock
//     generation, peer-state stamps) replays the outcome of the previous
//     identical race check in O(1) — the overwhelmingly common case of a
//     thread accessing the same variable repeatedly between
//     synchronization events (vector mode without pair tracking; pair
//     tracking needs the per-location cells and bypasses it).
package hb

import (
	"repro/internal/event"
	"repro/internal/race"
	"repro/internal/trace"
	"repro/internal/vc"
)

// Options configures the detector.
type Options struct {
	// TrackPairs enables distinct race-pair accounting per program-location
	// pair (Table 1 metric). When false the detector only counts racy
	// events, which is cheaper. Ignored in Epoch mode, which reports no
	// pairs.
	TrackPairs bool
	// Epoch selects the FastTrack-style epoch representation for the
	// per-variable state (see fasttrack.go): one clock@thread word per
	// variable in the common case, inflating reads to a vector clock only
	// under read sharing. Epoch mode flags a subset of racy events (the
	// same-epoch fast path suppresses re-checks within an epoch) but agrees
	// on whether any race exists and on the first racy event.
	Epoch bool
}

// Result is the outcome of an HB analysis.
type Result struct {
	// Report holds the distinct race pairs (nil unless Options.TrackPairs).
	Report *race.Report
	// RacyEvents counts events flagged as racing with an earlier access.
	RacyEvents int
	// FirstRace is the trace index of the first racy event, or -1.
	FirstRace int
	// Events is the number of events processed.
	Events int
}

// cell tracks the accesses at one (variable, location, kind): the join of
// their HB times plus the most recent event index for distance accounting.
type cell struct {
	time vc.VC
	last int
}

// accessKey is the per-variable access cache: the identity of the last
// read (or write) of the variable — thread, the thread clock's generation,
// and the change stamps of the peer aggregate clocks the check compared
// against — plus the check's outcome. While all of those still match, the
// current access is indistinguishable from the cached one: same racy
// verdict, and the aggregate join is a no-op (the aggregate already
// absorbed this exact clock), so the whole access costs one compare.
type accessKey struct {
	valid          bool
	racy           bool
	t              int32
	tgen           uint32
	rStamp, wStamp uint32
}

func (k *accessKey) hit(t int, tgen, rStamp, wStamp uint32) bool {
	return k.valid && k.t == int32(t) && k.tgen == tgen &&
		k.rStamp == rStamp && k.wStamp == wStamp
}

// varState is the per-variable detector state of the full-vector-clock mode.
type varState struct {
	readAll  vc.WC // join of all read times (Rx in §3.2)
	writeAll vc.WC // join of all write times (Wx)
	// rStamp/wStamp bump whenever readAll/writeAll grow; lastR/lastW are
	// the access caches (vector mode without pair tracking only).
	rStamp, wStamp uint32
	lastR, lastW   accessKey
	reads          map[event.Loc]*cell
	writes         map[event.Loc]*cell
}

// hbLock is the per-lock state: the windowed clock of the last release
// plus the join cache — gen counts releases, joinGen[t] is the generation
// thread t last absorbed (or produced), so a matching generation skips the
// acquire-side join entirely (the thread's clock only grows).
type hbLock struct {
	c       vc.WC
	gen     uint32
	joinGen []uint32
}

// Detector is the streaming HB race detector.
type Detector struct {
	opts  Options
	width int
	ct    []vc.WC   // C_t: current HB time of thread t, one contiguous bank
	locks []*hbLock // L_ℓ: last-release state of ℓ, allocated on first use
	vars  []varState
	evars []ftVar   // epoch-mode per-variable state (fasttrack.go)
	arena *vc.Arena // recycled storage for inflated read vectors
	res   Result
	// cache enables the per-variable access caches: vector mode without
	// pair tracking, and only at widths where replaying a verdict beats
	// redoing the compare (tiny-T compares are already a handful of
	// instructions, and the cache bookkeeping would be pure overhead).
	cache bool
	// held tracks each thread's currently-held locks, maintained only in
	// pair-tracking mode to supply the fingerprint context of race
	// observations (HB has no critical-section stack of its own).
	held [][]event.LID
	// joined marks threads some other thread has joined. In a well-formed
	// trace a joined thread emits no further events, so its clock is frozen
	// and compaction (compact.go) excludes it from the domination floor.
	joined []bool
}

// NewDetector returns a detector for traces with the given numbers of
// threads, locks and variables (known up front, e.g. from a binary trace
// header or a prior counting pass).
func NewDetector(threads, locks, vars int, opts Options) *Detector {
	d := &Detector{
		opts:   opts,
		width:  threads,
		ct:     vc.NewWCMatrix(threads, threads),
		locks:  make([]*hbLock, locks),
		arena:  vc.NewArena(threads),
		joined: make([]bool, threads),
	}
	d.res.FirstRace = -1
	if opts.Epoch {
		d.evars = make([]ftVar, vars)
	} else {
		d.vars = make([]varState, vars)
		if opts.TrackPairs {
			d.res.Report = race.NewReport()
			d.held = make([][]event.LID, threads)
		}
	}
	for t := range d.ct {
		d.ct[t].Set(t, 1)
	}
	d.cache = !opts.Epoch && d.res.Report == nil && threads > 8
	return d
}

// Arena exposes the detector's clock arena for allocation accounting.
func (d *Detector) Arena() *vc.Arena { return d.arena }

func (d *Detector) flag(i int) {
	d.res.RacyEvents++
	if d.res.FirstRace < 0 {
		d.res.FirstRace = i
	}
}

// checkAgainst flags races between event i (location loc, time now, thread
// t, variable x) and every prior access recorded in cells whose time is not
// ⊑ now.
func (d *Detector) checkAgainst(cells map[event.Loc]*cell, now vc.VC, i int, loc event.Loc, t int, x event.VID) bool {
	racy := false
	for ploc, c := range cells {
		if !c.time.Leq(now) {
			racy = true
			if d.res.Report != nil {
				d.res.Report.RecordCtx(ploc, loc, i, i-c.last, race.Ctx{Var: x, Locks: d.held[t]})
			}
		}
	}
	return racy
}

func (d *Detector) record(cells map[event.Loc]*cell, loc event.Loc, now vc.VC, i int) {
	c, ok := cells[loc]
	if !ok {
		c = &cell{time: vc.New(d.width)}
		cells[loc] = c
	}
	c.time.Join(now)
	c.last = i
}

// Process feeds the next event of the trace to the detector.
func (d *Detector) Process(e event.Event) {
	i := d.res.Events
	d.res.Events++
	d.stepAt(i, e.Kind, int(e.Thread), e.Obj, e.Loc)
}

// ProcessBlock feeds a structure-of-arrays block of events to the detector,
// the hot ingestion path: the dispatch loop reads the four dense field
// streams directly, and the event counter is maintained per block.
func (d *Detector) ProcessBlock(b *trace.Block) {
	kinds, threads, objs, locs := b.Kinds, b.Threads, b.Objs, b.Locs
	base := d.res.Events
	d.res.Events = base + len(kinds)
	for i, k := range kinds {
		d.stepAt(base+i, event.Kind(k), int(threads[i]), objs[i], event.Loc(locs[i]))
	}
}

// stepAt processes event number i given its unpacked fields. d.res.Events
// must already count the event.
func (d *Detector) stepAt(i int, kind event.Kind, t int, obj int32, loc event.Loc) {
	switch kind {
	case event.Acquire:
		if d.held != nil {
			d.held[t] = append(d.held[t], event.LID(obj))
		}
		// Join cache: a matching generation proves this thread has already
		// absorbed (or produced) the lock clock's current value.
		if lk := d.locks[obj]; lk != nil && lk.joinGen[t] != lk.gen {
			d.ct[t].Join(&lk.c)
			lk.joinGen[t] = lk.gen
		}
	case event.Release:
		if d.held != nil {
			d.popHeld(t, event.LID(obj))
		}
		lk := d.locks[obj]
		if lk == nil {
			lk = &hbLock{joinGen: make([]uint32, d.width)}
			lk.c.Init(d.width)
			d.locks[obj] = lk
		}
		lk.c.Copy(&d.ct[t])
		lk.gen++
		lk.joinGen[t] = lk.gen
		d.ct[t].Set(t, d.ct[t].Get(t)+1)
	case event.Fork:
		u := int(obj)
		d.ct[u].Join(&d.ct[t])
		d.ct[t].Set(t, d.ct[t].Get(t)+1)
	case event.Join:
		d.ct[t].Join(&d.ct[int(obj)])
		d.joined[int(obj)] = true
	case event.Read:
		if d.opts.Epoch {
			d.readEpoch(i, t, event.VID(obj))
			return
		}
		d.read(i, t, event.VID(obj), loc)
	case event.Write:
		if d.opts.Epoch {
			d.writeEpoch(i, t, event.VID(obj))
			return
		}
		d.write(i, t, event.VID(obj), loc)
	}
}

// popHeld removes lock l from thread t's held stack, scanning from the top
// so non-nested release orders still unwind correctly.
func (d *Detector) popHeld(t int, l event.LID) {
	h := d.held[t]
	for j := len(h) - 1; j >= 0; j-- {
		if h[j] == l {
			d.held[t] = append(h[:j], h[j+1:]...)
			return
		}
	}
}

func (d *Detector) read(i, t int, x event.VID, loc event.Loc) {
	vs := &d.vars[x]
	now := &d.ct[t]
	if d.cache {
		// Access cache: identical thread clock and unchanged write
		// aggregate ⇒ identical verdict, and the read aggregate has
		// already absorbed this clock. (The read check ignores readAll, so
		// its stamp is not part of the key.)
		if vs.lastR.hit(t, now.Gen(), 0, vs.wStamp) {
			if vs.lastR.racy {
				d.flag(i)
			}
			return
		}
	}
	racy := vs.writeAll.Ready() && !vs.writeAll.LeqVC(now.VC())
	if racy {
		if d.res.Report != nil {
			if d.checkAgainst(vs.writes, now.VC(), i, loc, t, x) {
				d.flag(i)
			}
		} else {
			d.flag(i)
		}
	}
	if !vs.readAll.Ready() {
		vs.readAll.Init(d.width)
		if d.res.Report != nil {
			vs.reads = make(map[event.Loc]*cell)
		}
	}
	if vs.readAll.Join(now) {
		vs.rStamp++
	}
	if d.res.Report != nil {
		d.record(vs.reads, loc, now.VC(), i)
	} else if d.cache {
		vs.lastR = accessKey{valid: true, racy: racy, t: int32(t), tgen: now.Gen(), wStamp: vs.wStamp}
	}
}

func (d *Detector) write(i, t int, x event.VID, loc event.Loc) {
	vs := &d.vars[x]
	now := &d.ct[t]
	if d.cache {
		if vs.lastW.hit(t, now.Gen(), vs.rStamp, vs.wStamp) {
			if vs.lastW.racy {
				d.flag(i)
			}
			return
		}
	}
	racy := false
	if vs.writeAll.Ready() && !vs.writeAll.LeqVC(now.VC()) {
		if d.res.Report != nil {
			racy = d.checkAgainst(vs.writes, now.VC(), i, loc, t, x) || racy
		} else {
			racy = true
		}
	}
	if vs.readAll.Ready() && !vs.readAll.LeqVC(now.VC()) {
		if d.res.Report != nil {
			racy = d.checkAgainst(vs.reads, now.VC(), i, loc, t, x) || racy
		} else {
			racy = true
		}
	}
	if racy {
		d.flag(i)
	}
	if !vs.writeAll.Ready() {
		vs.writeAll.Init(d.width)
		if d.res.Report != nil {
			vs.writes = make(map[event.Loc]*cell)
		}
	}
	if vs.writeAll.Join(now) {
		vs.wStamp++
	}
	if d.res.Report != nil {
		d.record(vs.writes, loc, now.VC(), i)
	} else if d.cache {
		vs.lastW = accessKey{valid: true, racy: racy, t: int32(t), tgen: now.Gen(), rStamp: vs.rStamp, wStamp: vs.wStamp}
	}
}

// Result returns the analysis outcome accumulated so far. The returned
// value shares state with the detector; read it after the last Process.
func (d *Detector) Result() *Result { return &d.res }

// Detect runs the full-vector-clock HB race detector over tr with race-pair
// tracking enabled.
func Detect(tr *trace.Trace) *Result {
	return DetectOpts(tr, Options{TrackPairs: true})
}

// DetectOpts runs the HB race detector over a whole trace, walking its
// structure-of-arrays view.
func DetectOpts(tr *trace.Trace, opts Options) *Result {
	d := NewDetector(tr.NumThreads(), tr.NumLocks(), tr.NumVars(), opts)
	d.ProcessBlock(tr.SoA())
	return d.Result()
}
