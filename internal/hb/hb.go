// Package hb implements happens-before race detection (Definition 1): the
// classical linear-time vector-clock algorithm (Djit+ style), which the
// paper uses as its scalability baseline (§4, "HB is the simplest sound
// technique, and admits a fast linear time algorithm"), plus a
// FastTrack-style epoch-optimized variant.
//
// Like the paper's RAPID implementation, the HB analysis here is NOT
// windowed: it sees the whole trace and therefore catches the far-apart
// event pairs that windowed tools miss (§4.3).
package hb

import (
	"repro/internal/event"
	"repro/internal/race"
	"repro/internal/trace"
	"repro/internal/vc"
)

// Options configures the detector.
type Options struct {
	// TrackPairs enables distinct race-pair accounting per program-location
	// pair (Table 1 metric). When false the detector only counts racy
	// events, which is cheaper.
	TrackPairs bool
}

// Result is the outcome of an HB analysis.
type Result struct {
	// Report holds the distinct race pairs (nil unless Options.TrackPairs).
	Report *race.Report
	// RacyEvents counts events flagged as racing with an earlier access.
	RacyEvents int
	// FirstRace is the trace index of the first racy event, or -1.
	FirstRace int
}

// cell tracks the accesses at one (variable, location, kind): the join of
// their HB times plus the most recent event index for distance accounting.
type cell struct {
	time vc.VC
	last int
}

// varState is the per-variable detector state.
type varState struct {
	readAll  vc.VC // join of all read times (Rx in §3.2)
	writeAll vc.VC // join of all write times (Wx)
	reads    map[event.Loc]*cell
	writes   map[event.Loc]*cell
}

// Detect runs the full-vector-clock HB race detector over tr with race-pair
// tracking enabled.
func Detect(tr *trace.Trace) *Result {
	return DetectOpts(tr, Options{TrackPairs: true})
}

// DetectOpts runs the full-vector-clock HB race detector over tr.
func DetectOpts(tr *trace.Trace, opts Options) *Result {
	n := tr.NumThreads()
	res := &Result{FirstRace: -1}
	if opts.TrackPairs {
		res.Report = race.NewReport()
	}

	ct := make([]vc.VC, n) // C_t: current HB time of thread t
	for t := range ct {
		ct[t] = vc.New(n)
		ct[t].Set(t, 1)
	}
	locks := make([]vc.VC, tr.NumLocks()) // L_ℓ: time of last release of ℓ
	vars := make([]varState, tr.NumVars())

	flag := func(i int) {
		res.RacyEvents++
		if res.FirstRace < 0 {
			res.FirstRace = i
		}
	}

	// checkAgainst flags races between event i (location loc, time now) and
	// every prior access recorded in cells whose time is not ⊑ now.
	checkAgainst := func(cells map[event.Loc]*cell, now vc.VC, i int, loc event.Loc) bool {
		racy := false
		for ploc, c := range cells {
			if !c.time.Leq(now) {
				racy = true
				if res.Report != nil {
					res.Report.Record(ploc, loc, i, i-c.last)
				}
			}
		}
		return racy
	}

	record := func(cells map[event.Loc]*cell, loc event.Loc, now vc.VC, i int) {
		c, ok := cells[loc]
		if !ok {
			c = &cell{time: vc.New(n)}
			cells[loc] = c
		}
		c.time.Join(now)
		c.last = i
	}

	for i, e := range tr.Events {
		t := int(e.Thread)
		switch e.Kind {
		case event.Acquire:
			if lv := locks[e.Lock()]; lv != nil {
				ct[t].Join(lv)
			}
		case event.Release:
			l := e.Lock()
			if locks[l] == nil {
				locks[l] = vc.New(n)
			}
			locks[l].Copy(ct[t])
			ct[t].Set(t, ct[t].Get(t)+1)
		case event.Fork:
			u := int(e.Target())
			ct[u].Join(ct[t])
			ct[t].Set(t, ct[t].Get(t)+1)
		case event.Join:
			u := int(e.Target())
			ct[t].Join(ct[u])
		case event.Read:
			vs := &vars[e.Var()]
			now := ct[t]
			if vs.writeAll != nil && !vs.writeAll.Leq(now) {
				if res.Report != nil {
					if checkAgainst(vs.writes, now, i, e.Loc) {
						flag(i)
					}
				} else {
					flag(i)
				}
			}
			if vs.readAll == nil {
				vs.readAll = vc.New(n)
				vs.reads = make(map[event.Loc]*cell)
			}
			vs.readAll.Join(now)
			if res.Report != nil {
				record(vs.reads, e.Loc, now, i)
			}
		case event.Write:
			vs := &vars[e.Var()]
			now := ct[t]
			racy := false
			if vs.writeAll != nil && !vs.writeAll.Leq(now) {
				if res.Report != nil {
					racy = checkAgainst(vs.writes, now, i, e.Loc) || racy
				} else {
					racy = true
				}
			}
			if vs.readAll != nil && !vs.readAll.Leq(now) {
				if res.Report != nil {
					racy = checkAgainst(vs.reads, now, i, e.Loc) || racy
				} else {
					racy = true
				}
			}
			if racy {
				flag(i)
			}
			if vs.writeAll == nil {
				vs.writeAll = vc.New(n)
				vs.writes = make(map[event.Loc]*cell)
			}
			vs.writeAll.Join(now)
			if res.Report != nil {
				record(vs.writes, e.Loc, now, i)
			}
		}
	}
	return res
}
