package hb

import (
	"math"

	"repro/internal/vc"
)

// Compaction for the HB detector mirrors internal/core's: a thread that has
// been joined is dead (its clock is frozen), and any per-variable or
// per-lock time ⊑ the pointwise minimum of the live threads' clocks can
// never be unordered against a future access, so the state carrying it
// resets to the fresh zero value. Verdict trajectories are unchanged — the
// differential suites pin compacted sessions byte-identical to
// straight-through runs.

// floor returns the pointwise minimum of the live threads' C_t clocks
// (+∞ components when every thread is dead).
func (d *Detector) floor() vc.VC {
	f := vc.New(d.width)
	for i := range f {
		f[i] = math.MaxInt32
	}
	for t := range d.ct {
		if d.joined[t] {
			continue
		}
		cv := d.ct[t].VC()
		for i, c := range cv {
			if c < f[i] {
				f[i] = c
			}
		}
	}
	return f
}

// Compact retires dominated detector state. Safe at any event boundary;
// invoked by the engine session's compaction policy off the hot path.
func (d *Detector) Compact() {
	f := d.floor()
	for t := range d.ct {
		if !d.joined[t] {
			d.ct[t].Tighten()
		}
	}
	for l, lk := range d.locks {
		if lk == nil {
			continue
		}
		if lk.c.LeqVC(f) {
			// An acquire joining this clock would be a no-op for every
			// live thread; recreation on the next release is fresh.
			d.locks[l] = nil
		} else {
			lk.c.Tighten()
		}
	}
	for x := range d.vars {
		vs := &d.vars[x]
		if wcDominatedHB(&vs.readAll, f) && wcDominatedHB(&vs.writeAll, f) &&
			(vs.readAll.Ready() || vs.writeAll.Ready()) {
			*vs = varState{}
		}
	}
	for x := range d.evars {
		vs := &d.evars[x]
		if vs.w == vc.NoEpoch && vs.r == vc.NoEpoch && vs.shared == nil {
			continue
		}
		if !vs.w.LeqVC(f) || !vs.r.LeqVC(f) {
			continue
		}
		if vs.shared != nil {
			if !vs.shared.VC().Leq(f) {
				continue
			}
			d.arena.Release(vs.shared)
		}
		*vs = ftVar{}
	}
}

func wcDominatedHB(w *vc.WC, floor vc.VC) bool {
	return !w.Ready() || w.LeqVC(floor)
}

// Release returns every arena clock still referenced by per-variable state
// to the freelist. Call it when the detector is finished (session finalize
// or abort): inflated read vectors otherwise hold their slabs hostage even
// after the detector itself is unreachable from the session — the stale-
// session leak class the eviction regression test pins.
func (d *Detector) Release() {
	for x := range d.evars {
		if s := d.evars[x].shared; s != nil {
			d.arena.Release(s)
			d.evars[x].shared = nil
		}
	}
}

// StateBytes estimates the detector's retained state in bytes, for
// compaction budgets and soak-test flatness assertions.
func (d *Detector) StateBytes() int {
	const clockB = 4
	n := d.width * d.width * clockB // ct bank
	n += d.arena.Allocs() * d.width * clockB
	for _, lk := range d.locks {
		if lk != nil {
			n += d.width*clockB + len(lk.joinGen)*4
		}
	}
	for x := range d.vars {
		vs := &d.vars[x]
		if vs.readAll.Ready() {
			n += d.width * clockB
		}
		if vs.writeAll.Ready() {
			n += d.width * clockB
		}
		n += (len(vs.reads) + len(vs.writes)) * (d.width*clockB + 24)
	}
	n += len(d.evars) * 24
	return n
}
