package hb_test

import (
	"testing"

	"repro/internal/closure"
	"repro/internal/gen"
	"repro/internal/hb"
	"repro/internal/trace"
)

func buildRacy() *trace.Trace {
	b := trace.NewBuilder()
	b.At("a").Write("t1", "x")
	b.At("b").Write("t2", "x")
	return b.MustBuild()
}

func TestDetectSimpleRace(t *testing.T) {
	tr := buildRacy()
	res := hb.Detect(tr)
	if res.RacyEvents != 1 || res.FirstRace != 1 {
		t.Fatalf("racy=%d first=%d", res.RacyEvents, res.FirstRace)
	}
	if res.Report.Distinct() != 1 {
		t.Fatalf("pairs = %d", res.Report.Distinct())
	}
	if !res.Report.Has(tr.Symbols.Location("a"), tr.Symbols.Location("b")) {
		t.Error("wrong pair reported")
	}
}

func TestDetectProtected(t *testing.T) {
	b := trace.NewBuilder()
	b.CriticalSection("t1", "l", func(b *trace.Builder) { b.Write("t1", "x") })
	b.CriticalSection("t2", "l", func(b *trace.Builder) { b.Write("t2", "x") })
	res := hb.Detect(b.MustBuild())
	if res.RacyEvents != 0 {
		t.Errorf("protected accesses flagged: %d", res.RacyEvents)
	}
}

func TestDetectForkJoin(t *testing.T) {
	b := trace.NewBuilder()
	b.Write("t0", "x")
	b.Fork("t0", "t1")
	b.Write("t1", "x") // ordered after parent's write via fork
	b.Join("t0", "t1")
	b.Write("t0", "x") // ordered after child's write via join
	res := hb.Detect(b.MustBuild())
	if res.RacyEvents != 0 {
		t.Errorf("fork/join ordered accesses flagged: %d", res.RacyEvents)
	}

	b2 := trace.NewBuilder()
	b2.Fork("t0", "t1")
	b2.Write("t1", "x")
	b2.Write("t0", "x") // concurrent with child
	res2 := hb.Detect(b2.MustBuild())
	if res2.RacyEvents != 1 {
		t.Errorf("concurrent parent/child writes: racy=%d, want 1", res2.RacyEvents)
	}
}

// TestDetectOptsNoPairs checks the cheap mode agrees on race existence.
func TestDetectOptsNoPairs(t *testing.T) {
	for _, b := range gen.Benchmarks[:6] {
		tr := b.Generate(1.0)
		full := hb.Detect(tr)
		cheap := hb.DetectOpts(tr, hb.Options{})
		if cheap.Report != nil {
			t.Error("cheap mode should not allocate a report")
		}
		if (full.RacyEvents > 0) != (cheap.RacyEvents > 0) {
			t.Errorf("%s: full=%d cheap=%d disagree on existence", b.Name, full.RacyEvents, cheap.RacyEvents)
		}
		if full.FirstRace != cheap.FirstRace {
			t.Errorf("%s: first race %d vs %d", b.Name, full.FirstRace, cheap.FirstRace)
		}
	}
}

// TestDetectMatchesClosure compares the vector-clock detector against the
// reference HB closure on random traces: an event is flagged iff it is the
// later element of some HB-unordered conflicting pair.
func TestDetectMatchesClosure(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		cfg := gen.RandomConfig{
			Threads:  int(2 + seed%4),
			Locks:    int(1 + seed%3),
			Vars:     int(1 + seed%3),
			Events:   60,
			Seed:     seed,
			ForkJoin: seed%3 == 0,
		}
		tr := gen.Random(cfg)
		rel := closure.ComputeHB(tr)
		want := make(map[int]bool)
		for _, p := range closure.RacyPairs(tr, rel) {
			want[p[1]] = true
		}
		res := hb.Detect(tr)
		if res.RacyEvents != len(want) {
			t.Fatalf("seed %d: detector flagged %d events, closure %d", seed, res.RacyEvents, len(want))
		}
	}
}

// TestEpochMatchesVC compares the FastTrack-style epoch detector with the
// full-VC detector: same race existence, same first racy event, and the
// epoch detector's count never exceeds the full one (the same-epoch fast
// path can suppress re-reports only).
func TestEpochMatchesVC(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		cfg := gen.RandomConfig{
			Threads:  int(2 + seed%4),
			Locks:    int(1 + seed%3),
			Vars:     int(1 + seed%4),
			Events:   80,
			Seed:     seed + 1000,
			ForkJoin: seed%2 == 0,
		}
		tr := gen.Random(cfg)
		full := hb.DetectOpts(tr, hb.Options{})
		ep := hb.DetectEpoch(tr)
		if (full.RacyEvents > 0) != (ep.RacyEvents > 0) {
			t.Fatalf("seed %d: existence disagrees: full=%d epoch=%d", seed, full.RacyEvents, ep.RacyEvents)
		}
		if full.FirstRace != ep.FirstRace {
			t.Fatalf("seed %d: first race: full=%d epoch=%d", seed, full.FirstRace, ep.FirstRace)
		}
		if ep.RacyEvents > full.RacyEvents {
			t.Fatalf("seed %d: epoch flagged more events (%d) than full (%d)", seed, ep.RacyEvents, full.RacyEvents)
		}
	}
}

// TestEpochReadShare exercises the read-sharing inflation path explicitly.
func TestEpochReadShare(t *testing.T) {
	b := trace.NewBuilder()
	b.Write("t1", "x") // establish a writer
	b.Fork("t1", "t2")
	b.Fork("t1", "t3")
	b.Read("t2", "x") // concurrent readers: inflate to shared
	b.Read("t3", "x")
	b.Write("t1", "x") // races with both reads
	tr := b.MustBuild()
	res := hb.DetectEpoch(tr)
	if res.RacyEvents == 0 {
		t.Error("write after shared reads should be flagged")
	}
	full := hb.DetectOpts(tr, hb.Options{})
	if full.FirstRace != res.FirstRace {
		t.Errorf("first race: full=%d epoch=%d", full.FirstRace, res.FirstRace)
	}
}
