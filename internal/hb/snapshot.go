package hb

import (
	"sort"

	"repro/internal/event"
	"repro/internal/race"
	"repro/internal/snap"
	"repro/internal/vc"
)

// Snapshot codec for the HB detector. Like internal/core's, the payload is
// canonical: thread clocks, lock clocks, per-variable access state, held
// stacks, and the result counters. Join-cache generations, the access
// caches (lastR/lastW and the change stamps), and clock dirty windows are
// recomputable and dropped — restore leaves caches cold and windows tight,
// which costs a few redundant compares and changes no verdict. A snapshot
// of a just-restored detector is byte-identical to the one it came from.

const (
	maxSnapThreads = 1 << 20
	maxSnapSyms    = 1 << 26
	maxSnapCells   = 1 << 24
)

// EncodeSnapshot appends the detector's full semantic state to w.
func (d *Detector) EncodeSnapshot(w *snap.Writer) error {
	var ob byte
	if d.opts.TrackPairs {
		ob |= 1
	}
	if d.opts.Epoch {
		ob |= 2
	}
	w.Byte(ob)
	nvars := len(d.vars)
	if d.opts.Epoch {
		nvars = len(d.evars)
	}
	w.Uvarint(uint64(d.width))
	w.Uvarint(uint64(len(d.locks)))
	w.Uvarint(uint64(nvars))

	w.Int(d.res.Events)
	w.Int(d.res.RacyEvents)
	w.Int(d.res.FirstRace)
	w.Bool(d.res.Report != nil)
	if d.res.Report != nil {
		d.res.Report.EncodeSnapshot(w)
	}

	for t := range d.ct {
		var fb byte
		if d.joined[t] {
			fb |= 1
		}
		w.Byte(fb)
		w.Sparse(d.ct[t].VC())
		if d.held != nil {
			held := make([]int32, len(d.held[t]))
			for i, l := range d.held[t] {
				held[i] = int32(l)
			}
			w.I32s(held)
		}
	}

	for _, lk := range d.locks {
		if lk == nil {
			w.Bool(false)
			continue
		}
		w.Bool(true)
		w.Sparse(lk.c.VC())
	}

	if d.opts.Epoch {
		live := 0
		for x := range d.evars {
			if !evarFresh(&d.evars[x]) {
				live++
			}
		}
		w.Uvarint(uint64(live))
		prev := 0
		for x := range d.evars {
			vs := &d.evars[x]
			if evarFresh(vs) {
				continue
			}
			w.Uvarint(uint64(x - prev))
			prev = x
			w.Uvarint(uint64(vs.w))
			w.Uvarint(uint64(vs.r))
			w.Bool(vs.shared != nil)
			if vs.shared != nil {
				w.Sparse(vs.shared.VC())
			}
		}
		return nil
	}

	live := 0
	for x := range d.vars {
		if !hbVarFresh(&d.vars[x]) {
			live++
		}
	}
	w.Uvarint(uint64(live))
	prev := 0
	for x := range d.vars {
		vs := &d.vars[x]
		if hbVarFresh(vs) {
			continue
		}
		w.Uvarint(uint64(x - prev))
		prev = x
		encodeHBWC(w, &vs.readAll)
		encodeHBWC(w, &vs.writeAll)
		encodeHBCells(w, vs.reads)
		encodeHBCells(w, vs.writes)
	}
	return nil
}

func hbVarFresh(vs *varState) bool {
	return !vs.readAll.Ready() && !vs.writeAll.Ready() &&
		vs.reads == nil && vs.writes == nil
}

func evarFresh(vs *ftVar) bool {
	return vs.w == vc.NoEpoch && vs.r == vc.NoEpoch && vs.shared == nil
}

func encodeHBWC(w *snap.Writer, c *vc.WC) {
	if !c.Ready() {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.Sparse(c.VC())
}

func encodeHBCells(w *snap.Writer, cells map[event.Loc]*cell) {
	if cells == nil {
		w.Uvarint(0)
		w.Bool(false)
		return
	}
	locs := make([]event.Loc, 0, len(cells))
	for loc := range cells {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	w.Uvarint(uint64(len(locs)))
	w.Bool(true)
	prev := event.Loc(0)
	first := true
	for _, loc := range locs {
		if first {
			w.Int(int(loc))
			first = false
		} else {
			w.Uvarint(uint64(loc - prev))
		}
		prev = loc
		c := cells[loc]
		w.Int(c.last)
		w.Sparse(c.time)
	}
}

func decodeHBReadyWC(rd *snap.Reader, c *vc.WC, tmp vc.VC) error {
	tmp.Zero()
	if err := rd.Sparse(tmp); err != nil {
		return err
	}
	c.Zero()
	for i, v := range tmp {
		if v != 0 {
			c.Set(i, v)
		}
	}
	return nil
}

func decodeHBCells(rd *snap.Reader, width int) (map[event.Loc]*cell, error) {
	n, err := rd.Count(maxSnapCells)
	if err != nil {
		return nil, err
	}
	present, err := rd.Bool()
	if err != nil {
		return nil, err
	}
	if !present {
		if n != 0 {
			return nil, &snap.DecodeError{Reason: "cells marked absent with entries"}
		}
		return nil, nil
	}
	cells := make(map[event.Loc]*cell, n)
	loc := event.Loc(0)
	for i := 0; i < n; i++ {
		if i == 0 {
			v, err := rd.I32()
			if err != nil {
				return nil, err
			}
			loc = event.Loc(v)
		} else {
			d, err := rd.Uvarint()
			if err != nil {
				return nil, err
			}
			if d == 0 {
				return nil, &snap.DecodeError{Reason: "non-increasing cell location"}
			}
			loc += event.Loc(d)
		}
		c := &cell{time: vc.New(width)}
		if c.last, err = rd.Int(); err != nil {
			return nil, err
		}
		if err := rd.Sparse(c.time); err != nil {
			return nil, err
		}
		if _, dup := cells[loc]; dup {
			return nil, &snap.DecodeError{Reason: "duplicate cell location"}
		}
		cells[loc] = c
	}
	return cells, nil
}

// DecodeSnapshot reconstructs a detector from a payload written by
// EncodeSnapshot. Any malformation surfaces as a *snap.DecodeError.
func DecodeSnapshot(rd *snap.Reader) (*Detector, error) {
	ob, err := rd.Byte()
	if err != nil {
		return nil, err
	}
	if ob >= 4 || ob == 3 {
		// Epoch mode never tracks pairs.
		return nil, &snap.DecodeError{Reason: "bad detector options"}
	}
	opts := Options{TrackPairs: ob&1 != 0, Epoch: ob&2 != 0}
	threads, err := rd.Count(maxSnapThreads)
	if err != nil {
		return nil, err
	}
	if threads == 0 {
		return nil, &snap.DecodeError{Reason: "zero threads"}
	}
	locks, err := rd.Count(maxSnapSyms)
	if err != nil {
		return nil, err
	}
	vars, err := rd.Count(maxSnapSyms)
	if err != nil {
		return nil, err
	}
	d := NewDetector(threads, locks, vars, opts)
	tmp := vc.New(threads)

	if d.res.Events, err = rd.Int(); err != nil {
		return nil, err
	}
	if d.res.RacyEvents, err = rd.Int(); err != nil {
		return nil, err
	}
	if d.res.FirstRace, err = rd.Int(); err != nil {
		return nil, err
	}
	hasReport, err := rd.Bool()
	if err != nil {
		return nil, err
	}
	if hasReport != (d.res.Report != nil) {
		return nil, &snap.DecodeError{Reason: "report presence inconsistent with options"}
	}
	if hasReport {
		if d.res.Report, err = race.DecodeSnapshotReport(rd); err != nil {
			return nil, err
		}
	}

	for t := range d.ct {
		fb, err := rd.Byte()
		if err != nil {
			return nil, err
		}
		if fb >= 2 {
			return nil, &snap.DecodeError{Reason: "bad thread flags"}
		}
		d.joined[t] = fb&1 != 0
		if err := decodeHBReadyWC(rd, &d.ct[t], tmp); err != nil {
			return nil, err
		}
		if d.held != nil {
			held, err := rd.I32s(maxSnapCells)
			if err != nil {
				return nil, err
			}
			for _, l := range held {
				if int(l) < 0 || int(l) >= locks {
					return nil, &snap.DecodeError{Reason: "held lock out of range"}
				}
				d.held[t] = append(d.held[t], event.LID(l))
			}
		}
	}

	for l := range d.locks {
		present, err := rd.Bool()
		if err != nil {
			return nil, err
		}
		if !present {
			continue
		}
		lk := &hbLock{joinGen: make([]uint32, d.width)}
		lk.c.Init(d.width)
		if err := decodeHBReadyWC(rd, &lk.c, tmp); err != nil {
			return nil, err
		}
		// At least one release has happened; gen=1 with cold join caches
		// forces each thread's next acquire to (no-op) re-join.
		lk.gen = 1
		d.locks[l] = lk
	}

	n, err := rd.Count(vars)
	if err != nil {
		return nil, err
	}
	x := 0
	for i := 0; i < n; i++ {
		dx, err := rd.Uvarint()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			x = int(dx)
		} else {
			if dx == 0 {
				return nil, &snap.DecodeError{Reason: "non-increasing variable"}
			}
			x += int(dx)
		}
		if x >= vars {
			return nil, &snap.DecodeError{Reason: "variable out of range"}
		}
		if opts.Epoch {
			vs := &d.evars[x]
			var e uint64
			if e, err = rd.Uvarint(); err != nil {
				return nil, err
			}
			vs.w = vc.Epoch(e)
			if e, err = rd.Uvarint(); err != nil {
				return nil, err
			}
			vs.r = vc.Epoch(e)
			hasShared, err := rd.Bool()
			if err != nil {
				return nil, err
			}
			if hasShared {
				vs.shared = d.arena.Get()
				if err := rd.Sparse(vs.shared.VC()); err != nil {
					return nil, err
				}
			}
			if evarFresh(vs) {
				return nil, &snap.DecodeError{Reason: "fresh variable encoded"}
			}
			continue
		}
		vs := &d.vars[x]
		rdy, err := rd.Bool()
		if err != nil {
			return nil, err
		}
		if rdy {
			vs.readAll.Init(threads)
			if err := decodeHBReadyWC(rd, &vs.readAll, tmp); err != nil {
				return nil, err
			}
		}
		if rdy, err = rd.Bool(); err != nil {
			return nil, err
		}
		if rdy {
			vs.writeAll.Init(threads)
			if err := decodeHBReadyWC(rd, &vs.writeAll, tmp); err != nil {
				return nil, err
			}
		}
		if vs.reads, err = decodeHBCells(rd, threads); err != nil {
			return nil, err
		}
		if vs.writes, err = decodeHBCells(rd, threads); err != nil {
			return nil, err
		}
		if hbVarFresh(vs) {
			return nil, &snap.DecodeError{Reason: "fresh variable encoded"}
		}
	}
	return d, nil
}

// Options returns the detector's option set (engine restore validates a
// decoded detector's options against the serialized engine name).
func (d *Detector) Options() Options { return d.opts }
