// Package closure computes the paper's orderings ≤HB (Definition 1),
// ≺CP (Definition 2) and ≺WCP (Definition 3) *explicitly*, by fixpoint
// iteration over boolean relation matrices.
//
// This is the O(n³)-ish reference implementation: it is only usable on small
// traces, but it follows the definitions rule by rule, which makes it the
// ground truth against which the streaming linear-time detectors are
// property-tested (Theorem 2 states the streaming WCP algorithm agrees with
// the definition; our tests check exactly that). It also powers the windowed
// CP baseline, mirroring how the paper frames CP as only usable on bounded
// fragments.
package closure

import "math/bits"

// Rel is a binary relation over n events, stored as a bitset matrix:
// row i holds the set {j : i R j}.
type Rel struct {
	n     int
	words int
	rows  []uint64
}

// NewRel returns the empty relation over n events.
func NewRel(n int) *Rel {
	words := (n + 63) / 64
	return &Rel{n: n, words: words, rows: make([]uint64, n*words)}
}

// N returns the number of events the relation ranges over.
func (r *Rel) N() int { return r.n }

func (r *Rel) row(i int) []uint64 { return r.rows[i*r.words : (i+1)*r.words] }

// Has reports i R j.
func (r *Rel) Has(i, j int) bool {
	return r.rows[i*r.words+j/64]&(1<<(uint(j)%64)) != 0
}

// Add inserts (i, j) and reports whether the relation changed.
func (r *Rel) Add(i, j int) bool {
	w := &r.rows[i*r.words+j/64]
	bit := uint64(1) << (uint(j) % 64)
	if *w&bit != 0 {
		return false
	}
	*w |= bit
	return true
}

// OrRow sets row i to row i ∪ row j of s (which must have the same width),
// reporting whether row i changed. It is the workhorse of transitive
// closure: if i R j then everything j reaches, i reaches.
func (r *Rel) OrRow(i int, s *Rel, j int) bool {
	dst, src := r.row(i), s.row(j)
	changed := false
	for w := range dst {
		if nv := dst[w] | src[w]; nv != dst[w] {
			dst[w] = nv
			changed = true
		}
	}
	return changed
}

// Clone returns a deep copy of r.
func (r *Rel) Clone() *Rel {
	c := NewRel(r.n)
	copy(c.rows, r.rows)
	return c
}

// Size returns the number of related pairs.
func (r *Rel) Size() int {
	total := 0
	for _, w := range r.rows {
		total += bits.OnesCount64(w)
	}
	return total
}

// SubsetOf reports whether every pair of r is in s.
func (r *Rel) SubsetOf(s *Rel) bool {
	for i, w := range r.rows {
		if w&^s.rows[i] != 0 {
			return false
		}
	}
	return true
}

// TransitiveClose closes r under transitivity in place using iterated row
// unions (repeat until fixpoint; adequate at reference-scale n).
func (r *Rel) TransitiveClose() {
	for changed := true; changed; {
		changed = false
		for i := 0; i < r.n; i++ {
			for j := 0; j < r.n; j++ {
				if i != j && r.Has(i, j) {
					if r.OrRow(i, r, j) {
						changed = true
					}
				}
			}
		}
	}
}
