package closure

import (
	"testing"

	"repro/internal/trace"
)

// TestComputeMHB checks the program order relation directly: thread order,
// fork and join edges, and nothing else (no lock edges).
func TestComputeMHB(t *testing.T) {
	b := trace.NewBuilder()
	b.Write("t0", "a")   // 0
	b.Fork("t0", "t1")   // 1
	b.Write("t1", "b")   // 2
	b.Release("t0", "l") // 3 (mismatched on purpose: MHB ignores locks)
	b.Acquire("t1", "l") // 4
	b.Join("t0", "t1")   // 5
	b.Write("t0", "c")   // 6
	tr := b.Build()
	mhb := ComputeMHB(tr)

	mustHave := [][2]int{
		{0, 1}, {0, 2}, // thread order, fork edge (transitively from 0)
		{1, 2},         // fork edge
		{2, 4},         // child thread order
		{4, 5}, {2, 5}, // join edge
		{0, 6}, {2, 6}, // transitive through join
		{3, 3}, // reflexive
	}
	for _, p := range mustHave {
		if !mhb.Has(p[0], p[1]) {
			t.Errorf("MHB missing %v", p)
		}
	}
	// Lock hand-off must NOT be in MHB: t0's release (3) and t1's acquire
	// (4) are unrelated threads' events outside fork/join.
	if mhb.Has(3, 4) {
		t.Error("MHB must not contain lock edges")
	}
	// Parent events after the fork are unordered with child events.
	if mhb.Has(3, 2) || mhb.Has(2, 3) {
		t.Error("post-fork parent event should be MHB-unordered with child")
	}
}

// TestMHBInsideWCPAndCP checks the fold: the returned WCP/CP relations
// contain the program order.
func TestMHBInsideWCPAndCP(t *testing.T) {
	b := trace.NewBuilder()
	b.Write("t0", "a")
	b.Fork("t0", "t1")
	b.Write("t1", "a")
	tr := b.MustBuild()
	mhb := ComputeMHB(tr)
	if !mhb.SubsetOf(ComputeWCP(tr)) {
		t.Error("MHB ⊄ returned WCP relation")
	}
	if !mhb.SubsetOf(ComputeCP(tr)) {
		t.Error("MHB ⊄ returned CP relation")
	}
	// Consequently the fork-ordered conflicting writes are not racy.
	if races := RacyPairs(tr, ComputeWCP(tr)); len(races) != 0 {
		t.Errorf("fork-ordered writes reported racy: %v", races)
	}
}
