package closure

import (
	"testing"

	"repro/internal/trace"
)

func TestRelBasics(t *testing.T) {
	r := NewRel(130) // cross the word boundary
	if r.N() != 130 {
		t.Fatalf("N = %d", r.N())
	}
	if r.Has(0, 129) {
		t.Error("empty relation has pairs")
	}
	if !r.Add(0, 129) {
		t.Error("Add should report change")
	}
	if r.Add(0, 129) {
		t.Error("second Add should report no change")
	}
	if !r.Has(0, 129) || r.Has(129, 0) {
		t.Error("Has wrong after Add")
	}
	if r.Size() != 1 {
		t.Errorf("Size = %d", r.Size())
	}
	c := r.Clone()
	c.Add(5, 6)
	if r.Has(5, 6) {
		t.Error("Clone aliased")
	}
	if !r.SubsetOf(c) || c.SubsetOf(r) {
		t.Error("SubsetOf wrong")
	}
}

func TestTransitiveClose(t *testing.T) {
	r := NewRel(5)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(2, 3)
	r.TransitiveClose()
	for _, p := range [][2]int{{0, 2}, {0, 3}, {1, 3}} {
		if !r.Has(p[0], p[1]) {
			t.Errorf("missing transitive pair %v", p)
		}
	}
	if r.Has(3, 0) {
		t.Error("closure invented a backward edge")
	}
}

func TestComputeHBSimple(t *testing.T) {
	b := trace.NewBuilder()
	b.Write("t1", "x")   // 0
	b.Acquire("t1", "l") // 1
	b.Release("t1", "l") // 2
	b.Acquire("t2", "l") // 3
	b.Write("t2", "x")   // 4
	b.Write("t3", "x")   // 5
	tr := b.MustBuild()
	hb := ComputeHB(tr)
	if !hb.Has(0, 4) {
		t.Error("w(x)@0 ≤HB w(x)@4 via lock l")
	}
	if hb.Has(0, 5) || hb.Has(5, 0) {
		t.Error("t3 is unordered with everyone")
	}
	if !hb.Has(2, 3) {
		t.Error("rel ≤HB later acq on same lock")
	}
	if !hb.Has(1, 1) {
		t.Error("HB should be reflexive")
	}
	races := RacyPairs(tr, hb)
	// (0,5), (4,5) race; (0,4) does not.
	if len(races) != 2 {
		t.Errorf("races = %v", races)
	}
}

func TestComputeHBForkJoin(t *testing.T) {
	b := trace.NewBuilder()
	b.Write("t0", "x") // 0
	b.Fork("t0", "t1") // 1
	b.Write("t1", "x") // 2
	b.Write("t0", "y") // 3
	b.Join("t0", "t1") // 4
	b.Write("t0", "x") // 5
	tr := b.MustBuild()
	hb := ComputeHB(tr)
	if !hb.Has(0, 2) {
		t.Error("pre-fork write ≤HB child write")
	}
	if hb.Has(3, 2) || hb.Has(2, 3) {
		t.Error("post-fork parent write unordered with child")
	}
	if !hb.Has(2, 5) {
		t.Error("child write ≤HB post-join write")
	}
	if races := RacyPairs(tr, hb); len(races) != 0 {
		t.Errorf("fork/join trace should be race free, got %v", races)
	}
}

func TestOrderedHelper(t *testing.T) {
	b := trace.NewBuilder()
	b.Write("t1", "x") // 0
	b.Write("t1", "x") // 1
	b.Write("t2", "x") // 2
	tr := b.MustBuild()
	wcp := ComputeWCP(tr)
	if !Ordered(tr, wcp, 0, 1) {
		t.Error("thread order must order same-thread events")
	}
	if Ordered(tr, wcp, 0, 2) {
		t.Error("nothing orders cross-thread writes here")
	}
}

// TestCPRuleA checks CP's rule (a) on the canonical conflicting critical
// sections of Figure 1(a): the whole sections become ordered.
func TestCPRuleA(t *testing.T) {
	b := trace.NewBuilder()
	b.Acquire("t1", "l") // 0
	b.Write("t1", "x")   // 1
	b.Release("t1", "l") // 2
	b.Acquire("t2", "l") // 3
	b.Write("t2", "x")   // 4
	b.Release("t2", "l") // 5
	tr := b.MustBuild()
	cp := ComputeCP(tr)
	if !cp.Has(2, 3) {
		t.Error("rule (a): rel ≺CP acq for conflicting critical sections")
	}
	if !Ordered(tr, cp, 1, 4) {
		t.Error("the conflicting writes should be CP ordered")
	}
	// WCP rule (a) is weaker: it orders the release before the conflicting
	// access, not before the acquire.
	wcp := ComputeWCP(tr)
	if wcp.Has(2, 3) {
		t.Error("WCP must not order rel ≺ acq")
	}
	if !wcp.Has(2, 4) {
		t.Error("WCP rule (a): rel ≺WCP conflicting access")
	}
}
