package closure

import (
	"repro/internal/event"
	"repro/internal/trace"
)

// csInfo describes one critical section of a trace.
type csInfo struct {
	lock   event.LID
	acq    int // acquire event index
	rel    int // release event index, or -1 if the CS runs to end of trace
	events []int
	mask   []uint64 // bitset over event indices, for fast ∃-pair checks
}

// csAnalysis gathers the critical-section structure a trace's WCP/CP rules
// need: every CS with its member events, plus for each event the list of
// enclosing critical sections.
type csAnalysis struct {
	n    int
	cs   []csInfo
	encl [][]int // event index -> indices into cs of enclosing sections
	// byRel maps a release event index to its csInfo index, -1 otherwise.
	byRel []int
	// byAcq maps an acquire event index to its csInfo index, -1 otherwise.
	byAcq []int
}

func analyzeCS(tr *trace.Trace) *csAnalysis {
	n := tr.Len()
	a := &csAnalysis{
		n:     n,
		encl:  make([][]int, n),
		byRel: make([]int, n),
		byAcq: make([]int, n),
	}
	for i := range a.byRel {
		a.byRel[i] = -1
		a.byAcq[i] = -1
	}
	words := (n + 63) / 64
	// Per-thread stack of open csInfo indices. The critical-section pass
	// reads the trace through the SoA cursor.
	open := make(map[event.TID][]int)
	for c := tr.SoA().Cursor(); c.Next(); {
		i, e := c.Index(), c.Event()
		if e.Kind == event.Acquire {
			ci := len(a.cs)
			a.cs = append(a.cs, csInfo{lock: e.Lock(), acq: i, rel: -1, mask: make([]uint64, words)})
			a.byAcq[i] = ci
			open[e.Thread] = append(open[e.Thread], ci)
		}
		// The event belongs to every open CS of its thread (acquires were
		// just pushed, so an acquire is in its own CS; a release is popped
		// after recording, so it is in its own CS too).
		for _, ci := range open[e.Thread] {
			a.cs[ci].events = append(a.cs[ci].events, i)
			a.cs[ci].mask[i/64] |= 1 << (uint(i) % 64)
			a.encl[i] = append(a.encl[i], ci)
		}
		if e.Kind == event.Release {
			stack := open[e.Thread]
			if len(stack) > 0 {
				ci := stack[len(stack)-1]
				// Well-nested traces release the innermost lock; tolerate
				// anything else by popping the innermost matching section.
				k := len(stack) - 1
				for k >= 0 && a.cs[stack[k]].lock != e.Lock() {
					k--
				}
				if k >= 0 {
					ci = stack[k]
					open[e.Thread] = append(stack[:k:k], stack[k+1:]...)
					a.cs[ci].rel = i
					a.byRel[i] = ci
				}
			}
		}
	}
	return a
}

// ComputeMHB returns the reflexive program order: thread order plus
// fork/join edges, closed under transitivity. A child's events cannot
// precede its fork and a join cannot precede the child's last event in any
// execution, so pairs ordered by this relation are never races — but the
// ordering is not WCP knowledge either (it composes like thread order, not
// like a rule-(a)/(b) edge).
func ComputeMHB(tr *trace.Trace) *Rel {
	n := tr.Len()
	po := NewRel(n)
	for i := 0; i < n; i++ {
		po.Add(i, i)
	}
	lastOf := make(map[event.TID]int)
	firstOf := make(map[event.TID]int)
	for i, e := range tr.Events {
		if p, ok := lastOf[e.Thread]; ok {
			po.Add(p, i)
		}
		lastOf[e.Thread] = i
		if _, ok := firstOf[e.Thread]; !ok {
			firstOf[e.Thread] = i
		}
	}
	for i, e := range tr.Events {
		switch e.Kind {
		case event.Fork:
			for j := i + 1; j < n; j++ {
				if tr.Events[j].Thread == e.Target() {
					po.Add(i, j)
					break
				}
			}
		case event.Join:
			last := -1
			for j := 0; j < i; j++ {
				if tr.Events[j].Thread == e.Target() {
					last = j
				}
			}
			if last >= 0 {
				po.Add(last, i)
			}
		}
	}
	po.TransitiveClose()
	return po
}

// ComputeHB returns the reflexive ≤HB relation of Definition 1 extended with
// fork/join edges: thread order, release-to-later-acquire on the same lock,
// fork-to-first-child-event, and last-child-event-to-join, closed under
// transitivity.
func ComputeHB(tr *trace.Trace) *Rel {
	n := tr.Len()
	hb := NewRel(n)
	for i := 0; i < n; i++ {
		hb.Add(i, i)
	}
	// Thread order: successive events of the same thread.
	lastOf := make(map[event.TID]int)
	firstAfter := func(t event.TID, from int) int {
		for j := from + 1; j < n; j++ {
			if tr.Events[j].Thread == t {
				return j
			}
		}
		return -1
	}
	for i, e := range tr.Events {
		if p, ok := lastOf[e.Thread]; ok {
			hb.Add(p, i)
		}
		lastOf[e.Thread] = i
	}
	// Release to every later acquire of the same lock.
	for i, e := range tr.Events {
		if e.Kind != event.Release {
			continue
		}
		for j := i + 1; j < n; j++ {
			f := tr.Events[j]
			if f.Kind == event.Acquire && f.Lock() == e.Lock() {
				hb.Add(i, j)
			}
		}
	}
	// Fork and join edges.
	for i, e := range tr.Events {
		switch e.Kind {
		case event.Fork:
			if j := firstAfter(e.Target(), i); j >= 0 {
				hb.Add(i, j)
			}
		case event.Join:
			last := -1
			for j := 0; j < i; j++ {
				if tr.Events[j].Thread == e.Target() {
					last = j
				}
			}
			if last >= 0 {
				hb.Add(last, i)
			}
		}
	}
	hb.TransitiveClose()
	return hb
}

// anyPairRelated reports whether some e1 in cs1 and e2 in cs2 satisfy
// rel(e1, e2), using cs2's bitmask against rel's rows.
func anyPairRelated(rel *Rel, cs1, cs2 *csInfo) bool {
	for _, e1 := range cs1.events {
		row := rel.row(e1)
		for w, m := range cs2.mask {
			if row[w]&m != 0 {
				return true
			}
		}
	}
	return false
}

func anyConflict(tr *trace.Trace, cs1 *csInfo, e event.Event) bool {
	for _, i := range cs1.events {
		if tr.Events[i].Conflicts(e) {
			return true
		}
	}
	return false
}

// composeWithHB closes rel under rule (c): rel = (rel ∘ hb) = (hb ∘ rel),
// reporting whether anything was added.
func composeWithHB(rel, hb *Rel) bool {
	n := rel.N()
	changed := false
	for i := 0; i < n; i++ {
		// rel ∘ hb: i rel j, j hb k ⇒ i rel k.
		for j := 0; j < n; j++ {
			if i != j && rel.Has(i, j) {
				if rel.OrRow(i, hb, j) {
					changed = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		// hb ∘ rel: i hb j, j rel k ⇒ i rel k.
		for j := 0; j < n; j++ {
			if i != j && hb.Has(i, j) {
				if rel.OrRow(i, rel, j) {
					changed = true
				}
			}
		}
	}
	return changed
}

// ComputeWCP returns the irreflexive ≺WCP relation of Definition 3, computed
// as the least fixpoint of rules (a), (b), (c). The returned relation does
// NOT include thread order; use Ordered for the ≤WCP partial order.
func ComputeWCP(tr *trace.Trace) *Rel {
	n := tr.Len()
	a := analyzeCS(tr)
	hb := ComputeHB(tr)
	wcp := NewRel(n)

	// Rule (a): rel(ℓ) event r, access e with e ∈ ℓ and r <tr e, and CS(r)
	// contains an event conflicting with e ⇒ r ≺WCP e. Static: seed once.
	for ci := range a.cs {
		cs := &a.cs[ci]
		if cs.rel < 0 {
			continue // not a completed critical section; no release event
		}
		for j := cs.rel + 1; j < n; j++ {
			e := tr.Events[j]
			if !e.Kind.IsAccess() {
				continue
			}
			inL := false
			for _, cj := range a.encl[j] {
				if a.cs[cj].lock == cs.lock {
					inL = true
					break
				}
			}
			if inL && anyConflict(tr, cs, e) {
				wcp.Add(cs.rel, j)
			}
		}
	}

	// Fixpoint of rules (b) and (c).
	for changed := true; changed; {
		changed = false
		// Rule (b): releases r1 <tr r2 on the same lock with WCP-ordered
		// events inside their critical sections ⇒ r1 ≺WCP r2.
		for i := range a.cs {
			cs1 := &a.cs[i]
			if cs1.rel < 0 {
				continue
			}
			for j := range a.cs {
				cs2 := &a.cs[j]
				if cs2.rel < 0 || cs2.rel <= cs1.rel || cs1.lock != cs2.lock {
					continue
				}
				if wcp.Has(cs1.rel, cs2.rel) {
					continue
				}
				if anyPairRelated(wcp, cs1, cs2) {
					wcp.Add(cs1.rel, cs2.rel)
					changed = true
				}
			}
		}
		if composeWithHB(wcp, hb) {
			changed = true
		}
	}
	// Fold in program order (fork/join ancestry): it orders events like
	// thread order does, so it belongs in the returned ordering used for
	// race checks — but it never participated in the fixpoint above, where
	// rules (a)/(b) demand strict ≺WCP evidence. Compositions of MHB with
	// ≺WCP are already present: MHB ⊆ ≤HB and the fixpoint closed under
	// HB composition on both sides.
	mhb := ComputeMHB(tr)
	for i := 0; i < n; i++ {
		wcp.OrRow(i, mhb, i)
	}
	return wcp
}

// ComputeCP returns the irreflexive ≺CP relation of Definition 2, computed
// as the least fixpoint of its rules (a), (b), (c).
func ComputeCP(tr *trace.Trace) *Rel {
	n := tr.Len()
	a := analyzeCS(tr)
	hb := ComputeHB(tr)
	cp := NewRel(n)

	// Rule (a): rel r and acq a on the same lock, r <tr a, with conflicting
	// events in their critical sections ⇒ r ≺CP a. Static.
	for i := range a.cs {
		cs1 := &a.cs[i]
		if cs1.rel < 0 {
			continue
		}
		for j := range a.cs {
			cs2 := &a.cs[j]
			if cs2.acq <= cs1.rel || cs1.lock != cs2.lock {
				continue
			}
			conflict := false
			for _, e2 := range cs2.events {
				if anyConflict(tr, cs1, tr.Events[e2]) {
					conflict = true
					break
				}
			}
			if conflict {
				cp.Add(cs1.rel, cs2.acq)
			}
		}
	}

	// Fixpoint of rules (b) and (c).
	for changed := true; changed; {
		changed = false
		for i := range a.cs {
			cs1 := &a.cs[i]
			if cs1.rel < 0 {
				continue
			}
			for j := range a.cs {
				cs2 := &a.cs[j]
				if cs2.acq <= cs1.rel || cs1.lock != cs2.lock {
					continue
				}
				if cp.Has(cs1.rel, cs2.acq) {
					continue
				}
				if anyPairRelated(cp, cs1, cs2) {
					cp.Add(cs1.rel, cs2.acq)
					changed = true
				}
			}
		}
		if composeWithHB(cp, hb) {
			changed = true
		}
	}
	// Fold in program order, as in ComputeWCP.
	mhb := ComputeMHB(tr)
	for i := 0; i < n; i++ {
		cp.OrRow(i, mhb, i)
	}
	return cp
}

// Ordered lifts an irreflexive cross-thread relation (≺WCP or ≺CP) to the
// corresponding partial order (≤WCP or ≤CP) question: it reports whether
// event i is ordered before j by rel ∪ thread order, for i <tr j.
func Ordered(tr *trace.Trace, rel *Rel, i, j int) bool {
	if tr.Events[i].Thread == tr.Events[j].Thread {
		return i <= j
	}
	return rel.Has(i, j)
}

// RacyPairs returns all conflicting pairs (i, j) with i <tr j that are
// unordered by rel ∪ thread order. For the HB relation pass ComputeHB's
// result directly (it already contains thread order); for WCP/CP pass the
// ≺ relation.
func RacyPairs(tr *trace.Trace, rel *Rel) [][2]int {
	var out [][2]int
	n := tr.Len()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !tr.Events[i].Conflicts(tr.Events[j]) {
				continue
			}
			if !rel.Has(i, j) && !rel.Has(j, i) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}
