// Package faultinject provides composable transport-fault injection for
// exercising the raced ingestion path under real failure: a net.Listener /
// net.Conn wrapper and an io.Reader wrapper that drop connections after N
// bytes, stall mid-transfer, flip bits, truncate streams, and add per-read
// latency. The same wrappers serve two consumers — the chaos differential
// test suite wraps in-process listeners deterministically, and the raced
// daemon's -chaos flag wraps its own listener for soak runs against real
// clients.
//
// Faults are described by a Plan (one connection's fault schedule; the zero
// Plan injects nothing) and rolled per connection by an Injector, whose
// Options carry per-mode probabilities and a seed so chaos runs are
// reproducible. Every fault that actually fires is counted; Counters feeds
// the daemon's /metrics.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedDrop is the error surfaced by reads and writes on a connection
// (or reader) whose drop fault has fired. Transport code sees it exactly
// like a peer resetting the connection.
var ErrInjectedDrop = errors.New("faultinject: connection dropped")

// Plan is one connection's fault schedule. Byte thresholds count inbound
// bytes (what the wrapped side reads); a zero field disables that fault, so
// the zero Plan is a clean connection.
type Plan struct {
	// DropAfter closes the transport with ErrInjectedDrop once this many
	// bytes have been read.
	DropAfter int64
	// TruncateAfter makes reads report io.EOF (and, on conns, writes
	// silently succeed without delivering) once this many bytes have been
	// read: the stream ends early but cleanly, as a proxy cutting a body
	// short would leave it.
	TruncateAfter int64
	// StallAfter pauses the first read crossing this byte count for
	// StallFor — a slow peer, not a dead one.
	StallAfter int64
	StallFor   time.Duration
	// FlipBitAt corrupts the stream: the low bit of inbound byte offset
	// FlipBitAt-1 is inverted (the field is 1-based so zero keeps the zero
	// Plan clean).
	FlipBitAt int64
	// Latency is added to every read, modeling a high-RTT or congested
	// path.
	Latency time.Duration
}

func (p Plan) active() bool { return p != Plan{} }

// Counters tallies faults that actually fired, per mode. All fields are
// atomics; read them live.
type Counters struct {
	Drops     atomic.Uint64
	Truncates atomic.Uint64
	Stalls    atomic.Uint64
	BitFlips  atomic.Uint64
	Delays    atomic.Uint64 // reads that paid the latency fault
	Conns     atomic.Uint64 // connections accepted with a non-zero Plan
}

// Total returns the number of injected faults across all modes (latency
// delays excluded — they are pervasive by design, not discrete faults).
func (c *Counters) Total() uint64 {
	return c.Drops.Load() + c.Truncates.Load() + c.Stalls.Load() + c.BitFlips.Load()
}

// WriteMetrics emits the counters in Prometheus text format (HELP/TYPE
// included, so the output stays valid when merged into a full exposition),
// for the daemon's /metrics endpoint.
func (c *Counters) WriteMetrics(w io.Writer) {
	write := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	write("raced_faults_injected_total", "Connection faults injected across all modes.", c.Total())
	write("raced_faults_drops_total", "Connections dropped mid-stream.", c.Drops.Load())
	write("raced_faults_truncates_total", "Request bodies truncated.", c.Truncates.Load())
	write("raced_faults_stalls_total", "Connections stalled.", c.Stalls.Load())
	write("raced_faults_bitflips_total", "Bytes corrupted in flight.", c.BitFlips.Load())
	write("raced_faults_faulty_conns_total", "Connections accepted with a non-zero fault plan.", c.Conns.Load())
}

// Options parameterize an Injector: per-connection fault probabilities and
// the placement window for byte-offset faults. The zero value injects
// nothing.
type Options struct {
	// DropProb, TruncProb, StallProb, FlipProb are independent per-conn
	// probabilities in [0,1] that the corresponding fault is scheduled.
	DropProb, TruncProb, StallProb, FlipProb float64
	// MaxOffset bounds where byte-offset faults land: offsets are drawn
	// uniformly from [1, MaxOffset]. Defaults to 64 KiB.
	MaxOffset int64
	// StallFor is the stall duration when a stall is scheduled. Defaults
	// to 50ms.
	StallFor time.Duration
	// Latency is added to every read of every connection (0 = none).
	Latency time.Duration
	// Seed makes the fault schedule reproducible. 0 seeds from 1.
	Seed int64
}

func (o *Options) fill() {
	if o.MaxOffset <= 0 {
		o.MaxOffset = 64 << 10
	}
	if o.StallFor <= 0 {
		o.StallFor = 50 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ParseSpec parses the -chaos flag syntax: comma-separated key=value pairs.
//
//	drop=0.2,trunc=0.1,stall=0.1,flip=0.05,latency=2ms,stallfor=100ms,maxoff=32768,seed=7
//
// Unknown keys are an error; an empty spec is all-zero Options.
func ParseSpec(spec string) (Options, error) {
	var o Options
	if strings.TrimSpace(spec) == "" {
		o.fill()
		return o, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, found := strings.Cut(strings.TrimSpace(kv), "=")
		if !found {
			return o, fmt.Errorf("faultinject: bad spec element %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "drop":
			o.DropProb, err = parseProb(v)
		case "trunc":
			o.TruncProb, err = parseProb(v)
		case "stall":
			o.StallProb, err = parseProb(v)
		case "flip":
			o.FlipProb, err = parseProb(v)
		case "latency":
			o.Latency, err = time.ParseDuration(v)
		case "stallfor":
			o.StallFor, err = time.ParseDuration(v)
		case "maxoff":
			o.MaxOffset, err = strconv.ParseInt(v, 10, 64)
		case "seed":
			o.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return o, fmt.Errorf("faultinject: unknown spec key %q", k)
		}
		if err != nil {
			return o, fmt.Errorf("faultinject: spec %s=%q: %w", k, v, err)
		}
	}
	o.fill()
	return o, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

// Injector rolls a fault Plan per connection and counts what fires. Safe
// for concurrent use.
type Injector struct {
	opts     Options
	mu       sync.Mutex
	rng      *rand.Rand
	Counters Counters
}

// New returns an Injector drawing fault plans per Options.
func New(opts Options) *Injector {
	opts.fill()
	return &Injector{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// NextPlan rolls the fault schedule for one connection.
func (in *Injector) NextPlan() Plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	var p Plan
	roll := func(prob float64) (int64, bool) {
		if prob <= 0 || in.rng.Float64() >= prob {
			return 0, false
		}
		return 1 + in.rng.Int63n(in.opts.MaxOffset), true
	}
	if off, ok := roll(in.opts.DropProb); ok {
		p.DropAfter = off
	}
	if off, ok := roll(in.opts.TruncProb); ok {
		p.TruncateAfter = off
	}
	if off, ok := roll(in.opts.StallProb); ok {
		p.StallAfter = off
		p.StallFor = in.opts.StallFor
	}
	if off, ok := roll(in.opts.FlipProb); ok {
		p.FlipBitAt = off
	}
	p.Latency = in.opts.Latency
	return p
}

// WrapListener returns a listener whose accepted connections carry fault
// plans rolled by the injector.
func (in *Injector) WrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	plan := l.in.NextPlan()
	if !plan.active() {
		return c, nil
	}
	l.in.Counters.Conns.Add(1)
	return NewConn(c, plan, &l.in.Counters), nil
}

// state is the shared fault-firing logic of the conn and reader wrappers:
// it walks a Plan against the count of inbound bytes.
type state struct {
	plan Plan
	c    *Counters
	read int64 // inbound bytes consumed so far

	stalled   atomic.Bool
	dropped   atomic.Bool
	truncated atomic.Bool
}

// discard absorbs counts when the caller passed no Counters, so the fault
// paths never branch on nil.
var discard Counters

// before runs pre-read faults: latency, drop/truncate already latched.
func (s *state) before() error {
	if s.dropped.Load() {
		return ErrInjectedDrop
	}
	if s.truncated.Load() {
		return io.EOF
	}
	if s.plan.Latency > 0 {
		time.Sleep(s.plan.Latency)
		s.c.Delays.Add(1)
	}
	return nil
}

// limit caps a read so byte-offset faults land on exact boundaries.
func (s *state) limit(n int) int {
	cap := func(threshold int64) {
		if threshold > 0 && s.read < threshold && int64(n) > threshold-s.read {
			n = int(threshold - s.read)
		}
	}
	cap(s.plan.DropAfter)
	cap(s.plan.TruncateAfter)
	cap(s.plan.StallAfter)
	if s.plan.FlipBitAt > 0 {
		cap(s.plan.FlipBitAt) // split so the flipped byte starts a read
	}
	return n
}

// after applies post-read faults to the n bytes just read into buf. Bytes
// up to a drop/truncate threshold are still delivered (limit caps reads at
// the boundary); the fault latches here and the NEXT read surfaces it via
// before.
func (s *state) after(buf []byte, n int) {
	start := s.read
	s.read += int64(n)
	if f := s.plan.FlipBitAt; f > 0 && start < f && f <= s.read {
		buf[f-1-start] ^= 1
		s.c.BitFlips.Add(1)
		s.plan.FlipBitAt = 0 // one flip per plan
	}
	if t := s.plan.StallAfter; t > 0 && s.read >= t && s.stalled.CompareAndSwap(false, true) {
		time.Sleep(s.plan.StallFor)
		s.c.Stalls.Add(1)
	}
	if d := s.plan.DropAfter; d > 0 && s.read >= d && s.dropped.CompareAndSwap(false, true) {
		s.c.Drops.Add(1)
	}
	if t := s.plan.TruncateAfter; t > 0 && s.read >= t && s.truncated.CompareAndSwap(false, true) {
		s.c.Truncates.Add(1)
	}
}

// Conn wraps a net.Conn with a fault plan. Faults key off inbound bytes;
// a fired drop poisons both directions.
type Conn struct {
	net.Conn
	st state
}

// NewConn wraps c with plan. counters may be nil.
func NewConn(c net.Conn, plan Plan, counters *Counters) *Conn {
	if counters == nil {
		counters = &discard
	}
	return &Conn{Conn: c, st: state{plan: plan, c: counters}}
}

func (c *Conn) Read(p []byte) (int, error) {
	if err := c.st.before(); err != nil {
		if errors.Is(err, ErrInjectedDrop) {
			c.Conn.Close()
		}
		return 0, err
	}
	if n := c.st.limit(len(p)); n < len(p) {
		p = p[:n]
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.st.after(p, n)
		if c.st.dropped.Load() {
			// Kill the transport now so the peer notices; the delivered
			// bytes still reach the caller, the next read fails.
			c.Conn.Close()
		}
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.st.dropped.Load() {
		c.Conn.Close()
		return 0, ErrInjectedDrop
	}
	if c.st.truncated.Load() {
		return len(p), nil // black-hole the response; the peer sees silence
	}
	return c.Conn.Write(p)
}

// Reader wraps an io.Reader with a fault plan — the in-process form used
// to feed faulty chunk bodies straight into decoders in tests.
type Reader struct {
	r  io.Reader
	st state
}

// NewReader wraps r with plan. counters may be nil.
func NewReader(r io.Reader, plan Plan, counters *Counters) *Reader {
	if counters == nil {
		counters = &discard
	}
	return &Reader{r: r, st: state{plan: plan, c: counters}}
}

func (fr *Reader) Read(p []byte) (int, error) {
	if err := fr.st.before(); err != nil {
		return 0, err
	}
	if n := fr.st.limit(len(p)); n < len(p) {
		p = p[:n]
	}
	n, err := fr.r.Read(p)
	if n > 0 {
		fr.st.after(p, n)
	}
	return n, err
}
