package faultinject

// Fleet-level faults. Where faultinject.go corrupts individual connections,
// a PartitionGate severs a whole node from its peers — the network
// partition and worker-kill modes the fleet chaos suite drives. It wraps
// both directions of a node's traffic: its listener (inbound requests fail
// while blocked) and an http.RoundTripper (outbound requests — heartbeats —
// fail while blocked), so a blocked worker looks exactly like a machine
// that fell off the network: established connections die, new ones are
// refused, and the process itself keeps running obliviously.

import (
	"errors"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
)

// ErrPartitioned is the error surfaced by connections and round trips cut
// by a PartitionGate.
var ErrPartitioned = errors.New("faultinject: network partitioned")

// PartitionGate is a switchable network partition. The zero value is an
// open (healthy) gate; Block severs, Heal restores. Safe for concurrent
// use.
type PartitionGate struct {
	blocked atomic.Bool

	mu    sync.Mutex
	conns map[*gateConn]struct{}

	// Partitions counts Block transitions; Severed counts connections
	// killed by them.
	Partitions atomic.Uint64
	Severed    atomic.Uint64
}

// Block severs the node: every tracked live connection is closed and new
// connections (inbound accepts and outbound round trips) fail with
// ErrPartitioned until Heal.
func (g *PartitionGate) Block() {
	if g.blocked.Swap(true) {
		return
	}
	g.Partitions.Add(1)
	g.mu.Lock()
	for c := range g.conns {
		c.Conn.Close()
		g.Severed.Add(1)
	}
	g.conns = nil
	g.mu.Unlock()
}

// Heal reopens the gate.
func (g *PartitionGate) Heal() { g.blocked.Store(false) }

// Blocked reports whether the partition is active.
func (g *PartitionGate) Blocked() bool { return g.blocked.Load() }

func (g *PartitionGate) track(c net.Conn) net.Conn {
	gc := &gateConn{Conn: c, g: g}
	g.mu.Lock()
	if g.conns == nil {
		g.conns = make(map[*gateConn]struct{})
	}
	g.conns[gc] = struct{}{}
	g.mu.Unlock()
	return gc
}

func (g *PartitionGate) untrack(gc *gateConn) {
	g.mu.Lock()
	delete(g.conns, gc)
	g.mu.Unlock()
}

// WrapListener gates a node's inbound side. While blocked, established
// connections are killed and fresh accepts are closed immediately — the
// dialer sees a reset, as it would from an unreachable host.
func (g *PartitionGate) WrapListener(ln net.Listener) net.Listener {
	return &gateListener{Listener: ln, g: g}
}

type gateListener struct {
	net.Listener
	g *PartitionGate
}

func (l *gateListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.g.Blocked() {
			c.Close()
			l.g.Severed.Add(1)
			continue // keep accepting: the partition eats connections silently
		}
		return l.g.track(c), nil
	}
}

// gateConn is a tracked connection: closed by Block, unregistered on Close,
// and poisoned after the gate blocks so a racing read can't slip through.
type gateConn struct {
	net.Conn
	g *PartitionGate
}

func (c *gateConn) Read(p []byte) (int, error) {
	if c.g.Blocked() {
		c.Conn.Close()
		return 0, ErrPartitioned
	}
	return c.Conn.Read(p)
}

func (c *gateConn) Write(p []byte) (int, error) {
	if c.g.Blocked() {
		c.Conn.Close()
		return 0, ErrPartitioned
	}
	return c.Conn.Write(p)
}

func (c *gateConn) Close() error {
	c.g.untrack(c)
	return c.Conn.Close()
}

// Transport gates a node's outbound side: an http.RoundTripper that fails
// every request with ErrPartitioned while blocked. next nil uses
// http.DefaultTransport.
func (g *PartitionGate) Transport(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &gateTransport{next: next, g: g}
}

type gateTransport struct {
	next http.RoundTripper
	g    *PartitionGate
}

func (t *gateTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.g.Blocked() {
		t.g.Severed.Add(1)
		return nil, ErrPartitioned
	}
	return t.next.RoundTrip(req)
}
