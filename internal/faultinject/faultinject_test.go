package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestReaderCleanPlanPassesThrough(t *testing.T) {
	data := payload(1000)
	var c Counters
	got, err := io.ReadAll(NewReader(bytes.NewReader(data), Plan{}, &c))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("clean plan altered the stream")
	}
	if c.Total() != 0 {
		t.Fatalf("clean plan fired %d faults", c.Total())
	}
}

func TestReaderDropAfter(t *testing.T) {
	data := payload(1000)
	var c Counters
	r := NewReader(bytes.NewReader(data), Plan{DropAfter: 300}, &c)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("want ErrInjectedDrop, got %v", err)
	}
	if len(got) != 300 {
		t.Fatalf("drop-after-300 delivered %d bytes", len(got))
	}
	if !bytes.Equal(got, data[:300]) {
		t.Fatalf("bytes before the drop were altered")
	}
	if c.Drops.Load() != 1 {
		t.Fatalf("drop fired %d times", c.Drops.Load())
	}
	// The drop is latched: further reads keep failing.
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("read after drop: %v", err)
	}
}

func TestReaderTruncateAfter(t *testing.T) {
	data := payload(1000)
	var c Counters
	got, err := io.ReadAll(NewReader(bytes.NewReader(data), Plan{TruncateAfter: 123}, &c))
	if err != nil {
		t.Fatalf("truncation must read as clean EOF, got %v", err)
	}
	if len(got) != 123 || !bytes.Equal(got, data[:123]) {
		t.Fatalf("truncate-after-123 delivered %d bytes", len(got))
	}
	if c.Truncates.Load() != 1 {
		t.Fatalf("truncate fired %d times", c.Truncates.Load())
	}
}

func TestReaderFlipBitAt(t *testing.T) {
	data := payload(1000)
	var c Counters
	got, err := io.ReadAll(NewReader(bytes.NewReader(data), Plan{FlipBitAt: 500}, &c))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("flip changed the length: %d", len(got))
	}
	diff := 0
	for i := range data {
		if got[i] != data[i] {
			diff++
			if i != 499 {
				t.Fatalf("flip landed at offset %d, want 499", i)
			}
			if got[i] != data[i]^1 {
				t.Fatalf("byte %d: got %x want %x", i, got[i], data[i]^1)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if c.BitFlips.Load() != 1 {
		t.Fatalf("flip fired %d times", c.BitFlips.Load())
	}
}

func TestReaderStall(t *testing.T) {
	data := payload(100)
	var c Counters
	r := NewReader(bytes.NewReader(data), Plan{StallAfter: 10, StallFor: 30 * time.Millisecond}, &c)
	start := time.Now()
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("stall must not alter the stream: err=%v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("stall did not pause: %v", d)
	}
	if c.Stalls.Load() != 1 {
		t.Fatalf("stall fired %d times", c.Stalls.Load())
	}
}

// TestConnFaults exercises the net.Conn wrapper over a real pipe: the
// reading side sees exactly the planned fault.
func TestConnFaults(t *testing.T) {
	data := payload(4096)
	send := func(plan Plan, c *Counters) ([]byte, error) {
		client, server := net.Pipe()
		faulty := NewConn(server, plan, c)
		done := make(chan struct{})
		go func() {
			defer close(done)
			client.Write(data)
			client.Close()
		}()
		got, err := io.ReadAll(faulty)
		faulty.Close()
		<-done
		return got, err
	}

	var c Counters
	got, err := send(Plan{DropAfter: 1024}, &c)
	if !errors.Is(err, ErrInjectedDrop) || len(got) != 1024 {
		t.Fatalf("conn drop: err=%v n=%d", err, len(got))
	}
	got, err = send(Plan{TruncateAfter: 77}, &c)
	if err != nil || len(got) != 77 {
		t.Fatalf("conn truncate: err=%v n=%d", err, len(got))
	}
	got, err = send(Plan{FlipBitAt: 2000}, &c)
	if err != nil || len(got) != len(data) || got[1999] != data[1999]^1 {
		t.Fatalf("conn flip: err=%v n=%d", err, len(got))
	}
	if c.Drops.Load() != 1 || c.Truncates.Load() != 1 || c.BitFlips.Load() != 1 {
		t.Fatalf("counters: %+v", c.Total())
	}
}

// TestConnWriteAfterDrop pins the poisoned-both-directions contract.
func TestConnWriteAfterDrop(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	faulty := NewConn(server, Plan{DropAfter: 1}, nil)
	go client.Write([]byte{1, 2, 3})
	if _, err := io.ReadAll(faulty); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("read: %v", err)
	}
	if _, err := faulty.Write([]byte{9}); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("write after drop: %v", err)
	}
}

func TestInjectorDeterministicPlans(t *testing.T) {
	opts := Options{DropProb: 0.5, FlipProb: 0.5, StallProb: 0.3, TruncProb: 0.3, Seed: 42}
	a, b := New(opts), New(opts)
	var faults int
	for i := 0; i < 64; i++ {
		pa, pb := a.NextPlan(), b.NextPlan()
		if pa != pb {
			t.Fatalf("plan %d diverged: %+v vs %+v", i, pa, pb)
		}
		if pa.active() {
			faults++
		}
	}
	if faults == 0 {
		t.Fatalf("no plans scheduled any fault at these probabilities")
	}
}

func TestWrapListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := New(Options{DropProb: 1, MaxOffset: 8, Seed: 7})
	wrapped := inj.WrapListener(ln)
	defer wrapped.Close()

	errc := make(chan error, 1)
	go func() {
		conn, err := wrapped.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer conn.Close()
		_, err = io.ReadAll(conn)
		errc <- err
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Write(payload(64))
	c.Close()
	if err := <-errc; !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("accepted conn did not drop: %v", err)
	}
	if inj.Counters.Conns.Load() != 1 || inj.Counters.Drops.Load() != 1 {
		t.Fatalf("counters: conns=%d drops=%d", inj.Counters.Conns.Load(), inj.Counters.Drops.Load())
	}
}

func TestParseSpec(t *testing.T) {
	o, err := ParseSpec("drop=0.2,trunc=0.1,stall=0.3,flip=0.05,latency=2ms,stallfor=100ms,maxoff=32768,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Options{
		DropProb: 0.2, TruncProb: 0.1, StallProb: 0.3, FlipProb: 0.05,
		Latency: 2 * time.Millisecond, StallFor: 100 * time.Millisecond,
		MaxOffset: 32768, Seed: 7,
	}
	if o != want {
		t.Fatalf("got %+v want %+v", o, want)
	}
	for _, bad := range []string{"drop=2", "nope=1", "drop", "latency=fast"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
	if o, err := ParseSpec(""); err != nil || o.DropProb != 0 {
		t.Fatalf("empty spec: %+v %v", o, err)
	}
}
