package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/snap"
)

// The coordinator's durable journal: an append-only log of placement and
// membership changes, one snap frame per record, living in
// <dir>/journal.log with pulled checkpoint blobs spilled beside it under
// <dir>/blobs/. Every record has set semantics (last write wins per key),
// so a snapshot followed by a replayed tail converges regardless of how
// the compaction raced with concurrent appends. The snap codec's CRC
// framing means a torn final write (power loss mid-append) surfaces as a
// decode error on the last frame, which replay treats as the end of the
// log rather than corruption of everything before it.
//
// Writes buffer the whole frame in memory and issue a single Write on an
// O_APPEND handle, so concurrent appenders can never interleave partial
// frames; a Sync per append makes each acknowledged record durable.

// Journal record types. New types must be added at the end; replay skips
// nothing, so an unknown type is corruption.
const (
	recEpoch      byte = 1 // coordinator epoch bump: epoch
	recPlace      byte = 2 // placement create/update: id, worker, create header
	recMove       byte = 3 // placement moved: id, new worker
	recDrop       byte = 4 // placement gone (finished/aborted/lost): id
	recFinish     byte = 5 // finished-reply cache entry: id, reply body
	recWorkerUp   byte = 6 // worker joined/re-registered: name, url
	recWorkerDown byte = 7 // worker left/died: name
	recSnapshot   byte = 8 // full-state snapshot (compaction rewrites to one of these)
)

// Decode bounds: a corrupt length field must not drive a huge allocation.
const (
	maxJournalID     = 256
	maxJournalURL    = 4096
	maxJournalBlob   = 1 << 28
	maxJournalCount  = 1 << 20
	journalFileName  = "journal.log"
	journalBlobsDir  = "blobs"
	journalCorruptFn = "journal.corrupt"
)

// snapWriter keeps the coordinator's journal-record builders terse.
type snapWriter = snap.Writer

// journalState is the replayable coordinator state a journal encodes. It
// is the shared shape between startup replay, compaction snapshots, and
// the standby's shadow copy.
type journalState struct {
	epoch      uint64
	workers    map[string]string // name -> url
	placements map[string]*journalPlacement
	finished   map[string][]byte // id -> cached finish reply
}

type journalPlacement struct {
	worker string
	header []byte // original create body, for blobless re-create
}

func newJournalState() *journalState {
	return &journalState{
		workers:    make(map[string]string),
		placements: make(map[string]*journalPlacement),
		finished:   make(map[string][]byte),
	}
}

// applyRecord decodes one journal frame into st with set semantics.
func (st *journalState) applyRecord(r *snap.Reader) error {
	typ, err := r.Byte()
	if err != nil {
		return err
	}
	switch typ {
	case recEpoch:
		e, err := r.Uvarint()
		if err != nil {
			return err
		}
		if e > st.epoch {
			st.epoch = e
		}
	case recPlace:
		id, err := r.String(maxJournalID)
		if err != nil {
			return err
		}
		w, err := r.String(maxJournalID)
		if err != nil {
			return err
		}
		hdr, err := r.Bytes(maxJournalBlob)
		if err != nil {
			return err
		}
		st.placements[id] = &journalPlacement{worker: w, header: hdr}
	case recMove:
		id, err := r.String(maxJournalID)
		if err != nil {
			return err
		}
		w, err := r.String(maxJournalID)
		if err != nil {
			return err
		}
		if pl, ok := st.placements[id]; ok {
			pl.worker = w
		} else {
			st.placements[id] = &journalPlacement{worker: w}
		}
	case recDrop:
		id, err := r.String(maxJournalID)
		if err != nil {
			return err
		}
		delete(st.placements, id)
	case recFinish:
		id, err := r.String(maxJournalID)
		if err != nil {
			return err
		}
		body, err := r.Bytes(maxJournalBlob)
		if err != nil {
			return err
		}
		st.finished[id] = body
	case recWorkerUp:
		name, err := r.String(maxJournalID)
		if err != nil {
			return err
		}
		url, err := r.String(maxJournalURL)
		if err != nil {
			return err
		}
		st.workers[name] = url
	case recWorkerDown:
		name, err := r.String(maxJournalID)
		if err != nil {
			return err
		}
		delete(st.workers, name)
	case recSnapshot:
		return st.applySnapshot(r)
	default:
		return fmt.Errorf("journal: unknown record type %d", typ)
	}
	return r.Close()
}

// applySnapshot decodes a compaction snapshot. Snapshots replace workers
// and merge placements/finished with set semantics (a snapshot is always
// the first frame of a compacted log, so in practice it initializes).
func (st *journalState) applySnapshot(r *snap.Reader) error {
	e, err := r.Uvarint()
	if err != nil {
		return err
	}
	if e > st.epoch {
		st.epoch = e
	}
	nw, err := r.Count(maxJournalCount)
	if err != nil {
		return err
	}
	for i := 0; i < nw; i++ {
		name, err := r.String(maxJournalID)
		if err != nil {
			return err
		}
		url, err := r.String(maxJournalURL)
		if err != nil {
			return err
		}
		st.workers[name] = url
	}
	np, err := r.Count(maxJournalCount)
	if err != nil {
		return err
	}
	for i := 0; i < np; i++ {
		id, err := r.String(maxJournalID)
		if err != nil {
			return err
		}
		w, err := r.String(maxJournalID)
		if err != nil {
			return err
		}
		hdr, err := r.Bytes(maxJournalBlob)
		if err != nil {
			return err
		}
		st.placements[id] = &journalPlacement{worker: w, header: hdr}
	}
	nf, err := r.Count(maxJournalCount)
	if err != nil {
		return err
	}
	for i := 0; i < nf; i++ {
		id, err := r.String(maxJournalID)
		if err != nil {
			return err
		}
		body, err := r.Bytes(maxJournalBlob)
		if err != nil {
			return err
		}
		st.finished[id] = body
	}
	return r.Close()
}

// journal is the durable log handle. All methods are safe for concurrent
// use; the file mutex is independent of the coordinator's state mutex so
// appends never serialize proxying beyond the write itself.
type journal struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	size    int64  // committed bytes (whole frames only)
	gen     uint64 // bumped on every compaction; tailing readers resync on change
	appends int64  // records since the last compaction
}

// openJournal opens (creating if needed) the journal under dir.
func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(filepath.Join(dir, journalBlobsDir), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &journal{dir: dir, f: f, size: st.Size(), gen: 1}, nil
}

func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// append frames one record (built by enc) and durably appends it. The
// whole frame goes down in a single Write so a concurrent appender can
// never interleave, and Sync makes it crash-durable before we return.
func (j *journal) append(enc func(*snap.Writer)) error {
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	enc(w)
	if err := w.Close(); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal closed")
	}
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.size += int64(buf.Len())
	j.appends++
	return nil
}

// appendsSinceCompact reports how many records have landed since the last
// compaction — the coordinator's monitor loop uses it to decide when to
// compact.
func (j *journal) appendsSinceCompact() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

// compact rewrites the journal as a single snapshot frame of st, bumping
// the generation so tailing standbys resync from the top. The snapshot is
// written to a temp file, synced, and renamed over the log — a crash at
// any point leaves either the old log or the new one, never a mix.
func (j *journal) compact(st *journalState) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal closed")
	}
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	w.Byte(recSnapshot)
	encodeSnapshot(w, st)
	if err := w.Close(); err != nil {
		return err
	}
	path := filepath.Join(j.dir, journalFileName)
	tmp, err := os.CreateTemp(j.dir, "journal-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f.Close()
	j.f = f
	j.size = int64(buf.Len())
	j.gen++
	j.appends = 0
	return nil
}

func encodeSnapshot(w *snap.Writer, st *journalState) {
	w.Uvarint(st.epoch)
	w.Uvarint(uint64(len(st.workers)))
	for name, url := range st.workers {
		w.String(name)
		w.String(url)
	}
	w.Uvarint(uint64(len(st.placements)))
	for id, pl := range st.placements {
		w.String(id)
		w.String(pl.worker)
		w.Bytes(pl.header)
	}
	w.Uvarint(uint64(len(st.finished)))
	for id, body := range st.finished {
		w.String(id)
		w.Bytes(body)
	}
}

// readFrom returns committed journal bytes starting at offset from, for a
// tailing standby. If the caller's generation is stale (a compaction
// happened), it returns the whole log from offset zero and the new
// generation so the reader rebuilds from the snapshot.
func (j *journal) readFrom(gen uint64, from int64) (data []byte, curGen uint64, next int64, err error) {
	j.mu.Lock()
	size := j.size
	curGen = j.gen
	j.mu.Unlock()
	if gen != curGen || from > size || from < 0 {
		from = 0
	}
	if from == size {
		return nil, curGen, size, nil
	}
	f, err := os.Open(filepath.Join(j.dir, journalFileName))
	if err != nil {
		return nil, curGen, from, err
	}
	defer f.Close()
	data = make([]byte, size-from)
	if _, err := f.ReadAt(data, from); err != nil && err != io.EOF {
		return nil, curGen, from, err
	}
	return data, curGen, size, nil
}

// replayJournal reads dir's journal into a fresh journalState. A decode
// error on the final frame (torn tail write) is tolerated: everything
// before it is returned with ok=true and the file is truncated back to
// the good prefix so later appends don't land after garbage. A decode
// error anywhere else, or an unreadable file, returns ok=false with
// whatever partial state was recovered — the caller falls back to
// worker-report reconstruction. records counts frames applied.
// Call before openJournal: the truncation needs exclusive access.
func replayJournal(dir string) (st *journalState, records int, ok bool, err error) {
	st = newJournalState()
	f, err := os.OpenFile(filepath.Join(dir, journalFileName), os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return st, 0, true, nil // empty journal: clean cold start
		}
		return st, 0, false, err
	}
	defer f.Close()
	var good int64 // end offset of the last fully-applied frame
	for {
		r, rerr := snap.NewReader(f)
		if rerr == io.EOF {
			return st, records, true, nil
		}
		if rerr != nil {
			// A torn final append (crash mid-write) surfaces as a
			// truncation: the frame's length field promises more bytes
			// than exist. That is a crash artifact, not corruption —
			// keep everything before it and cut the tail. Bad magic or a
			// checksum mismatch is real corruption: fall back to
			// worker-report reconstruction.
			if isTruncation(rerr) {
				if terr := f.Truncate(good); terr != nil {
					return st, records, false, terr
				}
				return st, records, true, nil
			}
			return st, records, false, rerr
		}
		if aerr := st.applyRecord(r); aerr != nil {
			return st, records, false, aerr
		}
		records++
		if good, err = f.Seek(0, io.SeekCurrent); err != nil {
			return st, records, false, err
		}
	}
}

// isTruncation reports whether a frame decode failed because the file
// ended mid-frame (torn tail) rather than because bytes were damaged.
func isTruncation(err error) bool {
	var de *snap.DecodeError
	return errors.As(err, &de) && strings.HasPrefix(de.Reason, "truncated")
}

// quarantineJournal moves a corrupt journal aside so reconstruction can
// start a fresh one while preserving the evidence.
func quarantineJournal(dir string) error {
	src := filepath.Join(dir, journalFileName)
	dst := filepath.Join(dir, journalCorruptFn)
	os.Remove(dst)
	return os.Rename(src, dst)
}

// --- checkpoint blob spill ---

// blobPath returns the on-disk path for a session's pulled checkpoint.
// Session ids are hex (validated at the API edge), so the name is safe.
func (j *journal) blobPath(id string) string {
	return filepath.Join(j.dir, journalBlobsDir, id+".blob")
}

// writeBlob atomically persists a pulled checkpoint blob.
func (j *journal) writeBlob(id string, data []byte) error {
	path := j.blobPath(id)
	tmp, err := os.CreateTemp(filepath.Dir(path), "blob-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// readBlob loads a spilled checkpoint blob, or nil if none exists.
func (j *journal) readBlob(id string) []byte {
	data, err := os.ReadFile(j.blobPath(id))
	if err != nil {
		return nil
	}
	return data
}

// dropBlob removes a session's spilled blob (finished/aborted/lost).
func (j *journal) dropBlob(id string) {
	os.Remove(j.blobPath(id))
}

// listBlobs returns the ids of all spilled blobs, for replay to reload.
func (j *journal) listBlobs() []string {
	ents, err := os.ReadDir(filepath.Join(j.dir, journalBlobsDir))
	if err != nil {
		return nil
	}
	ids := make([]string, 0, len(ents))
	for _, e := range ents {
		name := e.Name()
		if id, found := strings.CutSuffix(name, ".blob"); found {
			ids = append(ids, id)
		}
	}
	return ids
}
