package fleet

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/snap"
)

// Warm-standby coordinator: started with StandbyOf pointing at the
// primary, it tails the primary's journal over GET /fleet/journal and
// accepts worker dual-heartbeats passively, so at any moment it holds a
// near-current shadow of placements and membership. While the primary
// answers its journal polls the standby serves the session API 503
// (clients with a coordinator list rotate to the primary); when the
// primary misses its lease the standby takes over — it bumps the fencing
// epoch above anything the primary ever journaled, which workers enforce:
// the old primary's next write is answered 412 and it fences itself.

// headerJournalGen / headerJournalNext frame the journal-tail protocol:
// the generation changes on every compaction (a stale generation means
// "rebuild from the snapshot I just sent you"), and next is the offset to
// poll from.
const (
	headerJournalGen  = "X-Raced-Journal-Gen"
	headerJournalNext = "X-Raced-Journal-Next"
)

// standbyState is the tail cursor plus the shadow the tail builds.
type standbyState struct {
	primary string // primary coordinator base URL
	gen     uint64
	off     int64
	shadow  *journalState
	tailed  bool // ever applied journal data (vs. heartbeat-only shadowing)
	lastOK  time.Time
}

func newStandbyState(primary string) *standbyState {
	return &standbyState{primary: primary, shadow: newJournalState(), lastOK: time.Now()}
}

// standbyLoop polls the primary's journal until the lease lapses, then
// promotes this coordinator. Runs only while standbyMode is set.
func (c *Coordinator) standbyLoop() {
	defer close(c.standbyDone)
	tick := c.cfg.LeaseTimeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		alive := c.pollPrimary()
		now := time.Now()
		if alive {
			c.standby.lastOK = now
			continue
		}
		if now.Sub(c.standby.lastOK) > c.cfg.LeaseTimeout {
			c.takeover()
			return
		}
	}
}

// pollPrimary fetches one round of journal tail. Returns whether the
// primary proved alive. A primary without journaling (404) is alive but
// untailable — the shadow then rests on worker dual-heartbeats alone.
func (c *Coordinator) pollPrimary() bool {
	s := c.standby
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.LeaseTimeout/2)
	defer cancel()
	url := s.primary + "/fleet/journal?gen=" + strconv.FormatUint(s.gen, 10) +
		"&from=" + strconv.FormatInt(s.off, 10)
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return true // alive, journaling disabled on the primary
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxJournalBlob))
	if err != nil {
		return false
	}
	gen, _ := strconv.ParseUint(resp.Header.Get(headerJournalGen), 10, 64)
	next, _ := strconv.ParseInt(resp.Header.Get(headerJournalNext), 10, 64)
	if gen != s.gen {
		// Compaction on the primary: the payload restarts from the
		// snapshot frame, so the shadow rebuilds from scratch.
		s.shadow = newJournalState()
		s.gen = gen
	}
	s.off = next
	if len(data) == 0 {
		return true
	}
	rd := bytes.NewReader(data)
	applied := 0
	for {
		r, rerr := snap.NewReader(rd)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			c.cfg.Logger.Warn("journal tail undecodable, resyncing from scratch", "err", rerr)
			s.shadow = newJournalState()
			s.gen, s.off = 0, 0
			return true // the primary answered; only the decode failed
		}
		if aerr := s.shadow.applyRecord(r); aerr != nil {
			c.cfg.Logger.Warn("journal tail record rejected, resyncing", "err", aerr)
			s.shadow = newJournalState()
			s.gen, s.off = 0, 0
			return true
		}
		applied++
	}
	if applied > 0 {
		s.tailed = true
		c.installShadow(s.shadow)
	}
	return true
}

// installShadow mirrors the tailed journal state into the coordinator's
// own maps so a takeover is instant and GET /fleet answers truthfully
// while still standby. Placements are replaced wholesale (a standby makes
// none of its own); membership merges — dual-heartbeats own lastBeat.
func (c *Coordinator) installShadow(st *journalState) {
	if st.epoch > c.epoch.Load() {
		c.epoch.Store(st.epoch)
	}
	now := time.Now()
	c.mu.Lock()
	fresh := make(map[string]*placement, len(st.placements))
	for id, jp := range st.placements {
		if old := c.placements[id]; old != nil {
			old.worker = jp.worker
			if jp.header != nil {
				old.header = jp.header
			}
			fresh[id] = old
			continue
		}
		fresh[id] = &placement{id: id, worker: jp.worker, header: jp.header}
	}
	c.placements = fresh
	for name, url := range st.workers {
		wk := c.workers[name]
		if wk == nil {
			c.workers[name] = &worker{name: name, url: url, state: workerActive, lastBeat: now}
			c.ring.Add(name)
		} else if url != "" {
			wk.url = url
		}
	}
	c.mu.Unlock()
	for id, body := range st.finished {
		if _, have := c.recallFinished(id); !have {
			c.rememberFinished(id, body)
		}
	}
}

// takeover promotes this standby to primary: bump the fencing epoch above
// everything the old primary journaled, persist a snapshot to our own
// journal, give re-registering workers a grace window, and start serving.
// Workers learn the new epoch from their next heartbeat ack and from then
// on answer the old primary's writes 412 — it can no longer move, place,
// or drop anything.
func (c *Coordinator) takeover() {
	t0 := time.Now()
	epoch := c.epoch.Load() + 1
	c.epoch.Store(epoch)
	now := time.Now()
	c.mu.Lock()
	if !c.standby.tailed {
		// No journal was tailable: force every worker to re-register so
		// placements rebuild from their session reports (the epoch rides
		// along too). Their next heartbeat gets 404 and they reconcile.
		c.workers = make(map[string]*worker)
		c.ring = NewRing(c.cfg.Vnodes)
	}
	for _, wk := range c.workers {
		wk.lastBeat = now // fresh deadlines: nobody dies for the primary's sins
	}
	c.recoveringUntil = now.Add(c.cfg.RecoveryGrace)
	sessions := len(c.placements)
	workers := len(c.workers)
	c.mu.Unlock()
	c.standbyMode.Store(false)
	c.recordEpoch(epoch)
	if c.journal != nil {
		if err := c.journal.compact(c.snapshotState()); err != nil {
			c.journalErr("takeover snapshot", err)
		}
	}
	c.takeovers.Add(1)
	c.kickPull()
	c.span(obs.Span{Name: "standby_takeover", Start: t0,
		Duration: time.Since(t0).Seconds(), Events: uint64(sessions)})
	c.cfg.Logger.Warn("standby takeover: primary lease lapsed, assuming the session API",
		"epoch", epoch, "sessions", sessions, "workers", workers,
		"primary", c.standby.primary, "tailed", c.standby.tailed)
}
