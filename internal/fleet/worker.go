package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// AgentConfig wires a worker-side Agent to its coordinator and to the local
// server. The three hooks are funcs rather than an interface so tests can
// run agents against stub servers.
type AgentConfig struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Advertise is the base URL the coordinator should dial for this worker.
	Advertise string
	// Name is the worker's stable identity; defaults to Advertise.
	Name string
	// Every is the heartbeat cadence; the coordinator's register response
	// overrides it. Defaults to 1 second.
	Every time.Duration
	// Load snapshots the local server's load for heartbeats.
	Load func() WorkerLoad
	// Sessions lists the local server's open session ids, sent on register
	// for adoption and stale-copy reconciliation.
	Sessions func() []string
	// Abort drops a local session the coordinator says was failed over
	// elsewhere while this worker was partitioned.
	Abort func(id string) bool
	// HTTPClient dials the coordinator; defaults to a 5s-timeout client.
	HTTPClient *http.Client
	// Logger receives structured operational logs; nil discards them.
	Logger *slog.Logger
}

// Agent registers a worker with its coordinator and keeps heartbeating
// until stopped. If the coordinator restarts, or declares this worker dead
// during a partition, heartbeats start failing and the agent re-registers,
// reconciling any sessions that were failed over in the meantime. Start
// with StartAgent; stop silently with Stop, or gracefully with Leave (the
// coordinator migrates this worker's sessions before Leave returns).
type Agent struct {
	cfg     AgentConfig
	every   atomic.Int64 // nanoseconds; coordinator can retune it
	stopped atomic.Bool
	stop    chan struct{}
	done    chan struct{}
}

// StartAgent launches the register+heartbeat loop.
func StartAgent(cfg AgentConfig) *Agent {
	if cfg.Name == "" {
		cfg.Name = cfg.Advertise
	}
	if cfg.Every <= 0 {
		cfg.Every = time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Load == nil {
		cfg.Load = func() WorkerLoad { return WorkerLoad{} }
	}
	if cfg.Sessions == nil {
		cfg.Sessions = func() []string { return nil }
	}
	a := &Agent{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	a.every.Store(int64(cfg.Every))
	go a.run()
	return a
}

// Stop halts the loop without telling the coordinator — from the fleet's
// point of view this is a crash, and the heartbeat deadline handles it.
func (a *Agent) Stop() {
	if !a.stopped.Swap(true) {
		close(a.stop)
	}
	<-a.done
}

// Leave performs a graceful exit: the coordinator migrates this worker's
// sessions to survivors before the call returns, then the heartbeat loop is
// stopped. The worker can then drain and exit without losing anything.
func (a *Agent) Leave(ctx context.Context) error {
	body, _ := json.Marshal(registerRequest{Name: a.cfg.Name, URL: a.cfg.Advertise})
	req, err := http.NewRequestWithContext(ctx, "POST", a.cfg.Coordinator+"/fleet/leave", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	// The drain can outlast the heartbeat client's timeout: use a bare
	// client bounded only by ctx.
	resp, err := (&http.Client{}).Do(req)
	if err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("leave: coordinator answered %d", resp.StatusCode)
		}
	}
	a.Stop()
	return err
}

func (a *Agent) run() {
	defer close(a.done)
	registered := false
	for {
		if !registered {
			registered = a.register()
		} else if !a.heartbeat() {
			registered = false
			continue // re-register immediately, not a beat later
		}
		wait := time.Duration(a.every.Load())
		if !registered && wait > time.Second {
			wait = time.Second // don't sit out long beats while unregistered
		}
		select {
		case <-a.stop:
			return
		case <-time.After(wait):
		}
	}
}

func (a *Agent) register() bool {
	req := registerRequest{
		Name:     a.cfg.Name,
		URL:      a.cfg.Advertise,
		Load:     a.cfg.Load(),
		Sessions: a.cfg.Sessions(),
	}
	var resp registerResponse
	status, err := a.post("/fleet/register", req, &resp)
	if err != nil || status != http.StatusOK {
		a.cfg.Logger.Warn("fleet register failed, retrying",
			"coordinator", a.cfg.Coordinator, "status", status, "err", err)
		return false
	}
	if resp.HeartbeatMS > 0 {
		a.every.Store(int64(time.Duration(resp.HeartbeatMS) * time.Millisecond))
	}
	for _, id := range resp.Stale {
		// This copy lost a split brain: the authoritative session now lives
		// on another worker. Drop it so it can't finalize duplicate reports.
		if a.cfg.Abort != nil && a.cfg.Abort(id) {
			a.cfg.Logger.Info("aborted stale session (failed over during partition)", "session", id)
		}
	}
	a.cfg.Logger.Info("registered with fleet", "coordinator", a.cfg.Coordinator, "worker", a.cfg.Name)
	return true
}

func (a *Agent) heartbeat() bool {
	req := registerRequest{Name: a.cfg.Name, URL: a.cfg.Advertise, Load: a.cfg.Load()}
	status, err := a.post("/fleet/heartbeat", req, nil)
	if err != nil {
		return false
	}
	if status == http.StatusNotFound || status == http.StatusGone {
		a.cfg.Logger.Warn("coordinator no longer knows us, re-registering", "status", status)
		return false
	}
	return status == http.StatusOK
}

func (a *Agent) post(path string, body any, out any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest("POST", a.cfg.Coordinator+path, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, err
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
