package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// AgentConfig wires a worker-side Agent to its coordinator(s) and to the
// local server. The hooks are funcs rather than an interface so tests can
// run agents against stub servers.
type AgentConfig struct {
	// Coordinator is the coordinator base URL, or a comma-separated list
	// (primary plus warm standbys). The agent registers and heartbeats
	// with every address — the dual-heartbeat is how a standby keeps a
	// live membership view, and how the fleet's fencing epoch reaches
	// this worker no matter which coordinator currently leads.
	Coordinator string
	// Advertise is the base URL the coordinator should dial for this worker.
	Advertise string
	// Name is the worker's stable identity; defaults to Advertise.
	Name string
	// Every is the heartbeat cadence; the coordinator's register response
	// overrides it. Defaults to 1 second.
	Every time.Duration
	// Load snapshots the local server's load for heartbeats.
	Load func() WorkerLoad
	// Sessions lists the local server's open session ids, sent on register
	// for adoption and stale-copy reconciliation.
	Sessions func() []string
	// Abort drops a local session the coordinator says was failed over
	// elsewhere while this worker was partitioned.
	Abort func(id string) bool
	// Epoch reports the highest coordinator fencing epoch the local
	// server has seen, carried on registers and heartbeats so a
	// journal-less coordinator can recover the fleet's epoch.
	Epoch func() uint64
	// NoteEpoch hands the local server a coordinator-reported epoch; the
	// server raises its fence to the maximum seen and rejects writes
	// stamped with anything lower.
	NoteEpoch func(epoch uint64)
	// HTTPClient dials the coordinator; defaults to a 5s-timeout client.
	HTTPClient *http.Client
	// Logger receives structured operational logs; nil discards them.
	Logger *slog.Logger
}

// Agent registers a worker with its coordinator(s) and keeps heartbeating
// until stopped. If a coordinator restarts, or declares this worker dead
// during a partition, heartbeats start failing and the agent re-registers,
// reconciling any sessions that were failed over in the meantime. Start
// with StartAgent; stop silently with Stop, or gracefully with Leave (the
// primary migrates this worker's sessions before Leave returns).
type Agent struct {
	cfg        AgentConfig
	coords     []string
	registered []bool
	every      atomic.Int64 // nanoseconds; coordinator can retune it
	stopped    atomic.Bool
	stop       chan struct{}
	done       chan struct{}
}

// splitCoordinators parses a comma-separated coordinator list.
func splitCoordinators(s string) []string {
	var out []string
	for _, c := range strings.Split(s, ",") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, strings.TrimRight(c, "/"))
		}
	}
	return out
}

// StartAgent launches the register+heartbeat loop.
func StartAgent(cfg AgentConfig) *Agent {
	if cfg.Name == "" {
		cfg.Name = cfg.Advertise
	}
	if cfg.Every <= 0 {
		cfg.Every = time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Load == nil {
		cfg.Load = func() WorkerLoad { return WorkerLoad{} }
	}
	if cfg.Sessions == nil {
		cfg.Sessions = func() []string { return nil }
	}
	coords := splitCoordinators(cfg.Coordinator)
	a := &Agent{
		cfg:        cfg,
		coords:     coords,
		registered: make([]bool, len(coords)),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	a.every.Store(int64(cfg.Every))
	go a.run()
	return a
}

// Stop halts the loop without telling the coordinator — from the fleet's
// point of view this is a crash, and the heartbeat deadline handles it.
func (a *Agent) Stop() {
	if !a.stopped.Swap(true) {
		close(a.stop)
	}
	<-a.done
}

// Leave performs a graceful exit: the primary coordinator migrates this
// worker's sessions to survivors before the call returns (standbys merely
// forget the worker), then the heartbeat loop is stopped.
func (a *Agent) Leave(ctx context.Context) error {
	var firstErr error
	for _, coord := range a.coords {
		body, _ := json.Marshal(registerRequest{Name: a.cfg.Name, URL: a.cfg.Advertise})
		req, err := http.NewRequestWithContext(ctx, "POST", coord+"/fleet/leave", bytes.NewReader(body))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		// The drain can outlast the heartbeat client's timeout: use a bare
		// client bounded only by ctx.
		resp, err := (&http.Client{}).Do(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("leave: coordinator answered %d", resp.StatusCode)
			}
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if len(a.coords) == 0 {
		firstErr = errors.New("leave: no coordinator configured")
	}
	a.Stop()
	return firstErr
}

func (a *Agent) run() {
	defer close(a.done)
	for {
		anyUnregistered := false
		for i := range a.coords {
			if !a.registered[i] {
				a.registered[i] = a.register(i)
			} else if !a.heartbeat(i) {
				a.registered[i] = false
				a.registered[i] = a.register(i) // re-register immediately, not a beat later
			}
			if !a.registered[i] {
				anyUnregistered = true
			}
		}
		wait := time.Duration(a.every.Load())
		if anyUnregistered && wait > time.Second {
			wait = time.Second // don't sit out long beats while unregistered
		}
		select {
		case <-a.stop:
			return
		case <-time.After(wait):
		}
	}
}

// noteEpoch relays a coordinator-reported fencing epoch to the server.
func (a *Agent) noteEpoch(epoch uint64) {
	if epoch > 0 && a.cfg.NoteEpoch != nil {
		a.cfg.NoteEpoch(epoch)
	}
}

func (a *Agent) ownEpoch() uint64 {
	if a.cfg.Epoch != nil {
		return a.cfg.Epoch()
	}
	return 0
}

func (a *Agent) register(i int) bool {
	coord := a.coords[i]
	req := registerRequest{
		Name:     a.cfg.Name,
		URL:      a.cfg.Advertise,
		Load:     a.cfg.Load(),
		Sessions: a.cfg.Sessions(),
		Epoch:    a.ownEpoch(),
	}
	var resp registerResponse
	status, err := a.post(coord, "/fleet/register", req, &resp)
	if err != nil || status != http.StatusOK {
		a.cfg.Logger.Warn("fleet register failed, retrying",
			"coordinator", coord, "status", status, "err", err)
		return false
	}
	if resp.HeartbeatMS > 0 {
		a.every.Store(int64(time.Duration(resp.HeartbeatMS) * time.Millisecond))
	}
	a.noteEpoch(resp.Epoch)
	for _, id := range resp.Stale {
		// This copy lost a split brain: the authoritative session now lives
		// on another worker. Drop it so it can't finalize duplicate reports.
		if a.cfg.Abort != nil && a.cfg.Abort(id) {
			a.cfg.Logger.Info("aborted stale session (failed over during partition)", "session", id)
		}
	}
	a.cfg.Logger.Info("registered with fleet", "coordinator", coord, "worker", a.cfg.Name)
	return true
}

func (a *Agent) heartbeat(i int) bool {
	coord := a.coords[i]
	req := registerRequest{Name: a.cfg.Name, URL: a.cfg.Advertise, Load: a.cfg.Load(), Epoch: a.ownEpoch()}
	var ack struct {
		OK    bool   `json:"ok"`
		Epoch uint64 `json:"epoch"`
	}
	status, err := a.post(coord, "/fleet/heartbeat", req, &ack)
	if err != nil {
		return false
	}
	if status == http.StatusNotFound || status == http.StatusGone {
		a.cfg.Logger.Warn("coordinator no longer knows us, re-registering",
			"coordinator", coord, "status", status)
		return false
	}
	a.noteEpoch(ack.Epoch)
	return status == http.StatusOK
}

func (a *Agent) post(coord, path string, body any, out any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest("POST", coord+path, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, err
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
