package fleet

// Fleet chaos differentials, extending the single-node suite in
// internal/server with fleet failure modes: worker kill, heartbeat
// partition (with split-brain reconciliation after healing), and failover
// racing in-flight chunks. Every test holds the same bar: the merged fleet
// reports must match a single uninterrupted single-node run entry for
// entry, no goroutines may leak across a full fleet teardown, and no
// detector arena allocation may go unreturned on any worker.
//
// The TestChaos prefix is what CI's chaos job matches (-run 'TestChaos').

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/trace"
)

// waitNoGoroutineLeak gives teardown stragglers (timers, settling TCP
// goroutines) a grace window, then requires the goroutine count back near
// the baseline — the same bound the server chaos suite uses.
func waitNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutine leak across fleet teardown: %d before, %d after", before, n)
	}
}

func labelf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

func fetchReports(t *testing.T, base string) workerReports {
	t.Helper()
	var wr workerReports
	cfg := client.Config{
		BaseURL:    base,
		HTTPClient: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	}
	if err := client.Reports(context.Background(), cfg, "", &wr); err != nil {
		t.Fatalf("reports from %s: %v", base, err)
	}
	return wr
}

func reportIndex(entries []report.Entry) map[report.Fingerprint][2]int64 {
	m := make(map[report.Fingerprint][2]int64, len(entries))
	for _, e := range entries {
		m[e.Fingerprint] = [2]int64{e.Count, e.Traces}
	}
	return m
}

// assertFleetMatchesSingleNode replays the same traces as sessions on one
// fresh uninterrupted server and requires the fleet's merged /reports to
// agree class for class on count and trace tallies — the differential that
// catches both loss (a failover dropped observations) and double counting
// (a stale copy finalized after a split brain).
func assertFleetMatchesSingleNode(t *testing.T, fleetURL string, traces []*trace.Trace, engines []string) {
	t.Helper()
	srv := server.New(workerServerConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	}()
	base := "http://" + ln.Addr().String()
	ctx := context.Background()
	for i, tr := range traces {
		ccfg := client.Config{
			BaseURL: base, Engines: engines, ChunkEvents: 1000,
			HTTPClient: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		}
		s, err := client.Open(ctx, ccfg, tr.Symbols)
		if err != nil {
			t.Fatalf("oracle session %d: open: %v", i, err)
		}
		if err := s.Stream(ctx, tr.Events, 0); err != nil {
			t.Fatalf("oracle session %d: stream: %v", i, err)
		}
		if _, err := s.Finish(ctx); err != nil {
			t.Fatalf("oracle session %d: finish: %v", i, err)
		}
	}

	oracle := fetchReports(t, base)
	merged := fetchReports(t, fleetURL)
	if merged.Total != oracle.Total {
		t.Errorf("fleet reports %d race classes, single-node run has %d", merged.Total, oracle.Total)
	}
	om, mm := reportIndex(oracle.Reports), reportIndex(merged.Reports)
	for fp, want := range om {
		got, ok := mm[fp]
		if !ok {
			t.Errorf("race class %+v missing from merged fleet reports", fp)
			continue
		}
		if got != want {
			t.Errorf("race class %+v: fleet count/traces %v, single-node %v — failover lost or double-counted observations", fp, got, want)
		}
	}
	for fp := range mm {
		if _, ok := om[fp]; !ok {
			t.Errorf("race class %+v in fleet reports but absent from the single-node run", fp)
		}
	}
}

// assertNoArenaLeaks requires every given worker's detector arenas balanced:
// all pooled clock allocations returned at seal (finish or abort).
func assertNoArenaLeaks(t *testing.T, workers []*testWorker) {
	t.Helper()
	for _, w := range workers {
		if leaked := w.srv.Stats().ArenaLeakedRefs; leaked != 0 {
			t.Errorf("worker %s leaked %d arena refs", w.name, leaked)
		}
	}
}

// trickleStream streams the whole trace in chunk-sized steps with pauses,
// holding the session in flight long enough for a failure to land
// mid-stream. FinishReplay closes the post-last-chunk rollback window.
func trickleStream(t *testing.T, label string, s *client.Session, cfg client.Config, tr *trace.Trace, pause time.Duration) *client.FinishResult {
	t.Helper()
	ctx := context.Background()
	for upto := 0; upto < len(tr.Events); {
		upto = min(upto+cfg.ChunkEvents, len(tr.Events))
		if err := s.Stream(ctx, tr.Events[:upto], 0); err != nil {
			t.Errorf("%s: stream: %v", label, err)
			return nil
		}
		time.Sleep(pause)
	}
	fin, err := s.FinishReplay(ctx, tr.Events, 0)
	if err != nil {
		t.Errorf("%s: finish: %v", label, err)
		return nil
	}
	return fin
}

// TestChaosFleetWorkerKill: concurrent trickling streams across three
// workers while one is killed outright. Streams converge with zero errors,
// per-session reports match batch analysis, and the merged store matches a
// single-node run of the same traces.
func TestChaosFleetWorkerKill(t *testing.T) {
	before := runtime.NumGoroutine()
	engines := []string{"wcp", "hb"}
	const nclients = 3
	traces := make([]*trace.Trace, nclients)
	for c := range traces {
		traces[c] = fleetTrace(c + 30)
	}
	func() {
		f := startTestFleet(t, 3, false, 0)
		defer f.stop()
		ctx := context.Background()

		cfgs := make([]client.Config, nclients)
		sessions := make([]*client.Session, nclients)
		for c := 0; c < nclients; c++ {
			cfgs[c] = fleetClientConfig(f.url, c%2 == 1)
			s, err := client.Open(ctx, cfgs[c], traces[c].Symbols)
			if err != nil {
				t.Fatalf("client %d: open: %v", c, err)
			}
			sessions[c] = s
		}
		victim := f.workerFor(sessions[0].ID())

		var wg sync.WaitGroup
		fins := make([]*client.FinishResult, nclients)
		for c := 0; c < nclients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				fins[c] = trickleStream(t, labelf("client %d", c), sessions[c], cfgs[c], traces[c], 15*time.Millisecond)
			}(c)
		}
		time.Sleep(40 * time.Millisecond) // streams live, checkpoints pulled
		victim.kill()
		wg.Wait()
		for c, fin := range fins {
			if fin == nil {
				t.Fatalf("client %d: no finish result", c)
			}
			verifyFinish(t, labelf("client %d", c), cfgs[c].Engines, traces[c], fin)
		}
		if f.co.sessionsFailed.Value() == 0 {
			t.Error("kill forced no failover; the chaos window missed")
		}
		assertFleetMatchesSingleNode(t, f.url, traces, engines)
		survivors := make([]*testWorker, 0, len(f.workers))
		for _, w := range f.workers {
			if w != victim {
				survivors = append(survivors, w)
			}
		}
		assertNoArenaLeaks(t, survivors)
	}()
	waitNoGoroutineLeak(t, before)
}

// TestChaosFleetPartition: a worker is severed from the network (listener
// and outbound heartbeats both blocked) long enough to be failed over, then
// healed. The rejoining worker must reconcile — abort its stale session
// copies — so the merged reports stay identical to a single-node run, with
// the aborted copies' arenas fully returned.
func TestChaosFleetPartition(t *testing.T) {
	before := runtime.NumGoroutine()
	engines := []string{"wcp", "hb"}
	const nclients = 3
	traces := make([]*trace.Trace, nclients)
	for c := range traces {
		traces[c] = fleetTrace(c + 40)
	}
	func() {
		f := startTestFleet(t, 3, true, 0)
		defer f.stop()
		ctx := context.Background()

		cfgs := make([]client.Config, nclients)
		sessions := make([]*client.Session, nclients)
		for c := 0; c < nclients; c++ {
			cfgs[c] = fleetClientConfig(f.url, c%2 == 0)
			s, err := client.Open(ctx, cfgs[c], traces[c].Symbols)
			if err != nil {
				t.Fatalf("client %d: open: %v", c, err)
			}
			sessions[c] = s
			if err := s.Stream(ctx, traces[c].Events[:len(traces[c].Events)/2], 0); err != nil {
				t.Fatalf("client %d: stream (pre-partition): %v", c, err)
			}
		}
		time.Sleep(3 * testPullEvery) // let checkpoints be pulled

		victim := f.workerFor(sessions[0].ID())
		victim.gate.Block()
		f.wait(func() bool {
			for _, w := range f.co.Placements() {
				if w == victim.name {
					return false
				}
			}
			return true
		}, "partitioned worker's sessions to fail over")

		victim.gate.Heal()
		// The healed worker re-registers and must abort every stale copy the
		// coordinator names; its server ends up holding nothing.
		f.wait(func() bool { return victim.srv.Stats().Sessions == 0 }, "healed worker to reconcile stale sessions")
		f.wait(func() bool { return f.healthy() == 3 }, "healed worker to rejoin the ring")

		var wg sync.WaitGroup
		fins := make([]*client.FinishResult, nclients)
		for c := 0; c < nclients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				fins[c] = trickleStream(t, labelf("client %d", c), sessions[c], cfgs[c], traces[c], time.Millisecond)
			}(c)
		}
		wg.Wait()
		for c, fin := range fins {
			if fin == nil {
				t.Fatalf("client %d: no finish result", c)
			}
			verifyFinish(t, labelf("client %d", c), cfgs[c].Engines, traces[c], fin)
		}
		// The double-count trap: had the stale copies finalized instead of
		// aborting, these classes would tally extra counts.
		assertFleetMatchesSingleNode(t, f.url, traces, engines)
		assertNoArenaLeaks(t, f.workers)
	}()
	waitNoGoroutineLeak(t, before)
}

// TestChaosFleetFailoverDuringChunk: the owner dies while chunks are in
// flight and before any checkpoint was ever pulled (pulling disabled), so
// failover must re-create sessions from their retained create headers at
// offset zero and the clients must rewind and replay entire streams.
func TestChaosFleetFailoverDuringChunk(t *testing.T) {
	before := runtime.NumGoroutine()
	engines := []string{"wcp", "hb"}
	const nclients = 2
	traces := make([]*trace.Trace, nclients)
	for c := range traces {
		traces[c] = fleetTrace(c + 50)
	}
	func() {
		f := startTestFleet(t, 3, false, -1) // no checkpoint pulls
		defer f.stop()
		ctx := context.Background()

		cfgs := make([]client.Config, nclients)
		sessions := make([]*client.Session, nclients)
		for c := 0; c < nclients; c++ {
			cfgs[c] = fleetClientConfig(f.url, c%2 == 1)
			s, err := client.Open(ctx, cfgs[c], traces[c].Symbols)
			if err != nil {
				t.Fatalf("client %d: open: %v", c, err)
			}
			sessions[c] = s
		}
		victim := f.workerFor(sessions[0].ID())

		var wg sync.WaitGroup
		fins := make([]*client.FinishResult, nclients)
		for c := 0; c < nclients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				fins[c] = trickleStream(t, labelf("client %d", c), sessions[c], cfgs[c], traces[c], 20*time.Millisecond)
			}(c)
		}
		time.Sleep(30 * time.Millisecond) // chunks in flight, nothing checkpointed
		victim.kill()
		wg.Wait()
		for c, fin := range fins {
			if fin == nil {
				t.Fatalf("client %d: no finish result", c)
			}
			verifyFinish(t, labelf("client %d", c), cfgs[c].Engines, traces[c], fin)
		}
		if f.co.sessionsFailed.Value() == 0 {
			t.Error("kill forced no failover; the chaos window missed")
		}
		assertFleetMatchesSingleNode(t, f.url, traces, engines)
	}()
	waitNoGoroutineLeak(t, before)
}
