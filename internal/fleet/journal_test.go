package fleet

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/snap"
)

func appendPlace(t *testing.T, j *journal, id, worker string, header []byte) {
	t.Helper()
	if err := j.append(func(w *snap.Writer) {
		w.Byte(recPlace)
		w.String(id)
		w.String(worker)
		w.Bytes(header)
	}); err != nil {
		t.Fatalf("append place: %v", err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := j.append(func(w *snap.Writer) {
		w.Byte(recEpoch)
		w.Uvarint(3)
	}); err != nil {
		t.Fatalf("append epoch: %v", err)
	}
	if err := j.append(func(w *snap.Writer) {
		w.Byte(recWorkerUp)
		w.String("w1")
		w.String("http://127.0.0.1:1")
	}); err != nil {
		t.Fatalf("append worker: %v", err)
	}
	appendPlace(t, j, "aa11", "w1", []byte(`{"engines":["hb"]}`))
	appendPlace(t, j, "bb22", "w1", nil)
	if err := j.append(func(w *snap.Writer) {
		w.Byte(recMove)
		w.String("bb22")
		w.String("w2")
	}); err != nil {
		t.Fatalf("append move: %v", err)
	}
	if err := j.append(func(w *snap.Writer) {
		w.Byte(recFinish)
		w.String("cc33")
		w.Bytes([]byte(`{"races":1}`))
	}); err != nil {
		t.Fatalf("append finish: %v", err)
	}
	if err := j.append(func(w *snap.Writer) {
		w.Byte(recDrop)
		w.String("aa11")
	}); err != nil {
		t.Fatalf("append drop: %v", err)
	}
	if err := j.append(func(w *snap.Writer) {
		w.Byte(recWorkerDown)
		w.String("w1")
	}); err != nil {
		t.Fatalf("append workerdown: %v", err)
	}
	j.close()

	st, records, ok, err := replayJournal(dir)
	if err != nil || !ok {
		t.Fatalf("replay: ok=%v err=%v", ok, err)
	}
	if records != 8 {
		t.Fatalf("replayed %d records, want 8", records)
	}
	if st.epoch != 3 {
		t.Fatalf("epoch = %d, want 3", st.epoch)
	}
	if len(st.workers) != 0 {
		t.Fatalf("workers = %v, want empty (w1 came and went)", st.workers)
	}
	if len(st.placements) != 1 || st.placements["bb22"] == nil {
		t.Fatalf("placements = %v, want only bb22", st.placements)
	}
	if st.placements["bb22"].worker != "w2" {
		t.Fatalf("bb22 on %q, want w2 after move", st.placements["bb22"].worker)
	}
	if !bytes.Equal(st.finished["cc33"], []byte(`{"races":1}`)) {
		t.Fatalf("finished cc33 = %q", st.finished["cc33"])
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer j.close()
	for i := 0; i < 50; i++ {
		appendPlace(t, j, "aa11", "w1", []byte("hdr"))
	}
	before, _ := os.Stat(filepath.Join(dir, journalFileName))

	st := newJournalState()
	st.epoch = 7
	st.workers["w1"] = "http://127.0.0.1:1"
	st.placements["aa11"] = &journalPlacement{worker: "w1", header: []byte("hdr")}
	genBefore := j.gen
	if err := j.compact(st); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if j.gen != genBefore+1 {
		t.Fatalf("gen = %d, want %d", j.gen, genBefore+1)
	}
	after, _ := os.Stat(filepath.Join(dir, journalFileName))
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink: %d -> %d", before.Size(), after.Size())
	}
	if n := j.appendsSinceCompact(); n != 0 {
		t.Fatalf("appends after compact = %d", n)
	}

	// Appends after compaction land in the new file and replay on top of
	// the snapshot.
	appendPlace(t, j, "bb22", "w1", nil)
	got, _, ok, err := replayJournal(dir)
	if err != nil || !ok {
		t.Fatalf("replay: ok=%v err=%v", ok, err)
	}
	if got.epoch != 7 || len(got.placements) != 2 || got.workers["w1"] == "" {
		t.Fatalf("replayed state = epoch %d placements %v workers %v",
			got.epoch, got.placements, got.workers)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendPlace(t, j, "aa11", "w1", []byte("hdr"))
	appendPlace(t, j, "bb22", "w1", []byte("hdr"))
	j.close()

	// Simulate a crash mid-append: write a frame header that promises more
	// payload than exists.
	path := filepath.Join(dir, journalFileName)
	full, _ := os.Stat(path)
	var frame bytes.Buffer
	w := snap.NewWriter(&frame)
	w.Byte(recPlace)
	w.String("cc33")
	w.String("w1")
	w.Bytes([]byte("hdr"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	torn := frame.Bytes()[:frame.Len()-6] // cut mid-payload
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(torn)
	f.Close()

	st, records, ok, err := replayJournal(dir)
	if err != nil || !ok {
		t.Fatalf("torn tail should replay clean: ok=%v err=%v", ok, err)
	}
	if records != 2 || len(st.placements) != 2 {
		t.Fatalf("records=%d placements=%v, want the 2 whole frames", records, st.placements)
	}
	// The torn bytes must have been cut so future appends are readable.
	if cur, _ := os.Stat(path); cur.Size() != full.Size() {
		t.Fatalf("torn tail not truncated: size %d, want %d", cur.Size(), full.Size())
	}
}

func TestJournalCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendPlace(t, j, "aa11", "w1", []byte("hdr"))
	appendPlace(t, j, "bb22", "w1", []byte("hdr"))
	j.close()

	// Flip a byte inside the FIRST frame's payload: mid-log corruption,
	// not a torn tail — replay must report it so the coordinator falls
	// back to reconstruction.
	path := filepath.Join(dir, journalFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, ok, err := replayJournal(dir)
	if ok || err == nil {
		t.Fatalf("corruption not detected: ok=%v err=%v", ok, err)
	}
	if err := quarantineJournal(dir); err != nil {
		t.Fatalf("quarantine: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, journalCorruptFn)); err != nil {
		t.Fatalf("no quarantined copy: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt journal still in place: %v", err)
	}
}

func TestJournalBlobs(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer j.close()
	if err := j.writeBlob("aa11", []byte("checkpoint")); err != nil {
		t.Fatalf("writeBlob: %v", err)
	}
	if got := j.readBlob("aa11"); !bytes.Equal(got, []byte("checkpoint")) {
		t.Fatalf("readBlob = %q", got)
	}
	if ids := j.listBlobs(); len(ids) != 1 || ids[0] != "aa11" {
		t.Fatalf("listBlobs = %v", ids)
	}
	j.dropBlob("aa11")
	if got := j.readBlob("aa11"); got != nil {
		t.Fatalf("blob survived drop: %q", got)
	}
}

func TestJournalReadFromTail(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer j.close()
	appendPlace(t, j, "aa11", "w1", []byte("hdr"))
	data, gen, next, err := j.readFrom(0, 0) // stale gen 0 -> full resend
	if err != nil {
		t.Fatalf("readFrom: %v", err)
	}
	if len(data) == 0 || next != int64(len(data)) {
		t.Fatalf("readFrom: %d bytes, next=%d", len(data), next)
	}
	// Tail bytes decode as frames.
	st := newJournalState()
	r, err := snap.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decode tail: %v", err)
	}
	if err := st.applyRecord(r); err != nil {
		t.Fatalf("apply tail: %v", err)
	}
	if st.placements["aa11"] == nil {
		t.Fatalf("tail did not carry the placement")
	}
	// Caught up: nothing more.
	data2, gen2, next2, err := j.readFrom(gen, next)
	if err != nil || len(data2) != 0 || gen2 != gen || next2 != next {
		t.Fatalf("caught-up readFrom: data=%d gen=%d next=%d err=%v", len(data2), gen2, next2, err)
	}
	// Compaction bumps gen; a reader at the old gen gets a full resend.
	if err := j.compact(st); err != nil {
		t.Fatalf("compact: %v", err)
	}
	data3, gen3, _, err := j.readFrom(gen, next)
	if err != nil || gen3 != gen+1 || len(data3) == 0 {
		t.Fatalf("post-compact readFrom: data=%d gen=%d err=%v", len(data3), gen3, err)
	}
}
