package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"

	"repro/internal/report"
)

// workerReports is the worker-side GET /reports response shape.
type workerReports struct {
	Total   int            `json:"total"`
	Matched int            `json:"matched"`
	Reports []report.Entry `json:"reports"`
}

// handleReports fans GET /reports out to every reachable worker and merges
// the results into one deduplicated view: entries with the same fingerprint
// are one race class wherever its sessions happened to be placed. The
// engine/loc/var filters are pushed down to the workers (they shrink the
// transfer); min_count and limit only make sense against the merged totals,
// so they are applied here after the merge.
func (c *Coordinator) handleReports(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var minCount int64
	var limit int
	if v := q.Get("min_count"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad min_count %q", v)
			return
		}
		minCount = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	down := url.Values{}
	for _, k := range []string{"engine", "loc", "var"} {
		if v := q.Get(k); v != "" {
			down.Set(k, v)
		}
	}

	type target struct{ name, url string }
	c.mu.Lock()
	targets := make([]target, 0, len(c.workers))
	for _, wk := range c.workers {
		// Suspect and draining workers still answer reads; only the
		// definitively dead are skipped.
		if wk.state != workerDead && wk.url != "" {
			targets = append(targets, target{wk.name, wk.url})
		}
	}
	c.mu.Unlock()

	var mu sync.Mutex
	merged := make(map[report.Fingerprint]*report.Entry)
	unreachable := 0
	var wg sync.WaitGroup
	for _, t := range targets {
		wg.Add(1)
		go func(t target) {
			defer wg.Done()
			u := t.url + "/reports"
			if len(down) > 0 {
				u += "?" + down.Encode()
			}
			pr, err := c.forward(context.Background(), "GET", u, nil, nil)
			if err != nil || pr.status != http.StatusOK {
				mu.Lock()
				unreachable++
				mu.Unlock()
				return
			}
			var wr workerReports
			if json.Unmarshal(pr.body, &wr) != nil {
				mu.Lock()
				unreachable++
				mu.Unlock()
				return
			}
			mu.Lock()
			for i := range wr.Reports {
				mergeEntry(merged, &wr.Reports[i])
			}
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	c.reportMerges.Add(1)

	entries := make([]report.Entry, 0, len(merged))
	for _, e := range merged {
		entries = append(entries, *e)
	}
	// Deterministic order across coordinator restarts and worker sets:
	// first observation wins, fingerprint breaks ties.
	sort.Slice(entries, func(i, j int) bool {
		a, b := &entries[i], &entries[j]
		if !a.FirstSeen.Equal(b.FirstSeen) {
			return a.FirstSeen.Before(b.FirstSeen)
		}
		return fingerprintLess(a.Fingerprint, b.Fingerprint)
	})
	total := len(entries)
	if minCount > 0 {
		kept := entries[:0]
		for _, e := range entries {
			if e.Count >= minCount {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	if limit > 0 && len(entries) > limit {
		entries = entries[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":       total,
		"matched":     len(entries),
		"reports":     entries,
		"workers":     len(targets),
		"unreachable": unreachable,
	})
}

// mergeEntry folds one worker's entry into the merged map: counts and trace
// tallies add, the distance maximum and the observation window widen, and
// the earliest observer keeps the first-source credit.
func mergeEntry(m map[report.Fingerprint]*report.Entry, e *report.Entry) {
	cur, ok := m[e.Fingerprint]
	if !ok {
		cp := *e
		m[e.Fingerprint] = &cp
		return
	}
	cur.Count += e.Count
	cur.Traces += e.Traces
	if e.MaxDistance > cur.MaxDistance {
		cur.MaxDistance = e.MaxDistance
	}
	if e.FirstSeen.Before(cur.FirstSeen) {
		cur.FirstSeen = e.FirstSeen
		cur.FirstSource = e.FirstSource
	}
	if e.LastSeen.After(cur.LastSeen) {
		cur.LastSeen = e.LastSeen
	}
}

func fingerprintLess(a, b report.Fingerprint) bool {
	if a.Engine != b.Engine {
		return a.Engine < b.Engine
	}
	if a.LocA != b.LocA {
		return a.LocA < b.LocA
	}
	if a.LocB != b.LocB {
		return a.LocB < b.LocB
	}
	if a.Var != b.Var {
		return a.Var < b.Var
	}
	return a.Locks < b.Locks
}
