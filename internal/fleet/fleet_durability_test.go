package fleet

// Coordinator durability and fencing chaos differentials: the three
// recovery paths (journal replay, journal-less reconstruction from worker
// re-registration, and warm-standby takeover) each hold the suite's
// standing bar — zero client-visible errors and final reports byte-identical
// to an uninterrupted single-node run — plus the fencing invariant: once a
// successor's epoch reaches the workers, not one write from the superseded
// coordinator is accepted.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TestChaosFleetCoordinatorRestartJournal: the coordinator is killed
// mid-stream and restarted on the same address with its journal intact. The
// restarted coordinator must resume every in-flight placement from the
// replayed journal — workers never re-register, clients only see retries.
func TestChaosFleetCoordinatorRestartJournal(t *testing.T) {
	before := runtime.NumGoroutine()
	engines := []string{"wcp", "hb"}
	const nclients = 3
	traces := make([]*trace.Trace, nclients)
	for c := range traces {
		traces[c] = fleetTrace(c + 60)
	}
	func() {
		f := startTestFleetOpts(t, fleetOpts{
			workers: 3, journalDir: t.TempDir(), compactEvery: 1 << 30, // no compaction: pure replay
		})
		defer f.stop()
		ctx := context.Background()

		cfgs := make([]client.Config, nclients)
		sessions := make([]*client.Session, nclients)
		for c := 0; c < nclients; c++ {
			cfgs[c] = fleetClientConfig(f.url, c%2 == 1)
			s, err := client.Open(ctx, cfgs[c], traces[c].Symbols)
			if err != nil {
				t.Fatalf("client %d: open: %v", c, err)
			}
			sessions[c] = s
			if err := s.Stream(ctx, traces[c].Events[:len(traces[c].Events)*4/10], 0); err != nil {
				t.Fatalf("client %d: stream (pre-kill): %v", c, err)
			}
		}
		time.Sleep(3 * testPullEvery)

		var wg sync.WaitGroup
		fins := make([]*client.FinishResult, nclients)
		for c := 0; c < nclients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				fins[c] = trickleStream(t, labelf("client %d", c), sessions[c], cfgs[c], traces[c], 15*time.Millisecond)
			}(c)
		}
		time.Sleep(30 * time.Millisecond) // chunks in flight
		f.killCoordinator()
		time.Sleep(50 * time.Millisecond) // let retries hit the dead address
		f.restartCoordinator()
		wg.Wait()
		for c, fin := range fins {
			if fin == nil {
				t.Fatalf("client %d: no finish result", c)
			}
			verifyFinish(t, labelf("client %d", c), cfgs[c].Engines, traces[c], fin)
		}
		if f.co.journalReplayed.Value() == 0 {
			t.Error("restarted coordinator replayed no journal records; the recovery path was not exercised")
		}
		if got := f.co.epoch.Load(); got < 2 {
			t.Errorf("restarted coordinator epoch = %d, want >= 2 (every incarnation fences its predecessor)", got)
		}
		if f.co.sessionsAdopted.Value() != 0 {
			t.Error("journal replay fell back to worker-report adoption; placements were not durable")
		}
		assertFleetMatchesSingleNode(t, f.url, traces, engines)
		assertNoArenaLeaks(t, f.workers)
	}()
	waitNoGoroutineLeak(t, before)
}

// TestChaosFleetCoordinatorJournalLoss: the coordinator is killed
// mid-stream and its journal deleted before the restart — the disk is gone.
// The restarted coordinator must rebuild every placement purely from worker
// re-register session reports inside the recovery grace window, again with
// zero client-visible errors.
func TestChaosFleetCoordinatorJournalLoss(t *testing.T) {
	before := runtime.NumGoroutine()
	engines := []string{"wcp", "hb"}
	const nclients = 3
	traces := make([]*trace.Trace, nclients)
	for c := range traces {
		traces[c] = fleetTrace(c + 70)
	}
	func() {
		f := startTestFleetOpts(t, fleetOpts{workers: 3, journalDir: t.TempDir()})
		defer f.stop()
		ctx := context.Background()

		cfgs := make([]client.Config, nclients)
		sessions := make([]*client.Session, nclients)
		for c := 0; c < nclients; c++ {
			cfgs[c] = fleetClientConfig(f.url, c%2 == 0)
			s, err := client.Open(ctx, cfgs[c], traces[c].Symbols)
			if err != nil {
				t.Fatalf("client %d: open: %v", c, err)
			}
			sessions[c] = s
			if err := s.Stream(ctx, traces[c].Events[:len(traces[c].Events)/2], 0); err != nil {
				t.Fatalf("client %d: stream (pre-kill): %v", c, err)
			}
		}

		var wg sync.WaitGroup
		fins := make([]*client.FinishResult, nclients)
		for c := 0; c < nclients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				fins[c] = trickleStream(t, labelf("client %d", c), sessions[c], cfgs[c], traces[c], 15*time.Millisecond)
			}(c)
		}
		time.Sleep(30 * time.Millisecond)
		f.killCoordinator()
		if err := os.RemoveAll(f.journalDir); err != nil {
			t.Fatalf("deleting journal: %v", err)
		}
		f.restartCoordinator()
		wg.Wait()
		for c, fin := range fins {
			if fin == nil {
				t.Fatalf("client %d: no finish result", c)
			}
			verifyFinish(t, labelf("client %d", c), cfgs[c].Engines, traces[c], fin)
		}
		if f.co.journalReplayed.Value() != 0 {
			t.Error("coordinator claims journal records despite the deleted journal")
		}
		if f.co.sessionsAdopted.Value() == 0 {
			t.Error("no sessions adopted from worker reports; reconstruction was not exercised")
		}
		assertFleetMatchesSingleNode(t, f.url, traces, engines)
		assertNoArenaLeaks(t, f.workers)
	}()
	waitNoGoroutineLeak(t, before)
}

// TestChaosFleetStandbyTakeover: a warm standby tails the primary's journal
// and the workers dual-heartbeat both coordinators. The primary is killed
// mid-stream; the standby must take over within the lease, and clients
// configured with the coordinator list must converge on it with zero
// visible errors and byte-identical reports.
func TestChaosFleetStandbyTakeover(t *testing.T) {
	before := runtime.NumGoroutine()
	engines := []string{"wcp", "hb"}
	const nclients = 3
	traces := make([]*trace.Trace, nclients)
	for c := range traces {
		traces[c] = fleetTrace(c + 80)
	}
	func() {
		f := startTestFleetOpts(t, fleetOpts{
			workers: 3, journalDir: t.TempDir(), standby: true,
			leaseTimeout: 300 * time.Millisecond,
		})
		defer f.stop()
		ctx := context.Background()

		cfgs := make([]client.Config, nclients)
		sessions := make([]*client.Session, nclients)
		for c := 0; c < nclients; c++ {
			cfgs[c] = fleetClientConfig(f.clientBase(), c%2 == 1)
			s, err := client.Open(ctx, cfgs[c], traces[c].Symbols)
			if err != nil {
				t.Fatalf("client %d: open: %v", c, err)
			}
			sessions[c] = s
			if err := s.Stream(ctx, traces[c].Events[:len(traces[c].Events)*4/10], 0); err != nil {
				t.Fatalf("client %d: stream (pre-kill): %v", c, err)
			}
		}
		time.Sleep(3 * testPullEvery)
		// The standby must have tailed every placement before the kill, or
		// the test would exercise the membership-reset path instead.
		f.wait(func() bool { return len(f.standby.Placements()) == nclients },
			"standby to tail all placements")

		oldEpoch := f.co.epoch.Load()
		var wg sync.WaitGroup
		fins := make([]*client.FinishResult, nclients)
		for c := 0; c < nclients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				fins[c] = trickleStream(t, labelf("client %d", c), sessions[c], cfgs[c], traces[c], 15*time.Millisecond)
			}(c)
		}
		time.Sleep(30 * time.Millisecond)
		f.killCoordinator()
		f.wait(func() bool { return !f.standby.standbyMode.Load() }, "standby takeover")
		wg.Wait()
		for c, fin := range fins {
			if fin == nil {
				t.Fatalf("client %d: no finish result", c)
			}
			verifyFinish(t, labelf("client %d", c), cfgs[c].Engines, traces[c], fin)
		}
		if got := f.standby.takeovers.Value(); got != 1 {
			t.Errorf("standby recorded %d takeovers, want 1", got)
		}
		if got := f.standby.epoch.Load(); got <= oldEpoch {
			t.Errorf("takeover epoch = %d, want > primary's %d", got, oldEpoch)
		}
		assertFleetMatchesSingleNode(t, f.standbyURL, traces, engines)
		assertNoArenaLeaks(t, f.workers)
	}()
	waitNoGoroutineLeak(t, before)
}

// TestChaosFleetFencing: the standby is partitioned from the primary (but
// not from the workers), takes over, and raises the fleet's epoch — while
// the old primary stays alive and believes it leads. When the zombie then
// tries to place a session, every worker must answer 412, the write must
// not land anywhere, and the zombie must fence itself (session API 503)
// from that moment on.
func TestChaosFleetFencing(t *testing.T) {
	before := runtime.NumGoroutine()
	engines := []string{"wcp", "hb"}
	const nclients = 2
	traces := make([]*trace.Trace, nclients)
	for c := range traces {
		traces[c] = fleetTrace(c + 90)
	}
	func() {
		f := startTestFleetOpts(t, fleetOpts{
			workers: 2, journalDir: t.TempDir(), standby: true, standbyGated: true,
			pullEvery:    -1, // no pulls: the zombie's first post-fence write is our probe
			leaseTimeout: 300 * time.Millisecond,
		})
		defer f.stop()
		ctx := context.Background()

		cfgs := make([]client.Config, nclients)
		sessions := make([]*client.Session, nclients)
		for c := 0; c < nclients; c++ {
			cfgs[c] = fleetClientConfig(f.clientBase(), false)
			s, err := client.Open(ctx, cfgs[c], traces[c].Symbols)
			if err != nil {
				t.Fatalf("client %d: open: %v", c, err)
			}
			sessions[c] = s
			if err := s.Stream(ctx, traces[c].Events[:len(traces[c].Events)/2], 0); err != nil {
				t.Fatalf("client %d: stream: %v", c, err)
			}
		}
		f.wait(func() bool { return len(f.standby.Placements()) == nclients },
			"standby to tail all placements")

		oldEpoch := f.co.epoch.Load()
		sessionsBefore := 0
		for _, w := range f.workers {
			sessionsBefore += w.srv.Stats().Sessions
		}

		// Partition the coordinators from each other only: the standby's
		// journal polls fail, the primary keeps running — the classic
		// split-brain that fencing exists to make harmless.
		f.standbyGate.Block()
		f.wait(func() bool { return !f.standby.standbyMode.Load() }, "partitioned standby takeover")
		f.standbyGate.Heal()
		newEpoch := f.standby.epoch.Load()
		if newEpoch <= oldEpoch {
			t.Fatalf("takeover epoch %d did not pass the primary's %d", newEpoch, oldEpoch)
		}
		// Workers learn the new epoch from the promoted standby's heartbeat
		// acks; the probe is only meaningful once every fence is raised.
		f.wait(func() bool {
			for _, w := range f.workers {
				if w.srv.CoordinatorEpoch() < newEpoch {
					return false
				}
			}
			return true
		}, "workers to raise their epoch fence")

		// The zombie wakes and tries to place a session. Every worker it
		// asks must answer 412 — the create is proxied through unchanged.
		resp, err := http.Post(f.url+"/sessions", "application/octet-stream", strings.NewReader("hdr"))
		if err != nil {
			t.Fatalf("zombie create: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusPreconditionFailed {
			t.Fatalf("zombie create: status %d, want 412 from the worker fence", resp.StatusCode)
		}
		sessionsAfter := 0
		for _, w := range f.workers {
			sessionsAfter += w.srv.Stats().Sessions
		}
		if sessionsAfter != sessionsBefore {
			t.Errorf("zombie write landed: worker sessions %d -> %d", sessionsBefore, sessionsAfter)
		}
		if !f.co.fenced.Load() {
			t.Error("old primary did not fence itself after the 412")
		}
		if f.co.epochRejects.Value() == 0 {
			t.Error("old primary counted no epoch rejects")
		}

		// From here on the zombie refuses the session API outright.
		resp, err = http.Post(f.url+"/sessions", "application/octet-stream", strings.NewReader("hdr"))
		if err != nil {
			t.Fatalf("post-fence create: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("post-fence create: status %d, want 503 (fenced)", resp.StatusCode)
		}
		hz, err := http.Get(f.url + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		var hzBody struct {
			Status string `json:"status"`
		}
		json.NewDecoder(hz.Body).Decode(&hzBody)
		hz.Body.Close()
		if hz.StatusCode != http.StatusServiceUnavailable || hzBody.Status != "fenced" {
			t.Errorf("zombie healthz = %d %q, want 503 \"fenced\"", hz.StatusCode, hzBody.Status)
		}

		// Clients carry on through the live coordinator: the fenced 503
		// rotates them, the streams complete, and the reports are exact.
		for c, s := range sessions {
			fin := trickleStream(t, labelf("client %d", c), s, cfgs[c], traces[c], time.Millisecond)
			if fin == nil {
				t.Fatalf("client %d: no finish result", c)
			}
			verifyFinish(t, labelf("client %d", c), cfgs[c].Engines, traces[c], fin)
		}
		assertFleetMatchesSingleNode(t, f.standbyURL, traces, engines)
		assertNoArenaLeaks(t, f.workers)
	}()
	waitNoGoroutineLeak(t, before)
}

// TestCoordinatorFinishedCacheBounds pins the finished-reply cache's two
// bounds: entry-count eviction on insert and TTL expiry from the monitor
// loop, both counted on fleet_finished_cache_evictions_total.
func TestCoordinatorFinishedCacheBounds(t *testing.T) {
	co := NewCoordinator(CoordinatorConfig{
		HeartbeatTimeout: time.Hour,
		PullEvery:        -1,
		FinishedMax:      3,
		FinishedTTL:      50 * time.Millisecond,
		Logger:           testLogger(t),
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		co.Close(ctx)
	}()
	for i := 0; i < 5; i++ {
		co.rememberFinished(fmt.Sprintf("s%d", i), []byte(fmt.Sprintf("reply-%d", i)))
	}
	for _, gone := range []string{"s0", "s1"} {
		if _, ok := co.recallFinished(gone); ok {
			t.Errorf("entry %s survived past FinishedMax=3", gone)
		}
	}
	for _, kept := range []string{"s2", "s3", "s4"} {
		if _, ok := co.recallFinished(kept); !ok {
			t.Errorf("entry %s evicted while within FinishedMax", kept)
		}
	}
	if got := co.finEvictions.Value(); got != 2 {
		t.Errorf("capacity evictions = %d, want 2", got)
	}
	time.Sleep(60 * time.Millisecond)
	co.expireFinished()
	if _, ok := co.recallFinished("s4"); ok {
		t.Error("entry s4 survived past FinishedTTL")
	}
	if got := co.finEvictions.Value(); got != 5 {
		t.Errorf("total evictions = %d, want 5 (2 capacity + 3 TTL)", got)
	}
}

// dropFirstListener closes the first accepted connection before a byte is
// served — the shape of a single dropped SYN/RST during a worker GC pause.
type dropFirstListener struct {
	net.Listener
	dropped atomic.Bool
}

func (l *dropFirstListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil && !l.dropped.Swap(true) {
		c.Close()
		return l.Accept()
	}
	return c, err
}

// TestCoordinatorForwardRetry pins the forward path's single jittered
// retry: one transient connection failure must not surface to the caller
// (or start the suspect clock), and must be counted.
func TestCoordinatorForwardRetry(t *testing.T) {
	co := NewCoordinator(CoordinatorConfig{
		HeartbeatTimeout: time.Hour,
		PullEvery:        -1,
		Logger:           testLogger(t),
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		co.Close(ctx)
	}()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ping", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("pong"))
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(&dropFirstListener{Listener: ln})
	defer hs.Close()

	pr, err := co.forward(context.Background(), "GET", "http://"+ln.Addr().String()+"/ping", nil, nil)
	if err != nil {
		t.Fatalf("forward with one dropped connection: %v", err)
	}
	if pr.status != http.StatusOK || string(pr.body) != "pong" {
		t.Fatalf("forward: status %d body %q", pr.status, pr.body)
	}
	if got := co.forwardRetries.Value(); got != 1 {
		t.Errorf("forward retries = %d, want exactly 1", got)
	}
}

// fleetGoldenFamilies is the fleet_* exposition contract, the coordinator
// counterpart of the server's goldenFamilies list: smoke scripts and
// dashboards scrape these names.
var fleetGoldenFamilies = []string{
	"fleet_proxied_requests_total",
	"fleet_sessions_created_total",
	"fleet_sessions_finished_total",
	"fleet_admission_shed_total",
	"fleet_worker_failovers_total",
	"fleet_sessions_failed_over_total",
	"fleet_sessions_migrated_total",
	"fleet_sessions_lost_total",
	"fleet_sessions_adopted_total",
	"fleet_checkpoint_pulls_total",
	"fleet_checkpoint_pull_failures_total",
	"fleet_report_merges_total",
	"fleet_journal_appends_total",
	"fleet_journal_compactions_total",
	"fleet_journal_errors_total",
	"fleet_journal_replay_records_total",
	"fleet_finished_cache_evictions_total",
	"fleet_forward_retries_total",
	"fleet_epoch_rejects_total",
	"fleet_standby_takeovers_total",
	"fleet_proxy_seconds",
	"fleet_workers",
	"fleet_workers_healthy",
	"fleet_workers_state",
	"fleet_sessions_placed",
	"fleet_pending_failovers",
	"fleet_pending_migrations",
	"fleet_uptime_seconds",
	"fleet_coordinator_epoch",
	"fleet_coordinator_standby",
}

// TestFleetMetricsGoldenFamilies re-parses the coordinator's own exposition
// and requires every golden fleet_* family present, with the durability
// gauges carrying live values (epoch >= 1 on a journaled coordinator).
func TestFleetMetricsGoldenFamilies(t *testing.T) {
	co := NewCoordinator(CoordinatorConfig{
		JournalDir:       t.TempDir(),
		HeartbeatTimeout: time.Hour,
		PullEvery:        -1,
		Logger:           testLogger(t),
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		co.Close(ctx)
	}()
	var buf bytes.Buffer
	co.reg.WritePrometheus(&buf)
	fams, err := obs.ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("coordinator exposition does not parse: %v\n%s", err, buf.Bytes())
	}
	present := make(map[string]bool, len(fams))
	for _, fam := range fams {
		present[fam.Name] = true
	}
	for _, name := range fleetGoldenFamilies {
		if !present[name] {
			t.Errorf("golden family %s missing from the coordinator exposition", name)
		}
	}
	if !strings.Contains(buf.String(), "fleet_coordinator_epoch 1") {
		t.Errorf("fleet_coordinator_epoch should be 1 on a fresh journaled coordinator:\n%s", buf.String())
	}
	if co.journalAppends.Value() == 0 {
		t.Error("journaled coordinator recorded no appends (the epoch record should be one)")
	}
}
