package fleet

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// HeaderWorker is set on coordinator-proxied responses and names the worker
// currently owning the session, so placement-following clients can send
// their chunk hot path straight to the worker and re-resolve through the
// coordinator when the placement moves.
const HeaderWorker = "X-Raced-Worker"

// HeaderSessionID lets the coordinator choose the session id on a proxied
// create, which is what makes ring placement deterministic: the id is
// hashed before any worker is contacted.
const HeaderSessionID = "X-Raced-Session-Id"

// HeaderEpoch carries the coordinator's fencing epoch on every
// worker-bound request and on register/heartbeat replies. Workers retain
// the highest epoch they have seen and answer 412 Precondition Failed to
// anything lower, so a superseded ("zombie") coordinator can never
// double-place a session or roll a placement back. Must match the
// server-side constant of the same value.
const HeaderEpoch = "X-Raced-Epoch"

// CoordinatorConfig parameterizes a Coordinator. The zero value picks
// usable defaults.
type CoordinatorConfig struct {
	// HeartbeatTimeout is how long a worker may go without a heartbeat
	// before it is marked suspect and its sessions are failed over.
	// Defaults to 3 seconds.
	HeartbeatTimeout time.Duration
	// HeartbeatEvery is the cadence advertised to registering workers.
	// Defaults to HeartbeatTimeout/3.
	HeartbeatEvery time.Duration
	// PullEvery is how often the coordinator pulls session checkpoints
	// from workers — the failover restore source. Defaults to 10 seconds;
	// <0 disables pulling (failover then replays whole streams from the
	// retained create headers).
	PullEvery time.Duration
	// ProxyTimeout bounds each proxied request. Defaults to 2 minutes.
	ProxyTimeout time.Duration
	// MaxBodyBytes caps proxied request bodies. Defaults to 32 MiB.
	MaxBodyBytes int64
	// Vnodes is the virtual-node count per worker on the placement ring.
	Vnodes int
	// NoRebalance disables session migration onto a newly joined worker.
	// By default a joining worker receives the open sessions that hash to
	// it — bounded movement, about 1/N of the fleet's sessions.
	NoRebalance bool
	// HTTPClient issues worker requests; defaults to a keep-alive client.
	HTTPClient *http.Client
	// Logger receives structured operational logs; nil discards them.
	Logger *slog.Logger
	// TraceSpanCap bounds the coordinator's in-memory span ring (see
	// internal/obs.TraceLog). Defaults to obs.DefaultSpanCap.
	TraceSpanCap int

	// JournalDir enables the durable placement journal: every placement
	// create/move/finish, worker membership change, and finished-reply
	// cache entry is appended to <dir>/journal.log (CRC-framed), with
	// pulled checkpoint blobs spilled under <dir>/blobs/. A restarted
	// coordinator replays the journal and resumes proxying in-flight
	// sessions. Empty disables journaling (state dies with the process;
	// worker re-registration still reconstructs placements).
	JournalDir string
	// CompactEvery is how many journal appends accumulate before the log
	// is rewritten as a snapshot + tail. Defaults to 1024.
	CompactEvery int64
	// StandbyOf makes this coordinator a warm standby: it tails the
	// primary coordinator at this base URL (its journal plus worker
	// dual-heartbeats), answers the session API 503, and takes over —
	// bumping the fencing epoch — when the primary misses its lease.
	StandbyOf string
	// LeaseTimeout is how long the standby tolerates failed journal polls
	// before declaring the primary dead and taking over. Defaults to
	// 3x HeartbeatTimeout.
	LeaseTimeout time.Duration
	// RecoveryGrace is the registration grace window entered after a
	// journal-less or corrupt-journal start (and after a standby
	// takeover): placements rebuild from workers' re-register session
	// reports, rebalancing is held off, and /healthz reports
	// "recovering". Defaults to 2x HeartbeatTimeout.
	RecoveryGrace time.Duration
	// FinishedTTL bounds how long a cached finish reply is retained for
	// replayed finishes. Defaults to 10 minutes.
	FinishedTTL time.Duration
	// FinishedMax caps the finish-reply cache entry count. Defaults to
	// 4096.
	FinishedMax int
}

func (c *CoordinatorConfig) fill() {
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 3 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.HeartbeatTimeout / 3
	}
	if c.PullEvery == 0 {
		c.PullEvery = 10 * time.Second
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 1024
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 3 * c.HeartbeatTimeout
	}
	if c.RecoveryGrace <= 0 {
		c.RecoveryGrace = 2 * c.HeartbeatTimeout
	}
	if c.FinishedTTL <= 0 {
		c.FinishedTTL = 10 * time.Minute
	}
	if c.FinishedMax <= 0 {
		c.FinishedMax = finishedCacheCap
	}
}

// placement is the coordinator's record of one session: where it lives,
// whether it is mid-move, and everything needed to resurrect it on another
// worker — the latest pulled checkpoint blob and, as the fallback of last
// resort, the retained create request (header bytes + engines) that can
// re-open it empty at offset zero for a full client replay.
type placement struct {
	id      string
	worker  string
	moving  bool
	trace   string // request-trace id from the create, re-attached on failover
	engines string // raw ?engines= value from the create request
	header  []byte // retained create body (binary trace header)
	blob    []byte // latest pulled session checkpoint
	blobAt  time.Time
}

// Coordinator owns session placement across a fleet of raced workers and
// fronts the whole session API: create/chunk/finish/status are proxied to
// the owning worker, /reports is merged across workers, and worker
// heartbeats drive failover. Create with NewCoordinator, serve Handler,
// stop with Close.
type Coordinator struct {
	cfg   CoordinatorConfig
	mux   *http.ServeMux
	start time.Time

	mu         sync.Mutex
	workers    map[string]*worker
	ring       *Ring
	placements map[string]*placement

	// finished caches proxied finish responses so a replayed finish for a
	// session whose placement is gone still gets the identical report.
	// Bounded by FinishedMax entries and FinishedTTL age (entries land in
	// time order, so expiry walks finOrder from the front).
	finMu    sync.Mutex
	finished map[string]finishedEntry
	finOrder []string

	// pendingFailovers counts sessions whose worker is gone and whose
	// restore hasn't landed — the queue that derives the admission
	// Retry-After. pendingMigrations counts graceful moves (drain,
	// rebalance), which never shed admission: their source still serves.
	pendingFailovers  atomic.Int64
	pendingMigrations atomic.Int64

	closed      atomic.Bool
	stop        chan struct{}
	monitorDone chan struct{}
	pullDone    chan struct{}
	moverDone   chan struct{}
	standbyDone chan struct{}
	pullKick    chan struct{}
	moveQ       chan moveSpec

	// Durability & fencing. journal is nil when journaling is disabled.
	// epoch is the monotonic fencing token persisted in the journal and
	// stamped on every worker-bound request; workers reject lower epochs,
	// so a superseded coordinator cannot mutate placements. fenced is set
	// when a worker rejects our epoch: a newer coordinator exists, stop
	// serving and let clients fail over to it. standbyMode is true while
	// tailing a primary (session API answers 503); a takeover flips it.
	journal     *journal
	epoch       atomic.Uint64
	fenced      atomic.Bool
	standbyMode atomic.Bool
	standby     *standbyState

	// recoveringUntil, guarded by mu: nonzero during the registration
	// grace window after a journal-less start or a takeover, while
	// placements rebuild from worker re-register reports.
	recoveringUntil time.Time

	// Observability: the coordinator's own registry (fleet_* families,
	// unlabeled) and span ring. Proxy and failover spans recorded here carry
	// the target worker's name, so a request's trace survives the death of
	// the worker that served it — the coordinator's half of the timeline
	// outlives the worker's.
	reg      *obs.Registry
	trace    *obs.TraceLog
	proxyDur *obs.Histogram

	// counters (registered in newMetrics; fleet_* names are load-bearing)
	proxied          *obs.Counter
	sessionsCreated  *obs.Counter
	sessionsFinished *obs.Counter
	admissionShed    *obs.Counter
	workerFailovers  *obs.Counter
	sessionsFailed   *obs.Counter // sessions failed over (restored elsewhere)
	sessionsMigrated *obs.Counter // graceful moves (drain, rebalance)
	sessionsLost     *obs.Counter // unrecoverable (no blob, no header)
	sessionsAdopted  *obs.Counter
	pullsOK          *obs.Counter
	pullsFailed      *obs.Counter
	reportMerges     *obs.Counter

	journalAppends  *obs.Counter
	journalCompacts *obs.Counter
	journalErrors   *obs.Counter
	journalReplayed *obs.Counter
	finEvictions    *obs.Counter
	forwardRetries  *obs.Counter
	epochRejects    *obs.Counter // our writes rejected by a higher worker fence
	takeovers       *obs.Counter
}

// finishedEntry is one cached finish reply with its insertion time.
type finishedEntry struct {
	body []byte
	at   time.Time
}

// NewCoordinator builds a Coordinator and starts its heartbeat monitor,
// checkpoint-pull loop, and session mover. With JournalDir set it replays
// the durable journal first (resuming in-flight placements), falling back
// to worker-report reconstruction when the journal is missing or corrupt;
// with StandbyOf set it starts as a warm standby tailing that primary.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg.fill()
	c := &Coordinator{
		cfg:         cfg,
		workers:     make(map[string]*worker),
		ring:        NewRing(cfg.Vnodes),
		placements:  make(map[string]*placement),
		finished:    make(map[string]finishedEntry),
		start:       time.Now(),
		stop:        make(chan struct{}),
		monitorDone: make(chan struct{}),
		pullDone:    make(chan struct{}),
		moverDone:   make(chan struct{}),
		standbyDone: make(chan struct{}),
		pullKick:    make(chan struct{}, 1),
		moveQ:       make(chan moveSpec, 1024),
		trace:       obs.NewTraceLog(cfg.TraceSpanCap),
	}
	c.newMetrics()
	c.epoch.Store(1)
	if cfg.JournalDir != "" {
		c.openAndReplayJournal()
	}
	if cfg.StandbyOf != "" {
		c.standbyMode.Store(true)
		c.standby = newStandbyState(cfg.StandbyOf)
		go c.standbyLoop()
	} else {
		close(c.standbyDone)
		c.recordEpoch(c.epoch.Load()) // persist this incarnation's epoch
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /sessions", c.handleCreateSession)
	c.mux.HandleFunc("GET /sessions/{id}", c.handleSessionStatus)
	c.mux.HandleFunc("POST /sessions/{id}/chunks", c.handleChunk)
	c.mux.HandleFunc("POST /sessions/{id}/finish", c.handleFinish)
	c.mux.HandleFunc("DELETE /sessions/{id}", c.handleAbort)
	c.mux.HandleFunc("GET /sessions/{id}/snapshot", c.handleSessionSnapshot)
	c.mux.HandleFunc("GET /reports", c.handleReports)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /fleet", c.handleFleet)
	c.mux.HandleFunc("POST /fleet/register", c.handleRegister)
	c.mux.HandleFunc("POST /fleet/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /fleet/leave", c.handleLeave)
	c.mux.HandleFunc("GET /fleet/journal", c.handleJournalTail)
	c.mux.HandleFunc("GET /debug/trace/{id}", c.handleDebugTrace)
	c.mux.HandleFunc("GET /debug/sessions/{id}", c.handleDebugSession)
	go c.monitorLoop()
	go c.moverLoop()
	if cfg.PullEvery > 0 {
		go c.pullLoop()
	} else {
		close(c.pullDone)
	}
	return c
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the background loops. In-flight proxied requests are the
// HTTP server's to drain.
func (c *Coordinator) Close(ctx context.Context) error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.stop)
	for _, done := range []chan struct{}{c.monitorDone, c.pullDone, c.moverDone, c.standbyDone} {
		select {
		case <-done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if c.journal != nil {
		c.journal.close()
	}
	return nil
}

// Placements returns a snapshot of session id -> owning worker name.
func (c *Coordinator) Placements() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.placements))
	for id, pl := range c.placements {
		out[id] = pl.worker
	}
	return out
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// --- durable journal ---

// openAndReplayJournal restores coordinator state from JournalDir. A
// missing journal is a cold start; a corrupt one is quarantined and the
// coordinator enters the registration grace window to rebuild from worker
// re-register reports instead. Called from NewCoordinator before any
// request can arrive, so no locks are needed.
func (c *Coordinator) openAndReplayJournal() {
	t0 := time.Now()
	st, records, ok, err := replayJournal(c.cfg.JournalDir)
	if !ok {
		c.cfg.Logger.Error("journal corrupt, quarantining and rebuilding from worker reports",
			"dir", c.cfg.JournalDir, "err", err, "records_salvaged", records)
		c.journalErrors.Add(1)
		if qerr := quarantineJournal(c.cfg.JournalDir); qerr != nil {
			c.cfg.Logger.Error("journal quarantine failed", "err", qerr)
		}
		st = newJournalState()
		records = 0
	}
	j, jerr := openJournal(c.cfg.JournalDir)
	if jerr != nil {
		// Degrade to journal-less operation: reconstruction still works.
		c.cfg.Logger.Error("journal unavailable, running without durability", "err", jerr)
		c.journalErrors.Add(1)
		return
	}
	c.journal = j
	now := time.Now()
	for name, url := range st.workers {
		c.workers[name] = &worker{name: name, url: url, state: workerActive, lastBeat: now}
		c.ring.Add(name)
	}
	for id, jp := range st.placements {
		pl := &placement{id: id, worker: jp.worker, header: jp.header}
		if blob := j.readBlob(id); blob != nil {
			pl.blob = blob
			pl.blobAt = now
		}
		c.placements[id] = pl
	}
	for _, id := range j.listBlobs() {
		if _, live := st.placements[id]; !live {
			j.dropBlob(id) // orphaned by a drop journaled before the crash
		}
	}
	for id, body := range st.finished {
		c.finished[id] = finishedEntry{body: body, at: now}
		c.finOrder = append(c.finOrder, id)
	}
	c.epoch.Store(st.epoch + 1) // every incarnation fences its predecessor
	c.journalReplayed.Add(uint64(records))
	if records == 0 {
		// Nothing replayed: either a genuinely fresh install or a lost
		// journal. Both are served by the grace window — with no prior
		// state it only defers rebalancing briefly.
		c.recoveringUntil = now.Add(c.cfg.RecoveryGrace)
	}
	c.span(obs.Span{Name: "journal_replay", Start: t0, Duration: time.Since(t0).Seconds(),
		Events: uint64(records)})
	c.cfg.Logger.Info("journal replayed",
		"records", records, "placements", len(c.placements), "workers", len(c.workers),
		"epoch", c.epoch.Load(), "recovering", !c.recoveringUntil.IsZero())
}

// recovering reports whether the post-restart registration grace window is
// still open.
func (c *Coordinator) recovering() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Now().Before(c.recoveringUntil)
}

// journalErr accounts a failed journal append. The coordinator keeps
// serving — losing the journal degrades restart to worker-report
// reconstruction, which is strictly better than refusing traffic.
func (c *Coordinator) journalErr(what string, err error) {
	c.journalErrors.Add(1)
	c.cfg.Logger.Error("journal append failed", "record", what, "err", err)
}

func (c *Coordinator) recordPlace(id, workerName string, header []byte) {
	if c.journal == nil {
		return
	}
	if err := c.journal.append(func(w *snapWriter) {
		w.Byte(recPlace)
		w.String(id)
		w.String(workerName)
		w.Bytes(header)
	}); err != nil {
		c.journalErr("place", err)
		return
	}
	c.journalAppends.Add(1)
}

func (c *Coordinator) recordMove(id, workerName string) {
	if c.journal == nil {
		return
	}
	if err := c.journal.append(func(w *snapWriter) {
		w.Byte(recMove)
		w.String(id)
		w.String(workerName)
	}); err != nil {
		c.journalErr("move", err)
		return
	}
	c.journalAppends.Add(1)
}

func (c *Coordinator) recordDrop(id string) {
	if c.journal == nil {
		return
	}
	c.journal.dropBlob(id)
	if err := c.journal.append(func(w *snapWriter) {
		w.Byte(recDrop)
		w.String(id)
	}); err != nil {
		c.journalErr("drop", err)
		return
	}
	c.journalAppends.Add(1)
}

func (c *Coordinator) recordFinish(id string, body []byte) {
	if c.journal == nil {
		return
	}
	if err := c.journal.append(func(w *snapWriter) {
		w.Byte(recFinish)
		w.String(id)
		w.Bytes(body)
	}); err != nil {
		c.journalErr("finish", err)
		return
	}
	c.journalAppends.Add(1)
}

func (c *Coordinator) recordWorker(name, url string, up bool) {
	if c.journal == nil {
		return
	}
	if err := c.journal.append(func(w *snapWriter) {
		if up {
			w.Byte(recWorkerUp)
			w.String(name)
			w.String(url)
		} else {
			w.Byte(recWorkerDown)
			w.String(name)
		}
	}); err != nil {
		c.journalErr("worker", err)
		return
	}
	c.journalAppends.Add(1)
}

func (c *Coordinator) recordEpoch(epoch uint64) {
	if c.journal == nil {
		return
	}
	if err := c.journal.append(func(w *snapWriter) {
		w.Byte(recEpoch)
		w.Uvarint(epoch)
	}); err != nil {
		c.journalErr("epoch", err)
		return
	}
	c.journalAppends.Add(1)
}

// snapshotState captures current coordinator state in journal form, for
// compaction and takeover snapshots.
func (c *Coordinator) snapshotState() *journalState {
	st := newJournalState()
	st.epoch = c.epoch.Load()
	c.mu.Lock()
	for name, wk := range c.workers {
		if wk.state != workerDead {
			st.workers[name] = wk.url
		}
	}
	for id, pl := range c.placements {
		st.placements[id] = &journalPlacement{worker: pl.worker, header: pl.header}
	}
	c.mu.Unlock()
	c.finMu.Lock()
	for id, e := range c.finished {
		st.finished[id] = e.body
	}
	c.finMu.Unlock()
	return st
}

// maybeCompact rewrites the journal as snapshot + tail once enough appends
// have accumulated. Called from the monitor loop.
func (c *Coordinator) maybeCompact() {
	if c.journal == nil || c.journal.appendsSinceCompact() < c.cfg.CompactEvery {
		return
	}
	t0 := time.Now()
	if err := c.journal.compact(c.snapshotState()); err != nil {
		c.journalErrors.Add(1)
		c.cfg.Logger.Error("journal compaction failed", "err", err)
		return
	}
	c.journalCompacts.Add(1)
	c.span(obs.Span{Name: "journal_compact", Start: t0, Duration: time.Since(t0).Seconds()})
	c.cfg.Logger.Info("journal compacted", "took", time.Since(t0))
}

// handleJournalTail (GET /fleet/journal?gen=G&from=N) serves committed
// journal bytes to a tailing standby. The generation changes on every
// compaction; a stale generation gets the whole log from offset zero so
// the standby rebuilds from the snapshot frame.
func (c *Coordinator) handleJournalTail(w http.ResponseWriter, r *http.Request) {
	if c.journal == nil {
		writeError(w, http.StatusNotFound, "journaling disabled")
		return
	}
	gen, _ := strconv.ParseUint(r.URL.Query().Get("gen"), 10, 64)
	from, _ := strconv.ParseInt(r.URL.Query().Get("from"), 10, 64)
	data, curGen, next, err := c.journal.readFrom(gen, from)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "journal read: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerJournalGen, strconv.FormatUint(curGen, 10))
	w.Header().Set(headerJournalNext, strconv.FormatInt(next, 10))
	w.Write(data)
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// proxyResult is one forwarded request's outcome.
type proxyResult struct {
	status int
	header http.Header
	body   []byte
}

// forward issues one request to a worker and buffers the response. hdr
// entries are set verbatim on the outgoing request. Every request is
// stamped with the coordinator's fencing epoch; a worker holding a higher
// fence answers 412, which marks this coordinator superseded. A transient
// dial failure gets one jittered retry before the error is surfaced (and
// counted as a strike by the caller) — the whole session protocol is
// idempotent, so a duplicate of a request whose response was lost is
// harmless.
func (c *Coordinator) forward(ctx context.Context, method, url string, body []byte, hdr map[string]string) (*proxyResult, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ProxyTimeout)
	defer cancel()
	epoch := strconv.FormatUint(c.epoch.Load(), 10)
	attempt := func() (*proxyResult, error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return nil, err
		}
		for k, v := range hdr {
			if v != "" {
				req.Header.Set(k, v)
			}
		}
		req.Header.Set(HeaderEpoch, epoch)
		t0 := time.Now()
		resp, err := c.cfg.HTTPClient.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
		if err != nil {
			return nil, fmt.Errorf("reading %s %s response: %w", method, url, err)
		}
		c.proxied.Add(1)
		c.proxyDur.ObserveSince(t0)
		return &proxyResult{status: resp.StatusCode, header: resp.Header, body: raw}, nil
	}
	pr, err := attempt()
	if err != nil && ctx.Err() == nil {
		// One jittered retry: a single dropped SYN during a worker GC
		// pause must not start the suspect clock.
		c.forwardRetries.Add(1)
		select {
		case <-time.After(10*time.Millisecond + time.Duration(int64(time.Now().UnixNano())%20)*time.Millisecond):
		case <-ctx.Done():
			return nil, err
		}
		pr, err = attempt()
	}
	if err == nil && pr.status == http.StatusPreconditionFailed {
		c.noteFenced(url, pr)
	}
	return pr, err
}

// noteFenced reacts to a worker rejecting our epoch: a coordinator with a
// higher epoch has taken over. Stop serving — clients fail over to the
// live coordinator — and stop initiating failovers/moves, which would all
// be rejected anyway. The process stays up for observability.
func (c *Coordinator) noteFenced(url string, pr *proxyResult) {
	c.epochRejects.Add(1)
	if !c.fenced.Swap(true) {
		c.cfg.Logger.Error("fenced: a worker holds a higher coordinator epoch; this coordinator is superseded",
			"worker_url", url, "our_epoch", c.epoch.Load(), "worker_fence", pr.header.Get(HeaderEpoch))
	}
}

// writeProxied relays a worker response to the client byte for byte. The
// worker's Retry-After rides along untouched — the owning worker derived it
// from its own queue depth, and that number, not a coordinator-side guess,
// is the back-off the client should honor. The owning worker's name is
// attached for placement-following clients.
func (c *Coordinator) writeProxied(w http.ResponseWriter, pr *proxyResult, workerName string) {
	if v := pr.header.Get("Content-Type"); v != "" {
		w.Header().Set("Content-Type", v)
	}
	if v := pr.header.Get("Retry-After"); v != "" {
		w.Header().Set("Retry-After", v)
	}
	if workerName != "" {
		if url := c.workerURL(workerName); url != "" {
			w.Header().Set(HeaderWorker, url)
		}
	}
	w.WriteHeader(pr.status)
	w.Write(pr.body)
}

func (c *Coordinator) workerURL(name string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if wk := c.workers[name]; wk != nil {
		return wk.url
	}
	return ""
}

// traceIDFrom extracts a well-formed trace id from the request, or "".
// Invalid ids are dropped rather than rejected: tracing is best-effort and
// must never fail a request.
func traceIDFrom(r *http.Request) string {
	id := r.Header.Get(obs.HeaderTrace)
	if id == "" || !obs.ValidID(id) {
		return ""
	}
	return id
}

// traceFor resolves the effective trace id for a request against a session:
// the id the request carried wins, else the one retained at create time.
func (c *Coordinator) traceFor(r *http.Request, id string) string {
	if tr := traceIDFrom(r); tr != "" {
		return tr
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if pl := c.placements[id]; pl != nil {
		return pl.trace
	}
	return ""
}

// readBody buffers a capped request body.
func (c *Coordinator) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return nil, false
	}
	return body, true
}

// lookupPlacement snapshots one placement under the lock.
func (c *Coordinator) lookupPlacement(id string) (workerName, workerURL string, moving, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pl := c.placements[id]
	if pl == nil {
		return "", "", false, false
	}
	url := ""
	if wk := c.workers[pl.worker]; wk != nil {
		url = wk.url
	}
	return pl.worker, url, pl.moving, true
}

// refuseSessionAPI answers session-API traffic 503 when this coordinator
// must not serve it: it is a standby (the primary owns placement) or it
// has been fenced by a successor. Clients configured with a coordinator
// list rotate to the live one on 503.
func (c *Coordinator) refuseSessionAPI(w http.ResponseWriter) bool {
	switch {
	case c.standbyMode.Load():
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "standby coordinator: primary owns the session API")
		return true
	case c.fenced.Load():
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "coordinator superseded (fenced at epoch %d)", c.epoch.Load())
		return true
	}
	return false
}

// admission decides whether a new session may be placed right now. The
// fleet sheds new work before sacrificing in-flight sessions: with a
// failover queue outstanding (or no live worker at all), creation is
// refused with a Retry-After derived from that queue's depth, while chunk
// traffic for existing sessions keeps flowing.
func (c *Coordinator) admission() (shed bool, retryAfter int) {
	pending := int(c.pendingFailovers.Load())
	c.mu.Lock()
	healthy := 0
	for _, wk := range c.workers {
		if wk.alive() {
			healthy++
		}
	}
	c.mu.Unlock()
	if healthy == 0 {
		return true, min(60, 2+pending/4)
	}
	if pending > 0 {
		return true, min(60, 1+pending/4)
	}
	return false, 0
}

// --- session API (proxied) ---

// handleCreateSession places a new session on the ring and proxies the
// create to the owning worker. The coordinator chooses the session id so
// placement is a pure function of (id, ring membership); the create body
// and engines parameter are retained so the session can be rebuilt from
// scratch on another worker if it must fail over before any checkpoint was
// pulled. A worker that refuses (503, draining, or unreachable) degrades
// the routing, not the request: the next worker clockwise is tried.
func (c *Coordinator) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if c.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "coordinator is shutting down")
		return
	}
	if c.refuseSessionAPI(w) {
		return
	}
	if shed, retry := c.admission(); shed {
		c.admissionShed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusServiceUnavailable,
			"fleet degraded (%d failovers pending): new sessions shed, retry later", c.pendingFailovers.Load())
		return
	}
	body, ok := c.readBody(w, r)
	if !ok {
		return
	}
	engines := r.URL.Query().Get("engines")
	traceID := traceIDFrom(r)
	id := newID()
	tried := make(map[string]bool)
	for {
		name, url := c.pickWorker(id, tried)
		if name == "" {
			c.admissionShed.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(min(60, 2+int(c.pendingFailovers.Load())/4)))
			writeError(w, http.StatusServiceUnavailable, "no worker accepted the session")
			return
		}
		tried[name] = true
		target := url + "/sessions"
		if engines != "" {
			target += "?engines=" + engines
		}
		t0 := time.Now()
		pr, err := c.forward(r.Context(), "POST", target, body, map[string]string{
			HeaderSessionID: id,
			obs.HeaderTrace: traceID,
			"Content-Type":  r.Header.Get("Content-Type"),
			"X-Raced-Crc32": r.Header.Get("X-Raced-Crc32"),
		})
		if err != nil {
			c.noteProxyFailure(name, err)
			continue
		}
		if pr.status == http.StatusServiceUnavailable {
			continue // worker draining: degrade routing to the next on the ring
		}
		if pr.status >= 200 && pr.status < 300 {
			c.mu.Lock()
			c.placements[id] = &placement{id: id, worker: name, trace: traceID, engines: engines, header: body}
			c.mu.Unlock()
			c.recordPlace(id, name, body)
			c.sessionsCreated.Add(1)
			c.span(obs.Span{Trace: traceID, Session: id, Name: "proxy_create",
				Worker: name, Start: t0, Duration: time.Since(t0).Seconds()})
			c.cfg.Logger.Info("session placed", "session", id, "worker", name, "trace", traceID)
		}
		c.writeProxied(w, pr, name)
		return
	}
}

// pickWorker walks the ring clockwise from the id's hash, skipping workers
// already tried and anything not alive.
func (c *Coordinator) pickWorker(id string, tried map[string]bool) (name, url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name = c.ring.OwnerWhere(id, func(n string) bool {
		wk := c.workers[n]
		return wk != nil && wk.alive() && !tried[n]
	})
	if name == "" {
		return "", ""
	}
	return name, c.workers[name].url
}

// handleChunk proxies one chunk to the owning worker. A session mid-move is
// answered 503 without Retry-After — the move completes in well under a
// second, the client's own jittered backoff is the right cadence. A worker
// that cannot be reached starts failure detection and the client retries
// into the post-failover placement.
func (c *Coordinator) handleChunk(w http.ResponseWriter, r *http.Request) {
	if c.refuseSessionAPI(w) {
		return
	}
	id := r.PathValue("id")
	name, url, moving, ok := c.lookupPlacement(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	if moving || url == "" {
		writeError(w, http.StatusServiceUnavailable, "session %s is failing over, retry", id)
		return
	}
	body, bok := c.readBody(w, r)
	if !bok {
		return
	}
	traceID := c.traceFor(r, id)
	t0 := time.Now()
	pr, err := c.forward(r.Context(), "POST", url+"/sessions/"+id+"/chunks", body, map[string]string{
		obs.HeaderTrace:  traceID,
		"Content-Type":   r.Header.Get("Content-Type"),
		"X-Raced-Offset": r.Header.Get("X-Raced-Offset"),
		"X-Raced-Crc32":  r.Header.Get("X-Raced-Crc32"),
	})
	if err != nil {
		c.noteProxyFailure(name, err)
		c.span(obs.Span{Trace: traceID, Session: id, Name: "proxy_chunk", Worker: name,
			Start: t0, Duration: time.Since(t0).Seconds(), Err: err.Error()})
		writeError(w, http.StatusServiceUnavailable, "worker %s unreachable, failover pending: %v", name, err)
		return
	}
	c.span(obs.Span{Trace: traceID, Session: id, Name: "proxy_chunk", Worker: name,
		Start: t0, Duration: time.Since(t0).Seconds()})
	c.writeProxied(w, pr, name)
}

// handleFinish proxies the finish and, on success, seals the placement:
// the response is cached so a replayed finish (lost reply, retried through
// a failover) returns the identical report even after the placement is
// gone.
func (c *Coordinator) handleFinish(w http.ResponseWriter, r *http.Request) {
	if c.refuseSessionAPI(w) {
		return
	}
	id := r.PathValue("id")
	name, url, moving, ok := c.lookupPlacement(id)
	if !ok {
		if body, cached := c.recallFinished(id); cached {
			w.Header().Set("Content-Type", "application/json")
			w.Write(body)
			return
		}
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	if moving || url == "" {
		writeError(w, http.StatusServiceUnavailable, "session %s is failing over, retry", id)
		return
	}
	traceID := c.traceFor(r, id)
	t0 := time.Now()
	pr, err := c.forward(r.Context(), "POST", url+"/sessions/"+id+"/finish", nil, map[string]string{
		obs.HeaderTrace:  traceID,
		"X-Raced-Offset": r.Header.Get("X-Raced-Offset"),
	})
	if err != nil {
		c.noteProxyFailure(name, err)
		writeError(w, http.StatusServiceUnavailable, "worker %s unreachable, failover pending: %v", name, err)
		return
	}
	if pr.status >= 200 && pr.status < 300 {
		c.rememberFinished(id, pr.body)
		c.mu.Lock()
		delete(c.placements, id)
		c.mu.Unlock()
		c.recordFinish(id, pr.body)
		c.recordDrop(id)
		c.sessionsFinished.Add(1)
		c.span(obs.Span{Trace: traceID, Session: id, Name: "proxy_finish", Worker: name,
			Start: t0, Duration: time.Since(t0).Seconds()})
	}
	c.writeProxied(w, pr, name)
}

func (c *Coordinator) handleAbort(w http.ResponseWriter, r *http.Request) {
	if c.refuseSessionAPI(w) {
		return
	}
	id := r.PathValue("id")
	name, url, moving, ok := c.lookupPlacement(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	if moving || url == "" {
		writeError(w, http.StatusServiceUnavailable, "session %s is failing over, retry", id)
		return
	}
	pr, err := c.forward(r.Context(), "DELETE", url+"/sessions/"+id, nil, nil)
	if err != nil {
		c.noteProxyFailure(name, err)
		writeError(w, http.StatusServiceUnavailable, "worker %s unreachable: %v", name, err)
		return
	}
	if (pr.status >= 200 && pr.status < 300) || pr.status == http.StatusNotFound {
		c.mu.Lock()
		delete(c.placements, id)
		c.mu.Unlock()
		c.recordDrop(id)
	}
	c.writeProxied(w, pr, name)
}

func (c *Coordinator) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	if c.refuseSessionAPI(w) {
		return
	}
	id := r.PathValue("id")
	name, url, moving, ok := c.lookupPlacement(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	if moving || url == "" {
		writeError(w, http.StatusServiceUnavailable, "session %s is failing over, retry", id)
		return
	}
	pr, err := c.forward(r.Context(), "GET", url+"/sessions/"+id, nil, nil)
	if err != nil {
		c.noteProxyFailure(name, err)
		writeError(w, http.StatusServiceUnavailable, "worker %s unreachable, failover pending: %v", name, err)
		return
	}
	c.writeProxied(w, pr, name)
}

func (c *Coordinator) handleSessionSnapshot(w http.ResponseWriter, r *http.Request) {
	if c.refuseSessionAPI(w) {
		return
	}
	id := r.PathValue("id")
	name, url, moving, ok := c.lookupPlacement(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	if moving || url == "" {
		writeError(w, http.StatusServiceUnavailable, "session %s is failing over, retry", id)
		return
	}
	pr, err := c.forward(r.Context(), "GET", url+"/sessions/"+id+"/snapshot", nil, nil)
	if err != nil {
		c.noteProxyFailure(name, err)
		writeError(w, http.StatusServiceUnavailable, "worker %s unreachable: %v", name, err)
		return
	}
	c.writeProxied(w, pr, name)
}

// --- finish idempotency cache ---

const finishedCacheCap = 4096

func (c *Coordinator) rememberFinished(id string, body []byte) {
	c.finMu.Lock()
	defer c.finMu.Unlock()
	if _, ok := c.finished[id]; !ok {
		c.finOrder = append(c.finOrder, id)
	}
	c.finished[id] = finishedEntry{body: body, at: time.Now()}
	for len(c.finOrder) > c.cfg.FinishedMax {
		delete(c.finished, c.finOrder[0])
		c.finOrder = c.finOrder[1:]
		c.finEvictions.Add(1)
	}
}

func (c *Coordinator) recallFinished(id string) ([]byte, bool) {
	c.finMu.Lock()
	defer c.finMu.Unlock()
	e, ok := c.finished[id]
	return e.body, ok
}

// expireFinished drops cached finish replies older than FinishedTTL.
// Entries land in time order, so the scan stops at the first fresh one.
// Called from the monitor loop.
func (c *Coordinator) expireFinished() {
	cutoff := time.Now().Add(-c.cfg.FinishedTTL)
	c.finMu.Lock()
	defer c.finMu.Unlock()
	for len(c.finOrder) > 0 {
		id := c.finOrder[0]
		if e, ok := c.finished[id]; ok && e.at.After(cutoff) {
			break
		}
		delete(c.finished, id)
		c.finOrder = c.finOrder[1:]
		c.finEvictions.Add(1)
	}
}

// --- fleet membership handlers ---

// handleRegister admits a worker into the ring (or welcomes one back). The
// worker's open-session list is reconciled in both directions: sessions the
// coordinator doesn't know are adopted (the coordinator may have restarted),
// and sessions the coordinator has since failed over elsewhere are returned
// as stale for the worker to abort — the split-brain a healed partition
// leaves behind.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "register: %v", err)
		return
	}
	if req.Name == "" || req.URL == "" {
		writeError(w, http.StatusBadRequest, "register: name and url are required")
		return
	}
	// A standby shadows membership (so a takeover starts with fresh
	// heartbeat deadlines) but makes no placement decisions: no adoption,
	// no stale verdicts, no rebalancing — those are the primary's.
	if c.standbyMode.Load() {
		c.mu.Lock()
		wk := c.workers[req.Name]
		if wk == nil {
			wk = &worker{name: req.Name}
			c.workers[req.Name] = wk
		}
		wk.url = req.URL
		wk.state = workerActive
		wk.lastBeat = time.Now()
		wk.load = req.Load
		c.ring.Add(req.Name)
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, registerResponse{
			HeartbeatMS: c.cfg.HeartbeatEvery.Milliseconds(),
			Epoch:       c.epoch.Load(),
		})
		return
	}
	// During the post-restart grace window the fleet's fencing epoch may
	// be ahead of the journal-less default: adopt above any fence a
	// re-registering worker reports, or our own writes would be rejected
	// by the fence our predecessor raised.
	if req.Epoch >= c.epoch.Load() && c.recovering() {
		c.epoch.Store(req.Epoch + 1)
		c.recordEpoch(req.Epoch + 1)
		c.cfg.Logger.Info("adopted fencing epoch from worker report",
			"worker", req.Name, "epoch", req.Epoch+1)
	}
	var stale []string
	var adopted []string
	c.mu.Lock()
	wk := c.workers[req.Name]
	if wk == nil {
		wk = &worker{name: req.Name}
		c.workers[req.Name] = wk
	}
	wk.url = req.URL
	wk.state = workerActive
	wk.lastBeat = time.Now()
	wk.load = req.Load
	wk.epoch++
	c.ring.Add(req.Name)
	for _, id := range req.Sessions {
		pl := c.placements[id]
		switch {
		case pl == nil:
			c.placements[id] = &placement{id: id, worker: req.Name}
			adopted = append(adopted, id)
		case pl.worker != req.Name && !pl.moving:
			// Owned elsewhere now: the rejoining worker's copy is stale.
			stale = append(stale, id)
		}
	}
	c.mu.Unlock()
	c.recordWorker(req.Name, req.URL, true)
	for _, id := range adopted {
		c.recordPlace(id, req.Name, nil)
	}
	if len(adopted) > 0 {
		c.sessionsAdopted.Add(uint64(len(adopted)))
		c.kickPull() // fetch restore blobs for adopted sessions promptly
	}
	c.cfg.Logger.Info("worker registered", "worker", req.Name, "url", req.URL,
		"sessions", len(req.Sessions), "adopted", len(adopted), "stale", len(stale))
	if !c.cfg.NoRebalance && !c.recovering() {
		staleSet := make(map[string]bool, len(stale))
		for _, id := range stale {
			staleSet[id] = true
		}
		c.rebalanceOnto(req.Name, staleSet)
	}
	c.retryStalledFailovers()
	writeJSON(w, http.StatusOK, registerResponse{
		HeartbeatMS: c.cfg.HeartbeatEvery.Milliseconds(),
		Stale:       stale,
		Epoch:       c.epoch.Load(),
	})
}

// handleHeartbeat refreshes a worker's deadline and load. A heartbeat from
// a worker the coordinator has declared dead (or never met) is answered
// 410/404 so the agent re-registers and reconciles.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "heartbeat: %v", err)
		return
	}
	c.mu.Lock()
	wk := c.workers[req.Name]
	var state workerState
	if wk != nil {
		state = wk.state
		if state == workerActive || state == workerDraining {
			wk.lastBeat = time.Now()
			wk.load = req.Load
		}
	}
	c.mu.Unlock()
	switch {
	case wk == nil:
		writeError(w, http.StatusNotFound, "worker %q is not registered", req.Name)
	case state == workerSuspect, state == workerDead:
		writeError(w, http.StatusGone, "worker %q was declared failed; re-register", req.Name)
	default:
		// The ack carries the fencing epoch so every heartbeat cycle
		// propagates a takeover's new epoch to the whole fleet.
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "epoch": c.epoch.Load()})
	}
}

// --- observability ---

func (c *Coordinator) fleetSnapshot() ([]workerInfo, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	infos := make([]workerInfo, 0, len(c.workers))
	healthy := 0
	for _, wk := range c.workers {
		if wk.alive() {
			healthy++
		}
		infos = append(infos, workerInfo{
			Name:          wk.name,
			URL:           wk.url,
			State:         wk.state.String(),
			LastBeatMSAgo: now.Sub(wk.lastBeat).Milliseconds(),
			Load:          wk.load,
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, healthy
}

func (c *Coordinator) handleFleet(w http.ResponseWriter, r *http.Request) {
	infos, healthy := c.fleetSnapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"workers":            infos,
		"healthy":            healthy,
		"placements":         c.Placements(),
		"pending_failovers":  c.pendingFailovers.Load(),
		"pending_migrations": c.pendingMigrations.Load(),
	})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	infos, healthy := c.fleetSnapshot()
	status, code := "ok", http.StatusOK
	switch {
	case c.closed.Load():
		status, code = "closing", http.StatusServiceUnavailable
	case c.fenced.Load():
		status, code = "fenced", http.StatusServiceUnavailable
	case c.standbyMode.Load():
		status = "standby"
	case healthy == 0:
		status, code = "no-workers", http.StatusServiceUnavailable
	case c.recovering():
		status = "recovering"
	case c.pendingFailovers.Load() > 0:
		status = "degraded"
	}
	c.mu.Lock()
	sessions := len(c.placements)
	c.mu.Unlock()
	writeJSON(w, code, map[string]any{
		"status":         status,
		"workers":        len(infos),
		"healthy":        healthy,
		"sessions":       sessions,
		"epoch":          c.epoch.Load(),
		"uptime_seconds": time.Since(c.start).Seconds(),
	})
}

// newMetrics wires every fleet-level series into the coordinator's registry.
// The fleet_* names are scraped by smoke scripts and dashboards — they are
// load-bearing, do not rename them. The coordinator's own series stay
// unlabeled; the worker= label belongs exclusively to scraped worker series.
func (c *Coordinator) newMetrics() {
	reg := obs.NewRegistry()
	c.reg = reg
	c.proxied = reg.Counter("fleet_proxied_requests_total", "Requests forwarded to workers.")
	c.sessionsCreated = reg.Counter("fleet_sessions_created_total", "Sessions placed on the ring.")
	c.sessionsFinished = reg.Counter("fleet_sessions_finished_total", "Sessions sealed through the coordinator.")
	c.admissionShed = reg.Counter("fleet_admission_shed_total", "Session creates refused while the fleet was degraded.")
	c.workerFailovers = reg.Counter("fleet_worker_failovers_total", "Workers declared failed.")
	c.sessionsFailed = reg.Counter("fleet_sessions_failed_over_total", "Sessions restored on a survivor after their worker died.")
	c.sessionsMigrated = reg.Counter("fleet_sessions_migrated_total", "Sessions moved gracefully (drain, rebalance).")
	c.sessionsLost = reg.Counter("fleet_sessions_lost_total", "Sessions unrecoverable after failure (no checkpoint or create header held).")
	c.sessionsAdopted = reg.Counter("fleet_sessions_adopted_total", "Sessions adopted from re-registering workers after a coordinator restart.")
	c.pullsOK = reg.Counter("fleet_checkpoint_pulls_total", "Session checkpoints pulled from workers.")
	c.pullsFailed = reg.Counter("fleet_checkpoint_pull_failures_total", "Checkpoint pulls that failed.")
	c.reportMerges = reg.Counter("fleet_report_merges_total", "Merged /reports responses served.")
	c.journalAppends = reg.Counter("fleet_journal_appends_total", "Records appended to the placement journal.")
	c.journalCompacts = reg.Counter("fleet_journal_compactions_total", "Journal snapshot+tail rewrites.")
	c.journalErrors = reg.Counter("fleet_journal_errors_total", "Journal writes or replays that failed (durability degraded, service continues).")
	c.journalReplayed = reg.Counter("fleet_journal_replay_records_total", "Journal records replayed at startup.")
	c.finEvictions = reg.Counter("fleet_finished_cache_evictions_total", "Cached finish replies evicted by TTL or capacity.")
	c.forwardRetries = reg.Counter("fleet_forward_retries_total", "Worker requests retried once after a transient dial failure.")
	c.epochRejects = reg.Counter("fleet_epoch_rejects_total", "Worker rejections of this coordinator's fencing epoch (a successor exists).")
	c.takeovers = reg.Counter("fleet_standby_takeovers_total", "Times this coordinator promoted itself from standby to primary.")
	c.proxyDur = reg.Histogram("fleet_proxy_seconds", "Latency of one proxied worker request.", nil)

	reg.GaugeFunc("fleet_workers", "Registered workers.", func() float64 {
		infos, _ := c.fleetSnapshot()
		return float64(len(infos))
	})
	reg.GaugeFunc("fleet_workers_healthy", "Workers with a fresh heartbeat.", func() float64 {
		_, healthy := c.fleetSnapshot()
		return float64(healthy)
	})
	for _, st := range []string{"active", "suspect", "draining", "dead"} {
		st := st
		reg.GaugeFunc("fleet_workers_state", "Workers by lifecycle state.", func() float64 {
			infos, _ := c.fleetSnapshot()
			n := 0
			for _, wi := range infos {
				if wi.State == st {
					n++
				}
			}
			return float64(n)
		}, obs.Label{Key: "state", Value: st})
	}
	reg.GaugeFunc("fleet_sessions_placed", "Sessions with a live placement.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.placements))
	})
	reg.GaugeFunc("fleet_pending_failovers", "Failovers queued but not yet restored.", func() float64 {
		return float64(c.pendingFailovers.Load())
	})
	reg.GaugeFunc("fleet_pending_migrations", "Graceful moves in flight.", func() float64 {
		return float64(c.pendingMigrations.Load())
	})
	reg.GaugeFunc("fleet_uptime_seconds", "Seconds since this coordinator started.", func() float64 {
		return time.Since(c.start).Seconds()
	})
	reg.GaugeFunc("fleet_coordinator_epoch", "This coordinator's fencing epoch (monotonic across incarnations).", func() float64 {
		return float64(c.epoch.Load())
	})
	reg.GaugeFunc("fleet_coordinator_standby", "1 while this coordinator is a warm standby, 0 when primary.", func() float64 {
		if c.standbyMode.Load() {
			return 1
		}
		return 0
	})
}

// handleMetrics serves the coordinator's own registry followed by every live
// worker's scraped registry, each worker's series re-labeled with
// worker="name" and merged per family so the output stays a valid exposition
// (one HELP/TYPE per family even when every worker exports it).
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c.reg.WritePrometheus(w)

	type scrape struct {
		name string
		url  string
	}
	c.mu.Lock()
	targets := make([]scrape, 0, len(c.workers))
	for _, wk := range c.workers {
		if wk.alive() {
			targets = append(targets, scrape{name: wk.name, url: wk.url})
		}
	}
	c.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].name < targets[j].name })

	groups := make([][]*obs.ParsedFamily, 0, len(targets))
	for _, t := range targets {
		pr, err := c.forward(r.Context(), "GET", t.url+"/metrics", nil, nil)
		if err != nil || pr.status != http.StatusOK {
			c.cfg.Logger.Warn("worker metrics scrape failed", "worker", t.name, "err", err)
			continue
		}
		fams, err := obs.ParseExposition(pr.body)
		if err != nil {
			c.cfg.Logger.Warn("worker metrics unparseable", "worker", t.name, "err", err)
			continue
		}
		for _, f := range fams {
			f.Inject("worker", t.name)
		}
		groups = append(groups, fams)
	}
	if len(groups) > 0 {
		obs.WriteFamilies(w, obs.MergeFamilies(groups...))
	}
}

// span records one coordinator-side span. The Worker field carries the
// proxied-to worker, so the coordinator's timeline names dead workers long
// after they stop answering.
func (c *Coordinator) span(sp obs.Span) { c.trace.Add(sp) }

// mergedSpans gathers spans for one trace or session across the coordinator
// and every live worker. kind is "trace" or "sessions" (the debug URL path).
func (c *Coordinator) mergedSpans(ctx context.Context, kind, id string, own []obs.Span) []obs.Span {
	spans := own
	c.mu.Lock()
	urls := make([]string, 0, len(c.workers))
	for _, wk := range c.workers {
		if wk.alive() {
			urls = append(urls, wk.url)
		}
	}
	c.mu.Unlock()
	for _, url := range urls {
		pr, err := c.forward(ctx, "GET", url+"/debug/"+kind+"/"+id, nil, nil)
		if err != nil || pr.status != http.StatusOK {
			continue
		}
		var out struct {
			Spans []obs.Span `json:"spans"`
		}
		if json.Unmarshal(pr.body, &out) == nil {
			spans = append(spans, out.Spans...)
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	if spans == nil {
		spans = []obs.Span{}
	}
	return spans
}

// handleDebugTrace (GET /debug/trace/{id}) returns the fleet-wide view of
// one request trace: the coordinator's proxy and failover spans plus every
// live worker's retained spans, ordered by start time. Spans proxied to a
// worker that has since died survive here — the coordinator's record is the
// dead worker's obituary.
func (c *Coordinator) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !obs.ValidID(id) {
		writeError(w, http.StatusBadRequest, "bad trace id %q", id)
		return
	}
	spans := c.mergedSpans(r.Context(), "trace", id, c.trace.ByTrace(id))
	writeJSON(w, http.StatusOK, map[string]any{"trace": id, "spans": spans})
}

// handleDebugSession (GET /debug/sessions/{id}) is the session-keyed
// equivalent: one session's lifecycle across every worker that ever held it.
func (c *Coordinator) handleDebugSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !obs.ValidID(id) {
		writeError(w, http.StatusBadRequest, "bad session id %q", id)
		return
	}
	spans := c.mergedSpans(r.Context(), "sessions", id, c.trace.BySession(id))
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "spans": spans})
}
