package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// moveSpec is one session relocation queued for the mover goroutine. Two
// kinds flow through the same machinery: failovers (source is gone; restore
// from the coordinator's last pulled blob, or re-create from the retained
// header) and graceful migrations (source alive; pull a fresh snapshot
// first, then abort the source copy).
type moveSpec struct {
	id       string
	from     string
	fresh    bool // pull a fresh snapshot from the source before restoring
	attempts int
	// maxAttempts bounds graceful moves; 0 means retry until the session
	// lands somewhere (failover never gives up while a blob or header
	// remains).
	maxAttempts int
	done        func(moved bool) // invoked exactly once when the chain ends
}

// moverLoop serializes all session movement through one goroutine: a
// failover burst and a concurrent drain never race on the same placement,
// and ordering is deterministic for tests.
func (c *Coordinator) moverLoop() {
	defer close(c.moverDone)
	for {
		select {
		case <-c.stop:
			return
		case m := <-c.moveQ:
			c.runMove(m)
		}
	}
}

func (c *Coordinator) enqueueMove(m moveSpec) {
	select {
	case c.moveQ <- m:
	case <-c.stop:
		if m.done != nil {
			m.done(false)
		}
	}
}

// retryMoveLater re-queues a move after a short pause, off the mover
// goroutine so the queue keeps draining meanwhile.
func (c *Coordinator) retryMoveLater(m moveSpec) {
	time.AfterFunc(250*time.Millisecond, func() {
		if c.closed.Load() {
			if m.done != nil {
				m.done(false)
			}
			return
		}
		c.enqueueMove(m)
	})
}

// runMove executes one relocation attempt. See moveSpec for the two kinds.
func (c *Coordinator) runMove(m moveSpec) {
	m.attempts++
	ctx := context.Background()

	c.mu.Lock()
	pl := c.placements[m.id]
	if pl == nil || pl.worker != m.from {
		// Finished, aborted, or already moved while queued.
		c.mu.Unlock()
		if m.done != nil {
			m.done(false)
		}
		return
	}
	blob, header, engines, traceID := pl.blob, pl.header, pl.engines, pl.trace
	var fromURL string
	if wk := c.workers[m.from]; wk != nil {
		fromURL = wk.url
	}
	c.mu.Unlock()

	// Graceful move: the source still serves, so capture the freshest
	// possible state before restoring elsewhere.
	if m.fresh && fromURL != "" {
		pr, err := c.forward(ctx, "GET", fromURL+"/sessions/"+m.id+"/snapshot", nil, nil)
		switch {
		case err == nil && pr.status == http.StatusOK:
			blob = pr.body
			c.mu.Lock()
			if cur := c.placements[m.id]; cur != nil {
				cur.blob = blob
				cur.blobAt = time.Now()
			}
			c.mu.Unlock()
		case err == nil && pr.status == http.StatusNotFound:
			// Session no longer exists at the source: nothing to move.
			c.dropPlacement(m.id)
			if m.done != nil {
				m.done(false)
			}
			return
		case err == nil && pr.status == http.StatusConflict:
			// Closed or failed ingest: not snapshottable, and not worth
			// moving — it will finalize where it sits.
			c.giveUpMove(m, "session not snapshottable, leaving in place", "session", m.id, "worker", m.from)
			return
		default:
			// Source unreachable mid-drain: degrade to failover using
			// whatever blob the pull loop last captured.
			if blob == nil && header == nil {
				c.giveUpMove(m, "source unreachable and no checkpoint held", "session", m.id, "worker", m.from)
				return
			}
		}
	}

	target, targetURL := c.pickMoveTarget(m.id, m.from)
	if target == "" {
		if m.maxAttempts > 0 && m.attempts >= m.maxAttempts {
			c.giveUpMove(m, "no live worker to move to", "session", m.id)
			return
		}
		c.retryMoveLater(m)
		return
	}

	restored := false
	if blob != nil {
		t0 := time.Now()
		pr, err := c.forward(ctx, "POST", targetURL+"/sessions/restore", blob, map[string]string{
			obs.HeaderTrace: traceID, // re-attach the create-time trace across the failover
			"Content-Type":  "application/octet-stream",
		})
		switch {
		case err == nil && pr.status >= 200 && pr.status < 300:
			restored = true
			c.span(obs.Span{Trace: traceID, Session: m.id, Name: "failover_restore",
				Worker: target, Start: t0, Duration: time.Since(t0).Seconds()})
		case err == nil && pr.status == http.StatusConflict:
			// Already open there (a previous attempt landed): adopt it.
			restored = true
		case err != nil:
			c.noteProxyFailure(target, err)
			c.retryMoveLater(m)
			return
		default:
			// Blob rejected (corrupt or incompatible): fall through to the
			// header re-create path below.
			c.cfg.Logger.Warn("failover restore rejected, falling back to re-create",
				"session", m.id, "worker", target, "status", pr.status)
			blob = nil
		}
	}
	if !restored && header != nil {
		url := targetURL + "/sessions"
		if engines != "" {
			url += "?engines=" + engines
		}
		t0 := time.Now()
		pr, err := c.forward(ctx, "POST", url, header, map[string]string{
			HeaderSessionID: m.id,
			obs.HeaderTrace: traceID,
			"Content-Type":  "application/octet-stream",
		})
		switch {
		case err == nil && (pr.status == http.StatusCreated || pr.status == http.StatusConflict):
			restored = true // 409: already open there — adopt
			c.span(obs.Span{Trace: traceID, Session: m.id, Name: "failover_recreate",
				Worker: target, Start: t0, Duration: time.Since(t0).Seconds()})
		case err != nil:
			c.noteProxyFailure(target, err)
			c.retryMoveLater(m)
			return
		default:
			c.cfg.Logger.Warn("failover re-create failed",
				"session", m.id, "worker", target, "status", pr.status, "body", string(pr.body))
		}
	}
	if !restored {
		if blob == nil && header == nil {
			// Adopted after a coordinator restart and lost before any pull:
			// nothing to restore from.
			c.sessionsLost.Add(1)
			c.dropPlacement(m.id)
			c.cfg.Logger.Error("session lost — no checkpoint or create header held", "session", m.id)
			if m.done != nil {
				m.done(false)
			}
			return
		}
		if m.maxAttempts > 0 && m.attempts >= m.maxAttempts {
			c.giveUpMove(m, "move failed, giving up", "session", m.id, "attempts", m.attempts)
			return
		}
		c.retryMoveLater(m)
		return
	}

	c.mu.Lock()
	if cur := c.placements[m.id]; cur != nil {
		cur.worker = target
		cur.moving = false
	}
	c.mu.Unlock()
	c.recordMove(m.id, target)
	if m.fresh {
		c.sessionsMigrated.Add(1)
		// Best-effort: drop the source copy so the drained worker exits
		// clean. A failure just leaves a stale copy the register-time
		// reconcile will name.
		if fromURL != "" {
			c.forward(ctx, "DELETE", fromURL+"/sessions/"+m.id, nil, nil)
		}
	} else {
		c.sessionsFailed.Add(1)
	}
	c.cfg.Logger.Info("session moved",
		"session", m.id, "from", m.from, "to", target, "attempt", m.attempts, "trace", traceID)
	if m.done != nil {
		m.done(true)
	}
}

// giveUpMove abandons a move, clearing the moving flag so the session keeps
// being served wherever it is placed (relevant for drains that could not
// hand off). args are slog key-value pairs.
func (c *Coordinator) giveUpMove(m moveSpec, msg string, args ...any) {
	c.mu.Lock()
	if cur := c.placements[m.id]; cur != nil {
		cur.moving = false
	}
	c.mu.Unlock()
	c.cfg.Logger.Warn(msg, args...)
	if m.done != nil {
		m.done(false)
	}
}

func (c *Coordinator) dropPlacement(id string) {
	c.mu.Lock()
	delete(c.placements, id)
	c.mu.Unlock()
	c.recordDrop(id)
}

// pickMoveTarget walks the ring clockwise from the session's hash for the
// first live worker other than the one being vacated — the same worker a
// fresh placement of this id would choose, so placements converge back to
// the ring's view.
func (c *Coordinator) pickMoveTarget(id, exclude string) (name, url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name = c.ring.OwnerWhere(id, func(n string) bool {
		if n == exclude {
			return false
		}
		wk := c.workers[n]
		return wk != nil && wk.alive()
	})
	if name == "" {
		return "", ""
	}
	return name, c.workers[name].url
}

// --- failure detection ---

// monitorLoop is the heartbeat deadline watcher.
func (c *Coordinator) monitorLoop() {
	defer close(c.monitorDone)
	tick := c.cfg.HeartbeatTimeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.sweep()
			c.expireFinished()
			c.maybeCompact()
		}
	}
}

// sweep marks workers past their heartbeat deadline suspect and starts
// failing their sessions over; suspect workers with nothing left placed on
// them are retired to dead.
func (c *Coordinator) sweep() {
	// A standby watches, it doesn't judge: failure detection is the
	// primary's until a takeover. A fenced coordinator must not start
	// failovers either — its restores would be rejected anyway.
	if c.standbyMode.Load() || c.fenced.Load() {
		return
	}
	now := time.Now()
	c.mu.Lock()
	var failed []string
	for name, wk := range c.workers {
		switch wk.state {
		case workerActive:
			if now.Sub(wk.lastBeat) > c.cfg.HeartbeatTimeout {
				failed = append(failed, name)
			}
		case workerSuspect:
			still := 0
			for _, pl := range c.placements {
				if pl.worker == name {
					still++
				}
			}
			if still == 0 {
				wk.state = workerDead
			}
		}
	}
	c.mu.Unlock()
	for _, name := range failed {
		c.failWorker(name, "missed heartbeat deadline")
	}
}

// failWorker transitions a worker to suspect and queues a failover for
// every session placed on it.
func (c *Coordinator) failWorker(name, why string) {
	c.mu.Lock()
	wk := c.workers[name]
	if wk == nil || (wk.state != workerActive && wk.state != workerDraining) {
		c.mu.Unlock()
		return
	}
	wk.state = workerSuspect
	var ids []string
	for id, pl := range c.placements {
		if pl.worker == name && !pl.moving {
			pl.moving = true
			ids = append(ids, id)
		}
	}
	c.mu.Unlock()
	c.workerFailovers.Add(1)
	c.cfg.Logger.Warn("worker failed, failing over sessions",
		"worker", name, "why", why, "sessions", len(ids))
	for _, id := range ids {
		c.pendingFailovers.Add(1)
		c.enqueueMove(moveSpec{id: id, from: name, done: func(bool) { c.pendingFailovers.Add(-1) }})
	}
}

// noteProxyFailure reacts to a transport error against a worker. A single
// failed connection against a heartbeat-fresh worker proves nothing — the
// heartbeat monitor stays the authority — but once the last heartbeat is
// older than the advertised cadence, the proxy error corroborates it and
// failover starts without waiting out the full deadline.
func (c *Coordinator) noteProxyFailure(name string, err error) {
	c.mu.Lock()
	wk := c.workers[name]
	stale := wk != nil && wk.state == workerActive && time.Since(wk.lastBeat) > c.cfg.HeartbeatEvery
	c.mu.Unlock()
	if stale {
		c.failWorker(name, "proxy error with stale heartbeat: "+err.Error())
	}
}

// retryStalledFailovers re-queues failovers that found no live target (they
// self-retry on a timer, but a registration is the event that unblocks
// them, so kick immediately).
func (c *Coordinator) retryStalledFailovers() {
	// The timer-based retry in runMove already covers this; the hook exists
	// so a future scheduler can prioritize. Kick the pull loop so restored
	// sessions get fresh checkpoints soon after the fleet changes shape.
	c.kickPull()
}

// --- graceful leave ---

// handleLeave drains a worker: its sessions are migrated to survivors via
// fresh snapshots (latency, not loss), then it is removed from the ring.
// The call returns when the handoff settles so the worker can exit knowing
// nothing it holds is still authoritative.
func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "leave: %v", err)
		return
	}
	// A standby only forgets the worker; the primary runs the handoff.
	if c.standbyMode.Load() {
		c.mu.Lock()
		delete(c.workers, req.Name)
		c.ring.Remove(req.Name)
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"moved": 0})
		return
	}
	c.mu.Lock()
	wk := c.workers[req.Name]
	if wk == nil {
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"moved": 0})
		return
	}
	wk.state = workerDraining
	var ids []string
	for id, pl := range c.placements {
		if pl.worker == req.Name && !pl.moving {
			pl.moving = true
			ids = append(ids, id)
		}
	}
	c.mu.Unlock()
	c.cfg.Logger.Info("worker leaving, migrating sessions", "worker", req.Name, "sessions", len(ids))

	var wg sync.WaitGroup
	var movedMu sync.Mutex
	moved := 0
	for _, id := range ids {
		wg.Add(1)
		c.pendingMigrations.Add(1)
		c.enqueueMove(moveSpec{
			id: id, from: req.Name, fresh: true, maxAttempts: 4,
			done: func(ok bool) {
				if ok {
					movedMu.Lock()
					moved++
					movedMu.Unlock()
				}
				c.pendingMigrations.Add(-1)
				wg.Done()
			},
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "leave interrupted: %v", r.Context().Err())
		return
	}
	c.mu.Lock()
	delete(c.workers, req.Name)
	c.ring.Remove(req.Name)
	c.mu.Unlock()
	c.recordWorker(req.Name, "", false)
	c.cfg.Logger.Info("worker left", "worker", req.Name, "moved", moved, "sessions", len(ids))
	writeJSON(w, http.StatusOK, map[string]any{"moved": moved})
}

// --- rebalance on join ---

// rebalanceOnto migrates onto a newly joined worker exactly the open
// sessions whose ring owner it now is — the bounded ~1/N movement
// consistent hashing promises, captured via fresh snapshots so the client
// replays at most the tail since the handoff. skip names sessions that must
// not move onto this worker this round: the ids its register was just told
// are stale. The worker aborts those asynchronously, and a rebalance restore
// of the same id racing that abort could be destroyed by it — the session
// stays on its failover target instead (still correct, just off the ring's
// preferred owner until it finishes).
func (c *Coordinator) rebalanceOnto(name string, skip map[string]bool) {
	c.mu.Lock()
	var moves []moveSpec
	for id, pl := range c.placements {
		if pl.moving || pl.worker == name || skip[id] {
			continue
		}
		owner := c.ring.OwnerWhere(id, func(n string) bool {
			wk := c.workers[n]
			return wk != nil && wk.alive()
		})
		if owner != name {
			continue
		}
		// Only steal from live workers: a session on a suspect worker is
		// the failover path's business.
		if src := c.workers[pl.worker]; src == nil || !src.alive() {
			continue
		}
		pl.moving = true
		moves = append(moves, moveSpec{id: id, from: pl.worker, fresh: true, maxAttempts: 3})
	}
	c.mu.Unlock()
	if len(moves) == 0 {
		return
	}
	c.cfg.Logger.Info("rebalancing sessions onto joined worker", "sessions", len(moves), "worker", name)
	for _, m := range moves {
		c.pendingMigrations.Add(1)
		m.done = func(bool) { c.pendingMigrations.Add(-1) }
		c.enqueueMove(m)
	}
}

// --- checkpoint pulling ---

func (c *Coordinator) kickPull() {
	select {
	case c.pullKick <- struct{}{}:
	default:
	}
}

// pullLoop periodically captures a checkpoint of every placed session into
// coordinator memory — the restore source when the owning worker dies
// without warning. The pull window bounds how much tail the client replays
// after a hard kill, not whether the session survives: with no blob at all,
// failover re-creates from the retained create header and the client
// replays the full stream.
func (c *Coordinator) pullLoop() {
	defer close(c.pullDone)
	t := time.NewTicker(c.cfg.PullEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		case <-c.pullKick:
		}
		c.pullAll()
	}
}

func (c *Coordinator) pullAll() {
	if c.standbyMode.Load() || c.fenced.Load() {
		return
	}
	type job struct{ id, worker, url string }
	c.mu.Lock()
	jobs := make([]job, 0, len(c.placements))
	for id, pl := range c.placements {
		if pl.moving {
			continue
		}
		wk := c.workers[pl.worker]
		if wk == nil || !wk.alive() {
			continue
		}
		jobs = append(jobs, job{id: id, worker: pl.worker, url: wk.url})
	}
	c.mu.Unlock()

	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			pr, err := c.forward(context.Background(), "GET", j.url+"/sessions/"+j.id+"/snapshot", nil, nil)
			if err != nil {
				c.pullsFailed.Add(1)
				c.noteProxyFailure(j.worker, err)
				return
			}
			switch pr.status {
			case http.StatusOK:
				c.mu.Lock()
				keep := false
				if pl := c.placements[j.id]; pl != nil && pl.worker == j.worker && !pl.moving {
					pl.blob = pr.body
					pl.blobAt = time.Now()
					keep = true
				}
				c.mu.Unlock()
				if keep && c.journal != nil {
					// Spill the checkpoint beside the journal so a restarted
					// coordinator can restore this session without its worker.
					if werr := c.journal.writeBlob(j.id, pr.body); werr != nil {
						c.journalErr("blob", werr)
					}
				}
				c.pullsOK.Add(1)
			case http.StatusNotFound:
				// Gone at the source (evicted or aborted out of band).
				c.dropPlacement(j.id)
			default:
				// 409 closed/failed: keep the previous blob, if any.
				c.pullsFailed.Add(1)
			}
		}(j)
	}
	wg.Wait()
}
