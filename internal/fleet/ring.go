// Package fleet shards the raced service into a failure-tolerant
// coordinator/worker fleet. A Coordinator owns session placement on a
// consistent-hash ring of analysis workers, proxies the session API to the
// owning worker, and merges every worker's /reports into one deduplicated
// view. Workers are ordinary raced servers running an Agent that registers
// with the coordinator and sends periodic heartbeats carrying load.
//
// The failure story: when a worker misses its heartbeat deadline (or asks
// for a graceful leave), the coordinator marks it suspect and fails its
// sessions over to surviving workers by restoring their latest pulled
// checkpoint — or, when none was pulled yet, by re-creating the session
// from the retained create request at offset zero. Either way the client's
// next chunk is answered with the authoritative resumed ack-offset, and
// internal/client's resume-from-ack + gap-rewind machinery replays the
// uncheckpointed tail: the client sees latency, never an error. Under
// partial failure the fleet degrades gracefully — new-session admission is
// shed with 503 + a queue-derived Retry-After before any in-flight session
// is sacrificed — and a rejoining worker re-enters the ring with bounded
// session movement.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is how many virtual nodes each worker contributes to the
// ring. More vnodes smooth the key distribution; 64 keeps the per-worker
// imbalance in the low percents without bloating lookups.
const defaultVnodes = 64

// ringPoint is one virtual node: a position on the hash circle owned by a
// worker.
type ringPoint struct {
	hash uint64
	name string
}

// Ring is a consistent-hash ring over worker names. Placement depends only
// on the member set — not on insertion order or any process state — so a
// restarted coordinator that re-learns the same workers reproduces the
// identical placement, and adding or removing one worker moves only the
// keys that hash to its arcs (about 1/N of the keyspace).
//
// Ring is not safe for concurrent use; the Coordinator guards it with its
// own mutex.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by (hash, name)
	members map[string]bool
}

// NewRing returns an empty ring; vnodes <= 0 uses the default.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// ringHash is fnv64a strengthened with a murmur3-style finalizer. Bare FNV
// has weak avalanche on short, similar strings — "w0#1", "w0#2", ... land
// clustered, which skews arc ownership enough that one worker can end up
// with half the circle; the final mix spreads the points uniformly.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a worker's virtual nodes. Adding a present member is a no-op.
func (r *Ring) Add(name string) {
	if r.members[name] {
		return
	}
	r.members[name] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", name, i)), name: name})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].name < r.points[j].name
	})
}

// Remove deletes a worker's virtual nodes. Removing an absent member is a
// no-op.
func (r *Ring) Remove(name string) {
	if !r.members[name] {
		return
	}
	delete(r.members, name)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.name != name {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports ring membership.
func (r *Ring) Has(name string) bool { return r.members[name] }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the member names, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Owner returns the worker owning key: the first virtual node clockwise
// from the key's hash. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	return r.OwnerWhere(key, nil)
}

// OwnerWhere returns the first worker clockwise from the key's hash for
// which ok returns true (nil ok accepts every member). It walks the whole
// circle once, so distinct eligible workers are tried in a deterministic,
// key-dependent order — the same order a failover walks when the preferred
// owner is down. Returns "" when no member is eligible.
func (r *Ring) OwnerWhere(key string, ok func(name string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if ok == nil || ok(p.name) {
			return p.name
		}
	}
	return ""
}
