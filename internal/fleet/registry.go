package fleet

import (
	"time"
)

// workerState is a registered worker's health in the coordinator's view.
type workerState int

const (
	// workerActive: heartbeats arriving, eligible for placement.
	workerActive workerState = iota
	// workerSuspect: missed its heartbeat deadline (or failed a proxy);
	// its sessions are being failed over. Not eligible for placement.
	workerSuspect
	// workerDraining: asked for a graceful leave; sessions are being
	// handed off. Not eligible for placement.
	workerDraining
	// workerDead: failover complete; only a fresh registration revives it.
	workerDead
)

func (s workerState) String() string {
	switch s {
	case workerActive:
		return "active"
	case workerSuspect:
		return "suspect"
	case workerDraining:
		return "draining"
	case workerDead:
		return "dead"
	}
	return "unknown"
}

// WorkerLoad is the load snapshot a heartbeat carries: what the placement
// and degraded-routing decisions read.
type WorkerLoad struct {
	Sessions   int   `json:"sessions"`
	StateBytes int64 `json:"state_bytes"`
	QueueDepth int   `json:"queue_depth"`
}

// worker is the coordinator's record of one registered analysis worker.
// Guarded by the coordinator's mutex.
type worker struct {
	name     string // stable identity (the advertised URL by default)
	url      string // base URL the coordinator dials
	state    workerState
	lastBeat time.Time
	load     WorkerLoad
	epoch    uint64 // bumped per registration; stale heartbeats are ignored
}

func (w *worker) alive() bool { return w.state == workerActive }

// workerInfo is the JSON shape of one worker in GET /fleet and /healthz.
type workerInfo struct {
	Name          string     `json:"name"`
	URL           string     `json:"url"`
	State         string     `json:"state"`
	LastBeatMSAgo int64      `json:"last_heartbeat_ms_ago"`
	Load          WorkerLoad `json:"load"`
}

// registerRequest is the body of POST /fleet/register and /fleet/heartbeat.
type registerRequest struct {
	Name string     `json:"name"`
	URL  string     `json:"url"`
	Load WorkerLoad `json:"load"`
	// Sessions is the worker's open-session list, sent on register so the
	// coordinator can adopt placements after its own restart and name the
	// stale copies a rejoining worker must drop.
	Sessions []string `json:"sessions,omitempty"`
	// Epoch is the highest coordinator fencing epoch the worker has seen.
	// A coordinator recovering without its journal adopts an epoch above
	// every reported fence, or the fence its predecessor raised would
	// reject all of its writes.
	Epoch uint64 `json:"epoch,omitempty"`
}

// registerResponse tells the registering worker how to behave: the
// heartbeat cadence the coordinator expects and the ids of sessions the
// worker still holds but no longer owns (failed over elsewhere while it was
// partitioned) — the worker aborts those to resolve the split brain.
type registerResponse struct {
	HeartbeatMS int64    `json:"heartbeat_ms"`
	Stale       []string `json:"stale,omitempty"`
	// Epoch is the coordinator's fencing epoch; the worker raises its
	// fence to it (never lowers), rejecting writes from older
	// coordinators from then on.
	Epoch uint64 `json:"epoch,omitempty"`
}
