package fleet

import (
	"fmt"
	"math/rand"
	"testing"
)

func ringKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x", rng.Uint64())
	}
	return keys
}

// TestRingDeterministicAcrossInsertionOrder pins the property coordinator
// restarts rely on: placement is a pure function of the member set, so a
// coordinator that re-learns the same workers in any order reproduces the
// identical placement for every session id.
func TestRingDeterministicAcrossInsertionOrder(t *testing.T) {
	members := []string{"w1", "w2", "w3", "w4", "w5"}
	keys := ringKeys(500, 1)

	a := NewRing(0)
	for _, m := range members {
		a.Add(m)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		b := NewRing(0)
		for _, i := range rng.Perm(len(members)) {
			b.Add(members[i])
		}
		// Churn that cancels out must not change placement either.
		b.Add("transient")
		b.Remove("transient")
		for _, k := range keys {
			if got, want := b.Owner(k), a.Owner(k); got != want {
				t.Fatalf("trial %d: Owner(%q) = %q after reordered inserts, want %q", trial, k, got, want)
			}
		}
	}
}

// TestRingMinimalMovementOnJoin: adding one worker to n steals only ~1/(n+1)
// of the keys, and every stolen key lands on the new worker — nothing
// shuffles between survivors.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	keys := ringKeys(4000, 3)
	for n := 1; n <= 6; n++ {
		r := NewRing(0)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("w%d", i))
		}
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k] = r.Owner(k)
		}
		r.Add("joiner")
		moved := 0
		for _, k := range keys {
			after := r.Owner(k)
			if after == before[k] {
				continue
			}
			moved++
			if after != "joiner" {
				t.Fatalf("n=%d: key %q moved %q -> %q, not to the joiner", n, k, before[k], after)
			}
		}
		want := float64(len(keys)) / float64(n+1)
		if f := float64(moved); f > 2*want || f < want/3 {
			t.Errorf("n=%d: %d of %d keys moved on join, want about %.0f", n, moved, len(keys), want)
		}
	}
}

// TestRingMinimalMovementOnLeave: removing a worker relocates exactly the
// keys it owned; every other placement is untouched.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	keys := ringKeys(4000, 4)
	r := NewRing(0)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Remove("w2")
	for _, k := range keys {
		after := r.Owner(k)
		if before[k] == "w2" {
			if after == "w2" || after == "" {
				t.Fatalf("key %q still owned by removed worker", k)
			}
			continue
		}
		if after != before[k] {
			t.Fatalf("key %q moved %q -> %q though its owner never left", k, before[k], after)
		}
	}
}

// TestRingOwnerWhereWalksAllMembers: with a filter rejecting the preferred
// owner, OwnerWhere falls through to the next live member, in an order
// that is deterministic per key, and returns "" only when nobody passes.
func TestRingOwnerWhereWalksAllMembers(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	for _, k := range ringKeys(200, 5) {
		primary := r.Owner(k)
		seen := map[string]bool{}
		for len(seen) < 4 {
			next := r.OwnerWhere(k, func(n string) bool { return !seen[n] })
			if next == "" {
				t.Fatalf("key %q: OwnerWhere returned empty with %d members left", k, 4-len(seen))
			}
			if len(seen) == 0 && next != primary {
				t.Fatalf("key %q: unfiltered OwnerWhere %q != Owner %q", k, next, primary)
			}
			seen[next] = true
		}
		if r.OwnerWhere(k, func(string) bool { return false }) != "" {
			t.Fatalf("key %q: OwnerWhere with all-reject filter must return empty", k)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if got := r.Owner("x"); got != "" {
		t.Fatalf("empty ring Owner = %q, want empty", got)
	}
	r.Add("only")
	for _, k := range ringKeys(50, 6) {
		if got := r.Owner(k); got != "only" {
			t.Fatalf("single-member ring Owner(%q) = %q", k, got)
		}
	}
	r.Remove("only")
	if r.Len() != 0 || r.Owner("x") != "" {
		t.Fatal("ring not empty after removing the only member")
	}
}

// FuzzRingPlacement drives a random membership history and checks the
// core invariants after every step: owners are always current members,
// placement is independent of history (a fresh ring with the same member
// set agrees), and a join moves keys only onto the joiner.
func FuzzRingPlacement(f *testing.F) {
	f.Add([]byte{1, 2, 3, 130, 2, 4}, uint64(7))
	f.Add([]byte{10, 138, 10, 10, 139, 11}, uint64(99))
	f.Fuzz(func(t *testing.T, ops []byte, seed uint64) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		keys := ringKeys(100, int64(seed%1<<31))
		r := NewRing(8) // few vnodes: rebuild comparisons stay cheap
		live := map[string]bool{}
		for _, op := range ops {
			name := fmt.Sprintf("w%d", op&0x7f%16)
			var before map[string]string
			joining := op&0x80 == 0 && !live[name]
			if joining {
				before = make(map[string]string, len(keys))
				for _, k := range keys {
					before[k] = r.Owner(k)
				}
			}
			if op&0x80 == 0 {
				r.Add(name)
				live[name] = true
			} else {
				r.Remove(name)
				delete(live, name)
			}
			if r.Len() != len(live) {
				t.Fatalf("ring has %d members, expected %d", r.Len(), len(live))
			}
			// Rebuild from scratch with the same member set: history must not
			// matter.
			fresh := NewRing(8)
			for m := range live {
				fresh.Add(m)
			}
			for _, k := range keys {
				got := r.Owner(k)
				if len(live) == 0 {
					if got != "" {
						t.Fatalf("empty ring owns %q -> %q", k, got)
					}
					continue
				}
				if !live[got] {
					t.Fatalf("Owner(%q) = %q which is not a member", k, got)
				}
				if want := fresh.Owner(k); got != want {
					t.Fatalf("Owner(%q) = %q, fresh ring says %q: placement depends on history", k, got, want)
				}
				if joining && before[k] != "" && got != before[k] && got != name {
					t.Fatalf("join of %q moved key %q from %q to %q", name, k, before[k], got)
				}
			}
		}
	})
}
