package fleet

// End-to-end fleet tests: a real Coordinator and real raced workers on real
// TCP listeners, driven by the resilient internal/client. The acceptance bar
// mirrors the server chaos suite — after any failover the final reports must
// be byte-identical to an uninterrupted batch analysis of the same trace.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
)

// testLogger adapts t.Logf into a slog.Logger so fleet internals log through
// the test runner.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// Aggressive timing so a full failover (missed deadline -> suspect ->
// restore) fits inside a unit test.
const (
	testHeartbeatTimeout = 150 * time.Millisecond
	testHeartbeatEvery   = 25 * time.Millisecond
	testPullEvery        = 50 * time.Millisecond
)

type testWorker struct {
	name  string
	url   string
	srv   *server.Server
	hs    *http.Server
	gate  *faultinject.PartitionGate
	agent *Agent
}

// kill simulates a crash: the heartbeat agent stops silently and the HTTP
// listener closes along with every open connection. The server object stays
// for teardown, like a dead process's memory nobody can reach.
func (tw *testWorker) kill() {
	tw.agent.Stop()
	tw.hs.Close()
}

type testFleet struct {
	t       *testing.T
	co      *Coordinator
	url     string
	coAddr  string // coordinator listen address, reused across restarts
	coCfg   CoordinatorConfig
	hs      *http.Server
	gated   bool
	workers []*testWorker

	journalDir  string
	standby     *Coordinator
	standbyURL  string
	standbyHS   *http.Server
	standbyGate *faultinject.PartitionGate
}

func workerServerConfig() server.Config {
	return server.Config{Workers: 4, QueueCap: 256, IdleTimeout: -1}
}

// fleetOpts parameterizes the test fleet beyond the common harness knobs:
// the durable journal, a warm standby coordinator, and a partition gate on
// the standby's journal polls (the fencing tests' "paused primary" lever).
type fleetOpts struct {
	workers      int
	gated        bool
	pullEvery    time.Duration // 0 test default, <0 disables
	journalDir   string        // "" disables journaling
	standby      bool          // also run a warm standby coordinator
	standbyGated bool          // route the standby's outbound HTTP through a gate
	leaseTimeout time.Duration // 0 uses the coordinator default
	compactEvery int64         // 0 uses the coordinator default
}

// startTestFleet brings up a coordinator plus n workers and waits until all
// are registered and healthy. With gated=true each worker's listener and
// agent transport run through a PartitionGate so tests can sever it from
// the network without killing it. pullEvery 0 uses the test default; <0
// disables checkpoint pulling so failover must re-create from headers.
func startTestFleet(t *testing.T, n int, gated bool, pullEvery time.Duration) *testFleet {
	return startTestFleetOpts(t, fleetOpts{workers: n, gated: gated, pullEvery: pullEvery})
}

func startTestFleetOpts(t *testing.T, opts fleetOpts) *testFleet {
	t.Helper()
	if opts.pullEvery == 0 {
		opts.pullEvery = testPullEvery
	}
	cfg := CoordinatorConfig{
		HeartbeatTimeout: testHeartbeatTimeout,
		HeartbeatEvery:   testHeartbeatEvery,
		PullEvery:        opts.pullEvery,
		ProxyTimeout:     5 * time.Second,
		JournalDir:       opts.journalDir,
		LeaseTimeout:     opts.leaseTimeout,
		CompactEvery:     opts.compactEvery,
		Logger:           testLogger(t),
	}
	co := NewCoordinator(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: co.Handler()}
	go hs.Serve(ln)
	f := &testFleet{
		t: t, co: co, url: "http://" + ln.Addr().String(),
		coAddr: ln.Addr().String(), coCfg: cfg, hs: hs,
		gated: opts.gated, journalDir: opts.journalDir,
	}
	if opts.standby {
		sbCfg := cfg
		sbCfg.StandbyOf = f.url
		if opts.journalDir != "" {
			sbCfg.JournalDir = opts.journalDir + "-standby"
		}
		if opts.standbyGated {
			f.standbyGate = &faultinject.PartitionGate{}
			sbCfg.HTTPClient = &http.Client{Transport: f.standbyGate.Transport(nil)}
		}
		f.standby = NewCoordinator(sbCfg)
		sln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		f.standbyHS = &http.Server{Handler: f.standby.Handler()}
		go f.standbyHS.Serve(sln)
		f.standbyURL = "http://" + sln.Addr().String()
	}
	for i := 0; i < opts.workers; i++ {
		f.addWorker()
	}
	f.wait(func() bool { return f.healthy() == opts.workers }, fmt.Sprintf("%d healthy workers", opts.workers))
	return f
}

// coordinators is the address list worker agents register with: the primary
// plus the warm standby when one runs (the dual-heartbeat).
func (f *testFleet) coordinators() string {
	if f.standbyURL != "" {
		return f.url + "," + f.standbyURL
	}
	return f.url
}

// clientBase is what a failover-aware client should dial: every configured
// coordinator, primary first.
func (f *testFleet) clientBase() string { return f.coordinators() }

// killCoordinator simulates a coordinator crash: the listener drops with
// every open connection and the background loops stop. The journal is
// whatever the synchronous appends made durable — exactly the crash
// contract — because appends fsync before the mutating request is answered.
func (f *testFleet) killCoordinator() {
	f.t.Helper()
	f.hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.co.Close(ctx); err != nil {
		f.t.Errorf("coordinator close: %v", err)
	}
}

// restartCoordinator brings a fresh coordinator up on the SAME address with
// the same config, so clients and worker agents reconnect without being
// told anything.
func (f *testFleet) restartCoordinator() {
	f.t.Helper()
	co := NewCoordinator(f.coCfg)
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", f.coAddr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			f.t.Fatalf("re-listen on %s: %v", f.coAddr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	hs := &http.Server{Handler: co.Handler()}
	go hs.Serve(ln)
	f.co, f.hs = co, hs
}

func (f *testFleet) addWorker() *testWorker {
	f.t.Helper()
	name := fmt.Sprintf("w%d", len(f.workers))
	cfg := workerServerConfig()
	cfg.Name = name // stamped into spans so merged /debug views attribute work per worker
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.t.Fatal(err)
	}
	wrapped := net.Listener(ln)
	var gate *faultinject.PartitionGate
	if f.gated {
		gate = &faultinject.PartitionGate{}
		wrapped = gate.WrapListener(ln)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(wrapped)
	tw := &testWorker{
		name: name,
		url:  "http://" + ln.Addr().String(),
		srv:  srv, hs: hs, gate: gate,
	}
	hc := &http.Client{Timeout: 2 * time.Second}
	if gate != nil {
		hc.Transport = gate.Transport(nil)
	}
	tw.agent = StartAgent(AgentConfig{
		Coordinator: f.coordinators(),
		Advertise:   tw.url,
		Name:        tw.name,
		Every:       testHeartbeatEvery,
		HTTPClient:  hc,
		Load: func() WorkerLoad {
			st := srv.Stats()
			return WorkerLoad{Sessions: st.Sessions, StateBytes: st.StateBytes, QueueDepth: st.QueueDepth}
		},
		Sessions:  srv.SessionIDs,
		Abort:     srv.AbortSession,
		Epoch:     srv.CoordinatorEpoch,
		NoteEpoch: srv.NoteCoordinatorEpoch,
		Logger:    testLogger(f.t),
	})
	f.workers = append(f.workers, tw)
	return tw
}

func (f *testFleet) stop() {
	for _, w := range f.workers {
		w.agent.Stop()
	}
	f.hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.co.Close(ctx); err != nil {
		f.t.Errorf("coordinator close: %v", err)
	}
	if f.standby != nil {
		if f.standbyGate != nil {
			f.standbyGate.Heal() // unblock any in-flight poll so Close can finish
		}
		f.standbyHS.Close()
		if err := f.standby.Close(ctx); err != nil {
			f.t.Errorf("standby close: %v", err)
		}
		f.standby.cfg.HTTPClient.CloseIdleConnections()
	}
	for _, w := range f.workers {
		w.hs.Close()
		if err := w.srv.Close(ctx); err != nil {
			f.t.Errorf("worker %s close: %v", w.name, err)
		}
	}
	// Keep-alive conns held by the coordinator's and agents' pools each pin
	// transport goroutines; release them so leak checks see a quiet process.
	f.co.cfg.HTTPClient.CloseIdleConnections()
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}

func (f *testFleet) healthy() int {
	_, h := f.co.fleetSnapshot()
	return h
}

func (f *testFleet) wait(cond func() bool, what string) {
	f.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			f.t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// workerFor returns the test worker currently owning a session.
func (f *testFleet) workerFor(id string) *testWorker {
	name := f.co.Placements()[id]
	for _, w := range f.workers {
		if w.name == name {
			return w
		}
	}
	f.t.Fatalf("session %s placed on unknown worker %q", id, name)
	return nil
}

// fleetClientConfig mirrors chaosClientConfig in internal/server: small
// chunks, deep retry budget, millisecond backoff. The budget covers a full
// failover: heartbeat deadline + sweep + restore is a few hundred ms here.
func fleetClientConfig(base string, follow bool) client.Config {
	return client.Config{
		BaseURL:         base,
		Engines:         []string{"wcp", "hb"},
		HTTPClient:      &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		ChunkEvents:     400,
		RetryBudget:     300,
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      50 * time.Millisecond,
		RequestTimeout:  2 * time.Second,
		FollowPlacement: follow,
	}
}

func fleetTrace(c int) *trace.Trace {
	return gen.Random(gen.RandomConfig{
		Seed: int64(700 + c), Events: 3000 + 500*c, Threads: 3 + c%3, Locks: 2, Vars: 4,
	})
}

// verifyFinish requires the session's reports to be byte-identical to an
// uninterrupted single-node batch analysis of the same trace.
func verifyFinish(t *testing.T, label string, engines []string, tr *trace.Trace, fin *client.FinishResult) {
	t.Helper()
	if fin.Events != uint64(len(tr.Events)) {
		t.Errorf("%s: session saw %d events, want %d", label, fin.Events, len(tr.Events))
		return
	}
	for i, name := range engines {
		want := engine.MustNew(name, engine.Config{}).Analyze(tr)
		got := fin.Results[i]
		if got.Distinct != want.Distinct() || got.RacyEvents != want.RacyEvents {
			t.Errorf("%s %s: distinct=%d racy=%d, want distinct=%d racy=%d",
				label, name, got.Distinct, got.RacyEvents, want.Distinct(), want.RacyEvents)
		}
		if wantReport := want.Report.Format(tr.Symbols); got.Report != wantReport {
			t.Errorf("%s %s: report after failover differs from batch analysis:\n%s\n--- want ---\n%s",
				label, name, got.Report, wantReport)
		}
	}
}

// TestFleetFailoverKill is the headline e2e: three workers, three concurrent
// streaming clients, SIGKILL-equivalent on the worker owning client 0's
// session mid-stream. Every stream must complete with zero client-visible
// errors and byte-identical reports; the kill must actually have forced a
// failover.
func TestFleetFailoverKill(t *testing.T) {
	f := startTestFleet(t, 3, false, 0)
	defer f.stop()
	ctx := context.Background()

	const nclients = 3
	traces := make([]*trace.Trace, nclients)
	cfgs := make([]client.Config, nclients)
	sessions := make([]*client.Session, nclients)
	for c := 0; c < nclients; c++ {
		traces[c] = fleetTrace(c)
		// Odd clients follow placement (chunks go straight to the worker),
		// even ones route everything through the coordinator: both paths
		// must survive the kill.
		cfgs[c] = fleetClientConfig(f.url, c%2 == 1)
		s, err := client.Open(ctx, cfgs[c], traces[c].Symbols)
		if err != nil {
			t.Fatalf("client %d: open: %v", c, err)
		}
		sessions[c] = s
	}

	// Stream 40% so there's real detector state, then give the pull loop a
	// couple of cycles to capture checkpoints of it.
	for c, s := range sessions {
		if err := s.Stream(ctx, traces[c].Events[:len(traces[c].Events)*4/10], 0); err != nil {
			t.Fatalf("client %d: stream (pre-kill): %v", c, err)
		}
	}
	time.Sleep(3 * testPullEvery)

	victim := f.workerFor(sessions[0].ID())
	var wg sync.WaitGroup
	errs := make([]error, nclients)
	for c := 0; c < nclients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = sessions[c].Stream(ctx, traces[c].Events, 0)
		}(c)
	}
	time.Sleep(20 * time.Millisecond) // let chunks be in flight
	victim.kill()
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: stream through failover: %v", c, err)
		}
	}

	for c, s := range sessions {
		// FinishReplay, not Finish: a client whose stream completed just
		// before the kill only learns about the checkpoint rollback at the
		// finish barrier, and must replay the lost tail.
		fin, err := s.FinishReplay(ctx, traces[c].Events, 0)
		if err != nil {
			t.Fatalf("client %d: finish: %v", c, err)
		}
		verifyFinish(t, fmt.Sprintf("client %d", c), cfgs[c].Engines, traces[c], fin)
	}

	if f.co.sessionsFailed.Value() == 0 {
		t.Error("no session failed over: the kill exercised nothing")
	}
	for id, w := range f.co.Placements() {
		if w == victim.name {
			t.Errorf("session %s still placed on killed worker %s", id, w)
		}
	}
}

// TestFleetGracefulDrain: a worker leaves via the drain protocol mid-stream.
// Its sessions migrate with fresh snapshots, the drained server ends up
// empty, and the streams complete byte-identically.
func TestFleetGracefulDrain(t *testing.T) {
	f := startTestFleet(t, 3, false, 0)
	defer f.stop()
	ctx := context.Background()

	const nclients = 2
	traces := make([]*trace.Trace, nclients)
	cfgs := make([]client.Config, nclients)
	sessions := make([]*client.Session, nclients)
	for c := 0; c < nclients; c++ {
		traces[c] = fleetTrace(c + 10)
		cfgs[c] = fleetClientConfig(f.url, c%2 == 0)
		s, err := client.Open(ctx, cfgs[c], traces[c].Symbols)
		if err != nil {
			t.Fatalf("client %d: open: %v", c, err)
		}
		sessions[c] = s
		if err := s.Stream(ctx, traces[c].Events[:len(traces[c].Events)/2], 0); err != nil {
			t.Fatalf("client %d: stream (pre-drain): %v", c, err)
		}
	}

	leaver := f.workerFor(sessions[0].ID())
	if err := leaver.agent.Leave(ctx); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if got := f.co.sessionsMigrated.Value(); got == 0 {
		t.Error("graceful leave migrated no sessions")
	}
	for id, w := range f.co.Placements() {
		if w == leaver.name {
			t.Errorf("session %s still placed on drained worker %s", id, w)
		}
	}
	// The migrated source copies are aborted best-effort; the drained worker
	// must end up with nothing authoritative.
	f.wait(func() bool { return leaver.srv.Stats().Sessions == 0 }, "drained worker to empty")

	for c, s := range sessions {
		if err := s.Stream(ctx, traces[c].Events, 0); err != nil {
			t.Fatalf("client %d: stream after drain: %v", c, err)
		}
		fin, err := s.Finish(ctx)
		if err != nil {
			t.Fatalf("client %d: finish: %v", c, err)
		}
		verifyFinish(t, fmt.Sprintf("client %d", c), cfgs[c].Engines, traces[c], fin)
	}
}

// TestFleetDegradedAdmission: with every worker gone, new sessions are shed
// with 503 + a Retry-After, while the in-flight session is retained as a
// pending failover and lands intact once a fresh worker joins.
func TestFleetDegradedAdmission(t *testing.T) {
	f := startTestFleet(t, 1, false, 0)
	defer f.stop()
	ctx := context.Background()

	tr := fleetTrace(20)
	cfg := fleetClientConfig(f.url, false)
	s, err := client.Open(ctx, cfg, tr.Symbols)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.Stream(ctx, tr.Events[:len(tr.Events)/2], 0); err != nil {
		t.Fatalf("stream: %v", err)
	}
	time.Sleep(3 * testPullEvery) // let a checkpoint be pulled

	f.workers[0].kill()
	f.wait(func() bool { return f.healthy() == 0 }, "the only worker to be declared failed")

	// New sessions must be shed with a queue-derived Retry-After, not queued
	// or errored opaquely.
	resp, err := http.Post(f.url+"/sessions", "application/octet-stream", strings.NewReader(""))
	if err != nil {
		t.Fatalf("create during outage: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create during outage: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded-mode 503 is missing its Retry-After header")
	}
	hz, err := http.Get(f.url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz with no workers: status %d, want 503", hz.StatusCode)
	}

	// Recovery: a fresh worker joins, the stalled failover retries onto it,
	// and the client — which saw only retries, never an error — completes.
	replacement := f.addWorker()
	f.wait(func() bool {
		return f.co.pendingFailovers.Load() == 0 && f.co.Placements()[s.ID()] == replacement.name
	}, "pending failover to land on the replacement worker")
	if err := s.Stream(ctx, tr.Events, 0); err != nil {
		t.Fatalf("stream after recovery: %v", err)
	}
	fin, err := s.FinishReplay(ctx, tr.Events, 0)
	if err != nil {
		t.Fatalf("finish after recovery: %v", err)
	}
	verifyFinish(t, "recovered client", cfg.Engines, tr, fin)
}

// TestFleetRetryAfterPropagation pins satellite 1: a worker's own
// queue-derived Retry-After must pass through the coordinator proxy
// verbatim, not be replaced by a coordinator-side guess.
func TestFleetRetryAfterPropagation(t *testing.T) {
	co := NewCoordinator(CoordinatorConfig{
		HeartbeatTimeout: time.Hour, // the stub never heartbeats; keep it alive
		PullEvery:        -1,
		Logger:           testLogger(t),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: co.Handler()}
	go hs.Serve(ln)
	coURL := "http://" + ln.Addr().String()
	defer func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		co.Close(ctx)
	}()

	// A stub worker that accepts any session and answers every chunk 429
	// with its own Retry-After.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusCreated, map[string]string{"id": r.Header.Get(HeaderSessionID)})
	})
	mux.HandleFunc("POST /sessions/{id}/chunks", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "17")
		writeError(w, http.StatusTooManyRequests, "worker saturated")
	})
	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	whs := &http.Server{Handler: mux}
	go whs.Serve(wln)
	defer whs.Close()

	reg, _ := json.Marshal(registerRequest{Name: "stub", URL: "http://" + wln.Addr().String()})
	resp, err := http.Post(coURL+"/fleet/register", "application/json", strings.NewReader(string(reg)))
	if err != nil {
		t.Fatalf("register stub: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register stub: status %d", resp.StatusCode)
	}

	resp, err = http.Post(coURL+"/sessions", "application/octet-stream", strings.NewReader("hdr"))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	var created struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		t.Fatalf("create via stub: status %d id %q", resp.StatusCode, created.ID)
	}
	if got := resp.Header.Get(HeaderWorker); got != "http://"+wln.Addr().String() {
		t.Errorf("create response %s = %q, want the stub's URL", HeaderWorker, got)
	}

	resp, err = http.Post(coURL+"/sessions/"+created.ID+"/chunks", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatalf("chunk: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("proxied chunk: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "17" {
		t.Errorf("proxied Retry-After = %q, want the worker's own %q", got, "17")
	}
}

// TestFleetReportsMerge: the same trace analyzed in sessions on different
// workers must collapse to one set of race classes in the coordinator's
// merged /reports, with counts and trace tallies summed across workers.
func TestFleetReportsMerge(t *testing.T) {
	f := startTestFleet(t, 2, false, 0)
	defer f.stop()
	ctx := context.Background()

	tr := gen.Random(gen.RandomConfig{Seed: 900, Events: 2000, Threads: 3, Locks: 2, Vars: 4})
	cfg := fleetClientConfig(f.url, false)
	cfg.Engines = []string{"wcp"}

	// Open sessions until both workers own at least one (ids are random, so
	// a handful suffices), then run the identical trace through each.
	perWorker := map[string]int{}
	var sessions []*client.Session
	for len(perWorker) < 2 && len(sessions) < 32 {
		s, err := client.Open(ctx, cfg, tr.Symbols)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		sessions = append(sessions, s)
		perWorker[f.co.Placements()[s.ID()]]++
	}
	if len(perWorker) < 2 {
		t.Fatalf("32 sessions all landed on one worker: %v", perWorker)
	}
	for i, s := range sessions {
		if err := s.Stream(ctx, tr.Events, 0); err != nil {
			t.Fatalf("session %d: stream: %v", i, err)
		}
		if _, err := s.Finish(ctx); err != nil {
			t.Fatalf("session %d: finish: %v", i, err)
		}
	}

	want := engine.MustNew("wcp", engine.Config{}).Analyze(tr)
	var merged struct {
		Total   int `json:"total"`
		Matched int `json:"matched"`
		Reports []struct {
			Count  int64 `json:"count"`
			Traces int64 `json:"traces"`
		} `json:"reports"`
		Workers     int `json:"workers"`
		Unreachable int `json:"unreachable"`
	}
	if err := client.Reports(ctx, cfg, "", &merged); err != nil {
		t.Fatalf("merged reports: %v", err)
	}
	if merged.Workers != 2 || merged.Unreachable != 0 {
		t.Errorf("merged over workers=%d unreachable=%d, want 2/0", merged.Workers, merged.Unreachable)
	}
	if merged.Total != want.Distinct() {
		t.Errorf("merged total = %d race classes, want %d: dedup across workers failed", merged.Total, want.Distinct())
	}
	// Every session contributed the identical trace, so each class must have
	// been seen by all of them — summed across workers, not deduplicated away.
	for i, e := range merged.Reports {
		if e.Traces != int64(len(sessions)) {
			t.Errorf("class %d: traces = %d, want %d (one per session across both workers)", i, e.Traces, len(sessions))
		}
	}

	// min_count/limit are applied to the merged view, post-merge.
	var limited struct {
		Total   int `json:"total"`
		Matched int `json:"matched"`
	}
	if err := client.Reports(ctx, cfg, "limit=1", &limited); err != nil {
		t.Fatalf("limited reports: %v", err)
	}
	if limited.Total != want.Distinct() || limited.Matched != 1 {
		t.Errorf("limit=1: total=%d matched=%d, want total=%d matched=1", limited.Total, limited.Matched, want.Distinct())
	}
}

// TestFleetTracePropagation: the client's one trace id survives a
// mid-stream worker kill, and the coordinator's merged /debug/trace view
// stitches the whole timeline together — its own proxy/failover spans name
// the dead worker (the coordinator's record is the dead worker's obituary;
// the worker itself is unreachable), and the survivor's restored session
// contributes spans under the same trace because failover forwards the
// X-Raced-Trace header with the snapshot.
func TestFleetTracePropagation(t *testing.T) {
	f := startTestFleet(t, 2, false, 0)
	defer f.stop()
	ctx := context.Background()

	tr := fleetTrace(0)
	cfg := fleetClientConfig(f.url, false) // proxy mode: every request crosses the coordinator
	s, err := client.Open(ctx, cfg, tr.Symbols)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	traceID := s.Trace()
	if !obs.ValidID(traceID) {
		t.Fatalf("client minted invalid trace id %q", traceID)
	}

	// Stream 40%, let the pull loop checkpoint it, then kill the owner.
	if err := s.Stream(ctx, tr.Events[:len(tr.Events)*4/10], 0); err != nil {
		t.Fatalf("stream (pre-kill): %v", err)
	}
	time.Sleep(3 * testPullEvery)
	victim := f.workerFor(s.ID())
	var survivor *testWorker
	for _, w := range f.workers {
		if w != victim {
			survivor = w
		}
	}
	victim.kill()
	if err := s.Stream(ctx, tr.Events, 0); err != nil {
		t.Fatalf("stream through failover: %v", err)
	}
	fin, err := s.FinishReplay(ctx, tr.Events, 0)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	verifyFinish(t, "traced client", cfg.Engines, tr, fin)
	if f.co.sessionsFailed.Value() == 0 {
		t.Fatal("no session failed over: the kill exercised nothing")
	}

	// The merged trace view: one trace id, spans attributed to both the
	// dead worker and the survivor.
	resp, err := http.Get(f.url + "/debug/trace/" + traceID)
	if err != nil {
		t.Fatalf("debug/trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/trace: %d", resp.StatusCode)
	}
	var out struct {
		Trace string     `json:"trace"`
		Spans []obs.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Trace != traceID {
		t.Errorf("debug/trace echoed %q, want %q", out.Trace, traceID)
	}
	workers := make(map[string]bool)
	names := make(map[string]bool)
	for _, sp := range out.Spans {
		if sp.Trace != traceID {
			t.Errorf("span %q carries trace %q, want %q", sp.Name, sp.Trace, traceID)
		}
		workers[sp.Worker] = true
		names[sp.Name] = true
	}
	if !workers[victim.name] {
		t.Errorf("merged trace has no spans attributed to dead worker %s (workers seen: %v)", victim.name, workers)
	}
	if !workers[survivor.name] {
		t.Errorf("merged trace has no spans from surviving worker %s (workers seen: %v)", survivor.name, workers)
	}
	for _, want := range []string{"proxy_create", "proxy_chunk", "chunk", "finish"} {
		if !names[want] {
			t.Errorf("merged trace missing a %q span (names seen: %v)", want, names)
		}
	}
	if !names["failover_restore"] && !names["failover_recreate"] {
		t.Errorf("merged trace records no failover span (names seen: %v)", names)
	}

	// The coordinator's merged /metrics: its own fleet_* series stay
	// unlabeled, scraped worker series carry worker="...".
	resp, err = http.Get(f.url + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(raw)
	if err != nil {
		t.Fatalf("merged exposition does not parse: %v\n%s", err, raw)
	}
	series := make(map[string]bool)
	var survivorSeries bool
	for _, fam := range fams {
		for _, l := range fam.Lines {
			if series[l.Series()] {
				t.Errorf("merged exposition renders series %s twice", l.Series())
			}
			series[l.Series()] = true
			if strings.HasPrefix(fam.Name, "raced_") && strings.Contains(l.Labels, `worker="`+survivor.name+`"`) {
				survivorSeries = true
			}
		}
	}
	if !survivorSeries {
		t.Error("merged /metrics carries no worker-labeled raced_* series from the survivor")
	}
	if !series["fleet_sessions_failed_over_total"] {
		t.Error("coordinator's own fleet_sessions_failed_over_total is missing or grew labels")
	}
}
