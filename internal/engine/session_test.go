package engine

import (
	"context"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/trace"
	"repro/internal/traceio"
)

// TestSessionMatchesAnalyze: feeding a trace through a resumable session in
// uneven block slices must reproduce the batch Analyze outcome exactly —
// the contract the raced server relies on for report parity.
func TestSessionMatchesAnalyze(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Seed: 5, Events: 30000, Threads: 4, Locks: 3, Vars: 6})
	for _, name := range streamingEngineNames {
		t.Run(name, func(t *testing.T) {
			e := MustNew(name, Config{})
			se, ok := e.(SessionEngine)
			if !ok {
				t.Fatalf("%s does not implement SessionEngine", name)
			}
			s := se.NewSession(tr.NumThreads(), tr.NumLocks(), tr.NumVars())

			// Slice the trace into uneven blocks, including tiny ones.
			sizes := []int{1, 9000, 3, 117, 9000, 2048}
			i, si := 0, 0
			for i < len(tr.Events) {
				n := sizes[si%len(sizes)]
				si++
				if i+n > len(tr.Events) {
					n = len(tr.Events) - i
				}
				s.ProcessBlock(trace.BlockOf(tr.Events[i : i+n]))
				i += n
			}
			if s.Events() != len(tr.Events) {
				t.Fatalf("session consumed %d events, want %d", s.Events(), len(tr.Events))
			}

			got, want := s.Finish(), e.Analyze(tr)
			if got.RacyEvents != want.RacyEvents || got.FirstRace != want.FirstRace {
				t.Errorf("racy=%d first=%d, want racy=%d first=%d",
					got.RacyEvents, got.FirstRace, want.RacyEvents, want.FirstRace)
			}
			if got.Distinct() != want.Distinct() {
				t.Errorf("distinct=%d, want %d", got.Distinct(), want.Distinct())
			}
			if want.Report != nil {
				g, w := got.Report.Format(tr.Symbols), want.Report.Format(tr.Symbols)
				if g != w {
					t.Errorf("session report differs from batch report:\n%s\n--- want ---\n%s", g, w)
				}
			}
		})
	}
}

// waitGoroutines polls until the goroutine count settles back to at most
// base (plus the test machinery's own), failing after a generous deadline.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, base,
				buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAnalyzeStreamCancellation: a canceled context stops a streaming
// analysis promptly, returns the context error, and reaps the decoder
// goroutine.
func TestAnalyzeStreamCancellation(t *testing.T) {
	const nevents = 1_000_000
	path := filepath.Join(t.TempDir(), "big.bin")
	writeSyntheticBinary(t, path, nevents)
	base := runtime.NumGoroutine()

	for _, name := range streamingEngineNames {
		t.Run(name, func(t *testing.T) {
			st, err := traceio.StreamFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			ctx, cancel := context.WithCancel(context.Background())
			cancel() // canceled before the first block
			if _, err := MustNew(name, Config{}).(StreamAnalyzer).AnalyzeStream(ctx, st); err != context.Canceled {
				t.Fatalf("AnalyzeStream after cancel = %v, want context.Canceled", err)
			}
			// Prompt stop: nearly none of the trace was decoded.
			if got := st.Stats().Events; got > 3*traceio.DefaultBlockSize {
				t.Errorf("decoded %d events after cancellation, want at most a few blocks", got)
			}
		})
	}
	waitGoroutines(t, base)
}

// TestAnalyzeCorpusCancellationNoLeak: canceling a streaming corpus run
// mid-flight stops decoding promptly and leaves no goroutine behind — the
// pool workers, the per-engine decoder goroutines and the delivery
// goroutine all wind down.
func TestAnalyzeCorpusCancellationNoLeak(t *testing.T) {
	const nevents = 2_000_000
	dir := t.TempDir()
	paths := make([]string, 4)
	for i := range paths {
		paths[i] = filepath.Join(dir, "t.bin")
		if i > 0 {
			paths[i] = filepath.Join(dir, string(rune('a'+i))+".bin")
		}
		writeSyntheticBinary(t, paths[i], nevents)
	}
	engines := []Engine{MustNew("wcp", Config{}), MustNew("hb", Config{})}
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	ch := AnalyzeFiles(ctx, paths, engines, 2)
	// Cancel as soon as the first result (or none — timing) can be in
	// flight, then drain: the channel must still close.
	cancel()
	n := 0
	for range ch {
		n++
	}
	if n > len(paths) {
		t.Errorf("received %d results for %d inputs", n, len(paths))
	}
	waitGoroutines(t, base)
}
