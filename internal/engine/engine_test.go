package engine

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/race"
	"repro/internal/trace"
)

// agreeBenchmarks are small-enough Table-1 workloads to run every engine
// (including whole-trace analysis) in a unit test.
var agreeBenchmarks = []string{"account", "airline", "array", "boundedbuffer", "critical", "pingpong", "mergesort"}

func genTrace(t *testing.T, name string, scale float64) (*trace.Trace, gen.Benchmark) {
	t.Helper()
	b, ok := gen.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	return b.Generate(scale), b
}

// TestEnginesAgree runs every engine concurrently over the same shared
// traces and checks each engine's documented race set: WCP and HB match
// the benchmark's Table-1 counts, the epoch engines agree with their
// vector-clock counterparts on race existence and first race, and every
// HB race pair is also a WCP race pair (HB ⊆ WCP, Theorem: WCP is weaker).
func TestEnginesAgree(t *testing.T) {
	for _, name := range agreeBenchmarks {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tr, b := genTrace(t, name, 1.0)
			results := RunAll(context.Background(), tr, All(Config{}))
			byName := map[string]*Result{}
			for _, r := range results {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Engine, r.Err)
				}
				byName[r.Engine] = r
			}

			if got, want := byName["wcp"].Distinct(), b.WCPRaces(); got != want {
				t.Errorf("wcp: %d distinct pairs, want %d", got, want)
			}
			if got, want := byName["hb"].Distinct(), b.HBRaces; got != want {
				t.Errorf("hb: %d distinct pairs, want %d", got, want)
			}

			for _, pair := range [][2]string{{"wcp", "wcp-epoch"}, {"hb", "hb-epoch"}} {
				full, epoch := byName[pair[0]], byName[pair[1]]
				if (full.RacyEvents > 0) != (epoch.RacyEvents > 0) {
					t.Errorf("%s vs %s: existence disagrees (%d vs %d racy events)",
						pair[0], pair[1], full.RacyEvents, epoch.RacyEvents)
				}
				if full.FirstRace != epoch.FirstRace {
					t.Errorf("%s vs %s: first race %d vs %d", pair[0], pair[1], full.FirstRace, epoch.FirstRace)
				}
			}

			wcpReport := byName["wcp"].Report
			for _, p := range byName["hb"].Report.Pairs() {
				if !wcpReport.Has(p.A, p.B) {
					t.Errorf("hb pair %v not detected by wcp (HB races must be WCP races)", p)
				}
			}
		})
	}
}

// TestRunAllOrder checks that results come back in engine order no matter
// which engine finishes first.
func TestRunAllOrder(t *testing.T) {
	tr, _ := genTrace(t, "bubblesort", 0.5)
	engines := All(Config{})
	results := RunAll(context.Background(), tr, engines)
	if len(results) != len(engines) {
		t.Fatalf("got %d results for %d engines", len(results), len(engines))
	}
	for i, r := range results {
		if r.Engine != engines[i].Name() {
			t.Errorf("result %d is %q, want %q", i, r.Engine, engines[i].Name())
		}
		if r.Err == nil && r.Duration <= 0 {
			t.Errorf("result %d (%s): non-positive duration", i, r.Engine)
		}
	}
}

// TestRunAllCanceled checks that a pre-canceled context skips all engines.
func TestRunAllCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr, _ := genTrace(t, "account", 1.0)
	for _, r := range RunAll(ctx, tr, All(Config{})) {
		if r.Err == nil {
			t.Errorf("%s: ran despite canceled context", r.Engine)
		}
	}
}

// TestEngineSharedTrace runs the same engine over the same trace from many
// goroutines; under -race this verifies Analyze is concurrency-safe and
// treats the trace as read-only.
func TestEngineSharedTrace(t *testing.T) {
	tr, b := genTrace(t, "boundedbuffer", 1.0)
	e := MustNew("wcp", Config{})
	const goroutines = 8
	done := make(chan *Result, goroutines)
	for i := 0; i < goroutines; i++ {
		go func() { done <- e.Analyze(tr) }()
	}
	for i := 0; i < goroutines; i++ {
		if got := (<-done).Distinct(); got != b.WCPRaces() {
			t.Errorf("concurrent run %d: %d pairs, want %d", i, got, b.WCPRaces())
		}
	}
}

// TestNewUnknown checks the error path and that Names covers every engine
// New accepts.
func TestNewUnknown(t *testing.T) {
	if _, err := New("flux-capacitor", Config{}); err == nil {
		t.Fatal("New accepted an unknown engine")
	}
	for _, name := range Names() {
		e, err := New(name, Config{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, e.Name())
		}
	}
}

// TestResultDistinct covers the nil-report path.
func TestResultDistinct(t *testing.T) {
	r := &Result{}
	if r.Distinct() != 0 {
		t.Fatal("nil report should count 0 pairs")
	}
	rep := race.NewReport()
	rep.Record(1, 2, 0, 0)
	r.Report = rep
	if r.Distinct() != 1 {
		t.Fatal("want 1 pair")
	}
}
