// Package engine is the orchestration layer over the repository's race
// detectors: a uniform Engine interface wrapping the WCP, HB, CP, lockset
// and windowed-predictive analyses, plus worker-pool runners that fan one
// trace out to many engines concurrently (RunAll) and a corpus of traces
// out across many workers (AnalyzeCorpus, AnalyzeFiles).
//
// Engines are stateless values: Analyze builds all detector state per call,
// so a single Engine is safe for concurrent use and a trace can be shared
// read-only between engines — each Analyze walks the trace's cached
// structure-of-arrays view (trace.Trace.SoA) with its own cursor, nothing
// is copied.
package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/hb"
	"repro/internal/lockset"
	"repro/internal/predict"
	"repro/internal/race"
	"repro/internal/trace"
	"repro/internal/traceio"
)

// Result is the uniform outcome of one engine over one trace. Fields beyond
// Engine, Duration and Summary are engine-specific; absent ones are zero
// (Report is nil for the epoch engines, which track race existence only).
type Result struct {
	// Engine is the name of the engine that produced this result.
	Engine string
	// Report holds distinct race pairs, nil for engines that don't track
	// pairs (wcp-epoch, hb-epoch).
	Report *race.Report
	// RacyEvents counts events flagged as racing (-1 if not tracked).
	RacyEvents int
	// FirstRace is the trace index of the first racy event, or -1.
	FirstRace int
	// QueueMaxTotal and QueueFraction are Algorithm 1's queue high-water
	// mark (wcp engines only; Table 1 column 11).
	QueueMaxTotal int
	QueueFraction float64
	// Windows is the number of fragments analyzed by windowed engines.
	Windows int
	// Searches and ExhaustedSearches count witness searches (predict only).
	Searches          int
	ExhaustedSearches int
	// Warnings counts lockset warnings (lockset only; may be spurious).
	Warnings int
	// Duration is the wall-clock analysis time.
	Duration time.Duration
	// Summary is a one-line engine-specific rendering of the counters.
	Summary string
	// Err is non-nil when the run was abandoned (e.g. context canceled
	// before the engine started).
	Err error
}

// Distinct returns the number of distinct race pairs, 0 when the engine
// reports none.
func (r *Result) Distinct() int {
	if r.Report == nil {
		return 0
	}
	return r.Report.Distinct()
}

// Engine is a race-detection analysis that can be run over a trace. Analyze
// must be safe for concurrent use: all the implementations in this package
// build their detector state per call and treat the trace as read-only.
type Engine interface {
	// Name identifies the engine ("wcp", "hb-epoch", ...).
	Name() string
	// Analyze runs the detector over the whole trace.
	Analyze(tr *trace.Trace) *Result
}

// StreamAnalyzer is implemented by engines whose detectors consume a trace
// block by block, never materializing the full event sequence: memory is
// detector state plus two block buffers, independent of trace length, and
// block decode runs on a dedicated goroutine overlapping detector compute
// (see drivePipelined). The wcp, wcp-epoch, hb and hb-epoch engines stream;
// the windowed baselines (cp, predict) and lockset need the materialized
// trace.
//
// Streaming needs the trace dimensions up front to size detector state, so
// AnalyzeStream requires a stream whose header declares them (the binary
// format; text traces take a counting pass first — see traceio.Stream).
type StreamAnalyzer interface {
	Engine
	// AnalyzeStream runs the detector over the stream's remaining events.
	// The stream is consumed; each engine needs its own fresh stream. A
	// canceled context stops the analysis promptly — within one block —
	// returning ctx.Err() with no goroutine left behind.
	AnalyzeStream(ctx context.Context, st *traceio.Stream) (*Result, error)
}

// Session is a resumable streaming analysis: an engine's detector held open
// across an arbitrary number of SoA blocks — the building block of the
// raced server's trace sessions, where a trace arrives chunk by chunk over
// many requests with idle gaps between them. Feed blocks from one goroutine
// at a time, in trace order; Finish seals the session and returns the
// uniform Result (its Duration is accumulated processing time, excluding
// the gaps). A finished session must not be fed further blocks.
type Session interface {
	// ProcessBlock feeds the next events of the trace.
	ProcessBlock(b *trace.Block)
	// Events returns the number of events processed so far.
	Events() int
	// Finish seals the session and assembles its Result.
	Finish() *Result
}

// SessionEngine is implemented by engines whose detectors can be held open
// as resumable streaming sessions: the wcp, wcp-epoch, hb and hb-epoch
// engines. (AnalyzeStream is the one-shot form; NewSession exposes the same
// detector for incremental feeding.)
type SessionEngine interface {
	Engine
	// NewSession returns a fresh detector session for a trace with the
	// given dimensions (known up front, e.g. from a traceio.Header).
	NewSession(threads, locks, vars int) Session
}

// CanStream reports whether every engine supports streaming analysis.
func CanStream(engines []Engine) bool {
	for _, e := range engines {
		if _, ok := e.(StreamAnalyzer); !ok {
			return false
		}
	}
	return true
}

// streamDims extracts the up-front dimensions a streaming detector needs.
func streamDims(st *traceio.Stream) (traceio.Dims, error) {
	dims, known := st.Dims()
	if !known {
		return dims, fmt.Errorf("engine: stream does not declare its dimensions up front; streaming analysis needs a binary trace (or a prior counting pass)")
	}
	return dims, nil
}

// Config carries the knobs shared by the windowed engines. The zero value
// selects the defaults used by cmd/rapid.
type Config struct {
	// Window bounds each analyzed fragment for the cp and predict engines;
	// <= 0 analyzes the whole trace as one window (feasible only for small
	// traces with cp). Defaults to 1000 when zero.
	Window int
	// Budget is the per-window exploration budget (DFS nodes) for the
	// predict engine. Defaults to 30000 when zero.
	Budget int
}

func (c Config) window() int {
	if c.Window == 0 {
		return 1000
	}
	return c.Window
}

func (c Config) budget() int {
	if c.Budget == 0 {
		return 30000
	}
	return c.Budget
}

// wcpResult assembles the uniform Result of a WCP run (vector or epoch).
func wcpResult(name string, res *core.Result, epoch bool, dur time.Duration) *Result {
	r := &Result{
		Engine:        name,
		Report:        res.Report,
		RacyEvents:    res.RacyEvents,
		FirstRace:     res.FirstRace,
		QueueMaxTotal: res.QueueMaxTotal,
		QueueFraction: res.QueueMaxFraction(),
		Duration:      dur,
	}
	if epoch {
		r.Summary = fmt.Sprintf("racy events=%d first=%d (epoch mode reports no pairs)",
			res.RacyEvents, res.FirstRace)
	} else {
		r.Summary = fmt.Sprintf("racy events=%d queue max=%d (%.2f%% of events)",
			res.RacyEvents, res.QueueMaxTotal, 100*res.QueueMaxFraction())
	}
	return r
}

// hbResult assembles the uniform Result of an HB run (vector or epoch).
func hbResult(name string, res *hb.Result, epoch bool, dur time.Duration) *Result {
	r := &Result{
		Engine:     name,
		Report:     res.Report,
		RacyEvents: res.RacyEvents,
		FirstRace:  res.FirstRace,
		Duration:   dur,
	}
	if epoch {
		r.Summary = fmt.Sprintf("racy events=%d first=%d (epoch mode reports no pairs)",
			res.RacyEvents, res.FirstRace)
	} else {
		r.Summary = fmt.Sprintf("racy events=%d", res.RacyEvents)
	}
	return r
}

// wcpEngine is the paper's Algorithm 1: with epoch false, distinct race-pair
// tracking ("wcp"); with epoch true, the §6 epoch-optimized race check
// ("wcp-epoch").
type wcpEngine struct{ epoch bool }

func (e wcpEngine) Name() string {
	if e.epoch {
		return "wcp-epoch"
	}
	return "wcp"
}

func (e wcpEngine) options() core.Options {
	return core.Options{TrackPairs: !e.epoch, EpochCheck: e.epoch}
}

func (e wcpEngine) Analyze(tr *trace.Trace) *Result {
	start := time.Now()
	return wcpResult(e.Name(), core.DetectOpts(tr, e.options()), e.epoch, time.Since(start))
}

// wcpSession holds a WCP detector open across blocks (engine.Session).
type wcpSession struct {
	name    string
	epoch   bool
	d       *core.Detector
	busy    time.Duration
	compact compactState
}

func (s *wcpSession) ProcessBlock(b *trace.Block) {
	start := time.Now()
	s.d.ProcessBlock(b)
	s.busy += time.Since(start)
	if s.compact.due(len(b.Kinds)) {
		s.compact.run(s.d)
	}
}

func (s *wcpSession) Events() int { return s.d.Result().Events }

func (s *wcpSession) Finish() *Result {
	return wcpResult(s.name, s.d.Result(), s.epoch, s.busy)
}

func (e wcpEngine) NewSession(threads, locks, vars int) Session {
	return &wcpSession{
		name:  e.Name(),
		epoch: e.epoch,
		d:     core.NewDetector(threads, locks, vars, e.options()),
	}
}

func (e wcpEngine) AnalyzeStream(ctx context.Context, st *traceio.Stream) (*Result, error) {
	return analyzeSessionStream(ctx, e, st)
}

// hbEngine is the happens-before baseline: full vector clocks with epoch
// false ("hb"), the FastTrack-style epoch representation with epoch true
// ("hb-epoch").
type hbEngine struct{ epoch bool }

func (e hbEngine) Name() string {
	if e.epoch {
		return "hb-epoch"
	}
	return "hb"
}

func (e hbEngine) options() hb.Options {
	return hb.Options{TrackPairs: !e.epoch, Epoch: e.epoch}
}

func (e hbEngine) Analyze(tr *trace.Trace) *Result {
	start := time.Now()
	return hbResult(e.Name(), hb.DetectOpts(tr, e.options()), e.epoch, time.Since(start))
}

// hbSession holds an HB detector open across blocks (engine.Session).
type hbSession struct {
	name    string
	epoch   bool
	d       *hb.Detector
	busy    time.Duration
	compact compactState
}

func (s *hbSession) ProcessBlock(b *trace.Block) {
	start := time.Now()
	s.d.ProcessBlock(b)
	s.busy += time.Since(start)
	if s.compact.due(len(b.Kinds)) {
		s.compact.run(s.d)
	}
}

func (s *hbSession) Events() int { return s.d.Result().Events }

func (s *hbSession) Finish() *Result {
	r := hbResult(s.name, s.d.Result(), s.epoch, s.busy)
	// A sealed session keeps its Result but no longer needs the inflated
	// read vectors; return them to the arena freelist (the stale-session
	// leak fix — eviction and finish share this path).
	s.d.Release()
	return r
}

func (e hbEngine) NewSession(threads, locks, vars int) Session {
	return &hbSession{
		name:  e.Name(),
		epoch: e.epoch,
		d:     hb.NewDetector(threads, locks, vars, e.options()),
	}
}

func (e hbEngine) AnalyzeStream(ctx context.Context, st *traceio.Stream) (*Result, error) {
	return analyzeSessionStream(ctx, e, st)
}

// analyzeSessionStream is the shared one-shot streaming path: a fresh
// session fed by the pipelined block driver, sealed at end of stream.
func analyzeSessionStream(ctx context.Context, e SessionEngine, st *traceio.Stream) (*Result, error) {
	dims, err := streamDims(st)
	if err != nil {
		return nil, err
	}
	s := e.NewSession(dims.Threads, dims.Locks, dims.Vars)
	if err := drivePipelined(ctx, st, s); err != nil {
		return nil, err
	}
	return s.Finish(), nil
}

// cpEngine is the windowed Causally-Precedes baseline.
type cpEngine struct{ cfg Config }

func (cpEngine) Name() string { return "cp" }

func (e cpEngine) Analyze(tr *trace.Trace) *Result {
	start := time.Now()
	res := cp.Detect(tr, cp.Options{WindowSize: e.cfg.window()})
	return &Result{
		Engine:     "cp",
		Report:     res.Report,
		RacyEvents: -1,
		FirstRace:  -1,
		Windows:    res.Windows,
		Duration:   time.Since(start),
		Summary:    fmt.Sprintf("windows=%d racy event pairs=%d", res.Windows, res.RacyEventPairs),
	}
}

// predictEngine is the windowed RVPredict-style reordering-search detector.
type predictEngine struct{ cfg Config }

func (predictEngine) Name() string { return "predict" }

func (e predictEngine) Analyze(tr *trace.Trace) *Result {
	start := time.Now()
	res := predict.Detect(tr, predict.Options{
		WindowSize:   e.cfg.window(),
		WindowBudget: e.cfg.budget(),
	})
	return &Result{
		Engine:            "predict",
		Report:            res.Report,
		RacyEvents:        -1,
		FirstRace:         -1,
		Windows:           res.Windows,
		Searches:          res.Searches,
		ExhaustedSearches: res.ExhaustedSearches,
		Duration:          time.Since(start),
		Summary: fmt.Sprintf("windows=%d searches=%d budget-exhausted=%d",
			res.Windows, res.Searches, res.ExhaustedSearches),
	}
}

// locksetEngine is the Eraser lockset baseline (unsound).
type locksetEngine struct{}

func (locksetEngine) Name() string { return "lockset" }

func (locksetEngine) Analyze(tr *trace.Trace) *Result {
	start := time.Now()
	res := lockset.Detect(tr)
	return &Result{
		Engine:     "lockset",
		Report:     res.Report,
		RacyEvents: -1,
		FirstRace:  res.FirstWarning,
		Warnings:   res.Warnings,
		Duration:   time.Since(start),
		Summary:    fmt.Sprintf("warnings=%d (lockset is unsound: warnings may be spurious)", res.Warnings),
	}
}

// constructors maps engine names to their factories, in the canonical
// "all" order (the order cmd/rapid reports and RunAll preserves).
var allOrder = []string{"wcp", "wcp-epoch", "hb", "hb-epoch", "cp", "predict", "lockset"}

// New returns the named engine configured with cfg. Valid names are those
// returned by Names.
func New(name string, cfg Config) (Engine, error) {
	switch name {
	case "wcp":
		return wcpEngine{}, nil
	case "wcp-epoch":
		return wcpEngine{epoch: true}, nil
	case "hb":
		return hbEngine{}, nil
	case "hb-epoch":
		return hbEngine{epoch: true}, nil
	case "cp":
		return cpEngine{cfg}, nil
	case "predict":
		return predictEngine{cfg}, nil
	case "lockset":
		return locksetEngine{}, nil
	}
	return nil, fmt.Errorf("unknown engine %q (known: %v)", name, Names())
}

// MustNew is New for statically-known names; it panics on error.
func MustNew(name string, cfg Config) Engine {
	e, err := New(name, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// All returns every engine, in the canonical reporting order.
func All(cfg Config) []Engine {
	engines := make([]Engine, len(allOrder))
	for i, name := range allOrder {
		engines[i] = MustNew(name, cfg)
	}
	return engines
}

// Names returns the valid engine names, sorted.
func Names() []string {
	names := append([]string(nil), allOrder...)
	sort.Strings(names)
	return names
}

// ArenaStats exposes a session's clock-arena accounting when its detector
// pools vector clocks (the hb engines). Chaos and leak tests use it to
// assert that sealing a session returned every pooled clock to the
// freelist: free == allocs after Finish. ok is false for detectors without
// an arena.
func ArenaStats(s Session) (allocs, free int, ok bool) {
	hs, ok := s.(*hbSession)
	if !ok {
		return 0, 0, false
	}
	a := hs.d.Arena()
	return a.Allocs(), a.Free(), true
}
