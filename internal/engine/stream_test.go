package engine

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/event"
	"repro/internal/gen"
	"repro/internal/traceio"
)

var streamingEngineNames = []string{"wcp", "wcp-epoch", "hb", "hb-epoch"}

func TestCanStream(t *testing.T) {
	for _, name := range streamingEngineNames {
		if !CanStream([]Engine{MustNew(name, Config{})}) {
			t.Errorf("%s should stream", name)
		}
	}
	for _, name := range []string{"cp", "predict", "lockset"} {
		if CanStream([]Engine{MustNew(name, Config{})}) {
			t.Errorf("%s should not stream", name)
		}
	}
}

// TestStreamMatchesMaterialized pins the streaming path to the materialized
// one: same races, same counters, for every streaming engine, via the
// corpus runner (which picks the streaming path for binary file sources).
func TestStreamMatchesMaterialized(t *testing.T) {
	bench, _ := gen.ByName("ftpserver")
	tr := bench.Generate(0.3)
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := traceio.WriteBinary(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	engines := make([]Engine, len(streamingEngineNames))
	for i, name := range streamingEngineNames {
		engines[i] = MustNew(name, Config{})
	}
	var streamed CorpusResult
	for res := range AnalyzeCorpus(context.Background(), []Source{FileSource(path)}, engines, 1) {
		streamed = res
	}
	if streamed.Err != nil {
		t.Fatal(streamed.Err)
	}
	if streamed.Stats.Events != tr.Len() {
		t.Fatalf("streamed stats events = %d, want %d", streamed.Stats.Events, tr.Len())
	}
	if streamed.Symbols == nil || streamed.Symbols.NumThreads() != tr.NumThreads() {
		t.Fatal("streamed corpus result lacks the symbol table")
	}
	for i, e := range engines {
		got, want := streamed.Results[i], e.Analyze(tr)
		if got.Err != nil {
			t.Fatalf("%s: streaming error: %v", e.Name(), got.Err)
		}
		if got.RacyEvents != want.RacyEvents || got.FirstRace != want.FirstRace ||
			got.QueueMaxTotal != want.QueueMaxTotal || got.Distinct() != want.Distinct() {
			t.Errorf("%s: streamed (racy=%d first=%d qmax=%d distinct=%d) != materialized (racy=%d first=%d qmax=%d distinct=%d)",
				e.Name(), got.RacyEvents, got.FirstRace, got.QueueMaxTotal, got.Distinct(),
				want.RacyEvents, want.FirstRace, want.QueueMaxTotal, want.Distinct())
		}
	}
}

// TestCorpusTextFallsBack verifies that text file sources — whose streams
// cannot declare dimensions up front — fall back to the materializing path
// and still produce correct results.
func TestCorpusTextFallsBack(t *testing.T) {
	bench, _ := gen.ByName("bubblesort")
	tr := bench.Generate(1.0)
	path := filepath.Join(t.TempDir(), "trace.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := traceio.WriteText(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	engines := []Engine{MustNew("wcp", Config{})}
	for res := range AnalyzeCorpus(context.Background(), []Source{FileSource(path)}, engines, 1) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want := engines[0].Analyze(tr)
		if got := res.Results[0]; got.Distinct() != want.Distinct() {
			t.Errorf("distinct = %d, want %d", got.Distinct(), want.Distinct())
		}
	}
}

// writeSyntheticBinary streams nevents race-free events to path without ever
// materializing them: four threads cycling protected critical sections.
func writeSyntheticBinary(t testing.TB, path string, nevents int) {
	t.Helper()
	syms := &event.Symbols{}
	threads := make([]event.TID, 4)
	for i := range threads {
		threads[i] = syms.Thread(string(rune('a' + i)))
	}
	lock := syms.Lock("l")
	x := syms.Var("x")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := traceio.NewBinaryWriter(f, syms, nevents)
	if err != nil {
		t.Fatal(err)
	}
	block := make([]event.Event, 0, 4096)
	for i := 0; i < nevents; i += 4 {
		th := threads[(i/4)%len(threads)]
		n := nevents - i
		if n > 4 {
			n = 4
		}
		unit := [4]event.Event{
			{Kind: event.Acquire, Thread: th, Obj: int32(lock), Loc: event.NoLoc},
			{Kind: event.Read, Thread: th, Obj: int32(x), Loc: event.NoLoc},
			{Kind: event.Write, Thread: th, Obj: int32(x), Loc: event.NoLoc},
			{Kind: event.Release, Thread: th, Obj: int32(lock), Loc: event.NoLoc},
		}
		block = append(block, unit[:n]...)
		if len(block)+4 > cap(block) {
			if err := w.WriteEvents(block); err != nil {
				t.Fatal(err)
			}
			block = block[:0]
		}
	}
	if err := w.WriteEvents(block); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingBoundsMaterialization is the memory contract of the
// streaming path: analyzing a multi-million-event binary trace allocates a
// small constant, not O(trace). Materializing the events alone would
// allocate 16 bytes per event; the bound below is a small fraction of that.
func TestStreamingBoundsMaterialization(t *testing.T) {
	const nevents = 2_000_000
	path := filepath.Join(t.TempDir(), "big.bin")
	writeSyntheticBinary(t, path, nevents)

	e := MustNew("wcp", Config{}).(StreamAnalyzer)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	st, err := traceio.StreamFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.AnalyzeStream(context.Background(), st)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	if got := st.Stats().Events; got != nevents {
		t.Fatalf("analyzed %d events, want %d", got, nevents)
	}
	st.Close()
	if res.RacyEvents != 0 {
		t.Fatalf("synthetic trace should be race-free, got %d racy events", res.RacyEvents)
	}

	allocated := m1.TotalAlloc - m0.TotalAlloc
	materialized := uint64(nevents) * 16 // sizeof(event.Event)
	if limit := materialized / 4; allocated > limit {
		t.Errorf("streaming analysis allocated %d bytes total for %d events; want < %d (full materialization would be ≥ %d)",
			allocated, nevents, limit, materialized)
	}
	t.Logf("streamed %d events with %d bytes total allocation (%.4f B/event)",
		nevents, allocated, float64(allocated)/nevents)
}
