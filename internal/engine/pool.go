package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/trace"
	"repro/internal/traceio"
)

// Jobs resolves a job-count knob: n when positive, GOMAXPROCS otherwise.
func Jobs(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// RunAll fans one trace out to every engine concurrently and waits for all
// of them. The trace is shared read-only: each engine walks tr.Events with
// its own cursor, so nothing is copied. Results come back in engine order
// regardless of completion order. A canceled context does not interrupt
// engines already running (the detectors are single-pass and have no
// preemption points) but engines not yet started return a Result whose Err
// is the context error.
func RunAll(ctx context.Context, tr *trace.Trace, engines []Engine) []*Result {
	results := make([]*Result, len(engines))
	var wg sync.WaitGroup
	for i, e := range engines {
		wg.Add(1)
		go func(i int, e Engine) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				results[i] = &Result{Engine: e.Name(), RacyEvents: -1, FirstRace: -1, Err: err}
				return
			}
			results[i] = e.Analyze(tr)
		}(i, e)
	}
	wg.Wait()
	return results
}

// runPool runs work(i) for every i in [0, n) on min(workers, n) goroutines
// and blocks until all of them finish. It is the dispatch loop shared by
// Map and AnalyzeCorpus.
func runPool(workers, n int, work func(i int)) {
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				work(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn over items on a pool of jobs workers (Jobs(jobs) of them) and
// returns the results in item order. The first error does not stop other
// items; all errors are joined in the returned error. When the context is
// canceled, unstarted items fail with the context error.
func Map[T, R any](ctx context.Context, jobs int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))
	runPool(Jobs(jobs), len(items), func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		out[i], errs[i] = fn(ctx, i, items[i])
	})
	return out, errors.Join(errs...)
}

// Source is one trace of a corpus: a name for reporting, a loader that
// materializes the trace on demand (inside a pool worker, so loading —
// typically file parsing — is itself parallelized), and optionally a
// streaming opener.
type Source struct {
	Name string
	Load func() (*trace.Trace, error)
	// Open, when non-nil, grants streaming access: each call returns a
	// fresh stream positioned at the first event. When every engine of a
	// corpus run implements StreamAnalyzer and the stream declares its
	// dimensions up front, the corpus runner analyzes block by block and
	// the trace is never materialized — each engine decodes its own pass,
	// trading repeated (cheap, sequential) decoding for O(1) memory in
	// trace length.
	Open func() (*traceio.Stream, error)
}

// FileSource loads a trace file, auto-detecting text vs binary format. The
// source is streamable: corpus runs whose engines all support streaming
// analyze the file block by block without materializing it.
func FileSource(path string) Source {
	return Source{
		Name: path,
		Load: func() (*trace.Trace, error) { return traceio.ReadFile(path) },
		Open: func() (*traceio.Stream, error) { return traceio.StreamFile(path) },
	}
}

// TraceSource wraps an in-memory trace as a Source.
func TraceSource(name string, tr *trace.Trace) Source {
	return Source{Name: name, Load: func() (*trace.Trace, error) { return tr, nil }}
}

// CorpusResult is the analysis of one corpus entry: the per-engine results
// in engine order, or Err when the source failed to load (or the run was
// canceled before this entry started).
type CorpusResult struct {
	// Index is the entry's position in the input corpus; results stream in
	// completion order, so consumers needing input order reorder by Index.
	Index int
	// Name is the Source name (the path, for file corpora).
	Name string
	// Stats summarizes the loaded trace's event mix.
	Stats trace.Stats
	// Symbols is the loaded trace's symbol table, for rendering race
	// reports without retaining the trace itself.
	Symbols *event.Symbols
	// Results holds one Result per engine, in engine order.
	Results []*Result
	// Duration is the wall-clock time for this entry: load + all engines.
	Duration time.Duration
	// Err is the load error, or the context error for canceled entries.
	Err error
}

// AnalyzeCorpus fans a corpus of traces out across Jobs(jobs) pool workers
// and streams one CorpusResult per entry over the returned channel as
// entries complete (completion order, not input order). Within one entry
// the engines run serially — parallelism comes from analyzing many traces
// at once; use RunAll to parallelize the engines over a single trace.
//
// The channel is closed once no more entries will be delivered. While the
// context is live, every entry is delivered exactly once. After
// cancellation the stream winds down: in-flight entries are delivered or
// dropped depending on whether the consumer is still receiving, so workers
// never block on an abandoned channel, and the channel still closes.
func AnalyzeCorpus(ctx context.Context, corpus []Source, engines []Engine, jobs int) <-chan CorpusResult {
	ch := make(chan CorpusResult)
	go func() {
		defer close(ch)
		runPool(Jobs(jobs), len(corpus), func(i int) {
			if ctx.Err() != nil {
				return
			}
			select {
			case ch <- analyzeSource(ctx, i, corpus[i], engines):
			case <-ctx.Done():
			}
		})
	}()
	return ch
}

func analyzeSource(ctx context.Context, i int, src Source, engines []Engine) CorpusResult {
	res := CorpusResult{Index: i, Name: src.Name}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	start := time.Now()
	if src.Open != nil && len(engines) > 0 && CanStream(engines) {
		if analyzeSourceStreaming(ctx, src, engines, &res) {
			res.Duration = time.Since(start)
			return res
		}
		// The source cannot be streamed (e.g. a text trace without up-front
		// dimensions): fall through to the materializing path.
	}
	tr, err := src.Load()
	if err != nil {
		res.Err = err
		res.Duration = time.Since(start)
		return res
	}
	res.Stats = trace.ComputeStats(tr)
	res.Symbols = tr.Symbols
	res.Results = make([]*Result, len(engines))
	for j, e := range engines {
		if err := ctx.Err(); err != nil {
			res.Results[j] = &Result{Engine: e.Name(), RacyEvents: -1, FirstRace: -1, Err: err}
			continue
		}
		res.Results[j] = e.Analyze(tr)
	}
	res.Duration = time.Since(start)
	return res
}

// analyzeSourceStreaming analyzes src block by block, one fresh stream per
// engine, so the trace is never materialized. It reports false — leaving res
// untouched — when the source's stream does not declare its dimensions up
// front (the caller then falls back to materializing). Every engine must
// implement StreamAnalyzer (checked by the caller via CanStream).
func analyzeSourceStreaming(ctx context.Context, src Source, engines []Engine, res *CorpusResult) bool {
	// The dimension probe doubles as the first engine's stream: a binary
	// header (symbol tables included) is decoded once per engine, never an
	// extra time.
	st, err := src.Open()
	if err != nil {
		res.Err = err
		return true
	}
	if _, known := st.Dims(); !known {
		st.Close()
		return false
	}
	res.Results = make([]*Result, len(engines))
	for j, e := range engines {
		if st == nil {
			if st, err = src.Open(); err != nil {
				res.Results[j] = &Result{Engine: e.Name(), RacyEvents: -1, FirstRace: -1, Err: err}
				continue
			}
		}
		if err := ctx.Err(); err != nil {
			// The stream is unconsumed; keep it for the next engine.
			res.Results[j] = &Result{Engine: e.Name(), RacyEvents: -1, FirstRace: -1, Err: err}
			continue
		}
		r, err := e.(StreamAnalyzer).AnalyzeStream(ctx, st)
		if err != nil {
			res.Results[j] = &Result{Engine: e.Name(), RacyEvents: -1, FirstRace: -1, Err: err}
		} else {
			res.Results[j] = r
			if res.Symbols == nil {
				// The stream is fully drained: its tally is the whole trace.
				res.Stats = st.Stats()
				res.Symbols = st.Symbols()
			}
		}
		st.Close()
		st = nil
	}
	if st != nil {
		st.Close()
	}
	return true
}

// AnalyzeFiles is AnalyzeCorpus over trace files (text or binary format,
// auto-detected). Files are read inside the pool workers.
func AnalyzeFiles(ctx context.Context, paths []string, engines []Engine, jobs int) <-chan CorpusResult {
	corpus := make([]Source, len(paths))
	for i, p := range paths {
		corpus[i] = FileSource(p)
	}
	return AnalyzeCorpus(ctx, corpus, engines, jobs)
}
