package engine

import (
	"context"
	"io"

	"repro/internal/trace"
	"repro/internal/traceio"
)

// BlockProcessor is the detector side of the streaming pipeline: the WCP and
// HB detectors consume whole structure-of-arrays blocks.
type BlockProcessor interface {
	ProcessBlock(b *trace.Block)
}

// drivePipelined pumps the stream through proc with decode and analysis
// overlapped: a dedicated goroutine decodes the next block into one of two
// reusable SoA buffers while the caller's goroutine runs the detector over
// the other (double buffering). Memory stays O(block); the decoder goroutine
// always terminates — it exits when the free-buffer channel closes, and its
// sends never block because the output channel has room for every buffer in
// flight.
//
// A canceled context stops the drive at the next block boundary: at most
// one more block is decoded (the one already in flight), no further blocks
// reach proc, the decoder goroutine is reaped, and ctx.Err() is returned.
func drivePipelined(ctx context.Context, st *traceio.Stream, proc BlockProcessor) error {
	type decoded struct {
		b   *trace.Block
		n   int
		err error
	}
	free := make(chan *trace.Block, 2)
	out := make(chan decoded, 2)
	free <- trace.NewBlock(traceio.DefaultBlockSize)
	free <- trace.NewBlock(traceio.DefaultBlockSize)

	go func() {
		defer close(out)
		for b := range free {
			n, err := st.NextBlockSoA(b)
			out <- decoded{b: b, n: n, err: err}
			if err != nil {
				return
			}
		}
	}()

	var err error
	for d := range out {
		if err = ctx.Err(); err != nil {
			break
		}
		if d.n > 0 {
			proc.ProcessBlock(d.b)
		}
		if d.err != nil {
			if d.err != io.EOF {
				err = d.err
			}
			break
		}
		free <- d.b
	}
	// Stop the decoder (it may be blocked receiving a free buffer) and let
	// it finish; out is buffered, so its final sends cannot block.
	close(free)
	for range out {
	}
	return err
}
