package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/trace"
	"repro/internal/traceio"
)

func TestJobs(t *testing.T) {
	if got := Jobs(3); got != 3 {
		t.Errorf("Jobs(3) = %d", got)
	}
	if got := Jobs(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Jobs(0) = %d, want GOMAXPROCS", got)
	}
	if got := Jobs(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Jobs(-1) = %d, want GOMAXPROCS", got)
	}
}

// TestMapOrder checks that Map returns results in item order even when
// later items finish first.
func TestMapOrder(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), 8, items, func(_ context.Context, i, item int) (int, error) {
		// Earlier items sleep longer, so completion order is roughly
		// reversed; the output must still be in input order.
		time.Sleep(time.Duration(len(items)-i) * 10 * time.Microsecond)
		return item * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 2*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, 2*i)
		}
	}
}

// TestMapError checks that one failing item doesn't stop the others and
// that its error surfaces in the joined error.
func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	out, err := Map(context.Background(), 4, []int{0, 1, 2, 3, 4, 5}, func(_ context.Context, i, item int) (int, error) {
		ran.Add(1)
		if item == 3 {
			return 0, boom
		}
		return item, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if ran.Load() != 6 {
		t.Fatalf("ran %d items, want all 6", ran.Load())
	}
	if out[5] != 5 {
		t.Fatalf("later items should still produce results, got %v", out)
	}
}

// TestMapCancel checks that cancellation marks unstarted items with the
// context error instead of hanging.
func TestMapCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 100)
	var started atomic.Int64
	_, err := Map(ctx, 2, items, func(ctx context.Context, i, _ int) (int, error) {
		if started.Add(1) == 2 {
			cancel()
		}
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started.Load() == int64(len(items)) {
		t.Error("cancellation did not skip any item")
	}
}

func poolCorpus(n int) ([]Source, []*trace.Trace) {
	corpus := make([]Source, n)
	traces := make([]*trace.Trace, n)
	for i := range corpus {
		tr := gen.Random(gen.RandomConfig{Seed: int64(i + 1), Events: 500, Threads: 4, Locks: 3, Vars: 8})
		traces[i] = tr
		corpus[i] = TraceSource(fmt.Sprintf("trace-%d", i), tr)
	}
	return corpus, traces
}

// TestAnalyzeCorpus checks that every corpus entry is reported exactly
// once with results for every engine, and that Index identifies entries
// across the completion-ordered stream.
func TestAnalyzeCorpus(t *testing.T) {
	const n = 12
	corpus, traces := poolCorpus(n)
	engines := []Engine{MustNew("wcp", Config{}), MustNew("hb", Config{})}
	seen := make(map[int]CorpusResult)
	for res := range AnalyzeCorpus(context.Background(), corpus, engines, 4) {
		if _, dup := seen[res.Index]; dup {
			t.Fatalf("entry %d reported twice", res.Index)
		}
		seen[res.Index] = res
	}
	if len(seen) != n {
		t.Fatalf("got %d results, want %d", len(seen), n)
	}
	for i := 0; i < n; i++ {
		res := seen[i]
		if res.Err != nil {
			t.Fatalf("entry %d: %v", i, res.Err)
		}
		if res.Name != fmt.Sprintf("trace-%d", i) {
			t.Errorf("entry %d named %q", i, res.Name)
		}
		if res.Stats.Events != traces[i].Len() {
			t.Errorf("entry %d: stats report %d events, trace has %d", i, res.Stats.Events, traces[i].Len())
		}
		if len(res.Results) != len(engines) {
			t.Fatalf("entry %d: %d engine results, want %d", i, len(res.Results), len(engines))
		}
		for j, er := range res.Results {
			if er.Engine != engines[j].Name() {
				t.Errorf("entry %d result %d is %q, want %q", i, j, er.Engine, engines[j].Name())
			}
		}
		// Both engines ran over the same trace: HB races ⊆ WCP races.
		if wcp, hb := res.Results[0].Distinct(), res.Results[1].Distinct(); hb > wcp {
			t.Errorf("entry %d: hb found %d pairs, wcp only %d", i, hb, wcp)
		}
	}
}

// TestAnalyzeCorpusDeterministic checks that the per-entry results don't
// depend on pool width or scheduling.
func TestAnalyzeCorpusDeterministic(t *testing.T) {
	corpus, _ := poolCorpus(8)
	engines := All(Config{})
	distinct := func(jobs int) map[int][]int {
		out := make(map[int][]int)
		for res := range AnalyzeCorpus(context.Background(), corpus, engines, jobs) {
			if res.Err != nil {
				t.Fatalf("entry %d: %v", res.Index, res.Err)
			}
			var counts []int
			for _, er := range res.Results {
				counts = append(counts, er.Distinct(), er.RacyEvents)
			}
			out[res.Index] = counts
		}
		return out
	}
	serial, parallel := distinct(1), distinct(0)
	for i, want := range serial {
		got := parallel[i]
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("entry %d: serial %v vs parallel %v", i, want, got)
			}
		}
	}
}

// TestAnalyzeCorpusCancel checks that cancellation winds the stream down:
// no duplicates, no hangs, the channel closes, and entries claimed after
// the cancellation are skipped.
func TestAnalyzeCorpusCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 50
	corpus := make([]Source, n)
	for i := range corpus {
		corpus[i] = Source{Name: fmt.Sprintf("slow-%d", i), Load: func() (*trace.Trace, error) {
			time.Sleep(2 * time.Millisecond)
			return gen.Random(gen.RandomConfig{Seed: 1, Events: 200, Threads: 3, Locks: 2, Vars: 4}), nil
		}}
	}
	engines := []Engine{MustNew("hb-epoch", Config{})}
	seen := map[int]bool{}
	got := 0
	for res := range AnalyzeCorpus(ctx, corpus, engines, 2) {
		if seen[res.Index] {
			t.Fatalf("entry %d delivered twice", res.Index)
		}
		seen[res.Index] = true
		got++
		if got == 3 {
			cancel()
		}
	}
	if got < 3 || got == n {
		t.Fatalf("stream delivered %d of %d entries; cancellation after 3 should stop well short", got, n)
	}
}

// TestAnalyzeCorpusAbandoned checks that a consumer that cancels and walks
// away without draining does not leak pool workers: the workers stop
// instead of blocking forever on the undrained channel.
func TestAnalyzeCorpusAbandoned(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	const n = 40
	corpus := make([]Source, n)
	for i := range corpus {
		corpus[i] = Source{Name: fmt.Sprintf("slow-%d", i), Load: func() (*trace.Trace, error) {
			time.Sleep(time.Millisecond)
			return gen.Random(gen.RandomConfig{Seed: 1, Events: 100, Threads: 2, Locks: 1, Vars: 2}), nil
		}}
	}
	ch := AnalyzeCorpus(ctx, corpus, []Engine{MustNew("hb-epoch", Config{})}, 4)
	<-ch
	cancel() // and never read ch again
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("pool goroutines leaked: %d before, %d after abandonment", before, runtime.NumGoroutine())
}

// TestAnalyzeCorpusLoadError checks that a failing loader surfaces as that
// entry's Err without disturbing the rest of the batch.
func TestAnalyzeCorpusLoadError(t *testing.T) {
	boom := errors.New("corrupt trace")
	corpus, _ := poolCorpus(3)
	corpus[1] = Source{Name: "bad", Load: func() (*trace.Trace, error) { return nil, boom }}
	engines := []Engine{MustNew("wcp", Config{})}
	failures, successes := 0, 0
	for res := range AnalyzeCorpus(context.Background(), corpus, engines, 2) {
		if res.Err != nil {
			failures++
			if !errors.Is(res.Err, boom) {
				t.Errorf("entry %d: err = %v, want %v", res.Index, res.Err, boom)
			}
		} else {
			successes++
		}
	}
	if failures != 1 || successes != 2 {
		t.Fatalf("failures=%d successes=%d, want 1/2", failures, successes)
	}
}

// TestAnalyzeFiles round-trips a small corpus through real files in both
// trace formats.
func TestAnalyzeFiles(t *testing.T) {
	dir := t.TempDir()
	_, traces := poolCorpus(2)
	paths := make([]string, len(traces))
	for i, tr := range traces {
		paths[i] = fmt.Sprintf("%s/trace%d", dir, i)
		f, err := os.Create(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			err = traceio.WriteText(f, tr)
		} else {
			err = traceio.WriteBinary(f, tr)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	engines := []Engine{MustNew("wcp", Config{})}
	want := map[string]int{}
	for i, tr := range traces {
		want[paths[i]] = engines[0].Analyze(tr).Distinct()
	}
	got := 0
	for res := range AnalyzeFiles(context.Background(), paths, engines, 0) {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Name, res.Err)
		}
		got++
		if d := res.Results[0].Distinct(); d != want[res.Name] {
			t.Errorf("%s: %d pairs from file, %d in memory", res.Name, d, want[res.Name])
		}
	}
	if got != len(paths) {
		t.Fatalf("analyzed %d files, want %d", got, len(paths))
	}
}
