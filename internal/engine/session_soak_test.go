package engine

import (
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/event"
	"repro/internal/gen"
	"repro/internal/trace"
)

// The soak battery streams a synthetic "infinite" workload through one
// compacting session and asserts that the detector's state estimate and the
// process heap stay flat: thread churn (a worker generation joined
// mid-run), variable churn (write bands sliding across the variable space),
// and rendezvous phases that raise the domination floor so retired state is
// actually reclaimable.
//
// The default event count is sized to keep tier-1 `go test ./...` fast;
// SOAK_EVENTS overrides it for the real soak (the documented run streams
// 100M+ events per engine; CI runs 1M).

func soakEvents(t *testing.T, def int) int {
	t.Helper()
	s := os.Getenv("SOAK_EVENTS")
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		t.Fatalf("bad SOAK_EVENTS %q: %v", s, err)
	}
	return n
}

// soakWorkload generates the churn workload block by block. Threads 1..T-1
// are forked up front; the first half of the workers is joined at the
// midpoint of the run (thread churn). Each live worker writes a private
// K-variable band whose position cycles with the phase (variable churn),
// reads one popular variable of the previous phase (inflating shared read
// state), and rendezvouses through a single lock with a protected write
// (advancing every clock past the previous phase, so the floor rises and
// the previous phase's state becomes dominated). The trace is race-free by
// construction.
type soakWorkload struct {
	threads, vars int
	bandK         int
	phases        int
	phase         int
	forked        bool
	joined        bool
	loc           event.Loc
}

const (
	soakThreads = 64
	soakBandK   = 16
	soakPhases  = 4
)

func newSoakWorkload() *soakWorkload {
	return &soakWorkload{
		threads: soakThreads,
		bandK:   soakBandK,
		phases:  soakPhases,
		// One band per worker per phase, plus the protected rendezvous
		// variable at the very end of the space.
		vars: soakPhases*soakThreads*soakBandK + 1,
	}
}

// nextBlock appends one phase worth of events to b (reset first) and
// reports how many events it produced. join is whether the first worker
// generation should be retired before this phase.
func (w *soakWorkload) nextBlock(b *trace.Block, join bool) int {
	b.Reset()
	app := func(k event.Kind, t, obj int) {
		// Cycle through a bounded set of program locations, like a real
		// trace: the pair-tracking engines key per-variable access cells by
		// Loc, so an unbounded loc space would grow hot variables forever.
		w.loc = (w.loc + 1) % 1024
		b.AppendFields(k, event.TID(t), int32(obj), w.loc)
	}
	if !w.forked {
		w.forked = true
		for t := 1; t < w.threads; t++ {
			app(event.Fork, 0, t)
		}
	}
	if join && !w.joined {
		w.joined = true
		for t := 1; t < w.threads/2; t++ {
			app(event.Join, 0, t)
		}
	}
	firstWorker := 1
	if w.joined {
		firstWorker = w.threads / 2
	}
	base := (w.phase % w.phases) * w.threads * w.bandK
	prev := ((w.phase + w.phases - 1) % w.phases) * w.threads * w.bandK
	rendezvous := w.vars - 1
	lock := 0
	for t := firstWorker; t < w.threads; t++ {
		for j := 0; j < w.bandK; j++ {
			app(event.Write, t, base+t*w.bandK+j)
		}
		if w.phase > 0 {
			// Popular read: every worker reads the same variable of the
			// previous phase, ordered by the rendezvous below.
			app(event.Read, t, prev+firstWorker*w.bandK)
		}
	}
	// Two rendezvous rounds: after them every live clock dominates every
	// time published in this phase, so the phase's bands can be retired.
	for round := 0; round < 2; round++ {
		for t := 0; t < w.threads; t++ {
			if t >= firstWorker || t == 0 {
				app(event.Acquire, t, lock)
				app(event.Write, t, rendezvous)
				app(event.Release, t, lock)
			}
		}
	}
	w.phase++
	return b.Len()
}

// highWater returns the maximum of samples[from:to].
func highWater(samples []int, from, to int) int {
	m := 0
	for _, v := range samples[from:to] {
		if v > m {
			m = v
		}
	}
	return m
}

func runSoak(t *testing.T, name string, total int) {
	e := MustNew(name, Config{}).(SessionEngine)
	w := newSoakWorkload()
	s := e.NewSession(w.threads, 1, w.vars)
	s.(CompactableSession).SetCompactPolicy(CompactPolicy{EveryEvents: 1 << 16})
	b := trace.NewBlock(1 << 14)

	const samples = 16
	stateHW := make([]int, 0, samples)
	heapHW := make([]int, 0, samples)
	stride := total / samples
	nextSample := stride
	var ms runtime.MemStats
	done := 0
	for done < total {
		done += w.nextBlock(b, done > total/2)
		s.ProcessBlock(b)
		if done >= nextSample && len(stateHW) < samples {
			nextSample += stride
			s.(CompactableSession).Compact()
			stateHW = append(stateHW, s.(CompactableSession).StateBytes())
			runtime.GC()
			runtime.ReadMemStats(&ms)
			heapHW = append(heapHW, int(ms.HeapAlloc))
		}
	}
	r := s.Finish()
	if r.RacyEvents != 0 {
		t.Fatalf("%s: soak workload is race-free by construction, got %d racy events", name, r.RacyEvents)
	}
	if len(stateHW) < samples/2 {
		t.Fatalf("%s: too few samples (%d)", name, len(stateHW))
	}
	n := len(stateHW)
	// Flatness: the high-water of the second half must not exceed the
	// post-warmup first-half high-water by more than the slack factors.
	// Unbounded retention (a leak, or compaction failing to retire state)
	// grows linearly in the event count and blows well past these.
	warmState, lateState := highWater(stateHW, 1, n/2), highWater(stateHW, n/2, n)
	if lateState > warmState+warmState/2 {
		t.Errorf("%s: state size not flat: early high-water %d, late %d (samples %v)",
			name, warmState, lateState, stateHW)
	}
	warmHeap, lateHeap := highWater(heapHW, 1, n/2), highWater(heapHW, n/2, n)
	if lateHeap > 2*warmHeap {
		t.Errorf("%s: heap not flat: early high-water %d, late %d (samples %v)",
			name, warmHeap, lateHeap, heapHW)
	}
	t.Logf("%s: %d events, state high-water %d bytes (early %d), heap high-water %d (early %d)",
		name, done, lateState, warmState, lateHeap, warmHeap)
}

// TestSoakBoundedMemory is the scaled-down default soak; set SOAK_EVENTS to
// stream the full-length run (e.g. SOAK_EVENTS=100000000).
func TestSoakBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	for _, name := range sessionEngineNames {
		name := name
		t.Run(name, func(t *testing.T) {
			def := 1 << 21
			if name == "wcp" || name == "hb" {
				def = 1 << 20 // pair-tracking engines are slower per event
			}
			runSoak(t, name, soakEvents(t, def))
		})
	}
}

// TestSessionTeardownReleasesArena pins the stale-session leak fix: when an
// hb-epoch session is finished (the same path eviction takes), every
// read-vector clock it inflated must be back in the arena freelist, not
// pinned by the detector's variable table.
func TestSessionTeardownReleasesArena(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Threads: 12, Locks: 4, Vars: 40, Events: 20000, ForkJoin: true, Seed: 77})
	e := MustNew("hb-epoch", Config{}).(SessionEngine)
	s := e.NewSession(tr.NumThreads(), tr.NumLocks(), tr.NumVars())
	s.ProcessBlock(tr.SoA())
	hs, ok := s.(*hbSession)
	if !ok {
		t.Fatalf("hb-epoch session has type %T", s)
	}
	arena := hs.d.Arena()
	if arena.Allocs() == 0 {
		t.Fatalf("workload inflated no read vectors; the test exercises nothing")
	}
	s.Finish()
	if got, want := arena.Free(), arena.Allocs(); got != want {
		t.Fatalf("finished session pins arena clocks: %d of %d in freelist", got, want)
	}
	// Finish must be idempotent with respect to the arena accounting.
	s.Finish()
	if got, want := arena.Free(), arena.Allocs(); got != want {
		t.Fatalf("double finish corrupts arena accounting: %d of %d in freelist", got, want)
	}
}
