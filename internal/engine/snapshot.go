package engine

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/hb"
	"repro/internal/snap"
)

// This file wires bounded-memory sessions through the engine layer: a
// compaction policy the server can hang on any sessionable engine, and the
// Snapshot/Restore pair that serializes a whole session (engine identity,
// accumulated busy time, detector state) into one checksummed snap frame.

// CompactPolicy triggers detector state compaction on a session. The zero
// value disables compaction entirely.
type CompactPolicy struct {
	// EveryEvents compacts every that many processed events (rounded up to
	// block boundaries). Zero with a nonzero BudgetBytes checks the byte
	// budget at a default cadence instead.
	EveryEvents int
	// BudgetBytes, when nonzero, makes the cadence conditional: the session
	// compacts only when its detector's state-byte estimate exceeds the
	// budget.
	BudgetBytes int
}

// budgetCheckEvents is the cadence at which a budget-only policy samples
// the state size: cheap relative to the work of processing that many
// events, frequent enough to catch growth promptly.
const budgetCheckEvents = 1 << 20

type compactor interface {
	Compact()
	StateBytes() int
}

// compactState is the per-session compaction throttle. Its hot-path cost
// is one integer add and compare per block.
type compactState struct {
	policy CompactPolicy
	since  int
}

func (c *compactState) due(events int) bool {
	if c.policy == (CompactPolicy{}) {
		return false
	}
	c.since += events
	every := c.policy.EveryEvents
	if every <= 0 {
		every = budgetCheckEvents
	}
	return c.since >= every
}

func (c *compactState) run(d compactor) {
	c.since = 0
	if b := c.policy.BudgetBytes; b > 0 && d.StateBytes() <= b {
		return
	}
	d.Compact()
}

// CompactableSession is a Session whose detector supports state compaction
// (wcp, wcp-epoch, hb, hb-epoch).
type CompactableSession interface {
	Session
	// Compact retires dominated detector state immediately.
	Compact()
	// SetCompactPolicy installs (or replaces) the session's compaction
	// policy; the zero policy disables compaction.
	SetCompactPolicy(CompactPolicy)
	// StateBytes estimates the detector's retained state size.
	StateBytes() int
}

// SnapshotSession is a Session that can serialize its full state as one
// versioned, checksummed frame, restorable with RestoreSession.
type SnapshotSession interface {
	Session
	Snapshot(w io.Writer) error
}

func (s *wcpSession) Compact()                         { s.d.Compact() }
func (s *wcpSession) SetCompactPolicy(p CompactPolicy) { s.compact.policy = p }
func (s *wcpSession) StateBytes() int                  { return s.d.StateBytes() }

func (s *hbSession) Compact()                         { s.d.Compact() }
func (s *hbSession) SetCompactPolicy(p CompactPolicy) { s.compact.policy = p }
func (s *hbSession) StateBytes() int                  { return s.d.StateBytes() }

// maxSnapName bounds the engine-name string in a session frame.
const maxSnapName = 64

// Snapshot writes the session as one snap frame: engine name, accumulated
// busy time, then the detector payload.
func (s *wcpSession) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.String(s.name)
	sw.Uvarint(uint64(s.busy))
	if err := s.d.EncodeSnapshot(sw); err != nil {
		return err
	}
	return sw.Close()
}

// Snapshot writes the session as one snap frame: engine name, accumulated
// busy time, then the detector payload.
func (s *hbSession) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.String(s.name)
	sw.Uvarint(uint64(s.busy))
	if err := s.d.EncodeSnapshot(sw); err != nil {
		return err
	}
	return sw.Close()
}

// RestoreSession reads one session frame from r and reconstructs the
// session, returning it with its engine name. The restored session resumes
// exactly where the snapshot was taken: feeding it the remaining blocks of
// the trace yields a Result byte-identical to an uninterrupted run. Decode
// failures are *snap.DecodeError (or an underlying read error); a clean EOF
// before the frame starts returns io.EOF.
func RestoreSession(r io.Reader) (Session, string, error) {
	rd, err := snap.NewReader(r)
	if err != nil {
		return nil, "", err
	}
	name, err := rd.String(maxSnapName)
	if err != nil {
		return nil, "", err
	}
	busyNS, err := rd.Uvarint()
	if err != nil {
		return nil, "", err
	}
	busy := time.Duration(busyNS)
	var sess Session
	switch name {
	case "wcp", "wcp-epoch":
		epoch := name == "wcp-epoch"
		d, err := core.DecodeSnapshot(rd)
		if err != nil {
			return nil, "", err
		}
		if want := (wcpEngine{epoch: epoch}).options(); d.Options() != want {
			return nil, "", &snap.DecodeError{Reason: "detector options do not match engine " + name}
		}
		sess = &wcpSession{name: name, epoch: epoch, d: d, busy: busy}
	case "hb", "hb-epoch":
		epoch := name == "hb-epoch"
		d, err := hb.DecodeSnapshot(rd)
		if err != nil {
			return nil, "", err
		}
		if want := (hbEngine{epoch: epoch}).options(); d.Options() != want {
			return nil, "", &snap.DecodeError{Reason: "detector options do not match engine " + name}
		}
		sess = &hbSession{name: name, epoch: epoch, d: d, busy: busy}
	default:
		return nil, "", &snap.DecodeError{Reason: "unknown engine " + name}
	}
	if err := rd.Close(); err != nil {
		return nil, "", err
	}
	return sess, name, nil
}
