package engine

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/gen"
	"repro/internal/snap"
	"repro/internal/trace"
)

// FuzzSnapshotRoundTrip throws arbitrary bytes at the session decoder. The
// contract under attack: RestoreSession either fails with a typed
// *snap.DecodeError (or a plain read error such as io.EOF) or succeeds —
// and on success the restored session's own snapshot must be byte-identical
// to the input, so no hostile payload can smuggle in state that the encoder
// would not itself produce. It must never panic.
//
// The seed corpus is real snapshots from all four sessionable engines at a
// few points in a fork/join-heavy trace, plus targeted mutations
// (truncation, version skew); the fuzzer takes it from there with bit
// flips, splices, and length games.
func FuzzSnapshotRoundTrip(f *testing.F) {
	tr := gen.Random(gen.RandomConfig{Threads: 6, Locks: 3, Vars: 8, Events: 2500, ForkJoin: true, Seed: 5})
	for _, name := range sessionEngineNames {
		e := MustNew(name, Config{}).(SessionEngine)
		s := e.NewSession(tr.NumThreads(), tr.NumLocks(), tr.NumVars())
		for i := 0; i < len(tr.Events); i += 500 {
			end := i + 500
			if end > len(tr.Events) {
				end = len(tr.Events)
			}
			s.ProcessBlock(trace.BlockOf(tr.Events[i:end]))
			var buf bytes.Buffer
			if err := s.(SnapshotSession).Snapshot(&buf); err != nil {
				f.Fatalf("%s: snapshot: %v", name, err)
			}
			b := buf.Bytes()
			f.Add(b)
			if len(b) > 8 {
				f.Add(b[:len(b)/2]) // truncated frame
				skew := append([]byte(nil), b...)
				skew[4]++ // version byte after the magic
				f.Add(skew)
				flip := append([]byte(nil), b...)
				flip[len(flip)/3] ^= 0x40 // payload bit flip
				f.Add(flip)
			}
			compact := s
			compact.(CompactableSession).Compact()
			s = compact
		}
	}
	f.Add([]byte{})
	f.Add([]byte("rpsn"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, _, err := RestoreSession(bytes.NewReader(data))
		if err != nil {
			var de *snap.DecodeError
			if !errors.As(err, &de) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("untyped decode failure: %v", err)
			}
			return
		}
		var again bytes.Buffer
		if err := s.(SnapshotSession).Snapshot(&again); err != nil {
			t.Fatalf("resnap of accepted payload failed: %v", err)
		}
		if !bytes.Equal(again.Bytes(), data) {
			t.Fatalf("accepted non-canonical payload: resnap %d bytes, input %d bytes",
				again.Len(), len(data))
		}
	})
}
