package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hb"
	"repro/internal/trace"
	"repro/internal/vc"
)

// This file pins the windowed-clock representation (vc.WC dirty windows,
// generation join caches) to the dense reference: every engine and every
// detector option combination must produce byte-identical results whether
// clocks are windowed (the default) or forced dense (vc.ForceDense, the
// plain full-width representation with no windows and full spans). Any
// window undercoverage, stale join cache, or span-packing bug in the queue
// records shows up as a divergence here.

// clockModeTraces is the workload mix: the randomized shapes of the SoA
// suite, plus the high-thread-count scenario shapes (including T=256, where
// the windowed representation actually diverges from dense in what it
// touches) with and without races.
func clockModeTraces(t *testing.T) map[string]*trace.Trace {
	t.Helper()
	traces := map[string]*trace.Trace{}
	for i, cfg := range []gen.RandomConfig{
		{Threads: 2, Locks: 1, Vars: 2},
		{Threads: 3, Locks: 3, Vars: 8, ForkJoin: true},
		{Threads: 5, Locks: 4, Vars: 6, ForkJoin: true},
		{Threads: 9, Locks: 5, Vars: 10, ForkJoin: true},
		{Threads: 16, Locks: 8, Vars: 12, ForkJoin: true},
	} {
		cfg.Events = 900
		cfg.Seed = int64(31*i + 7)
		traces["random/"+itoa(i)+"/T"+itoa(cfg.Threads)] = gen.Random(cfg)
	}
	for _, shape := range gen.ThreadScalingShapes {
		for _, threads := range []int{8, 64, 256} {
			cfg := gen.ThreadScalingConfig{Threads: threads, Events: 6000, Shape: shape, Races: 4}
			traces[shape+"/T"+itoa(threads)] = gen.ThreadScaling(cfg)
			if threads == 256 {
				cfg.Races = 0
				traces[shape+"/T256/racefree"] = gen.ThreadScaling(cfg)
			}
		}
	}
	for _, name := range []string{"account", "bubblesort", "mergesort"} {
		bench, ok := gen.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		traces["bench/"+name] = bench.Generate(1.0)
	}
	return traces
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// withDense runs f with vc.ForceDense in effect.
func withDense(f func()) {
	vc.ForceDense(true)
	defer vc.ForceDense(false)
	f()
}

// TestEnginesWindowedMatchesDense runs all seven engines over every
// workload twice — windowed clocks and forced-dense clocks — and requires
// identical results, including the exact distinct race-pair sets.
func TestEnginesWindowedMatchesDense(t *testing.T) {
	engines := All(Config{Window: 120, Budget: 3000})
	for name, tr := range clockModeTraces(t) {
		for _, e := range engines {
			windowed := e.Analyze(tr)
			var dense *Result
			withDense(func() { dense = e.Analyze(tr) })
			if !resultsEqual(windowed, dense) {
				t.Fatalf("%s: engine %s diverges between windowed and dense clocks:\nwindowed %s\ndense    %s",
					name, e.Name(), summarize(windowed), summarize(dense))
			}
		}
	}
}

// TestWCPDetectorWindowedMatchesDense pins the WCP detector option
// combinations — including CollectTimestamps, whose per-event Ce/He vectors
// must be byte-identical, the strongest possible pin on the clock contents.
func TestWCPDetectorWindowedMatchesDense(t *testing.T) {
	for name, tr := range clockModeTraces(t) {
		collect := tr.NumThreads() <= 64 // O(N·T) memory; skip the giants
		opts := []core.Options{
			{},
			{TrackPairs: true},
			{EpochCheck: true},
		}
		if collect {
			opts = append(opts, core.Options{CollectTimestamps: true})
		}
		for _, o := range opts {
			windowed := core.DetectOpts(tr, o)
			var dense *core.Result
			withDense(func() { dense = core.DetectOpts(tr, o) })
			if windowed.RacyEvents != dense.RacyEvents ||
				windowed.FirstRace != dense.FirstRace ||
				windowed.QueueMaxTotal != dense.QueueMaxTotal ||
				!reportsEqual(windowed.Report, dense.Report) {
				t.Fatalf("%s: WCP %+v diverges: racy %d/%d first %d/%d queue %d/%d",
					name, o, windowed.RacyEvents, dense.RacyEvents,
					windowed.FirstRace, dense.FirstRace,
					windowed.QueueMaxTotal, dense.QueueMaxTotal)
			}
			if o.CollectTimestamps {
				for i := range windowed.Times {
					if !windowed.Times[i].Equal(dense.Times[i]) ||
						!windowed.HBTimes[i].Equal(dense.HBTimes[i]) {
						t.Fatalf("%s: WCP timestamps diverge at event %d: %v vs %v / %v vs %v",
							name, i, windowed.Times[i], dense.Times[i],
							windowed.HBTimes[i], dense.HBTimes[i])
					}
				}
			}
		}
	}
}

// TestHBDetectorWindowedMatchesDense pins the HB detector option
// combinations, exercising both the per-variable access caches (vector
// mode, no pairs) and the pair-tracking path that bypasses them.
func TestHBDetectorWindowedMatchesDense(t *testing.T) {
	for name, tr := range clockModeTraces(t) {
		for _, o := range []hb.Options{{}, {TrackPairs: true}, {Epoch: true}} {
			windowed := hb.DetectOpts(tr, o)
			var dense *hb.Result
			withDense(func() { dense = hb.DetectOpts(tr, o) })
			if windowed.RacyEvents != dense.RacyEvents ||
				windowed.FirstRace != dense.FirstRace ||
				!reportsEqual(windowed.Report, dense.Report) {
				t.Fatalf("%s: HB %+v diverges: racy %d/%d first %d/%d",
					name, o, windowed.RacyEvents, dense.RacyEvents,
					windowed.FirstRace, dense.FirstRace)
			}
		}
	}
}
