package engine

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hb"
	"repro/internal/race"
	"repro/internal/trace"
)

// soaShapes is the randomized trace mix the SoA equivalence properties run
// over: varied thread/lock/variable universes, with and without fork/join.
func soaShapes(t *testing.T) []*trace.Trace {
	t.Helper()
	shapes := []gen.RandomConfig{
		{Threads: 2, Locks: 1, Vars: 2},
		{Threads: 3, Locks: 2, Vars: 3},
		{Threads: 3, Locks: 3, Vars: 8, ForkJoin: true},
		{Threads: 4, Locks: 2, Vars: 4},
		{Threads: 5, Locks: 4, Vars: 6, ForkJoin: true},
		{Threads: 8, Locks: 5, Vars: 10, ForkJoin: true},
	}
	var traces []*trace.Trace
	for i, cfg := range shapes {
		for round := 0; round < 4; round++ {
			cfg.Events = 400 + 150*round
			cfg.Seed = int64(i*101 + round*977 + 5)
			traces = append(traces, gen.Random(cfg))
		}
	}
	return traces
}

// TestSoAViewByteIdentical asserts the structure-of-arrays cursor yields
// exactly the legacy event sequence: every materialized event equals its
// Events counterpart, in order, for every generated trace.
func TestSoAViewByteIdentical(t *testing.T) {
	for ti, tr := range soaShapes(t) {
		soa := tr.SoA()
		if soa.Len() != len(tr.Events) {
			t.Fatalf("trace %d: SoA has %d events, want %d", ti, soa.Len(), len(tr.Events))
		}
		cur := soa.Cursor()
		for i, want := range tr.Events {
			if got := soa.At(i); got != want {
				t.Fatalf("trace %d: SoA event %d = %v, want %v", ti, i, got, want)
			}
			if !cur.Next() || cur.Index() != i || cur.Event() != want {
				t.Fatalf("trace %d: cursor diverged at event %d", ti, i)
			}
		}
		if cur.Next() {
			t.Fatalf("trace %d: cursor yields events past the end", ti)
		}
		// Round trip: materializing the block reproduces the slice.
		back := soa.Events()
		for i := range back {
			if back[i] != tr.Events[i] {
				t.Fatalf("trace %d: round-tripped event %d differs", ti, i)
			}
		}
	}
}

// reportsEqual compares two race reports pair-for-pair.
func reportsEqual(a, b *race.Report) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Distinct() != b.Distinct() {
		return false
	}
	for _, p := range a.Pairs() {
		if !b.Has(p.A, p.B) {
			return false
		}
	}
	return true
}

// resultsEqual compares the engine-independent fields of two results.
func resultsEqual(a, b *Result) bool {
	return a.RacyEvents == b.RacyEvents &&
		a.FirstRace == b.FirstRace &&
		a.QueueMaxTotal == b.QueueMaxTotal &&
		a.Windows == b.Windows &&
		a.Warnings == b.Warnings &&
		reportsEqual(a.Report, b.Report)
}

// TestSoAEnginesMatchLegacyEventPath asserts, for all seven engines, that
// analysis over the SoA view reports exactly the races of the legacy
// event-slice path.
//
// For the streaming detectors (wcp, wcp-epoch, hb, hb-epoch) the legacy
// path is the per-event Process loop over tr.Events, compared against the
// block path the engines now use. For the windowed/materialized baselines
// (cp, predict, lockset) the SoA cursor is their ingestion path; the legacy
// comparison analyzes a second trace whose event slice is materialized from
// the SoA view, so any divergence between the two representations would
// show up as differing reports.
func TestSoAEnginesMatchLegacyEventPath(t *testing.T) {
	engines := All(Config{Window: 120, Budget: 3000})
	for ti, tr := range soaShapes(t) {
		// Detector-level equivalence: Process-per-event vs ProcessBlock.
		for _, opts := range []core.Options{{TrackPairs: true}, {EpochCheck: true}} {
			legacy := core.NewDetector(tr.NumThreads(), tr.NumLocks(), tr.NumVars(), opts)
			for _, e := range tr.Events {
				legacy.Process(e)
			}
			soa := core.NewDetector(tr.NumThreads(), tr.NumLocks(), tr.NumVars(), opts)
			soa.ProcessBlock(tr.SoA())
			lr, sr := legacy.Result(), soa.Result()
			if lr.RacyEvents != sr.RacyEvents || lr.FirstRace != sr.FirstRace ||
				lr.QueueMaxTotal != sr.QueueMaxTotal || !reportsEqual(lr.Report, sr.Report) {
				t.Fatalf("trace %d: WCP (epoch=%v) SoA path diverges: racy %d/%d first %d/%d queue %d/%d",
					ti, opts.EpochCheck, lr.RacyEvents, sr.RacyEvents, lr.FirstRace, sr.FirstRace,
					lr.QueueMaxTotal, sr.QueueMaxTotal)
			}
		}
		for _, opts := range []hb.Options{{TrackPairs: true}, {Epoch: true}} {
			legacy := hb.NewDetector(tr.NumThreads(), tr.NumLocks(), tr.NumVars(), opts)
			for _, e := range tr.Events {
				legacy.Process(e)
			}
			soa := hb.NewDetector(tr.NumThreads(), tr.NumLocks(), tr.NumVars(), opts)
			soa.ProcessBlock(tr.SoA())
			lr, sr := legacy.Result(), soa.Result()
			if lr.RacyEvents != sr.RacyEvents || lr.FirstRace != sr.FirstRace ||
				!reportsEqual(lr.Report, sr.Report) {
				t.Fatalf("trace %d: HB (epoch=%v) SoA path diverges", ti, opts.Epoch)
			}
		}

		// Engine-level equivalence over a trace rebuilt from the SoA view.
		rebuilt := &trace.Trace{Events: tr.SoA().Events(), Symbols: tr.Symbols}
		for _, e := range engines {
			got := e.Analyze(tr)
			want := e.Analyze(rebuilt)
			if !resultsEqual(got, want) {
				t.Fatalf("trace %d: engine %s diverges between SoA and rebuilt trace:\n got %s\nwant %s",
					ti, e.Name(), summarize(got), summarize(want))
			}
		}
	}
}

func summarize(r *Result) string {
	return fmt.Sprintf("racy=%d first=%d queue=%d windows=%d warnings=%d distinct=%d",
		r.RacyEvents, r.FirstRace, r.QueueMaxTotal, r.Windows, r.Warnings, r.Distinct())
}
