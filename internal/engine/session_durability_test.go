package engine

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/trace"
)

// This file pins the bounded-memory session machinery to the
// straight-through baseline: a session that compacts aggressively, or that
// is serialized and restored at arbitrary block boundaries (or both), must
// produce results — including the formatted race report, byte for byte —
// identical to an uninterrupted, never-compacted run of the same engine
// over the same trace.

// sessionEngineNames are the engines with full session durability support.
var sessionEngineNames = []string{"wcp", "wcp-epoch", "hb", "hb-epoch"}

// runPlain streams tr through a fresh session in fixed-size blocks with no
// compaction and no snapshotting.
func runPlain(t *testing.T, name string, tr *trace.Trace, blockSize int) *Result {
	t.Helper()
	e := MustNew(name, Config{}).(SessionEngine)
	s := e.NewSession(tr.NumThreads(), tr.NumLocks(), tr.NumVars())
	for i := 0; i < len(tr.Events); i += blockSize {
		end := i + blockSize
		if end > len(tr.Events) {
			end = len(tr.Events)
		}
		s.ProcessBlock(trace.BlockOf(tr.Events[i:end]))
	}
	return s.Finish()
}

// runDurable streams tr through a session with the given compaction policy,
// snapshotting and restoring the session at each block boundary listed in
// restoreAt (indices into the block sequence).
func runDurable(t *testing.T, name string, tr *trace.Trace, blockSize int,
	policy CompactPolicy, restoreAt map[int]bool) *Result {
	t.Helper()
	e := MustNew(name, Config{}).(SessionEngine)
	s := e.NewSession(tr.NumThreads(), tr.NumLocks(), tr.NumVars())
	s.(CompactableSession).SetCompactPolicy(policy)
	block := 0
	for i := 0; i < len(tr.Events); i += blockSize {
		end := i + blockSize
		if end > len(tr.Events) {
			end = len(tr.Events)
		}
		s.ProcessBlock(trace.BlockOf(tr.Events[i:end]))
		block++
		if restoreAt[block] {
			var buf bytes.Buffer
			if err := s.(SnapshotSession).Snapshot(&buf); err != nil {
				t.Fatalf("%s: snapshot at block %d: %v", name, block, err)
			}
			restored, gotName, err := RestoreSession(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s: restore at block %d: %v", name, block, err)
			}
			if gotName != name {
				t.Fatalf("restore returned engine %q, want %q", gotName, name)
			}
			restored.(CompactableSession).SetCompactPolicy(policy)
			s = restored
		}
	}
	return s.Finish()
}

// requireIdentical fails unless the two results match in every
// engine-independent field and their formatted reports are byte-identical.
func requireIdentical(t *testing.T, label string, tr *trace.Trace, got, want *Result) {
	t.Helper()
	if !resultsEqual(got, want) {
		t.Fatalf("%s: results diverge:\n got %s\nwant %s", label, summarize(got), summarize(want))
	}
	if got.Report != nil {
		g, w := got.Report.Format(tr.Symbols), want.Report.Format(tr.Symbols)
		if g != w {
			t.Fatalf("%s: formatted reports differ:\n got:\n%s\nwant:\n%s", label, g, w)
		}
	}
}

// durabilityTraces is a trimmed clockModeTraces mix: randomized shapes plus
// thread-scaling scenarios with enough fork/join and lock churn to make
// compaction actually retire threads, variables, and locks.
func durabilityTraces(t *testing.T) map[string]*trace.Trace {
	t.Helper()
	traces := map[string]*trace.Trace{}
	for i, cfg := range []gen.RandomConfig{
		{Threads: 2, Locks: 1, Vars: 2},
		{Threads: 3, Locks: 3, Vars: 8, ForkJoin: true},
		{Threads: 5, Locks: 4, Vars: 6, ForkJoin: true},
		{Threads: 9, Locks: 5, Vars: 10, ForkJoin: true},
		{Threads: 16, Locks: 8, Vars: 12, ForkJoin: true},
	} {
		cfg.Events = 900
		cfg.Seed = int64(41*i + 3)
		traces["random/"+itoa(i)+"/T"+itoa(cfg.Threads)] = gen.Random(cfg)
	}
	for _, shape := range gen.ThreadScalingShapes {
		for _, threads := range []int{8, 64} {
			cfg := gen.ThreadScalingConfig{Threads: threads, Events: 6000, Shape: shape, Races: 4}
			traces[shape+"/T"+itoa(threads)] = gen.ThreadScaling(cfg)
		}
	}
	for _, name := range []string{"account", "mergesort"} {
		bench, ok := gen.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		traces["bench/"+name] = bench.Generate(1.0)
	}
	return traces
}

// TestCompactedSessionsMatchStraightThrough runs every sessionable engine
// with an aggressive compaction policy (compact after every block) against
// the never-compacted baseline.
func TestCompactedSessionsMatchStraightThrough(t *testing.T) {
	const blockSize = 256
	for tn, tr := range durabilityTraces(t) {
		for _, name := range sessionEngineNames {
			want := runPlain(t, name, tr, blockSize)
			got := runDurable(t, name, tr, blockSize, CompactPolicy{EveryEvents: 1}, nil)
			requireIdentical(t, name+"/"+tn+"/compacted", tr, got, want)

			// Budget-gated policy: compaction fires only above the byte
			// budget; a tiny budget means it always fires, a huge one never.
			got = runDurable(t, name, tr, blockSize, CompactPolicy{EveryEvents: 1, BudgetBytes: 1}, nil)
			requireIdentical(t, name+"/"+tn+"/budget-tiny", tr, got, want)
			got = runDurable(t, name, tr, blockSize, CompactPolicy{EveryEvents: 1, BudgetBytes: 1 << 40}, nil)
			requireIdentical(t, name+"/"+tn+"/budget-huge", tr, got, want)
		}
	}
}

// TestSnapshotRestoreMatchesStraightThrough serializes and restores each
// session at randomly chosen block boundaries — with and without compaction
// in the mix — and requires the final result to match the uninterrupted run.
func TestSnapshotRestoreMatchesStraightThrough(t *testing.T) {
	const blockSize = 256
	rng := rand.New(rand.NewSource(99))
	for tn, tr := range durabilityTraces(t) {
		blocks := (len(tr.Events) + blockSize - 1) / blockSize
		restoreAt := map[int]bool{}
		for i := 1; i <= blocks; i++ {
			if rng.Intn(4) == 0 {
				restoreAt[i] = true
			}
		}
		restoreAt[blocks] = true // always exercise a snapshot of the final state
		for _, name := range sessionEngineNames {
			want := runPlain(t, name, tr, blockSize)
			got := runDurable(t, name, tr, blockSize, CompactPolicy{}, restoreAt)
			requireIdentical(t, name+"/"+tn+"/restored", tr, got, want)

			got = runDurable(t, name, tr, blockSize, CompactPolicy{EveryEvents: 1}, restoreAt)
			requireIdentical(t, name+"/"+tn+"/compact+restored", tr, got, want)
		}
	}
}

// TestSnapshotResnapByteIdentical pins the canonical-payload property the
// fuzz target relies on: snapshotting a just-restored session reproduces
// the original snapshot byte for byte, at every block boundary.
func TestSnapshotResnapByteIdentical(t *testing.T) {
	const blockSize = 512
	tr := gen.Random(gen.RandomConfig{Threads: 7, Locks: 4, Vars: 9, Events: 4000, ForkJoin: true, Seed: 12})
	for _, name := range sessionEngineNames {
		e := MustNew(name, Config{}).(SessionEngine)
		s := e.NewSession(tr.NumThreads(), tr.NumLocks(), tr.NumVars())
		for i := 0; i < len(tr.Events); i += blockSize {
			end := i + blockSize
			if end > len(tr.Events) {
				end = len(tr.Events)
			}
			s.ProcessBlock(trace.BlockOf(tr.Events[i:end]))
			var first bytes.Buffer
			if err := s.(SnapshotSession).Snapshot(&first); err != nil {
				t.Fatalf("%s: snapshot: %v", name, err)
			}
			restored, _, err := RestoreSession(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("%s: restore: %v", name, err)
			}
			var second bytes.Buffer
			if err := restored.(SnapshotSession).Snapshot(&second); err != nil {
				t.Fatalf("%s: resnap: %v", name, err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("%s: resnap differs at event %d (%d vs %d bytes)",
					name, end, first.Len(), second.Len())
			}
			s = restored
		}
	}
}
