package gen

import (
	"fmt"

	"repro/internal/trace"
)

// This file generates the high-thread-count workloads behind the
// BenchmarkThreadScaling matrix: traces whose interesting parameter is the
// thread count T (64…1024), the regime a long-running analysis daemon
// actually sees, which the Table-1 equivalents (T ≤ 14) never reach.
//
// Three shapes cover the clock-locality spectrum:
//
//   - "pools": worker threads are partitioned into fixed-size pools, each
//     pool synchronizing only through its own locks and touching only its
//     own variables (disjoint lock neighborhoods). Every clock's support
//     stays O(pool size), the best case for windowed clocks.
//   - "forkjoin": the coordinator forks waves of fresh workers, each wave
//     does thread-local work and is joined before the next wave starts.
//     Clock support grows along the wave structure, not with T.
//   - "hotlock": every worker synchronizes through one global lock. All
//     clocks converge to full support — the windowed representation's
//     worst case, which must degrade gracefully to dense behavior.
//
// All names are preallocated before emission: the generator hot loop
// performs no string formatting.

// ThreadScalingConfig parameterizes ThreadScaling.
type ThreadScalingConfig struct {
	// Threads is the total thread count T including the coordinator
	// (thread 0), which forks and joins the workers.
	Threads int
	// Events is the approximate trace length (fork/join scaffolding
	// included).
	Events int
	// Shape is "pools" (default), "forkjoin" or "hotlock".
	Shape string
	// PoolSize is the number of threads per pool for the pools shape
	// (default 8).
	PoolSize int
	// Waves is the number of fork/join waves for the forkjoin shape
	// (default 4); each wave forks (T-1)/Waves fresh workers.
	Waves int
	// Races sprinkles this many distinct unprotected write-write race
	// pairs (between neighboring workers) through the trace; 0 keeps it
	// race-free.
	Races int
}

// ThreadScalingShapes lists the supported shapes.
var ThreadScalingShapes = []string{"pools", "forkjoin", "hotlock"}

// tsNames is the preallocated name universe of one ThreadScaling run.
type tsNames struct {
	thread     []string // t0 .. t{T-1}
	lock       []string // per pool (or the single hot lock)
	variable   []string // per pool-local variable
	rloc, wloc []string // per worker: its access locations
	raceVar    []string // per race site
	raceALoc   []string
	raceBLoc   []string
}

func buildTSNames(cfg ThreadScalingConfig, pools, varsPerPool int) *tsNames {
	n := &tsNames{
		thread:   make([]string, cfg.Threads),
		lock:     make([]string, pools),
		variable: make([]string, pools*varsPerPool),
		rloc:     make([]string, cfg.Threads),
		wloc:     make([]string, cfg.Threads),
		raceVar:  make([]string, cfg.Races),
		raceALoc: make([]string, cfg.Races),
		raceBLoc: make([]string, cfg.Races),
	}
	for i := range n.thread {
		n.thread[i] = fmt.Sprintf("t%d", i)
	}
	for i := range n.lock {
		n.lock[i] = fmt.Sprintf("pool%d.l", i)
	}
	for i := range n.variable {
		n.variable[i] = fmt.Sprintf("pool%d.x%d", i/varsPerPool, i%varsPerPool)
	}
	for i := range n.rloc {
		n.rloc[i] = fmt.Sprintf("pc.t%d.r", i)
		n.wloc[i] = fmt.Sprintf("pc.t%d.w", i)
	}
	for k := 0; k < cfg.Races; k++ {
		n.raceVar[k] = fmt.Sprintf("tsrace_%d", k)
		n.raceALoc[k] = fmt.Sprintf("ts.race%d.a", k)
		n.raceBLoc[k] = fmt.Sprintf("ts.race%d.b", k)
	}
	return n
}

// ThreadScaling generates one thread-scaling trace. Generation is
// deterministic in the config.
func ThreadScaling(cfg ThreadScalingConfig) *trace.Trace {
	if cfg.Threads < 2 {
		cfg.Threads = 2
	}
	if cfg.Events <= 0 {
		cfg.Events = 100 * cfg.Threads
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 8
	}
	if cfg.Waves <= 0 {
		cfg.Waves = 4
	}
	switch cfg.Shape {
	case "", "pools":
		return tsPools(cfg)
	case "forkjoin":
		return tsForkJoin(cfg)
	case "hotlock":
		return tsHotLock(cfg)
	default:
		panic(fmt.Sprintf("gen.ThreadScaling: unknown shape %q", cfg.Shape))
	}
}

// tsCS emits one critical section of worker wi (thread index) on lock l
// around variable v: acquire, read, write, release — 4 events.
func tsCS(b *trace.Builder, n *tsNames, wi int, lock, variable string) {
	t := n.thread[wi]
	b.Acquire(t, lock)
	b.At(n.rloc[wi]).Read(t, variable)
	b.At(n.wloc[wi]).Write(t, variable)
	b.Release(t, lock)
}

// tsRace emits race site k as one contiguous unprotected write-write block
// between workers w1 and w2 (distinct threads, no synchronization between
// the two accesses).
func tsRace(b *trace.Builder, n *tsNames, k, w1, w2 int) {
	b.At(n.raceALoc[k]).Write(n.thread[w1], n.raceVar[k])
	b.At(n.raceBLoc[k]).Write(n.thread[w2], n.raceVar[k])
}

// raceDue spaces race sites evenly: site k becomes due at unit
// (2k+1)·units/(2·races), so all sites land strictly inside the unit loop
// regardless of rounding.
func raceDue(k, units, races int) int {
	if races <= 0 {
		return 1 << 30
	}
	return (2*k + 1) * units / (2 * races)
}

// tsPools: workers are partitioned into pools of PoolSize threads; each
// unit cycles one worker through a critical section on its pool's lock and
// one of the pool's variables. Pools never synchronize with each other
// after the initial forks.
func tsPools(cfg ThreadScalingConfig) *trace.Trace {
	workers := cfg.Threads - 1
	pools := (workers + cfg.PoolSize - 1) / cfg.PoolSize
	const varsPerPool = 4
	n := buildTSNames(cfg, pools, varsPerPool)
	b := trace.NewBuilder()
	for i := 1; i < cfg.Threads; i++ {
		b.Fork(n.thread[0], n.thread[i])
	}
	units := (cfg.Events - 2*(cfg.Threads-1)) / 4
	raced := 0
	for u := 0; u < units; u++ {
		wi := 1 + u%workers
		pool := (wi - 1) / cfg.PoolSize
		v := (u / workers) % varsPerPool
		tsCS(b, n, wi, n.lock[pool], n.variable[pool*varsPerPool+v])
		if raced < cfg.Races && u >= raceDue(raced, units, cfg.Races) && workers > 1 {
			// Race between wi and a neighboring worker (same pool when it
			// has one; a cross-pool neighbor races just the same).
			w2 := wi + 1
			if w2 > workers {
				w2 = wi - 1
			}
			tsRace(b, n, raced, wi, w2)
			raced++
		}
	}
	for i := 1; i < cfg.Threads; i++ {
		b.Join(n.thread[0], n.thread[i])
	}
	return b.MustBuild()
}

// tsForkJoin: the coordinator forks Waves batches of fresh workers; each
// batch does thread-local critical sections (its own lock universe — one
// lock per wave shared by the batch, creating intra-wave ordering) and is
// joined before the next wave.
func tsForkJoin(cfg ThreadScalingConfig) *trace.Trace {
	workers := cfg.Threads - 1
	waves := cfg.Waves
	if waves > workers {
		waves = workers
	}
	n := buildTSNames(cfg, waves, 1)
	b := trace.NewBuilder()
	perWave := workers / waves
	extra := workers % waves
	unitsTotal := (cfg.Events - 2*workers) / 4
	if unitsTotal < workers {
		unitsTotal = workers
	}
	// Race sites can only be emitted in waves with at least two workers;
	// schedule them over those waves' units so none lands in a
	// single-worker wave and gets dropped.
	waveUnits := unitsTotal / waves
	racyUnits := 0
	for w := 0; w < waves; w++ {
		batch := perWave
		if w < extra {
			batch++
		}
		if batch > 1 {
			racyUnits += waveUnits
		}
	}
	raced, racySeen := 0, 0
	next := 1 // next unforked worker thread index
	for w := 0; w < waves; w++ {
		batch := perWave
		if w < extra {
			batch++
		}
		if batch == 0 {
			continue
		}
		lo := next
		for i := 0; i < batch; i++ {
			b.Fork(n.thread[0], n.thread[next])
			next++
		}
		// Each wave runs its share of the work, round-robin over the batch.
		for u := 0; u < waveUnits; u++ {
			wi := lo + u%batch
			tsCS(b, n, wi, n.lock[w], n.variable[w])
			if batch > 1 {
				if raced < cfg.Races && racySeen >= raceDue(raced, racyUnits, cfg.Races) {
					w2 := wi + 1
					if w2 >= lo+batch {
						w2 = lo
					}
					tsRace(b, n, raced, wi, w2)
					raced++
				}
				racySeen++
			}
		}
		for i := lo; i < lo+batch; i++ {
			b.Join(n.thread[0], n.thread[i])
		}
	}
	return b.MustBuild()
}

// tsHotLock: every worker synchronizes through one global lock around one
// global variable — full contention, full-support clocks.
func tsHotLock(cfg ThreadScalingConfig) *trace.Trace {
	workers := cfg.Threads - 1
	n := buildTSNames(cfg, 1, 1)
	b := trace.NewBuilder()
	for i := 1; i < cfg.Threads; i++ {
		b.Fork(n.thread[0], n.thread[i])
	}
	units := (cfg.Events - 2*(cfg.Threads-1)) / 4
	raced := 0
	for u := 0; u < units; u++ {
		wi := 1 + u%workers
		tsCS(b, n, wi, n.lock[0], n.variable[0])
		if raced < cfg.Races && u >= raceDue(raced, units, cfg.Races) && workers > 1 {
			w2 := wi + 1
			if w2 > workers {
				w2 = 1
			}
			tsRace(b, n, raced, wi, w2)
			raced++
		}
	}
	for i := 1; i < cfg.Threads; i++ {
		b.Join(n.thread[0], n.thread[i])
	}
	return b.MustBuild()
}
