package gen

import (
	"fmt"

	"repro/internal/trace"
)

// LowerBound builds the Figure-8 trace family behind Theorems 4 and 5 (the
// linear space lower bound): the membership problem for
// Ln = {uv : u, v ∈ {0,1}ⁿ, u = v} reduced to WCP race detection.
//
// Thread t1 runs n critical sections over locks b_i = ℓ_{u[i]}, handshaking
// with t2's chain of critical sections on lock m via the acrl(y) pattern of
// Figure 6; t2 writes z inside its final m section. Thread t3 then runs n
// critical sections over locks c_j = ℓ_{v[j]} interleaved with m sections,
// and writes z at the end.
//
// The two w(z) events are WCP-ordered iff u = v: each matching bit extends
// the rule-(a)/rule-(b) chain one link further, and any mismatched bit
// breaks it. Consequently any one-pass WCP algorithm must effectively
// remember u, and Algorithm 1's queues on lock m grow linearly in n
// (asserted by the lower-bound tests and measured by the space bench).
//
// u and v must have equal, positive length.
func LowerBound(u, v []bool) *trace.Trace {
	if len(u) == 0 || len(u) != len(v) {
		panic(fmt.Sprintf("gen.LowerBound: need equal positive lengths, got %d and %d", len(u), len(v)))
	}
	n := len(u)
	bit := func(x bool) string {
		if x {
			return "L1"
		}
		return "L0"
	}
	b := trace.NewBuilder()

	// Phase 0 (lines 1–6 of Figure 8).
	b.At("f8.t1.acq.0").Acquire("t1", bit(u[0]))
	b.At("f8.t1.wx").Write("t1", "x")
	b.Acquire("t2", "m")
	b.AcRel("t2", "y")
	b.AcRel("t1", "y")
	b.At("f8.t1.rel.0").Release("t1", bit(u[0]))

	// Phases 1..n-1 (lines 7–14, 15–22, ... of Figure 8).
	for i := 1; i < n; i++ {
		b.At(fmt.Sprintf("f8.t1.acq.%d", i)).Acquire("t1", bit(u[i]))
		b.AcRel("t1", "y")
		b.AcRel("t2", "y")
		b.Release("t2", "m")
		b.Acquire("t2", "m")
		b.AcRel("t2", "y")
		b.AcRel("t1", "y")
		b.At(fmt.Sprintf("f8.t1.rel.%d", i)).Release("t1", bit(u[i]))
	}

	// Lines 23–24: t2 writes z inside its final critical section on m, so
	// the rule-(b) chain over the m releases carries the write's time.
	b.At("f8.t2.wz").Write("t2", "z")
	b.Release("t2", "m")

	// Thread t3 (lines 25–38).
	for j := 0; j < n; j++ {
		b.At(fmt.Sprintf("f8.t3.acq.%d", j)).Acquire("t3", bit(v[j]))
		if j == 0 {
			b.At("f8.t3.wx").Write("t3", "x")
		}
		b.At(fmt.Sprintf("f8.t3.rel.%d", j)).Release("t3", bit(v[j]))
		b.Acquire("t3", "m")
		b.Release("t3", "m")
	}
	b.At("f8.t3.wz").Write("t3", "z")
	return b.MustBuild()
}

// BitsFromUint packs the low n bits of x (most significant first) into a
// bool slice, for enumerating LowerBound inputs in tests.
func BitsFromUint(x uint64, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = x&(1<<uint(n-1-i)) != 0
	}
	return out
}
