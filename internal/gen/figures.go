package gen

import "repro/internal/trace"

// This file transcribes the paper's example traces (Figures 1–6) exactly,
// with one program location per line so race pairs map back to figure line
// numbers. Tests assert the paper's stated verdict for each figure against
// HB, CP (closure), WCP (closure and streaming), and — where the paper
// claims a predictable race or deadlock — the predictive search engine.

// Figure1a is the trace of Figure 1(a): two write-containing critical
// sections on one lock. No predictable race; HB and WCP agree.
func Figure1a() *trace.Trace {
	b := trace.NewBuilder()
	b.At("f1a.1").Acquire("t1", "l")
	b.At("f1a.2").Read("t1", "x")
	b.At("f1a.3").Write("t1", "x")
	b.At("f1a.4").Release("t1", "l")
	b.At("f1a.5").Acquire("t2", "l")
	b.At("f1a.6").Read("t2", "x")
	b.At("f1a.7").Write("t2", "x")
	b.At("f1a.8").Release("t2", "l")
	return b.MustBuild()
}

// Figure1b is the trace of Figure 1(b): the critical sections can be
// swapped, exposing a predictable race on y that HB misses and WCP finds.
func Figure1b() *trace.Trace {
	b := trace.NewBuilder()
	b.At("f1b.1").Write("t1", "y")
	b.At("f1b.2").Acquire("t1", "l")
	b.At("f1b.3").Read("t1", "x")
	b.At("f1b.4").Release("t1", "l")
	b.At("f1b.5").Acquire("t2", "l")
	b.At("f1b.6").Read("t2", "x")
	b.At("f1b.7").Release("t2", "l")
	b.At("f1b.8").Read("t2", "y")
	return b.MustBuild()
}

// Figure2a is the trace of Figure 2(a): no predictable race (the r(x) must
// follow the w(x)); CP and WCP both stay silent.
func Figure2a() *trace.Trace {
	b := trace.NewBuilder()
	b.At("f2a.1").Write("t1", "y")
	b.At("f2a.2").Acquire("t1", "l")
	b.At("f2a.3").Write("t1", "x")
	b.At("f2a.4").Release("t1", "l")
	b.At("f2a.5").Acquire("t2", "l")
	b.At("f2a.6").Read("t2", "x")
	b.At("f2a.7").Read("t2", "y")
	b.At("f2a.8").Release("t2", "l")
	return b.MustBuild()
}

// Figure2b is the trace of Figure 2(b): lines 6 and 7 of Figure 2(a)
// swapped. There is a predictable race on y (witness e5, e6, e1); CP misses
// it because it ignores in-critical-section event order, WCP finds it.
func Figure2b() *trace.Trace {
	b := trace.NewBuilder()
	b.At("f2b.1").Write("t1", "y")
	b.At("f2b.2").Acquire("t1", "l")
	b.At("f2b.3").Write("t1", "x")
	b.At("f2b.4").Release("t1", "l")
	b.At("f2b.5").Acquire("t2", "l")
	b.At("f2b.6").Read("t2", "y")
	b.At("f2b.7").Read("t2", "x")
	b.At("f2b.8").Release("t2", "l")
	return b.MustBuild()
}

// Figure3 is the trace of Figure 3, demonstrating the weakening of rule
// (b): CP reports no race; WCP reports the race between r(z) (line 3) and
// w(z) (line 12), witnessed by e1 e2 e10 e11 e3 e12.
func Figure3() *trace.Trace {
	b := trace.NewBuilder()
	b.At("f3.1").Acquire("t1", "l")
	b.Sync("t1", "x") // line 2
	b.At("f3.3").Read("t1", "z")
	b.At("f3.4").Release("t1", "l")
	b.Sync("t2", "x") // line 5
	b.At("f3.6").Acquire("t2", "l")
	b.At("f3.7").Acquire("t2", "n")
	b.At("f3.8").Release("t2", "n")
	b.At("f3.9").Release("t2", "l")
	b.At("f3.10").Acquire("t3", "n")
	b.At("f3.11").Release("t3", "n")
	b.At("f3.12").Write("t3", "z")
	return b.MustBuild()
}

// Figure4 is the trace of Figure 4: a 3-thread predictable race on z that
// WCP detects and CP does not.
func Figure4() *trace.Trace {
	b := trace.NewBuilder()
	b.At("f4.1").Acquire("t1", "l")
	b.At("f4.2").Acquire("t1", "m")
	b.At("f4.3").Release("t1", "m")
	b.At("f4.4").Read("t1", "z")
	b.At("f4.5").Release("t1", "l")
	b.At("f4.6").Acquire("t2", "m")
	b.At("f4.7").Acquire("t2", "n")
	b.Sync("t2", "x") // line 8
	b.At("f4.9").Release("t2", "n")
	b.At("f4.10").Release("t2", "m")
	b.At("f4.11").Acquire("t3", "n")
	b.At("f4.12").Acquire("t3", "l")
	b.At("f4.13").Release("t3", "l")
	b.Sync("t3", "x") // line 14
	b.At("f4.15").Write("t3", "z")
	b.At("f4.16").Release("t3", "n")
	return b.MustBuild()
}

// Figure5 is the trace of Figure 5: WCP flags r(z)/w(z), and soundly so —
// there is no predictable race, but there is a predictable deadlock
// involving all three threads (reordering e1, e6, e10).
func Figure5() *trace.Trace {
	b := trace.NewBuilder()
	b.At("f5.1").Acquire("t1", "l")
	b.At("f5.2").Acquire("t1", "m")
	b.At("f5.3").Release("t1", "m")
	b.At("f5.4").Read("t1", "z")
	b.At("f5.5").Release("t1", "l")
	b.At("f5.6").Acquire("t2", "m")
	b.At("f5.7").Acquire("t2", "n")
	b.Sync("t2", "x") // line 8
	b.At("f5.9").Release("t2", "n")
	b.At("f5.10").Acquire("t3", "n")
	b.At("f5.11").Acquire("t3", "l")
	b.At("f5.12").Release("t3", "l")
	b.Sync("t3", "x") // line 13
	b.At("f5.14").Write("t3", "z")
	b.At("f5.15").Release("t3", "n")
	b.Sync("t3", "y") // line 16
	b.Sync("t2", "y") // line 17
	b.At("f5.18").Release("t2", "m")
	return b.MustBuild()
}

// Figure6 is the trace of Figure 6, the example motivating Algorithm 1's
// release-time clocks and FIFO queues. The two w(x) events (lines 2 and 17)
// are WCP-ordered by rule (a); the rel(m) events (lines 10 and 20) become
// ordered by rule (b).
func Figure6() *trace.Trace {
	b := trace.NewBuilder()
	b.At("f6.1").Acquire("t1", "l0")
	b.At("f6.2").Write("t1", "x")
	b.At("f6.3").Acquire("t2", "m")
	b.AcRel("t2", "y") // line 4
	b.AcRel("t1", "y") // line 5
	b.At("f6.6").Release("t1", "l0")
	b.At("f6.7").Acquire("t1", "l1")
	b.AcRel("t1", "y") // line 8
	b.AcRel("t2", "y") // line 9
	b.At("f6.10").Release("t2", "m")
	b.At("f6.11").Acquire("t2", "m")
	b.AcRel("t2", "y") // line 12
	b.AcRel("t1", "y") // line 13
	b.At("f6.14").Release("t1", "l1")
	b.At("f6.15").Release("t2", "m")
	b.At("f6.16").Acquire("t3", "l0")
	b.At("f6.17").Write("t3", "x")
	b.At("f6.18").Release("t3", "l0")
	b.At("f6.19").Acquire("t3", "m")
	b.At("f6.20").Release("t3", "m")
	b.At("f6.21").Acquire("t3", "l1")
	b.At("f6.22").Release("t3", "l1")
	b.At("f6.23").Acquire("t3", "m")
	b.At("f6.24").Release("t3", "m")
	return b.MustBuild()
}
