// Package gen generates the traces this repository is evaluated on:
//
//   - Random: well-formed random traces for property-based testing;
//   - Benchmark.Generate: deterministic synthetic equivalents of the 18
//     Table-1 benchmarks (see DESIGN.md §8, Substitutions — we do not have
//     the paper's RVPredict logs of the Java programs, so each workload is
//     engineered to reproduce that benchmark's *shape*: thread/lock counts,
//     HB and WCP distinct-race-pair counts, far-apart races, queue growth);
//   - LowerBound: the Figure-8 trace family behind the linear-space lower
//     bound (Theorems 4–5).
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// RandomConfig parameterizes Random.
type RandomConfig struct {
	Threads int // number of threads (>= 1)
	Locks   int // size of the lock pool
	Vars    int // size of the variable pool
	Events  int // approximate number of events to generate
	Seed    int64
	// ForkJoin adds fork events from thread 0 to every other thread up
	// front and join events at the end.
	ForkJoin bool
	// PAcquire, PRelease, PWrite are relative weights for action selection;
	// zero values get defaults (3, 4, 5 with reads at 5).
	PAcquire, PRelease, PWrite int
}

// Random generates a well-formed random trace: lock semantics and
// well-nestedness hold by construction, and no thread ever re-acquires a
// lock it already holds (the paper's trace model has no same-lock
// reentrancy). Generation is deterministic in the seed.
func Random(cfg RandomConfig) *trace.Trace {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Vars < 1 {
		cfg.Vars = 1
	}
	pAcq, pRel, pW := cfg.PAcquire, cfg.PRelease, cfg.PWrite
	if pAcq == 0 {
		pAcq = 3
	}
	if pRel == 0 {
		pRel = 4
	}
	if pW == 0 {
		pW = 5
	}
	const pR = 5

	rng := rand.New(rand.NewSource(cfg.Seed))
	b := trace.NewBuilder()
	threads := make([]string, cfg.Threads)
	for i := range threads {
		threads[i] = fmt.Sprintf("t%d", i)
	}

	holder := make([]int, cfg.Locks) // -1 free, else thread index
	for i := range holder {
		holder[i] = -1
	}
	stacks := make([][]int, cfg.Threads) // per-thread held-lock stacks

	// With ForkJoin, thread 0 forks the others at staggered points and
	// joins some of them early, so traces exercise pre-fork parent events,
	// parent/child concurrency and post-join events.
	forked := make([]bool, cfg.Threads)
	joined := make([]bool, cfg.Threads)
	forkAt := make([]int, cfg.Threads)
	joinAt := make([]int, cfg.Threads)
	forked[0] = true
	for i := 1; i < cfg.Threads; i++ {
		if cfg.ForkJoin {
			forkAt[i] = cfg.Events * i / (2 * cfg.Threads)
			joinAt[i] = cfg.Events*2/3 + cfg.Events*i/(3*cfg.Threads)
		} else {
			forked[i] = true
			joinAt[i] = cfg.Events * 2 // never during the loop
		}
	}
	// forceRelease closes every open critical section of thread t (needed
	// before a join and at the end of the trace).
	forceRelease := func(t int) {
		for len(stacks[t]) > 0 {
			l := stacks[t][len(stacks[t])-1]
			stacks[t] = stacks[t][:len(stacks[t])-1]
			holder[l] = -1
			b.Release(threads[t], lockName(l))
		}
	}

	for b.Len() < cfg.Events {
		if cfg.ForkJoin {
			progressed := false
			for i := 1; i < cfg.Threads; i++ {
				if !forked[i] && b.Len() >= forkAt[i] {
					b.Fork(threads[0], threads[i])
					forked[i] = true
					progressed = true
				}
				if forked[i] && !joined[i] && b.Len() >= joinAt[i] {
					forceRelease(i)
					b.Join(threads[0], threads[i])
					joined[i] = true
					progressed = true
				}
			}
			if progressed {
				continue
			}
		}
		t := rng.Intn(cfg.Threads)
		if !forked[t] || joined[t] {
			continue // not alive yet / anymore
		}
		// Candidate locks this thread could acquire: free ones.
		var free []int
		for l, h := range holder {
			if h == -1 {
				free = append(free, l)
			}
		}
		wAcq := 0
		if len(free) > 0 {
			wAcq = pAcq
		}
		wRel := 0
		if len(stacks[t]) > 0 {
			wRel = pRel
		}
		total := wAcq + wRel + pR + pW
		v := rng.Intn(total)
		switch {
		case v < wAcq:
			l := free[rng.Intn(len(free))]
			holder[l] = t
			stacks[t] = append(stacks[t], l)
			b.Acquire(threads[t], lockName(l))
		case v < wAcq+wRel:
			l := stacks[t][len(stacks[t])-1]
			stacks[t] = stacks[t][:len(stacks[t])-1]
			holder[l] = -1
			b.Release(threads[t], lockName(l))
		case v < wAcq+wRel+pR:
			x := rng.Intn(cfg.Vars)
			b.At(accLoc(t, x, "r")).Read(threads[t], varName(x))
		default:
			x := rng.Intn(cfg.Vars)
			b.At(accLoc(t, x, "w")).Write(threads[t], varName(x))
		}
	}
	// Close all open critical sections and join the stragglers.
	for t := range stacks {
		forceRelease(t)
	}
	if cfg.ForkJoin {
		for i := 1; i < cfg.Threads; i++ {
			if forked[i] && !joined[i] {
				b.Join(threads[0], threads[i])
			}
		}
	}
	return b.MustBuild()
}

func lockName(l int) string { return fmt.Sprintf("l%d", l) }
func varName(x int) string  { return fmt.Sprintf("x%d", x) }

// accLoc gives every (thread, variable, kind) a stable program location, so
// random traces exercise the distinct-pair accounting deterministically.
func accLoc(t, x int, kind string) string {
	return fmt.Sprintf("pc.t%d.%s.x%d", t, kind, x)
}
