package gen_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hb"
	"repro/internal/trace"
)

// TestThreadScalingShapes pins that every shape builds a valid trace with
// the requested thread count, the requested approximate length, and the
// requested number of distinct races (found identically by WCP and HB —
// the race blocks are plain unprotected write-write pairs).
func TestThreadScalingShapes(t *testing.T) {
	for _, shape := range gen.ThreadScalingShapes {
		for _, threads := range []int{8, 64, 256} {
			t.Run(fmt.Sprintf("%s/T%d", shape, threads), func(t *testing.T) {
				cfg := gen.ThreadScalingConfig{
					Threads: threads, Events: 20_000, Shape: shape, Races: 5,
				}
				tr := gen.ThreadScaling(cfg)
				if err := trace.Validate(tr); err != nil {
					t.Fatalf("invalid trace: %v", err)
				}
				if got := tr.NumThreads(); got != threads {
					t.Fatalf("NumThreads = %d, want %d", got, threads)
				}
				if tr.Len() < cfg.Events/2 || tr.Len() > cfg.Events*2 {
					t.Fatalf("trace length %d far from target %d", tr.Len(), cfg.Events)
				}
				wcp := core.Detect(tr).Report.Distinct()
				hbRaces := hb.Detect(tr).Report.Distinct()
				if wcp != cfg.Races || hbRaces != cfg.Races {
					t.Fatalf("races: wcp=%d hb=%d, want %d", wcp, hbRaces, cfg.Races)
				}
			})
		}
	}
}

// TestThreadScalingDeterministic pins byte-level determinism: the bench
// matrix and the differential suites rely on regenerating identical traces.
func TestThreadScalingDeterministic(t *testing.T) {
	cfg := gen.ThreadScalingConfig{Threads: 64, Events: 10_000, Shape: "pools", Races: 3}
	a, b := gen.ThreadScaling(cfg), gen.ThreadScaling(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

// TestThreadScalingRaceFree pins that Races=0 generates race-free traces
// for every shape (the perf matrix must measure clock work, not race
// bookkeeping).
func TestThreadScalingRaceFree(t *testing.T) {
	for _, shape := range gen.ThreadScalingShapes {
		tr := gen.ThreadScaling(gen.ThreadScalingConfig{Threads: 32, Events: 8_000, Shape: shape})
		if res := core.DetectOpts(tr, core.Options{}); res.RacyEvents != 0 {
			t.Errorf("%s: WCP found %d racy events in race-free trace", shape, res.RacyEvents)
		}
		if res := hb.DetectOpts(tr, hb.Options{}); res.RacyEvents != 0 {
			t.Errorf("%s: HB found %d racy events in race-free trace", shape, res.RacyEvents)
		}
	}
}
