package gen_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hb"
	"repro/internal/trace"
)

// TestBenchmarkShapes is the Table-1 integration check: every synthetic
// benchmark must be well formed, have the declared thread count, and
// produce exactly the paper's distinct race-pair counts under both HB
// (column 7) and WCP (column 6).
func TestBenchmarkShapes(t *testing.T) {
	for _, b := range gen.Benchmarks {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			tr := b.Generate(1.0)
			if err := trace.Validate(tr); err != nil {
				t.Fatalf("trace not well formed: %v", err)
			}
			if got := tr.NumThreads(); got != b.Threads {
				t.Errorf("threads = %d, want %d", got, b.Threads)
			}
			hbRes := hb.Detect(tr)
			if got := hbRes.Report.Distinct(); got != b.HBRaces {
				t.Errorf("HB distinct race pairs = %d, want %d\n%s",
					got, b.HBRaces, hbRes.Report.Format(tr.Symbols))
			}
			wcpRes := core.Detect(tr)
			if got := wcpRes.Report.Distinct(); got != b.WCPRaces() {
				t.Errorf("WCP distinct race pairs = %d, want %d\n%s",
					got, b.WCPRaces(), wcpRes.Report.Format(tr.Symbols))
			}
			// Every HB pair must also be a WCP pair (≤WCP ⊆ ≤HB).
			for _, p := range hbRes.Report.Pairs() {
				if !wcpRes.Report.Has(p.A, p.B) {
					t.Errorf("HB race pair (%s, %s) not reported by WCP",
						tr.Symbols.LocationName(p.A), tr.Symbols.LocationName(p.B))
				}
			}
		})
	}
}

// TestBenchmarkScaling checks that scale stretches traces without changing
// the race counts (races are structural, filler scales).
func TestBenchmarkScaling(t *testing.T) {
	b, ok := gen.ByName("ftpserver")
	if !ok {
		t.Fatal("ftpserver benchmark missing")
	}
	small := b.Generate(0.5)
	large := b.Generate(2.0)
	if small.Len() >= large.Len() {
		t.Errorf("scaling failed: 0.5x has %d events, 2x has %d", small.Len(), large.Len())
	}
	for _, tr := range []*trace.Trace{small, large} {
		res := core.Detect(tr)
		if got := res.Report.Distinct(); got != b.WCPRaces() {
			t.Errorf("scaled trace (%d events): WCP races = %d, want %d", tr.Len(), got, b.WCPRaces())
		}
	}
}

// TestBenchmarkDeterminism checks Generate is reproducible.
func TestBenchmarkDeterminism(t *testing.T) {
	b, _ := gen.ByName("derby")
	t1 := b.Generate(0.2)
	t2 := b.Generate(0.2)
	if t1.Len() != t2.Len() {
		t.Fatalf("lengths differ: %d vs %d", t1.Len(), t2.Len())
	}
	for i := range t1.Events {
		if t1.Events[i] != t2.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, t1.Events[i], t2.Events[i])
		}
	}
}

// TestFarRaceDistance checks that far races really span more than the
// largest windowing configuration (10K events), the §4.3 property that
// defeats windowed analyses.
func TestFarRaceDistance(t *testing.T) {
	for _, name := range []string{"derby", "eclipse", "lusearch"} {
		b, _ := gen.ByName(name)
		tr := b.Generate(1.0)
		res := core.Detect(tr)
		mid := b.FarRaces / 3
		if got := res.Report.PairsOverDistance(10_000); got < b.FarRaces-mid {
			t.Errorf("%s: races at distance ≥ 10K = %d, want ≥ %d", name, got, b.FarRaces-mid)
		}
		if got := res.Report.PairsOverDistance(gen.MidGap - 500); got < b.FarRaces {
			t.Errorf("%s: races at distance ≥ %d = %d, want ≥ %d", name, gen.MidGap-500, got, b.FarRaces)
		}
		if res.Report.MaxDistance() < gen.FarGap {
			t.Errorf("%s: max race distance = %d, want ≥ %d", name, res.Report.MaxDistance(), gen.FarGap)
		}
	}
}

// TestRandomWellFormed checks the random generator's well-formedness
// guarantee across many seeds and shapes.
func TestRandomWellFormed(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		cfg := gen.RandomConfig{
			Threads:  int(2 + seed%5),
			Locks:    int(seed % 4),
			Vars:     int(1 + seed%3),
			Events:   100,
			Seed:     seed,
			ForkJoin: seed%2 == 0,
		}
		tr := gen.Random(cfg)
		if err := trace.Validate(tr); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
