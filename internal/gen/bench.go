package gen

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/trace"
)

// Benchmark describes one synthetic equivalent of a Table-1 benchmark.
// Generate produces a deterministic trace whose structure reproduces the
// benchmark's measured shape:
//
//   - exactly Threads threads;
//   - HBRaces distinct race pairs detectable by HB (all of them also by
//     WCP), of which FarRaces have their two accesses separated by a quiet
//     gap longer than the largest windowing configuration (the §4.3
//     far-apart races that windowing loses: the paper measures distances of
//     millions of events against 1K–10K windows; we scale both down);
//   - WCPOnlyRaces additional distinct race pairs in the Figure-2(b)
//     pattern: detectable by WCP, invisible to HB (and CP);
//   - filler critical sections: contended sections create WCP
//     rule-(a) edges that keep Algorithm 1's queues drained; independent
//     single-thread sections on fresh locks leak ~2(T−1) queue entries per
//     lock (the per-lock cost underlying Table 1 column 11), emitted in
//     bursts to shape the queue high-water mark.
//
// Lock counts: the paper's lock counts (column 5) are recorded in Locks,
// but a scaled-down trace can only *touch* a number of locks proportional
// to its length without distorting the queue-fraction column, so Generate
// uses min(Locks, ~events/1500) pool locks; see EXPERIMENTS.md.
type Benchmark struct {
	Name string
	// Threads and Locks are Table 1 columns 4 and 5 (Locks as reported by
	// the paper; see note above on scaling).
	Threads int
	Locks   int
	// HBRaces and WCPOnlyRaces split Table 1's columns 6–7: column 7 (HB)
	// equals HBRaces and column 6 (WCP) equals HBRaces + WCPOnlyRaces.
	HBRaces      int
	WCPOnlyRaces int
	// FarRaces of the HBRaces are separated by a quiet gap wider than any
	// window: two threads fall silent, write the first halves, wait out
	// the gap (lock-free filler by the other threads), then write the
	// second halves and rejoin the filler. No synchronization can cross
	// the gap between them, so the pairs stay HB- and WCP-unordered while
	// every thread keeps draining Algorithm 1's queues outside the gap.
	FarRaces int
	// Events is the default generated trace length (the paper's event
	// counts scaled down; Generate's scale multiplies it).
	Events int
	// QueueMix in [0,1] is the fraction of filler units that are
	// independent (queue-growing); QueueBurst groups them into consecutive
	// runs to shape the queue high-water mark.
	QueueMix   float64
	QueueBurst int
	// PaperEvents records the paper's reported event count (column 3).
	PaperEvents int
}

// Benchmarks lists the synthetic equivalents of the paper's 18 benchmarks
// in Table 1 order. Race counts match Table 1 columns 6–7 exactly; event
// counts are scaled-down defaults.
var Benchmarks = []Benchmark{
	{Name: "account", Threads: 4, Locks: 3, HBRaces: 4, Events: 130, PaperEvents: 130},
	{Name: "airline", Threads: 2, Locks: 0, HBRaces: 4, Events: 128, PaperEvents: 128},
	{Name: "array", Threads: 3, Locks: 2, HBRaces: 0, Events: 47, PaperEvents: 47},
	{Name: "boundedbuffer", Threads: 2, Locks: 2, HBRaces: 2, Events: 333, PaperEvents: 333},
	{Name: "bubblesort", Threads: 10, Locks: 2, HBRaces: 6, Events: 4_000, PaperEvents: 4_000},
	{Name: "bufwriter", Threads: 6, Locks: 1, HBRaces: 2, Events: 100_000, QueueMix: 0.5, QueueBurst: 1000, PaperEvents: 11_700_000},
	{Name: "critical", Threads: 4, Locks: 0, HBRaces: 8, Events: 55, PaperEvents: 55},
	{Name: "mergesort", Threads: 5, Locks: 3, HBRaces: 3, Events: 3_000, PaperEvents: 3_000},
	{Name: "pingpong", Threads: 4, Locks: 0, HBRaces: 7, Events: 146, PaperEvents: 146},
	{Name: "moldyn", Threads: 3, Locks: 2, HBRaces: 44, Events: 40_000, PaperEvents: 164_000},
	{Name: "montecarlo", Threads: 3, Locks: 3, HBRaces: 5, Events: 80_000, QueueMix: 0.002, QueueBurst: 10, PaperEvents: 7_200_000},
	{Name: "raytracer", Threads: 3, Locks: 8, HBRaces: 3, Events: 16_000, PaperEvents: 16_000},
	{Name: "derby", Threads: 4, Locks: 1112, HBRaces: 23, FarRaces: 9, Events: 60_000, QueueMix: 0.02, QueueBurst: 10, PaperEvents: 1_300_000},
	{Name: "eclipse", Threads: 14, Locks: 8263, HBRaces: 64, WCPOnlyRaces: 2, FarRaces: 25, Events: 150_000, QueueMix: 0.02, QueueBurst: 10, PaperEvents: 87_000_000},
	{Name: "ftpserver", Threads: 11, Locks: 304, HBRaces: 36, FarRaces: 12, Events: 30_000, QueueMix: 0.02, QueueBurst: 10, PaperEvents: 49_000},
	{Name: "jigsaw", Threads: 13, Locks: 280, HBRaces: 11, WCPOnlyRaces: 3, FarRaces: 4, Events: 60_000, QueueMix: 0.01, QueueBurst: 10, PaperEvents: 3_000_000},
	{Name: "lusearch", Threads: 7, Locks: 118, HBRaces: 160, FarRaces: 60, Events: 200_000, QueueMix: 0.005, QueueBurst: 10, PaperEvents: 216_000_000},
	{Name: "xalan", Threads: 6, Locks: 2494, HBRaces: 15, WCPOnlyRaces: 3, FarRaces: 6, Events: 150_000, QueueMix: 0.02, QueueBurst: 10, PaperEvents: 122_000_000},
}

// ByName returns the benchmark with the given name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// WCPRaces returns the expected WCP distinct-race-pair count (Table 1
// column 6).
func (b Benchmark) WCPRaces() int { return b.HBRaces + b.WCPOnlyRaces }

// sharedVars is the number of contended filler variables, each bound to its
// own fixed lock so protected accesses stay ordered across filler units.
const sharedVars = 4

// FarGap is the minimum quiet-gap width for far races: wider than the
// largest windowing configuration the experiments use (10K). MidGap is the
// width for mid-distance races: they fit in a 10K window but not a 1K one,
// which is what separates Table 1's RV(1K) and RV(10K) columns.
const (
	FarGap = 11_000
	MidGap = 3_000
)

// synth is the emission state of one Generate run.
type synth struct {
	b     *trace.Builder
	rng   *rand.Rand
	bench Benchmark
	// fillerThreads take part in the current filler units; during the far
	// gap the two racer threads are excluded so no synchronization can
	// order the far pairs.
	threads       []string
	fillerThreads []string
	lockPool      int // cursor locks available to independent units
	lockCursor    int
	fillerVar     int
	burstLeft     int
	units         int
	// Name tables, preallocated before emission so the filler hot loop
	// performs no string formatting: shared-variable names, their per-
	// thread access locations, pool lock names, and the per-thread
	// local/own/gap names. Indexed by shared-var index and thread index
	// (fillerThreads aliases threads, so indices agree).
	sharedLockName []string
	sharedVarName  []string
	sharedRLoc     [][]string // [sharedVar][thread]
	sharedWLoc     [][]string
	poolLockName   []string
	ownVarName     []string // [thread]
	ownLocName     []string
	localVarName   []string
	localRLoc      []string
	localWLoc      []string
	gapVarName     []string
	gapRLoc        []string
	gapWLoc        []string
}

// buildNameTables precomputes every name the filler loop will need.
func (s *synth) buildNameTables() {
	b := s.bench
	nLocks := maxInt(1, minInt(sharedVars, b.Locks))
	s.sharedLockName = make([]string, sharedVars)
	s.sharedVarName = make([]string, sharedVars)
	s.sharedRLoc = make([][]string, sharedVars)
	s.sharedWLoc = make([][]string, sharedVars)
	for v := 0; v < sharedVars; v++ {
		s.sharedLockName[v] = fmt.Sprintf("sh%d", v%nLocks)
		vname := fmt.Sprintf("shared_%d", v)
		s.sharedVarName[v] = vname
		s.sharedRLoc[v] = make([]string, len(s.threads))
		s.sharedWLoc[v] = make([]string, len(s.threads))
		for ti, t := range s.threads {
			s.sharedRLoc[v][ti] = fmt.Sprintf("pc.%s.%s.r", vname, t)
			s.sharedWLoc[v][ti] = fmt.Sprintf("pc.%s.%s.w", vname, t)
		}
	}
	if n := s.lockPool - sharedVars; n > 0 {
		s.poolLockName = make([]string, n)
		for i := range s.poolLockName {
			s.poolLockName[i] = fmt.Sprintf("pool%d", i)
		}
	}
	n := len(s.threads)
	s.ownVarName = make([]string, n)
	s.ownLocName = make([]string, n)
	s.localVarName = make([]string, n)
	s.localRLoc = make([]string, n)
	s.localWLoc = make([]string, n)
	s.gapVarName = make([]string, n)
	s.gapRLoc = make([]string, n)
	s.gapWLoc = make([]string, n)
	for ti, t := range s.threads {
		s.ownVarName[ti] = "own_" + t
		s.ownLocName[ti] = "pc.own_" + t
		s.localVarName[ti] = "local_" + t
		s.localRLoc[ti] = "pc.local_" + t + ".r"
		s.localWLoc[ti] = "pc.local_" + t + ".w"
		s.gapVarName[ti] = "gaplocal_" + t
		s.gapRLoc[ti] = "pc.gaplocal_" + t + ".r"
		s.gapWLoc[ti] = "pc.gaplocal_" + t + ".w"
	}
}

// Generate produces the benchmark's trace at the given scale (1.0 = the
// Events default). Generation is deterministic in the benchmark name.
func (b Benchmark) Generate(scale float64) *trace.Trace {
	h := fnv.New64a()
	h.Write([]byte(b.Name))
	target := int(float64(b.Events) * scale)
	if target < b.Events/10 && target < 50 {
		target = 50
	}
	s := &synth{
		b:     trace.NewBuilder(),
		rng:   rand.New(rand.NewSource(int64(h.Sum64()))),
		bench: b,
	}
	s.threads = make([]string, b.Threads)
	for i := range s.threads {
		s.threads[i] = fmt.Sprintf("t%d", i)
	}
	s.fillerThreads = s.threads
	s.lockPool = target / 1500
	if s.lockPool > b.Locks {
		s.lockPool = b.Locks
	}
	s.buildNameTables()

	// Main forks the workers.
	for i := 1; i < b.Threads; i++ {
		s.b.Fork(s.threads[0], s.threads[i])
	}

	// Near races and WCP-only races are spread through the filler at
	// deterministic intervals; each race block is contiguous, so no foreign
	// synchronization can land between its two accesses. The far-race gap,
	// if any, is emitted once half of the filler has run.
	midRaces := 0
	bigGap, midGap := 0, 0
	if b.FarRaces > 0 {
		midRaces = b.FarRaces / 3
		bigGap = FarGap
		if g := target / 10; g > bigGap {
			bigGap = g
		}
		if midRaces > 0 {
			midGap = MidGap
		}
	}
	gap := bigGap + midGap
	fillTarget := target - gap
	if fillTarget < target/4 {
		fillTarget = target / 4
	}
	nearRaces := b.HBRaces - b.FarRaces
	blocks := nearRaces + b.WCPOnlyRaces
	spacing := fillTarget
	if blocks > 0 {
		spacing = fillTarget / (blocks + 1)
		if spacing < 1 {
			spacing = 1
		}
	}
	emitted := 0
	gapsEmitted := 0
	filled := func() int {
		// Filler emitted so far, not counting the gap blocks.
		switch gapsEmitted {
		case 0:
			return s.b.Len()
		case 1:
			return s.b.Len() - bigGap
		default:
			return s.b.Len() - gap
		}
	}
	gapsWanted := 0
	if bigGap > 0 {
		gapsWanted++
	}
	if midGap > 0 {
		gapsWanted++
	}
	for filled() < fillTarget || emitted < blocks || gapsEmitted < gapsWanted {
		if gapsEmitted == 0 && bigGap > 0 && filled() >= fillTarget/2 {
			// Far races span the big gap.
			s.quietGap(bigGap, 0, b.FarRaces-midRaces)
			gapsEmitted++
			continue
		}
		if gapsEmitted == 1 && midGap > 0 && filled() >= fillTarget*3/4 {
			// Mid races span the small gap: lost at 1K windows, found at
			// 10K windows.
			s.quietGap(midGap, b.FarRaces-midRaces, b.FarRaces)
			gapsEmitted++
			continue
		}
		if emitted < blocks && (filled() >= (emitted+1)*spacing || filled() >= fillTarget) {
			if emitted < nearRaces {
				s.nearRace(b.FarRaces + emitted)
			} else {
				s.wcpOnlyRace(emitted - nearRaces)
			}
			emitted++
			continue
		}
		s.filler()
	}

	for i := 1; i < b.Threads; i++ {
		s.b.Join(s.threads[0], s.threads[i])
	}
	return s.b.MustBuild()
}

// racers returns the two threads carrying the far races: the last two
// (distinct from the main thread when possible).
func (s *synth) racers() (string, string) {
	n := len(s.threads)
	if n >= 2 {
		return s.threads[n-2], s.threads[n-1]
	}
	return s.threads[0], s.threads[0]
}

// quietGap emits race sites [siteLo, siteHi) across one quiet gap: racer r1
// writes all the first halves, the non-racer threads run lock-free filler
// for the gap length while r1 and r2 stay completely silent (so no
// synchronization can order the pairs), then r2 writes the second halves.
// Both racers take part in the ordinary filler before and after the gap, so
// every thread keeps draining Algorithm 1's queues.
func (s *synth) quietGap(gap, siteLo, siteHi int) {
	b := s.bench
	r1, r2 := s.racers()
	for k := siteLo; k < siteHi; k++ {
		s.b.At(raceLoc(b.Name, k, "a")).Write(r1, raceVar(b.Name, k))
	}
	quiet := make([]int, 0, len(s.threads))
	for ti, t := range s.threads {
		if t != r1 && t != r2 {
			quiet = append(quiet, ti)
		}
	}
	if len(quiet) == 0 {
		quiet = []int{0} // degenerate tiny-thread case; unused by the table
	}
	for i := 0; i < gap; i += 2 {
		ti := quiet[i/2%len(quiet)]
		t := s.threads[ti]
		s.b.At(s.gapWLoc[ti]).Write(t, s.gapVarName[ti])
		s.b.At(s.gapRLoc[ti]).Read(t, s.gapVarName[ti])
	}
	for k := siteLo; k < siteHi; k++ {
		s.b.At(raceLoc(b.Name, k, "b")).Write(r2, raceVar(b.Name, k))
	}
}

// racePair picks two distinct filler threads for race site k.
func (s *synth) racePair(k int) (string, string) {
	n := len(s.fillerThreads)
	if n < 2 {
		// 2-thread benchmarks reserve nothing; fall back to all threads.
		return s.threads[0], s.threads[len(s.threads)-1]
	}
	i := k % n
	j := (i + 1 + k/n%(n-1)) % n
	if j == i {
		j = (i + 1) % n
	}
	return s.fillerThreads[i], s.fillerThreads[j]
}

func raceVar(bench string, k int) string { return fmt.Sprintf("race_%s_%d", bench, k) }

func raceLoc(bench string, k int, side string) string {
	return fmt.Sprintf("%s.race%d.%s", bench, k, side)
}

// nearRace emits one contiguous unprotected write-write race block: a
// distinct HB (and WCP) race pair at stable locations.
func (s *synth) nearRace(k int) {
	t1, t2 := s.racePair(k)
	v := raceVar(s.bench.Name, k)
	s.b.At(raceLoc(s.bench.Name, k, "a")).Write(t1, v)
	s.b.At(raceLoc(s.bench.Name, k, "b")).Write(t2, v)
}

// wcpOnlyRace emits the Figure-2(b) pattern on a dedicated lock: the w(y)
// in t1 races with the r(y) in t2 under WCP, but HB (and CP) order them
// through the critical sections. One distinct WCP-only pair per call.
func (s *synth) wcpOnlyRace(k int) {
	t1, t2 := s.racePair(k + s.bench.HBRaces)
	lock := fmt.Sprintf("wcplock_%d", k)
	x := fmt.Sprintf("wcpx_%d", k)
	y := fmt.Sprintf("wcpy_%d", k)
	s.b.At(fmt.Sprintf("%s.wcprace%d.a", s.bench.Name, k)).Write(t1, y)
	s.b.Acquire(t1, lock)
	s.b.Write(t1, x)
	s.b.Release(t1, lock)
	s.b.Acquire(t2, lock)
	s.b.At(fmt.Sprintf("%s.wcprace%d.b", s.bench.Name, k)).Read(t2, y)
	s.b.Read(t2, x)
	s.b.Release(t2, lock)
}

// filler emits one race-free filler unit.
func (s *synth) filler() {
	b := s.bench
	s.units++
	if b.Locks == 0 {
		// Lock-free benchmark: thread-local computation only.
		ti := s.units % len(s.fillerThreads)
		t := s.fillerThreads[ti]
		s.b.At(s.localWLoc[ti]).Write(t, s.localVarName[ti])
		s.b.At(s.localRLoc[ti]).Read(t, s.localVarName[ti])
		return
	}
	// Decide contended vs independent; independent units come in bursts.
	if s.burstLeft == 0 && b.QueueMix > 0 && b.QueueBurst > 0 {
		if s.rng.Float64() < b.QueueMix/float64(b.QueueBurst) {
			s.burstLeft = b.QueueBurst
		}
	}
	if s.burstLeft > 0 {
		s.burstLeft--
		s.independentUnit()
		return
	}
	s.contendedUnit()
}

// contendedUnit cycles every filler thread through a critical section on a
// fixed (variable, lock) pair: protected, race-free, and each section's
// conflicting accesses create the WCP rule-(a) edges that let releases
// drain the rule-(b) queues. All names come from the preallocated tables.
func (s *synth) contendedUnit() {
	v := s.fillerVar % sharedVars
	s.fillerVar++
	lock := s.sharedLockName[v]
	vname := s.sharedVarName[v]
	for ti, t := range s.fillerThreads {
		s.b.Acquire(t, lock)
		s.b.At(s.sharedRLoc[v][ti]).Read(t, vname)
		s.b.At(s.sharedWLoc[v][ti]).Write(t, vname)
		s.b.Release(t, lock)
	}
}

// independentUnit has one thread take a critical section around its own
// variable. On a fresh cursor lock this leaks 2(T−1) queue entries that no
// later release can drain (no other thread ever releases that lock); on a
// shared lock (pool exhausted or absent) the entries persist only until the
// next contended unit on that lock — either way the queue high-water rises.
func (s *synth) independentUnit() {
	ti := s.units % len(s.fillerThreads)
	t := s.fillerThreads[ti]
	var lock string
	if s.lockPool > sharedVars {
		lock = s.poolLockName[s.lockCursor%(s.lockPool-sharedVars)]
		s.lockCursor++
	} else {
		lock = "sh0"
	}
	s.b.Acquire(t, lock)
	s.b.At(s.ownLocName[ti]).Write(t, s.ownVarName[ti])
	s.b.Release(t, lock)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
