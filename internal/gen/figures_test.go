package gen_test

import (
	"testing"

	"repro/internal/event"
	"repro/internal/gen"
	"repro/internal/trace"
)

// TestFiguresWellFormed validates every transcribed paper figure and checks
// its event count against the figure's line count (sync(x) is 4 events,
// acrl(y) is 2).
func TestFiguresWellFormed(t *testing.T) {
	cases := []struct {
		name   string
		tr     *trace.Trace
		events int
	}{
		{"Figure1a", gen.Figure1a(), 8},
		{"Figure1b", gen.Figure1b(), 8},
		{"Figure2a", gen.Figure2a(), 8},
		{"Figure2b", gen.Figure2b(), 8},
		{"Figure3", gen.Figure3(), 10 + 2*4}, // 10 plain lines + 2 sync(x) at 4 events each
		{"Figure4", gen.Figure4(), 14 + 2*4}, // 14 plain + 2 sync
		{"Figure5", gen.Figure5(), 14 + 4*4}, // 14 plain + 4 sync
		{"Figure6", gen.Figure6(), 18 + 6*2}, // 18 plain + 6 acrl at 2 events each
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := trace.Validate(tc.tr); err != nil {
				t.Fatalf("figure trace invalid: %v", err)
			}
			if tc.tr.Len() != tc.events {
				t.Errorf("events = %d, want %d", tc.tr.Len(), tc.events)
			}
		})
	}
}

// TestFigureThreadCounts pins the thread structure of the multi-thread
// figures.
func TestFigureThreadCounts(t *testing.T) {
	if got := gen.Figure3().NumThreads(); got != 3 {
		t.Errorf("Figure3 threads = %d", got)
	}
	if got := gen.Figure4().NumThreads(); got != 3 {
		t.Errorf("Figure4 threads = %d", got)
	}
	if got := gen.Figure6().NumThreads(); got != 3 {
		t.Errorf("Figure6 threads = %d", got)
	}
}

// TestSyncShorthand checks that Sync produced the lock-associated variable
// accesses the paper's notation implies, within Figure 3.
func TestSyncShorthand(t *testing.T) {
	tr := gen.Figure3()
	sawXVar := false
	for _, e := range tr.Events {
		if e.Kind.IsAccess() && tr.Symbols.VarName(e.Var()) == "xVar" {
			sawXVar = true
		}
	}
	if !sawXVar {
		t.Error("sync(x) should access xVar")
	}
}

// TestLowerBoundStructure checks the Figure-8 trace family's basic shape:
// 3 threads, locks {L0, L1, m, y}, and event count linear in n.
func TestLowerBoundStructure(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		u := gen.BitsFromUint(0b10110101, n)
		tr := gen.LowerBound(u, u)
		if err := trace.Validate(tr); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := tr.NumThreads(); got != 3 {
			t.Errorf("n=%d: threads = %d", n, got)
		}
		// Phase 0 is 6+2 events, later phases 12, t3's part 5n+1ish; just
		// check linearity coarsely.
		if tr.Len() < 10*n || tr.Len() > 30*n+20 {
			t.Errorf("n=%d: %d events, outside linear envelope", n, tr.Len())
		}
		// Exactly two w(z) events, one by t2 and one by t3.
		var writers []string
		for _, e := range tr.Events {
			if e.Kind == event.Write && tr.Symbols.VarName(e.Var()) == "z" {
				writers = append(writers, tr.Symbols.ThreadName(e.Thread))
			}
		}
		if len(writers) != 2 || writers[0] != "t2" || writers[1] != "t3" {
			t.Errorf("n=%d: z writers = %v", n, writers)
		}
	}
}

func TestBitsFromUint(t *testing.T) {
	bits := gen.BitsFromUint(0b101, 3)
	want := []bool{true, false, true}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bits = %v, want %v", bits, want)
		}
	}
	if got := gen.BitsFromUint(0, 2); got[0] || got[1] {
		t.Errorf("zero bits = %v", got)
	}
}

func TestLowerBoundPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched lengths")
		}
	}()
	gen.LowerBound([]bool{true}, []bool{true, false})
}
