package gen_test

import (
	"testing"

	"repro/internal/closure"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/trace"
)

// TestLowerBoundEquality exhaustively checks the Theorem 4 reduction for
// n = 1..4: the Figure-8 trace has a WCP race between the two w(z) events
// iff u ≠ v.
func TestLowerBoundEquality(t *testing.T) {
	for n := 1; n <= 4; n++ {
		for uu := uint64(0); uu < 1<<uint(n); uu++ {
			for vv := uint64(0); vv < 1<<uint(n); vv++ {
				u := gen.BitsFromUint(uu, n)
				v := gen.BitsFromUint(vv, n)
				tr := gen.LowerBound(u, v)
				if err := trace.Validate(tr); err != nil {
					t.Fatalf("n=%d u=%b v=%b: invalid trace: %v", n, uu, vv, err)
				}
				res := core.Detect(tr)
				locA := tr.Symbols.Location("f8.t2.wz")
				locB := tr.Symbols.Location("f8.t3.wz")
				gotRace := res.Report.Has(locA, locB)
				wantRace := uu != vv
				if gotRace != wantRace {
					t.Errorf("n=%d u=%b v=%b: w(z)/w(z) race = %v, want %v", n, uu, vv, gotRace, wantRace)
				}
			}
		}
	}
}

// TestLowerBoundMatchesClosure cross-checks the streaming detector against
// the reference closure on the Figure-8 family (it exercises long rule-(b)
// chains that random traces rarely produce).
func TestLowerBoundMatchesClosure(t *testing.T) {
	for n := 1; n <= 3; n++ {
		for uu := uint64(0); uu < 1<<uint(n); uu++ {
			for vv := uint64(0); vv < 1<<uint(n); vv++ {
				tr := gen.LowerBound(gen.BitsFromUint(uu, n), gen.BitsFromUint(vv, n))
				res := core.DetectOpts(tr, core.Options{CollectTimestamps: true})
				wcp := closure.ComputeWCP(tr)
				for i := 0; i < tr.Len(); i++ {
					for j := i + 1; j < tr.Len(); j++ {
						want := closure.Ordered(tr, wcp, i, j)
						got := res.Times[i].Leq(res.Times[j])
						if got != want {
							t.Fatalf("n=%d u=%b v=%b: %s vs %s: stream=%v closure=%v",
								n, uu, vv, tr.Describe(i), tr.Describe(j), got, want)
						}
					}
				}
			}
		}
	}
}

// TestLowerBoundQueueGrowth checks the space lower bound's practical face:
// Algorithm 1's queue high-water mark on the Figure-8 family grows
// (at least) linearly with n, as Theorem 4 says any one-pass WCP algorithm
// must.
func TestLowerBoundQueueGrowth(t *testing.T) {
	prev := 0
	for _, n := range []int{4, 8, 16, 32} {
		u := gen.BitsFromUint(0, n) // all zeros: u = v, hardest case
		tr := gen.LowerBound(u, u)
		res := core.Detect(tr)
		if res.QueueMaxTotal <= prev {
			t.Errorf("n=%d: queue max %d did not grow past %d", n, res.QueueMaxTotal, prev)
		}
		if res.QueueMaxTotal < n {
			t.Errorf("n=%d: queue max %d, want ≥ n", n, res.QueueMaxTotal)
		}
		prev = res.QueueMaxTotal
	}
}
