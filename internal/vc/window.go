package vc

// This file implements the windowed vector-clock representation behind the
// high-thread-count fast paths: clock operations proportional to what
// actually changed, not to the thread count T.
//
// A WC (windowed clock) wraps the dense []Clock storage with a *dirty
// window*: a contiguous span [lo,hi) plus a 64-bucket dirty bitmap, together
// a superset of the clock's support {i : v[i] != 0}. Every mutating
// operation maintains the window, so
//
//   - Join only merges the source's dirty span (components outside it are
//     zero and cannot raise anything);
//   - Leq early-exits outside the left operand's window (zero ⊑ anything);
//   - Copy memmoves only the source's dirty span and zero-fills only the
//     destination's previously-dirty components.
//
// The span alone is exact for workloads whose thread neighborhoods are
// contiguous; once a span grows past spanScan components the operations
// switch to the bitmap, which keeps scattered support (e.g. "my pool plus
// the main thread") cheap: bit k of the bitmap covers the 2^shift-component
// bucket starting at k<<shift, with shift chosen at Init so 64 buckets cover
// the width. For width ≤ 4096 a bucket is ≤ 64 components; beyond that the
// buckets widen and the bitmap degrades gracefully toward the span.
//
// Every WC also carries a *generation*, bumped on every mutation. Detectors
// use generations as join caches: after joining source S at generation g
// into a target that only ever grows, the join can be skipped for as long as
// S's generation still reads g — the overwhelmingly common case for
// repeated joins of an unchanged lock or queue clock in lock-heavy traces.
//
// Tiny widths (≤ denseWidth) and ForceDense builds opt out: their window is
// permanently [0,width), so every operation takes the unrolled dense VC
// paths that win at T ∈ {2,3,4}, and windows never have to be maintained.
// Dense and windowed clocks of the same width may be mixed freely; a dense
// clock simply behaves as one whose window never shrinks.
//
// Invariant (fuzzed in window_test.go): the window is a superset of the
// true modified set — for every i with v[i] != 0, lo ≤ i < hi and the
// bitmap bucket containing i is set (windowed clocks only).

import (
	"math/bits"
	"sync/atomic"
)

const (
	// denseWidth is the width at or below which clocks are always dense:
	// window maintenance costs more than it saves when the whole clock is a
	// couple of cache lines, and the dense paths keep the width-2/3/4
	// unrolls.
	denseWidth = 8
	// spanScan is the widest dirty span that is scanned linearly; wider
	// spans go through the dirty bitmap.
	spanScan = 64
	// maskBuckets is the number of buckets in the dirty bitmap.
	maskBuckets = 64
)

// forceDense, when set, makes every subsequently-initialized WC dense
// regardless of width. It exists for the differential test suites, which pin
// the windowed and dense code paths to byte-identical results; it is not a
// production mode. Toggle only while no detector is running.
var forceDense atomic.Bool

// ForceDense forces all subsequently-initialized windowed clocks to the
// dense representation (on=true) or restores the default (on=false).
// Intended for tests; do not toggle concurrently with detector execution.
func ForceDense(on bool) { forceDense.Store(on) }

// DenseForced reports whether ForceDense(true) is in effect.
func DenseForced() bool { return forceDense.Load() }

// chunkShift returns the bucket shift for a width: the smallest s such that
// maskBuckets buckets of 2^s components cover the width.
func chunkShift(width int) uint8 {
	s := uint8(0)
	for (width+(1<<s)-1)>>s > maskBuckets {
		s++
	}
	return s
}

// fullMask returns the bitmap with every bucket of a width set.
func fullMask(width int, shift uint8) uint64 {
	if width <= 0 {
		return 0
	}
	n := (width + (1 << shift) - 1) >> shift
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// WC is a windowed vector clock: dense []Clock storage plus the dirty
// window and the mutation generation. The zero WC is not usable; call Init
// (or carve one out of NewWCMatrix) first. All mutations must go through WC
// methods — writing the storage directly would break the window invariant.
type WC struct {
	v      VC
	lo, hi int32 // dirty span [lo,hi); empty when lo == hi
	mask   uint64
	gen    uint32
	shift  uint8
	dense  bool
}

// Init allocates zeroed storage of the given width and resets the window.
func (w *WC) Init(width int) {
	w.InitFrom(make(VC, width))
}

// InitFrom adopts existing zeroed storage (e.g. a slice of a contiguous
// bank) and resets the window.
func (w *WC) InitFrom(v VC) {
	w.v = v
	w.shift = chunkShift(len(v))
	w.dense = len(v) <= denseWidth || forceDense.Load()
	w.gen = 0
	if w.dense {
		w.lo, w.hi = 0, int32(len(v))
		w.mask = fullMask(len(v), w.shift)
	} else {
		w.lo, w.hi = 0, 0
		w.mask = 0
	}
}

// NewWC returns an initialized windowed clock of the given width.
func NewWC(width int) WC {
	var w WC
	w.Init(width)
	return w
}

// NewWCMatrix returns rows windowed clocks of the given width whose storage
// is carved out of one contiguous allocation (see NewMatrix).
func NewWCMatrix(rows, width int) []WC {
	flat := make(VC, rows*width)
	m := make([]WC, rows)
	for i := range m {
		m[i].InitFrom(flat[i*width : (i+1)*width : (i+1)*width])
	}
	return m
}

// Ready reports whether the clock has storage (Init was called).
func (w *WC) Ready() bool { return w.v != nil }

// VC returns the dense storage view. Callers may read it freely but must
// not write through it.
func (w *WC) VC() VC { return w.v }

// Width returns the clock width.
func (w *WC) Width() int { return len(w.v) }

// Get returns component t.
func (w *WC) Get(t int) Clock { return w.v[t] }

// Gen returns the mutation generation: it changes (increments) on every
// mutation, so an unchanged generation proves the clock content unchanged.
func (w *WC) Gen() uint32 { return w.gen }

// Span returns the dirty span [lo,hi).
func (w *WC) Span() (lo, hi int) { return int(w.lo), int(w.hi) }

// Mask returns the dirty bitmap.
func (w *WC) Mask() uint64 { return w.mask }

// ChunkShift returns the bitmap bucket shift: bit k covers components
// [k<<shift, (k+1)<<shift).
func (w *WC) ChunkShift() uint { return uint(w.shift) }

// Dense reports whether the clock is in the dense (full-window)
// representation.
func (w *WC) Dense() bool { return w.dense }

// markDirty extends the window to cover component i.
func (w *WC) markDirty(i int) {
	if w.lo == w.hi {
		w.lo, w.hi = int32(i), int32(i+1)
	} else {
		if int32(i) < w.lo {
			w.lo = int32(i)
		}
		if int32(i) >= w.hi {
			w.hi = int32(i + 1)
		}
	}
	w.mask |= 1 << (uint(i) >> w.shift)
}

// absorb extends the window to cover another window.
func (w *WC) absorb(lo, hi int32, mask uint64) {
	if lo == hi {
		return
	}
	if w.lo == w.hi {
		w.lo, w.hi = lo, hi
	} else {
		if lo < w.lo {
			w.lo = lo
		}
		if hi > w.hi {
			w.hi = hi
		}
	}
	w.mask |= mask
}

// Set assigns component t and bumps the generation.
func (w *WC) Set(t int, c Clock) {
	w.v[t] = c
	if !w.dense {
		w.markDirty(t)
	}
	w.gen++
}

// Zero resets every dirty component to 0, empties the window, and bumps the
// generation.
func (w *WC) Zero() {
	if w.dense {
		w.v.Zero()
		w.gen++
		return
	}
	w.zeroDirty()
	w.lo, w.hi = 0, 0
	w.mask = 0
	w.gen++
}

// zeroDirty zeroes the components covered by the window.
func (w *WC) zeroDirty() {
	lo, hi := int(w.lo), int(w.hi)
	if hi-lo <= spanScan {
		z := w.v[lo:hi]
		for i := range z {
			z[i] = 0
		}
		return
	}
	shift := uint(w.shift)
	for m := w.mask; m != 0; m &= m - 1 {
		k := bits.TrailingZeros64(m)
		a, b := bucketBounds(k, shift, lo, hi)
		z := w.v[a:b]
		for i := range z {
			z[i] = 0
		}
	}
}

// bucketBounds clamps bitmap bucket k to the span [lo,hi).
func bucketBounds(k int, shift uint, lo, hi int) (a, b int) {
	a = k << shift
	b = a + (1 << shift)
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if a > b {
		a = b
	}
	return a, b
}

// BucketBounds returns the component range covered by the lowest set bit of
// mask m, clamped to the span [lo,hi) — the walk step for callers that scan
// a dirty bitmap themselves (iterate with m &= m-1).
func BucketBounds(m uint64, shift uint, lo, hi int) (a, b int) {
	return bucketBounds(bits.TrailingZeros64(m), shift, lo, hi)
}

// MaskRuns iterates the maximal runs of consecutive set bitmap buckets of a
// window as component ranges, clamped to the span. A full mask yields one
// run covering the whole span, so dense clocks degrade to a single linear
// pass. Writers and readers of bucket-compressed records (see
// core/queue.go) must walk the same runs in the same order; this iterator
// is that shared definition.
type MaskRuns struct {
	m      uint64
	base   int // absolute index of bucket bit 0 of m
	shift  uint
	lo, hi int
}

// NewMaskRuns returns a run iterator over a window.
func NewMaskRuns(mask uint64, shift uint, lo, hi int) MaskRuns {
	return MaskRuns{m: mask, shift: shift, lo: lo, hi: hi}
}

// Next returns the next run's component range [a,b), or ok=false when done.
func (r *MaskRuns) Next() (a, b int, ok bool) {
	for r.m != 0 {
		k := bits.TrailingZeros64(r.m)
		r.m >>= uint(k)
		r.base += k
		run := bits.TrailingZeros64(^r.m)
		if run >= 64 {
			r.m = 0
		} else {
			r.m >>= uint(run)
		}
		a = r.base << r.shift
		b = (r.base + run) << r.shift
		r.base += run
		if a < r.lo {
			a = r.lo
		}
		if b > r.hi {
			b = r.hi
		}
		if a < b {
			return a, b, true
		}
	}
	return 0, 0, false
}

// PackedWords returns the number of clock words the window occupies in
// bucket-compressed form: the sum of its mask-run widths.
func PackedWords(mask uint64, shift uint, lo, hi int) int {
	n := 0
	it := NewMaskRuns(mask, shift, lo, hi)
	for {
		a, b, ok := it.Next()
		if !ok {
			return n
		}
		n += b - a
	}
}

// PackedLen returns the number of clock words the clock occupies in
// bucket-compressed form. A dense clock packs as its full width without
// walking the bitmap.
func (w *WC) PackedLen() int {
	if w.dense {
		return len(w.v)
	}
	return PackedWords(w.mask, uint(w.shift), int(w.lo), int(w.hi))
}

// AppendPacked writes the clock's window components into dst in
// bucket-compressed form (mask-run order) and returns the words written;
// dst must have room for PackedLen of them. Dense clocks (and any clock
// whose dirty buckets form one contiguous run) take a straight copy.
func (w *WC) AppendPacked(dst []Clock) int {
	if w.dense {
		n := len(w.v)
		if n <= 8 {
			for i := 0; i < n; i++ {
				dst[i] = w.v[i]
			}
			return n
		}
		return copy(dst, w.v)
	}
	off := 0
	it := NewMaskRuns(w.mask, uint(w.shift), int(w.lo), int(w.hi))
	for {
		a, b, ok := it.Next()
		if !ok {
			return off
		}
		if b-a <= 8 {
			for i := a; i < b; i++ {
				dst[off] = w.v[i]
				off++
			}
			continue
		}
		off += copy(dst[off:], w.v[a:b])
	}
}

// JoinPacked sets w to w ⊔ r, where r is a bucket-compressed record with
// the given window (written by AppendPacked from a clock of the same
// width). Reports whether any component grew. A record whose word count
// equals its span width is one contiguous run — every dense record, and
// most narrow windowed ones — and joins with a straight loop, no bitmap
// walk.
func (w *WC) JoinPacked(r []Clock, lo, hi int, mask uint64) bool {
	changed := false
	v := w.v
	if len(r) == hi-lo {
		if lo == 0 && hi == 3 {
			// The width-3 unroll (tiny-T detectors are all width 3).
			r, v := r[:3], v[:3]
			if r[0] > v[0] {
				v[0] = r[0]
				changed = true
			}
			if r[1] > v[1] {
				v[1] = r[1]
				changed = true
			}
			if r[2] > v[2] {
				v[2] = r[2]
				changed = true
			}
		} else {
			for i := lo; i < hi; i++ {
				if c := r[i-lo]; c > v[i] {
					v[i] = c
					changed = true
				}
			}
		}
	} else {
		off := 0
		it := NewMaskRuns(mask, uint(w.shift), lo, hi)
		for {
			a, b, ok := it.Next()
			if !ok {
				break
			}
			for i := a; i < b; i++ {
				if c := r[off]; c > v[i] {
					v[i] = c
					changed = true
				}
				off++
			}
		}
	}
	if changed {
		if !w.dense {
			w.absorb(int32(lo), int32(hi), mask)
		}
		w.gen++
	}
	return changed
}

// SpanScan is the widest dirty span that windowed operations scan linearly
// instead of walking the bitmap; callers implementing their own windowed
// loops should use the same cutoff.
const SpanScan = spanScan

// Join sets w to w ⊔ src in place, merging only src's dirty window, and
// reports whether any component grew. Both clocks must have the same
// width. The width-3 case (tiny-T clocks are always dense, no window
// upkeep) stays small enough for the dispatcher and the unroll to inline
// into the detector hot loops.
func (w *WC) Join(src *WC) bool {
	if len(src.v) == 3 {
		return w.join3(src)
	}
	return w.joinWide(src)
}

func (w *WC) join3(src *WC) bool {
	v, sv := w.v, src.v
	changed := false
	if sv[0] > v[0] {
		v[0] = sv[0]
		changed = true
	}
	if sv[1] > v[1] {
		v[1] = sv[1]
		changed = true
	}
	if sv[2] > v[2] {
		v[2] = sv[2]
		changed = true
	}
	if changed {
		w.gen++
	}
	return changed
}

func (w *WC) joinWide(src *WC) bool {
	if w.dense && src.dense {
		if w.v.JoinChanged(src.v) {
			w.gen++
			return true
		}
		return false
	}
	changed := false
	v, sv := w.v, src.v
	lo, hi := int(src.lo), int(src.hi)
	if hi-lo <= spanScan {
		for i := lo; i < hi; i++ {
			if c := sv[i]; c > v[i] {
				v[i] = c
				changed = true
			}
		}
	} else {
		shift := uint(src.shift)
		for m := src.mask; m != 0; m &= m - 1 {
			k := bits.TrailingZeros64(m)
			a, b := bucketBounds(k, shift, lo, hi)
			for i := a; i < b; i++ {
				if c := sv[i]; c > v[i] {
					v[i] = c
					changed = true
				}
			}
		}
	}
	if changed {
		if !w.dense {
			w.absorb(src.lo, src.hi, src.mask)
		}
		w.gen++
	}
	return changed
}

// Copy sets w to an exact copy of src: only src's dirty span is moved, and
// only w's previously-dirty components outside it are zero-filled. Both
// clocks must have the same width.
func (w *WC) Copy(src *WC) {
	if sv := src.v; len(sv) == 3 && len(w.v) == 3 {
		v := w.v[:3]
		v[0], v[1], v[2] = sv[0], sv[1], sv[2]
		w.gen++
		return
	}
	w.copyWide(src)
}

func (w *WC) copyWide(src *WC) {
	if w == src {
		return
	}
	if w.dense {
		w.v.Copy(src.v)
		w.gen++
		return
	}
	w.zeroDirty()
	lo, hi := int(src.lo), int(src.hi)
	if hi-lo <= spanScan {
		copy(w.v[lo:hi], src.v[lo:hi])
	} else {
		shift := uint(src.shift)
		for m := src.mask; m != 0; m &= m - 1 {
			k := bits.TrailingZeros64(m)
			a, b := bucketBounds(k, shift, lo, hi)
			copy(w.v[a:b], src.v[a:b])
		}
	}
	w.lo, w.hi = src.lo, src.hi
	w.mask = src.mask
	w.gen++
}

// JoinEff sets w to w ⊔ (p ⊔ o)[t := n] — the WCP effective-time join —
// merging only the sources' dirty windows. With oZero, the ⊔ o leg is
// skipped (o adds nothing beyond p). The generation is bumped
// unconditionally: an unchanged generation proves unchanged content, a
// bumped one proves nothing.
func (w *WC) JoinEff(p, o *WC, t int, n Clock, oZero bool) {
	if oZero && len(p.v) == 3 && len(w.v) == 3 {
		w.joinEff3(p, t, n)
		return
	}
	w.joinEffWide(p, o, t, n, oZero)
}

func (w *WC) joinEff3(p *WC, t int, n Clock) {
	v, pv := w.v[:3], p.v[:3]
	if pv[0] > v[0] {
		v[0] = pv[0]
	}
	if pv[1] > v[1] {
		v[1] = pv[1]
	}
	if pv[2] > v[2] {
		v[2] = pv[2]
	}
	if n > v[t] {
		v[t] = n
	}
	w.gen++
}

func (w *WC) joinEffWide(p, o *WC, t int, n Clock, oZero bool) {
	w.Join(p)
	if !oZero {
		w.Join(o)
	}
	if n > w.v[t] {
		w.Set(t, n)
	}
}

// LeqVC reports w ⊑ x (pointwise ≤), early-exiting outside w's dirty
// window: components there are zero and ⊑ anything. x must not be narrower
// than w. The width-3 case is small enough to inline into detector loops.
func (w *WC) LeqVC(x VC) bool {
	if v := w.v; len(v) == 3 {
		x = x[:3]
		return v[0] <= x[0] && v[1] <= x[1] && v[2] <= x[2]
	}
	return w.leqWide(x)
}

func (w *WC) leqWide(x VC) bool {
	if w.dense {
		return w.v.Leq(x)
	}
	v := w.v
	lo, hi := int(w.lo), int(w.hi)
	if hi-lo <= spanScan {
		for i := lo; i < hi; i++ {
			if v[i] > x[i] {
				return false
			}
		}
		return true
	}
	shift := uint(w.shift)
	for m := w.mask; m != 0; m &= m - 1 {
		k := bits.TrailingZeros64(m)
		a, b := bucketBounds(k, shift, lo, hi)
		for i := a; i < b; i++ {
			if v[i] > x[i] {
				return false
			}
		}
	}
	return true
}

// Leq reports w ⊑ x for two windowed clocks of the same width.
func (w *WC) Leq(x *WC) bool { return w.LeqVC(x.v) }

// Tighten recomputes the dirty window from the clock's actual support,
// shrinking spans and masks that have grown looser than the nonzero
// components they cover — absorb only ever widens windows, so a long-lived
// clock that repeatedly joined scattered sources can end up scanning buckets
// whose components are all zero. Compaction passes call this on long-lived
// clocks; it is O(width) and does not bump the generation (the content is
// unchanged). Dense clocks have no window to tighten.
func (w *WC) Tighten() {
	if w.dense {
		return
	}
	lo, hi := int32(-1), int32(0)
	var mask uint64
	for i, c := range w.v {
		if c == 0 {
			continue
		}
		if lo < 0 {
			lo = int32(i)
		}
		hi = int32(i + 1)
		mask |= 1 << (uint(i) >> w.shift)
	}
	if lo < 0 {
		w.lo, w.hi, w.mask = 0, 0, 0
		return
	}
	w.lo, w.hi, w.mask = lo, hi, mask
}

// Clone returns a fresh dense VC equal to w.
func (w *WC) Clone() VC { return w.v.Clone() }

// String renders the clock like VC.String.
func (w *WC) String() string { return w.v.String() }
