package vc

import "fmt"

// Epoch is a FastTrack-style scalar timestamp c@t packed into one word: the
// clock of a single thread. The epoch-optimized HB detector (internal/hb)
// uses epochs for the common case of totally-ordered accesses, falling back
// to full vector clocks only on contention. The paper lists epoch
// optimizations as future work for WCP (§6); we apply them to the HB
// baseline where FastTrack proved them out.
type Epoch uint64

// NoEpoch is the epoch representing "no access yet": clock 0 of thread 0,
// which is ⊑ every time.
const NoEpoch Epoch = 0

// MakeEpoch packs clock c of thread t into an epoch.
func MakeEpoch(t int, c Clock) Epoch {
	return Epoch(uint64(uint32(t))<<32 | uint64(uint32(c)))
}

// TID returns the thread component of the epoch.
func (e Epoch) TID() int { return int(uint32(e >> 32)) }

// Clock returns the clock component of the epoch.
func (e Epoch) Clock() Clock { return Clock(uint32(e)) }

// LeqVC reports whether the epoch's time is ⊑ v, i.e. c ≤ v[t].
func (e Epoch) LeqVC(v VC) bool { return e.Clock() <= v.Get(e.TID()) }

// String renders the epoch as "c@t" (FastTrack notation).
func (e Epoch) String() string { return fmt.Sprintf("%d@%d", e.Clock(), e.TID()) }
