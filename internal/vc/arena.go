package vc

// This file implements the allocation discipline shared by the WCP and HB
// hot paths: a width-fixed arena that bump-allocates vector-clock storage in
// large slabs and recycles clocks through a freelist, plus a refcounted
// clock handle (Ref) for the copy-on-write queue snapshots of Algorithm 1.
//
// The motivating access pattern is the detector steady state: every acquire
// publishes one C-time consumed by up to T−1 FIFO queues, every release
// publishes one H-time consumed by up to T queues, and queue pops return
// those clocks to circulation. With the arena, a warmed-up detector performs
// near-zero heap allocations per event — clock storage cycles between the
// queues and the freelist, and slabs grow only when the queue high-water
// mark grows (which Theorem 4 bounds for a fixed lock/thread universe).

// arenaSlabClocks is the number of clocks bump-allocated per storage slab.
const arenaSlabClocks = 256

// Ref is a refcounted vector clock handed out by an Arena. The clock is
// written once by its publisher (before any Retain) and treated as immutable
// while shared; holders drop their reference with Arena.Release, and the
// last Release recycles the storage into the freelist.
//
// The refcount is not atomic: an Arena and all its Refs belong to a single
// detector goroutine.
type Ref struct {
	c    VC
	refs int32
}

// VC returns the clock storage. The returned slice is owned by the arena;
// callers must not retain it past their reference.
func (r *Ref) VC() VC { return r.c }

// Retain adds one reference and returns r for chaining.
func (r *Ref) Retain() *Ref {
	r.refs++
	return r
}

// Arena allocates fixed-width vector clocks in bump-allocated slabs and
// recycles them through a freelist. The zero value is not usable; create
// arenas with NewArena. An Arena is not safe for concurrent use: it belongs
// to one detector.
type Arena struct {
	width int
	free  []*Ref // recycled refs, ready for reuse
	slab  []Clock
	hdrs  []Ref
	// allocs counts distinct clocks ever created (freelist misses);
	// recycles counts clocks returned through Release. Steady-state
	// operation grows recycles, not allocs.
	allocs   int
	recycles int
}

// NewArena returns an arena handing out clocks of the given width
// (the trace's thread count).
func NewArena(width int) *Arena { return &Arena{width: width} }

// Width returns the width of the clocks this arena hands out.
func (a *Arena) Width() int { return a.width }

// Get returns a zeroed clock with one reference.
func (a *Arena) Get() *Ref {
	r := a.take()
	r.c.Zero()
	return r
}

// GetCopy returns a clock equal to w with one reference. w must not be wider
// than the arena width.
func (a *Arena) GetCopy(w VC) *Ref {
	r := a.take()
	r.c.Copy(w)
	return r
}

// take pops a recycled ref or bump-allocates a fresh one. The clock contents
// are unspecified; Get/GetCopy overwrite every component.
func (a *Arena) take() *Ref {
	if n := len(a.free); n > 0 {
		r := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		r.refs = 1
		return r
	}
	a.allocs++
	if len(a.hdrs) == 0 {
		a.slab = make([]Clock, a.width*arenaSlabClocks)
		a.hdrs = make([]Ref, arenaSlabClocks)
	}
	r := &a.hdrs[0]
	a.hdrs = a.hdrs[1:]
	r.c = a.slab[:a.width:a.width]
	a.slab = a.slab[a.width:]
	r.refs = 1
	return r
}

// Release drops one reference; the last release recycles the clock into the
// freelist. It reports whether the clock was recycled.
func (a *Arena) Release(r *Ref) bool {
	if r.refs--; r.refs > 0 {
		return false
	}
	a.recycles++
	a.free = append(a.free, r)
	return true
}

// Allocs returns the number of distinct clocks the arena ever created.
// A warmed-up detector's Allocs stays flat while Recycles grows.
func (a *Arena) Allocs() int { return a.allocs }

// Recycles returns the number of clocks returned through Release.
func (a *Arena) Recycles() int { return a.recycles }

// NewMatrix returns rows vector clocks of the given width carved out of one
// contiguous allocation, for per-thread clock banks (Pt/Ht/Ot, the HB C_t
// bank, the rule-(a) per-thread exclusion clocks). One backing array keeps
// the bank cache-dense and costs one allocation instead of rows.
func NewMatrix(rows, width int) []VC {
	flat := make(VC, rows*width)
	m := make([]VC, rows)
	for i := range m {
		m[i] = flat[i*width : (i+1)*width : (i+1)*width]
	}
	return m
}

// Free returns the number of clocks currently sitting in the freelist.
// When every outstanding reference has been dropped, Free equals Allocs —
// the invariant the session-teardown leak tests pin.
func (a *Arena) Free() int { return len(a.free) }
