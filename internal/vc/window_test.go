package vc

import (
	"fmt"
	"math/rand"
	"testing"
)

// checkWindow verifies the representation invariant: the window is a
// superset of the true modified set — every nonzero component lies inside
// the span and in a set bitmap bucket.
func checkWindow(t *testing.T, w *WC) {
	t.Helper()
	lo, hi := w.Span()
	mask, shift := w.Mask(), w.ChunkShift()
	for i, c := range w.VC() {
		if c == 0 {
			continue
		}
		if i < lo || i >= hi {
			t.Fatalf("width %d: component %d=%d outside span [%d,%d)", w.Width(), i, c, lo, hi)
		}
		if mask&(1<<(uint(i)>>shift)) == 0 {
			t.Fatalf("width %d: component %d=%d in unset bitmap bucket %d", w.Width(), i, c, uint(i)>>shift)
		}
	}
}

// wcModel pairs a windowed clock with its dense reference; every operation
// is applied to both and the contents compared.
type wcModel struct {
	w   WC
	ref VC
}

func newModel(width int) *wcModel {
	m := &wcModel{ref: New(width)}
	m.w.Init(width)
	return m
}

func (m *wcModel) verify(t *testing.T) {
	t.Helper()
	checkWindow(t, &m.w)
	for i, c := range m.ref {
		if m.w.VC()[i] != c {
			t.Fatalf("width %d: component %d: windowed %d, dense %d\nwindowed %v\ndense    %v",
				len(m.ref), i, m.w.VC()[i], c, m.w.VC(), m.ref)
		}
	}
}

// step applies one pseudo-random operation to the model pair. Operations
// mirror exactly what detectors do: Set, Join, JoinRaw (queue records),
// Copy, Zero, and Leq comparisons.
func step(t *testing.T, rng *rand.Rand, clocks []*wcModel) {
	t.Helper()
	a := clocks[rng.Intn(len(clocks))]
	width := len(a.ref)
	switch rng.Intn(10) {
	case 0, 1, 2: // Set
		i := rng.Intn(width)
		c := Clock(rng.Intn(50))
		a.w.Set(i, c)
		a.ref.Set(i, c)
	case 3, 4, 5: // Join
		b := clocks[rng.Intn(len(clocks))]
		gotChanged := a.w.Join(&b.w)
		wantChanged := a.ref.JoinChanged(b.ref)
		if gotChanged != wantChanged {
			t.Fatalf("Join changed=%v, dense changed=%v", gotChanged, wantChanged)
		}
	case 6: // queue-record round trip: pack b, join the record into a
		b := clocks[rng.Intn(len(clocks))]
		lo, hi := b.w.Span()
		rec := make([]Clock, PackedWords(b.w.Mask(), b.w.ChunkShift(), lo, hi))
		if n := b.w.AppendPacked(rec); n != len(rec) {
			t.Fatalf("AppendPacked wrote %d of %d words", n, len(rec))
		}
		gotChanged := a.w.JoinPacked(rec, lo, hi, b.w.Mask())
		wantChanged := a.ref.JoinChanged(b.ref)
		if gotChanged != wantChanged {
			t.Fatalf("packed join changed=%v, dense changed=%v", gotChanged, wantChanged)
		}
	case 7: // Copy
		b := clocks[rng.Intn(len(clocks))]
		a.w.Copy(&b.w)
		a.ref.Copy(b.ref)
	case 8: // Zero
		a.w.Zero()
		a.ref.Zero()
	case 9: // Leq both directions
		b := clocks[rng.Intn(len(clocks))]
		if got, want := a.w.LeqVC(b.w.VC()), a.ref.Leq(b.ref); got != want {
			t.Fatalf("LeqVC=%v, dense Leq=%v\na %v\nb %v", got, want, a.ref, b.ref)
		}
		if got, want := a.w.Leq(&b.w), a.ref.Leq(b.ref); got != want {
			t.Fatalf("Leq=%v, dense Leq=%v", got, want)
		}
	}
	a.verify(t)
}

// TestWCMatchesDense drives long random operation sequences over clock
// families of many widths — spanning the dense cutoff, the span-scan
// cutoff, and bitmap bucket widths beyond one component — and pins the
// windowed representation to the dense reference after every step.
func TestWCMatchesDense(t *testing.T) {
	for _, width := range []int{1, 2, 3, 4, 8, 9, 16, 64, 65, 100, 256, 300, 1024} {
		t.Run(fmt.Sprintf("width%d", width), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(width)))
			clocks := make([]*wcModel, 5)
			for i := range clocks {
				clocks[i] = newModel(width)
			}
			for step_ := 0; step_ < 3000; step_++ {
				step(t, rng, clocks)
			}
		})
	}
}

// TestWCGeneration pins the join-cache contract: the generation changes on
// every mutation and stays put when an operation was a no-op.
func TestWCGeneration(t *testing.T) {
	a, b := NewWC(100), NewWC(100)
	b.Set(7, 5)
	g := a.Gen()
	if !a.Join(&b) {
		t.Fatal("first join must change a")
	}
	if a.Gen() == g {
		t.Fatal("generation unchanged after mutating join")
	}
	g = a.Gen()
	if a.Join(&b) {
		t.Fatal("second join of unchanged source must be a no-op")
	}
	if a.Gen() != g {
		t.Fatal("generation changed by no-op join")
	}
	gb := b.Gen()
	b.Set(9, 1)
	if b.Gen() == gb {
		t.Fatal("Set must bump the generation")
	}
}

// TestWCForceDense pins that ForceDense produces full windows (so windowed
// call sites degrade to the dense behavior) without changing contents.
func TestWCForceDense(t *testing.T) {
	ForceDense(true)
	defer ForceDense(false)
	w := NewWC(256)
	if !w.Dense() {
		t.Fatal("ForceDense clock not dense")
	}
	if lo, hi := w.Span(); lo != 0 || hi != 256 {
		t.Fatalf("ForceDense span [%d,%d), want [0,256)", lo, hi)
	}
	w.Set(200, 3)
	x := New(256)
	if w.LeqVC(x) {
		t.Fatal("nonzero clock ⊑ ⊥")
	}
	x.Set(200, 3)
	if !w.LeqVC(x) {
		t.Fatal("clock !⊑ its copy")
	}
}

// TestWCSparseOpsTouchLittle sanity-checks the point of the representation:
// a join of a sparse wide clock must not have scanned the whole width. We
// can't count loop iterations, but we can pin the window stays narrow.
func TestWCSparseOpsTouchLittle(t *testing.T) {
	a, b := NewWC(1024), NewWC(1024)
	b.Set(0, 7)
	b.Set(900, 3)
	a.Join(&b)
	checkWindow(t, &a)
	if got := popcount(a.Mask()); got > 2 {
		t.Fatalf("sparse join dirtied %d buckets, want ≤ 2", got)
	}
	c := NewWC(1024)
	c.Copy(&a)
	checkWindow(t, &c)
	if c.VC()[0] != 7 || c.VC()[900] != 3 {
		t.Fatal("copy lost components")
	}
}

func popcount(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// FuzzWindowInvariants drives arbitrary operation sequences from fuzz input
// over a family of windowed clocks, checking after every operation that the
// window remains a superset of the true modified set and the contents match
// the dense reference.
func FuzzWindowInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 13, 100}, uint16(100))
	f.Add([]byte{9, 9, 9, 1, 1, 7, 7, 8, 3}, uint16(1024))
	f.Add([]byte{6, 6, 6, 0, 200, 7}, uint16(65))
	f.Fuzz(func(t *testing.T, ops []byte, w16 uint16) {
		width := int(w16)%2048 + 1
		clocks := make([]*wcModel, 3)
		for i := range clocks {
			clocks[i] = newModel(width)
		}
		if len(ops) > 512 {
			ops = ops[:512]
		}
		// Reuse the byte stream as a deterministic rng substitute.
		seed := int64(0)
		for _, b := range ops {
			seed = seed*31 + int64(b)
		}
		rng := rand.New(rand.NewSource(seed))
		for range ops {
			step(t, rng, clocks)
		}
	})
}
