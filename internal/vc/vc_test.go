package vc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genVC produces a random vector clock of width 6 with small components,
// so ⊑ comparisons hit both outcomes often.
func genVC(r *rand.Rand) VC {
	v := New(6)
	for i := range v {
		v[i] = Clock(r.Intn(4))
	}
	return v
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(genVC(r))
			}
		},
	}
}

// TestJoinLatticeLaws checks ⊔ is commutative, associative, idempotent, and
// that ⊥ is its identity — the lattice laws Algorithm 1 relies on.
func TestJoinLatticeLaws(t *testing.T) {
	commutative := func(a, b VC) bool {
		x, y := a.Clone(), b.Clone()
		x.Join(b)
		y.Join(a)
		return x.Equal(y)
	}
	if err := quick.Check(commutative, quickCfg()); err != nil {
		t.Errorf("join not commutative: %v", err)
	}
	associative := func(a, b, c VC) bool {
		x := a.Clone()
		x.Join(b)
		x.Join(c)
		bc := b.Clone()
		bc.Join(c)
		y := a.Clone()
		y.Join(bc)
		return x.Equal(y)
	}
	if err := quick.Check(associative, quickCfg()); err != nil {
		t.Errorf("join not associative: %v", err)
	}
	idempotent := func(a VC) bool {
		x := a.Clone()
		x.Join(a)
		return x.Equal(a)
	}
	if err := quick.Check(idempotent, quickCfg()); err != nil {
		t.Errorf("join not idempotent: %v", err)
	}
	identity := func(a VC) bool {
		x := a.Clone()
		x.Join(New(len(a)))
		return x.Equal(a)
	}
	if err := quick.Check(identity, quickCfg()); err != nil {
		t.Errorf("⊥ not identity: %v", err)
	}
}

// TestLeqPartialOrder checks ⊑ is reflexive, antisymmetric, transitive, and
// that join is the least upper bound.
func TestLeqPartialOrder(t *testing.T) {
	reflexive := func(a VC) bool { return a.Leq(a) }
	if err := quick.Check(reflexive, quickCfg()); err != nil {
		t.Errorf("⊑ not reflexive: %v", err)
	}
	antisymmetric := func(a, b VC) bool {
		if a.Leq(b) && b.Leq(a) {
			return a.Equal(b)
		}
		return true
	}
	if err := quick.Check(antisymmetric, quickCfg()); err != nil {
		t.Errorf("⊑ not antisymmetric: %v", err)
	}
	transitive := func(a, b, c VC) bool {
		if a.Leq(b) && b.Leq(c) {
			return a.Leq(c)
		}
		return true
	}
	if err := quick.Check(transitive, quickCfg()); err != nil {
		t.Errorf("⊑ not transitive: %v", err)
	}
	lub := func(a, b, c VC) bool {
		j := a.Clone()
		j.Join(b)
		if !a.Leq(j) || !b.Leq(j) {
			return false // upper bound
		}
		if a.Leq(c) && b.Leq(c) && !j.Leq(c) {
			return false // least
		}
		return true
	}
	if err := quick.Check(lub, quickCfg()); err != nil {
		t.Errorf("join not least upper bound: %v", err)
	}
}

func TestSetGetCopy(t *testing.T) {
	v := New(3)
	if !v.IsZero() {
		t.Error("New not ⊥")
	}
	v.Set(1, 7)
	if v.Get(1) != 7 || v.Get(0) != 0 {
		t.Errorf("Set/Get: %v", v)
	}
	if v.Get(99) != 0 {
		t.Error("Get out of range should be 0")
	}
	w := New(3)
	w.Copy(v)
	if !w.Equal(v) {
		t.Errorf("Copy: %v != %v", w, v)
	}
	w.Set(2, 5)
	if v.Get(2) == 5 {
		t.Error("Copy aliased the source")
	}
	w.Zero()
	if !w.IsZero() {
		t.Error("Zero failed")
	}
}

func TestCopyNarrower(t *testing.T) {
	v := New(4)
	for i := range v {
		v[i] = Clock(i + 1)
	}
	v.Copy(VC{9})
	want := VC{9, 0, 0, 0}
	if !v.Equal(want) {
		t.Errorf("Copy narrower: got %v, want %v", v, want)
	}
}

func TestComparable(t *testing.T) {
	a := VC{1, 0}
	b := VC{0, 1}
	if a.Comparable(b) {
		t.Error("incomparable clocks reported comparable")
	}
	c := VC{1, 1}
	if !a.Comparable(c) || !c.Comparable(a) {
		t.Error("ordered clocks reported incomparable")
	}
}

func TestString(t *testing.T) {
	if got := (VC{1, 2, 3}).String(); got != "[1,2,3]" {
		t.Errorf("String = %q", got)
	}
}

func TestEpoch(t *testing.T) {
	e := MakeEpoch(3, 41)
	if e.TID() != 3 || e.Clock() != 41 {
		t.Errorf("epoch roundtrip: %v", e)
	}
	if e.String() != "41@3" {
		t.Errorf("epoch string = %q", e.String())
	}
	v := New(5)
	if e.LeqVC(v) {
		t.Error("41@3 ⊑ ⊥ should be false")
	}
	v.Set(3, 41)
	if !e.LeqVC(v) {
		t.Error("41@3 ⊑ [.., 41@3] should hold")
	}
	if !NoEpoch.LeqVC(New(1)) {
		t.Error("NoEpoch must be ⊑ everything")
	}
}

// TestEpochVCAgreement checks the epoch ⊑ shortcut against the full vector
// comparison with quick-generated clocks.
func TestEpochVCAgreement(t *testing.T) {
	f := func(a VC) bool {
		for tid := 0; tid < len(a); tid++ {
			for c := Clock(0); c < 4; c++ {
				e := MakeEpoch(tid, c)
				full := New(len(a))
				full.Set(tid, c)
				if e.LeqVC(a) != full.Leq(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Errorf("epoch/VC disagreement: %v", err)
	}
}
