// Package vc implements the vector times of §3.1 of the paper: functions
// from thread index to a non-negative scalar clock, supporting pointwise
// comparison (⊑), pointwise maximum (⊔), and component assignment, plus a
// FastTrack-style epoch representation used by the optimized HB detector.
//
// Vector clocks are represented as fixed-width []int32 slices sized to the
// number of threads in the trace; detectors know the thread count up front
// (traceio headers and trace containers expose it), which keeps every
// operation a tight loop with no map overhead.
package vc

import (
	"fmt"
	"strings"
)

// Clock is a scalar component of a vector time. Local clocks increment only
// after release events (§3.2, "Local Clock Increment"), so int32 is ample
// for traces of a few hundred million events; all arithmetic is bounds-free.
type Clock = int32

// VC is a vector time: index i holds the clock of thread i. A nil VC is the
// ⊥ vector time of any width for reads (Get returns 0) but must be allocated
// before writes.
type VC []Clock

// New returns the ⊥ vector time for n threads.
func New(n int) VC { return make(VC, n) }

// Get returns component t, treating missing components as 0 so that a VC of
// any width compares correctly against wider clocks.
func (v VC) Get(t int) Clock {
	if t < len(v) {
		return v[t]
	}
	return 0
}

// Set assigns component t (V[t := n] in the paper). It panics if t is out of
// range: widths are fixed by the trace's thread count.
func (v VC) Set(t int, c Clock) { v[t] = c }

// Leq reports v ⊑ w: pointwise ≤.
func (v VC) Leq(w VC) bool {
	for t, c := range v {
		if c > w.Get(t) {
			return false
		}
	}
	return true
}

// Join sets v to v ⊔ w (pointwise maximum) in place. w must not be wider
// than v.
func (v VC) Join(w VC) {
	for t, c := range w {
		if c > v[t] {
			v[t] = c
		}
	}
}

// Copy sets v to an exact copy of w in place. w must not be wider than v;
// components of v beyond len(w) are zeroed.
func (v VC) Copy(w VC) {
	n := copy(v, w)
	for i := n; i < len(v); i++ {
		v[i] = 0
	}
}

// Clone returns a fresh VC equal to v.
func (v VC) Clone() VC {
	w := make(VC, len(v))
	copy(w, v)
	return w
}

// Equal reports pointwise equality, treating missing components as 0.
func (v VC) Equal(w VC) bool { return v.Leq(w) && w.Leq(v) }

// Comparable reports whether v ⊑ w or w ⊑ v, i.e. the times are ordered.
// Two conflicting events with incomparable times are a race (Theorem 2).
func (v VC) Comparable(w VC) bool { return v.Leq(w) || w.Leq(v) }

// Zero resets every component to 0.
func (v VC) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// IsZero reports whether v is the ⊥ vector time.
func (v VC) IsZero() bool {
	for _, c := range v {
		if c != 0 {
			return false
		}
	}
	return true
}

// String renders the vector time as "[c0,c1,...]".
func (v VC) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, c := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteByte(']')
	return b.String()
}
