// Package vc implements the vector times of §3.1 of the paper: functions
// from thread index to a non-negative scalar clock, supporting pointwise
// comparison (⊑), pointwise maximum (⊔), and component assignment, plus a
// FastTrack-style epoch representation used by the optimized HB detector.
//
// Vector clocks are represented as fixed-width []int32 slices sized to the
// number of threads in the trace; detectors know the thread count up front
// (traceio headers and trace containers expose it), which keeps every
// operation a tight loop with no map overhead.
package vc

import (
	"fmt"
	"strings"
)

// Clock is a scalar component of a vector time. Local clocks increment only
// after release events (§3.2, "Local Clock Increment"), so int32 is ample
// for traces of a few hundred million events; all arithmetic is bounds-free.
type Clock = int32

// VC is a vector time: index i holds the clock of thread i. A nil VC is the
// ⊥ vector time of any width for reads (Get returns 0) but must be allocated
// before writes.
type VC []Clock

// New returns the ⊥ vector time for n threads.
func New(n int) VC { return make(VC, n) }

// Get returns component t, treating missing components as 0 so that a VC of
// any width compares correctly against wider clocks.
func (v VC) Get(t int) Clock {
	if t < len(v) {
		return v[t]
	}
	return 0
}

// Set assigns component t (V[t := n] in the paper). It panics if t is out of
// range: widths are fixed by the trace's thread count.
func (v VC) Set(t int, c Clock) { v[t] = c }

// Clock widths are the trace's thread count, and real small traces sit at
// 2–4 threads, where loop setup and per-iteration bookkeeping cost as much
// as the comparisons themselves. The hot operations therefore unroll the
// small widths behind one length switch (perfectly predicted — a detector's
// clocks all share one width) and keep the general loop for wide clocks.

// Leq reports v ⊑ w: pointwise ≤.
func (v VC) Leq(w VC) bool {
	if len(v) <= len(w) {
		// Same-universe comparison (the detector hot path): index w
		// directly so the loop carries no per-component width branch.
		switch len(v) {
		case 2:
			return v[0] <= w[0] && v[1] <= w[1]
		case 3:
			return v[0] <= w[0] && v[1] <= w[1] && v[2] <= w[2]
		case 4:
			return v[0] <= w[0] && v[1] <= w[1] && v[2] <= w[2] && v[3] <= w[3]
		}
		w = w[:len(v)]
		for t, c := range v {
			if c > w[t] {
				return false
			}
		}
		return true
	}
	for t, c := range v {
		if c > w.Get(t) {
			return false
		}
	}
	return true
}

// Join sets v to v ⊔ w (pointwise maximum) in place. w must not be wider
// than v.
func (v VC) Join(w VC) {
	u := v[:len(w)] // hoist the bounds check out of the loop
	switch len(w) {
	case 2:
		if w[0] > u[0] {
			u[0] = w[0]
		}
		if w[1] > u[1] {
			u[1] = w[1]
		}
		return
	case 3:
		if w[0] > u[0] {
			u[0] = w[0]
		}
		if w[1] > u[1] {
			u[1] = w[1]
		}
		if w[2] > u[2] {
			u[2] = w[2]
		}
		return
	}
	for t, c := range w {
		if c > u[t] {
			u[t] = c
		}
	}
}

// JoinChanged sets v to v ⊔ w in place, like Join, and reports whether any
// component of v grew — the signal hot paths use to keep derived clocks
// (the WCP effective-time cache) valid without recomputing them.
func (v VC) JoinChanged(w VC) bool {
	changed := false
	u := v[:len(w)]
	switch len(w) {
	case 2:
		if w[0] > u[0] {
			u[0] = w[0]
			changed = true
		}
		if w[1] > u[1] {
			u[1] = w[1]
			changed = true
		}
		return changed
	case 3:
		if w[0] > u[0] {
			u[0] = w[0]
			changed = true
		}
		if w[1] > u[1] {
			u[1] = w[1]
			changed = true
		}
		if w[2] > u[2] {
			u[2] = w[2]
			changed = true
		}
		return changed
	}
	for t, c := range w {
		if c > u[t] {
			u[t] = c
			changed = true
		}
	}
	return changed
}

// Copy sets v to an exact copy of w in place. w must not be wider than v;
// components of v beyond len(w) are zeroed.
func (v VC) Copy(w VC) {
	if len(v) == len(w) {
		switch len(w) {
		case 2:
			v[0], v[1] = w[0], w[1]
			return
		case 3:
			v[0], v[1], v[2] = w[0], w[1], w[2]
			return
		case 4:
			v[0], v[1], v[2], v[3] = w[0], w[1], w[2], w[3]
			return
		}
	}
	if len(w) > 32 {
		n := copy(v, w)
		for i := n; i < len(v); i++ {
			v[i] = 0
		}
		return
	}
	// Detector clocks are usually a handful of components wide, where the
	// memmove call behind copy() costs more than the move itself; iterate
	// backwards so the compiler does not convert the loop to memmove.
	for i := len(v) - 1; i >= len(w); i-- {
		v[i] = 0
	}
	for i := len(w) - 1; i >= 0; i-- {
		v[i] = w[i]
	}
}

// Clone returns a fresh VC equal to v.
func (v VC) Clone() VC {
	w := make(VC, len(v))
	copy(w, v)
	return w
}

// Equal reports pointwise equality, treating missing components as 0.
func (v VC) Equal(w VC) bool { return v.Leq(w) && w.Leq(v) }

// Comparable reports whether v ⊑ w or w ⊑ v, i.e. the times are ordered.
// Two conflicting events with incomparable times are a race (Theorem 2).
func (v VC) Comparable(w VC) bool { return v.Leq(w) || w.Leq(v) }

// Zero resets every component to 0.
func (v VC) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// IsZero reports whether v is the ⊥ vector time.
func (v VC) IsZero() bool {
	for _, c := range v {
		if c != 0 {
			return false
		}
	}
	return true
}

// String renders the vector time as "[c0,c1,...]".
func (v VC) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, c := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteByte(']')
	return b.String()
}
