package vc

import "testing"

func TestArenaGetZeroed(t *testing.T) {
	a := NewArena(4)
	r := a.GetCopy(VC{1, 2, 3, 4})
	a.Release(r)
	r2 := a.Get()
	if r2 != r {
		t.Fatalf("freelist miss: Get did not reuse the released ref")
	}
	if !r2.VC().IsZero() {
		t.Fatalf("recycled clock not zeroed: %v", r2.VC())
	}
}

func TestArenaGetCopy(t *testing.T) {
	a := NewArena(3)
	w := VC{5, 0, 7}
	r := a.GetCopy(w)
	if !r.VC().Equal(w) {
		t.Fatalf("GetCopy = %v, want %v", r.VC(), w)
	}
	if len(r.VC()) != 3 {
		t.Fatalf("len = %d, want 3", len(r.VC()))
	}
}

func TestArenaRefcount(t *testing.T) {
	a := NewArena(2)
	r := a.GetCopy(VC{1, 1})
	r.Retain()
	r.Retain() // three holders in total
	if a.Release(r) {
		t.Fatal("recycled at refcount 2")
	}
	if a.Release(r) {
		t.Fatal("recycled at refcount 1")
	}
	if !a.Release(r) {
		t.Fatal("last release did not recycle")
	}
	if a.Recycles() != 1 {
		t.Fatalf("Recycles = %d, want 1", a.Recycles())
	}
}

func TestArenaSteadyStateNoGrowth(t *testing.T) {
	a := NewArena(8)
	// Simulate the queue cycle: publish, share across 7 queues, drain all.
	warm := func() {
		refs := make([]*Ref, 0, 16)
		for i := 0; i < 16; i++ {
			r := a.GetCopy(VC{1, 2, 3, 4, 5, 6, 7, 8})
			for j := 0; j < 6; j++ {
				r.Retain()
			}
			refs = append(refs, r)
		}
		for _, r := range refs {
			for j := 0; j < 7; j++ {
				a.Release(r)
			}
		}
	}
	warm()
	before := a.Allocs()
	for i := 0; i < 100; i++ {
		warm()
	}
	if a.Allocs() != before {
		t.Fatalf("steady state allocated: %d -> %d distinct clocks", before, a.Allocs())
	}
}

func TestArenaSlabRollover(t *testing.T) {
	a := NewArena(2)
	// Hold more clocks than one slab provides; every clock must stay intact.
	n := arenaSlabClocks*2 + 10
	refs := make([]*Ref, n)
	for i := range refs {
		refs[i] = a.GetCopy(VC{Clock(i), Clock(i + 1)})
	}
	for i, r := range refs {
		if got := r.VC(); got[0] != Clock(i) || got[1] != Clock(i+1) {
			t.Fatalf("clock %d corrupted: %v", i, got)
		}
	}
	if a.Allocs() != n {
		t.Fatalf("Allocs = %d, want %d", a.Allocs(), n)
	}
}

func TestNewMatrix(t *testing.T) {
	m := NewMatrix(3, 4)
	if len(m) != 3 {
		t.Fatalf("rows = %d, want 3", len(m))
	}
	for i, row := range m {
		if len(row) != 4 || cap(row) != 4 {
			t.Fatalf("row %d: len=%d cap=%d, want 4/4", i, len(row), cap(row))
		}
		row.Set(i, Clock(i+1))
	}
	// Rows must not alias.
	for i, row := range m {
		for j, c := range row {
			want := Clock(0)
			if j == i {
				want = Clock(i + 1)
			}
			if c != want {
				t.Fatalf("m[%d][%d] = %d, want %d", i, j, c, want)
			}
		}
	}
}
