// Package snap implements the versioned binary framing shared by every
// detector snapshot: a magic header, a format version, a length-delimited
// payload, and a CRC32 trailer. Encoders buffer the payload and emit the
// frame on Close; decoders read the whole frame, verify the checksum
// *before* interpreting a single payload byte, and then decode from memory.
// That ordering is what makes the codec fuzz-safe: a flipped bit fails the
// checksum with a typed DecodeError instead of driving the decoder into a
// bogus allocation, and a truncated frame fails the length read the same
// way. Restore never panics on hostile input.
//
// The payload encoding is deliberately minimal: unsigned varints, zigzag
// varints, length-prefixed byte strings, and a sparse encoding for vector
// clocks (count of nonzero components, then delta-coded index/value pairs).
// Everything detector-specific lives in the detectors' own snapshot files;
// this package only guarantees the frame is intact and self-delimiting.
package snap

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies a snapshot frame. The trailing byte doubles as a
// format-version slot so readers can reject frames from future encoders.
var magic = [4]byte{'r', 'p', 's', 'n'}

// Version is the current snapshot format version. Bump on any payload
// layout change; Reader rejects mismatched versions with a DecodeError.
const Version = 1

// maxPayload bounds a single frame's payload so a corrupted length field
// cannot drive a multi-gigabyte allocation. Detector snapshots for even
// very large sessions sit far below this.
const maxPayload = 1 << 30

// DecodeError is the typed failure every decoding path returns: corrupt
// framing, checksum mismatch, version skew, truncation, or a payload that
// violates the bounds the decoder declared. Restore APIs guarantee any
// failure is a *DecodeError (or an underlying read error), never a panic.
type DecodeError struct {
	Reason string
}

func (e *DecodeError) Error() string { return "snapshot: " + e.Reason }

func errf(format string, args ...any) error {
	return &DecodeError{Reason: fmt.Sprintf(format, args...)}
}

// Writer buffers a snapshot payload and emits one framed snapshot on Close.
type Writer struct {
	w   io.Writer
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

// NewWriter returns a Writer that will emit its frame to w on Close.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

// Varint appends a zigzag-coded signed varint.
func (w *Writer) Varint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

// Int appends an int as a zigzag varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.buf.WriteByte(b) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf.WriteByte(1)
	} else {
		w.buf.WriteByte(0)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf.Write(b)
}

// I32s appends a length-prefixed slice of int32 values as zigzag varints.
// Used for raw csLog words, which may be negative (packed-span sentinels).
func (w *Writer) I32s(v []int32) {
	w.Uvarint(uint64(len(v)))
	for _, c := range v {
		w.Varint(int64(c))
	}
}

// Sparse appends a vector of int32 components in sparse form: the count of
// nonzero components followed by delta-coded (index, value) pairs. Width is
// not stored — the decoder knows it from the detector dimensions.
func (w *Writer) Sparse(v []int32) {
	n := 0
	for _, c := range v {
		if c != 0 {
			n++
		}
	}
	w.Uvarint(uint64(n))
	prev := 0
	for i, c := range v {
		if c == 0 {
			continue
		}
		w.Uvarint(uint64(i - prev))
		w.Varint(int64(c))
		prev = i
	}
}

// Len returns the number of payload bytes buffered so far.
func (w *Writer) Len() int { return w.buf.Len() }

// Close frames the buffered payload (magic, version, length, payload,
// CRC32) and writes it to the underlying writer.
func (w *Writer) Close() error {
	var hdr [5 + binary.MaxVarintLen64]byte
	copy(hdr[:4], magic[:])
	hdr[4] = Version
	n := 5 + binary.PutUvarint(hdr[5:], uint64(w.buf.Len()))
	if _, err := w.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf.Bytes()); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(w.buf.Bytes()))
	_, err := w.w.Write(sum[:])
	return err
}

// Reader decodes one framed snapshot. NewReader consumes the entire frame
// from the stream and verifies the checksum before returning; all the
// field accessors then decode from memory and report typed DecodeErrors
// on malformed payloads.
type Reader struct {
	buf []byte
	pos int
}

// byteGetter adapts an io.Reader for binary.ReadUvarint.
type byteGetter struct {
	r   io.Reader
	one [1]byte
}

func (g *byteGetter) ReadByte() (byte, error) {
	if _, err := io.ReadFull(g.r, g.one[:]); err != nil {
		return 0, err
	}
	return g.one[0], nil
}

// NewReader reads one complete frame from r and verifies its checksum.
// Frames are self-delimiting, so consecutive snapshots can be concatenated
// on one stream and read back with successive NewReader calls.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, err // clean EOF between frames is not corruption
		}
		return nil, errf("truncated header: %v", err)
	}
	if !bytes.Equal(hdr[:4], magic[:]) {
		return nil, errf("bad magic %q", hdr[:4])
	}
	if hdr[4] != Version {
		return nil, errf("unsupported format version %d (want %d)", hdr[4], Version)
	}
	size, err := binary.ReadUvarint(&byteGetter{r: r})
	if err != nil {
		return nil, errf("truncated payload length: %v", err)
	}
	if size > maxPayload {
		return nil, errf("payload length %d exceeds limit", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, errf("truncated payload: %v", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, errf("truncated checksum: %v", err)
	}
	if got := crc32.ChecksumIEEE(buf); got != binary.LittleEndian.Uint32(sum[:]) {
		return nil, errf("checksum mismatch")
	}
	return &Reader{buf: buf}, nil
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errf("truncated varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

// Varint decodes a zigzag-coded signed varint.
func (r *Reader) Varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errf("truncated varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

// Count decodes an unsigned varint and checks it against an upper bound,
// guarding every loop and allocation a decoder performs.
func (r *Reader) Count(max int) (int, error) {
	v, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(max) {
		return 0, errf("count %d exceeds limit %d", v, max)
	}
	return int(v), nil
}

// Int decodes a zigzag varint as an int.
func (r *Reader) Int() (int, error) {
	v, err := r.Varint()
	if err != nil {
		return 0, err
	}
	return int(v), nil
}

// I32 decodes a zigzag varint and range-checks it into an int32.
func (r *Reader) I32() (int32, error) {
	v, err := r.Varint()
	if err != nil {
		return 0, err
	}
	if v < -1<<31 || v > 1<<31-1 {
		return 0, errf("value %d overflows int32", v)
	}
	return int32(v), nil
}

// Byte decodes one raw byte.
func (r *Reader) Byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, errf("truncated byte at offset %d", r.pos)
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

// Bool decodes one byte as a bool, rejecting values other than 0 and 1 so
// re-encoding is byte-identical.
func (r *Reader) Bool() (bool, error) {
	b, err := r.Byte()
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, errf("bad bool byte %d", b)
	}
	return b == 1, nil
}

// String decodes a length-prefixed string bounded by max bytes.
func (r *Reader) String(max int) (string, error) {
	n, err := r.Count(max)
	if err != nil {
		return "", err
	}
	if r.pos+n > len(r.buf) {
		return "", errf("truncated string at offset %d", r.pos)
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s, nil
}

// Bytes decodes a length-prefixed byte string bounded by max bytes. The
// returned slice is freshly allocated.
func (r *Reader) Bytes(max int) ([]byte, error) {
	n, err := r.Count(max)
	if err != nil {
		return nil, err
	}
	if r.pos+n > len(r.buf) {
		return nil, errf("truncated bytes at offset %d", r.pos)
	}
	b := make([]byte, n)
	copy(b, r.buf[r.pos:r.pos+n])
	r.pos += n
	return b, nil
}

// I32s decodes a length-prefixed slice of zigzag-coded int32 values bounded
// by max elements.
func (r *Reader) I32s(max int) ([]int32, error) {
	n, err := r.Count(max)
	if err != nil {
		return nil, err
	}
	v := make([]int32, n)
	for i := range v {
		c, err := r.I32()
		if err != nil {
			return nil, err
		}
		v[i] = c
	}
	return v, nil
}

// Sparse decodes a sparse int32 vector into dst (which the caller has sized
// to the expected width and zeroed). Indices must be strictly increasing
// and in range, so decoding then re-encoding reproduces identical bytes.
func (r *Reader) Sparse(dst []int32) error {
	n, err := r.Count(len(dst))
	if err != nil {
		return err
	}
	idx := -1
	for i := 0; i < n; i++ {
		d, err := r.Uvarint()
		if err != nil {
			return err
		}
		if idx < 0 {
			idx = int(d)
		} else {
			if d == 0 {
				return errf("non-increasing sparse index at offset %d", r.pos)
			}
			idx += int(d)
		}
		if idx >= len(dst) {
			return errf("sparse index %d out of range %d", idx, len(dst))
		}
		v, err := r.I32()
		if err != nil {
			return err
		}
		if v == 0 {
			return errf("zero value in sparse vector at index %d", idx)
		}
		dst[idx] = v
	}
	return nil
}

// Len returns the total payload length.
func (r *Reader) Len() int { return len(r.buf) }

// Remaining returns the number of undecoded payload bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

// Close verifies the payload was fully consumed — trailing garbage inside
// a checksummed frame means encoder/decoder disagreement, which must
// surface as corruption rather than be silently ignored.
func (r *Reader) Close() error {
	if r.pos != len(r.buf) {
		return errf("%d trailing payload bytes", len(r.buf)-r.pos)
	}
	return nil
}
