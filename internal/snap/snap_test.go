package snap

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func frame(t *testing.T, fill func(w *Writer)) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	fill(w)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	b := frame(t, func(w *Writer) {
		w.Uvarint(0)
		w.Uvarint(1 << 40)
		w.Varint(-5)
		w.Int(12345)
		w.Byte(0xab)
		w.Bool(true)
		w.Bool(false)
		w.String("hello")
		w.Bytes([]byte{1, 2, 3})
		w.I32s([]int32{-1, 0, 1 << 30, -32768})
		w.Sparse([]int32{0, 7, 0, 0, -2, 9})
	})
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	if v, _ := r.Uvarint(); v != 0 {
		t.Fatalf("uvarint: %d", v)
	}
	if v, _ := r.Uvarint(); v != 1<<40 {
		t.Fatalf("uvarint: %d", v)
	}
	if v, _ := r.Varint(); v != -5 {
		t.Fatalf("varint: %d", v)
	}
	if v, _ := r.Int(); v != 12345 {
		t.Fatalf("int: %d", v)
	}
	if v, _ := r.Byte(); v != 0xab {
		t.Fatalf("byte: %x", v)
	}
	if v, _ := r.Bool(); !v {
		t.Fatal("bool true")
	}
	if v, _ := r.Bool(); v {
		t.Fatal("bool false")
	}
	if v, _ := r.String(100); v != "hello" {
		t.Fatalf("string: %q", v)
	}
	if v, _ := r.Bytes(100); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("bytes: %v", v)
	}
	v32, err := r.I32s(100)
	if err != nil || len(v32) != 4 || v32[0] != -1 || v32[2] != 1<<30 || v32[3] != -32768 {
		t.Fatalf("i32s: %v %v", v32, err)
	}
	sp := make([]int32, 6)
	if err := r.Sparse(sp); err != nil {
		t.Fatalf("sparse: %v", err)
	}
	want := []int32{0, 7, 0, 0, -2, 9}
	for i := range want {
		if sp[i] != want[i] {
			t.Fatalf("sparse[%d] = %d, want %d", i, sp[i], want[i])
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestConcatenatedFrames(t *testing.T) {
	a := frame(t, func(w *Writer) { w.Uvarint(1) })
	b := frame(t, func(w *Writer) { w.Uvarint(2) })
	stream := bytes.NewReader(append(append([]byte{}, a...), b...))
	for want := uint64(1); want <= 2; want++ {
		r, err := NewReader(stream)
		if err != nil {
			t.Fatalf("frame %d: %v", want, err)
		}
		if v, _ := r.Uvarint(); v != want {
			t.Fatalf("frame %d: got %d", want, v)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("frame %d close: %v", want, err)
		}
	}
	if _, err := NewReader(stream); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func wantDecodeError(t *testing.T, b []byte) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(b))
	if err == nil {
		err = r.Close()
	}
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("expected DecodeError, got %v", err)
	}
}

func TestCorruption(t *testing.T) {
	b := frame(t, func(w *Writer) { w.String("payload bytes here") })

	// Every single-bit flip must fail the checksum, the magic, the
	// version, or the framing — never decode successfully.
	for i := 0; i < len(b)*8; i++ {
		c := append([]byte{}, b...)
		c[i/8] ^= 1 << (i % 8)
		r, err := NewReader(bytes.NewReader(c))
		if err != nil {
			continue
		}
		if _, err := r.String(100); err == nil {
			if err := r.Close(); err == nil {
				t.Fatalf("bit flip %d decoded cleanly", i)
			}
		}
	}

	// Truncations at every boundary.
	for n := 0; n < len(b); n++ {
		r, err := NewReader(bytes.NewReader(b[:n]))
		if err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly (%v)", n, r)
		}
	}

	// Version skew.
	c := append([]byte{}, b...)
	c[4] = Version + 1
	wantDecodeError(t, c)
}

func TestTrailingPayload(t *testing.T) {
	b := frame(t, func(w *Writer) {
		w.Uvarint(1)
		w.Uvarint(2) // decoder below only reads one value
	})
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	if _, err := r.Uvarint(); err != nil {
		t.Fatalf("uvarint: %v", err)
	}
	var de *DecodeError
	if err := r.Close(); !errors.As(err, &de) {
		t.Fatalf("expected trailing-bytes DecodeError, got %v", err)
	}
}

func TestBoundsEnforced(t *testing.T) {
	b := frame(t, func(w *Writer) { w.String("much too long") })
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	var de *DecodeError
	if _, err := r.String(3); !errors.As(err, &de) {
		t.Fatalf("expected bound DecodeError, got %v", err)
	}
}
