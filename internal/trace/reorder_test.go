package trace

import (
	"strings"
	"testing"
)

// fig1b rebuilds the paper's Figure 1(b) trace, whose critical sections can
// be legally swapped.
func fig1b() *Trace {
	b := NewBuilder()
	b.Write("t1", "y")   // 0
	b.Acquire("t1", "l") // 1
	b.Read("t1", "x")    // 2
	b.Release("t1", "l") // 3
	b.Acquire("t2", "l") // 4
	b.Read("t2", "x")    // 5
	b.Release("t2", "l") // 6
	b.Read("t2", "y")    // 7
	return b.MustBuild()
}

func TestLastWriters(t *testing.T) {
	b := NewBuilder()
	b.Write("t1", "x") // 0
	b.Read("t2", "x")  // 1 sees 0
	b.Write("t2", "x") // 2
	b.Read("t1", "x")  // 3 sees 2
	b.Read("t1", "y")  // 4 sees none
	tr := b.MustBuild()
	lw := LastWriters(tr)
	want := []int{-1, 0, -1, 2, -1}
	for i, w := range want {
		if lw[i] != w {
			t.Errorf("lastWriter[%d] = %d, want %d", i, lw[i], w)
		}
	}
}

func TestCheckReorderingAccepts(t *testing.T) {
	tr := fig1b()
	// The paper's reordering: t2's critical section first, exposing the
	// race on y by putting events 0 and 7 adjacent (r(y) originally saw
	// w(y), so the write must still precede the read).
	ro := Reordering{4, 5, 6, 0, 7}
	if err := CheckReordering(tr, ro); err != nil {
		t.Fatalf("valid reordering rejected: %v", err)
	}
	if !RevealsRace(tr, ro, 0, 7) {
		t.Error("reordering should reveal the (0,7) race")
	}
	if RevealsRace(tr, ro, 2, 5) {
		t.Error("read-read pair must not count as a race")
	}
	// Prefixes and the empty reordering are fine too.
	if err := CheckReordering(tr, Reordering{}); err != nil {
		t.Errorf("empty reordering rejected: %v", err)
	}
	if err := CheckReordering(tr, Reordering{0, 1, 2}); err != nil {
		t.Errorf("prefix reordering rejected: %v", err)
	}
}

func TestCheckReorderingRejects(t *testing.T) {
	tr := fig1b()
	cases := []struct {
		name   string
		ro     Reordering
		reason string
	}{
		{"out of range", Reordering{99}, "out of range"},
		{"duplicate", Reordering{0, 0}, "twice"},
		{"thread order broken", Reordering{1, 0}, "prefix"},
		{"thread gap", Reordering{0, 2}, "prefix"},
		{"lock overlap", Reordering{0, 1, 4}, "lock semantics"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckReordering(tr, tc.ro)
			if err == nil {
				t.Fatal("expected rejection")
			}
			if !strings.Contains(err.Error(), tc.reason) {
				t.Errorf("error %q does not mention %q", err, tc.reason)
			}
		})
	}
}

func TestCheckReorderingReadSeesWriter(t *testing.T) {
	b := NewBuilder()
	b.Write("t1", "x") // 0
	b.Write("t2", "x") // 1
	b.Read("t2", "x")  // 2: sees 1 in the original
	tr := b.MustBuild()
	// Scheduling t2 entirely before t1 keeps read 2 seeing write 1: OK.
	if err := CheckReordering(tr, Reordering{1, 2, 0}); err != nil {
		t.Errorf("writer-preserving reordering rejected: %v", err)
	}
	// Interleaving t1's write between breaks the read's writer.
	err := CheckReordering(tr, Reordering{1, 0, 2})
	if err == nil || !strings.Contains(err.Error(), "sees writer") {
		t.Errorf("writer-violating reordering: err = %v", err)
	}
	// A read that originally saw no writer must still see none.
	b2 := NewBuilder()
	b2.Read("t1", "x")  // 0 sees none
	b2.Write("t2", "x") // 1
	tr2 := b2.MustBuild()
	if err := CheckReordering(tr2, Reordering{1, 0}); err == nil {
		t.Error("read moved after a writer it never saw should be rejected")
	}
}

func TestRevealsDeadlock(t *testing.T) {
	b := NewBuilder()
	b.Acquire("t1", "l") // 0
	b.Acquire("t1", "m") // 1
	b.Release("t1", "m") // 2
	b.Release("t1", "l") // 3
	b.Acquire("t2", "m") // 4
	b.Acquire("t2", "l") // 5
	b.Release("t2", "l") // 6
	b.Release("t2", "m") // 7
	tr := b.MustBuild()
	// Schedule both outer acquires only: t1 holds l and next wants m; t2
	// holds m and next wants l.
	ro := Reordering{0, 4}
	if err := CheckReordering(tr, ro); err != nil {
		t.Fatalf("reordering invalid: %v", err)
	}
	d := RevealsDeadlock(tr, ro)
	if len(d) != 2 {
		t.Errorf("deadlocked threads = %v, want both", d)
	}
	// The full original order deadlocks nobody.
	full := Reordering{0, 1, 2, 3, 4, 5, 6, 7}
	if d := RevealsDeadlock(tr, full); d != nil {
		t.Errorf("complete schedule reported deadlock %v", d)
	}
	// One thread waiting on a finished holder is not a deadlock.
	if d := RevealsDeadlock(tr, Reordering{0}); d != nil {
		t.Errorf("single waiter reported as deadlock: %v", d)
	}
}

func TestRevealsRaceRequiresAdjacency(t *testing.T) {
	b := NewBuilder()
	b.Write("t1", "x") // 0
	b.Write("t1", "y") // 1
	b.Write("t2", "x") // 2
	tr := b.MustBuild()
	if !RevealsRace(tr, Reordering{1, 0, 2}, 0, 2) {
		t.Error("adjacent conflicting events should be a revealed race")
	}
	if RevealsRace(tr, Reordering{0, 1, 2}, 0, 2) {
		t.Error("non-adjacent events are not a revealed race")
	}
	if RevealsRace(tr, Reordering{0, 1}, 0, 1) {
		t.Error("same-thread events cannot race")
	}
}
