package trace

import (
	"fmt"

	"repro/internal/event"
)

// A Reordering is a candidate alternative execution of a trace, given as a
// sequence of event indices into the original trace. The paper's predictable
// races and deadlocks (§2.1) are defined over *correct reorderings*; this
// file implements the checker for that definition, which the predictive
// engine uses to certify every witness it reports and the soundness property
// tests use to validate WCP's guarantee.
type Reordering []int

// LastWriters returns, for each event index, the index of the last write to
// the same variable strictly before it in the trace, or -1. Only read events
// have meaningful entries; other kinds map to -1.
func LastWriters(tr *Trace) []int {
	last := make(map[event.VID]int)
	out := make([]int, len(tr.Events))
	for i, e := range tr.Events {
		out[i] = -1
		switch e.Kind {
		case event.Read:
			if w, ok := last[e.Var()]; ok {
				out[i] = w
			}
		case event.Write:
			last[e.Var()] = i
		}
	}
	return out
}

// CheckReordering verifies that ro is a correct reordering of tr per §2.1:
//
//   - ro lists distinct valid event indices of tr;
//   - for every thread t, ro's subsequence of t's events is a prefix of
//     tr↾t (thread order preserved, no gaps);
//   - ro, viewed as a trace, satisfies lock semantics and well-nestedness;
//   - every read event in ro sees the same last writer as it did in tr
//     (including "no writer" staying "no writer").
//
// A nil error means ro is a correct reordering.
func CheckReordering(tr *Trace, ro Reordering) error {
	n := len(tr.Events)
	seen := make([]bool, n)
	for _, i := range ro {
		if i < 0 || i >= n {
			return fmt.Errorf("reordering: event index %d out of range [0,%d)", i, n)
		}
		if seen[i] {
			return fmt.Errorf("reordering: event #%d appears twice", i)
		}
		seen[i] = true
	}

	// Per-thread prefix property: the k-th event of thread t in ro must be
	// the k-th event of thread t in tr.
	proj := make(map[event.TID][]int)
	for i, e := range tr.Events {
		proj[e.Thread] = append(proj[e.Thread], i)
	}
	pos := make(map[event.TID]int)
	for _, i := range ro {
		t := tr.Events[i].Thread
		k := pos[t]
		if proj[t][k] != i {
			return fmt.Errorf("reordering: thread %s event %d is #%d, want #%d (not a per-thread prefix)",
				tr.Symbols.ThreadName(t), k, i, proj[t][k])
		}
		pos[t] = k + 1
	}

	// Lock semantics + well-nestedness of the reordered sequence.
	sub := &Trace{Symbols: tr.Symbols}
	for _, i := range ro {
		sub.Events = append(sub.Events, tr.Events[i])
	}
	if err := Validate(sub); err != nil {
		return fmt.Errorf("reordering: %w", err)
	}

	// Read-sees-same-writer.
	origLast := LastWriters(tr)
	last := make(map[event.VID]int)
	for _, i := range ro {
		e := tr.Events[i]
		switch e.Kind {
		case event.Read:
			w := -1
			if lw, ok := last[e.Var()]; ok {
				w = lw
			}
			if w != origLast[i] {
				return fmt.Errorf("reordering: read #%d of %s sees writer #%d, saw #%d in original",
					i, tr.Symbols.VarName(e.Var()), w, origLast[i])
			}
		case event.Write:
			last[e.Var()] = i
		}
	}
	return nil
}

// RevealsRace reports whether the correct reordering ro places the
// conflicting events e1, e2 (indices into tr) next to each other, in either
// order. Callers should have verified CheckReordering first.
func RevealsRace(tr *Trace, ro Reordering, e1, e2 int) bool {
	if !tr.Events[e1].Conflicts(tr.Events[e2]) {
		return false
	}
	for k := 0; k+1 < len(ro); k++ {
		a, b := ro[k], ro[k+1]
		if (a == e1 && b == e2) || (a == e2 && b == e1) {
			return true
		}
	}
	return false
}

// RevealsDeadlock reports whether the correct reordering ro ends in a state
// where some set D of threads is deadlocked (§2.1): for every thread in D,
// its next unscheduled event in tr is an acquire of a lock currently held
// (in ro's final state) by another thread of D. Returns the deadlocked
// thread set, or nil.
func RevealsDeadlock(tr *Trace, ro Reordering) []event.TID {
	// Final lock-held state and per-thread progress after ro.
	holder := make(map[event.LID]event.TID)
	depth := make(map[event.LID]int)
	pos := make(map[event.TID]int)
	proj := make(map[event.TID][]int)
	for i, e := range tr.Events {
		proj[e.Thread] = append(proj[e.Thread], i)
	}
	for _, i := range ro {
		e := tr.Events[i]
		pos[e.Thread]++
		switch e.Kind {
		case event.Acquire:
			holder[e.Lock()] = e.Thread
			depth[e.Lock()]++
		case event.Release:
			depth[e.Lock()]--
			if depth[e.Lock()] == 0 {
				delete(holder, e.Lock())
			}
		}
	}
	// Candidate set: threads whose next event is an acquire of a lock held
	// by a different thread. Then shrink to a mutually-waiting set: every
	// blocking lock must be held by another candidate.
	blockedOn := make(map[event.TID]event.TID) // waiter -> holder
	for t, evs := range proj {
		k := pos[t]
		if k >= len(evs) {
			continue
		}
		e := tr.Events[evs[k]]
		if e.Kind != event.Acquire {
			continue
		}
		if h, ok := holder[e.Lock()]; ok && h != t {
			blockedOn[t] = h
		}
	}
	// Iteratively remove waiters whose holder is not itself a waiter: a
	// deadlocked set must be closed under "blocked on".
	for changed := true; changed; {
		changed = false
		for t, h := range blockedOn {
			if _, ok := blockedOn[h]; !ok {
				delete(blockedOn, t)
				changed = true
			}
		}
	}
	if len(blockedOn) == 0 {
		return nil
	}
	out := make([]event.TID, 0, len(blockedOn))
	for t := range blockedOn {
		out = append(out, t)
	}
	return out
}
