package trace

import (
	"strings"
	"testing"

	"repro/internal/event"
)

func simpleTrace() *Trace {
	b := NewBuilder()
	b.Acquire("t1", "l")
	b.Write("t1", "x")
	b.Release("t1", "l")
	b.Acquire("t2", "l")
	b.Read("t2", "x")
	b.Release("t2", "l")
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	tr := simpleTrace()
	if tr.Len() != 6 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.NumThreads() != 2 || tr.NumLocks() != 1 || tr.NumVars() != 1 {
		t.Errorf("counts: T=%d L=%d V=%d", tr.NumThreads(), tr.NumLocks(), tr.NumVars())
	}
	if tr.Events[0].Kind != event.Acquire || tr.Events[1].Kind != event.Write {
		t.Errorf("event kinds wrong: %v", tr.Events[:2])
	}
	if !tr.ThreadOrdered(0, 1) {
		t.Error("events 0,1 are thread ordered")
	}
	if tr.ThreadOrdered(0, 3) {
		t.Error("events 0,3 are in different threads")
	}
	if !strings.Contains(tr.Describe(1), "w(x)") {
		t.Errorf("Describe = %q", tr.Describe(1))
	}
}

func TestBuilderShorthands(t *testing.T) {
	b := NewBuilder()
	b.Sync("t1", "m")
	tr := b.MustBuild()
	if tr.Len() != 4 {
		t.Fatalf("Sync should emit 4 events, got %d", tr.Len())
	}
	wantKinds := []event.Kind{event.Acquire, event.Read, event.Write, event.Release}
	for i, k := range wantKinds {
		if tr.Events[i].Kind != k {
			t.Errorf("sync event %d kind = %v, want %v", i, tr.Events[i].Kind, k)
		}
	}
	if tr.Symbols.VarName(tr.Events[1].Var()) != "mVar" {
		t.Errorf("sync variable = %q", tr.Symbols.VarName(tr.Events[1].Var()))
	}

	b2 := NewBuilder()
	b2.AcRel("t1", "y")
	tr2 := b2.MustBuild()
	if tr2.Len() != 2 || tr2.Events[0].Kind != event.Acquire || tr2.Events[1].Kind != event.Release {
		t.Errorf("AcRel: %v", tr2.Events)
	}

	b3 := NewBuilder()
	b3.CriticalSection("t1", "l", func(b *Builder) { b.Write("t1", "x") })
	tr3 := b3.MustBuild()
	if tr3.Len() != 3 || tr3.Events[1].Kind != event.Write {
		t.Errorf("CriticalSection: %v", tr3.Events)
	}
}

func TestProject(t *testing.T) {
	tr := simpleTrace()
	p1 := tr.Project(tr.Symbols.Thread("t1"))
	if len(p1) != 3 || p1[0] != 0 || p1[2] != 2 {
		t.Errorf("Project t1 = %v", p1)
	}
	p2 := tr.Project(tr.Symbols.Thread("t2"))
	if len(p2) != 3 || p2[0] != 3 {
		t.Errorf("Project t2 = %v", p2)
	}
}

func TestMatch(t *testing.T) {
	b := NewBuilder()
	b.Acquire("t1", "l") // 0
	b.Acquire("t1", "m") // 1
	b.Release("t1", "m") // 2
	b.Release("t1", "l") // 3
	b.Acquire("t2", "l") // 4 (never released)
	b.Write("t2", "x")   // 5
	tr := b.MustBuild()
	m := tr.Match()
	want := []int{3, 2, 1, 0, -1, -1}
	for i, w := range want {
		if m[i] != w {
			t.Errorf("match[%d] = %d, want %d", i, m[i], w)
		}
	}
}

func TestHeldLocks(t *testing.T) {
	b := NewBuilder()
	b.Acquire("t1", "l") // 0: [l]
	b.Acquire("t1", "m") // 1: [l m]
	b.Write("t1", "x")   // 2: [l m]
	b.Release("t1", "m") // 3: [l m] (release is inside its own CS)
	b.Write("t1", "y")   // 4: [l]
	b.Release("t1", "l") // 5: [l]
	b.Write("t1", "z")   // 6: []
	tr := b.MustBuild()
	held := tr.HeldLocks()
	wantLens := []int{1, 2, 2, 2, 1, 1, 0}
	for i, n := range wantLens {
		if len(held[i]) != n {
			t.Errorf("held[%d] = %v, want %d locks", i, held[i], n)
		}
	}
}

func TestComputeStats(t *testing.T) {
	b := NewBuilder()
	b.Fork("t0", "t1")
	b.Acquire("t1", "l")
	b.Read("t1", "x")
	b.Write("t1", "x")
	b.Release("t1", "l")
	b.Join("t0", "t1")
	tr := b.MustBuild()
	s := ComputeStats(tr)
	if s.Events != 6 || s.Reads != 1 || s.Writes != 1 || s.Acquires != 1 ||
		s.Releases != 1 || s.Forks != 1 || s.Joins != 1 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "events=6") {
		t.Errorf("stats string = %q", s.String())
	}
}

func TestValidateGood(t *testing.T) {
	if err := Validate(simpleTrace()); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	// Reentrant acquisition is allowed.
	b := NewBuilder()
	b.Acquire("t1", "l")
	b.Acquire("t1", "l")
	b.Release("t1", "l")
	b.Release("t1", "l")
	if err := Validate(b.Build()); err != nil {
		t.Errorf("reentrant trace rejected: %v", err)
	}
	// Open critical section at end of trace is allowed.
	b2 := NewBuilder()
	b2.Acquire("t1", "l")
	b2.Write("t1", "x")
	if err := Validate(b2.Build()); err != nil {
		t.Errorf("open CS rejected: %v", err)
	}
}

func TestValidateViolations(t *testing.T) {
	cases := []struct {
		name   string
		build  func(*Builder)
		reason string
	}{
		{"lock overlap", func(b *Builder) {
			b.Acquire("t1", "l")
			b.Acquire("t2", "l")
		}, "lock semantics"},
		{"unmatched release", func(b *Builder) {
			b.Release("t1", "l")
		}, "no matching acquire"},
		{"bad nesting", func(b *Builder) {
			b.Acquire("t1", "l")
			b.Acquire("t1", "m")
			b.Release("t1", "l")
		}, "not well nested"},
		{"self fork", func(b *Builder) {
			b.Fork("t1", "t1")
		}, "forks itself"},
		{"fork after start", func(b *Builder) {
			b.Write("t2", "x")
			b.Fork("t1", "t2")
		}, "already performed"},
		{"double fork", func(b *Builder) {
			b.Fork("t1", "t2")
			b.Fork("t3", "t2")
		}, "forked twice"},
		{"event after join", func(b *Builder) {
			b.Write("t2", "x")
			b.Join("t1", "t2")
			b.Write("t2", "y")
		}, "after being joined"},
		{"self join", func(b *Builder) {
			b.Join("t1", "t1")
		}, "joins itself"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.build(b)
			err := Validate(b.Build())
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), tc.reason) {
				t.Errorf("error %q does not mention %q", err, tc.reason)
			}
			var verr *ValidationError
			if !asValidationError(err, &verr) {
				t.Errorf("error is not a *ValidationError: %T", err)
			}
		})
	}
}

func asValidationError(err error, out **ValidationError) bool {
	v, ok := err.(*ValidationError)
	if ok {
		*out = v
	}
	return ok
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid trace")
		}
	}()
	b := NewBuilder()
	b.Release("t1", "l")
	b.MustBuild()
}
