package trace

import (
	"sync/atomic"

	"repro/internal/event"
)

// Block is a structure-of-arrays run of events: four parallel dense slices,
// one per event field, indexed by position. It is the hot-path event layout
// of this repository — detectors walk a block's slices directly instead of
// loading 16-byte event structs, which keeps the trace walk cache-dense
// (13 bytes/event, with the rarely-needed location stream untouched unless
// the detector tracks race pairs) and lets the per-event dispatch switch on
// a byte stream.
//
// Blocks appear in two roles: as the cached whole-trace view returned by
// Trace.SoA, and as the reusable decode buffers of streaming ingestion
// (traceio.Stream.NextBlockSoA), where one block of capacity
// traceio.DefaultBlockSize is refilled for the whole scan.
type Block struct {
	// Kinds holds event.Kind per event.
	Kinds []uint8
	// Threads holds the performing thread per event.
	Threads []int32
	// Objs holds the operand per event: lock, variable, or target thread,
	// selected by the kind.
	Objs []int32
	// Locs holds the program location per event (int32(event.NoLoc) when
	// absent).
	Locs []int32
}

// NewBlock returns an empty block with room for capacity events.
func NewBlock(capacity int) *Block {
	return &Block{
		Kinds:   make([]uint8, 0, capacity),
		Threads: make([]int32, 0, capacity),
		Objs:    make([]int32, 0, capacity),
		Locs:    make([]int32, 0, capacity),
	}
}

// BlockOf converts an event slice to its structure-of-arrays form.
func BlockOf(events []event.Event) *Block {
	b := NewBlock(len(events))
	for _, e := range events {
		b.Append(e)
	}
	return b
}

// Len returns the number of events in the block.
func (b *Block) Len() int { return len(b.Kinds) }

// Cap returns the event capacity of the block.
func (b *Block) Cap() int { return cap(b.Kinds) }

// Reset truncates the block to zero events, keeping its capacity.
func (b *Block) Reset() {
	b.Kinds = b.Kinds[:0]
	b.Threads = b.Threads[:0]
	b.Objs = b.Objs[:0]
	b.Locs = b.Locs[:0]
}

// Append adds one event to the block.
func (b *Block) Append(e event.Event) {
	b.AppendFields(e.Kind, e.Thread, e.Obj, e.Loc)
}

// AppendFields adds one event to the block from its unpacked fields, the
// form streaming decoders produce without materializing an event.Event.
func (b *Block) AppendFields(k event.Kind, t event.TID, obj int32, loc event.Loc) {
	b.Kinds = append(b.Kinds, uint8(k))
	b.Threads = append(b.Threads, int32(t))
	b.Objs = append(b.Objs, obj)
	b.Locs = append(b.Locs, int32(loc))
}

// At materializes event i. The SoA slices are the primary access path for
// hot loops; At is for consumers that need a whole event value.
func (b *Block) At(i int) event.Event {
	return event.Event{
		Kind:   event.Kind(b.Kinds[i]),
		Thread: event.TID(b.Threads[i]),
		Obj:    b.Objs[i],
		Loc:    event.Loc(b.Locs[i]),
	}
}

// Events materializes the whole block as an event slice.
func (b *Block) Events() []event.Event {
	out := make([]event.Event, b.Len())
	for i := range out {
		out[i] = b.At(i)
	}
	return out
}

// Cursor is a forward iterator over a block, the uniform way the engines'
// analysis loops read the SoA view when they consume whole events.
type Cursor struct {
	b *Block
	i int
}

// Cursor returns a cursor positioned before the first event of the block.
func (b *Block) Cursor() Cursor { return Cursor{b: b, i: -1} }

// Next advances the cursor and reports whether an event is available.
func (c *Cursor) Next() bool {
	c.i++
	return c.i < c.b.Len()
}

// Index returns the position of the current event.
func (c *Cursor) Index() int { return c.i }

// Event returns the current event.
func (c *Cursor) Event() event.Event { return c.b.At(c.i) }

// soaCache is the lazily-built SoA view of a Trace. It lives in its own
// struct so Trace stays a plain value type for construction by literal.
type soaCache struct {
	p atomic.Pointer[Block]
}

// SoA returns the structure-of-arrays view of the trace's events, building
// it on first use and caching it. Concurrent callers may race to build the
// view (engine fan-out analyzes one trace from many goroutines); the first
// published block wins and the trace must not be mutated after the first
// call, matching the documented immutability of Trace.
func (tr *Trace) SoA() *Block {
	if b := tr.soa.p.Load(); b != nil {
		return b
	}
	b := BlockOf(tr.Events)
	if tr.soa.p.CompareAndSwap(nil, b) {
		return b
	}
	return tr.soa.p.Load()
}
