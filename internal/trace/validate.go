package trace

import (
	"fmt"

	"repro/internal/event"
)

// ValidationError describes a well-formedness violation at a specific event.
type ValidationError struct {
	// Index is the offending event's position in the trace.
	Index int
	// Event is the offending event.
	Event event.Event
	// Reason explains the violation.
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("trace: event #%d (%v): %s", e.Index, e.Event, e.Reason)
}

// Validate checks the two trace well-formedness properties of §2.1 plus
// basic sanity of fork/join events:
//
//  1. Lock semantics: between two acquires of the same lock there is a
//     release of that lock (critical sections on one lock never overlap
//     across threads). Reentrant acquisition by the holding thread is
//     permitted (well-nestedness pairs them).
//  2. Well-nestedness: critical sections of a thread nest properly: a
//     release matches the most recent unmatched acquire of its thread, and
//     every release has a matching acquire.
//  3. Fork/join sanity: a thread performs no event before it is forked
//     (when a fork event for it exists), a fork targets a thread with no
//     prior events, a join targets a thread that performs no later events,
//     and no thread forks or joins itself.
//
// A nil return means every detector in this repository can process the
// trace.
func Validate(tr *Trace) error {
	type lockState struct {
		holder event.TID
		depth  int
	}
	lockHeld := make(map[event.LID]*lockState)
	// Per-thread stack of open locks for well-nestedness.
	openLocks := make(map[event.TID][]event.LID)
	started := make(map[event.TID]bool) // thread has performed an event
	forked := make(map[event.TID]int)   // thread was forked at index
	joined := make(map[event.TID]int)   // thread was joined at index
	for i, e := range tr.Events {
		if !e.Kind.Valid() {
			return &ValidationError{i, e, "invalid event kind"}
		}
		if j, ok := joined[e.Thread]; ok {
			return &ValidationError{i, e, fmt.Sprintf("thread performs event after being joined at #%d", j)}
		}
		started[e.Thread] = true
		switch e.Kind {
		case event.Acquire:
			l := e.Lock()
			st := lockHeld[l]
			if st == nil {
				lockHeld[l] = &lockState{holder: e.Thread, depth: 1}
			} else if st.holder == e.Thread {
				st.depth++ // reentrant
			} else {
				return &ValidationError{i, e, fmt.Sprintf("lock semantics violated: lock held by %s",
					tr.Symbols.ThreadName(st.holder))}
			}
			openLocks[e.Thread] = append(openLocks[e.Thread], l)
		case event.Release:
			l := e.Lock()
			open := openLocks[e.Thread]
			if len(open) == 0 {
				return &ValidationError{i, e, "release with no matching acquire"}
			}
			if top := open[len(open)-1]; top != l {
				return &ValidationError{i, e, fmt.Sprintf("not well nested: innermost open critical section is on %s",
					tr.Symbols.LockName(top))}
			}
			openLocks[e.Thread] = open[:len(open)-1]
			st := lockHeld[l]
			st.depth--
			if st.depth == 0 {
				delete(lockHeld, l)
			}
		case event.Fork:
			u := e.Target()
			if u == e.Thread {
				return &ValidationError{i, e, "thread forks itself"}
			}
			if started[u] {
				return &ValidationError{i, e, "fork target already performed events"}
			}
			if _, ok := forked[u]; ok {
				return &ValidationError{i, e, "thread forked twice"}
			}
			forked[u] = i
		case event.Join:
			u := e.Target()
			if u == e.Thread {
				return &ValidationError{i, e, "thread joins itself"}
			}
			joined[u] = i
		}
	}
	return nil
}

// IsWellFormed reports whether Validate(tr) == nil.
func IsWellFormed(tr *Trace) bool { return Validate(tr) == nil }
