package trace

import (
	"fmt"

	"repro/internal/event"
)

// Builder constructs traces programmatically with symbolic names. It is the
// API the examples, tests and workload generators use to transcribe traces
// such as the paper's Figures 1–6 and 8.
//
// Each appending method returns the Builder so traces read as a chain:
//
//	b := trace.NewBuilder()
//	b.Acquire("t1", "l").Read("t1", "x").Release("t1", "l")
//
// Locations default to "<thread>.<seq>" (one location per event) unless set
// with At; Table-1-style distinct race-pair counting needs stable locations,
// which the workload generators assign explicitly.
type Builder struct {
	syms   event.Symbols
	events []event.Event
	loc    string // pending location for the next event, "" for default
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// At sets the program location of the next appended event.
func (b *Builder) At(loc string) *Builder {
	b.loc = loc
	return b
}

func (b *Builder) add(k event.Kind, thread string, obj int32) *Builder {
	t := b.syms.Thread(thread)
	loc := b.loc
	b.loc = ""
	if loc == "" {
		loc = fmt.Sprintf("%s.%d", thread, len(b.events))
	}
	b.events = append(b.events, event.Event{
		Kind:   k,
		Thread: t,
		Obj:    obj,
		Loc:    b.syms.Location(loc),
	})
	return b
}

// Acquire appends acq(l) by thread.
func (b *Builder) Acquire(thread, lock string) *Builder {
	return b.add(event.Acquire, thread, int32(b.syms.Lock(lock)))
}

// Release appends rel(l) by thread.
func (b *Builder) Release(thread, lock string) *Builder {
	return b.add(event.Release, thread, int32(b.syms.Lock(lock)))
}

// Read appends r(x) by thread.
func (b *Builder) Read(thread, variable string) *Builder {
	return b.add(event.Read, thread, int32(b.syms.Var(variable)))
}

// Write appends w(x) by thread.
func (b *Builder) Write(thread, variable string) *Builder {
	return b.add(event.Write, thread, int32(b.syms.Var(variable)))
}

// Fork appends fork(child) by thread.
func (b *Builder) Fork(thread, child string) *Builder {
	return b.add(event.Fork, thread, int32(b.syms.Thread(child)))
}

// Join appends join(child) by thread.
func (b *Builder) Join(thread, child string) *Builder {
	return b.add(event.Join, thread, int32(b.syms.Thread(child)))
}

// Sync appends the paper's sync(x) shorthand (Figure 3 caption):
// acq(x) r(xVar) w(xVar) rel(x), where xVar is the variable uniquely
// associated with lock x.
func (b *Builder) Sync(thread, lock string) *Builder {
	v := lock + "Var"
	return b.Acquire(thread, lock).Read(thread, v).Write(thread, v).Release(thread, lock)
}

// AcRel appends the paper's acrl(y) shorthand (Figure 6): acq(y) rel(y)
// performed in succession, so two acrl(y)s are HB related.
func (b *Builder) AcRel(thread, lock string) *Builder {
	return b.Acquire(thread, lock).Release(thread, lock)
}

// CriticalSection appends acq(l), then the events produced by body, then
// rel(l).
func (b *Builder) CriticalSection(thread, lock string, body func(*Builder)) *Builder {
	b.Acquire(thread, lock)
	body(b)
	return b.Release(thread, lock)
}

// Len returns the number of events appended so far.
func (b *Builder) Len() int { return len(b.events) }

// Build finalizes the trace. The Builder may continue to be used; the
// returned trace snapshots the events appended so far but shares the symbol
// table, so later appends must not be interleaved with uses of the snapshot.
func (b *Builder) Build() *Trace {
	return &Trace{
		Events:  append([]event.Event(nil), b.events...),
		Symbols: &b.syms,
	}
}

// MustBuild finalizes the trace and panics if it is not well formed. Tests
// and examples transcribing paper figures use it so a typo in the
// transcription fails loudly.
func (b *Builder) MustBuild() *Trace {
	tr := b.Build()
	if err := Validate(tr); err != nil {
		panic(fmt.Sprintf("trace.MustBuild: %v", err))
	}
	return tr
}
