// Package trace provides the trace substrate of the paper (§2.1): a sequence
// of events together with the symbol tables naming its threads, locks,
// variables and program locations. It includes a programmatic Builder, trace
// well-formedness validation (lock semantics and well-nestedness), thread
// projections, per-trace statistics, and a checker for the paper's notion of
// *correct reordering* — the foundation of predictable races.
package trace

import (
	"fmt"

	"repro/internal/event"
)

// Trace is an immutable sequence of events with its symbol table.
// Events are identified by their index in Events.
type Trace struct {
	// Events is the event sequence in temporal (<tr) order.
	Events []event.Event
	// Symbols names the threads, locks, variables and locations that the
	// events reference.
	Symbols *event.Symbols

	// soa caches the structure-of-arrays view built by SoA.
	soa soaCache
}

// Len returns the number of events (N in the paper's complexity analysis).
func (tr *Trace) Len() int { return len(tr.Events) }

// NumThreads returns T, the number of threads.
func (tr *Trace) NumThreads() int { return tr.Symbols.NumThreads() }

// NumLocks returns L, the number of locks.
func (tr *Trace) NumLocks() int { return tr.Symbols.NumLocks() }

// NumVars returns the number of variables.
func (tr *Trace) NumVars() int { return tr.Symbols.NumVars() }

// Project returns the indices of the events performed by thread t, in trace
// order (σ↾t in the paper).
func (tr *Trace) Project(t event.TID) []int {
	var idx []int
	for i, e := range tr.Events {
		if e.Thread == t {
			idx = append(idx, i)
		}
	}
	return idx
}

// ThreadOrdered reports e1 <TO e2 for event indices i, j.
func (tr *Trace) ThreadOrdered(i, j int) bool {
	return i < j && tr.Events[i].Thread == tr.Events[j].Thread
}

// Describe renders event i with symbolic names, prefixed by its index.
func (tr *Trace) Describe(i int) string {
	return fmt.Sprintf("#%d %s", i, tr.Symbols.Describe(tr.Events[i]))
}

// Match returns, for each event index, the index of the matching release
// (for an acquire) or matching acquire (for a release), or -1 when the match
// is absent (an acquire whose critical section runs to the end of the
// trace). Non-lock events map to -1.
//
// match(a) for an acquire is the earliest later release on the same lock by
// the same thread; match(r) for a release is the latest earlier acquire on
// the same lock by the same thread (§2.1, "Lock events").
func (tr *Trace) Match() []int {
	match := make([]int, len(tr.Events))
	for i := range match {
		match[i] = -1
	}
	// open[t][l] is a stack of indices of currently-open acquires of lock l
	// by thread t; well-nested traces pair a release with the most recent
	// open acquire on its lock.
	type key struct {
		t event.TID
		l event.LID
	}
	open := make(map[key][]int)
	for i, e := range tr.Events {
		switch e.Kind {
		case event.Acquire:
			k := key{e.Thread, e.Lock()}
			open[k] = append(open[k], i)
		case event.Release:
			k := key{e.Thread, e.Lock()}
			stack := open[k]
			if n := len(stack); n > 0 {
				a := stack[n-1]
				open[k] = stack[:n-1]
				match[a] = i
				match[i] = a
			}
		}
	}
	return match
}

// HeldLocks returns, for each event index, the set of locks (as a slice in
// acquisition order, outermost first) held by the performing thread when the
// event executes. An acquire is considered inside its own critical section;
// a release is considered inside its own critical section too (e ∈ ℓ in the
// paper includes the boundary events).
func (tr *Trace) HeldLocks() [][]event.LID {
	held := make([][]event.LID, len(tr.Events))
	stacks := make(map[event.TID][]event.LID)
	for i, e := range tr.Events {
		switch e.Kind {
		case event.Acquire:
			stacks[e.Thread] = append(stacks[e.Thread], e.Lock())
			held[i] = append([]event.LID(nil), stacks[e.Thread]...)
		case event.Release:
			held[i] = append([]event.LID(nil), stacks[e.Thread]...)
			s := stacks[e.Thread]
			if len(s) > 0 {
				stacks[e.Thread] = s[:len(s)-1]
			}
		default:
			held[i] = append([]event.LID(nil), stacks[e.Thread]...)
		}
	}
	return held
}

// Stats summarizes a trace for reporting (Table 1 columns 3–5).
type Stats struct {
	Events   int
	Threads  int
	Locks    int
	Vars     int
	Reads    int
	Writes   int
	Acquires int
	Releases int
	Forks    int
	Joins    int
}

// ComputeStats tallies the trace's event mix.
func ComputeStats(tr *Trace) Stats {
	s := Stats{
		Events:  tr.Len(),
		Threads: tr.NumThreads(),
		Locks:   tr.NumLocks(),
		Vars:    tr.NumVars(),
	}
	for _, e := range tr.Events {
		switch e.Kind {
		case event.Read:
			s.Reads++
		case event.Write:
			s.Writes++
		case event.Acquire:
			s.Acquires++
		case event.Release:
			s.Releases++
		case event.Fork:
			s.Forks++
		case event.Join:
			s.Joins++
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("events=%d threads=%d locks=%d vars=%d r/w=%d/%d acq/rel=%d/%d fork/join=%d/%d",
		s.Events, s.Threads, s.Locks, s.Vars, s.Reads, s.Writes, s.Acquires, s.Releases, s.Forks, s.Joins)
}
