package predict_test

import (
	"testing"

	"repro/internal/closure"
	"repro/internal/gen"
	"repro/internal/predict"
	"repro/internal/trace"
)

// TestEnumerateFigures checks the exhaustive oracle on the paper's example
// traces: exactly the predictable races the paper states.
func TestEnumerateFigures(t *testing.T) {
	budget := predict.Budget{Nodes: 5_000_000}
	cases := []struct {
		name  string
		tr    *trace.Trace
		races int
	}{
		{"Figure1a", gen.Figure1a(), 0},
		{"Figure1b", gen.Figure1b(), 1},
		{"Figure2a", gen.Figure2a(), 0},
		{"Figure2b", gen.Figure2b(), 1},
		{"Figure3", gen.Figure3(), 1},
		{"Figure4", gen.Figure4(), 1},
		{"Figure5", gen.Figure5(), 0}, // deadlock, not a race
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pairs, ok := predict.EnumeratePredictableRaces(tc.tr, budget)
			if !ok {
				t.Fatal("enumeration exhausted")
			}
			if len(pairs) != tc.races {
				t.Fatalf("predictable races = %v, want %d", pairs, tc.races)
			}
		})
	}
}

// TestWitnessEngineComplete checks the witness search against the
// exhaustive oracle on random tiny traces: FindRaceWitness succeeds exactly
// for the oracle's pairs.
func TestWitnessEngineComplete(t *testing.T) {
	budget := predict.Budget{Nodes: 3_000_000}
	checkedRaces := 0
	for seed := int64(0); seed < 60; seed++ {
		cfg := gen.RandomConfig{
			Threads: int(2 + seed%3),
			Locks:   int(1 + seed%2),
			Vars:    int(1 + seed%3),
			Events:  16,
			Seed:    seed + 7000,
		}
		tr := gen.Random(cfg)
		oracle, ok := predict.EnumeratePredictableRaces(tr, budget)
		if !ok {
			continue
		}
		oracleSet := make(map[[2]int]bool, len(oracle))
		for _, p := range oracle {
			oracleSet[p] = true
		}
		for i := 0; i < tr.Len(); i++ {
			for j := i + 1; j < tr.Len(); j++ {
				if !tr.Events[i].Conflicts(tr.Events[j]) {
					continue
				}
				wit, found := predict.FindRaceWitness(tr, i, j, budget)
				if wit.Exhausted {
					continue
				}
				if found != oracleSet[[2]int{i, j}] {
					t.Fatalf("seed %d: pair (%d,%d): witness=%v oracle=%v", seed, i, j, found, oracleSet[[2]int{i, j}])
				}
				if found {
					checkedRaces++
					if err := trace.CheckReordering(tr, wit.Reordering); err != nil {
						t.Fatalf("seed %d: invalid witness: %v", seed, err)
					}
				}
			}
		}
	}
	if checkedRaces == 0 {
		t.Fatal("no predictable races across random traces; test is vacuous")
	}
}

// TestWCPSoundWrtOracle checks the soundness chain end to end on tiny
// traces against the exhaustive oracle: the *first* WCP race pair must be a
// predictable race or the trace must have a predictable deadlock
// (Theorem 1). Subsequent WCP pairs carry no such guarantee — and random
// traces do produce subsequent pairs that are not predictable (e.g. a
// read's writer constraint can make two WCP-unordered events impossible to
// schedule adjacently), which is exactly why the paper limits the theorem
// to the first race (§3.2).
func TestWCPSoundWrtOracle(t *testing.T) {
	budget := predict.Budget{Nodes: 3_000_000}
	sawUnpredictableLater := false
	for seed := int64(0); seed < 60; seed++ {
		cfg := gen.RandomConfig{
			Threads: int(2 + seed%3),
			Locks:   int(1 + seed%2),
			Vars:    int(1 + seed%2),
			Events:  14,
			Seed:    seed + 8100,
		}
		tr := gen.Random(cfg)
		oracle, ok := predict.EnumeratePredictableRaces(tr, budget)
		if !ok {
			continue
		}
		oracleSet := make(map[[2]int]bool, len(oracle))
		for _, p := range oracle {
			oracleSet[p] = true
		}
		wcpPairs := closure.RacyPairs(tr, closure.ComputeWCP(tr))
		if len(wcpPairs) == 0 {
			continue
		}
		first := wcpPairs[0]
		for _, p := range wcpPairs {
			if p[1] < first[1] || (p[1] == first[1] && p[0] > first[0]) {
				first = p
			}
			if !oracleSet[p] {
				sawUnpredictableLater = true
			}
		}
		if !oracleSet[first] {
			if _, dok := predict.FindDeadlock(tr, budget); !dok {
				t.Fatalf("seed %d: first WCP pair %v is neither predictable race nor deadlock", seed, first)
			}
		}
	}
	if !sawUnpredictableLater {
		t.Log("note: no unpredictable subsequent WCP pair encountered in this sample")
	}
}

// TestEnumerateBudget checks the exhaustion reporting.
func TestEnumerateBudget(t *testing.T) {
	tr := gen.Random(gen.RandomConfig{Threads: 4, Locks: 2, Vars: 3, Events: 60, Seed: 42})
	_, ok := predict.EnumeratePredictableRaces(tr, predict.Budget{Nodes: 10})
	if ok {
		t.Error("60-event 4-thread enumeration cannot finish in 10 nodes")
	}
}
