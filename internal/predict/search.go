// Package predict implements a maximal-style predictive race detector in
// the spirit of RVPredict (Huang et al., PLDI 2014): it searches the space
// of *correct reorderings* of a trace fragment for a witness that schedules
// two conflicting events next to each other, or for a deadlock.
//
// RVPredict encodes this search as SMT formulae solved per window under a
// solver timeout. We have no SMT solver; instead the search is an explicit
// memoized DFS over scheduling states with an exploration budget playing the
// role of the solver timeout (see DESIGN.md §8, Substitutions). The
// *behaviour* the paper measures is preserved: windows hide far-apart races,
// budgets make complex windows fail, and their interplay is non-monotone
// (Figure 7).
//
// Every witness returned is certified by trace.CheckReordering, so the
// engine is sound by construction; it is precise up to budget exhaustion.
package predict

import (
	"repro/internal/event"
	"repro/internal/trace"
)

// Budget bounds a search. Exploration cost is counted in scheduling steps.
type Budget struct {
	// Nodes is the maximum number of DFS states to explore. <= 0 means a
	// small default.
	Nodes int
}

// DefaultNodes is the default exploration budget per search.
const DefaultNodes = 100_000

// searcher holds the immutable trace structure shared by the DFS.
type searcher struct {
	tr         *trace.Trace
	proj       map[event.TID][]int // per-thread event indices
	threads    []event.TID         // deterministic thread iteration order
	origWriter []int               // per read event, its original writer or -1
	forkOf     map[event.TID]int   // thread -> fork event index, if any
	nodes      int
	budget     int
	exhausted  bool
	memo       map[string]bool
}

func newSearcher(tr *trace.Trace, b Budget) *searcher {
	s := &searcher{
		tr:         tr,
		proj:       make(map[event.TID][]int),
		origWriter: trace.LastWriters(tr),
		forkOf:     make(map[event.TID]int),
		budget:     b.Nodes,
		memo:       make(map[string]bool),
	}
	if s.budget <= 0 {
		s.budget = DefaultNodes
	}
	// The searcher's setup pass reads the window through the SoA cursor.
	for c := tr.SoA().Cursor(); c.Next(); {
		i, e := c.Index(), c.Event()
		if _, ok := s.proj[e.Thread]; !ok {
			s.threads = append(s.threads, e.Thread)
		}
		s.proj[e.Thread] = append(s.proj[e.Thread], i)
		if e.Kind == event.Fork {
			s.forkOf[e.Target()] = i
		}
	}
	return s
}

// state is a mutable scheduling state: how far each thread has progressed,
// which locks are held, and the last writer per variable.
type state struct {
	pos        map[event.TID]int       // next unscheduled index into proj[t]
	lockHolder map[event.LID]event.TID // lock -> holding thread
	lockDepth  map[event.LID]int       // reentrancy depth
	lastWriter map[event.VID]int       // variable -> last scheduled write
	scheduled  map[int]bool            // event index -> scheduled
	order      []int                   // the schedule so far
}

func (s *searcher) initialState() *state {
	return &state{
		pos:        make(map[event.TID]int),
		lockHolder: make(map[event.LID]event.TID),
		lockDepth:  make(map[event.LID]int),
		lastWriter: make(map[event.VID]int),
		scheduled:  make(map[int]bool),
	}
}

// key serializes the decision-relevant parts of a state for memoization.
// Per-thread positions determine the scheduled set (prefix closure) and
// therefore the lock state; the last-writer map is the only order-dependent
// component, so it is part of the key.
func (s *searcher) key(st *state) string {
	buf := make([]byte, 0, 4*(len(s.threads)+len(st.lastWriter)))
	for _, t := range s.threads {
		p := st.pos[t]
		buf = append(buf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
	}
	buf = append(buf, 0xff)
	for x := 0; x < s.tr.NumVars(); x++ {
		w, ok := st.lastWriter[event.VID(x)]
		if !ok {
			w = -1
		}
		buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return string(buf)
}

// next returns thread t's next unscheduled event index, or -1.
func (s *searcher) next(st *state, t event.TID) int {
	p := st.pos[t]
	if p >= len(s.proj[t]) {
		return -1
	}
	return s.proj[t][p]
}

// enabled reports whether event i (thread t's next event) can be scheduled
// now without violating the correct-reordering conditions.
func (s *searcher) enabled(st *state, i int) bool {
	e := s.tr.Events[i]
	// A thread's events cannot precede its fork event.
	if f, ok := s.forkOf[e.Thread]; ok && !st.scheduled[f] {
		return false
	}
	switch e.Kind {
	case event.Acquire:
		if h, ok := st.lockHolder[e.Lock()]; ok && h != e.Thread {
			return false
		}
	case event.Read:
		w := -1
		if lw, ok := st.lastWriter[e.Var()]; ok {
			w = lw
		}
		if w != s.origWriter[i] {
			return false
		}
	case event.Join:
		// A join can only fire when the target has nothing left to run.
		if st.pos[e.Target()] < len(s.proj[e.Target()]) {
			return false
		}
	}
	return true
}

// apply schedules event i, mutating st. The caller must have checked
// enabled. It returns an undo closure.
func (s *searcher) apply(st *state, i int) func() {
	e := s.tr.Events[i]
	st.pos[e.Thread]++
	st.scheduled[i] = true
	st.order = append(st.order, i)
	var undoExtra func()
	switch e.Kind {
	case event.Acquire:
		st.lockHolder[e.Lock()] = e.Thread
		st.lockDepth[e.Lock()]++
		undoExtra = func() {
			st.lockDepth[e.Lock()]--
			if st.lockDepth[e.Lock()] == 0 {
				delete(st.lockHolder, e.Lock())
			}
		}
	case event.Release:
		prevHolder, held := st.lockHolder[e.Lock()]
		prevDepth := st.lockDepth[e.Lock()]
		st.lockDepth[e.Lock()]--
		if st.lockDepth[e.Lock()] <= 0 {
			delete(st.lockHolder, e.Lock())
			st.lockDepth[e.Lock()] = 0
		}
		undoExtra = func() {
			st.lockDepth[e.Lock()] = prevDepth
			if held {
				st.lockHolder[e.Lock()] = prevHolder
			}
		}
	case event.Write:
		prev, had := st.lastWriter[e.Var()]
		st.lastWriter[e.Var()] = i
		undoExtra = func() {
			if had {
				st.lastWriter[e.Var()] = prev
			} else {
				delete(st.lastWriter, e.Var())
			}
		}
	}
	return func() {
		st.pos[e.Thread]--
		delete(st.scheduled, i)
		st.order = st.order[:len(st.order)-1]
		if undoExtra != nil {
			undoExtra()
		}
	}
}

// Witness is a successful search outcome: a correct reordering (indices
// into the searched trace) revealing the race or deadlock.
type Witness struct {
	Reordering trace.Reordering
	// Exhausted reports that the budget ran out before the search space
	// was covered (a negative answer is then inconclusive).
	Exhausted bool
	// Nodes is the number of DFS states the search explored.
	Nodes int
}

// FindRaceWitness searches for a correct reordering of tr that schedules
// conflicting events e1 and e2 (trace indices, e1 < e2) next to each other.
// It returns the witness and true on success. On failure, Witness.Exhausted
// distinguishes "no witness exists" from "budget exceeded".
func FindRaceWitness(tr *trace.Trace, e1, e2 int, b Budget) (Witness, bool) {
	if !tr.Events[e1].Conflicts(tr.Events[e2]) {
		return Witness{}, false
	}
	s := newSearcher(tr, b)
	st := s.initialState()
	if s.raceDFS(st, e1, e2) {
		ro := append(trace.Reordering(nil), st.order...)
		return Witness{Reordering: ro, Nodes: s.nodes}, true
	}
	return Witness{Exhausted: s.exhausted, Nodes: s.nodes}, false
}

// tryGoal attempts to finish the schedule with e1 then e2 (both must be
// their threads' next events). It leaves st untouched on failure.
func (s *searcher) tryGoal(st *state, e1, e2 int) bool {
	t1, t2 := s.tr.Events[e1].Thread, s.tr.Events[e2].Thread
	if s.next(st, t1) != e1 || s.next(st, t2) != e2 {
		return false
	}
	if !s.enabled(st, e1) {
		return false
	}
	undo1 := s.apply(st, e1)
	if s.enabled(st, e2) {
		s.apply(st, e2)
		return true
	}
	undo1()
	return false
}

// raceDFS explores schedules; it succeeds when e1 and e2 (in either order)
// can be appended consecutively. On success st.order holds the witness.
func (s *searcher) raceDFS(st *state, e1, e2 int) bool {
	if s.tryGoal(st, e1, e2) || s.tryGoal(st, e2, e1) {
		return true
	}
	if s.nodes++; s.nodes > s.budget {
		s.exhausted = true
		return false
	}
	k := s.key(st)
	if s.memo[k] {
		return false
	}
	s.memo[k] = true
	for _, t := range s.threads {
		i := s.next(st, t)
		if i < 0 || i == e1 || i == e2 || !s.enabled(st, i) {
			continue
		}
		// Never schedule past the goal events in their own threads.
		undo := s.apply(st, i)
		if s.raceDFS(st, e1, e2) {
			return true
		}
		undo()
		if s.exhausted {
			return false
		}
	}
	return false
}

// FindDeadlock searches for a correct reordering of tr whose final state
// deadlocks a set of threads (each one's next event acquires a lock held by
// another member, §2.1). It returns the witness reordering on success.
func FindDeadlock(tr *trace.Trace, b Budget) (Witness, bool) {
	s := newSearcher(tr, b)
	st := s.initialState()
	if s.deadlockDFS(st) {
		ro := append(trace.Reordering(nil), st.order...)
		return Witness{Reordering: ro, Nodes: s.nodes}, true
	}
	return Witness{Exhausted: s.exhausted, Nodes: s.nodes}, false
}

// isDeadlocked reports whether st's current configuration mutually blocks a
// nonempty thread set.
func (s *searcher) isDeadlocked(st *state) bool {
	blockedOn := make(map[event.TID]event.TID)
	for _, t := range s.threads {
		i := s.next(st, t)
		if i < 0 {
			continue
		}
		e := s.tr.Events[i]
		if e.Kind != event.Acquire {
			continue
		}
		if h, ok := st.lockHolder[e.Lock()]; ok && h != t {
			blockedOn[t] = h
		}
	}
	for changed := true; changed; {
		changed = false
		for t, h := range blockedOn {
			if _, ok := blockedOn[h]; !ok {
				delete(blockedOn, t)
				changed = true
			}
		}
	}
	return len(blockedOn) > 0
}

func (s *searcher) deadlockDFS(st *state) bool {
	if s.isDeadlocked(st) {
		return true
	}
	if s.nodes++; s.nodes > s.budget {
		s.exhausted = true
		return false
	}
	k := s.key(st)
	if s.memo[k] {
		return false
	}
	s.memo[k] = true
	for _, t := range s.threads {
		i := s.next(st, t)
		if i < 0 || !s.enabled(st, i) {
			continue
		}
		undo := s.apply(st, i)
		if s.deadlockDFS(st) {
			return true
		}
		undo()
		if s.exhausted {
			return false
		}
	}
	return false
}
