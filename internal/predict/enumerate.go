package predict

import (
	"repro/internal/trace"
)

// EnumeratePredictableRaces computes, by exhaustive exploration of every
// correct reordering, the complete set of predictable race pairs of a
// trace: conflicting event pairs that some correct reordering schedules
// back to back. This is the "maximal causal model" ground truth that
// RVPredict approximates (§5 of the paper: such complete explorations "are
// known to be intractable") — the state space is exponential, so this is
// usable only on tiny traces. The property tests use it as the oracle for
// the witness engine's completeness and for WCP's soundness.
//
// The returned pairs are (i, j) with i <tr j, sorted by (i, j). The budget
// bounds exploration; ok reports whether the enumeration completed within
// it (if false, the result is a lower bound).
func EnumeratePredictableRaces(tr *trace.Trace, b Budget) (pairs [][2]int, ok bool) {
	s := newSearcher(tr, b)
	st := s.initialState()
	found := make(map[[2]int]bool)
	s.enumerate(st, found)
	out := make([][2]int, 0, len(found))
	for p := range found {
		out = append(out, p)
	}
	sortPairSlice(out)
	return out, !s.exhausted
}

// enumerate visits every reachable scheduling state once, recording all
// conflicting pairs that can be scheduled consecutively from the state.
func (s *searcher) enumerate(st *state, found map[[2]int]bool) {
	if s.nodes++; s.nodes > s.budget {
		s.exhausted = true
		return
	}
	k := s.key(st)
	if s.memo[k] {
		return
	}
	s.memo[k] = true

	// Collect the enabled next events.
	var enabled []int
	for _, t := range s.threads {
		if i := s.next(st, t); i >= 0 && s.enabled(st, i) {
			enabled = append(enabled, i)
		}
	}
	// Any two enabled conflicting events that can run consecutively (in
	// either order) are a revealed race from this state.
	for _, i := range enabled {
		undo := s.apply(st, i)
		for _, t := range s.threads {
			j := s.next(st, t)
			if j < 0 || j == i || !s.tr.Events[i].Conflicts(s.tr.Events[j]) {
				continue
			}
			if s.enabled(st, j) {
				lo, hi := i, j
				if lo > hi {
					lo, hi = hi, lo
				}
				found[[2]int{lo, hi}] = true
			}
		}
		// Continue the exhaustive exploration through i.
		s.enumerate(st, found)
		undo()
		if s.exhausted {
			return
		}
	}
}

// sortPairSlice orders pairs lexicographically (insertion sort: oracle
// outputs are tiny).
func sortPairSlice(ps [][2]int) {
	for i := 1; i < len(ps); i++ {
		p := ps[i]
		j := i - 1
		for j >= 0 && (ps[j][0] > p[0] || (ps[j][0] == p[0] && ps[j][1] > p[1])) {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = p
	}
}
