package predict_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/predict"
	"repro/internal/trace"
)

// findLoc returns the index of the event at the named location.
func findLoc(t *testing.T, tr *trace.Trace, loc string) int {
	t.Helper()
	id := tr.Symbols.Location(loc)
	for i, e := range tr.Events {
		if e.Loc == id {
			return i
		}
	}
	t.Fatalf("location %q not found", loc)
	return -1
}

func TestWitnessFigure1b(t *testing.T) {
	tr := gen.Figure1b()
	e1 := findLoc(t, tr, "f1b.1") // w(y)
	e2 := findLoc(t, tr, "f1b.8") // r(y)
	wit, ok := predict.FindRaceWitness(tr, e1, e2, predict.Budget{})
	if !ok {
		t.Fatalf("Figure 1b race witness not found (exhausted=%v)", wit.Exhausted)
	}
	if err := trace.CheckReordering(tr, wit.Reordering); err != nil {
		t.Fatalf("witness invalid: %v", err)
	}
	if !trace.RevealsRace(tr, wit.Reordering, e1, e2) {
		t.Error("witness does not reveal the race")
	}
}

func TestWitnessFigure2b(t *testing.T) {
	tr := gen.Figure2b()
	e1 := findLoc(t, tr, "f2b.1") // w(y)
	e2 := findLoc(t, tr, "f2b.6") // r(y)
	wit, ok := predict.FindRaceWitness(tr, e1, e2, predict.Budget{})
	if !ok {
		t.Fatal("Figure 2b race witness not found")
	}
	if err := trace.CheckReordering(tr, wit.Reordering); err != nil {
		t.Fatalf("witness invalid: %v", err)
	}
}

func TestNoWitnessFigure2a(t *testing.T) {
	tr := gen.Figure2a()
	e1 := findLoc(t, tr, "f2a.1") // w(y)
	e2 := findLoc(t, tr, "f2a.7") // r(y)
	wit, ok := predict.FindRaceWitness(tr, e1, e2, predict.Budget{Nodes: 1_000_000})
	if ok {
		t.Fatalf("Figure 2a has no predictable race; got witness %v", wit.Reordering)
	}
	if wit.Exhausted {
		t.Error("search should terminate exhaustively on this tiny trace")
	}
}

func TestWitnessFigures3And4(t *testing.T) {
	cases := []struct {
		name   string
		tr     *trace.Trace
		l1, l2 string
	}{
		{"Figure3", gen.Figure3(), "f3.3", "f3.12"},
		{"Figure4", gen.Figure4(), "f4.4", "f4.15"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e1 := findLoc(t, tc.tr, tc.l1)
			e2 := findLoc(t, tc.tr, tc.l2)
			wit, ok := predict.FindRaceWitness(tc.tr, e1, e2, predict.Budget{Nodes: 2_000_000})
			if !ok {
				t.Fatalf("witness not found (exhausted=%v)", wit.Exhausted)
			}
			if err := trace.CheckReordering(tc.tr, wit.Reordering); err != nil {
				t.Fatalf("witness invalid: %v", err)
			}
			if !trace.RevealsRace(tc.tr, wit.Reordering, e1, e2) {
				t.Error("witness does not reveal the race")
			}
		})
	}
}

func TestNonConflictingPairRejected(t *testing.T) {
	tr := gen.Figure1b()
	// Two reads of x never conflict.
	e1 := findLoc(t, tr, "f1b.3")
	e2 := findLoc(t, tr, "f1b.6")
	if _, ok := predict.FindRaceWitness(tr, e1, e2, predict.Budget{}); ok {
		t.Error("read-read pair must not get a witness")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// A trace with two far-apart conflicting writes separated by a wall of
	// independent work in many threads: the search space is big enough that
	// a tiny budget must give up.
	b := trace.NewBuilder()
	b.At("p1").Write("tA", "goal")
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			b.Write("tA", "fillA")
			b.Write("tB", "fillB")
			b.Write("tC", "fillC")
			b.Write("tD", "fillD")
		}
	}
	b.At("p2").Write("tE", "goal")
	tr := b.MustBuild()
	e1 := findLoc(t, tr, "p1")
	e2 := findLoc(t, tr, "p2")
	wit, ok := predict.FindRaceWitness(tr, e1, e2, predict.Budget{Nodes: 5})
	if ok {
		t.Skip("trivially found despite budget; pattern too easy")
	}
	if !wit.Exhausted {
		t.Error("tiny budget should report exhaustion")
	}
	// With an adequate budget the witness exists.
	if _, ok := predict.FindRaceWitness(tr, e1, e2, predict.Budget{Nodes: 500_000}); !ok {
		t.Error("witness should be found with a real budget")
	}
}

func TestDeadlockSearchNegative(t *testing.T) {
	// A single lock cannot deadlock.
	b := trace.NewBuilder()
	b.CriticalSection("t1", "l", func(b *trace.Builder) { b.Write("t1", "x") })
	b.CriticalSection("t2", "l", func(b *trace.Builder) { b.Write("t2", "x") })
	wit, ok := predict.FindDeadlock(b.MustBuild(), predict.Budget{Nodes: 100_000})
	if ok {
		t.Fatalf("single-lock trace reported deadlock: %v", wit.Reordering)
	}
	if wit.Exhausted {
		t.Error("search should terminate on this tiny trace")
	}
}

func TestDeadlockSearchPositive(t *testing.T) {
	// Classic AB-BA deadlock pattern.
	b := trace.NewBuilder()
	b.Acquire("t1", "a")
	b.Acquire("t1", "b")
	b.Release("t1", "b")
	b.Release("t1", "a")
	b.Acquire("t2", "b")
	b.Acquire("t2", "a")
	b.Release("t2", "a")
	b.Release("t2", "b")
	tr := b.MustBuild()
	wit, ok := predict.FindDeadlock(tr, predict.Budget{})
	if !ok {
		t.Fatal("AB-BA deadlock not found")
	}
	if err := trace.CheckReordering(tr, wit.Reordering); err != nil {
		t.Fatalf("deadlock witness invalid: %v", err)
	}
	if d := trace.RevealsDeadlock(tr, wit.Reordering); len(d) != 2 {
		t.Errorf("deadlocked threads = %v", d)
	}
}

// TestForkJoinConstraints checks the searcher never schedules child events
// before their fork or joins before the child finishes.
func TestForkJoinConstraints(t *testing.T) {
	b := trace.NewBuilder()
	b.At("w0").Write("t0", "x") // 0
	b.Fork("t0", "t1")          // 1
	b.At("w1").Write("t1", "x") // 2: ordered after 0 via fork — no race
	tr := b.MustBuild()
	e1 := findLoc(t, tr, "w0")
	e2 := findLoc(t, tr, "w1")
	wit, ok := predict.FindRaceWitness(tr, e1, e2, predict.Budget{Nodes: 1_000_000})
	if ok {
		t.Fatalf("fork-ordered accesses got a witness: %v", wit.Reordering)
	}
	if wit.Exhausted {
		t.Error("search should terminate")
	}
}

func TestDetectWindowed(t *testing.T) {
	bench, _ := gen.ByName("ftpserver")
	tr := bench.Generate(0.3)
	whole := predict.Detect(tr, predict.Options{WindowSize: 0, WindowBudget: 50_000})
	windowed := predict.Detect(tr, predict.Options{WindowSize: 500, WindowBudget: 50_000})
	if whole.Windows != 1 {
		t.Errorf("whole-trace analysis used %d windows", whole.Windows)
	}
	if windowed.Windows < 2 {
		t.Errorf("windowed analysis used %d windows", windowed.Windows)
	}
	if windowed.InvalidWitnesses != 0 || whole.InvalidWitnesses != 0 {
		t.Errorf("invalid witnesses: %d/%d", windowed.InvalidWitnesses, whole.InvalidWitnesses)
	}
	// Far races must be lost to windowing: the benchmark has FarRaces pairs
	// spanning the trace.
	if got, want := windowed.Report.Distinct(), bench.HBRaces-bench.FarRaces; got > want {
		t.Errorf("windowed predict found %d pairs, expected ≤ %d (far races must be invisible)", got, want)
	}
}
