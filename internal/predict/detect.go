package predict

import (
	"sort"

	"repro/internal/event"
	"repro/internal/hb"
	"repro/internal/race"
	"repro/internal/trace"
	"repro/internal/window"
)

// Options configures the windowed predictive detector, mirroring
// RVPredict's two tunables (§4): the window size and the per-window solver
// budget (our exploration-node analog of the SMT timeout).
type Options struct {
	// WindowSize bounds each analyzed fragment; <= 0 analyzes the whole
	// trace as one window.
	WindowSize int
	// WindowBudget is the total exploration budget (DFS nodes) per window.
	// <= 0 uses DefaultNodes.
	WindowBudget int
	// PairAttempts caps how many candidate event pairs are tried per
	// location pair per window; 0 uses a default of 3.
	PairAttempts int
}

// Result is the outcome of a predictive analysis.
type Result struct {
	// Report holds the distinct race pairs witnessed (or HB-detected)
	// within windows.
	Report *race.Report
	// Windows is the number of fragments analyzed.
	Windows int
	// Searches counts witness searches performed.
	Searches int
	// ExhaustedSearches counts searches that hit the budget, the analog of
	// RVPredict's windows lost to solver timeouts.
	ExhaustedSearches int
	// InvalidWitnesses counts witnesses rejected by the correct-reordering
	// checker; always 0 unless the engine has a bug.
	InvalidWitnesses int
}

// accessGroup is the list of events at one (location, kind) of a variable
// within a window.
type accessGroup struct {
	loc     event.Loc
	isWrite bool
	events  []int
}

// candidatePairs returns, for each conflicting (location, kind) group pair
// of variable groups, up to k event pairs ordered by increasing separation —
// close pairs are the cheapest to witness, which is also how bounded SMT
// encodings behave.
func candidatePairs(a, b *accessGroup, k int) [][2]int {
	type cand struct {
		i, j, dist int
	}
	var cands []cand
	for _, i := range a.events {
		for _, j := range b.events {
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo != hi {
				cands = append(cands, cand{lo, hi, hi - lo})
			}
		}
	}
	sort.Slice(cands, func(x, y int) bool { return cands[x].dist < cands[y].dist })
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([][2]int, len(cands))
	for i, c := range cands {
		out[i] = [2]int{c.i, c.j}
	}
	return out
}

// Detect runs the windowed predictive race detector over tr.
func Detect(tr *trace.Trace, opts Options) *Result {
	res := &Result{Report: race.NewReport()}
	budget := opts.WindowBudget
	if budget <= 0 {
		budget = DefaultNodes
	}
	attempts := opts.PairAttempts
	if attempts <= 0 {
		attempts = 3
	}
	offsets := window.Offsets(tr.Len(), opts.WindowSize)
	for wi, w := range window.Split(tr, opts.WindowSize) {
		res.Windows++
		detectWindow(w, offsets[wi], budget, attempts, res)
	}
	return res
}

func detectWindow(w *trace.Trace, offset, budget, attempts int, res *Result) {
	// Seed with the window's HB races: any sound maximal technique finds at
	// least these, and they need no search.
	hbRes := hb.Detect(w)
	if hbRes.Report != nil {
		res.Report.Merge(hbRes.Report)
	}

	// Group the window's accesses per variable by (location, kind).
	groups := make(map[event.VID][]*accessGroup)
	index := make(map[[3]int32]*accessGroup)
	for i, e := range w.Events {
		if !e.Kind.IsAccess() {
			continue
		}
		isW := int32(0)
		if e.Kind == event.Write {
			isW = 1
		}
		key := [3]int32{int32(e.Var()), int32(e.Loc), isW}
		g := index[key]
		if g == nil {
			g = &accessGroup{loc: e.Loc, isWrite: isW == 1}
			index[key] = g
			groups[e.Var()] = append(groups[e.Var()], g)
		}
		g.events = append(g.events, i)
	}

	// Enumerate candidate location pairs first, then share the window
	// budget across them: each candidate's searches get a slice of what
	// remains, the way an SMT backend divides its per-window solver time
	// across queries. A candidate whose cheapest witness exceeds its slice
	// is lost at this budget — which is exactly the budget axis of
	// Figure 7.
	type candidate struct{ a, b *accessGroup }
	var cands []candidate
	for x := event.VID(0); int(x) < w.NumVars(); x++ {
		gs := groups[x]
		for ai := 0; ai < len(gs); ai++ {
			for bi := ai; bi < len(gs); bi++ {
				a, b := gs[ai], gs[bi]
				if !a.isWrite && !b.isWrite {
					continue // read-read never conflicts
				}
				if res.Report.Has(a.loc, b.loc) {
					continue // already found (HB seed or earlier window)
				}
				cands = append(cands, candidate{a, b})
			}
		}
	}
	remaining := budget
	for ci, c := range cands {
		if remaining <= 0 {
			return
		}
		slice := remaining / (len(cands) - ci)
		if min := 50; slice < min {
			slice = min
		}
		for _, pair := range candidatePairs(c.a, c.b, attempts) {
			i, j := pair[0], pair[1]
			if !w.Events[i].Conflicts(w.Events[j]) {
				continue // same-thread pair
			}
			if slice <= 0 {
				break
			}
			res.Searches++
			wit, ok := FindRaceWitness(w, i, j, Budget{Nodes: slice})
			slice -= wit.Nodes
			remaining -= wit.Nodes
			if wit.Exhausted {
				res.ExhaustedSearches++
			}
			if !ok {
				continue
			}
			if err := trace.CheckReordering(w, wit.Reordering); err != nil ||
				!trace.RevealsRace(w, wit.Reordering, i, j) {
				res.InvalidWitnesses++
				continue
			}
			res.Report.Record(c.a.loc, c.b.loc, offset+j, j-i)
			break
		}
	}
}
